/// CompressedAdjacencyStore (CSR + delta buffers) footprint + SIMD probe bench.
///
/// Two halves, both feeding BENCH_pr.json:
///
///  * a probe microbench over `BitMatrix::first_common_in_row` — the kernel
///    behind every A_weak oracle query — run twice on identical inputs with
///    the dispatch pinned to the scalar path and then left to CPU detection
///    (src/graph/bit_matrix.hpp). Reports ns/probe and the words_scanned
///    total for each mode; the two modes must return identical hit checksums
///    AND identical words_scanned (the documented dispatch contract), and any
///    mismatch fails the run;
///
///  * an engine comparison of the flat `DynamicMatcher` against
///    `CompressedDynamicMatcher` on the same update stream: updates/sec,
///    bytes/vertex of live adjacency storage (CSR + delta buffers vs the
///    modelled per-vertex-vector flat layout), and the full bit-identity
///    check (mates, rebuild positions via stats, A_weak calls).
///
/// Exits non-zero on any divergence (the bench-smoke CI job runs this in
/// --quick --json mode into BENCH_pr.json).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/compressed_store.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/bit_matrix.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/dyn_workload.hpp"

using namespace bmf;

namespace {

struct RunState {
  std::vector<Vertex> mates;
  std::int64_t edges = 0;
  std::int64_t rebuilds = 0;
  std::int64_t weak_calls = 0;
  RebuildStats rebuild_stats;

  friend bool operator==(const RunState&, const RunState&) = default;
};

RunState state_of(const ReplayEngine& engine) {
  RunState s;
  const LiveEngineView view = engine.view();
  for (Vertex v = 0; v < view.num_vertices(); ++v)
    s.mates.push_back(view.mate_of(v));
  s.edges = engine.snapshot().num_edges();
  s.rebuilds = engine.rebuilds();
  s.weak_calls = engine.weak_calls();
  s.rebuild_stats = engine.rebuild_stats();
  return s;
}

struct ProbeResult {
  double ns_per_probe = 0.0;
  std::int64_t words_scanned = 0;
  std::int64_t hit_checksum = 0;  // sum of (r + 1) * (hit + 2) over all probes
};

/// One full sweep of first_common_in_row over every (row, mask) pair,
/// repeated `reps` times; best-of wall clock, single-rep counters.
ProbeResult probe_sweep(const BitMatrix& m, const std::vector<BitVec>& masks,
                        int reps) {
  ProbeResult best;
  best.ns_per_probe = 1e18;
  const double probes =
      static_cast<double>(m.rows()) * static_cast<double>(masks.size());
  for (int rep = 0; rep < reps; ++rep) {
    std::int64_t words = 0;
    std::int64_t checksum = 0;
    Timer t;
    for (const BitVec& mask : masks)
      for (std::int64_t r = 0; r < m.rows(); ++r) {
        std::int64_t scanned = 0;
        const std::int64_t hit = m.first_common_in_row(r, mask, &scanned);
        words += scanned;
        checksum += (r + 1) * (hit + 2);
      }
    const double ns = t.seconds() * 1e9 / probes;
    if (ns < best.ns_per_probe)
      best = ProbeResult{ns, words, checksum};
  }
  return best;
}

/// Scalar-pinned vs detected-dispatch probe comparison. Returns false on any
/// contract violation (differing hits or words_scanned across modes).
bool run_probe_bench(benchjson::Writer& out, bool quick) {
  // Sparse rows x sparse masks: most probes are long scans (misses or late
  // hits), the regime the oracle's A_weak probes live in and the one the
  // vector path targets. The 0.5 mask keeps the early-hit path honest in the
  // cross-mode identity check without dominating the clock.
  const std::int64_t n = quick ? 1024 : 4096;
  Rng rng(20250809);
  BitMatrix m(n, n);
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < n; ++c)
      if (rng.next_bool(0.005)) m.set(r, c);
  std::vector<BitVec> masks;
  for (const double density : {0.0, 0.002, 0.01, 0.5}) {
    BitVec mask(n);
    for (std::int64_t c = 0; c < n; ++c)
      if (rng.next_bool(density)) mask.set(c);
    masks.push_back(std::move(mask));
  }

  const int reps = quick ? 5 : 9;
  const bool was_forced = scalar_bit_kernels_forced();
  force_scalar_bit_kernels(true);
  const ProbeResult scalar = probe_sweep(m, masks, reps);
  force_scalar_bit_kernels(false);  // the second sweep follows CPU detection
  const char* detected = bit_kernel_name(active_bit_kernel());
  const ProbeResult active = probe_sweep(m, masks, reps);
  force_scalar_bit_kernels(was_forced);

  const bool same = active.hit_checksum == scalar.hit_checksum &&
                    active.words_scanned == scalar.words_scanned;
  Table t({"dispatch", "ns/probe", "words_scanned", "speedup vs scalar",
           "identical"});
  t.add_row({"scalar", Table::num(scalar.ns_per_probe, 2),
             Table::integer(scalar.words_scanned), Table::num(1.0, 2), "ref"});
  t.add_row({detected, Table::num(active.ns_per_probe, 2),
             Table::integer(active.words_scanned),
             Table::num(scalar.ns_per_probe / active.ns_per_probe, 2),
             same ? "yes" : "NO"});
  char title[96];
  std::snprintf(title, sizeof title,
                "first_common_in_row probe kernel (n=%lld, %zu masks)",
                static_cast<long long>(n), masks.size());
  t.print(title);

  benchjson::Record scalar_rec{"compressed_store", "probe/scalar", 1};
  scalar_rec.ns_per_probe = scalar.ns_per_probe;
  scalar_rec.identical = same;
  out.add(scalar_rec);
  char cell[48];
  std::snprintf(cell, sizeof cell, "probe/%s", detected);
  benchjson::Record active_rec{"compressed_store", cell, 1};
  active_rec.ns_per_probe = active.ns_per_probe;
  active_rec.identical = same;
  out.add(active_rec);
  return same;
}

void run_engine_comparison(benchjson::Writer& out, const char* workload,
                           const char* title, Vertex n,
                           const std::vector<EdgeUpdate>& updates, double eps,
                           std::int64_t rebuild_every,
                           std::int64_t batch_size) {
  const auto batches = slice_updates(updates, batch_size);
  const auto count = static_cast<double>(updates.size());

  double seq_time = 0.0;
  RunState reference;
  double flat_bpv = 0.0;
  {
    MatrixWeakOracle oracle(n);
    DynamicMatcherConfig cfg;
    cfg.eps = eps;
    cfg.rebuild_every = rebuild_every;
    DynamicMatcher dm(n, oracle, cfg);
    Timer t;
    for (const EdgeUpdate& up : updates) dm.apply(up);
    seq_time = t.seconds();
    // Modelled flat footprint: one std::vector header per vertex plus the
    // directed adjacency payload (2m Vertex entries).
    flat_bpv = (static_cast<double>(n) * sizeof(std::vector<Vertex>) +
                2.0 * static_cast<double>(dm.graph().num_edges()) *
                    sizeof(Vertex)) /
               static_cast<double>(n);
    reference = state_of(dm);
  }

  Table t({"mode", "time (s)", "updates/sec", "speedup vs flat", "rebuilds",
           "bytes/vertex", "identical"});
  t.add_row({"flat seq", Table::num(seq_time, 4),
             Table::num(count / seq_time, 0), Table::num(1.0, 2),
             Table::integer(reference.rebuilds), Table::num(flat_bpv, 1),
             "ref"});
  for (const int threads : {1, 2, 8}) {
    CompressedMatcherConfig cfg;
    cfg.eps = eps;
    cfg.rebuild_every = rebuild_every;
    cfg.threads = threads;
    CompressedDynamicMatcher dm(n, cfg);
    Timer timer;
    for (const auto& batch : batches) dm.apply_batch(batch);
    const double s = timer.seconds();
    // Live footprint before state_of's snapshot() folds the delta buffers.
    const double bpv =
        static_cast<double>(dm.store().csr_bytes() + dm.store().delta_bytes()) /
        static_cast<double>(n);
    const RunState got = state_of(dm);
    const bool same = got == reference;
    char mode[32];
    std::snprintf(mode, sizeof mode, "csr x %dT", threads);
    t.add_row({mode, Table::num(s, 4), Table::num(count / s, 0),
               Table::num(seq_time / s, 2), Table::integer(got.rebuilds),
               Table::num(bpv, 1), same ? "yes" : "NO"});
    benchjson::Record rec{"compressed_store", workload, threads, count / s,
                          s * 1000.0, got.rebuilds, same};
    rec.bytes_per_vertex = bpv;
    out.add(rec);
  }
  t.print(title);
}

}  // namespace

int main(int argc, char** argv) {
  const benchjson::BenchArgs args = benchjson::parse_args(argc, argv);
  std::printf("hardware_concurrency=%u quick=%d detected_kernel=%s\n\n",
              std::thread::hardware_concurrency(), args.quick ? 1 : 0,
              bit_kernel_name(active_bit_kernel()));

  benchjson::Writer out;
  bool probes_ok = run_probe_bench(out, args.quick);

  {
    const Vertex n = args.quick ? 3000 : 15000;
    Rng rng(2025);
    const auto updates = dyn_random_updates(n, args.quick ? 24000 : 120000,
                                            /*insert_prob=*/0.75, rng);
    run_engine_comparison(out, "update_path",
                          "compressed update-path throughput (rebuilds "
                          "excluded)",
                          n, updates, 0.25, /*rebuild_every=*/1 << 30,
                          /*batch_size=*/2048);
  }

  {
    const Vertex n = args.quick ? 200 : 300;
    Rng rng(7);
    const auto updates =
        dyn_mixed_churn(n, args.quick ? 3000 : 6000, rng);
    run_engine_comparison(out, "adaptive_rebuilds",
                          "compressed adaptive-rebuild identity (Theorem 6.2 "
                          "rebuilds + delta folds)",
                          n, updates, 0.25, /*rebuild_every=*/0,
                          /*batch_size=*/128);
  }

  if (!args.json_path.empty() && !out.write(args.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!probes_ok || !out.all_identical()) {
    std::fprintf(stderr, "DIVERGENCE: a compressed run or probe mode differed "
                         "from its reference\n");
    return 1;
  }
  return 0;
}
