/// F4-SMP — Figure 4: per-structure vertex sampling.
///
/// Figure 4 illustrates the dynamic framework's sampling step: one vertex is
/// drawn from each structure; a type-2 arc between two structures survives
/// into G[S] with probability at least 1/Delta^2 (both endpoints sampled).
/// Lemma 6.8 then applies a Chernoff bound across a matching N' of such arcs.
/// We measure both: the per-arc preservation frequency against the 1/Delta^2
/// bound, and the concentration of the number of preserved arcs.

#include <cmath>
#include <cstdio>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace bmf;
  Rng rng(42);

  Table t({"Delta (structure size)", "bound 1/Delta^2", "measured", "trials"});
  for (int delta : {2, 3, 6, 9, 15}) {
    // Two structures of `delta` vertices each; the witness arc joins vertex 0
    // of each. Sampling picks one vertex per structure uniformly.
    const std::int64_t trials = 200000;
    std::int64_t preserved = 0;
    for (std::int64_t i = 0; i < trials; ++i) {
      const bool hit_a = rng.next_below(static_cast<std::uint64_t>(delta)) == 0;
      const bool hit_b = rng.next_below(static_cast<std::uint64_t>(delta)) == 0;
      preserved += (hit_a && hit_b);
    }
    const double measured =
        static_cast<double>(preserved) / static_cast<double>(trials);
    t.add_row({Table::integer(delta),
               Table::num(1.0 / (static_cast<double>(delta) * delta), 5),
               Table::num(measured, 5), Table::integer(trials)});
  }
  t.print("Figure 4a: preservation probability of a fixed type-2 arc");

  // Lemma 6.8 concentration: N' disjoint structure pairs, X = # preserved.
  Table t2({"|N'| pairs", "Delta", "E[X] = |N'|/Delta^2", "mean X", "P[X <= E/2]"});
  for (const auto& [pairs, delta] : std::vector<std::pair<int, int>>{
           {512, 4}, {2048, 4}, {2048, 8}, {8192, 8}}) {
    const std::int64_t trials = 2000;
    Accumulator acc;
    std::int64_t low = 0;
    const double expectation =
        static_cast<double>(pairs) / (static_cast<double>(delta) * delta);
    for (std::int64_t tr = 0; tr < trials; ++tr) {
      std::int64_t x = 0;
      for (int p = 0; p < pairs; ++p) {
        const bool a = rng.next_below(static_cast<std::uint64_t>(delta)) == 0;
        const bool b = rng.next_below(static_cast<std::uint64_t>(delta)) == 0;
        x += (a && b);
      }
      acc.add(static_cast<double>(x));
      low += (static_cast<double>(x) <= expectation / 2.0);
    }
    t2.add_row({Table::integer(pairs), Table::integer(delta),
                Table::num(expectation, 1), Table::num(acc.mean(), 1),
                Table::num(static_cast<double>(low) / static_cast<double>(trials), 5)});
  }
  t2.print("Figure 4b / Lemma 6.8: concentration of preserved-arc counts");
  std::printf(
      "shape: measured frequency matches 1/Delta^2 exactly (the bound is\n"
      "tight for the witness arc) and the deviation probability collapses as\n"
      "E[X] grows, as the Chernoff argument of Lemma 6.8 requires.\n");
  return 0;
}
