/// MatchingService closed-loop bench: updates/sec through the ingest
/// queue + writer pipeline and snapshot-read latency percentiles (p50/p99)
/// under concurrent readers, in the two classic arrival models:
///
///  * **closed** — the producer blocks on `submit`, so queue backpressure
///    paces it: offered load adapts to service throughput (no drops; every
///    update commits);
///  * **open** — the producer fires `try_submit` bursts on a fixed schedule
///    regardless of service progress; when the bounded queue is full the
///    update is dropped and counted, like an overloaded front-end shedding
///    load.
///
/// Readers spin on a `SnapshotReader` (one yield per read — this bench also
/// runs on small CI boxes), timing each `size()` query. Reads are wait-free
/// snapshot loads, so the percentiles measure the read path itself, not
/// writer contention.
///
/// The identity column is the service's correctness contract, not bit-level
/// replay (coalescing is timing-dependent by design): the final published
/// matching must equal the sequential engine run over exactly the *accepted*
/// update sequence. Exits non-zero on divergence; the bench-smoke CI job runs
/// `--quick --json` into BENCH_pr.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "service/matching_service.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/dyn_workload.hpp"

using namespace bmf;

namespace {

struct ReadSample {
  std::vector<double> lat_us;
  std::int64_t reads = 0;
};

double percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0.0;
  const auto k = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(k),
                   v.end());
  return v[k];
}

std::vector<Vertex> sequential_mates(Vertex n, std::span<const EdgeUpdate> ups,
                                     const DynamicCoreConfig& core) {
  MatrixWeakOracle oracle(n);
  DynamicMatcherConfig cfg;
  static_cast<DynamicCoreConfig&>(cfg) = core;
  cfg.threads = 1;
  DynamicMatcher dm(n, oracle, cfg);
  for (const EdgeUpdate& up : ups) dm.apply(up);
  std::vector<Vertex> mates;
  for (Vertex v = 0; v < n; ++v) mates.push_back(dm.matching().mate(v));
  return mates;
}

struct ModeResult {
  double wall_s = 0.0;
  std::int64_t accepted = 0;
  std::int64_t dropped = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::int64_t reads = 0;
  ServiceStats stats;
  bool identical = false;
};

ModeResult run_mode(bool open_loop, Vertex n,
                    const std::vector<EdgeUpdate>& updates,
                    const ServiceConfig& cfg, int reader_count,
                    std::int64_t burst, std::chrono::microseconds period) {
  MatchingService svc(n, cfg);

  std::atomic<bool> stop{false};
  std::vector<ReadSample> samples(static_cast<std::size_t>(reader_count));
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(reader_count));
  for (int t = 0; t < reader_count; ++t) {
    readers.emplace_back([&, t] {
      SnapshotReader reader(svc);
      ReadSample& s = samples[static_cast<std::size_t>(t)];
      while (!stop.load(std::memory_order_acquire)) {
        Timer timer;
        (void)reader.size();
        s.lat_us.push_back(timer.seconds() * 1e6);
        ++s.reads;
        std::this_thread::yield();
      }
    });
  }

  ModeResult r;
  std::vector<EdgeUpdate> accepted;
  accepted.reserve(updates.size());
  Timer wall;
  if (!open_loop) {
    for (const EdgeUpdate& up : updates) {
      if (!svc.submit(up)) break;
      accepted.push_back(up);
    }
  } else {
    auto deadline = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < updates.size(); i += static_cast<std::size_t>(burst)) {
      const std::size_t end =
          std::min(updates.size(), i + static_cast<std::size_t>(burst));
      for (std::size_t j = i; j < end; ++j) {
        if (svc.try_submit(updates[j]))
          accepted.push_back(updates[j]);
        else
          ++r.dropped;
      }
      deadline += period;
      std::this_thread::sleep_until(deadline);
    }
  }
  svc.flush();
  r.wall_s = wall.seconds();
  stop.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();

  r.accepted = static_cast<std::int64_t>(accepted.size());
  const auto fin = svc.latest();
  svc.close();
  r.stats = svc.stats();

  std::vector<double> all;
  for (ReadSample& s : samples) {
    all.insert(all.end(), s.lat_us.begin(), s.lat_us.end());
    r.reads += s.reads;
  }
  r.p50_us = percentile(all, 0.50);
  r.p99_us = percentile(all, 0.99);

  const std::vector<Vertex> want = sequential_mates(n, accepted, cfg);
  r.identical =
      fin->updates_applied() == r.accepted &&
      std::equal(want.begin(), want.end(), fin->mates().begin(),
                 fin->mates().end());
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const benchjson::BenchArgs args = benchjson::parse_args(argc, argv);
  std::printf("hardware_concurrency=%u quick=%d\n\n",
              std::thread::hardware_concurrency(), args.quick ? 1 : 0);

  benchjson::Writer out;
  Table table({"mode", "updates/sec", "epochs", "mean batch", "p50 us",
               "p99 us", "reads", "dropped", "identical"});

  struct Scenario {
    const char* name;
    bool open_loop;
    Vertex n;
    std::int64_t count;
    std::int64_t rebuild_every;
  };
  const int readers = 2;
  const std::vector<Scenario> scenarios = {
      // Throughput story: rebuilds pushed out of the measurement window.
      {"closed/throughput", false, args.quick ? Vertex{4000} : Vertex{20000},
       args.quick ? 20000 : 100000, std::int64_t{1} << 30},
      // Rebuild story: adaptive Theorem 6.2 rebuilds inside the loop.
      {"closed/rebuilds", false, args.quick ? Vertex{200} : Vertex{300},
       args.quick ? 2000 : 5000, 0},
      // Open arrivals: fixed-rate bursts, queue overflow sheds load.
      {"open/throughput", true, args.quick ? Vertex{4000} : Vertex{20000},
       args.quick ? 20000 : 100000, std::int64_t{1} << 30},
  };

  bool all_identical = true;
  for (const Scenario& sc : scenarios) {
    Rng rng(99);
    const auto updates = dyn_random_updates(sc.n, sc.count, 0.75, rng);
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.threads = 2;
    cfg.rebuild_every = sc.rebuild_every;
    cfg.queue_capacity = 4096;
    cfg.coalesce_max = 512;
    cfg.max_lag = 2;
    const ModeResult r =
        run_mode(sc.open_loop, sc.n, updates, cfg, readers,
                 /*burst=*/1024, std::chrono::microseconds(2000));

    const double ups_per_sec =
        static_cast<double>(r.accepted) / std::max(r.wall_s, 1e-9);
    const double mean_batch =
        r.stats.epochs > 0 ? static_cast<double>(r.stats.updates_committed) /
                                 static_cast<double>(r.stats.epochs)
                           : 0.0;
    table.add_row({sc.name, Table::num(ups_per_sec, 0),
                   Table::integer(r.stats.epochs), Table::num(mean_batch, 1),
                   Table::num(r.p50_us, 2), Table::num(r.p99_us, 2),
                   Table::integer(r.reads), Table::integer(r.dropped),
                   r.identical ? "yes" : "NO"});
    benchjson::Record rec;
    rec.bench = "service_closed_loop";
    rec.workload = sc.name;
    rec.threads = readers;
    rec.updates_per_sec = ups_per_sec;
    rec.rebuild_ms = r.wall_s * 1000.0;
    rec.rebuilds = r.stats.rebuilds;
    rec.identical = r.identical;
    rec.read_p50_us = r.p50_us;
    rec.read_p99_us = r.p99_us;
    out.add(rec);
    all_identical = all_identical && r.identical;
  }
  table.print("matching service closed/open-loop (2 readers, 1 writer)");

  if (!args.json_path.empty() && !out.write(args.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!all_identical) {
    std::fprintf(stderr, "DIVERGENCE: a service run differed from the "
                         "sequential reference over its accepted updates\n");
    return 1;
  }
  return 0;
}
