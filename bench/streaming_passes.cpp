/// PASS — semi-streaming pass counts (Section 4, the [MMSS25] substrate).
///
/// The streaming algorithm the framework simulates runs in poly(1/eps)
/// passes. We measure passes, memory words and quality across eps and
/// families; the pass count must grow polynomially in 1/eps (via l_max and
/// the scale/phase schedule) and be independent of m.

#include <cmath>
#include <cstdio>

#include "matching/blossom_exact.hpp"
#include "stream/streaming_matcher.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  Table t({"workload", "eps", "passes", "peak words", "|M|", "mu", "ratio"});
  std::vector<double> inv_eps, passes;
  for (double eps : {0.5, 0.25, 0.125}) {
    const auto k = static_cast<Vertex>(std::ceil(1.0 / eps));
    const Graph chains = gen_adversarial_chains(48, k);
    CoreConfig cfg;
    cfg.eps = eps;
    const StreamingResult r = streaming_matching(chains, cfg);
    const std::int64_t mu = maximum_matching_size(chains);
    t.add_row({"chains 48 x k~1/eps", Table::num(eps, 3),
               Table::integer(r.passes), Table::integer(r.peak_memory_words),
               Table::integer(r.matching.size()), Table::integer(mu),
               Table::num(static_cast<double>(mu) /
                              static_cast<double>(r.matching.size()),
                          4)});
    inv_eps.push_back(1.0 / eps);
    passes.push_back(static_cast<double>(r.passes));
  }
  Rng rng(9);
  for (std::int64_t m : {4000L, 16000L, 64000L}) {
    const Graph g = gen_random_graph(1000, m, rng);
    CoreConfig cfg;
    cfg.eps = 0.25;
    const StreamingResult r = streaming_matching(g, cfg);
    const std::int64_t mu = maximum_matching_size(g);
    t.add_row({("random n=1000 m=" + std::to_string(m)).c_str(), "0.250",
               Table::integer(r.passes), Table::integer(r.peak_memory_words),
               Table::integer(r.matching.size()), Table::integer(mu),
               Table::num(static_cast<double>(mu) /
                              static_cast<double>(r.matching.size()),
                          4)});
  }
  t.print("PASS: semi-streaming pass counts");
  std::printf("fitted exponent of passes ~ (1/eps)^k on chains: k = %.2f\n",
              fit_loglog_slope(inv_eps, passes));
  std::printf("passes do not grow with the stream length m (they track the\n"
              "number of phases, i.e. the augmenting-path structure and eps).\n");
  return 0;
}
