/// F1-STR — Figure 1: anatomy of a structure S_alpha.
///
/// Figure 1 of the paper is a schematic of one structure: the subgraph
/// G_alpha, its blossoms Omega_alpha, the contracted alternating tree
/// T'_alpha and the active path to the working vertex w'_alpha. This bench
/// renders a live structure in that shape (ASCII) from an instrumented run
/// and reports the population statistics the figure's objects obey: structure
/// sizes against the hold limit (Lemma 4.5 flavor), blossom nesting depth and
/// active-path length against l_max = 3/eps.

#include <cstdio>

#include "core/framework.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

namespace {

using namespace bmf;

void render_blossom(const StructureForest& f, BlossomId b, int indent,
                    std::string& out) {
  const BlossomNode& nb = f.arena().node(b);
  out.append(static_cast<std::size_t>(indent), ' ');
  char buf[160];
  if (nb.is_trivial()) {
    std::snprintf(buf, sizeof(buf), "%s v%d%s\n", nb.outer ? "(outer)" : "(inner)",
                  nb.vert,
                  nb.outer
                      ? ""
                      : (" label=" + std::to_string(f.label(nb.vert))).c_str());
  } else {
    std::snprintf(buf, sizeof(buf), "(outer) blossom B%d base=v%d |B|=%lld\n", b,
                  nb.base, static_cast<long long>(f.arena().vertex_count(b)));
  }
  out += buf;
  for (BlossomId c : nb.tree_children) render_blossom(f, c, indent + 2, out);
}

}  // namespace

int main() {
  using namespace bmf;

  // One odd 9-cycle with a pendant path: the structure grows as a branching
  // alternating tree, then contracts the cycle into a blossom — the exact
  // anatomy Figure 1 depicts.
  GraphBuilder gb(13);
  for (Vertex i = 0; i < 9; ++i) gb.add_edge(i, (i + 1) % 9);
  gb.add_edge(4, 9);
  gb.add_edge(9, 10);
  gb.add_edge(10, 11);
  gb.add_edge(11, 12);
  const Graph g = gb.build();
  Matching m(g.num_vertices());
  for (Vertex i = 1; i + 1 < 9; i += 2) m.add(i, i + 1);  // 0 stays free
  m.add(9, 10);
  m.add(11, 12);

  CoreConfig cfg;
  cfg.eps = 0.25;
  StructureForest forest(g, m, cfg);
  forest.init_phase();
  GreedyMatchingOracle oracle;
  FrameworkDriver driver(g, oracle, cfg);

  std::printf("== Figure 1: a live structure S_alpha (alternating tree view) ==\n");
  for (int tau = 0; tau < 4; ++tau) {
    forest.begin_pass_bundle(cfg.hold_limit(0.5));
    driver.extend_active_path(forest);
    driver.contract_and_augment(forest);
    forest.backtrack_stuck();
    const StructureInfo& si = forest.structure(0);
    std::printf("-- after pass-bundle %d: |S_alpha| = %lld, working = %s\n",
                tau + 1, static_cast<long long>(si.size),
                si.working == kNoBlossom
                    ? "(inactive)"
                    : ("B" + std::to_string(si.working)).c_str());
    if (!si.removed) {
      std::string out;
      render_blossom(forest, si.root, 2, out);
      std::fputs(out.c_str(), stdout);
      std::printf("  active path length (tree hops): %zu\n",
                  forest.active_path(0).size());
    }
  }

  // Population statistics over a full boosted run.
  Rng rng(5);
  const Graph big = gen_planted_matching(3000, 9000, rng);
  GreedyMatchingOracle oracle2;
  CoreConfig cfg2;
  cfg2.eps = 0.2;
  const BoostResult r = boost_matching(big, oracle2, cfg2);
  Table t({"metric", "value"});
  t.add_row({"graph", "planted matching n=3000, m=10500"});
  t.add_row({"final |M| / mu shape",
             Table::num(static_cast<double>(r.matching.size()), 0)});
  t.add_row({"augmenting paths applied", Table::integer(r.outcome.augmenting_paths)});
  t.add_row({"contractions (blossoms built)", Table::integer(r.outcome.ops.contracts)});
  t.add_row({"overtakes (case 1 / 2.1 / 2.2)",
             Table::integer(r.outcome.ops.overtake_unvisited) + " / " +
                 Table::integer(r.outcome.ops.overtake_same) + " / " +
                 Table::integer(r.outcome.ops.overtake_steal)});
  t.add_row({"backtracks", Table::integer(r.outcome.ops.backtracks)});
  t.add_row({"hold limit at h=1/2 (limit_h = 6/h+1)",
             Table::integer(cfg2.hold_limit(0.5))});
  t.add_row({"l_max = 3/eps", Table::integer(cfg2.ell_max())});
  t.print("Figure 1 statistics: structure machinery over a full run");
  return 0;
}
