/// Batched dynamic update throughput + determinism check.
///
/// DynamicMatcher::apply_batch cuts each batch into conflict-free prefixes
/// and applies graph mutations, decision evaluation, and bit-matrix oracle
/// maintenance concurrently, with serial in-order commits — bit-identical to
/// the sequential apply loop at any thread count (the batch determinism
/// contract in src/dynamic/dynamic_matcher.hpp). This bench measures
/// updates/sec of the batched path against the one-at-a-time loop and
/// verifies the identity:
///
///  * a large update-path run (rebuilds pushed out of the measurement) where
///    the batch engine's parallel fan-out is the whole story;
///  * a small adaptive-rebuild run where rebuild positions, rebuild counts,
///    and A_weak call counts must line up exactly as well.
///
/// Expect the batched path to pull ahead of sequential on real cores as
/// threads grow; on a single-core host it only shows the engine's overhead.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/dyn_workload.hpp"

using namespace bmf;

namespace {

struct RunState {
  std::vector<Vertex> mates;
  std::int64_t edges = 0;
  std::int64_t rebuilds = 0;
  std::int64_t weak_calls = 0;

  friend bool operator==(const RunState&, const RunState&) = default;
};

// Collected through the abstract engine surface — one collector serves any
// replay-core facade.
RunState state_of(const ReplayEngine& engine) {
  RunState s;
  const LiveEngineView view = engine.view();
  for (Vertex v = 0; v < view.num_vertices(); ++v)
    s.mates.push_back(view.mate_of(v));
  s.edges = engine.snapshot().num_edges();
  s.rebuilds = engine.rebuilds();
  s.weak_calls = engine.weak_calls();
  return s;
}

void run_comparison(benchjson::Writer& out, const char* workload,
                    const char* title, Vertex n,
                    const std::vector<EdgeUpdate>& updates, double eps,
                    std::int64_t rebuild_every, std::int64_t batch_size) {
  const auto batches = slice_updates(updates, batch_size);
  const auto count = static_cast<double>(updates.size());

  DynamicMatcherConfig cfg;
  cfg.eps = eps;
  cfg.rebuild_every = rebuild_every;

  double seq_time = 0.0;
  RunState reference;
  {
    MatrixWeakOracle oracle(n);
    DynamicMatcher dm(n, oracle, cfg);
    Timer t;
    for (const EdgeUpdate& up : updates) dm.apply(up);
    seq_time = t.seconds();
    reference = state_of(dm);
  }

  Table t({"mode", "time (s)", "updates/sec", "speedup vs seq", "rebuilds",
           "identical"});
  t.add_row({"sequential", Table::num(seq_time, 4),
             Table::num(count / seq_time, 0), Table::num(1.0, 2),
             Table::integer(reference.rebuilds), "ref"});
  for (const int threads : {1, 2, 8}) {
    cfg.threads = threads;
    MatrixWeakOracle oracle(n);
    DynamicMatcher dm(n, oracle, cfg);
    Timer timer;
    for (const auto& batch : batches) dm.apply_batch(batch);
    const double s = timer.seconds();
    const RunState got = state_of(dm);
    const bool same = got == reference;
    char mode[32];
    std::snprintf(mode, sizeof mode, "batched %dT", threads);
    t.add_row({mode, Table::num(s, 4), Table::num(count / s, 0),
               Table::num(seq_time / s, 2), Table::integer(got.rebuilds),
               same ? "yes" : "NO"});
    out.add({"dynamic_batch", workload, threads, count / s, s * 1000.0,
             got.rebuilds, same});
  }
  t.print(title);
}

}  // namespace

int main(int argc, char** argv) {
  const benchjson::BenchArgs args = benchjson::parse_args(argc, argv);
  std::printf("hardware_concurrency=%u quick=%d\n\n",
              std::thread::hardware_concurrency(), args.quick ? 1 : 0);

  benchjson::Writer out;
  {
    const Vertex n = args.quick ? 4000 : 20000;
    Rng rng(2025);
    const auto updates =
        dyn_random_updates(n, args.quick ? 24000 : 120000, 0.75, rng);
    run_comparison(
        out, "update_path",
        "update-path throughput (rebuilds excluded)", n, updates, 0.25,
        /*rebuild_every=*/1 << 30, /*batch_size=*/2048);
  }

  {
    const Vertex n = args.quick ? 200 : 300;
    Rng rng(7);
    const auto updates = dyn_random_updates(n, args.quick ? 3000 : 6000, 0.7, rng);
    run_comparison(out, "adaptive_rebuilds",
                   "adaptive-rebuild identity (Theorem 6.2 rebuilds)", n,
                   updates, 0.25, /*rebuild_every=*/0, /*batch_size=*/128);
  }

  {
    // Phase-rotating churn on a fixed rebuild cadence: every regime of the
    // replay core in one stream, with rebuild/update overlap windows
    // (including pre-classified deletion windows) recurring throughout.
    const Vertex n = args.quick ? 200 : 300;
    Rng rng(13);
    const auto updates = dyn_mixed_churn(n, args.quick ? 3000 : 6000, rng);
    run_comparison(out, "mixed_churn_overlap",
                   "mixed-churn identity (deletion-window overlap)", n, updates,
                   0.25, /*rebuild_every=*/24, /*batch_size=*/128);
  }

  if (!args.json_path.empty() && !out.write(args.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!out.all_identical()) {
    std::fprintf(stderr, "DIVERGENCE: a batched run differed from the "
                         "sequential reference\n");
    return 1;
  }
  return 0;
}
