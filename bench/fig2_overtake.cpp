/// F2-OVT — Figure 2: the Overtake operation (case 2.2, subtree theft).
///
/// Figure 2 shows S_alpha overtaking the matched arc (v, t) from S_beta:
/// the subtree rooted at v' moves between structures, labels drop, and the
/// victim's working vertex retreats to Omega(p). We replay that exact
/// scenario with a printed before/after trace, then measure how often each
/// overtake case fires across workload families (the figure's mechanism is
/// case 2.2; cases 1 and 2.1 are its degenerate siblings).

#include <cstdio>

#include "core/framework.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  {
    // The Figure 2 graph: beta's chain 10 -u- 5 =m= 6 -u- 1 =m= 2 and
    // alpha adjacent to 1.
    const Graph g = make_graph(
        11, std::vector<Edge>{{10, 5}, {5, 6}, {6, 1}, {1, 2}, {0, 1}});
    Matching m(11);
    m.add(5, 6);
    m.add(1, 2);
    CoreConfig cfg;
    cfg.eps = 0.25;
    StructureForest f(g, m, cfg);
    f.init_phase();
    f.begin_pass_bundle(1000);
    f.overtake(10, 5, 1);
    f.begin_pass_bundle(1000);
    f.overtake(6, 1, 2);

    std::printf("== Figure 2 replay ==\n");
    std::printf("before: |S_alpha| = %lld, |S_beta| = %lld, label(1) = %d, "
                "w'_beta = Omega(%d)\n",
                static_cast<long long>(f.structure(f.structure_of(0)).size),
                static_cast<long long>(f.structure(f.structure_of(10)).size),
                f.label(1), 2);
    f.begin_pass_bundle(1000);
    f.overtake(0, 1, 1);  // the figure's operation
    std::printf("after:  |S_alpha| = %lld, |S_beta| = %lld, label(1) = %d, "
                "w'_alpha = Omega(2), w'_beta = Omega(6)\n",
                static_cast<long long>(f.structure(f.structure_of(0)).size),
                static_cast<long long>(f.structure(f.structure_of(10)).size),
                f.label(1));
    std::printf("case 2.2 count: %lld (subtree with {1,2} moved to S_alpha)\n\n",
                static_cast<long long>(f.totals().overtake_steal));
  }

  Table t({"workload", "case 1 (unvisited)", "case 2.1 (reparent)",
           "case 2.2 (steal)", "contracts", "augments"});
  Rng rng(3);
  struct Item {
    const char* name;
    Graph g;
  };
  const Item items[] = {
      {"random n=2000 m=6000", gen_random_graph(2000, 6000, rng)},
      {"planted n=2000", gen_planted_matching(2000, 4000, rng)},
      {"chains 64 x k=6 (adversarial)", gen_adversarial_chains(64, 6)},
      {"odd cycles 48 x C9", gen_odd_cycles(48, 9)},
      {"near-regular d=4", gen_near_regular(2000, 4, rng)},
  };
  for (const Item& item : items) {
    GreedyMatchingOracle oracle;
    CoreConfig cfg;
    cfg.eps = 0.125;
    const BoostResult r = boost_matching(item.g, oracle, cfg);
    t.add_row({item.name, Table::integer(r.outcome.ops.overtake_unvisited),
               Table::integer(r.outcome.ops.overtake_same),
               Table::integer(r.outcome.ops.overtake_steal),
               Table::integer(r.outcome.ops.contracts),
               Table::integer(r.outcome.ops.augments)});
  }
  t.print("Figure 2 statistics: basic-operation counts by workload (eps = 1/8)");
  return 0;
}
