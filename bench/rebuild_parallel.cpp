/// Parallel Theorem 6.2 rebuild engine: wall clock + bit-identity at 1/2/8
/// threads.
///
/// Three workloads cover the three layers this engine parallelizes:
///
///  * `static_boost` — one boost_matching run (FrameworkDriver H'/H'_s
///    discovery fans out per structure); rebuild_ms is the boost wall time.
///  * `churn_rebuilds` — a churning planted matching under the adaptive
///    rebuild schedule: rebuild-dominated dynamic stream, so the parallel
///    rebuild is nearly the whole wall clock.
///  * `deletion_teardown` — planted pairs torn down by consecutive matched
///    deletions: exercises the reservation rematch on long heavy runs.
///
/// Every cell is checked bit-identical against the sequential reference; any
/// divergence prints NO and the process exits non-zero (the bench-smoke CI
/// job doubles as a Release-mode determinism check). Speedups need real
/// cores; on a 1-core host the table only shows engine overhead.

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

using namespace bmf;

namespace {

struct RunState {
  std::vector<Vertex> mates;
  std::int64_t rebuilds = 0;
  std::int64_t weak_calls = 0;
  RebuildStats rebuild_stats;
  /// Flat engines have no shard boundary, so the ledger must stay all-zero
  /// in every cell; folding it into the equality makes a spuriously charged
  /// counter flip `identical` and fail the run (the --quick CI smoke).
  CommStats comm;

  friend bool operator==(const RunState&, const RunState&) = default;
};

// Collected through the abstract engine surface — one collector serves any
// replay-core facade.
RunState state_of(const ReplayEngine& engine) {
  RunState s;
  const LiveEngineView view = engine.view();
  for (Vertex v = 0; v < view.num_vertices(); ++v)
    s.mates.push_back(view.mate_of(v));
  s.rebuilds = engine.rebuilds();
  s.weak_calls = engine.weak_calls();
  s.rebuild_stats = engine.rebuild_stats();
  s.comm = engine.comm_stats();
  return s;
}

void bench_static_boost(benchjson::Writer& out, bool quick) {
  const Vertex n = quick ? 600 : 3000;
  const std::int64_t m = quick ? 2400 : 15000;
  Rng rng(2026);
  const Graph g = gen_random_graph(n, m, rng);

  Table t({"mode", "time (s)", "matching", "oracle calls", "identical"});
  std::vector<Vertex> reference;
  double t1 = 0.0;
  for (const int threads : {1, 2, 8}) {
    RandomGreedyMatchingOracle oracle(7);
    CoreConfig cfg;
    cfg.eps = 0.5;
    cfg.threads = threads;
    Timer timer;
    const BoostResult r = boost_matching(g, oracle, cfg);
    const double s = timer.seconds();
    if (threads == 1) t1 = s;
    std::vector<Vertex> mates;
    for (Vertex v = 0; v < n; ++v) mates.push_back(r.matching.mate(v));
    const bool same = threads == 1 || mates == reference;
    if (threads == 1) reference = std::move(mates);
    char mode[32];
    std::snprintf(mode, sizeof mode, "boost %dT", threads);
    t.add_row({mode, Table::num(s, 3), Table::integer(r.matching.size()),
               Table::integer(r.total_oracle_calls),
               threads == 1 ? "ref" : (same ? "yes" : "NO")});
    out.add({"rebuild_parallel", "static_boost", threads, 0.0, s * 1000.0, 0,
             same});
  }
  char title[96];
  std::snprintf(title, sizeof title,
                "static boost (n=%d, m=%lld, 1T=%.3fs)", n,
                static_cast<long long>(m), t1);
  t.print(title);
}

void bench_dynamic(benchjson::Writer& out, const char* workload,
                   const std::vector<EdgeUpdate>& updates, Vertex n, double eps,
                   std::int64_t batch_size) {
  const auto count = static_cast<double>(updates.size());
  DynamicMatcherConfig cfg;
  cfg.eps = eps;

  double seq_time = 0.0;
  RunState reference;
  {
    MatrixWeakOracle oracle(n);
    DynamicMatcher dm(n, oracle, cfg);
    Timer timer;
    for (const EdgeUpdate& up : updates) dm.apply(up);
    seq_time = timer.seconds();
    reference = state_of(dm);
  }

  Table t({"mode", "time (s)", "updates/sec", "speedup vs seq", "rebuilds",
           "identical"});
  t.add_row({"sequential", Table::num(seq_time, 4),
             Table::num(count / seq_time, 0), Table::num(1.0, 2),
             Table::integer(reference.rebuilds), "ref"});
  for (const int threads : {1, 2, 8}) {
    cfg.threads = threads;
    MatrixWeakOracle oracle(n);
    DynamicMatcher dm(n, oracle, cfg);
    Timer timer;
    for (const auto& batch : slice_updates(updates, batch_size))
      dm.apply_batch(batch);
    const double s = timer.seconds();
    const RunState got = state_of(dm);
    const bool same = got == reference;
    char mode[32];
    std::snprintf(mode, sizeof mode, "batched %dT", threads);
    t.add_row({mode, Table::num(s, 4), Table::num(count / s, 0),
               Table::num(seq_time / s, 2), Table::integer(got.rebuilds),
               same ? "yes" : "NO"});
    benchjson::Record rec{"rebuild_parallel", workload, threads, count / s,
                          s * 1000.0, got.rebuilds, same};
    rec.coord_bytes = got.comm.coord_bytes();
    rec.coord_rounds = got.comm.coord_rounds();
    out.add(rec);
  }
  t.print(workload);
}

}  // namespace

int main(int argc, char** argv) {
  const benchjson::BenchArgs args = benchjson::parse_args(argc, argv);
  std::printf("hardware_concurrency=%u quick=%d\n\n",
              std::thread::hardware_concurrency(), args.quick ? 1 : 0);

  benchjson::Writer out;
  bench_static_boost(out, args.quick);

  {
    const Vertex n = args.quick ? 260 : 1200;
    Rng rng(11);
    const auto updates = dyn_churn_planted(n, args.quick ? 2600 : 16000, rng);
    bench_dynamic(out, "churn_rebuilds", updates, n, 0.25,
                  /*batch_size=*/args.quick ? 64 : 256);
  }

  {
    const Vertex pairs = args.quick ? 700 : 4000;
    const Vertex hubs = pairs / 8;
    Rng rng(13);
    const auto updates = dyn_planted_teardown(pairs, hubs, rng);
    bench_dynamic(out, "deletion_teardown", updates, 2 * pairs + hubs, 1.0,
                  /*batch_size=*/args.quick ? 128 : 512);
  }

  if (!args.json_path.empty() && !out.write(args.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!out.all_identical()) {
    std::fprintf(stderr, "DIVERGENCE: a parallel run differed from the "
                         "sequential reference\n");
    return 1;
  }
  return 0;
}
