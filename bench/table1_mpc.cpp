/// T1-MPC — Table 1, MPC rows.
///
/// The paper's Table 1 compares the eps-dependence of three boosting
/// frameworks in MPC: [FMU22] O(1/eps^52), [FMU22]+[MMSS25] O(1/eps^39) and
/// this work O(1/eps^7 * log(1/eps)). Those are *scheduled worst-case*
/// invocation counts; no system evaluation exists in the paper. We reproduce
/// the table two ways:
///   (a) the scheduled-bound columns, printed from the papers' formulas, and
///   (b) measured A_matching invocations and simulated MPC rounds of our
///       implementation (and of the no-stage-split ablation, which is the
///       [FMU22]-style simulation this work improves on) on instances whose
///       augmenting-path length scales with 1/eps.
/// The claim under test is the *shape*: measured invocations of this work
/// grow polynomially with a small exponent, and the stage-split variant never
/// loses to the unsplit one.

#include <cmath>
#include <cstdio>

#include "matching/blossom_exact.hpp"
#include "mpc/mpc_boost.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  {
    Table sched({"framework", "complexity in eps", "eps=1/2", "eps=1/4", "eps=1/8"});
    auto row = [&](const char* name, const char* formula, double exp, bool logf) {
      std::vector<std::string> cells{name, formula};
      for (double eps : {0.5, 0.25, 0.125}) {
        double v = std::pow(1.0 / eps, exp);
        if (logf) v *= std::log2(1.0 / eps) + 1.0;
        cells.push_back(Table::num(v, 0));
      }
      sched.add_row(cells);
    };
    row("[FMU22]", "O(1/eps^52)", 52, false);
    row("[FMU22]+[MMSS25]", "O(1/eps^39)", 39, false);
    row("this work (Thm 1.1)", "O(1/eps^7 log(1/eps))", 7, true);
    sched.print("Table 1 (MPC): scheduled oracle-invocation bounds");
  }

  Table meas({"eps", "calls (ours)", "calls (no stage split)", "MPC rounds",
              "ratio", "certified"});
  std::vector<double> inv_eps, calls_series;
  for (double eps : {0.5, 0.25, 0.125, 0.0625}) {
    // Chains whose augmenting paths have length ~ 2/eps + 1: the regime the
    // framework exists for.
    const auto k = static_cast<Vertex>(std::ceil(1.0 / eps));
    const Graph g = gen_adversarial_chains(64, k);
    const std::int64_t mu = maximum_matching_size(g);

    CoreConfig cfg;
    cfg.eps = eps;
    const mpc::MpcBoostResult ours = mpc::mpc_boost_matching(g, {8, 0}, cfg);

    CoreConfig unsplit = cfg;
    unsplit.stage_split = false;
    const mpc::MpcBoostResult flat = mpc::mpc_boost_matching(g, {8, 0}, unsplit);

    inv_eps.push_back(1.0 / eps);
    calls_series.push_back(static_cast<double>(ours.boost.total_oracle_calls));
    meas.add_row({Table::num(eps, 4),
                  Table::integer(ours.boost.total_oracle_calls),
                  Table::integer(flat.boost.total_oracle_calls),
                  Table::integer(ours.total_rounds()),
                  Table::num(static_cast<double>(mu) /
                                 static_cast<double>(ours.boost.matching.size()),
                             4),
                  ours.boost.outcome.certified ? "yes" : "no"});
  }
  meas.print("Table 1 (MPC): measured on augmenting chains (64 gadgets, k ~ 1/eps)");
  std::printf(
      "fitted exponent of measured calls ~ (1/eps)^k: k = %.2f "
      "(paper bound: 7 + log factor; prior frameworks: 39-52)\n",
      fit_loglog_slope(inv_eps, calls_series));
  return 0;
}
