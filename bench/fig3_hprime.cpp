/// F3-HPR — Figure 3: the structure graph H' and the decay of mu(H').
///
/// Figure 3 shows how structures contract into the derived graph H'
/// (Definition 5.4) whose edges are type-2 arcs. The quantitative claim
/// behind it is Lemma 5.5: each A_matching iteration removes the matched
/// structures, so mu(H') decays by a (1 - 1/c) factor per iteration. We
/// instrument the first Contract-and-Augment simulation of a large run and
/// print the measured per-iteration series (H' vertices, edges, matched),
/// plus the same series for the stage graphs H'_s of Algorithm 5.

#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  Rng rng(11);
  const Graph g = gen_planted_matching(6000, 12000, rng);

  CoreConfig cfg;
  cfg.eps = 0.25;
  GreedyMatchingOracle oracle;
  Matching m = framework_initial_matching(g, oracle, cfg);
  std::printf("initial matching: |M| = %lld, free vertices = %zu\n",
              static_cast<long long>(m.size()), m.free_vertices().size());

  FrameworkDriver driver(g, oracle, cfg);
  std::vector<IterationObservation> ca_series, stage_series;
  driver.set_observer([&](const IterationObservation& obs) {
    if (obs.stage < 0) {
      if (ca_series.size() < 24) ca_series.push_back(obs);
    } else if (stage_series.size() < 24) {
      stage_series.push_back(obs);
    }
  });

  StructureForest forest(g, m, cfg);
  forest.init_phase();
  forest.begin_pass_bundle(cfg.hold_limit(0.5));
  driver.extend_active_path(forest);
  driver.contract_and_augment(forest);

  Table t({"iteration", "stage", "|V(H')|", "|E(H')|", "|M'| found", "decay"});
  double prev = 0;
  int it = 0;
  for (const auto& obs : stage_series) {
    t.add_row({Table::integer(++it), Table::integer(obs.stage),
               Table::integer(obs.h_vertices), Table::integer(obs.h_edges),
               Table::integer(obs.matched),
               prev > 0 ? Table::num(static_cast<double>(obs.matched) / prev, 3)
                        : "-"});
    prev = static_cast<double>(obs.matched);
  }
  t.print("Figure 3a: stage graphs H'_s (Algorithm 5), first pass-bundle");

  Table t2({"iteration", "|V(H')|", "|E(H')|", "|M'| found", "decay"});
  prev = 0;
  it = 0;
  for (const auto& obs : ca_series) {
    t2.add_row({Table::integer(++it), Table::integer(obs.h_vertices),
                Table::integer(obs.h_edges), Table::integer(obs.matched),
                prev > 0 ? Table::num(static_cast<double>(obs.matched) / prev, 3)
                         : "-"});
    prev = static_cast<double>(obs.matched);
  }
  t2.print("Figure 3b: structure graph H' (Algorithm 4), first pass-bundle");
  std::printf(
      "Lemma 5.5 shape: with a c = 2 oracle each iteration should shrink the\n"
      "remaining matching by roughly (1 - 1/c) = 0.5; the decay column above\n"
      "reports the measured per-iteration factor.\n");
  return 0;
}
