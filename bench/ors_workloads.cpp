/// ORS — Section 7.3: ordered Ruzsa-Szemerédi workloads (Theorem 7.4 regime).
///
/// Generates ORS graphs (trivial and greedy-ordered), verifies Definition 7.2,
/// and measures the dynamic matcher on ORS-derived update streams against
/// random churn. ORS instances concentrate large induced matchings on few
/// vertices — exactly the structures that make vertex-sampling oracles work
/// hardest, which is why ORS(n, Theta(n)) appears in Theorem 7.4's bound.

#include <cstdio>

#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "ors/ors.hpp"
#include "util/timer.hpp"
#include "util/table.hpp"
#include "workloads/dyn_workload.hpp"

int main() {
  using namespace bmf;

  Table gen({"construction", "n", "r", "t achieved", "edges", "verified"});
  {
    const OrsGraph triv = ors_trivial(240, 8, 15);
    gen.add_row({"trivial (disjoint)", Table::integer(triv.n),
                 Table::integer(triv.r()), Table::integer(triv.t()),
                 Table::integer(triv.graph().num_edges()),
                 verify_ors(triv) ? "yes" : "NO"});
  }
  for (std::uint64_t seed : {1u, 2u}) {
    Rng rng(seed);
    const OrsGraph ors = ors_greedy_random(240, 8, 60, rng);
    gen.add_row({("greedy-ordered seed=" + std::to_string(seed)).c_str(),
                 Table::integer(ors.n), Table::integer(ors.r()),
                 Table::integer(ors.t()),
                 Table::integer(ors.graph().num_edges()),
                 verify_ors(ors) ? "yes" : "NO"});
  }
  gen.print("ORS constructions (Definition 7.2); trivial t = n/2r = 15");

  // Dynamic matcher on ORS streams vs random churn of the same length.
  Table t({"workload", "updates", "us/update", "rebuilds", "A_weak calls"});
  Rng rng(5);
  const OrsGraph ors = ors_greedy_random(200, 10, 40, rng);
  const auto ors_updates = ors_update_sequence(ors);
  {
    MatrixWeakOracle oracle(ors.n);
    DynamicMatcherConfig cfg;
    cfg.eps = 0.25;
    DynamicMatcher dm(ors.n, oracle, cfg);
    Timer timer;
    for (const EdgeUpdate& up : ors_updates) dm.apply(up);
    t.add_row({"ORS insert+delete", Table::integer(static_cast<std::int64_t>(
                                        ors_updates.size())),
               Table::num(timer.micros() / static_cast<double>(ors_updates.size()), 1),
               Table::integer(dm.rebuilds()), Table::integer(dm.weak_calls())});
  }
  {
    Rng r2(6);
    const auto rand_updates =
        dyn_random_updates(ors.n, static_cast<std::int64_t>(ors_updates.size()),
                           0.7, r2);
    MatrixWeakOracle oracle(ors.n);
    DynamicMatcherConfig cfg;
    cfg.eps = 0.25;
    DynamicMatcher dm(ors.n, oracle, cfg);
    Timer timer;
    for (const EdgeUpdate& up : rand_updates) dm.apply(up);
    t.add_row({"random churn (same length)",
               Table::integer(static_cast<std::int64_t>(rand_updates.size())),
               Table::num(timer.micros() / static_cast<double>(rand_updates.size()), 1),
               Table::integer(dm.rebuilds()), Table::integer(dm.weak_calls())});
  }
  t.print("Dynamic matcher on ORS-hard vs random update streams (eps = 1/4)");
  return 0;
}
