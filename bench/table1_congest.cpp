/// T1-CON — Table 1, CONGEST rows.
///
/// CONGEST pays an extra poly(1/eps) factor for A_process: component
/// bookkeeping routes through representative vertices at O(component size)
/// rounds (Appendix A), lifting O(1/eps^7 log(1/eps)) to
/// O(1/eps^10 log(1/eps)) for this work ([FMU22]: 1/eps^63; +[MMSS25]:
/// 1/eps^42). We print the scheduled formulas and measure: simulated
/// handshake-matching rounds inside A_matching, A_process rounds charged from
/// the observed structure sizes, and the invocation counts.

#include <cmath>
#include <cstdio>

#include "congest/congest_boost.hpp"
#include "matching/blossom_exact.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  {
    Table sched({"framework", "complexity in eps", "eps=1/2", "eps=1/4", "eps=1/8"});
    auto row = [&](const char* name, const char* formula, double exp, bool logf) {
      std::vector<std::string> cells{name, formula};
      for (double eps : {0.5, 0.25, 0.125}) {
        double v = std::pow(1.0 / eps, exp);
        if (logf) v *= std::log2(1.0 / eps) + 1.0;
        cells.push_back(Table::num(v, 0));
      }
      sched.add_row(cells);
    };
    row("[FMU22]", "O(1/eps^63)", 63, false);
    row("[FMU22]+[MMSS25]", "O(1/eps^42)", 42, false);
    row("this work (Cor A.2)", "O(1/eps^10 log(1/eps))", 10, true);
    sched.print("Table 1 (CONGEST): scheduled round bounds");
  }

  Table meas({"eps", "oracle calls", "A_matching rounds", "A_process rounds",
              "max |S|", "ratio"});
  std::vector<double> inv_eps, rounds_series;
  for (double eps : {0.5, 0.25, 0.125}) {
    const auto k = static_cast<Vertex>(std::ceil(1.0 / eps));
    const Graph g = gen_adversarial_chains(48, k);
    const std::int64_t mu = maximum_matching_size(g);

    CoreConfig cfg;
    cfg.eps = eps;
    const congest::CongestBoostResult r = congest::congest_boost_matching(g, cfg);
    inv_eps.push_back(1.0 / eps);
    rounds_series.push_back(static_cast<double>(r.total_rounds()));
    meas.add_row(
        {Table::num(eps, 4), Table::integer(r.boost.total_oracle_calls),
         Table::integer(r.oracle_rounds), Table::integer(r.process_rounds),
         Table::integer(r.max_structure_size),
         Table::num(static_cast<double>(mu) /
                        static_cast<double>(r.boost.matching.size()),
                    4)});
  }
  meas.print("Table 1 (CONGEST): measured on augmenting chains (48 gadgets)");
  std::printf(
      "fitted exponent of total rounds ~ (1/eps)^k: k = %.2f "
      "(paper bound: 10 + log factor; prior frameworks: 42-63)\n",
      fit_loglog_slope(inv_eps, rounds_series));
  std::printf(
      "note: A_process rounds grow with max structure size (poly(1/eps)), "
      "reproducing the CONGEST/MPC gap of Table 1.\n");
  return 0;
}
