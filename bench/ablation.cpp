/// SCAL-ABL — ablations over the design choices DESIGN.md calls out.
///
///  * stage split (Algorithm 5) vs the unsplit [FMU22]-style loop — the
///    paper's key O(1/eps) -> O(log(1/eps)) iteration saving per stage;
///  * until-empty vs the paper's fixed 22c*ln(1/eps) iteration schedule
///    (contamination allowed);
///  * oracle quality: exact (c=1) vs greedy (c=2) vs randomized greedy.
///
/// Reported: A_matching invocations, pass-bundles, achieved ratio.

#include <cstdio>

#include "core/framework.hpp"
#include "matching/blossom_exact.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  const Graph g = gen_adversarial_chains(96, 6);
  const std::int64_t mu = maximum_matching_size(g);
  const double eps = 0.125;

  Table t({"variant", "oracle calls", "pass-bundles", "stage iterations",
           "truncated loops", "ratio", "certified"});
  auto run = [&](const char* name, CoreConfig cfg, MatchingOracle& oracle) {
    cfg.eps = eps;
    const BoostResult r = boost_matching(g, oracle, cfg);
    t.add_row({name, Table::integer(r.total_oracle_calls),
               Table::integer(r.outcome.pass_bundles),
               Table::integer(r.stats.stage_iterations),
               Table::integer(r.stats.truncated_loops),
               Table::num(static_cast<double>(mu) /
                              static_cast<double>(r.matching.size()),
                          4),
               r.outcome.certified ? "yes" : "no"});
  };

  {
    GreedyMatchingOracle o;
    run("ours (stage split, until-empty, greedy)", CoreConfig{}, o);
  }
  {
    CoreConfig cfg;
    cfg.stage_split = false;
    GreedyMatchingOracle o;
    run("no stage split ([FMU22]-style loop)", cfg, o);
  }
  {
    CoreConfig cfg;
    cfg.iteration_mode = IterationMode::kPaperBound;
    GreedyMatchingOracle o;
    run("paper-bound iterations (contamination allowed)", cfg, o);
  }
  {
    ExactMatchingOracle o;
    run("exact oracle (c=1)", CoreConfig{}, o);
  }
  {
    RandomGreedyMatchingOracle o(12345);
    run("randomized greedy oracle", CoreConfig{}, o);
  }
  t.print("Ablations on augmenting chains (96 gadgets, k=6), eps = 1/8");
  return 0;
}
