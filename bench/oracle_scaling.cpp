/// SCAL: oracle-invocation growth in 1/eps (corollary of Theorem 1.1).
///
/// Two workloads: an easy planted-matching graph (the framework certifies in
/// O(1) effective work regardless of eps) and augmenting chains whose path
/// length scales as 2/eps + 1 — the worst-case regime the O(log(1/eps)/eps^7)
/// schedule exists for. Reported: measured invocations, a fitted growth
/// exponent, and the paper's scheduled bound for reference.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/framework.hpp"
#include "matching/blossom_exact.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;
  Rng rng(7);
  const Graph easy = gen_planted_matching(1200, 3600, rng);
  const std::int64_t mu_easy = maximum_matching_size(easy);

  Table table({"workload", "eps", "oracle calls", "scheduled O(log(1/e)/e^7)",
               "ratio", "certified"});
  std::vector<double> inv_eps, calls;
  for (double eps : {0.5, 0.25, 0.125, 0.0625}) {
    CoreConfig cfg;
    cfg.eps = eps;
    {
      GreedyMatchingOracle oracle;
      const BoostResult r = boost_matching(easy, oracle, cfg);
      table.add_row({"planted n=1200", Table::num(eps, 4),
                     Table::integer(r.total_oracle_calls),
                     Table::num(std::pow(1 / eps, 7) * (std::log2(1 / eps) + 1), 0),
                     Table::num(static_cast<double>(mu_easy) /
                                    static_cast<double>(r.matching.size()),
                                4),
                     r.outcome.certified ? "yes" : "no"});
    }
    {
      const auto k = static_cast<Vertex>(std::ceil(1.0 / eps));
      const Graph chains = gen_adversarial_chains(64, k);
      GreedyMatchingOracle oracle;
      const BoostResult r = boost_matching(chains, oracle, cfg);
      const std::int64_t mu = maximum_matching_size(chains);
      inv_eps.push_back(1.0 / eps);
      calls.push_back(static_cast<double>(r.total_oracle_calls));
      table.add_row({"chains k~1/eps", Table::num(eps, 4),
                     Table::integer(r.total_oracle_calls),
                     Table::num(std::pow(1 / eps, 7) * (std::log2(1 / eps) + 1), 0),
                     Table::num(static_cast<double>(mu) /
                                    static_cast<double>(r.matching.size()),
                                4),
                     r.outcome.certified ? "yes" : "no"});
    }
  }
  table.print("SCAL: A_matching invocations vs eps");
  std::printf(
      "fitted exponent on chains: calls ~ (1/eps)^%.2f  "
      "(paper schedule: 7 + log factor; adaptive early exit keeps the\n"
      "measured exponent below the worst case, prior frameworks: 39-52)\n",
      fit_loglog_slope(inv_eps, calls));
  return 0;
}
