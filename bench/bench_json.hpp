#pragma once

/// Machine-readable bench records for the CI perf trajectory.
///
/// Each bench appends one Record per (workload, threads) cell and writes one
/// JSON array per process; the bench-smoke CI job concatenates the arrays
/// with `jq -s add` into the BENCH_pr.json artifact. Keep the schema stable:
/// downstream tooling diffs these files across commits.
///
/// Field conventions: `updates_per_sec` is 0 for static (non-update)
/// workloads; `rebuild_ms` is the whole-run wall clock in milliseconds
/// (dominated by Theorem 6.2 rebuilds on the rebuild-heavy workloads, and
/// exactly the boost wall time for static boosts); `read_p50_us` /
/// `read_p99_us` are snapshot-read latency percentiles in microseconds and
/// are 0 for benches without a read side (only the matching service bench
/// populates them); `coord_bytes` / `coord_rounds` are the coordinator
/// message ledger (CommStats, replay_core.hpp) — bytes and rounds crossing
/// the shard boundary over the whole run — and are 0 for flat engines,
/// single-shard cells, and benches without a sharded store;
/// `bytes_per_vertex` is the adjacency-store footprint divided by n (0 when
/// the bench does not measure storage); `ns_per_probe` is the mean
/// wall-clock cost of one oracle probe kernel call in nanoseconds (0 for
/// benches without a probe microbench — only the compressed-store bench
/// populates either). Names must not contain characters needing JSON
/// escapes.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace bmf::benchjson {

struct Record {
  std::string bench;
  std::string workload;
  int threads = 1;
  double updates_per_sec = 0.0;
  double rebuild_ms = 0.0;
  std::int64_t rebuilds = 0;
  bool identical = true;
  double read_p50_us = 0.0;
  double read_p99_us = 0.0;
  std::int64_t coord_bytes = 0;
  std::int64_t coord_rounds = 0;
  double bytes_per_vertex = 0.0;
  double ns_per_probe = 0.0;
};

class Writer {
 public:
  void add(Record r) { records_.push_back(std::move(r)); }

  /// Writes all records as one JSON array; returns false on IO failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"workload\": \"%s\", \"threads\": %d, "
                   "\"updates_per_sec\": %.1f, \"rebuild_ms\": %.3f, "
                   "\"rebuilds\": %lld, \"identical\": %s, "
                   "\"read_p50_us\": %.3f, \"read_p99_us\": %.3f, "
                   "\"coord_bytes\": %lld, \"coord_rounds\": %lld, "
                   "\"bytes_per_vertex\": %.2f, \"ns_per_probe\": %.3f}%s\n",
                   r.bench.c_str(), r.workload.c_str(), r.threads,
                   r.updates_per_sec, r.rebuild_ms,
                   static_cast<long long>(r.rebuilds),
                   r.identical ? "true" : "false", r.read_p50_us, r.read_p99_us,
                   static_cast<long long>(r.coord_bytes),
                   static_cast<long long>(r.coord_rounds), r.bytes_per_vertex,
                   r.ns_per_probe, i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    return std::fclose(f) == 0;
  }

  [[nodiscard]] bool all_identical() const {
    for (const Record& r : records_)
      if (!r.identical) return false;
    return true;
  }

 private:
  std::vector<Record> records_;
};

/// Shared minimal CLI: `--quick` shrinks workloads for the CI smoke job,
/// `--json <path>` writes the record array there.
struct BenchArgs {
  bool quick = false;
  std::string json_path;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--quick") {
      args.quick = true;
    } else if (a == "--json" && i + 1 < argc) {
      args.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      std::exit(2);
    }
  }
  return args;
}

}  // namespace bmf::benchjson
