/// Sharded vertex-partition dynamic engine throughput + determinism check.
///
/// ShardedDynamicMatcher partitions the vertex set into k shards, routes each
/// batch's directed update copies to their owning shards (applied
/// shard-parallel), keeps matching commits on the serial coordinator, and
/// replays the Theorem 6.2 rebuild budget globally — bit-identical to the
/// sequential DynamicMatcher at any (shards x threads), including rebuild
/// positions and A_weak call counts (src/dynamic/sharded_matcher.hpp). This
/// bench measures updates/sec across the (shards x threads) grid against the
/// one-at-a-time reference and verifies the identity:
///
///  * a large update-path run (rebuilds pushed out of the measurement) where
///    shard routing and parallel application are the whole story;
///  * a small adaptive-rebuild run where rebuild positions, rebuild counts,
///    and A_weak call counts must line up exactly as well — and where the
///    sharded oracle's speculative probe scans parallelize the rebuild's
///    serial greedy fraction.
///
/// Exits non-zero on any shard-count divergence (the bench-smoke CI job runs
/// this in --quick --json mode into BENCH_pr.json).

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/dyn_workload.hpp"

using namespace bmf;

namespace {

struct RunState {
  std::vector<Vertex> mates;
  std::int64_t edges = 0;
  std::int64_t rebuilds = 0;
  std::int64_t weak_calls = 0;
  RebuildStats rebuild_stats;

  friend bool operator==(const RunState&, const RunState&) = default;
};

// One collector over the abstract engine surface serves both the sequential
// reference and every sharded grid point (it used to be two facade-specific
// copies). The comm ledger is collected separately: it is per-cell
// deterministic but NOT part of the cross-cell identity (replay_core.hpp).
RunState state_of(const ReplayEngine& engine) {
  RunState s;
  const LiveEngineView view = engine.view();
  for (Vertex v = 0; v < view.num_vertices(); ++v)
    s.mates.push_back(view.mate_of(v));
  s.edges = engine.snapshot().num_edges();
  s.rebuilds = engine.rebuilds();
  s.weak_calls = engine.weak_calls();
  s.rebuild_stats = engine.rebuild_stats();
  return s;
}

void run_comparison(benchjson::Writer& out, const char* workload,
                    const char* title, Vertex n,
                    const std::vector<EdgeUpdate>& updates, double eps,
                    std::int64_t rebuild_every, std::int64_t batch_size) {
  const auto batches = slice_updates(updates, batch_size);
  const auto count = static_cast<double>(updates.size());

  double seq_time = 0.0;
  RunState reference;
  {
    MatrixWeakOracle oracle(n);
    DynamicMatcherConfig cfg;
    cfg.eps = eps;
    cfg.rebuild_every = rebuild_every;
    DynamicMatcher dm(n, oracle, cfg);
    Timer t;
    for (const EdgeUpdate& up : updates) dm.apply(up);
    seq_time = t.seconds();
    reference = state_of(dm);
  }

  Table t({"mode", "time (s)", "updates/sec", "speedup vs seq", "rebuilds",
           "identical"});
  t.add_row({"sequential", Table::num(seq_time, 4),
             Table::num(count / seq_time, 0), Table::num(1.0, 2),
             Table::integer(reference.rebuilds), "ref"});
  for (const int shards : {1, 4}) {
    for (const int threads : {1, 2, 8}) {
      ShardedMatcherConfig cfg;
      cfg.eps = eps;
      cfg.rebuild_every = rebuild_every;
      cfg.shards = shards;
      cfg.threads = threads;
      ShardedDynamicMatcher dm(n, cfg);
      Timer timer;
      for (const auto& batch : batches) dm.apply_batch(batch);
      const double s = timer.seconds();
      const RunState got = state_of(dm);
      const CommStats comm = dm.comm_stats();
      // Single-shard cells have no boundary: a non-zero ledger there is a
      // counting bug and fails the run like any state divergence.
      const bool same = got == reference && (shards > 1 || comm == CommStats{});
      char mode[32];
      std::snprintf(mode, sizeof mode, "s%d x %dT", shards, threads);
      t.add_row({mode, Table::num(s, 4), Table::num(count / s, 0),
                 Table::num(seq_time / s, 2), Table::integer(got.rebuilds),
                 same ? "yes" : "NO"});
      char cell[64];
      std::snprintf(cell, sizeof cell, "%s/s%d", workload, shards);
      benchjson::Record rec{"sharded_dynamic", cell, threads, count / s,
                            s * 1000.0, got.rebuilds, same};
      rec.coord_bytes = comm.coord_bytes();
      rec.coord_rounds = comm.coord_rounds();
      out.add(rec);
    }
  }
  t.print(title);
}

}  // namespace

int main(int argc, char** argv) {
  const benchjson::BenchArgs args = benchjson::parse_args(argc, argv);
  std::printf("hardware_concurrency=%u quick=%d\n\n",
              std::thread::hardware_concurrency(), args.quick ? 1 : 0);

  benchjson::Writer out;
  {
    const Vertex n = args.quick ? 4000 : 20000;
    Rng rng(2025);
    const auto updates = dyn_shard_partitioned(
        n, 4, args.quick ? 24000 : 120000, /*cross_fraction=*/0.3,
        /*insert_prob=*/0.75, rng);
    run_comparison(out, "update_path",
                   "sharded update-path throughput (rebuilds excluded)", n,
                   updates, 0.25, /*rebuild_every=*/1 << 30, /*batch_size=*/2048);
  }

  {
    const Vertex n = args.quick ? 200 : 300;
    Rng rng(7);
    const auto updates = dyn_shard_partitioned(
        n, 4, args.quick ? 3000 : 6000, /*cross_fraction=*/0.5,
        /*insert_prob=*/0.7, rng);
    run_comparison(out, "adaptive_rebuilds",
                   "sharded adaptive-rebuild identity (Theorem 6.2 rebuilds)", n,
                   updates, 0.25, /*rebuild_every=*/0, /*batch_size=*/128);
  }

  if (!args.json_path.empty() && !out.write(args.json_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.json_path.c_str());
    return 1;
  }
  if (!out.all_identical()) {
    std::fprintf(stderr, "DIVERGENCE: a sharded run differed from the "
                         "sequential reference\n");
    return 1;
  }
  return 0;
}
