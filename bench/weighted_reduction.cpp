/// WTD — weighted matching through the unweighted booster (Section 1.2
/// reductions: [GP13] weight scaling + [SVW17] class combination).
///
/// The paper's framework outputs (1+eps)-approximate MCMs; the related-work
/// reductions lift it to maximum *weight* matching at a (2+O(eps)) factor.
/// We measure achieved weight against the exact optimum (small instances)
/// and against the classic sort-by-weight greedy baseline (large ones),
/// plus the number of weight classes [GP13] scaling leaves behind.

#include <cstdio>

#include "util/timer.hpp"
#include "util/table.hpp"
#include "weighted/weighted.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  // Small instances: exact optimum available.
  {
    Table t({"instance", "opt", "pipeline", "greedy", "pipeline/opt",
             "classes"});
    Rng rng(3);
    for (int i = 0; i < 4; ++i) {
      const Graph g = gen_random_graph(16, 48, rng);
      WeightedGraph wg;
      wg.n = g.num_vertices();
      for (const Edge& e : g.edges())
        wg.edges.push_back({e.u, e.v, 1.0 + rng.next_double() * 499.0});
      const Weight opt = brute_force_weighted_matching(wg);
      const WeightedBoostResult r =
          boosted_weighted_matching(wg, 0.2, CoreConfig{});
      const Weight greedy = matching_weight(wg, greedy_weighted_matching(wg));
      t.add_row({("random16 #" + std::to_string(i)).c_str(), Table::num(opt, 1),
                 Table::num(r.weight, 1), Table::num(greedy, 1),
                 Table::num(r.weight / opt, 3), Table::integer(r.classes)});
    }
    t.print("WTD (small): pipeline vs exact optimum (guarantee >= 1/(2+O(eps)))");
  }

  // Larger instances: greedy baseline comparison and timing.
  {
    Table t({"n", "m", "weights", "pipeline wt", "greedy wt", "lift", "ms",
             "oracle calls"});
    Rng rng(9);
    for (const auto& [n, m, wmax] :
         std::vector<std::tuple<Vertex, std::int64_t, double>>{
             {500, 2000, 100.0}, {1000, 4000, 1000.0}, {2000, 8000, 10000.0}}) {
      const Graph g = gen_random_graph(n, m, rng);
      WeightedGraph wg;
      wg.n = n;
      for (const Edge& e : g.edges())
        wg.edges.push_back({e.u, e.v, 1.0 + rng.next_double() * (wmax - 1.0)});
      Timer timer;
      const WeightedBoostResult r =
          boosted_weighted_matching(wg, 0.2, CoreConfig{});
      const double ms = timer.millis();
      const Weight greedy = matching_weight(wg, greedy_weighted_matching(wg));
      t.add_row({Table::integer(n), Table::integer(m),
                 ("[1," + Table::num(wmax, 0) + "]"), Table::num(r.weight, 0),
                 Table::num(greedy, 0), Table::num(r.weight / greedy, 3),
                 Table::num(ms, 1), Table::integer(r.oracle_calls)});
    }
    t.print("WTD (large): pipeline vs greedy 2-approx baseline, eps = 0.2");
  }
  std::printf(
      "note: [BCD+25]+[BDL21] (Table 2's weighted context) would replace the\n"
      "(2+eps) class combination with a (1+eps) reduction; the class pipeline\n"
      "here demonstrates the composition surface of the framework.\n");
  return 0;
}
