/// OMV — Section 7.4 micro-benchmarks (google-benchmark).
///
/// Costs of the OMv engine behind Theorems 7.10/7.12/7.15: updates, full
/// queries, masked row probes, the Lemma 7.9-style A_weak query and the
/// Lemma 7.8 transfer, plus the offline patched probe against its rebase
/// cost. The engine is the bit-parallel OMV-SUB substitute (see DESIGN.md);
/// the n^2/64 query scaling visible here is its signature.

#include <benchmark/benchmark.h>

#include "dynamic/bipartite_cover.hpp"
#include "omv/offline.hpp"
#include "omv/omv.hpp"
#include "omv/omv_weak.hpp"
#include "util/rng.hpp"
#include "workloads/gen.hpp"

namespace {

using namespace bmf;

void BM_OMvUpdate(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  DynamicOMv omv(n);
  Rng rng(1);
  for (auto _ : state) {
    const auto i = static_cast<std::int64_t>(rng.next_below(n));
    const auto j = static_cast<std::int64_t>(rng.next_below(n));
    omv.update(i, j, true);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OMvUpdate)->Arg(256)->Arg(1024)->Arg(4096);

void BM_OMvQuery(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  DynamicOMv omv(n);
  Rng rng(2);
  for (std::int64_t i = 0; i < 4 * n; ++i)
    omv.update(static_cast<std::int64_t>(rng.next_below(n)),
               static_cast<std::int64_t>(rng.next_below(n)), true);
  BitVec v(n), out(n);
  for (std::int64_t i = 0; i < n / 4; ++i)
    v.set(static_cast<std::int64_t>(rng.next_below(n)));
  for (auto _ : state) {
    omv.query(v, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_OMvQuery)->Arg(256)->Arg(1024)->Arg(4096);

void BM_OMvRowProbe(benchmark::State& state) {
  const auto n = static_cast<std::int64_t>(state.range(0));
  DynamicOMv omv(n);
  Rng rng(3);
  for (std::int64_t i = 0; i < 4 * n; ++i)
    omv.update(static_cast<std::int64_t>(rng.next_below(n)),
               static_cast<std::int64_t>(rng.next_below(n)), true);
  BitVec mask(n);
  for (std::int64_t i = 0; i < n / 2; ++i)
    mask.set(static_cast<std::int64_t>(rng.next_below(n)));
  for (auto _ : state) {
    const auto r = static_cast<std::int64_t>(rng.next_below(n));
    benchmark::DoNotOptimize(omv.probe_row(r, mask));
  }
}
BENCHMARK(BM_OMvRowProbe)->Arg(1024)->Arg(4096);

void BM_OMvWeakQuery(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(4);
  const Graph g = gen_random_graph(n, 4 * static_cast<std::int64_t>(n), rng);
  OMvWeakOracle oracle = OMvWeakOracle::from_graph(g);
  std::vector<Vertex> s;
  for (Vertex v = 0; v < n; v += 2) s.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.query(s, 0.0));
  }
}
BENCHMARK(BM_OMvWeakQuery)->Arg(512)->Arg(2048);

void BM_Lemma78Transfer(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(5);
  std::vector<Edge> cover;
  for (Vertex i = 0; i + 1 < n; ++i)
    cover.push_back({i, static_cast<Vertex>((i + 1) % n)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover_matching_to_graph_matching(n, cover));
  }
}
BENCHMARK(BM_Lemma78Transfer)->Arg(1024)->Arg(8192);

void BM_OfflinePatchedQuery(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(6);
  OfflineWeakOracle oracle(n);
  for (std::int64_t i = 0; i < 4 * n; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) oracle.on_insert(u, v);
  }
  oracle.rebase();
  // A small diff on top of the base (the Lemma 7.13 regime).
  for (std::int64_t i = 0; i < n / 8; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u != v) oracle.on_insert(u, v);
  }
  std::vector<Vertex> s;
  for (Vertex v = 0; v < n; v += 2) s.push_back(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(oracle.query(s, 0.0));
  }
}
BENCHMARK(BM_OfflinePatchedQuery)->Arg(512)->Arg(2048);

void BM_OfflineRebase(benchmark::State& state) {
  const auto n = static_cast<Vertex>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    state.PauseTiming();
    OfflineWeakOracle oracle(n);
    for (std::int64_t i = 0; i < n; ++i) {
      const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (u != v) oracle.on_insert(u, v);
    }
    state.ResumeTiming();
    oracle.rebase();
    benchmark::DoNotOptimize(oracle);
  }
}
BENCHMARK(BM_OfflineRebase)->Arg(512)->Arg(2048);

}  // namespace

BENCHMARK_MAIN();
