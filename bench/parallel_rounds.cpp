/// Parallel round-simulation speedup + determinism check.
///
/// The round-based simulators (mpc::Cluster, congest::Network) run each
/// machine's/vertex's local computation on the shared work-stealing pool and
/// merge private outboxes in id order after a barrier, so results are
/// bit-identical at any thread count. This bench measures the wall-clock
/// effect of that fan-out on a graph with >= 10^5 edges and verifies the
/// bit-identical claim at 1/2/4/8 threads. Expect ~linear scaling on real
/// cores; on a single-core host the threaded runs only show the pool's
/// scheduling overhead.

#include <cstdio>
#include <thread>
#include <vector>

#include "congest/congest_matching.hpp"
#include "congest/network.hpp"
#include "core/oracle.hpp"
#include "mpc/cluster.hpp"
#include "mpc/mpc_matching.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "workloads/gen.hpp"

using namespace bmf;

int main() {
  constexpr int kThreadCounts[] = {1, 2, 4, 8};
  constexpr int kRepeats = 3;

  Rng grng(1);
  const Graph g = gen_random_graph(60000, 150000, grng);
  const OracleGraph h = to_oracle_graph(g);
  std::printf("graph: n=%d m=%lld, hardware_concurrency=%u\n\n",
              g.num_vertices(), static_cast<long long>(g.num_edges()),
              std::thread::hardware_concurrency());

  // --- MPC: priority-peeling maximal matching, 16 machines. -----------------
  {
    Table t({"threads", "best time (s)", "speedup vs 1T", "|M|", "rounds",
             "identical"});
    double base = 0.0;
    OracleMatching reference;
    for (int threads : kThreadCounts) {
      mpc::MpcConfig cfg;
      cfg.machines = 16;
      cfg.threads = threads;
      double best = 0.0;
      mpc::MpcMatchingResult result;
      for (int rep = 0; rep < kRepeats; ++rep) {
        mpc::Cluster cluster(cfg);
        Rng rng(7);
        Timer timer;
        mpc::MpcMatchingResult r = mpc::mpc_maximal_matching(cluster, h, rng);
        const double s = timer.seconds();
        if (rep == 0 || s < best) best = s;
        result = std::move(r);
      }
      if (threads == 1) {
        base = best;
        reference = result.matching;
      }
      t.add_row({Table::integer(threads), Table::num(best, 4),
                 Table::num(base / best, 2),
                 Table::integer(static_cast<std::int64_t>(result.matching.size())),
                 Table::integer(result.rounds),
                 result.matching == reference ? "yes" : "NO"});
    }
    t.print("MPC Cluster::superstep fan-out (16 machines, 150k edges)");
  }

  // --- CONGEST: handshake maximal matching, one machine per vertex. ---------
  {
    Table t({"threads", "best time (s)", "speedup vs 1T", "|M|", "rounds",
             "identical"});
    double base = 0.0;
    OracleMatching reference;
    for (int threads : kThreadCounts) {
      double best = 0.0;
      congest::CongestMatchingResult result;
      for (int rep = 0; rep < kRepeats; ++rep) {
        congest::Network net(g, threads);
        Rng rng(5);
        Timer timer;
        congest::CongestMatchingResult r = congest::congest_maximal_matching(net, rng);
        const double s = timer.seconds();
        if (rep == 0 || s < best) best = s;
        result = std::move(r);
      }
      if (threads == 1) {
        base = best;
        reference = result.matching;
      }
      t.add_row({Table::integer(threads), Table::num(best, 4),
                 Table::num(base / best, 2),
                 Table::integer(static_cast<std::int64_t>(result.matching.size())),
                 Table::integer(result.rounds),
                 result.matching == reference ? "yes" : "NO"});
    }
    t.print("CONGEST Network::round fan-out (60k vertices, 150k edges)");
  }

  // --- Framework: parallel best-of-k oracle sampling. -----------------------
  {
    Table t({"threads", "best time (s)", "speedup vs 1T", "|M|", "identical"});
    double base = 0.0;
    OracleMatching reference;
    for (int threads : kThreadCounts) {
      double best = 0.0;
      OracleMatching result;
      for (int rep = 0; rep < kRepeats; ++rep) {
        BestOfKRandomGreedyOracle oracle(11, 16, threads);
        Timer timer;
        OracleMatching m = oracle.find_matching(h);
        const double s = timer.seconds();
        if (rep == 0 || s < best) best = s;
        result = std::move(m);
      }
      if (threads == 1) {
        base = best;
        reference = result;
      }
      t.add_row({Table::integer(threads), Table::num(best, 4),
                 Table::num(base / best, 2),
                 Table::integer(static_cast<std::int64_t>(result.size())),
                 result == reference ? "yes" : "NO"});
    }
    t.print("BestOfKRandomGreedyOracle sampling fan-out (k=16, 150k edges)");
  }

  return 0;
}
