/// L53 — Lemma 5.3 and Lemma 6.7: the initial Theta(1)-approximate matching.
///
/// Lemma 5.3: a 4-approximation from at most 2c A_matching calls (iterate on
/// the subgraph of free vertices). Lemma 6.7: a 3-approximation from
/// O(1/(delta*lambda)) A_weak calls. We measure the call counts and the
/// achieved approximation across workload families; with a greedy (maximal)
/// oracle the loop collapses after one productive call, comfortably inside
/// the bound.

#include <cstdio>

#include "core/framework.hpp"
#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "matching/blossom_exact.hpp"
#include "util/table.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;
  Rng rng(17);

  struct Item {
    const char* name;
    Graph g;
  };
  const Item items[] = {
      {"random n=2000 m=8000", gen_random_graph(2000, 8000, rng)},
      {"bipartite 1000+1000", gen_random_bipartite(1000, 1000, 6000, rng)},
      {"planted n=2000", gen_planted_matching(2000, 2000, rng)},
      {"chains 128 x k=4", gen_augmenting_chains(128, 4)},
      {"clique pair k=60", gen_clique_pair(60)},
  };

  Table t({"workload", "A_matching calls", "bound 2c+1", "|M0|", "mu", "approx",
           "A_weak calls", "|M0| (weak)"});
  for (const Item& item : items) {
    GreedyMatchingOracle oracle;
    CoreConfig cfg;
    const Matching m0 = framework_initial_matching(item.g, oracle, cfg);
    const std::int64_t mu = maximum_matching_size(item.g);

    MatrixWeakOracle weak = MatrixWeakOracle::from_graph(item.g);
    WeakSimConfig wcfg;
    const Matching w0 = weak_initial_matching(item.g.num_vertices(), weak, wcfg);

    t.add_row({item.name, Table::integer(oracle.calls()),
               Table::integer(
                   static_cast<std::int64_t>(2 * oracle.approx_factor()) + 1),
               Table::integer(m0.size()), Table::integer(mu),
               Table::num(static_cast<double>(mu) /
                              static_cast<double>(std::max<std::int64_t>(1, m0.size())),
                          3),
               Table::integer(weak.calls()), Table::integer(w0.size())});
  }
  t.print("Lemma 5.3 / 6.7: initial-matching oracle calls and quality");
  std::printf("every approx column must be <= 4 (Lemma 5.3) resp. <= 3 (Lemma 6.7)\n"
              "for graphs with a large matching; maximal oracles give <= 2.\n");
  return 0;
}
