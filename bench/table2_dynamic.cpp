/// T2-DYN — Table 2: fully dynamic (1+eps)-approximate matching.
///
/// Table 2 contrasts update-time complexities: the [McG05]-derived rows
/// ([BG24], [AKK25]) carry (1/eps)^O(1/eps) factors, while this work's rows
/// (Theorems 7.4, 7.12, 7.15) are polynomial in 1/eps. We measure four
/// pipelines on the same update streams:
///
///   baseline-McG (sched.)  periodic rebuild via the exponential layered
///                          booster; the full (2k)^k repetition schedule is
///                          infeasible to execute (that is the point), so the
///                          column extrapolates measured per-repetition cost
///                          times the schedule — marked "extrapolated";
///   baseline-McG (adapt.)  the same booster with early stopping (practical
///                          but heuristic: it forfeits the w.h.p. guarantee);
///   this-work              Theorem 7.1 matcher, adjacency-matrix A_weak;
///   this-work-OMv          same matcher behind the OMv-backed A_weak (7.12);
///   offline                Theorem 7.15 blocked offline pipeline.
///
/// Expected shape: the scheduled baseline column explodes as eps shrinks;
/// all this-work columns grow polynomially.

#include <cmath>
#include <cstdio>

#include "baselines/mcgregor.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "omv/offline.hpp"
#include "omv/omv_weak.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"
#include "util/table.hpp"
#include "workloads/dyn_workload.hpp"

namespace {

using namespace bmf;

double run_dynamic(Vertex n, const std::vector<EdgeUpdate>& updates,
                   WeakOracle& oracle, double eps) {
  DynamicMatcherConfig cfg;
  cfg.eps = eps;
  DynamicMatcher dm(n, oracle, cfg);
  Timer t;
  for (const EdgeUpdate& up : updates) dm.apply(up);
  return t.micros() / static_cast<double>(updates.size());
}

struct BaselineCost {
  double adaptive_us_per_update = 0;
  double scheduled_us_per_update = 0;  // extrapolated
};

BaselineCost run_mcgregor_baseline(Vertex n, const std::vector<EdgeUpdate>& updates,
                                   double eps) {
  DynGraph g(n);
  Matching m(n);
  std::int64_t since = 0;
  std::int64_t rebuilds = 0;
  Accumulator rep_cost_us;  // measured cost of one layered repetition
  Timer total;
  for (const EdgeUpdate& up : updates) {
    if (!up.empty()) {
      if (up.insert) {
        if (g.insert(up.u, up.v) && m.is_free(up.u) && m.is_free(up.v))
          m.add(up.u, up.v);
      } else if (g.erase(up.u, up.v) && m.has(up.u, up.v)) {
        m.remove_at(up.u);
      }
    }
    const std::int64_t budget = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(eps * static_cast<double>(m.size()) / 4.0));
    if (++since >= budget) {
      since = 0;
      ++rebuilds;
      McGregorConfig mc;
      mc.eps = eps / 2.0;
      mc.stall_limit = 8;  // adaptive early stop (practical variant)
      const Graph snapshot = g.snapshot();
      Timer rt;
      const McGregorStats stats = mcgregor_boost(snapshot, m, mc);
      if (stats.repetitions > 0)
        rep_cost_us.add(rt.micros() / static_cast<double>(stats.repetitions));
    }
  }
  BaselineCost out;
  out.adaptive_us_per_update = total.micros() / static_cast<double>(updates.size());

  // Extrapolate the full (2k)^k schedule the analysis demands.
  McGregorConfig mc;
  mc.eps = eps / 2.0;
  const int k = std::max(1, static_cast<int>(std::ceil(1.0 / mc.eps)));
  const double scheduled =
      std::pow(2.0 * static_cast<double>(k), static_cast<double>(k));
  out.scheduled_us_per_update = rep_cost_us.mean() * scheduled *
                                static_cast<double>(rebuilds) /
                                static_cast<double>(updates.size());
  return out;
}

}  // namespace

int main() {
  using namespace bmf;

  {
    Table sched({"reference", "complexity in eps", "complexity in n"});
    sched.add_row({"[BG24]", "(1/eps)^O(1/eps)", "sqrt(n^(1+O(eps))) * ORS(...)"});
    sched.add_row({"[AKK25]", "(1/eps)^O(1/(eps*beta))", "n^beta * ORS(...)"});
    sched.add_row({"[Liu24] (bipartite)", "poly(1/eps)", "n / 2^Omega(sqrt(log n))"});
    sched.add_row({"this work, Thm 7.4", "(1/eps)^O(1/beta)", "n^beta * ORS(...)"});
    sched.add_row({"this work, Thm 7.12", "poly(1/eps)", "n / 2^Omega(sqrt(log n))"});
    sched.add_row({"this work, Thm 7.15 (offline)", "poly(1/eps)", "n^0.58"});
    sched.print("Table 2: claimed complexities (for reference)");
  }

  const Vertex n = 150;
  Rng rng(2025);
  const auto updates = dyn_random_updates(n, 900, 0.7, rng);

  Table t({"eps", "McG sched. us/up (extrap.)", "McG adaptive us/up",
           "this-work us/up", "this-work-OMv us/up", "offline us/up"});
  for (double eps : {0.5, 0.3333, 0.25, 0.2}) {
    const BaselineCost base = run_mcgregor_baseline(n, updates, eps);

    MatrixWeakOracle mw(n);
    const double ours = run_dynamic(n, updates, mw, eps);

    OMvWeakOracle ow(n);
    const double ours_omv = run_dynamic(n, updates, ow, eps);

    WeakSimConfig sim;
    sim.core.eps = eps / 2.0;
    Timer ot;
    const auto off = offline_dynamic_matching(
        n, updates, /*chunk=*/std::max<std::int64_t>(1, n / 10), /*t_block=*/4, sim);
    const double offline_us = ot.micros() / static_cast<double>(updates.size());
    (void)off;

    t.add_row({Table::num(eps, 4), Table::num(base.scheduled_us_per_update, 0),
               Table::num(base.adaptive_us_per_update, 1), Table::num(ours, 1),
               Table::num(ours_omv, 1), Table::num(offline_us, 1)});
  }
  t.print("Table 2: measured amortized update time, random churn (n=150, 900 updates)");
  std::printf(
      "shape check: the scheduled baseline column grows as (2k)^k with\n"
      "k = 2/eps (16, 1.3e3, 1.7e5, 1e7, ... times the per-repetition cost);\n"
      "every this-work column stays polynomial in 1/eps.\n");

  // n-scaling of the polynomial pipelines at fixed eps.
  Table tn({"n", "this-work us/up", "this-work-OMv us/up"});
  for (Vertex nn : {100, 200, 400}) {
    Rng r2(7);
    const auto ups = dyn_random_updates(nn, 800, 0.7, r2);
    MatrixWeakOracle mw(nn);
    const double a = run_dynamic(nn, ups, mw, 0.25);
    OMvWeakOracle ow(nn);
    const double b = run_dynamic(nn, ups, ow, 0.25);
    tn.add_row({Table::integer(nn), Table::num(a, 1), Table::num(b, 1)});
  }
  tn.print("Table 2 (cont.): n-scaling at eps = 1/4");
  return 0;
}
