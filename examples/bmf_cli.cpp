/// Command-line front end: run the boosting framework (or the streaming /
/// weighted pipelines) on a graph file.
///
/// Usage:
///   bmf_cli <file> [--eps E] [--mode framework|streaming|weighted]
///           [--format edgelist|dimacs] [--exact]
///
/// With no file, runs on a built-in demo graph. `--exact` also computes
/// mu(G) via Edmonds' algorithm and prints the achieved ratio.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "core/framework.hpp"
#include "io/graph_io.hpp"
#include "matching/blossom_exact.hpp"
#include "stream/streaming_matcher.hpp"
#include "util/timer.hpp"
#include "weighted/weighted.hpp"
#include "workloads/gen.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: bmf_cli [file] [--eps E] [--mode framework|streaming|"
               "weighted] [--format edgelist|dimacs] [--exact]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bmf;
  std::string file, mode = "framework", format = "edgelist";
  double eps = 0.25;
  bool exact = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--eps") {
      eps = std::atof(next());
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--format") {
      format = next();
    } else if (arg == "--exact") {
      exact = true;
    } else if (arg.rfind("--", 0) == 0) {
      usage();
      return 2;
    } else {
      file = arg;
    }
  }
  if (eps <= 0 || eps > 1) {
    std::fprintf(stderr, "eps must be in (0, 1]\n");
    return 2;
  }

  try {
    if (mode == "weighted") {
      WeightedGraph wg;
      if (file.empty()) {
        Rng rng(1);
        const Graph g = gen_random_graph(400, 1600, rng);
        wg.n = g.num_vertices();
        for (const Edge& e : g.edges())
          wg.edges.push_back({e.u, e.v, 1.0 + rng.next_double() * 99.0});
      } else {
        std::ifstream in(file);
        if (!in.good()) {
          std::fprintf(stderr, "cannot open %s\n", file.c_str());
          return 1;
        }
        wg = read_weighted_edge_list(in);
      }
      Timer t;
      const WeightedBoostResult r = boosted_weighted_matching(wg, eps, CoreConfig{});
      std::printf("weighted: n=%d m=%zu  |M|=%zu  weight=%.2f  classes=%lld  "
                  "oracle calls=%lld  (%.1f ms)\n",
                  wg.n, wg.edges.size(), r.matching.size(), r.weight,
                  static_cast<long long>(r.classes),
                  static_cast<long long>(r.oracle_calls), t.millis());
      const auto greedy = greedy_weighted_matching(wg);
      std::printf("greedy 2-approx baseline: weight=%.2f\n",
                  matching_weight(wg, greedy));
      return 0;
    }

    Graph g;
    if (file.empty()) {
      Rng rng(1);
      g = gen_planted_matching(2000, 6000, rng);
      std::printf("(no file given; using a built-in planted-matching demo)\n");
    } else {
      std::ifstream in(file);
      if (!in.good()) {
        std::fprintf(stderr, "cannot open %s\n", file.c_str());
        return 1;
      }
      g = (format == "dimacs") ? read_dimacs(in) : read_edge_list(in);
    }

    CoreConfig cfg;
    cfg.eps = eps;
    Timer t;
    std::int64_t size = 0;
    if (mode == "streaming") {
      const StreamingResult r = streaming_matching(g, cfg);
      size = r.matching.size();
      std::printf("streaming: n=%d m=%lld  |M|=%lld  passes=%lld  (%.1f ms)\n",
                  g.num_vertices(), static_cast<long long>(g.num_edges()),
                  static_cast<long long>(size), static_cast<long long>(r.passes),
                  t.millis());
    } else if (mode == "framework") {
      GreedyMatchingOracle oracle;
      const BoostResult r = boost_matching(g, oracle, cfg);
      size = r.matching.size();
      std::printf(
          "framework: n=%d m=%lld  |M|=%lld  oracle calls=%lld  certified=%s"
          "  (%.1f ms)\n",
          g.num_vertices(), static_cast<long long>(g.num_edges()),
          static_cast<long long>(size),
          static_cast<long long>(r.total_oracle_calls),
          r.outcome.certified ? "yes" : "no", t.millis());
    } else {
      usage();
      return 2;
    }
    if (exact) {
      const std::int64_t mu = maximum_matching_size(g);
      std::printf("exact mu(G)=%lld  ratio=%.4f (guarantee <= %.4f)\n",
                  static_cast<long long>(mu),
                  size > 0 ? static_cast<double>(mu) / static_cast<double>(size)
                           : 1.0,
                  1.0 + eps);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return 0;
}
