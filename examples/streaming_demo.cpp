/// Semi-streaming example: (1+eps)-approximate matching with counted passes
/// over an edge stream ([MMSS25], Section 4 — the algorithm the boosting
/// framework simulates).
///
/// Models an edge list too large to rearrange: each pass streams the edges in
/// (possibly adversarial) order, memory stays O(n poly(1/eps)) words.

#include <cstdio>

#include "matching/blossom_exact.hpp"
#include "stream/edge_stream.hpp"
#include "stream/streaming_matcher.hpp"
#include "util/rng.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  Rng rng(11);
  const Graph g = gen_random_graph(20000, 120000, rng);
  const std::int64_t mu = maximum_matching_size(g);

  for (double eps : {0.5, 0.25}) {
    EdgeStream stream(g, /*shuffle_each_pass=*/true, 99);
    CoreConfig cfg;
    cfg.eps = eps;
    const StreamingResult r = streaming_matching(stream, g.num_vertices(), cfg);
    std::printf(
        "eps=%.2f  |M|=%lld (mu=%lld, ratio %.4f)  passes=%lld  "
        "peak structure memory=%lld words\n",
        eps, static_cast<long long>(r.matching.size()),
        static_cast<long long>(mu),
        static_cast<double>(mu) / static_cast<double>(r.matching.size()),
        static_cast<long long>(r.passes),
        static_cast<long long>(r.peak_memory_words));
  }
  std::printf("\nEach pass-bundle costs 3 passes (1 extend + 2 contract-and-\n"
              "augment); the pass count tracks phases, not the stream length.\n");
  return 0;
}
