/// CONGEST example: (1+eps)-approximate matching over a message-limited
/// network (Corollary A.2).
///
/// Models a sensor/radio network: every vertex is a node, one O(log n)-bit
/// word per edge per round. The handshake maximal matching is the only
/// distributed primitive; structure bookkeeping routes through component
/// representatives (A_process), which is what separates the CONGEST and MPC
/// rows of Table 1.

#include <cstdio>

#include "congest/congest_boost.hpp"
#include "congest/congest_matching.hpp"
#include "matching/blossom_exact.hpp"
#include "util/rng.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  Rng rng(3);
  const Graph g = gen_random_graph(2000, 8000, rng);
  const std::int64_t mu = maximum_matching_size(g);

  // First, the raw distributed primitive on the input graph itself.
  {
    congest::Network net(g);
    Rng hrng(5);
    const auto r = congest::congest_maximal_matching(net, hrng);
    std::printf("handshake maximal matching: |M|=%zu in %lld rounds "
                "(%lld messages, %lld violations)\n",
                r.matching.size(), static_cast<long long>(r.rounds),
                static_cast<long long>(net.messages()),
                static_cast<long long>(net.violations()));
  }

  for (double eps : {0.5, 0.25}) {
    CoreConfig cfg;
    cfg.eps = eps;
    const congest::CongestBoostResult r = congest::congest_boost_matching(g, cfg);
    std::printf(
        "eps=%.2f  |M|=%lld (mu=%lld, ratio %.4f)  calls=%lld  rounds: "
        "A_matching=%lld A_process=%lld  max structure=%lld\n",
        eps, static_cast<long long>(r.boost.matching.size()),
        static_cast<long long>(mu),
        static_cast<double>(mu) / static_cast<double>(r.boost.matching.size()),
        static_cast<long long>(r.boost.total_oracle_calls),
        static_cast<long long>(r.oracle_rounds),
        static_cast<long long>(r.process_rounds),
        static_cast<long long>(r.max_structure_size));
  }
  return 0;
}
