/// Fully dynamic example: a ride-hailing-style assignment stream (Thm 7.1).
///
/// Drivers and riders appear and disappear; compatibility edges (driver can
/// serve rider) are inserted and deleted online. The matcher maintains a
/// (1+eps)-approximate maximum assignment after every update, with rebuilds
/// powered only by weak induced-subgraph queries (Definition 6.1) against a
/// maintained adjacency matrix.

#include <cstdio>

#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "matching/blossom_exact.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "workloads/dyn_workload.hpp"

int main() {
  using namespace bmf;

  const Vertex n = 300;  // 150 drivers + 150 riders, ids interleaved
  MatrixWeakOracle oracle(n);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  DynamicMatcher matcher(n, oracle, cfg);

  Rng rng(42);
  const auto updates = dyn_sliding_window(n, /*window=*/700, /*count=*/1500, rng);

  // All reads go through the MatchingView API — the same queries a service
  // snapshot answers, so this dispatcher loop is snapshot-ready as-is.
  const LiveEngineView assignment = matcher.view();

  Timer t;
  std::int64_t step = 0;
  for (const EdgeUpdate& up : updates) {
    matcher.apply(up);
    if (++step % 300 == 0) {
      const Graph snapshot = matcher.graph().snapshot();
      const std::int64_t mu = maximum_matching_size(snapshot);
      std::printf(
          "after %6lld updates: matched pairs = %lld (optimal %lld, ratio "
          "%.4f), live edges = %lld\n",
          static_cast<long long>(step),
          static_cast<long long>(assignment.size()),
          static_cast<long long>(mu),
          mu > 0 ? static_cast<double>(mu) /
                       static_cast<double>(assignment.size())
                 : 1.0,
          static_cast<long long>(matcher.graph().num_edges()));
    }
  }
  std::printf(
      "\nprocessed %lld updates in %.1f ms (%.1f us/update amortized), "
      "%lld rebuilds, %lld A_weak calls\n",
      static_cast<long long>(matcher.updates()), t.millis(),
      t.micros() / static_cast<double>(matcher.updates()),
      static_cast<long long>(matcher.rebuilds()),
      static_cast<long long>(matcher.weak_calls()));

  // Batch mode: the dispatcher accumulates updates (e.g. a tick's worth of
  // arrivals) and applies them in one apply_batch call per tick. The batch
  // determinism contract guarantees the exact same assignment history.
  MatrixWeakOracle batch_oracle(n);
  DynamicMatcherConfig batch_cfg = cfg;
  batch_cfg.threads = 0;  // hardware concurrency
  DynamicMatcher batch_matcher(n, batch_oracle, batch_cfg);
  Timer bt;
  for (const auto& tick : slice_updates(updates, /*batch_size=*/200))
    batch_matcher.apply_batch(tick);
  const double batch_ms = bt.millis();

  const LiveEngineView batch_view = batch_matcher.view();
  bool identical = batch_matcher.rebuilds() == matcher.rebuilds() &&
                   batch_view.size() == assignment.size();
  for (Vertex v = 0; identical && v < n; ++v)
    identical = batch_view.mate_of(v) == assignment.mate_of(v);
  std::printf(
      "batch mode (ticks of 200): %.1f ms (%.1f us/update), %lld rebuilds, "
      "bit-identical to one-at-a-time: %s\n",
      batch_ms, 1000.0 * batch_ms / static_cast<double>(batch_matcher.updates()),
      static_cast<long long>(batch_matcher.rebuilds()),
      identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
