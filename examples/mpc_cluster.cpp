/// MPC example: boost a distributed maximal-matching oracle to (1+eps) on a
/// simulated cluster (Corollary A.1).
///
/// Models a batch-processing job: a large task-compatibility graph is
/// distributed over machines; the cluster's only global primitive is the
/// random-priority maximal matching, and the framework turns it into a
/// near-optimal assignment while counting simulated rounds.

#include <cstdio>

#include "matching/blossom_exact.hpp"
#include "mpc/mpc_boost.hpp"
#include "util/rng.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  Rng rng(7);
  const Graph g = gen_near_regular(5000, 6, rng);
  const std::int64_t mu = maximum_matching_size(g);

  mpc::MpcConfig cluster_cfg;
  cluster_cfg.machines = 16;

  for (double eps : {0.5, 0.2, 0.1}) {
    CoreConfig cfg;
    cfg.eps = eps;
    const mpc::MpcBoostResult r = mpc::mpc_boost_matching(g, cluster_cfg, cfg);
    std::printf(
        "eps=%.2f  |M|=%lld (mu=%lld, ratio %.4f)  oracle calls=%lld  "
        "rounds: A_matching=%lld A_process=%lld total=%lld\n",
        eps, static_cast<long long>(r.boost.matching.size()),
        static_cast<long long>(mu),
        static_cast<double>(mu) / static_cast<double>(r.boost.matching.size()),
        static_cast<long long>(r.boost.total_oracle_calls),
        static_cast<long long>(r.oracle_rounds),
        static_cast<long long>(r.process_rounds),
        static_cast<long long>(r.total_rounds()));
  }
  std::printf(
      "\nThe framework's round cost is (rounds per A_matching call) x\n"
      "O(log(1/eps)/eps^7) + O(1) A_process rounds per pass-bundle — the MPC\n"
      "row of Table 1.\n");
  return 0;
}
