/// Quickstart: boost a 2-approximate greedy oracle to a (1+eps)-approximate
/// maximum matching (Theorem 1.1 of the paper).
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/framework.hpp"
#include "matching/blossom_exact.hpp"
#include "matching/greedy.hpp"
#include "util/rng.hpp"
#include "workloads/gen.hpp"

int main() {
  using namespace bmf;

  // A random graph with a planted perfect matching plus noise.
  Rng rng(2025);
  const Graph g = gen_planted_matching(/*n=*/2000, /*noise=*/6000, rng);

  // Any Theta(1)-approximate matching procedure works as the oracle; here we
  // use greedy maximal matching (c = 2).
  GreedyMatchingOracle oracle;

  CoreConfig cfg;
  cfg.eps = 0.1;  // target: |M| >= mu(G) / 1.1

  const BoostResult result = boost_matching(g, oracle, cfg);

  const std::int64_t mu = maximum_matching_size(g);
  const Matching baseline = greedy_maximal_matching(g);

  std::printf("graph: n=%d m=%lld  mu(G)=%lld\n", g.num_vertices(),
              static_cast<long long>(g.num_edges()), static_cast<long long>(mu));
  std::printf("greedy 2-approx:   |M| = %lld  (ratio %.4f)\n",
              static_cast<long long>(baseline.size()),
              static_cast<double>(mu) / static_cast<double>(baseline.size()));
  std::printf("boosted (eps=%.2f): |M| = %lld  (ratio %.4f, need <= %.4f)\n",
              cfg.eps, static_cast<long long>(result.matching.size()),
              static_cast<double>(mu) / static_cast<double>(result.matching.size()),
              1.0 + cfg.eps);
  std::printf("oracle calls: %lld (initial matching used %lld)\n",
              static_cast<long long>(result.total_oracle_calls),
              static_cast<long long>(result.initial_oracle_calls));
  std::printf("phases: %lld  pass-bundles: %lld  certified: %s\n",
              static_cast<long long>(result.outcome.phases),
              static_cast<long long>(result.outcome.pass_bundles),
              result.outcome.certified ? "yes" : "no");
  return 0;
}
