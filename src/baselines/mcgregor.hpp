#pragma once

/// McGregor-style (1+eps) booster with exponential 1/eps dependence [McG05].
///
/// This is the baseline behind the upper rows of Table 2: all dynamic
/// (1+eps)-matching results derived from [McG05] ([BKS23, BG24, AKK25]) pay
/// (1/eps)^Theta(1/eps) because the underlying path-finding primitive does.
///
/// The booster searches augmenting paths of length 2k+1 (k <= ceil(1/eps))
/// through *random layerings*: every matched edge independently receives a
/// layer in {1..k} and an orientation; a DFS from each free vertex is only
/// allowed to traverse matched edges in layer order and orientation. A fixed
/// augmenting path survives a random layering with probability
/// ~ (1/(2k))^k, so Theta((2k)^k log n) repetitions find it w.h.p. — the
/// exponential repetition count this baseline exists to exhibit. Each
/// repetition costs one pass-equivalent (O(m) work), the unit the benchmarks
/// report next to our framework's oracle calls.

#include <cstdint>

#include "graph/graph.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"

namespace bmf {

struct McGregorStats {
  std::int64_t repetitions = 0;   ///< random layerings tried (pass-equivalents)
  std::int64_t augmentations = 0;
  /// The (2k)^k * factor schedule the analysis demands; the implementation
  /// may stop earlier when `adaptive` is set and progress stalls.
  std::int64_t scheduled_repetitions = 0;
};

struct McGregorConfig {
  double eps = 0.25;
  /// Stop after this many consecutive unproductive repetitions (0 = run the
  /// full exponential schedule).
  std::int64_t stall_limit = 0;
  /// Multiplier on the (2k)^k schedule.
  double schedule_factor = 1.0;
  std::uint64_t seed = 1;
};

/// Boosts m in place toward a (1+eps)-approximation by repeated random
/// layerings; returns the repetition/augmentation counts.
McGregorStats mcgregor_boost(const Graph& g, Matching& m,
                             const McGregorConfig& cfg);

/// Convenience: greedy maximal start, then mcgregor_boost.
[[nodiscard]] std::pair<Matching, McGregorStats> mcgregor_matching(
    const Graph& g, const McGregorConfig& cfg);

}  // namespace bmf
