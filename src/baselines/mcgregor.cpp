#include "baselines/mcgregor.hpp"

#include <cmath>

#include "matching/greedy.hpp"
#include "util/assert.hpp"

namespace bmf {
namespace {

/// One random layering attempt: finds a maximal set of vertex-disjoint
/// augmenting paths respecting layers/orientations, and augments m.
std::int64_t layered_attempt(const Graph& g, Matching& m, int k, Rng& rng) {
  const Vertex n = g.num_vertices();
  // layer[v] in {1..k} and head flag for the matched edge at v; unmatched
  // vertices carry no layer.
  std::vector<std::int32_t> layer(static_cast<std::size_t>(n), 0);
  std::vector<std::uint8_t> is_head(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) {
    const Vertex w = m.mate(v);
    if (w == kNoVertex || w < v) continue;
    const auto l =
        static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(k))) + 1;
    layer[static_cast<std::size_t>(v)] = l;
    layer[static_cast<std::size_t>(w)] = l;
    // Orientation: the head is the endpoint the path must enter through.
    const bool v_is_head = rng.next_bool(0.5);
    is_head[static_cast<std::size_t>(v)] = v_is_head;
    is_head[static_cast<std::size_t>(w)] = !v_is_head;
  }

  std::vector<std::uint8_t> used(static_cast<std::size_t>(n), 0);
  std::vector<Vertex> path;

  // DFS over layered alternating paths: at an exposed endpoint or after a
  // matched edge of layer l, the next matched edge must have layer l+1 and be
  // entered at its head; a free vertex closes an augmenting path.
  auto dfs = [&](auto&& self, Vertex v, int next_layer) -> bool {
    for (Vertex w : g.neighbors(v)) {
      if (used[static_cast<std::size_t>(w)]) continue;
      if (m.mate(v) == w) continue;  // must leave along an unmatched edge
      if (m.is_free(w)) {
        // A free vertex reached over an unmatched edge closes an augmenting
        // path regardless of the layer budget.
        path.push_back(w);
        return true;
      }
      if (layer[static_cast<std::size_t>(w)] != next_layer) continue;
      if (!is_head[static_cast<std::size_t>(w)]) continue;
      const Vertex x = m.mate(w);
      if (used[static_cast<std::size_t>(x)]) continue;
      used[static_cast<std::size_t>(w)] = 1;
      used[static_cast<std::size_t>(x)] = 1;
      path.push_back(w);
      path.push_back(x);
      if (self(self, x, next_layer + 1)) return true;
      path.pop_back();
      path.pop_back();
      used[static_cast<std::size_t>(w)] = 0;
      used[static_cast<std::size_t>(x)] = 0;
    }
    return false;
  };

  std::int64_t found = 0;
  for (Vertex alpha = 0; alpha < n; ++alpha) {
    if (!m.is_free(alpha) || used[static_cast<std::size_t>(alpha)]) continue;
    path.clear();
    path.push_back(alpha);
    used[static_cast<std::size_t>(alpha)] = 1;
    if (dfs(dfs, alpha, 1)) {
      for (Vertex v : path) used[static_cast<std::size_t>(v)] = 1;
      m.augment(path);
      ++found;
    } else {
      used[static_cast<std::size_t>(alpha)] = 0;
    }
  }
  return found;
}

}  // namespace

McGregorStats mcgregor_boost(const Graph& g, Matching& m,
                             const McGregorConfig& cfg) {
  BMF_REQUIRE(cfg.eps > 0 && cfg.eps <= 1, "mcgregor_boost: eps out of range");
  const int k = std::max(1, static_cast<int>(std::ceil(1.0 / cfg.eps)));
  McGregorStats stats;
  stats.scheduled_repetitions = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             cfg.schedule_factor *
             std::pow(2.0 * static_cast<double>(k), static_cast<double>(k))));
  Rng rng(cfg.seed);
  std::int64_t stall = 0;
  for (std::int64_t rep = 0; rep < stats.scheduled_repetitions; ++rep) {
    ++stats.repetitions;
    const std::int64_t found = layered_attempt(g, m, k, rng);
    stats.augmentations += found;
    if (found == 0) {
      if (cfg.stall_limit > 0 && ++stall >= cfg.stall_limit) break;
    } else {
      stall = 0;
    }
  }
  return stats;
}

std::pair<Matching, McGregorStats> mcgregor_matching(const Graph& g,
                                                     const McGregorConfig& cfg) {
  Matching m = greedy_maximal_matching(g);
  McGregorStats stats = mcgregor_boost(g, m, cfg);
  return {std::move(m), stats};
}

}  // namespace bmf
