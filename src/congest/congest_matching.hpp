#pragma once

/// Distributed maximal matching in CONGEST (Israeli-Itai-style handshakes).
///
/// Each iteration (2 rounds): every free vertex proposes to a uniformly
/// random free neighbor; a free vertex that receives proposals accepts
/// exactly one, and a proposal meeting its acceptance forms a matched edge.
/// Matched vertices announce their death in the next iteration's proposal
/// round (piggy-backed). Expected O(log n) iterations to maximality.
///
/// The resulting maximal matching is the 2-approximate A_matching used by the
/// CONGEST instantiation of the framework (Corollary A.2).

#include "core/oracle.hpp"
#include "congest/network.hpp"
#include "util/rng.hpp"

namespace bmf::congest {

struct CongestMatchingResult {
  OracleMatching matching;
  std::int64_t rounds = 0;
  std::int64_t iterations = 0;
};

/// Runs the handshake algorithm on `net`'s graph until no free-free edge
/// remains. Advances the network's round counter.
[[nodiscard]] CongestMatchingResult congest_maximal_matching(Network& net, Rng& rng);

/// A_matching backed by a CONGEST simulation on each derived graph H (the
/// derived graphs are virtual overlay networks; Appendix A routes their
/// messages through representative vertices at poly(1/eps) cost, which the
/// boosted wrapper charges separately). Tracks cumulative simulated rounds.
class CongestMatchingOracle final : public MatchingOracle {
 public:
  explicit CongestMatchingOracle(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] double approx_factor() const override { return 2.0; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override;

 private:
  Rng rng_;
  std::int64_t rounds_ = 0;
};

}  // namespace bmf::congest
