#pragma once

/// Distributed maximal matching in CONGEST (Israeli-Itai-style handshakes).
///
/// Each iteration (2 rounds): every free vertex proposes to a uniformly
/// random free neighbor; a free vertex that receives proposals accepts
/// exactly one, and a proposal meeting its acceptance forms a matched edge.
/// Matched vertices announce their death in the next iteration's proposal
/// round (piggy-backed). Expected O(log n) iterations to maximality.
///
/// The resulting maximal matching is the 2-approximate A_matching used by the
/// CONGEST instantiation of the framework (Corollary A.2).

#include "core/oracle.hpp"
#include "congest/network.hpp"
#include "util/rng.hpp"

namespace bmf::congest {

struct CongestMatchingResult {
  OracleMatching matching;
  std::int64_t rounds = 0;
  std::int64_t iterations = 0;
};

/// Runs the handshake algorithm on `net`'s graph until no free-free edge
/// remains. Advances the network's round counter. Proposal randomness comes
/// from per-vertex streams split from `rng` up front, so the outcome depends
/// only on the seed, never on the network's thread count.
[[nodiscard]] CongestMatchingResult congest_maximal_matching(Network& net, Rng& rng);

/// A_matching backed by a CONGEST simulation on each derived graph H (the
/// derived graphs are virtual overlay networks; Appendix A routes their
/// messages through representative vertices at poly(1/eps) cost, which the
/// boosted wrapper charges separately). Tracks cumulative simulated rounds.
class CongestMatchingOracle final : public MatchingOracle {
 public:
  /// threads: simulation threads for each derived-graph network (1 = serial,
  /// the standalone default — derived graphs are poly(1/eps)-sized, so
  /// fan-out often costs more than it saves; 0 = hardware concurrency).
  /// congest_boost_matching overrides this with CoreConfig::threads so the
  /// boosted pipeline runs on the pool; set cfg.threads = 1 there to get the
  /// serial sweep back. Results are identical either way.
  explicit CongestMatchingOracle(std::uint64_t seed, int threads = 1)
      : rng_(seed), threads_(threads) {}

  [[nodiscard]] double approx_factor() const override { return 2.0; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override;

 private:
  Rng rng_;
  int threads_ = 1;
  std::int64_t rounds_ = 0;
};

}  // namespace bmf::congest
