#include "congest/network.hpp"

#include <deque>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf::congest {

Network::Network(const Graph& g, int threads)
    : g_(g),
      threads_(threads),
      inboxes_(static_cast<std::size_t>(g.num_vertices())) {}

void Network::round(
    const std::function<void(Vertex v, const Inbox&, const Sender&)>& step) {
  const Vertex n = g_.num_vertices();

  // Parallel phase: every vertex handler runs against its immutable inbox
  // and buffers sends in a private outbox of (to, word) pairs.
  std::vector<std::vector<std::pair<Vertex, std::uint64_t>>> outbox(
      static_cast<std::size_t>(n));
  parallel_for_threads(threads_, n, [&](std::int64_t vi) {
    const auto v = static_cast<Vertex>(vi);
    auto& out = outbox[static_cast<std::size_t>(v)];
    const Sender send = [&](Vertex to, std::uint64_t word) {
      BMF_ASSERT_MSG(g_.has_edge(v, to), "CONGEST send along a non-edge");
      out.emplace_back(to, word);
    };
    step(v, inboxes_[static_cast<std::size_t>(v)], send);
  });

  // Barrier passed; merge in vertex order (= the serial delivery schedule,
  // so inbox ordering is independent of the thread count) and account for
  // per-channel congestion violations centrally.
  std::vector<Inbox> next(static_cast<std::size_t>(n));
  std::unordered_map<std::uint64_t, int> channel_use;
  for (Vertex v = 0; v < n; ++v) {
    for (const auto& [to, word] : outbox[static_cast<std::size_t>(v)]) {
      const std::uint64_t channel =
          (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
          static_cast<std::uint32_t>(to);
      if (++channel_use[channel] > 1) ++violations_;
      next[static_cast<std::size_t>(to)].emplace_back(v, word);
      ++messages_;
    }
  }
  inboxes_ = std::move(next);
  ++rounds_;
}

std::vector<std::uint64_t> component_aggregate_min(
    Network& net, const std::vector<std::vector<Vertex>>& components,
    const std::vector<std::uint64_t>& values) {
  const Graph& g = net.graph();
  BMF_REQUIRE(static_cast<Vertex>(values.size()) == g.num_vertices(),
              "component_aggregate_min: values size mismatch");

  // Build BFS trees (representative = first vertex of each component); the
  // simulator computes the trees centrally but charges the rounds a
  // distributed convergecast+broadcast would take: 2 * depth + 2.
  std::vector<std::uint64_t> result(components.size(), ~0ULL);
  std::vector<std::int32_t> comp_of(static_cast<std::size_t>(g.num_vertices()), -1);
  for (std::size_t c = 0; c < components.size(); ++c)
    for (Vertex v : components[c])
      comp_of[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(c);

  std::int64_t max_depth = 0;
  for (std::size_t c = 0; c < components.size(); ++c) {
    if (components[c].empty()) continue;
    std::unordered_map<Vertex, std::int64_t> depth;
    std::deque<Vertex> queue{components[c].front()};
    depth[components[c].front()] = 0;
    std::uint64_t agg = values[static_cast<std::size_t>(components[c].front())];
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      agg = std::min(agg, values[static_cast<std::size_t>(v)]);
      for (Vertex w : g.neighbors(v)) {
        if (comp_of[static_cast<std::size_t>(w)] != static_cast<std::int32_t>(c))
          continue;
        if (depth.contains(w)) continue;
        depth[w] = depth[v] + 1;
        max_depth = std::max(max_depth, depth[w]);
        queue.push_back(w);
      }
    }
    BMF_ASSERT_MSG(depth.size() == components[c].size(),
                   "component_aggregate_min: component not connected");
    result[c] = agg;
  }
  net.charge_rounds(2 * max_depth + 2);
  return result;
}

}  // namespace bmf::congest
