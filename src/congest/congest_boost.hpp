#pragma once

/// Corollary A.2: (1+eps)-approximate maximum matching in CONGEST.
///
/// The framework's clean-up operations are charged to A_process: all vertices
/// of a structure route their messages through a representative vertex, which
/// takes O(k) rounds for a component of k vertices (Appendix A). The boosted
/// wrapper therefore charges 2 * (max structure size) + 2 rounds per
/// pass-bundle — the convergecast+broadcast cost on the largest structure —
/// on top of the simulated rounds inside A_matching.

#include "core/framework.hpp"
#include "congest/congest_matching.hpp"

namespace bmf::congest {

struct CongestBoostResult {
  BoostResult boost;
  std::int64_t oracle_rounds = 0;   ///< simulated rounds inside A_matching
  std::int64_t process_rounds = 0;  ///< rounds charged to A_process
  std::int64_t max_structure_size = 0;
  [[nodiscard]] std::int64_t total_rounds() const {
    return oracle_rounds + process_rounds;
  }
};

[[nodiscard]] CongestBoostResult congest_boost_matching(const Graph& g,
                                                        const CoreConfig& cfg);

}  // namespace bmf::congest
