#include "congest/congest_boost.hpp"

namespace bmf::congest {
namespace {

/// Delegates the simulation to FrameworkDriver and accounts A_process rounds
/// per pass-bundle from the observed structure sizes.
class AccountingDriver final : public PassBundleDriver {
 public:
  AccountingDriver(FrameworkDriver& inner, CongestBoostResult& result)
      : inner_(inner), result_(result) {}

  void begin_phase(StructureForest& forest) override { inner_.begin_phase(forest); }

  void extend_active_path(StructureForest& forest) override {
    inner_.extend_active_path(forest);
  }

  void contract_and_augment(StructureForest& forest) override {
    inner_.contract_and_augment(forest);
    std::int64_t max_size = 1;
    for (StructureId s = 0; s < forest.num_structures(); ++s)
      if (!forest.structure(s).removed)
        max_size = std::max(max_size, forest.structure(s).size);
    result_.max_structure_size = std::max(result_.max_structure_size, max_size);
    result_.process_rounds += 2 * max_size + 2;
  }

  [[nodiscard]] bool exhaustive() const override { return inner_.exhaustive(); }

 private:
  FrameworkDriver& inner_;
  CongestBoostResult& result_;
};

}  // namespace

CongestBoostResult congest_boost_matching(const Graph& g, const CoreConfig& cfg) {
  CongestBoostResult result;
  CongestMatchingOracle oracle(cfg.seed, cfg.threads);

  result.boost.matching = framework_initial_matching(g, oracle, cfg);
  const std::int64_t initial_calls = oracle.calls();
  result.boost.initial_oracle_calls = initial_calls;

  FrameworkDriver inner(g, oracle, cfg);
  AccountingDriver driver(inner, result);
  PhaseEngine engine(g, cfg);
  result.boost.outcome = engine.run(result.boost.matching, driver);
  result.boost.stats = inner.stats();
  result.boost.total_oracle_calls = oracle.calls();
  result.oracle_rounds = oracle.rounds();
  return result;
}

}  // namespace bmf::congest
