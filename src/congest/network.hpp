#pragma once

/// A CONGEST simulator (Section 3.4).
///
/// One machine per vertex, topology = the graph's edges. Per synchronous
/// round, each machine may send one O(log n)-bit message (one 64-bit word
/// here) along each incident edge; different edges may carry different
/// messages. Sending two messages over the same edge in one round is a model
/// violation and is counted (tests require zero violations).
///
/// Vertex handlers run concurrently on the shared thread pool (the `threads`
/// constructor knob). Each vertex buffers sends in a private outbox; after a
/// barrier the outboxes are merged into next-round inboxes in vertex order,
/// reproducing the serial delivery schedule exactly, so results are
/// bit-identical at any thread count. Handlers may mutate per-vertex state
/// but must not write shared state without their own synchronization.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "graph/graph.hpp"

namespace bmf::congest {

class Network {
 public:
  /// threads: 0 = hardware concurrency, 1 = serial. Simulation results are
  /// identical either way.
  explicit Network(const Graph& g, int threads = 0);

  [[nodiscard]] const Graph& graph() const { return g_; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }
  [[nodiscard]] std::int64_t messages() const { return messages_; }
  [[nodiscard]] std::int64_t violations() const { return violations_; }

  /// Messages delivered to a vertex this round: (neighbor, word) pairs.
  using Inbox = std::vector<std::pair<Vertex, std::uint64_t>>;
  /// send(neighbor, word): transmit one word to an adjacent vertex.
  using Sender = std::function<void(Vertex, std::uint64_t)>;

  /// One synchronous round; `step(v, inbox, send)` runs on every vertex.
  void round(const std::function<void(Vertex v, const Inbox&, const Sender&)>& step);

  /// Charge rounds without simulating (used for primitives whose round count
  /// is known exactly and whose messages are uninteresting).
  void charge_rounds(std::int64_t r) { rounds_ += r; }

 private:
  const Graph& g_;
  int threads_ = 0;
  std::int64_t rounds_ = 0;
  std::int64_t messages_ = 0;
  std::int64_t violations_ = 0;
  std::vector<Inbox> inboxes_;
};

/// Convergecast + broadcast inside disjoint connected components: every
/// vertex of each component learns the aggregate (here: min over the
/// submitted words). Runs on a BFS tree per component; the round cost is
/// 2 * max tree depth (+2 for tree setup accounting), matching the
/// poly(1/eps)-round A_process of Appendix A.
///
/// `components` lists the vertex sets; returns the aggregate per component
/// and advances the network's round counter.
[[nodiscard]] std::vector<std::uint64_t> component_aggregate_min(
    Network& net, const std::vector<std::vector<Vertex>>& components,
    const std::vector<std::uint64_t>& values);

}  // namespace bmf::congest
