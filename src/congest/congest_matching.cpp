#include "congest/congest_matching.hpp"

#include <algorithm>

#include "graph/graph.hpp"
#include "util/assert.hpp"

namespace bmf::congest {
namespace {

// Message words (low 2 bits = kind, rest unused payload space).
enum Word : std::uint64_t { kPropose = 1, kAccept = 2, kDead = 3 };

}  // namespace

CongestMatchingResult congest_maximal_matching(Network& net, Rng& rng) {
  const Graph& g = net.graph();
  const Vertex n = g.num_vertices();
  const std::int64_t rounds_before = net.rounds();

  std::vector<Vertex> mate(static_cast<std::size_t>(n), kNoVertex);
  // Per-vertex random streams, split deterministically from the caller's
  // generator: vertex handlers run concurrently inside Network::round, so
  // they must not share one Rng (a shared stream would both race and make
  // the draw order depend on the schedule).
  std::vector<Rng> vertex_rng;
  vertex_rng.reserve(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) vertex_rng.push_back(rng.split());
  // Live neighbor views are maintained locally by each vertex; deaths are
  // communicated by the kDead word.
  std::vector<std::vector<Vertex>> live(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    live[static_cast<std::size_t>(v)].assign(nb.begin(), nb.end());
  }
  std::vector<std::uint8_t> announced(static_cast<std::size_t>(n), 0);

  auto any_live_edge = [&]() {
    for (Vertex v = 0; v < n; ++v) {
      if (mate[static_cast<std::size_t>(v)] != kNoVertex) continue;
      for (Vertex w : live[static_cast<std::size_t>(v)])
        if (mate[static_cast<std::size_t>(w)] == kNoVertex) return true;
    }
    return false;
  };

  std::int64_t iterations = 0;
  std::vector<Vertex> proposed_to(static_cast<std::size_t>(n), kNoVertex);
  std::vector<Vertex> accepted_from(static_cast<std::size_t>(n), kNoVertex);

  while (any_live_edge()) {
    ++iterations;

    // Round 1: free vertices propose to a random live free neighbor; freshly
    // matched vertices announce death to all remaining live neighbors.
    net.round([&](Vertex v, const Network::Inbox&, const Network::Sender& send) {
      auto& lv = live[static_cast<std::size_t>(v)];
      std::erase_if(lv, [&](Vertex w) {
        return mate[static_cast<std::size_t>(w)] != kNoVertex;
      });
      if (mate[static_cast<std::size_t>(v)] != kNoVertex) {
        if (!announced[static_cast<std::size_t>(v)]) {
          announced[static_cast<std::size_t>(v)] = 1;
          for (Vertex w : lv) send(w, kDead);
        }
        proposed_to[static_cast<std::size_t>(v)] = kNoVertex;
        return;
      }
      proposed_to[static_cast<std::size_t>(v)] = kNoVertex;
      if (lv.empty()) return;
      const Vertex target = lv[static_cast<std::size_t>(
          vertex_rng[static_cast<std::size_t>(v)].next_below(lv.size()))];
      proposed_to[static_cast<std::size_t>(v)] = target;
      send(target, kPropose);
    });

    // Round 2: free vertices accept exactly one received proposal (the
    // lowest-id proposer); a proposer whose target accepts it is matched.
    net.round([&](Vertex v, const Network::Inbox& inbox, const Network::Sender& send) {
      if (mate[static_cast<std::size_t>(v)] != kNoVertex) return;
      Vertex chosen = kNoVertex;
      for (const auto& [from, word] : inbox) {
        if (word != kPropose) continue;
        if (mate[static_cast<std::size_t>(from)] != kNoVertex) continue;
        if (chosen == kNoVertex || from < chosen) chosen = from;
      }
      if (chosen != kNoVertex) send(chosen, kAccept);
    });

    // Resolve handshakes: v proposed to t and t accepted v. Acceptances were
    // delivered into the next round's inboxes; resolve them with one more
    // round so the message accounting stays within the model. The candidate
    // pairs are NOT vertex-disjoint — a vertex can have its own proposal
    // accepted while also being the acceptor of another proposal — so
    // handlers only record the acceptance they received (per-vertex slot),
    // and the matches are applied after the barrier in vertex order: the
    // same global greedy the serial sweep performed, now independent of the
    // handler execution schedule.
    std::fill(accepted_from.begin(), accepted_from.end(), kNoVertex);
    net.round([&](Vertex v, const Network::Inbox& inbox, const Network::Sender&) {
      for (const auto& [from, word] : inbox) {
        if (word != kAccept) continue;
        // `from` accepted v's proposal.
        if (proposed_to[static_cast<std::size_t>(v)] == from)
          accepted_from[static_cast<std::size_t>(v)] = from;
      }
    });
    for (Vertex v = 0; v < n; ++v) {
      const Vertex from = accepted_from[static_cast<std::size_t>(v)];
      if (from == kNoVertex) continue;
      if (mate[static_cast<std::size_t>(v)] == kNoVertex &&
          mate[static_cast<std::size_t>(from)] == kNoVertex) {
        mate[static_cast<std::size_t>(v)] = from;
        mate[static_cast<std::size_t>(from)] = v;
      }
    }
  }

  CongestMatchingResult result;
  for (Vertex v = 0; v < n; ++v)
    if (mate[static_cast<std::size_t>(v)] > v)
      result.matching.emplace_back(v, mate[static_cast<std::size_t>(v)]);
  result.rounds = net.rounds() - rounds_before;
  result.iterations = iterations;
  BMF_ASSERT(net.violations() == 0);
  return result;
}

OracleMatching CongestMatchingOracle::find_impl(const OracleGraph& h) {
  GraphBuilder b(h.n);
  for (const auto& [u, v] : h.edges) b.add_edge(u, v);
  const Graph g = b.build();
  Network net(g, threads_);
  CongestMatchingResult r = congest_maximal_matching(net, rng_);
  rounds_ += r.rounds;
  return std::move(r.matching);
}

}  // namespace bmf::congest
