#pragma once

/// Update-sequence generators for the fully dynamic experiments (Table 2).
///
/// All generators track the evolving edge set so every emitted update is
/// valid (no duplicate insertions, no deletions of absent edges) and the
/// graph starts empty, as Problem 1 requires.

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/dynamic_matcher.hpp"
#include "util/rng.hpp"

namespace bmf {

/// Mixed random insertions/deletions: each step inserts a fresh uniform edge
/// with probability insert_prob (or when nothing is deletable), otherwise
/// deletes a uniform existing edge.
[[nodiscard]] std::vector<EdgeUpdate> dyn_random_updates(Vertex n,
                                                         std::int64_t count,
                                                         double insert_prob,
                                                         Rng& rng);

/// Sliding window: always insert a fresh edge; once `window` edges are live,
/// each insertion is preceded by deleting the oldest edge.
[[nodiscard]] std::vector<EdgeUpdate> dyn_sliding_window(Vertex n,
                                                         std::int64_t window,
                                                         std::int64_t count,
                                                         Rng& rng);

/// Churning planted matching: builds a perfect matching, then repeatedly
/// deletes a random *matched-structure* edge and re-inserts a replacement
/// keeping a near-perfect matching present; stresses the rebuild path because
/// mu stays Theta(n) while the witness keeps moving.
[[nodiscard]] std::vector<EdgeUpdate> dyn_churn_planted(Vertex n,
                                                        std::int64_t count,
                                                        Rng& rng);

/// Planted pairs (2i, 2i+1) built up by insertions, every pair endpoint also
/// wired to a small shared hub set, then the planted matching torn down by
/// deleting each pair edge once in shuffled order: the teardown is a maximal
/// run of consecutive matched-edge deletions with pairwise-disjoint
/// endpoints (a heavy reservation-rematch run, truncated only by rebuild
/// triggers), and the hubs make freed endpoints compete for the same rematch
/// candidates. Uses vertices [0, 2*pairs + hubs).
[[nodiscard]] std::vector<EdgeUpdate> dyn_planted_teardown(Vertex pairs,
                                                           Vertex hubs, Rng& rng);

/// Vertex-partition-aware stream for the sharded dynamic engine: vertices
/// are split into `shards` contiguous blocks (the ShardedDynamicMatcher
/// partition), and each insertion is intra-shard (both endpoints drawn from
/// one uniformly chosen block) with probability 1 - cross_fraction, or
/// cross-shard (endpoints from two distinct blocks) otherwise; deletions
/// pick a uniform live edge. cross_fraction ~ 0 keeps updates shard-local
/// (the cheap routing regime), ~ 1 makes every edge straddle shards and
/// stresses the coordinator merge. Every emitted update is valid and the
/// graph starts empty. Requires n >= 2 * shards; blocks the ceil split
/// leaves too small to host a draw (empty, or single-vertex for intra-shard
/// edges) are excluded from shard selection.
[[nodiscard]] std::vector<EdgeUpdate> dyn_shard_partitioned(
    Vertex n, int shards, std::int64_t count, double cross_fraction,
    double insert_prob, Rng& rng);

/// Mixed-churn stream for the cross-engine differential harness: rotates
/// through four regimes in fixed-length phases — an insert-heavy burst, a
/// planted-pair build-up immediately torn down by consecutive matched-edge
/// deletions (maximal heavy reservation-rematch runs), a deletion-heavy
/// random mix, and an oldest-first eviction sweep — so one stream exercises
/// the light-prefix, heavy-run, rebuild-overlap, and eviction paths of the
/// replay core back to back. Every emitted update is valid and the graph
/// starts empty.
[[nodiscard]] std::vector<EdgeUpdate> dyn_mixed_churn(Vertex n, std::int64_t count,
                                                      Rng& rng);

/// Cuts an update stream into consecutive batches of `batch_size` updates
/// (the last batch may be shorter). Feeding the slices to
/// `DynamicMatcher::apply_batch` in order replays the stream exactly.
[[nodiscard]] std::vector<std::vector<EdgeUpdate>> slice_updates(
    std::span<const EdgeUpdate> updates, std::int64_t batch_size);

/// Batched bursts with endpoint skew: like dyn_random_updates but emitted as
/// ready-made batches, with a `hot_fraction` of insertions drawn from a small
/// hot vertex set (|hot| = max(2, n/16)). Hot bursts force endpoint conflicts
/// inside a batch, stressing apply_batch's conflict-resolution pass rather
/// than its embarrassingly-parallel fast path.
[[nodiscard]] std::vector<std::vector<EdgeUpdate>> dyn_batched_bursts(
    Vertex n, std::int64_t batches, std::int64_t batch_size, double insert_prob,
    double hot_fraction, Rng& rng);

}  // namespace bmf
