#include "workloads/gen.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace bmf {

Graph gen_random_graph(Vertex n, std::int64_t m, Rng& rng) {
  BMF_REQUIRE(n >= 2, "gen_random_graph: need n >= 2");
  const std::int64_t max_edges = static_cast<std::int64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_edges);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  while (static_cast<std::int64_t>(seen.size()) < m) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph gen_random_bipartite(Vertex left, Vertex right, std::int64_t m, Rng& rng) {
  BMF_REQUIRE(left >= 1 && right >= 1, "gen_random_bipartite: empty side");
  const std::int64_t max_edges = static_cast<std::int64_t>(left) * right;
  m = std::min(m, max_edges);
  GraphBuilder b(left + right);
  std::unordered_set<std::uint64_t> seen;
  while (static_cast<std::int64_t>(seen.size()) < m) {
    const auto u =
        static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(left)));
    const auto v = static_cast<Vertex>(
        left + static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(right))));
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph gen_planted_matching(Vertex n, std::int64_t noise, Rng& rng) {
  BMF_REQUIRE(n >= 2 && n % 2 == 0, "gen_planted_matching: need even n >= 2");
  std::vector<Vertex> perm(static_cast<std::size_t>(n));
  for (Vertex v = 0; v < n; ++v) perm[static_cast<std::size_t>(v)] = v;
  rng.shuffle(perm);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  for (Vertex i = 0; i < n; i += 2) {
    const Vertex u = perm[static_cast<std::size_t>(i)];
    const Vertex v = perm[static_cast<std::size_t>(i + 1)];
    b.add_edge(u, v);
    seen.insert(edge_key(u, v));
  }
  std::int64_t added = 0;
  const std::int64_t max_extra =
      static_cast<std::int64_t>(n) * (n - 1) / 2 - n / 2;
  noise = std::min(noise, max_extra);
  while (added < noise) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) {
      b.add_edge(u, v);
      ++added;
    }
  }
  return b.build();
}

Graph gen_disjoint_paths(Vertex count, Vertex path_len) {
  BMF_REQUIRE(count >= 1 && path_len >= 1, "gen_disjoint_paths: bad parameters");
  const Vertex per = path_len + 1;
  GraphBuilder b(count * per);
  for (Vertex c = 0; c < count; ++c)
    for (Vertex i = 0; i < path_len; ++i)
      b.add_edge(c * per + i, c * per + i + 1);
  return b.build();
}

Graph gen_augmenting_chains(Vertex gadgets, Vertex k) {
  BMF_REQUIRE(gadgets >= 1 && k >= 1, "gen_augmenting_chains: bad parameters");
  // Each gadget is a path with 2k+1 edges: a maximum matching has k+1 edges,
  // while the "lazy" matching that takes every second edge starting from the
  // second one has k edges and admits a single augmenting path of length 2k+1.
  return gen_disjoint_paths(gadgets, 2 * k + 1);
}

Graph gen_adversarial_chains(Vertex gadgets, Vertex k) {
  BMF_REQUIRE(gadgets >= 1 && k >= 1, "gen_adversarial_chains: bad parameters");
  // Path p_0 - p_1 - ... - p_{2k+1} per gadget. Middle (odd-indexed) edges
  // are (p_{2i+1}, p_{2i+2}); give their endpoints the lowest labels within
  // the gadget block so canonical edge order lists each middle edge before
  // the unmatched edges touching it, making greedy take exactly the middles.
  const Vertex per = 2 * k + 2;
  GraphBuilder b(gadgets * per);
  for (Vertex c = 0; c < gadgets; ++c) {
    const Vertex base = c * per;
    std::vector<Vertex> label(static_cast<std::size_t>(per));
    // p_1..p_{2k} get base+0 .. base+2k-1; endpoints p_0, p_{2k+1} go last.
    for (Vertex i = 1; i <= 2 * k; ++i)
      label[static_cast<std::size_t>(i)] = base + i - 1;
    label[0] = base + 2 * k;
    label[static_cast<std::size_t>(2 * k + 1)] = base + 2 * k + 1;
    for (Vertex i = 0; i <= 2 * k; ++i)
      b.add_edge(label[static_cast<std::size_t>(i)],
                 label[static_cast<std::size_t>(i + 1)]);
  }
  return b.build();
}

Graph gen_odd_cycles(Vertex count, Vertex cycle_len) {
  BMF_REQUIRE(count >= 1 && cycle_len >= 3 && cycle_len % 2 == 1,
              "gen_odd_cycles: need odd cycle_len >= 3");
  GraphBuilder b(count * cycle_len);
  for (Vertex c = 0; c < count; ++c)
    for (Vertex i = 0; i < cycle_len; ++i)
      b.add_edge(c * cycle_len + i, c * cycle_len + (i + 1) % cycle_len);
  return b.build();
}

Graph gen_near_regular(Vertex n, Vertex d, Rng& rng) {
  BMF_REQUIRE(n >= 2 && d >= 1 && d < n, "gen_near_regular: bad parameters");
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  std::vector<Vertex> stubs;
  stubs.reserve(static_cast<std::size_t>(n) * d);
  for (Vertex v = 0; v < n; ++v)
    for (Vertex i = 0; i < d; ++i) stubs.push_back(v);
  rng.shuffle(stubs);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    const Vertex u = stubs[i], v = stubs[i + 1];
    if (u == v) continue;
    if (seen.insert(edge_key(u, v)).second) b.add_edge(u, v);
  }
  return b.build();
}

Graph gen_clique_pair(Vertex k) {
  BMF_REQUIRE(k >= 1, "gen_clique_pair: bad size");
  GraphBuilder b(2 * k);
  for (Vertex i = 0; i < k; ++i) {
    for (Vertex j = i + 1; j < k; ++j) {
      b.add_edge(i, j);
      b.add_edge(k + i, k + j);
    }
    b.add_edge(i, k + i);
  }
  return b.build();
}

}  // namespace bmf
