#include "workloads/dyn_workload.hpp"

#include <deque>
#include <unordered_set>

#include "util/assert.hpp"

namespace bmf {
namespace {

std::uint64_t key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

Edge random_fresh_edge(Vertex n, const std::unordered_set<std::uint64_t>& live,
                       Rng& rng) {
  for (;;) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (!live.contains(key(u, v))) return {std::min(u, v), std::max(u, v)};
  }
}

}  // namespace

std::vector<EdgeUpdate> dyn_random_updates(Vertex n, std::int64_t count,
                                           double insert_prob, Rng& rng) {
  BMF_REQUIRE(n >= 2 && count >= 0, "dyn_random_updates: bad parameters");
  std::vector<EdgeUpdate> updates;
  updates.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::uint64_t> live;
  std::vector<Edge> live_list;
  while (static_cast<std::int64_t>(updates.size()) < count) {
    const bool do_insert = live_list.empty() || rng.next_bool(insert_prob);
    if (do_insert) {
      const Edge e = random_fresh_edge(n, live, rng);
      live.insert(key(e.u, e.v));
      live_list.push_back(e);
      updates.push_back(EdgeUpdate::ins(e.u, e.v));
    } else {
      const std::size_t i =
          static_cast<std::size_t>(rng.next_below(live_list.size()));
      const Edge e = live_list[i];
      live_list[i] = live_list.back();
      live_list.pop_back();
      live.erase(key(e.u, e.v));
      updates.push_back(EdgeUpdate::del(e.u, e.v));
    }
  }
  return updates;
}

std::vector<EdgeUpdate> dyn_sliding_window(Vertex n, std::int64_t window,
                                           std::int64_t count, Rng& rng) {
  BMF_REQUIRE(n >= 2 && window >= 1 && count >= 0,
              "dyn_sliding_window: bad parameters");
  std::vector<EdgeUpdate> updates;
  std::unordered_set<std::uint64_t> live;
  std::deque<Edge> fifo;
  while (static_cast<std::int64_t>(updates.size()) < count) {
    if (static_cast<std::int64_t>(fifo.size()) >= window) {
      const Edge e = fifo.front();
      fifo.pop_front();
      live.erase(key(e.u, e.v));
      updates.push_back(EdgeUpdate::del(e.u, e.v));
      if (static_cast<std::int64_t>(updates.size()) >= count) break;
    }
    const Edge e = random_fresh_edge(n, live, rng);
    live.insert(key(e.u, e.v));
    fifo.push_back(e);
    updates.push_back(EdgeUpdate::ins(e.u, e.v));
  }
  return updates;
}

std::vector<EdgeUpdate> dyn_churn_planted(Vertex n, std::int64_t count, Rng& rng) {
  BMF_REQUIRE(n >= 4 && n % 2 == 0 && count >= 0,
              "dyn_churn_planted: need even n >= 4");
  std::vector<EdgeUpdate> updates;
  std::unordered_set<std::uint64_t> live;
  // Plant the perfect matching i <-> i + n/2.
  std::vector<Edge> planted;
  const Vertex half = n / 2;
  for (Vertex i = 0; i < half && static_cast<std::int64_t>(updates.size()) < count;
       ++i) {
    planted.push_back({i, i + half});
    live.insert(key(i, i + half));
    updates.push_back(EdgeUpdate::ins(i, i + half));
  }
  // Churn: delete one planted edge, insert a random replacement pair shift.
  while (static_cast<std::int64_t>(updates.size()) < count) {
    const std::size_t i =
        static_cast<std::size_t>(rng.next_below(planted.size()));
    const Edge old = planted[i];
    live.erase(key(old.u, old.v));
    updates.push_back(EdgeUpdate::del(old.u, old.v));
    if (static_cast<std::int64_t>(updates.size()) >= count) break;
    // Re-plant the same pair through a random intermediate shift: connect
    // old.u to a random partner w and keep churn local.
    Edge fresh = random_fresh_edge(n, live, rng);
    live.insert(key(fresh.u, fresh.v));
    planted[i] = fresh;
    updates.push_back(EdgeUpdate::ins(fresh.u, fresh.v));
  }
  return updates;
}

}  // namespace bmf
