#include "workloads/dyn_workload.hpp"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "dynamic/sharded_matcher.hpp"
#include "util/assert.hpp"

namespace bmf {
namespace {

Edge random_fresh_edge(Vertex n, const std::unordered_set<std::uint64_t>& live,
                       Rng& rng) {
  for (;;) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (!live.contains(edge_key(u, v))) return {std::min(u, v), std::max(u, v)};
  }
}

}  // namespace

std::vector<EdgeUpdate> dyn_planted_teardown(Vertex pairs, Vertex hubs, Rng& rng) {
  BMF_REQUIRE(pairs >= 1 && hubs >= 1, "dyn_planted_teardown: bad parameters");
  std::vector<EdgeUpdate> ups;
  const Vertex hub_base = 2 * pairs;
  for (Vertex i = 0; i < pairs; ++i) ups.push_back(EdgeUpdate::ins(2 * i, 2 * i + 1));
  for (Vertex i = 0; i < pairs; ++i) {
    ups.push_back(EdgeUpdate::ins(2 * i, hub_base + (i % hubs)));
    ups.push_back(EdgeUpdate::ins(2 * i + 1, hub_base + ((i + 1) % hubs)));
  }
  std::vector<Vertex> order(static_cast<std::size_t>(pairs));
  for (Vertex i = 0; i < pairs; ++i) order[static_cast<std::size_t>(i)] = i;
  rng.shuffle(order);
  for (const Vertex j : order) ups.push_back(EdgeUpdate::del(2 * j, 2 * j + 1));
  return ups;
}

std::vector<EdgeUpdate> dyn_random_updates(Vertex n, std::int64_t count,
                                           double insert_prob, Rng& rng) {
  BMF_REQUIRE(n >= 2 && count >= 0, "dyn_random_updates: bad parameters");
  std::vector<EdgeUpdate> updates;
  updates.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::uint64_t> live;
  std::vector<Edge> live_list;
  while (static_cast<std::int64_t>(updates.size()) < count) {
    const bool do_insert = live_list.empty() || rng.next_bool(insert_prob);
    if (do_insert) {
      const Edge e = random_fresh_edge(n, live, rng);
      live.insert(edge_key(e.u, e.v));
      live_list.push_back(e);
      updates.push_back(EdgeUpdate::ins(e.u, e.v));
    } else {
      const std::size_t i =
          static_cast<std::size_t>(rng.next_below(live_list.size()));
      const Edge e = live_list[i];
      live_list[i] = live_list.back();
      live_list.pop_back();
      live.erase(edge_key(e.u, e.v));
      updates.push_back(EdgeUpdate::del(e.u, e.v));
    }
  }
  return updates;
}

std::vector<EdgeUpdate> dyn_sliding_window(Vertex n, std::int64_t window,
                                           std::int64_t count, Rng& rng) {
  BMF_REQUIRE(n >= 2 && window >= 1 && count >= 0,
              "dyn_sliding_window: bad parameters");
  std::vector<EdgeUpdate> updates;
  std::unordered_set<std::uint64_t> live;
  std::deque<Edge> fifo;
  while (static_cast<std::int64_t>(updates.size()) < count) {
    if (static_cast<std::int64_t>(fifo.size()) >= window) {
      const Edge e = fifo.front();
      fifo.pop_front();
      live.erase(edge_key(e.u, e.v));
      updates.push_back(EdgeUpdate::del(e.u, e.v));
      if (static_cast<std::int64_t>(updates.size()) >= count) break;
    }
    const Edge e = random_fresh_edge(n, live, rng);
    live.insert(edge_key(e.u, e.v));
    fifo.push_back(e);
    updates.push_back(EdgeUpdate::ins(e.u, e.v));
  }
  return updates;
}

std::vector<EdgeUpdate> dyn_churn_planted(Vertex n, std::int64_t count, Rng& rng) {
  BMF_REQUIRE(n >= 4 && n % 2 == 0 && count >= 0,
              "dyn_churn_planted: need even n >= 4");
  std::vector<EdgeUpdate> updates;
  std::unordered_set<std::uint64_t> live;
  // Plant the perfect matching i <-> i + n/2.
  std::vector<Edge> planted;
  const Vertex half = n / 2;
  for (Vertex i = 0; i < half && static_cast<std::int64_t>(updates.size()) < count;
       ++i) {
    planted.push_back({i, i + half});
    live.insert(edge_key(i, i + half));
    updates.push_back(EdgeUpdate::ins(i, i + half));
  }
  // Churn: delete one planted edge, insert a random replacement pair shift.
  while (static_cast<std::int64_t>(updates.size()) < count) {
    const std::size_t i =
        static_cast<std::size_t>(rng.next_below(planted.size()));
    const Edge old = planted[i];
    live.erase(edge_key(old.u, old.v));
    updates.push_back(EdgeUpdate::del(old.u, old.v));
    if (static_cast<std::int64_t>(updates.size()) >= count) break;
    // Re-plant the same pair through a random intermediate shift: connect
    // old.u to a random partner w and keep churn local.
    Edge fresh = random_fresh_edge(n, live, rng);
    live.insert(edge_key(fresh.u, fresh.v));
    planted[i] = fresh;
    updates.push_back(EdgeUpdate::ins(fresh.u, fresh.v));
  }
  return updates;
}

std::vector<EdgeUpdate> dyn_shard_partitioned(Vertex n, int shards,
                                              std::int64_t count,
                                              double cross_fraction,
                                              double insert_prob, Rng& rng) {
  BMF_REQUIRE(shards >= 1 && n >= 2 * static_cast<Vertex>(shards) && count >= 0 &&
                  cross_fraction >= 0 && cross_fraction <= 1,
              "dyn_shard_partitioned: bad parameters");
  // The engine's own partition rule (one source of truth for the block
  // math). The ceil split can leave trailing blocks empty or single-vertex
  // (e.g. n = 9, shards = 4 -> [0,3) [3,6) [6,9) []), so draws go through
  // eligibility lists: intra-shard edges need a block of >= 2 vertices,
  // cross-shard endpoints any non-empty block.
  const VertexPartition part(n, shards);
  std::vector<int> intra_ok, cross_ok;
  for (int s = 0; s < part.shards(); ++s) {
    if (part.size(s) >= 2) intra_ok.push_back(s);
    if (part.size(s) >= 1) cross_ok.push_back(s);
  }
  BMF_ASSERT(!intra_ok.empty());  // n >= 2 guarantees block 0 holds two
  const auto draw_in = [&](int s) {
    return part.begin(s) +
           static_cast<Vertex>(
               rng.next_below(static_cast<std::uint64_t>(part.size(s))));
  };

  std::vector<EdgeUpdate> updates;
  updates.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::uint64_t> live;
  std::vector<Edge> live_list;
  // On tiny graphs an insert-heavy stream can saturate the whole edge set;
  // force deletions at the cap so the generator always terminates.
  const std::int64_t max_edges = static_cast<std::int64_t>(n) * (n - 1) / 2;
  while (static_cast<std::int64_t>(updates.size()) < count) {
    const bool can_insert =
        static_cast<std::int64_t>(live_list.size()) < max_edges;
    const bool do_insert =
        live_list.empty() || (can_insert && rng.next_bool(insert_prob));
    if (do_insert) {
      Edge e{kNoVertex, kNoVertex};
      // A small block can saturate; after a bounded number of draws fall
      // back to a global fresh edge (same idiom as dyn_batched_bursts).
      for (int attempt = 0; attempt < 64; ++attempt) {
        Vertex u, v;
        if (cross_ok.size() >= 2 && rng.next_bool(cross_fraction)) {
          auto i = static_cast<std::size_t>(rng.next_below(cross_ok.size()));
          auto j = static_cast<std::size_t>(rng.next_below(cross_ok.size() - 1));
          if (j >= i) ++j;  // distinct shard, uniform over the rest
          u = draw_in(cross_ok[i]);
          v = draw_in(cross_ok[j]);
        } else {
          const int s = intra_ok[static_cast<std::size_t>(
              rng.next_below(intra_ok.size()))];
          u = draw_in(s);
          v = draw_in(s);
        }
        if (u == v || live.contains(edge_key(u, v))) continue;
        e = {std::min(u, v), std::max(u, v)};
        break;
      }
      if (e.u == kNoVertex) e = random_fresh_edge(n, live, rng);
      live.insert(edge_key(e.u, e.v));
      live_list.push_back(e);
      updates.push_back(EdgeUpdate::ins(e.u, e.v));
    } else {
      const std::size_t i =
          static_cast<std::size_t>(rng.next_below(live_list.size()));
      const Edge e = live_list[i];
      live_list[i] = live_list.back();
      live_list.pop_back();
      live.erase(edge_key(e.u, e.v));
      updates.push_back(EdgeUpdate::del(e.u, e.v));
    }
  }
  return updates;
}

std::vector<EdgeUpdate> dyn_mixed_churn(Vertex n, std::int64_t count, Rng& rng) {
  BMF_REQUIRE(n >= 8 && count >= 0, "dyn_mixed_churn: need n >= 8");
  std::vector<EdgeUpdate> updates;
  updates.reserve(static_cast<std::size_t>(count));
  std::unordered_set<std::uint64_t> live;
  std::vector<Edge> live_list;
  std::deque<Edge> fifo;  // insertion order, for the eviction phase

  const auto emit_insert = [&](Edge e) {
    live.insert(edge_key(e.u, e.v));
    live_list.push_back(e);
    fifo.push_back(e);
    updates.push_back(EdgeUpdate::ins(e.u, e.v));
  };
  const auto forget = [&](Edge e) {
    live.erase(edge_key(e.u, e.v));
    for (std::size_t i = 0; i < live_list.size(); ++i) {
      if (live_list[i].u == e.u && live_list[i].v == e.v) {
        live_list[i] = live_list.back();
        live_list.pop_back();
        break;
      }
    }
    updates.push_back(EdgeUpdate::del(e.u, e.v));
  };

  const std::int64_t phase_len = std::max<std::int64_t>(8, n / 2);
  int phase = 0;
  while (static_cast<std::int64_t>(updates.size()) < count) {
    const std::int64_t phase_end = std::min<std::int64_t>(
        count, static_cast<std::int64_t>(updates.size()) + phase_len);
    switch (phase) {
      case 0:  // insert-heavy burst
        while (static_cast<std::int64_t>(updates.size()) < phase_end)
          emit_insert(random_fresh_edge(n, live, rng));
        break;
      case 1: {  // planted pairs, then a consecutive disjoint teardown
        std::vector<Edge> planted;
        const Vertex pairs = static_cast<Vertex>(
            std::min<std::int64_t>(n / 2, (phase_end - static_cast<std::int64_t>(
                                                           updates.size())) /
                                              2));
        for (Vertex i = 0; i < pairs; ++i) {
          const Edge e{2 * i, 2 * i + 1};
          if (live.contains(edge_key(e.u, e.v))) continue;
          emit_insert(e);
          planted.push_back(e);
        }
        rng.shuffle(planted);
        for (const Edge& e : planted) forget(e);
        break;
      }
      case 2:  // deletion-heavy random mix
        while (static_cast<std::int64_t>(updates.size()) < phase_end) {
          if (!live_list.empty() && rng.next_bool(0.7)) {
            const std::size_t i =
                static_cast<std::size_t>(rng.next_below(live_list.size()));
            forget(live_list[i]);
          } else {
            emit_insert(random_fresh_edge(n, live, rng));
          }
        }
        break;
      default:  // oldest-first eviction sweep
        while (static_cast<std::int64_t>(updates.size()) < phase_end) {
          while (!fifo.empty() && !live.contains(edge_key(fifo.front().u,
                                                          fifo.front().v)))
            fifo.pop_front();
          if (fifo.empty()) {
            emit_insert(random_fresh_edge(n, live, rng));
          } else {
            const Edge e = fifo.front();
            fifo.pop_front();
            forget(e);
          }
        }
        break;
    }
    phase = (phase + 1) % 4;
  }
  updates.resize(static_cast<std::size_t>(count));
  return updates;
}

std::vector<std::vector<EdgeUpdate>> slice_updates(
    std::span<const EdgeUpdate> updates, std::int64_t batch_size) {
  BMF_REQUIRE(batch_size >= 1, "slice_updates: batch_size must be >= 1");
  std::vector<std::vector<EdgeUpdate>> batches;
  for (std::size_t i = 0; i < updates.size();
       i += static_cast<std::size_t>(batch_size)) {
    const std::size_t len =
        std::min(static_cast<std::size_t>(batch_size), updates.size() - i);
    batches.emplace_back(updates.begin() + static_cast<std::ptrdiff_t>(i),
                         updates.begin() + static_cast<std::ptrdiff_t>(i + len));
  }
  return batches;
}

std::vector<std::vector<EdgeUpdate>> dyn_batched_bursts(
    Vertex n, std::int64_t batches, std::int64_t batch_size, double insert_prob,
    double hot_fraction, Rng& rng) {
  BMF_REQUIRE(n >= 4 && batches >= 0 && batch_size >= 1 && hot_fraction >= 0 &&
                  hot_fraction <= 1,
              "dyn_batched_bursts: bad parameters");
  const Vertex hot = std::max<Vertex>(2, n / 16);
  std::unordered_set<std::uint64_t> live;
  std::vector<Edge> live_list;
  std::vector<std::vector<EdgeUpdate>> out;
  out.reserve(static_cast<std::size_t>(batches));
  for (std::int64_t b = 0; b < batches; ++b) {
    std::vector<EdgeUpdate> batch;
    batch.reserve(static_cast<std::size_t>(batch_size));
    while (static_cast<std::int64_t>(batch.size()) < batch_size) {
      const bool do_insert = live_list.empty() || rng.next_bool(insert_prob);
      if (do_insert) {
        Edge e{kNoVertex, kNoVertex};
        if (rng.next_bool(hot_fraction)) {
          // Try a fresh edge inside the hot set; it may be saturated, in
          // which case fall through to a global draw.
          for (int attempt = 0; attempt < 32; ++attempt) {
            const auto u = static_cast<Vertex>(
                rng.next_below(static_cast<std::uint64_t>(hot)));
            const auto v = static_cast<Vertex>(
                rng.next_below(static_cast<std::uint64_t>(hot)));
            if (u == v || live.contains(edge_key(u, v))) continue;
            e = {std::min(u, v), std::max(u, v)};
            break;
          }
        }
        if (e.u == kNoVertex) e = random_fresh_edge(n, live, rng);
        live.insert(edge_key(e.u, e.v));
        live_list.push_back(e);
        batch.push_back(EdgeUpdate::ins(e.u, e.v));
      } else {
        const std::size_t i =
            static_cast<std::size_t>(rng.next_below(live_list.size()));
        const Edge e = live_list[i];
        live_list[i] = live_list.back();
        live_list.pop_back();
        live.erase(edge_key(e.u, e.v));
        batch.push_back(EdgeUpdate::del(e.u, e.v));
      }
    }
    out.push_back(std::move(batch));
  }
  return out;
}

}  // namespace bmf
