#pragma once

/// Graph generators used by tests, examples and the benchmark harnesses.
///
/// Families cover what the boosting framework is sensitive to: density
/// (random G(n,m)), bipartiteness (random bipartite), guaranteed-large
/// matchings (planted perfect matchings with noise), and worst-case-style
/// instances with many long augmenting paths (path/chain gadgets), which is
/// exactly the regime where Theta(1) -> (1+eps) boosting has work to do.

#include <cstdint>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bmf {

/// Erdos-Renyi-style G(n, m): m distinct uniform edges.
[[nodiscard]] Graph gen_random_graph(Vertex n, std::int64_t m, Rng& rng);

/// Random bipartite graph: sides [0, left) and [left, left+right), m edges.
[[nodiscard]] Graph gen_random_bipartite(Vertex left, Vertex right, std::int64_t m,
                                         Rng& rng);

/// Perfect matching on n vertices (n even) hidden among `noise` random edges.
/// mu(G) = n/2 by construction.
[[nodiscard]] Graph gen_planted_matching(Vertex n, std::int64_t noise, Rng& rng);

/// Disjoint union of `count` simple paths with `path_len` edges each
/// (odd path_len => each path is augmenting for the empty matching).
[[nodiscard]] Graph gen_disjoint_paths(Vertex count, Vertex path_len);

/// "Hard chain" instance: disjoint odd paths of length 2k+1 whose greedy
/// matching leaves a length-(2k+1) augmenting path per gadget; stresses the
/// framework's long-augmentation machinery at scale eps ~ 1/k.
[[nodiscard]] Graph gen_augmenting_chains(Vertex gadgets, Vertex k);

/// gen_augmenting_chains with vertex labels chosen so that *sorted-order
/// greedy* provably picks the k middle edges of every gadget, leaving exactly
/// one augmenting path of length 2k+1 per gadget (matching k vs optimum k+1).
/// This is the worst-case input for Theta(1)-approximate bootstrapping: the
/// boosting framework must recover a full 1/(k+1) fraction of mu through
/// length-(2k+1) augmentations.
[[nodiscard]] Graph gen_adversarial_chains(Vertex gadgets, Vertex k);

/// Disjoint union of `count` odd cycles of length `cycle_len` (must be odd,
/// >= 3); every cycle forces a blossom in any optimal search.
[[nodiscard]] Graph gen_odd_cycles(Vertex count, Vertex cycle_len);

/// Random d-regular-ish multigraph made simple: d*n/2 edge slots sampled by
/// configuration-model pairing with collision rejection.
[[nodiscard]] Graph gen_near_regular(Vertex n, Vertex d, Rng& rng);

/// Two cliques of size k joined by a perfect matching between them; dense
/// instance where blossoms abound.
[[nodiscard]] Graph gen_clique_pair(Vertex k);

}  // namespace bmf
