#pragma once

/// Weighted matching via unweighted boosting (the reduction family of
/// Section 1.2).
///
/// The paper's framework is for maximum *cardinality* matching; its related
/// work catalogues reductions that lift cardinality algorithms to weights:
///
///  * [GP13] Gupta-Peng: arbitrary positive weights reduce to integer weights
///    in a poly(1/eps) range at a (1+eps) loss — `gp_scale_weights` below
///    (drop edges lighter than eps*w_max/n, then round to powers of 1+eps).
///  * [SVW17] Stubbs-Vassilevska Williams: an alpha-approximate MCM
///    subroutine yields a (2+eps)*alpha-approximate MWM by keeping one MCM
///    per geometric weight class and combining classes heavy-to-light —
///    `class_combined_weighted_matching` below, instantiated with this
///    repository's boosting framework as the MCM subroutine
///    (`boosted_weighted_matching`): alpha = 1+eps', total (2+O(eps)).
///
/// Ground truth for tests: `brute_force_weighted_matching` (n <= 24) and the
/// sort-by-weight greedy (classic 2-approximation) as a baseline.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/framework.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

using Weight = double;

struct WeightedEdge {
  Vertex u = kNoVertex;
  Vertex v = kNoVertex;
  Weight w = 0;
};

struct WeightedGraph {
  Vertex n = 0;
  std::vector<WeightedEdge> edges;

  [[nodiscard]] Graph unweighted() const;
};

/// Total weight of a matching given as an edge subset of wg.
[[nodiscard]] Weight matching_weight(const WeightedGraph& wg,
                                     const std::vector<WeightedEdge>& matching);

/// Classic 2-approximate MWM: greedy over edges sorted by decreasing weight.
[[nodiscard]] std::vector<WeightedEdge> greedy_weighted_matching(
    const WeightedGraph& wg);

/// Exact maximum-weight matching by subset DP; requires n <= 24.
[[nodiscard]] Weight brute_force_weighted_matching(const WeightedGraph& wg);

/// [GP13]-style preprocessing: drops edges with w < eps * w_max / n (they
/// cannot contribute more than an eps fraction of the optimum) and rounds the
/// rest down to powers of (1+eps). The result has O(log_{1+eps}(n/eps))
/// distinct weight values; any (1+delta)-approximate MWM of the scaled graph
/// is a (1+delta)(1+eps)-ish approximation of the original.
struct ScaledWeights {
  WeightedGraph graph;            ///< surviving edges with rounded weights
  std::int64_t distinct_classes;  ///< number of distinct weight values
};
[[nodiscard]] ScaledWeights gp_scale_weights(const WeightedGraph& wg, double eps);

/// An unweighted maximum-matching subroutine: receives a subgraph (as a
/// Graph preserving wg's vertex ids) and returns a matching.
using McmSubroutine = std::function<Matching(const Graph&)>;

/// [SVW17]-style class combination: partition edges into geometric weight
/// classes [(1+eps)^i, (1+eps)^{i+1}), run the MCM subroutine per class, and
/// combine the class matchings from heaviest to lightest, keeping edges whose
/// endpoints are still free. With an alpha-approximate subroutine the result
/// is a (2+O(eps)) * alpha approximate MWM.
[[nodiscard]] std::vector<WeightedEdge> class_combined_weighted_matching(
    const WeightedGraph& wg, double eps, const McmSubroutine& mcm);

struct WeightedBoostResult {
  std::vector<WeightedEdge> matching;
  Weight weight = 0;
  std::int64_t classes = 0;
  std::int64_t oracle_calls = 0;
};

/// The full pipeline: gp_scale_weights, then class combination with this
/// repository's boosting framework (Theorem 1.1) as the MCM subroutine.
[[nodiscard]] WeightedBoostResult boosted_weighted_matching(
    const WeightedGraph& wg, double eps, const CoreConfig& core_cfg);

}  // namespace bmf
