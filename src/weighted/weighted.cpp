#include "weighted/weighted.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>

#include "util/assert.hpp"

namespace bmf {

Graph WeightedGraph::unweighted() const {
  GraphBuilder b(n);
  for (const WeightedEdge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

Weight matching_weight(const WeightedGraph& wg,
                       const std::vector<WeightedEdge>& matching) {
  (void)wg;
  Weight total = 0;
  for (const WeightedEdge& e : matching) total += e.w;
  return total;
}

std::vector<WeightedEdge> greedy_weighted_matching(const WeightedGraph& wg) {
  std::vector<WeightedEdge> sorted = wg.edges;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const WeightedEdge& a, const WeightedEdge& b) {
                     return a.w > b.w;
                   });
  std::vector<std::uint8_t> used(static_cast<std::size_t>(wg.n), 0);
  std::vector<WeightedEdge> out;
  for (const WeightedEdge& e : sorted) {
    if (used[static_cast<std::size_t>(e.u)] || used[static_cast<std::size_t>(e.v)])
      continue;
    used[static_cast<std::size_t>(e.u)] = 1;
    used[static_cast<std::size_t>(e.v)] = 1;
    out.push_back(e);
  }
  return out;
}

Weight brute_force_weighted_matching(const WeightedGraph& wg) {
  BMF_REQUIRE(wg.n <= 24, "brute_force_weighted_matching: graph too large");
  // best[mask] = max weight matching inside vertex subset `mask`.
  const std::size_t full = std::size_t{1} << wg.n;
  std::vector<Weight> best(full, 0);
  // Adjacency with weights (parallel edges resolved to the heaviest).
  std::map<std::pair<Vertex, Vertex>, Weight> heaviest;
  for (const WeightedEdge& e : wg.edges) {
    const auto key = std::minmax(e.u, e.v);
    auto [it, fresh] = heaviest.emplace(std::pair{key.first, key.second}, e.w);
    if (!fresh) it->second = std::max(it->second, e.w);
  }
  std::vector<std::vector<std::pair<Vertex, Weight>>> sym(
      static_cast<std::size_t>(wg.n));
  for (const auto& [key, w] : heaviest) {
    sym[static_cast<std::size_t>(key.first)].push_back({key.second, w});
    sym[static_cast<std::size_t>(key.second)].push_back({key.first, w});
  }
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    const int v = std::countr_zero(mask);
    const std::uint32_t rest = mask & (mask - 1);
    Weight b = best[rest];
    for (const auto& [t, w] : sym[static_cast<std::size_t>(v)])
      if (((rest >> t) & 1u) != 0)
        b = std::max(b, w + best[rest & ~(1u << t)]);
    best[mask] = b;
  }
  return best[full - 1];
}

ScaledWeights gp_scale_weights(const WeightedGraph& wg, double eps) {
  BMF_REQUIRE(eps > 0 && eps <= 1, "gp_scale_weights: eps out of range");
  ScaledWeights out;
  out.graph.n = wg.n;
  if (wg.edges.empty()) return out;
  Weight w_max = 0;
  for (const WeightedEdge& e : wg.edges) {
    BMF_REQUIRE(e.w > 0, "gp_scale_weights: weights must be positive");
    w_max = std::max(w_max, e.w);
  }
  const Weight floor_w =
      eps * w_max / std::max<Weight>(1.0, static_cast<Weight>(wg.n));
  std::map<std::int64_t, bool> classes;
  const double log_base = std::log1p(eps);
  for (const WeightedEdge& e : wg.edges) {
    if (e.w < floor_w) continue;  // total loss <= n/2 * floor_w <= eps/2 * OPT
    const auto cls = static_cast<std::int64_t>(
        std::floor(std::log(static_cast<double>(e.w)) / log_base));
    const Weight rounded = static_cast<Weight>(
        std::pow(1.0 + eps, static_cast<double>(cls)));
    out.graph.edges.push_back({e.u, e.v, rounded});
    classes[cls] = true;
  }
  out.distinct_classes = static_cast<std::int64_t>(classes.size());
  return out;
}

std::vector<WeightedEdge> class_combined_weighted_matching(
    const WeightedGraph& wg, double eps, const McmSubroutine& mcm) {
  BMF_REQUIRE(eps > 0 && eps <= 1, "class_combined_weighted_matching: bad eps");
  if (wg.edges.empty()) return {};
  // Partition into geometric classes by weight.
  const double log_base = std::log1p(eps);
  std::map<std::int64_t, std::vector<WeightedEdge>, std::greater<>> classes;
  for (const WeightedEdge& e : wg.edges) {
    BMF_REQUIRE(e.w > 0, "class_combined_weighted_matching: weights must be positive");
    const auto cls = static_cast<std::int64_t>(
        std::floor(std::log(static_cast<double>(e.w)) / log_base));
    classes[cls].push_back(e);
  }

  std::vector<std::uint8_t> used(static_cast<std::size_t>(wg.n), 0);
  std::vector<WeightedEdge> out;
  for (const auto& [cls, class_edges] : classes) {
    GraphBuilder b(wg.n);
    for (const WeightedEdge& e : class_edges) b.add_edge(e.u, e.v);
    const Graph sub = b.build();
    const Matching mi = mcm(sub);
    // Weight lookup for the class (heaviest parallel edge wins).
    std::map<std::pair<Vertex, Vertex>, Weight> weight_of;
    for (const WeightedEdge& e : class_edges) {
      const auto key = std::minmax(e.u, e.v);
      auto [it, fresh] = weight_of.emplace(std::pair{key.first, key.second}, e.w);
      if (!fresh) it->second = std::max(it->second, e.w);
    }
    for (const Edge& e : mi.edge_list()) {
      if (used[static_cast<std::size_t>(e.u)] || used[static_cast<std::size_t>(e.v)])
        continue;
      used[static_cast<std::size_t>(e.u)] = 1;
      used[static_cast<std::size_t>(e.v)] = 1;
      out.push_back({e.u, e.v, weight_of.at({e.u, e.v})});
    }
  }
  return out;
}

WeightedBoostResult boosted_weighted_matching(const WeightedGraph& wg, double eps,
                                              const CoreConfig& core_cfg) {
  WeightedBoostResult result;
  const ScaledWeights scaled = gp_scale_weights(wg, eps);
  result.classes = scaled.distinct_classes;

  GreedyMatchingOracle oracle;
  const McmSubroutine mcm = [&](const Graph& sub) {
    CoreConfig cfg = core_cfg;
    cfg.eps = eps;
    return boost_matching(sub, oracle, cfg).matching;
  };
  result.matching = class_combined_weighted_matching(scaled.graph, eps, mcm);
  // Report the weight under the *original* weights (heaviest parallel edge).
  std::map<std::pair<Vertex, Vertex>, Weight> original;
  for (const WeightedEdge& e : wg.edges) {
    const auto key = std::minmax(e.u, e.v);
    auto [it, fresh] = original.emplace(std::pair{key.first, key.second}, e.w);
    if (!fresh) it->second = std::max(it->second, e.w);
  }
  for (WeightedEdge& e : result.matching) {
    const auto key = std::minmax(e.u, e.v);
    e.w = original.at({key.first, key.second});
    result.weight += e.w;
  }
  result.oracle_calls = oracle.calls();
  return result;
}

}  // namespace bmf
