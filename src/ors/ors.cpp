#include "ors/ors.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace bmf {
namespace {

std::uint64_t key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

}  // namespace

Graph OrsGraph::graph() const {
  GraphBuilder b(n);
  for (const auto& matching : matchings)
    for (const Edge& e : matching) b.add_edge(e.u, e.v);
  return b.build();
}

bool verify_ors(const OrsGraph& ors) {
  if (ors.matchings.empty()) return false;
  const std::size_t r = ors.matchings.front().size();
  // Suffix adjacency built back to front; M_i is checked against
  // M_i u suffix before the suffix absorbs it.
  std::vector<std::vector<Vertex>> suffix_adj(static_cast<std::size_t>(ors.n));
  std::unordered_set<std::uint64_t> suffix_edges;
  for (auto it = ors.matchings.rbegin(); it != ors.matchings.rend(); ++it) {
    const auto& mi = *it;
    if (mi.size() != r || r == 0) return false;
    std::vector<std::uint8_t> covered(static_cast<std::size_t>(ors.n), 0);
    std::unordered_set<std::uint64_t> own;
    for (const Edge& e : mi) {
      if (e.u == e.v || e.u < 0 || e.v < 0 || e.u >= ors.n || e.v >= ors.n)
        return false;
      if (covered[static_cast<std::size_t>(e.u)] ||
          covered[static_cast<std::size_t>(e.v)])
        return false;  // not a matching
      covered[static_cast<std::size_t>(e.u)] = 1;
      covered[static_cast<std::size_t>(e.v)] = 1;
      own.insert(key(e.u, e.v));
    }
    // Induced in M_i u suffix: no suffix edge joins two covered vertices
    // unless it coincides with an M_i edge.
    for (const Edge& e : mi) {
      for (Vertex x : {e.u, e.v}) {
        for (Vertex w : suffix_adj[static_cast<std::size_t>(x)]) {
          if (covered[static_cast<std::size_t>(w)] && !own.contains(key(x, w)))
            return false;
        }
      }
    }
    for (const Edge& e : mi) {
      if (suffix_edges.insert(key(e.u, e.v)).second) {
        suffix_adj[static_cast<std::size_t>(e.u)].push_back(e.v);
        suffix_adj[static_cast<std::size_t>(e.v)].push_back(e.u);
      }
    }
  }
  return true;
}

OrsGraph ors_trivial(Vertex n, Vertex r, Vertex t) {
  BMF_REQUIRE(r >= 1 && t >= 1 && n >= 2 * r * t,
              "ors_trivial: need n >= 2*r*t");
  OrsGraph ors;
  ors.n = n;
  Vertex next = 0;
  for (Vertex i = 0; i < t; ++i) {
    std::vector<Edge> mi;
    for (Vertex j = 0; j < r; ++j) {
      mi.push_back({next, next + 1});
      next += 2;
    }
    ors.matchings.push_back(std::move(mi));
  }
  BMF_ASSERT(verify_ors(ors));
  return ors;
}

OrsGraph ors_greedy_random(Vertex n, Vertex r, Vertex t_target, Rng& rng,
                           int attempts_per_edge) {
  BMF_REQUIRE(n >= 2 * r && r >= 1 && t_target >= 1,
              "ors_greedy_random: bad parameters");
  OrsGraph ors;
  ors.n = n;
  std::vector<std::vector<Vertex>> suffix_adj(static_cast<std::size_t>(n));
  std::unordered_set<std::uint64_t> suffix_edges;

  // Build back to front: candidate edges for M_i must keep M_i induced in
  // M_i u suffix. Accepting {u, v} requires: u, v uncovered by M_i, no suffix
  // edge from u or v to a covered vertex, and u-v itself either absent from
  // the suffix or about to be in M_i (which it is).
  for (Vertex i = 0; i < t_target; ++i) {
    std::vector<Edge> mi;
    std::vector<std::uint8_t> covered(static_cast<std::size_t>(n), 0);
    auto blocked = [&](Vertex x) {
      for (Vertex w : suffix_adj[static_cast<std::size_t>(x)])
        if (covered[static_cast<std::size_t>(w)]) return true;
      return false;
    };
    std::int64_t failures = 0;
    const std::int64_t max_failures =
        static_cast<std::int64_t>(attempts_per_edge) * r;
    while (static_cast<Vertex>(mi.size()) < r && failures < max_failures) {
      const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      const auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
      if (u == v || covered[static_cast<std::size_t>(u)] ||
          covered[static_cast<std::size_t>(v)] || blocked(u) || blocked(v)) {
        ++failures;
        continue;
      }
      // Accepting (u, v) must not create a conflict for *previously accepted*
      // M_i edges either: a suffix edge from u or v into the covered set was
      // already excluded by blocked(); the new covered vertices only matter
      // for future accepts.
      covered[static_cast<std::size_t>(u)] = 1;
      covered[static_cast<std::size_t>(v)] = 1;
      mi.push_back({u, v});
    }
    if (static_cast<Vertex>(mi.size()) < r) break;  // could not finish M_i
    for (const Edge& e : mi) {
      if (suffix_edges.insert(key(e.u, e.v)).second) {
        suffix_adj[static_cast<std::size_t>(e.u)].push_back(e.v);
        suffix_adj[static_cast<std::size_t>(e.v)].push_back(e.u);
      }
    }
    ors.matchings.push_back(std::move(mi));
  }
  std::reverse(ors.matchings.begin(), ors.matchings.end());
  if (!ors.matchings.empty()) BMF_ASSERT(verify_ors(ors));
  return ors;
}

std::vector<EdgeUpdate> ors_update_sequence(const OrsGraph& ors) {
  std::vector<EdgeUpdate> updates;
  for (auto it = ors.matchings.rbegin(); it != ors.matchings.rend(); ++it)
    for (const Edge& e : *it) updates.push_back(EdgeUpdate::ins(e.u, e.v));
  for (const auto& mi : ors.matchings)
    for (const Edge& e : mi) updates.push_back(EdgeUpdate::del(e.u, e.v));
  return updates;
}

}  // namespace bmf
