#pragma once

/// Ordered Ruzsa-Szemerédi (ORS) graphs (Definition 7.2).
///
/// An (r, t)-ORS graph has its edges partitioned into an ordered sequence of
/// t matchings M_1..M_t, each of size r, such that M_i is an induced matching
/// in the subgraph with edge set M_i u M_{i+1} u ... u M_t. ORS graphs are
/// the hardness currency of Theorem 7.4: the dynamic algorithm's update time
/// carries an ORS(n, Theta(n)) factor, so ORS instances are the adversarial
/// workloads for the dynamic benchmarks.
///
/// The paper itself notes the extremal value ORS(n, r) is unknown; we provide
/// (a) the trivial vertex-disjoint construction (t = n / 2r, always valid),
/// (b) a randomized greedy *ordered* construction built back-to-front — when
/// matching M_i is chosen, only the suffix M_{i+1..t} constrains it, which is
/// exactly what Definition 7.2 permits — plus an exact verifier used by tests
/// and by the generator itself.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "util/rng.hpp"

namespace bmf {

struct OrsGraph {
  Vertex n = 0;
  /// matchings[i] = M_{i+1} (ordered as in Definition 7.2).
  std::vector<std::vector<Edge>> matchings;

  [[nodiscard]] std::int64_t t() const {
    return static_cast<std::int64_t>(matchings.size());
  }
  [[nodiscard]] std::int64_t r() const {
    return matchings.empty() ? 0
                             : static_cast<std::int64_t>(matchings.front().size());
  }
  /// The union graph G.
  [[nodiscard]] Graph graph() const;
};

/// Exact check of Definition 7.2: every M_i is a matching of size r and is
/// induced in the suffix union.
[[nodiscard]] bool verify_ors(const OrsGraph& ors);

/// Trivial (r, t)-ORS: t matchings on pairwise disjoint vertex sets.
/// Requires n >= 2 * r * t.
[[nodiscard]] OrsGraph ors_trivial(Vertex n, Vertex r, Vertex t);

/// Randomized greedy ordered construction: builds M_t, M_{t-1}, ..., M_1,
/// accepting an edge into M_i only if inducedness against the suffix is
/// preserved. Returns as many matchings as it managed (possibly < t_target).
[[nodiscard]] OrsGraph ors_greedy_random(Vertex n, Vertex r, Vertex t_target,
                                         Rng& rng, int attempts_per_edge = 64);

/// Adversarial dynamic workload derived from an ORS graph: inserts the
/// matchings back-to-front (so each newly inserted matching is induced among
/// the edges present), then deletes them front-to-back. Every prefix graph
/// keeps the ORS structure, which is the regime where vertex-sampling oracles
/// struggle (large induced matchings hide in few vertices).
[[nodiscard]] std::vector<EdgeUpdate> ors_update_sequence(const OrsGraph& ors);

}  // namespace bmf
