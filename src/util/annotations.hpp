#pragma once

/// Clang Thread Safety Analysis annotations + an annotated mutex.
///
/// The repo's lock discipline was enforced only dynamically (TSan jobs,
/// differential suites) until this header: Clang's `-Wthread-safety` turns the
/// discipline into a compile-time check, so a forgotten lock or a guarded
/// field touched from the wrong scope fails the clang CI builds instead of
/// waiting for an unlucky interleaving. Under any other compiler every macro
/// expands to nothing, so gcc builds are unaffected.
///
/// Conventions (see docs/static_analysis.md for the full policy):
///
///  * Mutex-protected state uses `bmf::Mutex` (below), never a bare
///    `std::mutex` — libstdc++'s mutex carries no capability attribute, so
///    the analysis cannot track it.
///  * Every guarded field carries `BMF_GUARDED_BY(mu)`; private helpers that
///    assume the lock carry `BMF_REQUIRES(mu)`; public entry points that must
///    not be called with the lock held carry `BMF_EXCLUDES(mu)`.
///  * Locks are taken through `bmf::MutexLock` (a SCOPED_CAPABILITY guard the
///    analysis understands), and condition-variable waits use
///    `std::condition_variable_any` (`bmf::CondVar`) on the `Mutex` itself,
///    with the predicate written as an explicit `while` loop in the annotated
///    scope — a predicate lambda would be analyzed as an unannotated function
///    and spuriously flagged.
///  * `BMF_NO_THREAD_SAFETY_ANALYSIS` is a last resort and needs a comment
///    explaining why the analysis cannot see the synchronization.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && !defined(SWIG)
#define BMF_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BMF_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// A type that models a capability (a lockable resource).
#define BMF_CAPABILITY(x) BMF_THREAD_ANNOTATION(capability(x))

/// An RAII type that acquires a capability in its constructor and releases it
/// in its destructor.
#define BMF_SCOPED_CAPABILITY BMF_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding the given capability.
#define BMF_GUARDED_BY(x) BMF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose pointee may only be touched while holding the
/// capability (the pointer itself is unguarded).
#define BMF_PT_GUARDED_BY(x) BMF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function requires the capability to be held on entry (and does not
/// release it).
#define BMF_REQUIRES(...) \
  BMF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and holds it on return.
#define BMF_ACQUIRE(...) BMF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define BMF_RELEASE(...) BMF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define BMF_TRY_ACQUIRE(...) \
  BMF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function must NOT be called while holding the capability (deadlock guard
/// for non-reentrant locks).
#define BMF_EXCLUDES(...) BMF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define BMF_ASSERT_CAPABILITY(x) \
  BMF_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define BMF_RETURN_CAPABILITY(x) BMF_THREAD_ANNOTATION(lock_returned(x))

/// Opts a function out of the analysis entirely; comment why at every use.
#define BMF_NO_THREAD_SAFETY_ANALYSIS \
  BMF_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bmf {

/// `std::mutex` with the capability attribute, so `-Wthread-safety` can track
/// it. Lock through `MutexLock` (or `lock()`/`unlock()` when RAII does not
/// fit); wait on it with `bmf::CondVar` (`std::condition_variable_any`
/// accepts any BasicLockable, and this class is one).
class BMF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() BMF_ACQUIRE() { mu_.lock(); }
  void unlock() BMF_RELEASE() { mu_.unlock(); }
  bool try_lock() BMF_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for `Mutex` — the annotated replacement for
/// `std::lock_guard` / `std::unique_lock`. `unlock()` releases early (for the
/// unlock-then-notify pattern); the destructor releases only if still held.
class BMF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) BMF_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() BMF_RELEASE() {
    if (held_) mu_.unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Releases the mutex before the end of scope (e.g. to notify a condition
  /// variable without holding the lock).
  void unlock() BMF_RELEASE() {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

/// Condition variable for `Mutex`. Waits release/reacquire the mutex inside
/// the (system-header, analysis-exempt) wait, so from the analysis' point of
/// view the capability is simply held across the call — which is exactly the
/// contract a caller relies on. Always wait in an explicit predicate loop:
///
///   MutexLock lock(mutex_);
///   while (!predicate_over_guarded_state) cv_.wait(mutex_);
using CondVar = std::condition_variable_any;

}  // namespace bmf
