#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace bmf {

void Accumulator::add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = min_ = max_ = x;
    m2_ = 0.0;
    return;
  }
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::int64_t bucket_width) : width_(bucket_width) {
  BMF_ASSERT(bucket_width > 0);
}

void Histogram::add(std::int64_t value) {
  BMF_ASSERT(value >= 0);
  const auto b = static_cast<std::size_t>(value / width_);
  if (b >= buckets_.size()) buckets_.resize(b + 1, 0);
  ++buckets_[b];
  ++total_;
}

std::int64_t Histogram::quantile(double q) const {
  if (total_ == 0) return 0;
  const auto target =
      static_cast<std::int64_t>(std::ceil(q * static_cast<double>(total_)));
  std::int64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= target) return static_cast<std::int64_t>(b + 1) * width_ - 1;
  }
  return static_cast<std::int64_t>(buckets_.size()) * width_ - 1;
}

double fit_loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  BMF_ASSERT(x.size() == y.size());
  BMF_ASSERT(x.size() >= 2);
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const auto n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(std::max(y[i], 1e-300));
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  const double denom = n * sxx - sx * sx;
  if (std::abs(denom) < 1e-12) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

}  // namespace bmf
