#include "util/rng.hpp"

#include "util/assert.hpp"

namespace bmf {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  BMF_ASSERT(bound > 0);
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  BMF_ASSERT(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  next_below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::next_double() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace bmf
