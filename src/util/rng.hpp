#pragma once

/// Deterministic, splittable pseudo-random number generation.
///
/// All randomized components of the library take a `Rng&` so experiments are
/// reproducible from a single seed. The generator is SplitMix64-seeded
/// xoshiro256**, which is fast and has no observable correlations at the
/// sizes used here.

#include <cstdint>
#include <vector>

namespace bmf {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit word.
  std::uint64_t next();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with success probability p.
  bool next_bool(double p);

  /// Derive an independent child generator (for parallel/simulated machines).
  [[nodiscard]] Rng split();

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace bmf
