#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <map>

#include "util/assert.hpp"

namespace bmf {
namespace {

/// Set inside pool workers so nested parallel_for calls degrade to inline
/// serial loops instead of deadlocking on their own pool.
thread_local bool tl_inside_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int threads) {
  const int total = resolve_threads(threads);
  const int spawned = std::max(0, total - 1);
  workers_.reserve(static_cast<std::size_t>(spawned));
  for (int i = 0; i < spawned; ++i) workers_.push_back(std::make_unique<Worker>());
  threads_.reserve(static_cast<std::size_t>(spawned));
  for (int i = 0; i < spawned; ++i)
    threads_.emplace_back([this, i] { worker_loop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  {
    const MutexLock lock(idle_mutex_);
    stop_ = true;
  }
  idle_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::resolve_threads(int threads) {
  if (threads > 0) return threads;
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  // relaxed-ok: routing hint only — any interleaving distributes work fine
  const std::size_t idx =
      round_robin_.fetch_add(1, std::memory_order_relaxed) % workers_.size();
  {
    Worker& target = *workers_[idx];
    const MutexLock lock(target.mutex);
    target.queue.push_back(std::move(task));
  }
  // Bridge the push and the notify with idle_mutex_ so a worker between its
  // (empty) queue scan and its cv wait cannot miss this task: either it holds
  // idle_mutex_ and scans after our push, or it is already waiting and gets
  // the notify.
  { const MutexLock lock(idle_mutex_); }
  idle_cv_.notify_all();
}

bool ThreadPool::try_pop_or_steal(std::size_t self, std::function<void()>& out) {
  {
    Worker& own = *workers_[self];
    const MutexLock lock(own.mutex);
    if (!own.queue.empty()) {
      out = std::move(own.queue.front());
      own.queue.erase(own.queue.begin());
      return true;
    }
  }
  const std::size_t n = workers_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    Worker& victim = *workers_[(self + offset) % n];
    const MutexLock lock(victim.mutex);
    if (!victim.queue.empty()) {
      out = std::move(victim.queue.back());
      victim.queue.pop_back();
      return true;
    }
  }
  return false;
}

bool ThreadPool::any_task_queued() const {
  for (const auto& w : workers_) {
    const MutexLock qlock(w->mutex);
    if (!w->queue.empty()) return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  tl_inside_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    if (try_pop_or_steal(self, task)) {
      try {
        task();
      } catch (const std::exception& e) {
        // parallel_for wraps its tasks in try/catch, so this only triggers
        // for a raw submit() task that violated its no-throw contract; fail
        // loudly instead of letting the exception terminate() without context.
        std::fprintf(stderr, "ThreadPool: uncaught exception in submitted task: %s\n",
                     e.what());
        std::abort();
      } catch (...) {
        std::fprintf(stderr, "ThreadPool: uncaught exception in submitted task\n");
        std::abort();
      }
      continue;
    }
    const MutexLock lock(idle_mutex_);
    // submit() bridges its queue push with idle_mutex_ before notifying, so
    // re-scanning the queues under this lock cannot miss a task; workers
    // block indefinitely with no polling.
    while (!stop_ && !any_task_queued()) idle_cv_.wait(idle_mutex_);
    if (stop_) return;
  }
}

void ThreadPool::parallel_for(std::int64_t n,
                              const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  if (tl_inside_pool_worker || workers_.empty() || n == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Chunk tasks claim indices from a shared cursor; the caller participates,
  // so the loop completes even if every worker is busy elsewhere.
  const auto chunks = std::min<std::int64_t>(
      n, static_cast<std::int64_t>(workers_.size()));
  std::atomic<std::int64_t> cursor{0};
  std::atomic<std::int64_t> live{chunks};
  Mutex done_mutex;
  CondVar done_cv;
  Mutex error_mutex;
  std::exception_ptr error;

  const auto drain = [&] {
    for (;;) {
      // relaxed-ok: index claim; fetch_add atomicity alone partitions the range
      const std::int64_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const MutexLock lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    }
  };

  for (std::int64_t c = 0; c < chunks; ++c) {
    submit([&] {
      drain();
      // Decrement AND notify under the mutex: the caller frees these locals
      // as soon as its wait sees live == 0, so the count must not reach 0
      // while this task could still touch done_mutex/done_cv afterwards.
      const MutexLock lock(done_mutex);
      if (live.fetch_sub(1, std::memory_order_acq_rel) == 1)
        done_cv.notify_all();
    });
  }
  drain();
  {
    const MutexLock lock(done_mutex);
    while (live.load(std::memory_order_acquire) != 0) done_cv.wait(done_mutex);
  }
  if (error) std::rethrow_exception(error);
}

ThreadPool& ThreadPool::global() { return shared(0); }

ThreadPool& ThreadPool::shared(int threads) {
  const int total = resolve_threads(threads);
  static Mutex registry_mutex;
  static std::map<int, std::unique_ptr<ThreadPool>>* registry =
      new std::map<int, std::unique_ptr<ThreadPool>>();  // leaked: process-lifetime
  const MutexLock lock(registry_mutex);
  auto& slot = (*registry)[total];
  if (!slot) slot = std::make_unique<ThreadPool>(total);
  return *slot;
}

namespace {
std::atomic<bool> g_force_parallel_small_work{false};
}  // namespace

int gated_threads(std::int64_t work, std::int64_t min_work, int threads) {
  // relaxed-ok: test-only toggle, flipped before the pool is exercised
  if (g_force_parallel_small_work.load(std::memory_order_relaxed)) return threads;
  return work >= min_work ? threads : 1;
}

void force_parallel_small_work(bool force) {
  // relaxed-ok: test-only toggle, flipped before the pool is exercised
  g_force_parallel_small_work.store(force, std::memory_order_relaxed);
}

void parallel_for_threads(int threads, std::int64_t n,
                          const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  const int effective = ThreadPool::resolve_threads(threads);
  if (effective <= 1 || n == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::shared(effective).parallel_for(n, fn);
}

}  // namespace bmf
