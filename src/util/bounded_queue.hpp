#pragma once

/// Bounded multi-producer / single-consumer ingest queue.
///
/// The matching service's front door: any number of client threads `push`
/// updates, one writer thread `drain`s them in arrival order. The consumer
/// side is deliberately a *drain* (pop everything queued, up to a cap) rather
/// than a pop-one: draining is what turns N queued single updates into one
/// coalesced batch for `apply_batch`, so the queue is the batching boundary.
///
/// Implementation: a mutex + two condition variables over a deque. The
/// contended path is producer vs. the writer's drain — reader threads of the
/// service never touch the queue, so a blocking implementation here cannot
/// perturb read-side wait-freedom. Capacity is the backpressure mechanism:
/// `push` blocks while full (closed-loop clients stall, SSP-style, instead of
/// growing an unbounded backlog), `try_push` refuses instead (open-loop
/// clients count the rejection and move on).
///
/// Close semantics: after `close()`, pushes fail fast; drains keep returning
/// queued items until the queue is empty, then return 0 forever — the writer
/// thread's natural shutdown signal (nothing already accepted is dropped).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace bmf {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    BMF_REQUIRE(capacity >= 1, "BoundedQueue: capacity must be >= 1");
  }

  /// Blocks while full; returns false iff the queue was closed (the item is
  /// then dropped).
  bool push(T item) {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Pushes every element in order, blocking for space as needed; returns
  /// false iff the queue closed part-way (remaining elements are dropped).
  bool push_all(std::span<const T> items) {
    std::unique_lock lock(mutex_);
    for (const T& item : items) {
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
      if (closed_) return false;
      items_.push_back(item);
      // Wake the consumer as soon as anything is available — it drains
      // whatever has arrived, it does not wait for the whole span.
      not_empty_.notify_one();
    }
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool try_push(T item) {
    {
      std::lock_guard lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Single-consumer drain: blocks until at least one item is queued (or the
  /// queue is closed), then moves up to `max_items` into `out` (cleared
  /// first) in arrival order. Returns out.size(); 0 means closed-and-empty.
  /// If `backlog` is non-null it receives the queue depth observed at the
  /// drain (drained items + items left behind) — the service's queue-depth
  /// stat.
  std::size_t drain(std::vector<T>& out, std::size_t max_items,
                    std::size_t* backlog = nullptr) {
    out.clear();
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (backlog != nullptr) *backlog = items_.size();
    const std::size_t take = std::min(items_.size(), max_items);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (take > 0) not_full_.notify_all();
    return take;
  }

  /// Closes the queue: subsequent pushes fail, blocked pushers wake and fail,
  /// drains serve the remaining backlog then return 0. Idempotent.
  void close() {
    {
      std::lock_guard lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mutex_);
    return closed_;
  }

  /// Instantaneous depth (racy by nature; for stats and tests).
  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace bmf
