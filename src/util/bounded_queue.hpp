#pragma once

/// Bounded multi-producer / single-consumer ingest queue.
///
/// The matching service's front door: any number of client threads `push`
/// updates, one writer thread `drain`s them in arrival order. The consumer
/// side is deliberately a *drain* (pop everything queued, up to a cap) rather
/// than a pop-one: draining is what turns N queued single updates into one
/// coalesced batch for `apply_batch`, so the queue is the batching boundary.
///
/// Implementation: an annotated mutex + two condition variables over a deque
/// (lock discipline compile-checked under clang `-Wthread-safety`; see
/// util/annotations.hpp and docs/static_analysis.md). The contended path is
/// producer vs. the writer's drain — reader threads of the service never
/// touch the queue, so a blocking implementation here cannot perturb
/// read-side wait-freedom. Capacity is the backpressure mechanism: `push`
/// blocks while full (closed-loop clients stall, SSP-style, instead of
/// growing an unbounded backlog), `try_push` refuses instead (open-loop
/// clients count the rejection and move on).
///
/// Every wait is an explicit predicate loop over guarded state inside the
/// annotated lock scope, and every notify happens after the lock is released
/// — the annotation pass found `push_all` signalling the consumer while still
/// holding the mutex on each element, which made the woken consumer block
/// straight back on the lock. Producers now notify at wait boundaries only:
/// right before blocking on a full queue (the consumer is the only source of
/// space) and once after the lock is dropped.
///
/// Close semantics: after `close()`, pushes fail fast; drains keep returning
/// queued items until the queue is empty, then return 0 forever — the writer
/// thread's natural shutdown signal (nothing already accepted is dropped).

#include <cstddef>
#include <deque>
#include <span>
#include <utility>
#include <vector>

#include "util/annotations.hpp"
#include "util/assert.hpp"

namespace bmf {

template <class T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    BMF_REQUIRE(capacity >= 1, "BoundedQueue: capacity must be >= 1");
  }

  /// Blocks while full; returns false iff the queue was closed (the item is
  /// then dropped).
  bool push(T item) BMF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Pushes every element in order, blocking for space as needed; returns
  /// false iff the queue closed part-way (remaining elements are dropped,
  /// already-queued ones stay consumable). The consumer is woken when the
  /// producer blocks for space and once at the end — the single consumer
  /// drains everything queued either way, so per-element signalling would
  /// only add wakeups that go straight back to sleep on the mutex.
  bool push_all(std::span<const T> items) BMF_EXCLUDES(mutex_) {
    bool queued_unannounced = false;
    MutexLock lock(mutex_);
    for (const T& item : items) {
      while (items_.size() >= capacity_ && !closed_) {
        if (queued_unannounced) {
          not_empty_.notify_one();
          queued_unannounced = false;
        }
        not_full_.wait(mutex_);
      }
      if (closed_) {
        lock.unlock();
        if (queued_unannounced) not_empty_.notify_one();
        return false;
      }
      items_.push_back(item);
      queued_unannounced = true;
    }
    lock.unlock();
    if (queued_unannounced) not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; returns false if full or closed.
  bool try_push(T item) BMF_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Single-consumer drain: blocks until at least one item is queued (or the
  /// queue is closed), then moves up to `max_items` into `out` (cleared
  /// first) in arrival order. Returns out.size(); 0 means closed-and-empty.
  /// If `backlog` is non-null it receives the queue depth observed at the
  /// drain (drained items + items left behind) — the service's queue-depth
  /// stat.
  std::size_t drain(std::vector<T>& out, std::size_t max_items,
                    std::size_t* backlog = nullptr) BMF_EXCLUDES(mutex_) {
    out.clear();
    MutexLock lock(mutex_);
    while (items_.empty() && !closed_) not_empty_.wait(mutex_);
    if (backlog != nullptr) *backlog = items_.size();
    const std::size_t take = std::min(items_.size(), max_items);
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    lock.unlock();
    if (take > 0) not_full_.notify_all();
    return take;
  }

  /// Closes the queue: subsequent pushes fail, blocked pushers wake and fail,
  /// drains serve the remaining backlog then return 0. Idempotent.
  void close() BMF_EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const BMF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return closed_;
  }

  /// Instantaneous depth (racy by nature; for stats and tests).
  [[nodiscard]] std::size_t size() const BMF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable Mutex mutex_;
  /// Signalled when items arrive (consumer side) / when space or closure
  /// appears (producer side); both predicates read only guarded state.
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<T> items_ BMF_GUARDED_BY(mutex_);
  bool closed_ BMF_GUARDED_BY(mutex_) = false;
};

}  // namespace bmf
