#pragma once

/// A small work-stealing thread pool shared by the round-based simulators
/// (mpc::Cluster, congest::Network) and the embarrassingly-parallel loops of
/// the boosting framework.
///
/// Tasks are distributed round-robin across per-worker deques; an idle worker
/// first drains its own deque from the front, then steals from the back of a
/// sibling's. `parallel_for` slices an index range into chunks that claim
/// indices from a shared cursor, and the calling thread participates, so a
/// pool configured for T threads uses T-1 workers plus the caller.
///
/// Determinism contract: parallel_for(n, fn) invokes fn exactly once per
/// index in [0, n); callers must write results into per-index slots (never
/// append to shared containers) and merge in index order after the call
/// returns. All parallel code in this repo follows that discipline, so every
/// result is bit-identical at any thread count — including 1, where the loop
/// runs inline with no pool at all.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/annotations.hpp"

namespace bmf {

class ThreadPool {
 public:
  /// Total concurrency including the thread that calls parallel_for;
  /// 0 picks std::thread::hardware_concurrency(). A pool of size 1 spawns no
  /// workers and runs everything inline.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Configured concurrency (workers + the participating caller).
  [[nodiscard]] int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Fire-and-forget task submission. On a pool of size 1 the task runs
  /// inline before returning. Tasks must not throw: an exception escaping a
  /// submitted task aborts the process (prefer parallel_for, which captures
  /// and rethrows on the calling thread).
  void submit(std::function<void()> task);

  /// Invokes fn(i) for every i in [0, n), potentially concurrently; blocks
  /// until all invocations return. Nested calls from inside a pool worker run
  /// inline (serial) to stay deadlock-free. The first exception thrown by any
  /// fn(i) is rethrown on the calling thread after the loop drains.
  void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

  /// The process-wide default pool (hardware-concurrency sized).
  static ThreadPool& global();

  /// A process-wide cached pool of exactly `threads` total concurrency;
  /// threads <= 0 resolves to global(). Pools live for the process lifetime.
  static ThreadPool& shared(int threads);

  /// Resolves a `threads` configuration knob: 0 => hardware concurrency
  /// (at least 1), otherwise the knob itself.
  static int resolve_threads(int threads);

 private:
  struct Worker {
    Mutex mutex;
    // front = index 0, steal = back
    std::vector<std::function<void()>> queue BMF_GUARDED_BY(mutex);
  };

  void worker_loop(std::size_t self);
  bool try_pop_or_steal(std::size_t self, std::function<void()>& out);
  /// Scan every worker queue for pending work. Called with idle_mutex_ held
  /// (the submit-side bridge: submit() touches idle_mutex_ between its queue
  /// push and its notify, so a worker that scans empty under this lock cannot
  /// miss the subsequent notify).
  [[nodiscard]] bool any_task_queued() const BMF_REQUIRES(idle_mutex_);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  Mutex idle_mutex_;
  CondVar idle_cv_;
  /// Shutdown flag; every access is under idle_mutex_ (the annotation pass
  /// demoted it from a redundant atomic — the cv rendezvous already needs the
  /// lock on both sides).
  bool stop_ BMF_GUARDED_BY(idle_mutex_) = false;
  std::atomic<std::uint64_t> round_robin_{0};
};

/// RAII handle for the one legitimate dedicated-thread pattern outside the
/// pool: spawn, overlap with caller work, join. Joining in the destructor
/// means an exception on the spawning thread cannot leak a running thread.
/// tools/determinism_lint.py bans raw `std::thread` construction outside
/// `util/` + `service/`; overlap code uses this instead.
class DedicatedThread {
 public:
  explicit DedicatedThread(std::function<void()> fn) : thread_(std::move(fn)) {}
  ~DedicatedThread() { join(); }
  DedicatedThread(const DedicatedThread&) = delete;
  DedicatedThread& operator=(const DedicatedThread&) = delete;

  /// Blocks until the thread finishes; idempotent.
  void join() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  std::thread thread_;
};

/// Runs fn(i) for i in [0, n) with the shared pool for this `threads` knob
/// (0 = hardware concurrency); an effective count of 1 or n <= 1 runs the
/// loop serially inline with no pool machinery.
void parallel_for_threads(int threads, std::int64_t n,
                          const std::function<void(std::int64_t)>& fn);

/// Resolves the thread count for a work-size-gated parallel loop: `threads`
/// when `work >= min_work`, else 1 (the pool round-trip would cost more than
/// the work). Every caller's gate is output-invariant — the parallel path
/// produces bit-identical results — so the gate is purely a performance
/// decision. `force_parallel_small_work(true)` disables all gates process-wide
/// so tests (and sanitizer jobs) can drive the parallel paths on tiny inputs.
[[nodiscard]] int gated_threads(std::int64_t work, std::int64_t min_work,
                                int threads);
void force_parallel_small_work(bool force);

/// RAII scope for force_parallel_small_work: the differential/determinism
/// suites (and the TSan job running them) wrap their parallel runs in this so
/// the size-gated paths genuinely fan out on test-sized inputs.
struct ForceParallelSmallWork {
  ForceParallelSmallWork() { force_parallel_small_work(true); }
  ~ForceParallelSmallWork() { force_parallel_small_work(false); }
  ForceParallelSmallWork(const ForceParallelSmallWork&) = delete;
  ForceParallelSmallWork& operator=(const ForceParallelSmallWork&) = delete;
};

/// Deterministic parallel map-reduce: slot i = map(i), computed in parallel,
/// then combined left-to-right in index order (safe for non-commutative
/// combines). Bit-identical at any thread count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce_threads(int threads, std::int64_t n, T init, MapFn&& map,
                          CombineFn&& combine) {
  std::vector<T> slots(static_cast<std::size_t>(n > 0 ? n : 0));
  parallel_for_threads(threads, n, [&](std::int64_t i) {
    slots[static_cast<std::size_t>(i)] = map(i);
  });
  T acc = std::move(init);
  for (T& slot : slots) acc = combine(std::move(acc), std::move(slot));
  return acc;
}

}  // namespace bmf
