#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/assert.hpp"

namespace bmf {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  BMF_ASSERT(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::integer(std::int64_t v) { return std::to_string(v); }

std::string Table::render(const std::string& title) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream out;
  if (!title.empty()) out << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ");
      out << cells[c];
      out << std::string(width[c] - cells[c].size(), ' ');
    }
    out << " |\n";
  };
  emit(header_);
  std::size_t total = 1;
  for (auto w : width) total += w + 3;
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::fputs(render(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace bmf
