#pragma once

/// Internal invariant assertions.
///
/// BMF_ASSERT is compiled in when BMF_ASSERTS is defined (the default build).
/// It is used for internal invariants of the alternating-tree machinery; API
/// misuse by callers throws std::invalid_argument instead (see BMF_REQUIRE).

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace bmf {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const std::string& msg) {
  std::fprintf(stderr, "BMF_ASSERT failed: %s at %s:%d %s\n", expr, file, line,
               msg.c_str());
  std::abort();
}

}  // namespace bmf

#ifdef BMF_ASSERTS
#define BMF_ASSERT(expr)                                       \
  do {                                                         \
    if (!(expr)) ::bmf::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (0)
#define BMF_ASSERT_MSG(expr, msg)                                \
  do {                                                           \
    if (!(expr)) ::bmf::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
#else
#define BMF_ASSERT(expr) ((void)0)
#define BMF_ASSERT_MSG(expr, msg) ((void)0)
#endif

/// Precondition check for public API entry points; always enabled.
#define BMF_REQUIRE(expr, msg)                         \
  do {                                                 \
    if (!(expr)) throw std::invalid_argument((msg));   \
  } while (0)
