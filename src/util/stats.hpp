#pragma once

/// Small online statistics accumulators used by benchmarks and instrumented runs.

#include <cstdint>
#include <vector>

namespace bmf {

/// Streaming mean/min/max/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::int64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::int64_t count_ = 0;
  double mean_ = 0.0, m2_ = 0.0, min_ = 0.0, max_ = 0.0, sum_ = 0.0;
};

/// Integer histogram with fixed bucket width, used for size/label distributions.
class Histogram {
 public:
  explicit Histogram(std::int64_t bucket_width = 1);

  void add(std::int64_t value);
  [[nodiscard]] std::int64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::int64_t>& buckets() const { return buckets_; }
  [[nodiscard]] std::int64_t bucket_width() const { return width_; }
  /// Smallest v such that at least `q` fraction of samples are <= v.
  [[nodiscard]] std::int64_t quantile(double q) const;

 private:
  std::int64_t width_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> buckets_;
};

/// Least-squares slope of log(y) against log(x): the fitted exponent of a
/// power law y ~ x^slope. Used to verify growth rates in 1/eps.
double fit_loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace bmf
