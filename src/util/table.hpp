#pragma once

/// Fixed-width ASCII table printer. Benchmarks use it to regenerate the
/// paper's tables as aligned rows on stdout.

#include <string>
#include <vector>

namespace bmf {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  static std::string integer(std::int64_t v);

  /// Render to a string with a title line and column separators.
  [[nodiscard]] std::string render(const std::string& title = "") const;

  /// Render directly to stdout.
  void print(const std::string& title = "") const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bmf
