#pragma once

/// Wall-clock timing helpers used by the benchmark harnesses.

#include <chrono>

namespace bmf {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double millis() const { return seconds() * 1e3; }
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bmf
