#pragma once

/// Fully dynamic undirected simple graph.
///
/// Supports edge insertion/deletion in O(1) expected time and neighbor
/// iteration. This is the substrate under the dynamic matching algorithms
/// (Section 7 of the paper): the graph "starts empty and never has more than
/// m edges".

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"

namespace bmf {

class DynGraph {
 public:
  explicit DynGraph(Vertex num_vertices);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::int64_t num_edges() const { return m_; }

  /// Inserts {u, v}; returns false if it already existed (no-op).
  bool insert(Vertex u, Vertex v);

  /// Deletes {u, v}; returns false if it was absent (no-op).
  bool erase(Vertex u, Vertex v);

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  [[nodiscard]] std::int64_t degree(Vertex v) const {
    return static_cast<std::int64_t>(adj_[static_cast<std::size_t>(v)].size());
  }

  /// Unordered neighbor set of v.
  [[nodiscard]] const std::unordered_set<Vertex>& neighbors(Vertex v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Snapshot into a static CSR graph (used by rebuild steps and tests).
  [[nodiscard]] Graph snapshot() const;

 private:
  Vertex n_;
  std::int64_t m_ = 0;
  std::vector<std::unordered_set<Vertex>> adj_;
};

}  // namespace bmf
