#pragma once

/// Fully dynamic undirected simple graph over flat sorted adjacency.
///
/// This is the substrate under the dynamic matching algorithms (Section 7 of
/// the paper): the graph "starts empty and never has more than m edges".
/// Each vertex keeps its neighbors in a sorted contiguous vector, which
///
///  * makes the hot neighbor-scan paths cache-friendly (no per-node heap
///    chasing as with `unordered_set` buckets), and
///  * pins iteration order to ascending vertex id on every platform and
///    standard library, so `snapshot()` and everything downstream of a
///    neighbor scan (e.g. the dynamic matcher's rematch-by-first-free-neighbor
///    repair) is deterministic and reproducible across toolchains.
///
/// Single-edge insert/erase costs O(log deg) to locate plus O(deg) to shift;
/// the batched entry points below regain parallelism across vertices: a batch
/// of updates is resolved into its structural subset (`resolve_structural`,
/// no-op aware and duplicate-edge aware) and applied with per-vertex replay
/// (`apply_structural`), where distinct vertices' adjacency lists are mutated
/// concurrently but each list is replayed in batch order — the same
/// private-slot/ordered-merge discipline as util/thread_pool.hpp, so results
/// are bit-identical at any thread count.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace bmf {

/// One Problem 1 update. Lives with the dynamic substrate so that batch
/// machinery (graph, oracles, matchers) shares a single update vocabulary.
struct EdgeUpdate {
  Vertex u = kNoVertex;
  Vertex v = kNoVertex;
  bool insert = true;
  /// Problem 1 allows "empty updates" that change nothing but count toward
  /// chunk accounting.
  [[nodiscard]] bool empty() const { return u == kNoVertex; }

  static EdgeUpdate ins(Vertex u, Vertex v) { return {u, v, true}; }
  static EdgeUpdate del(Vertex u, Vertex v) { return {u, v, false}; }
  static EdgeUpdate none() { return {}; }
};

class DynGraph {
 public:
  explicit DynGraph(Vertex num_vertices);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::int64_t num_edges() const { return m_; }

  /// Inserts {u, v}; returns false if it already existed (no-op).
  bool insert(Vertex u, Vertex v);

  /// Deletes {u, v}; returns false if it was absent (no-op).
  bool erase(Vertex u, Vertex v);

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  [[nodiscard]] std::int64_t degree(Vertex v) const {
    return static_cast<std::int64_t>(adj_[static_cast<std::size_t>(v)].size());
  }

  /// Neighbors of v in ascending vertex order (platform-deterministic).
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return adj_[static_cast<std::size_t>(v)];
  }

  /// Snapshot into a static CSR graph (used by rebuild steps and tests).
  /// Edges come out sorted lexicographically with u < v.
  [[nodiscard]] Graph snapshot() const;

  /// Resolves which updates of a batch structurally change the graph when
  /// replayed in order: flags[i] != 0 iff update i toggles edge presence
  /// (insert of an absent edge / erase of a present edge), accounting for
  /// earlier updates in the same batch that touch the same edge. Validates
  /// endpoints up front; does not mutate. Distinct edges resolve in parallel.
  [[nodiscard]] std::vector<std::uint8_t> resolve_structural(
      std::span<const EdgeUpdate> updates, int threads = 1) const;

  /// Applies the structural subset of a batch (flags from
  /// `resolve_structural`) with per-vertex parallel replay. Equivalent to
  /// applying the flagged updates one by one in batch order.
  void apply_structural(std::span<const EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads = 1);

  /// Fast path of `apply_structural` for batches whose structural updates
  /// have pairwise-disjoint endpoints (each vertex is touched at most once):
  /// applies updates concurrently without any grouping pass.
  void apply_structural_disjoint(std::span<const EdgeUpdate> updates,
                                 std::span<const std::uint8_t> structural,
                                 int threads = 1);

 private:
  void link(Vertex u, Vertex v);    // one-directional sorted insert
  void unlink(Vertex u, Vertex v);  // one-directional sorted erase

  Vertex n_;
  std::int64_t m_ = 0;
  std::vector<std::vector<Vertex>> adj_;  // each sorted ascending
};

/// Shared workhorse under batched adjacency-shaped maintenance (DynGraph,
/// bit-matrix oracles): emits both directed copies (u, v) and (v, u) of every
/// structural update, grouped by first vertex, and invokes
/// fn(vertex, other, insert) group by group — a vertex's copies arrive in
/// batch order and never split across threads, while distinct vertices run
/// concurrently. Callers may therefore mutate per-vertex state inside fn and
/// still get the serial-replay result at any thread count.
void for_each_incident_by_vertex(
    std::span<const EdgeUpdate> updates, std::span<const std::uint8_t> structural,
    int threads, const std::function<void(Vertex, Vertex, bool)>& fn);

}  // namespace bmf
