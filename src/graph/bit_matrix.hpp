#pragma once

/// Boolean matrices and vectors packed 64 bits per word.
///
/// BitMatrix backs two substrates: the adjacency-matrix representation the
/// dynamic framework assumes (Section 6.1: "the algorithm takes the adjacency
/// matrix of G as input") and the dynamic OMv engine of Section 7.4.
///
/// Tail-word invariant: bits >= n_ (BitVec) / >= cols_ (BitMatrix rows) in the
/// last word of a row are always zero. Every mutation site enforces it —
/// `set` cannot address them and `set_word` masks them — so the word-level
/// scan kernels (popcount, first_set, first_common, and the SIMD probes
/// below) may consume whole words without per-bit range checks.
///
/// The word-scanning kernels (`first_common_in_row`, `multiply`,
/// `row_intersect_count`) dispatch to an AVX2 path when the build targets
/// x86-64 and the CPU reports support, with a scalar fallback otherwise. The
/// two paths return identical results *and* identical `words_scanned`
/// accounting (both derive it from the index of the first non-zero AND word),
/// so the dispatch choice is invisible to the bit-identity contract. CI pins
/// both paths: `force_scalar_bit_kernels(true)` or the environment variable
/// `BMF_FORCE_SCALAR` (non-empty, not "0") selects the scalar path at
/// runtime.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace bmf {

/// Which implementation the word-scanning kernels currently dispatch to.
enum class BitKernel { kScalar, kAvx2 };

/// The kernel the next probe will use (CPU detection + the scalar override).
[[nodiscard]] BitKernel active_bit_kernel();

[[nodiscard]] const char* bit_kernel_name(BitKernel kernel);

/// Runtime override for tests and benches: `true` pins the scalar path
/// regardless of CPU support, `false` restores detection. The environment
/// variable `BMF_FORCE_SCALAR` (non-empty, not "0") sets the initial state so
/// CI jobs can pin a whole run without code changes.
void force_scalar_bit_kernels(bool force);

/// Current state of the scalar override (env seed included) — scoped pinning
/// saves this and restores it, rather than blindly clearing the flag, so a
/// whole-run `BMF_FORCE_SCALAR=1` pin survives guarded sections.
[[nodiscard]] bool scalar_bit_kernels_forced();

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::int64_t n);

  void set(std::int64_t i, bool value = true);
  [[nodiscard]] bool get(std::int64_t i) const;
  void clear();

  [[nodiscard]] std::int64_t size() const { return n_; }
  [[nodiscard]] std::int64_t popcount() const;

  /// Index of the lowest set bit, or -1 if empty.
  [[nodiscard]] std::int64_t first_set() const;

  /// Index of the lowest bit set in both this and other, or -1.
  [[nodiscard]] std::int64_t first_common(const BitVec& other) const;

  [[nodiscard]] std::int64_t num_words() const {
    return static_cast<std::int64_t>(words_.size());
  }
  [[nodiscard]] std::uint64_t word(std::int64_t w) const {
    return words_[static_cast<std::size_t>(w)];
  }

  /// Bulk 64-bit store; bits >= n_ in the last word are masked off, so the
  /// tail-word invariant holds no matter what callers write.
  void set_word(std::int64_t w, std::uint64_t bits) {
    words_[static_cast<std::size_t>(w)] = bits & word_mask(w);
  }

  /// Contiguous word storage (for the SIMD kernels).
  [[nodiscard]] const std::uint64_t* data() const { return words_.data(); }

  /// Tail-word invariant check (debug assertions and tests): no bit >= n_
  /// set in the last word.
  [[nodiscard]] bool tail_clear() const {
    return words_.empty() || (words_.back() & ~word_mask(num_words() - 1)) == 0;
  }

 private:
  std::int64_t n_ = 0;
  std::vector<std::uint64_t> words_;

  /// All-ones for full words, the partial mask for the tail word.
  [[nodiscard]] std::uint64_t word_mask(std::int64_t w) const {
    const bool tail = w == num_words() - 1 && (n_ & 63) != 0;
    return tail ? (1ULL << (n_ & 63)) - 1 : ~0ULL;
  }
};

class BitMatrix {
 public:
  BitMatrix() = default;
  /// rows x cols Boolean matrix, initially all-zero.
  BitMatrix(std::int64_t rows, std::int64_t cols);

  void set(std::int64_t r, std::int64_t c, bool value = true);
  [[nodiscard]] bool get(std::int64_t r, std::int64_t c) const;

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }

  /// Boolean matrix-vector product over the (OR, AND) semiring:
  /// out[i] = OR_j (M[i][j] AND v[j]).  Worst case O(rows * cols / 64), but
  /// each row stops at its first set AND-word; when `words_scanned` is
  /// non-null it receives the number of 64-bit words actually read (the
  /// honest cost for words-touched accounting — callers must not charge the
  /// full rows * words_per_row()).  Each 64-row block owns one word of `out`
  /// and one slot of the scan-count reduction, so the block loop fans out
  /// through the shared pool when `threads > 1` (size-gated; bit-identical
  /// at any thread count).
  void multiply(const BitVec& v, BitVec& out,
                std::int64_t* words_scanned = nullptr, int threads = 1) const;

  /// First column c in row r with M[r][c] AND mask[c], or -1. The scan
  /// early-exits at the first set word; when `words_scanned` is non-null it
  /// receives the number of row words actually read (hit at word w => w + 1,
  /// miss => words_per_row()), which is what words-touched counters must
  /// charge — not the full row.
  [[nodiscard]] std::int64_t first_common_in_row(
      std::int64_t r, const BitVec& mask,
      std::int64_t* words_scanned = nullptr) const;

  /// Number of columns c with M[r][c] AND mask[c]. Always scans the whole
  /// row (no early exit), so words-touched callers charge words_per_row().
  [[nodiscard]] std::int64_t row_intersect_count(std::int64_t r,
                                                 const BitVec& mask) const;

  /// Raw 64-bit word w of row r (bit c-lo set iff M[r][64w + c-lo]).
  [[nodiscard]] std::uint64_t row_word(std::int64_t r, std::int64_t w) const {
    return words_[idx(r, w)];
  }
  [[nodiscard]] std::int64_t words_per_row() const { return words_per_row_; }

  /// Loads the adjacency matrix of g (symmetric n x n).
  static BitMatrix from_graph(const Graph& g);

 private:
  std::int64_t rows_ = 0, cols_ = 0, words_per_row_ = 0;
  std::vector<std::uint64_t> words_;

  [[nodiscard]] std::size_t idx(std::int64_t r, std::int64_t w) const {
    return static_cast<std::size_t>(r * words_per_row_ + w);
  }
};

}  // namespace bmf
