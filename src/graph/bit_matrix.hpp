#pragma once

/// Boolean matrices and vectors packed 64 bits per word.
///
/// BitMatrix backs two substrates: the adjacency-matrix representation the
/// dynamic framework assumes (Section 6.1: "the algorithm takes the adjacency
/// matrix of G as input") and the dynamic OMv engine of Section 7.4.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace bmf {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::int64_t n);

  void set(std::int64_t i, bool value = true);
  [[nodiscard]] bool get(std::int64_t i) const;
  void clear();

  [[nodiscard]] std::int64_t size() const { return n_; }
  [[nodiscard]] std::int64_t popcount() const;

  /// Index of the lowest set bit, or -1 if empty.
  [[nodiscard]] std::int64_t first_set() const;

  /// Index of the lowest bit set in both this and other, or -1.
  [[nodiscard]] std::int64_t first_common(const BitVec& other) const;

  [[nodiscard]] std::int64_t num_words() const {
    return static_cast<std::int64_t>(words_.size());
  }
  [[nodiscard]] std::uint64_t word(std::int64_t w) const {
    return words_[static_cast<std::size_t>(w)];
  }
  std::uint64_t& word(std::int64_t w) { return words_[static_cast<std::size_t>(w)]; }

 private:
  std::int64_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

class BitMatrix {
 public:
  BitMatrix() = default;
  /// rows x cols Boolean matrix, initially all-zero.
  BitMatrix(std::int64_t rows, std::int64_t cols);

  void set(std::int64_t r, std::int64_t c, bool value = true);
  [[nodiscard]] bool get(std::int64_t r, std::int64_t c) const;

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }

  /// Boolean matrix-vector product over the (OR, AND) semiring:
  /// out[i] = OR_j (M[i][j] AND v[j]).  Worst case O(rows * cols / 64), but
  /// each row stops at its first set AND-word; when `words_scanned` is
  /// non-null it receives the number of 64-bit words actually read (the
  /// honest cost for words-touched accounting — callers must not charge the
  /// full rows * words_per_row()).
  void multiply(const BitVec& v, BitVec& out,
                std::int64_t* words_scanned = nullptr) const;

  /// First column c in row r with M[r][c] AND mask[c], or -1. The scan
  /// early-exits at the first set word; when `words_scanned` is non-null it
  /// receives the number of row words actually read (hit at word w => w + 1,
  /// miss => words_per_row()), which is what words-touched counters must
  /// charge — not the full row.
  [[nodiscard]] std::int64_t first_common_in_row(
      std::int64_t r, const BitVec& mask,
      std::int64_t* words_scanned = nullptr) const;

  /// Number of columns c with M[r][c] AND mask[c]. Always scans the whole
  /// row (no early exit), so words-touched callers charge words_per_row().
  [[nodiscard]] std::int64_t row_intersect_count(std::int64_t r,
                                                 const BitVec& mask) const;

  /// Raw 64-bit word w of row r (bit c-lo set iff M[r][64w + c-lo]).
  [[nodiscard]] std::uint64_t row_word(std::int64_t r, std::int64_t w) const {
    return words_[idx(r, w)];
  }
  [[nodiscard]] std::int64_t words_per_row() const { return words_per_row_; }

  /// Loads the adjacency matrix of g (symmetric n x n).
  static BitMatrix from_graph(const Graph& g);

 private:
  std::int64_t rows_ = 0, cols_ = 0, words_per_row_ = 0;
  std::vector<std::uint64_t> words_;

  [[nodiscard]] std::size_t idx(std::int64_t r, std::int64_t w) const {
    return static_cast<std::size_t>(r * words_per_row_ + w);
  }
};

}  // namespace bmf
