#include "graph/graph.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bmf {

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  auto nb = neighbors(u);
  return std::find(nb.begin(), nb.end(), v) != nb.end();
}

std::int64_t Graph::max_degree() const {
  std::int64_t d = 0;
  for (Vertex v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

GraphBuilder::GraphBuilder(Vertex num_vertices) : n_(num_vertices) {
  BMF_REQUIRE(num_vertices >= 0, "GraphBuilder: negative vertex count");
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_,
              "GraphBuilder::add_edge: vertex out of range");
  if (u == v) return;
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v});
}

Graph GraphBuilder::build() {
  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.n_ = n_;
  g.edges_ = std::move(edges_);
  edges_.clear();

  g.offsets_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : g.edges_) {
    ++g.offsets_[static_cast<std::size_t>(e.u) + 1];
    ++g.offsets_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < g.offsets_.size(); ++i)
    g.offsets_[i] += g.offsets_[i - 1];

  g.adj_.resize(static_cast<std::size_t>(2) * g.edges_.size());
  std::vector<std::int64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : g.edges_) {
    g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] = e.v;
    g.adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] = e.u;
  }
  return g;
}

Graph make_graph(Vertex num_vertices, std::span<const Edge> edges) {
  GraphBuilder b(num_vertices);
  for (const Edge& e : edges) b.add_edge(e.u, e.v);
  return b.build();
}

Graph induced_subgraph(const Graph& g, std::span<const std::uint8_t> keep) {
  BMF_REQUIRE(static_cast<Vertex>(keep.size()) == g.num_vertices(),
              "induced_subgraph: keep mask size mismatch");
  GraphBuilder b(g.num_vertices());
  for (const Edge& e : g.edges())
    if (keep[static_cast<std::size_t>(e.u)] && keep[static_cast<std::size_t>(e.v)])
      b.add_edge(e.u, e.v);
  return b.build();
}

}  // namespace bmf
