#pragma once

/// Static undirected simple graph in CSR (compressed sparse row) form.
///
/// This is the input representation for all static algorithms. Vertices are
/// dense integers [0, n). Edges are undirected and stored once in `edges()`
/// and twice in the adjacency structure. Graphs are immutable after
/// construction; build them through GraphBuilder or the factory helpers in
/// workloads/gen.hpp.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "util/assert.hpp"

namespace bmf {

using Vertex = std::int32_t;
inline constexpr Vertex kNoVertex = -1;

struct Edge {
  Vertex u = kNoVertex;
  Vertex v = kNoVertex;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Canonical 64-bit key of the undirected edge {u, v} (endpoint order
/// agnostic); the one packing used by every dedup/lookup set in the repo.
[[nodiscard]] inline std::uint64_t edge_key(Vertex u, Vertex v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
         static_cast<std::uint32_t>(v);
}

class Graph {
 public:
  Graph() = default;

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(edges_.size());
  }

  /// Neighbors of v, in insertion order.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    BMF_ASSERT(v >= 0 && v < n_);
    return {adj_.data() + offsets_[static_cast<std::size_t>(v)],
            adj_.data() + offsets_[static_cast<std::size_t>(v) + 1]};
  }

  [[nodiscard]] std::int64_t degree(Vertex v) const {
    return offsets_[static_cast<std::size_t>(v) + 1] -
           offsets_[static_cast<std::size_t>(v)];
  }

  /// The undirected edge list; each edge appears once with u < v.
  [[nodiscard]] std::span<const Edge> edges() const { return edges_; }

  /// Linear scan membership test (used only by tests and small graphs).
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;

  /// Maximum degree over all vertices.
  [[nodiscard]] std::int64_t max_degree() const;

 private:
  friend class GraphBuilder;

  Vertex n_ = 0;
  std::vector<std::int64_t> offsets_;  // size n+1
  std::vector<Vertex> adj_;            // size 2m
  std::vector<Edge> edges_;            // size m, canonical u < v
};

/// Accumulates edges, deduplicates, drops self-loops, then freezes into a Graph.
class GraphBuilder {
 public:
  explicit GraphBuilder(Vertex num_vertices);

  /// Adds the undirected edge {u, v}. Self-loops are ignored; duplicates are
  /// removed at build() time.
  void add_edge(Vertex u, Vertex v);

  [[nodiscard]] Vertex num_vertices() const { return n_; }

  /// Freezes the accumulated edges into a CSR graph. The builder is left empty.
  [[nodiscard]] Graph build();

 private:
  Vertex n_;
  std::vector<Edge> edges_;
};

/// Builds a graph directly from an edge list (convenience for tests).
[[nodiscard]] Graph make_graph(Vertex num_vertices, std::span<const Edge> edges);

/// The subgraph induced by `keep` (keep[v] != 0), preserving vertex ids.
[[nodiscard]] Graph induced_subgraph(const Graph& g,
                                     std::span<const std::uint8_t> keep);

}  // namespace bmf
