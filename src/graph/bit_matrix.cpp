#include "graph/bit_matrix.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <vector>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define BMF_BIT_KERNELS_AVX2 1
#include <immintrin.h>
#endif

namespace bmf {

namespace {

// ---------------------------------------------------------------------------
// Kernel dispatch. The build does not pass -mavx2 globally (the binary must
// run on any x86-64), so the vector bodies carry a target attribute and are
// only reachable behind a runtime __builtin_cpu_supports check. The scalar
// override (API call or BMF_FORCE_SCALAR in the environment) lets CI pin
// both paths on the same machine.
// ---------------------------------------------------------------------------

bool env_force_scalar() {
  // Read once before any worker thread exists (static-init of the flag).
  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only probe at first use
  const char* env = std::getenv("BMF_FORCE_SCALAR");
  return env != nullptr && env[0] != '\0' &&
         !(env[0] == '0' && env[1] == '\0');
}

std::atomic<bool>& force_scalar_flag() {
  static std::atomic<bool> flag(env_force_scalar());
  return flag;
}

bool cpu_has_avx2() {
#ifdef BMF_BIT_KERNELS_AVX2
  static const bool supported = __builtin_cpu_supports("avx2");
  return supported;
#else
  return false;
#endif
}

// Index of the first word w in [0, words) with (a[w] & b[w]) != 0, or -1.
// Every words_scanned figure both dispatch paths report derives from this
// index the same way (hit at w => w + 1, miss => words), so the accounting
// is bit-exact between scalar and AVX2 by construction.
std::int64_t first_and_word_scalar(const std::uint64_t* a,
                                   const std::uint64_t* b,
                                   std::int64_t words) {
  for (std::int64_t w = 0; w < words; ++w)
    if ((a[w] & b[w]) != 0) return w;
  return -1;
}

std::int64_t and_popcount_scalar(const std::uint64_t* a, const std::uint64_t* b,
                                 std::int64_t words) {
  std::int64_t total = 0;
  for (std::int64_t w = 0; w < words; ++w) total += std::popcount(a[w] & b[w]);
  return total;
}

#ifdef BMF_BIT_KERNELS_AVX2

__attribute__((target("avx2"))) std::int64_t first_and_word_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::int64_t words) {
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    if (!_mm256_testz_si256(x, x)) {
      // A hit somewhere in this 4-word block: resolve the exact word
      // scalar-side so the reported index (and thus words_scanned) matches
      // the scalar path bit for bit.
      for (std::int64_t k = w; k < w + 4; ++k)
        if ((a[k] & b[k]) != 0) return k;
    }
  }
  for (; w < words; ++w)
    if ((a[w] & b[w]) != 0) return w;
  return -1;
}

// Nibble-LUT popcount (Mula): per-byte counts via pshufb, folded into four
// 64-bit lanes with sad_epu8.
__attribute__((target("avx2"))) std::int64_t and_popcount_avx2(
    const std::uint64_t* a, const std::uint64_t* b, std::int64_t words) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1,
                       2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  std::int64_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i x = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    const __m256i lo = _mm256_and_si256(x, low_mask);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(x, 4), low_mask);
    const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                           _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(counts, _mm256_setzero_si256()));
  }
  std::int64_t total = _mm256_extract_epi64(acc, 0) +
                       _mm256_extract_epi64(acc, 1) +
                       _mm256_extract_epi64(acc, 2) +
                       _mm256_extract_epi64(acc, 3);
  for (; w < words; ++w) total += std::popcount(a[w] & b[w]);
  return total;
}

#endif  // BMF_BIT_KERNELS_AVX2

bool use_avx2() { return cpu_has_avx2() && !force_scalar_flag().load(); }

std::int64_t first_and_word(const std::uint64_t* a, const std::uint64_t* b,
                            std::int64_t words) {
#ifdef BMF_BIT_KERNELS_AVX2
  if (use_avx2()) return first_and_word_avx2(a, b, words);
#endif
  return first_and_word_scalar(a, b, words);
}

std::int64_t and_popcount(const std::uint64_t* a, const std::uint64_t* b,
                          std::int64_t words) {
#ifdef BMF_BIT_KERNELS_AVX2
  if (use_avx2()) return and_popcount_avx2(a, b, words);
#endif
  return and_popcount_scalar(a, b, words);
}

}  // namespace

BitKernel active_bit_kernel() {
  return use_avx2() ? BitKernel::kAvx2 : BitKernel::kScalar;
}

const char* bit_kernel_name(BitKernel kernel) {
  return kernel == BitKernel::kAvx2 ? "avx2" : "scalar";
}

void force_scalar_bit_kernels(bool force) { force_scalar_flag().store(force); }

bool scalar_bit_kernels_forced() { return force_scalar_flag().load(); }

BitVec::BitVec(std::int64_t n)
    : n_(n), words_(static_cast<std::size_t>((n + 63) / 64), 0) {
  BMF_REQUIRE(n >= 0, "BitVec: negative size");
}

void BitVec::set(std::int64_t i, bool value) {
  BMF_ASSERT(i >= 0 && i < n_);
  const auto w = static_cast<std::size_t>(i >> 6);
  const std::uint64_t bit = 1ULL << (i & 63);
  if (value)
    words_[w] |= bit;
  else
    words_[w] &= ~bit;
}

bool BitVec::get(std::int64_t i) const {
  BMF_ASSERT(i >= 0 && i < n_);
  return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1ULL;
}

void BitVec::clear() { std::fill(words_.begin(), words_.end(), 0); }

std::int64_t BitVec::popcount() const {
  BMF_ASSERT(tail_clear());
  std::int64_t total = 0;
  for (auto w : words_) total += std::popcount(w);
  return total;
}

std::int64_t BitVec::first_set() const {
  BMF_ASSERT(tail_clear());
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return static_cast<std::int64_t>(w) * 64 + std::countr_zero(words_[w]);
  return -1;
}

std::int64_t BitVec::first_common(const BitVec& other) const {
  BMF_REQUIRE(n_ == other.n_, "BitVec::first_common: size mismatch");
  BMF_ASSERT(tail_clear() && other.tail_clear());
  const std::int64_t w = first_and_word(data(), other.data(), num_words());
  if (w < 0) return -1;
  return w * 64 + std::countr_zero(word(w) & other.word(w));
}

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(static_cast<std::size_t>(rows * words_per_row_), 0) {
  BMF_REQUIRE(rows >= 0 && cols >= 0, "BitMatrix: negative dimensions");
}

void BitMatrix::set(std::int64_t r, std::int64_t c, bool value) {
  BMF_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const std::uint64_t bit = 1ULL << (c & 63);
  if (value)
    words_[idx(r, c >> 6)] |= bit;
  else
    words_[idx(r, c >> 6)] &= ~bit;
}

bool BitMatrix::get(std::int64_t r, std::int64_t c) const {
  BMF_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return (words_[idx(r, c >> 6)] >> (c & 63)) & 1ULL;
}

void BitMatrix::multiply(const BitVec& v, BitVec& out,
                         std::int64_t* words_scanned, int threads) const {
  BMF_REQUIRE(v.size() == cols_, "BitMatrix::multiply: vector size mismatch");
  BMF_REQUIRE(out.size() == rows_, "BitMatrix::multiply: output size mismatch");
  BMF_ASSERT(v.tail_clear());
  // Each iteration of the block loop owns one full 64-bit word of `out`
  // (rows [64b, 64b+64)) and one slot of the scan-count reduction, so the
  // loop fans out through the shared pool without write conflicts; the slots
  // are summed in index order, so the total is thread-count-invariant.
  const std::int64_t out_words = (rows_ + 63) / 64;
  std::vector<std::int64_t> scanned_per_block(
      static_cast<std::size_t>(out_words), 0);
  const int pool_threads = gated_threads(out_words, 8, threads);
  parallel_for_threads(pool_threads, out_words, [&](std::int64_t b) {
    std::uint64_t word = 0;
    std::int64_t scanned = 0;
    const std::int64_t row_end = std::min<std::int64_t>(rows_, (b + 1) * 64);
    for (std::int64_t r = b * 64; r < row_end; ++r) {
      const std::int64_t hit =
          first_and_word(words_.data() + idx(r, 0), v.data(), words_per_row_);
      scanned += hit < 0 ? words_per_row_ : hit + 1;
      if (hit >= 0) word |= 1ULL << (r & 63);
    }
    out.set_word(b, word);
    scanned_per_block[static_cast<std::size_t>(b)] = scanned;
  });
  if (words_scanned != nullptr) {
    std::int64_t total = 0;
    for (const std::int64_t s : scanned_per_block) total += s;
    *words_scanned = total;
  }
}

std::int64_t BitMatrix::first_common_in_row(std::int64_t r, const BitVec& mask,
                                            std::int64_t* words_scanned) const {
  BMF_REQUIRE(mask.size() == cols_,
              "BitMatrix::first_common_in_row: mask size mismatch");
  BMF_ASSERT(r >= 0 && r < rows_);
  BMF_ASSERT(mask.tail_clear());
  const std::int64_t w =
      first_and_word(words_.data() + idx(r, 0), mask.data(), words_per_row_);
  if (w < 0) {
    if (words_scanned != nullptr) *words_scanned = words_per_row_;
    return -1;
  }
  if (words_scanned != nullptr) *words_scanned = w + 1;
  return w * 64 + std::countr_zero(words_[idx(r, w)] & mask.word(w));
}

std::int64_t BitMatrix::row_intersect_count(std::int64_t r,
                                            const BitVec& mask) const {
  BMF_REQUIRE(mask.size() == cols_,
              "BitMatrix::row_intersect_count: mask size mismatch");
  BMF_ASSERT(r >= 0 && r < rows_);
  BMF_ASSERT(mask.tail_clear());
  return and_popcount(words_.data() + idx(r, 0), mask.data(), words_per_row_);
}

BitMatrix BitMatrix::from_graph(const Graph& g) {
  BitMatrix m(g.num_vertices(), g.num_vertices());
  for (const Edge& e : g.edges()) {
    m.set(e.u, e.v, true);
    m.set(e.v, e.u, true);
  }
  return m;
}

}  // namespace bmf
