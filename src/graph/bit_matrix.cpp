#include "graph/bit_matrix.hpp"
#include <algorithm>

#include <bit>

#include "util/assert.hpp"

namespace bmf {

BitVec::BitVec(std::int64_t n)
    : n_(n), words_(static_cast<std::size_t>((n + 63) / 64), 0) {
  BMF_REQUIRE(n >= 0, "BitVec: negative size");
}

void BitVec::set(std::int64_t i, bool value) {
  BMF_ASSERT(i >= 0 && i < n_);
  const auto w = static_cast<std::size_t>(i >> 6);
  const std::uint64_t bit = 1ULL << (i & 63);
  if (value)
    words_[w] |= bit;
  else
    words_[w] &= ~bit;
}

bool BitVec::get(std::int64_t i) const {
  BMF_ASSERT(i >= 0 && i < n_);
  return (words_[static_cast<std::size_t>(i >> 6)] >> (i & 63)) & 1ULL;
}

void BitVec::clear() { std::fill(words_.begin(), words_.end(), 0); }

std::int64_t BitVec::popcount() const {
  std::int64_t total = 0;
  for (auto w : words_) total += std::popcount(w);
  return total;
}

std::int64_t BitVec::first_set() const {
  for (std::size_t w = 0; w < words_.size(); ++w)
    if (words_[w] != 0)
      return static_cast<std::int64_t>(w) * 64 + std::countr_zero(words_[w]);
  return -1;
}

std::int64_t BitVec::first_common(const BitVec& other) const {
  BMF_ASSERT(n_ == other.n_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    const std::uint64_t x = words_[w] & other.words_[w];
    if (x != 0) return static_cast<std::int64_t>(w) * 64 + std::countr_zero(x);
  }
  return -1;
}

BitMatrix::BitMatrix(std::int64_t rows, std::int64_t cols)
    : rows_(rows),
      cols_(cols),
      words_per_row_((cols + 63) / 64),
      words_(static_cast<std::size_t>(rows * words_per_row_), 0) {
  BMF_REQUIRE(rows >= 0 && cols >= 0, "BitMatrix: negative dimensions");
}

void BitMatrix::set(std::int64_t r, std::int64_t c, bool value) {
  BMF_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  const std::uint64_t bit = 1ULL << (c & 63);
  if (value)
    words_[idx(r, c >> 6)] |= bit;
  else
    words_[idx(r, c >> 6)] &= ~bit;
}

bool BitMatrix::get(std::int64_t r, std::int64_t c) const {
  BMF_ASSERT(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return (words_[idx(r, c >> 6)] >> (c & 63)) & 1ULL;
}

void BitMatrix::multiply(const BitVec& v, BitVec& out,
                         std::int64_t* words_scanned) const {
  BMF_REQUIRE(v.size() == cols_, "BitMatrix::multiply: vector size mismatch");
  BMF_REQUIRE(out.size() == rows_, "BitMatrix::multiply: output size mismatch");
  out.clear();
  // Each iteration of the outer loop owns one full 64-bit word of `out`
  // (rows [64b, 64b+64)), so the loop parallelizes without write conflicts;
  // the word count is an integer sum, so the reduction is order-invariant.
  const std::int64_t out_words = (rows_ + 63) / 64;
  std::int64_t total = 0;
#ifdef BMF_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total) if (rows_ >= 2048)
#endif
  for (std::int64_t b = 0; b < out_words; ++b) {
    std::uint64_t word = 0;
    std::int64_t scanned = 0;
    const std::int64_t row_end = std::min<std::int64_t>(rows_, (b + 1) * 64);
    for (std::int64_t r = b * 64; r < row_end; ++r) {
      std::uint64_t any = 0;
      for (std::int64_t w = 0; w < words_per_row_; ++w) {
        any |= words_[idx(r, w)] & v.word(w);
        ++scanned;
        if (any) break;
      }
      if (any) word |= 1ULL << (r & 63);
    }
    out.word(b) = word;
    total += scanned;
  }
  if (words_scanned != nullptr) *words_scanned = total;
}

std::int64_t BitMatrix::first_common_in_row(std::int64_t r, const BitVec& mask,
                                            std::int64_t* words_scanned) const {
  BMF_ASSERT(mask.size() == cols_);
  for (std::int64_t w = 0; w < words_per_row_; ++w) {
    const std::uint64_t x = words_[idx(r, w)] & mask.word(w);
    if (x != 0) {
      if (words_scanned != nullptr) *words_scanned = w + 1;
      return w * 64 + std::countr_zero(x);
    }
  }
  if (words_scanned != nullptr) *words_scanned = words_per_row_;
  return -1;
}

std::int64_t BitMatrix::row_intersect_count(std::int64_t r, const BitVec& mask) const {
  BMF_ASSERT(mask.size() == cols_);
  std::int64_t total = 0;
  for (std::int64_t w = 0; w < words_per_row_; ++w)
    total += std::popcount(words_[idx(r, w)] & mask.word(w));
  return total;
}

BitMatrix BitMatrix::from_graph(const Graph& g) {
  BitMatrix m(g.num_vertices(), g.num_vertices());
  for (const Edge& e : g.edges()) {
    m.set(e.u, e.v, true);
    m.set(e.v, e.u, true);
  }
  return m;
}

}  // namespace bmf
