#include "graph/dyn_graph.hpp"

#include "util/assert.hpp"

namespace bmf {

DynGraph::DynGraph(Vertex num_vertices)
    : n_(num_vertices), adj_(static_cast<std::size_t>(num_vertices)) {
  BMF_REQUIRE(num_vertices >= 0, "DynGraph: negative vertex count");
}

bool DynGraph::insert(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "DynGraph::insert: invalid edge");
  if (!adj_[static_cast<std::size_t>(u)].insert(v).second) return false;
  adj_[static_cast<std::size_t>(v)].insert(u);
  ++m_;
  return true;
}

bool DynGraph::erase(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "DynGraph::erase: invalid edge");
  if (adj_[static_cast<std::size_t>(u)].erase(v) == 0) return false;
  adj_[static_cast<std::size_t>(v)].erase(u);
  --m_;
  return true;
}

bool DynGraph::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  return adj_[static_cast<std::size_t>(u)].contains(v);
}

Graph DynGraph::snapshot() const {
  GraphBuilder b(n_);
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : adj_[static_cast<std::size_t>(u)])
      if (u < v) b.add_edge(u, v);
  return b.build();
}

}  // namespace bmf
