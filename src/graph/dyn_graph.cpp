#include "graph/dyn_graph.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {
namespace {

void require_valid(const EdgeUpdate& up, Vertex n) {
  BMF_REQUIRE(up.u >= 0 && up.u < n && up.v >= 0 && up.v < n && up.u != up.v,
              "DynGraph: invalid edge update");
}

/// Batches below this size replay inline: the pool round-trip costs more
/// than the work, and every parallel site here is output-invariant in the
/// thread count (see gated_threads).
constexpr std::int64_t kSmallBatchMin = 32;

int effective_threads(std::size_t work, int threads) {
  return gated_threads(static_cast<std::int64_t>(work), kSmallBatchMin, threads);
}

}  // namespace

DynGraph::DynGraph(Vertex num_vertices)
    : n_(num_vertices), adj_(static_cast<std::size_t>(num_vertices)) {
  BMF_REQUIRE(num_vertices >= 0, "DynGraph: negative vertex count");
}

void DynGraph::link(Vertex u, Vertex v) {
  auto& a = adj_[static_cast<std::size_t>(u)];
  a.insert(std::lower_bound(a.begin(), a.end(), v), v);
}

void DynGraph::unlink(Vertex u, Vertex v) {
  auto& a = adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(a.begin(), a.end(), v);
  BMF_ASSERT(it != a.end() && *it == v);
  a.erase(it);
}

bool DynGraph::insert(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "DynGraph::insert: invalid edge");
  auto& a = adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(a.begin(), a.end(), v);
  if (it != a.end() && *it == v) return false;
  a.insert(it, v);
  link(v, u);
  ++m_;
  return true;
}

bool DynGraph::erase(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "DynGraph::erase: invalid edge");
  auto& a = adj_[static_cast<std::size_t>(u)];
  const auto it = std::lower_bound(a.begin(), a.end(), v);
  if (it == a.end() || *it != v) return false;
  a.erase(it);
  unlink(v, u);
  --m_;
  return true;
}

bool DynGraph::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  const auto& a = adj_[static_cast<std::size_t>(u)];
  return std::binary_search(a.begin(), a.end(), v);
}

Graph DynGraph::snapshot() const {
  GraphBuilder b(n_);
  for (Vertex u = 0; u < n_; ++u)
    for (Vertex v : adj_[static_cast<std::size_t>(u)])
      if (u < v) b.add_edge(u, v);
  return b.build();
}

std::vector<std::uint8_t> DynGraph::resolve_structural(
    std::span<const EdgeUpdate> updates, int threads) const {
  std::vector<std::uint8_t> flags(updates.size(), 0);
  // (canonical edge key, batch index), grouped by key with batch order kept
  // inside each group.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> keyed;
  keyed.reserve(updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (updates[i].empty()) continue;
    require_valid(updates[i], n_);
    keyed.emplace_back(edge_key(updates[i].u, updates[i].v),
                       static_cast<std::uint32_t>(i));
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<std::size_t> group_begin;
  for (std::size_t i = 0; i < keyed.size(); ++i)
    if (i == 0 || keyed[i].first != keyed[i - 1].first) group_begin.push_back(i);
  group_begin.push_back(keyed.size());

  parallel_for_threads(
      effective_threads(group_begin.size() - 1, threads),
      static_cast<std::int64_t>(group_begin.size()) - 1,
      [&](std::int64_t g) {
        const std::size_t begin = group_begin[static_cast<std::size_t>(g)];
        const std::size_t end = group_begin[static_cast<std::size_t>(g) + 1];
        const EdgeUpdate& first = updates[keyed[begin].second];
        bool present = has_edge(first.u, first.v);
        for (std::size_t k = begin; k < end; ++k) {
          const std::uint32_t i = keyed[k].second;
          if (updates[i].insert != present) {
            flags[i] = 1;
            present = updates[i].insert;
          }
        }
      });
  return flags;
}

void for_each_incident_by_vertex(
    std::span<const EdgeUpdate> updates, std::span<const std::uint8_t> structural,
    int threads, const std::function<void(Vertex, Vertex, bool)>& fn) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "for_each_incident_by_vertex: flag span size mismatch");
  // Both directed copies of every structural update, grouped by first vertex
  // with batch order kept inside each group.
  std::vector<std::pair<Vertex, std::uint32_t>> ops;
  ops.reserve(2 * updates.size());
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!structural[i]) continue;
    ops.emplace_back(updates[i].u, static_cast<std::uint32_t>(i));
    ops.emplace_back(updates[i].v, static_cast<std::uint32_t>(i));
  }
  std::sort(ops.begin(), ops.end());
  std::vector<std::size_t> group_begin;
  for (std::size_t i = 0; i < ops.size(); ++i)
    if (i == 0 || ops[i].first != ops[i - 1].first) group_begin.push_back(i);
  group_begin.push_back(ops.size());

  parallel_for_threads(
      effective_threads(group_begin.size() - 1, threads),
      static_cast<std::int64_t>(group_begin.size()) - 1,
      [&](std::int64_t g) {
        const std::size_t begin = group_begin[static_cast<std::size_t>(g)];
        const std::size_t end = group_begin[static_cast<std::size_t>(g) + 1];
        const Vertex vertex = ops[begin].first;
        for (std::size_t k = begin; k < end; ++k) {
          const EdgeUpdate& up = updates[ops[k].second];
          fn(vertex, up.u == vertex ? up.v : up.u, up.insert);
        }
      });
}

void DynGraph::apply_structural(std::span<const EdgeUpdate> updates,
                                std::span<const std::uint8_t> structural,
                                int threads) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "DynGraph::apply_structural: flag span size mismatch");
  std::int64_t delta = 0;
  for (std::size_t i = 0; i < updates.size(); ++i)
    if (structural[i]) delta += updates[i].insert ? 1 : -1;
  for_each_incident_by_vertex(updates, structural, threads,
                              [this](Vertex vertex, Vertex other, bool ins) {
                                if (ins)
                                  link(vertex, other);
                                else
                                  unlink(vertex, other);
                              });
  m_ += delta;
}

void DynGraph::apply_structural_disjoint(std::span<const EdgeUpdate> updates,
                                         std::span<const std::uint8_t> structural,
                                         int threads) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "DynGraph::apply_structural_disjoint: flag span size mismatch");
  std::int64_t delta = 0;
  for (std::size_t i = 0; i < updates.size(); ++i)
    if (structural[i]) delta += updates[i].insert ? 1 : -1;
  parallel_for_threads(effective_threads(updates.size(), threads),
                       static_cast<std::int64_t>(updates.size()),
                       [&](std::int64_t i) {
                         const auto k = static_cast<std::size_t>(i);
                         if (!structural[k]) return;
                         const EdgeUpdate& up = updates[k];
                         if (up.insert) {
                           link(up.u, up.v);
                           link(up.v, up.u);
                         } else {
                           unlink(up.u, up.v);
                           unlink(up.v, up.u);
                         }
                       });
  m_ += delta;
}

}  // namespace bmf
