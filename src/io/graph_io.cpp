#include "io/graph_io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "util/assert.hpp"

namespace bmf {
namespace {

struct ParsedEdges {
  Vertex max_id = -1;
  Vertex declared = -1;
  std::vector<WeightedEdge> edges;
};

ParsedEdges parse_lines(std::istream& in, bool weighted) {
  ParsedEdges out;
  std::string line;
  std::int64_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream hs(line.substr(1));
      std::string word;
      if (hs >> word && word == "vertices") {
        long long n = -1;
        BMF_REQUIRE(static_cast<bool>(hs >> n) && n >= 0,
                    "edge list: malformed '# vertices' header");
        out.declared = static_cast<Vertex>(n);
      }
      continue;
    }
    std::istringstream ls(line);
    long long u = -1, v = -1;
    double w = 1.0;
    BMF_REQUIRE(static_cast<bool>(ls >> u >> v),
                "edge list: malformed line " + std::to_string(line_no));
    if (weighted) {
      if (!(ls >> w)) w = 1.0;
      BMF_REQUIRE(w > 0, "edge list: non-positive weight at line " +
                             std::to_string(line_no));
    }
    BMF_REQUIRE(u >= 0 && v >= 0,
                "edge list: negative vertex id at line " + std::to_string(line_no));
    BMF_REQUIRE(u != v,
                "edge list: self-loop at line " + std::to_string(line_no));
    out.edges.push_back({static_cast<Vertex>(u), static_cast<Vertex>(v),
                         static_cast<Weight>(w)});
    out.max_id = std::max({out.max_id, static_cast<Vertex>(u), static_cast<Vertex>(v)});
  }
  return out;
}

// All readers share one policy: a declared vertex count smaller than the ids
// actually used is a hard error, never a silent override.
Vertex resolve_vertex_count(const ParsedEdges& parsed) {
  const Vertex needed = static_cast<Vertex>(parsed.max_id + 1);
  if (parsed.declared >= 0) {
    BMF_REQUIRE(parsed.declared >= needed,
                "edge list: '# vertices' header smaller than 1 + largest "
                "vertex id used");
    return parsed.declared;
  }
  return needed;
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  const ParsedEdges parsed = parse_lines(in, /*weighted=*/false);
  GraphBuilder b(resolve_vertex_count(parsed));
  for (const WeightedEdge& e : parsed.edges) b.add_edge(e.u, e.v);
  return b.build();  // the builder deduplicates repeated edges
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  BMF_REQUIRE(in.good(), "cannot open file: " + path);
  return read_edge_list(in);
}

WeightedGraph read_weighted_edge_list(std::istream& in) {
  const ParsedEdges parsed = parse_lines(in, /*weighted=*/true);
  WeightedGraph wg;
  wg.n = resolve_vertex_count(parsed);
  // Deduplicate repeated pairs (first occurrence wins), matching the
  // unweighted readers' policy.
  std::unordered_set<std::uint64_t> seen;
  for (const WeightedEdge& e : parsed.edges)
    if (seen.insert(edge_key(e.u, e.v)).second) wg.edges.push_back(e);
  return wg;
}

void write_edge_list(std::ostream& out, const Graph& g) {
  out << "# vertices " << g.num_vertices() << "\n";
  for (const Edge& e : g.edges()) out << e.u << " " << e.v << "\n";
}

Graph read_dimacs(std::istream& in) {
  std::string line;
  Vertex n = -1;
  std::vector<Edge> edges;
  std::int64_t declared_m = -1;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char kind = 0;
    ls >> kind;
    if (kind == 'p') {
      std::string fmt;
      long long nn = -1, mm = -1;
      BMF_REQUIRE(static_cast<bool>(ls >> fmt >> nn >> mm) && nn >= 0 && mm >= 0,
                  "dimacs: malformed problem line");
      n = static_cast<Vertex>(nn);
      declared_m = mm;
    } else if (kind == 'e') {
      long long u = 0, v = 0;
      BMF_REQUIRE(static_cast<bool>(ls >> u >> v), "dimacs: malformed edge line");
      BMF_REQUIRE(n >= 0, "dimacs: edge before problem line");
      BMF_REQUIRE(u >= 1 && v >= 1 && u <= n && v <= n,
                  "dimacs: vertex id out of range");
      BMF_REQUIRE(u != v, "dimacs: self-loop");
      edges.push_back({static_cast<Vertex>(u - 1), static_cast<Vertex>(v - 1)});
    }
  }
  BMF_REQUIRE(n >= 0, "dimacs: missing problem line");
  if (declared_m >= 0)
    BMF_REQUIRE(static_cast<std::int64_t>(edges.size()) == declared_m,
                "dimacs: edge count mismatch");
  return make_graph(n, edges);
}

void write_dimacs(std::ostream& out, const Graph& g) {
  out << "c bmf graph\n";
  out << "p edge " << g.num_vertices() << " " << g.num_edges() << "\n";
  for (const Edge& e : g.edges()) out << "e " << e.u + 1 << " " << e.v + 1 << "\n";
}

}  // namespace bmf
