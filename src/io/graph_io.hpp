#pragma once

/// Graph file IO: whitespace edge lists and DIMACS.
///
/// Formats:
///  * edge list — one `u v` (or `u v w` for weighted) pair per line, 0-based
///    vertex ids; lines starting with '#' are comments. The vertex count is
///    1 + the largest id unless a `# vertices N` header is present.
///  * DIMACS — `c` comment lines, one `p edge N M` problem line, `e u v`
///    edge lines with 1-based ids (the format used by matching solvers).
///
/// All readers apply one validation policy: self-loops are rejected, repeated
/// edges are deduplicated (first occurrence wins for weighted input), and a
/// declared vertex count (`# vertices N` / `p edge N M`) smaller than
/// 1 + the largest id actually used is a hard error, never a silent override.

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"
#include "weighted/weighted.hpp"

namespace bmf {

/// Parses an edge list; throws std::invalid_argument on malformed input.
[[nodiscard]] Graph read_edge_list(std::istream& in);
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

/// Parses a weighted edge list (`u v w` per line; missing w defaults to 1).
[[nodiscard]] WeightedGraph read_weighted_edge_list(std::istream& in);

void write_edge_list(std::ostream& out, const Graph& g);

/// Parses DIMACS `p edge` format (1-based ids).
[[nodiscard]] Graph read_dimacs(std::istream& in);
void write_dimacs(std::ostream& out, const Graph& g);

}  // namespace bmf
