#include "core/framework.hpp"

#include <algorithm>
#include <span>
#include <unordered_map>
#include <utility>

#include "util/assert.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

// Certificate soundness note: a valid c-approximate oracle returns a
// non-empty matching whenever the derived graph has an edge (mu >= 1 implies
// |M'| >= 1/c > 0). The simulation loops below therefore treat an empty or
// entirely inapplicable answer on a non-empty graph as an out-of-contract
// oracle and count it as a truncated loop, which withholds the Theorem B.4
// certificate instead of issuing it falsely.
//
// Parallel discovery: building H'_s / H' scans every live structure's
// vertices against the graph — the dominant per-iteration cost and pure
// const reads on the forest (operations only happen after the oracle
// answers). Discovery therefore fans out across cfg.threads pool workers
// with one private candidate buffer per (participant, structure) slot —
// each participant scans only the structure vertices whose rows it owns —
// and the buffers merge serially in structure-id order through the
// participation policy's pos-merge, reproducing the serial loop's
// first-encounter index assignment exactly. The derived graphs handed to the
// oracle — and hence matchings, op counts, and truncation decisions — are
// bit-identical at any (participants x threads).

namespace bmf {
namespace {

/// Below these sizes the pool round-trip costs more than the scan; the
/// parallel paths degrade to inline serial loops with identical output
/// (merges are in canonical order either way; see gated_threads). Discovery
/// gates on both the slot count (the fan-out width: participants x
/// structures) and the edge count (an upper bound on one iteration's total
/// scan work).
constexpr std::int64_t kParallelDiscoveryMinStructures = 16;
constexpr std::int64_t kParallelDiscoveryMinEdges = 2048;
constexpr std::int64_t kParallelEdgeFilterMin = 2048;

int discovery_thread_gate(std::int64_t slots, std::int64_t edges, int threads) {
  return gated_threads(slots, kParallelDiscoveryMinStructures,
                       gated_threads(edges, kParallelDiscoveryMinEdges, threads));
}

/// The shared flat policy behind the participation-less constructor; it is
/// stateless (pass-through merge, no-op accounting), so sharing one instance
/// across drivers and threads is safe.
RebuildParticipation& flat_participation() {
  static FlatRebuildParticipation flat;
  return flat;
}

}  // namespace

void RebuildParticipation::merge(
    std::span<const std::vector<SweepArc>> per_participant,
    std::vector<SweepArc>& out) const {
  if (per_participant.size() == 1) {
    out.insert(out.end(), per_participant[0].begin(), per_participant[0].end());
    return;
  }
  // Canonical coordinator splice: each buffer is pos-ascending and the pos
  // sets are pairwise disjoint (every scan position is owned by exactly one
  // participant), so repeatedly taking the buffer with the smallest front pos
  // — and draining all its arcs for that position, i.e. one scanned vertex's
  // neighbor run — reproduces the flat scan order exactly.
  std::size_t total = 0;
  for (const auto& buf : per_participant) total += buf.size();
  out.reserve(out.size() + total);
  std::vector<std::size_t> cursor(per_participant.size(), 0);
  for (;;) {
    std::size_t best = per_participant.size();
    for (std::size_t p = 0; p < per_participant.size(); ++p) {
      if (cursor[p] >= per_participant[p].size()) continue;
      if (best == per_participant.size() ||
          per_participant[p][cursor[p]].pos <
              per_participant[best][cursor[best]].pos)
        best = p;
    }
    if (best == per_participant.size()) break;
    const std::vector<SweepArc>& buf = per_participant[best];
    std::size_t& cur = cursor[best];
    const std::int32_t pos = buf[cur].pos;
    while (cur < buf.size() && buf[cur].pos == pos) out.push_back(buf[cur++]);
  }
}

FrameworkDriver::FrameworkDriver(const Graph& g, MatchingOracle& oracle,
                                 const CoreConfig& cfg,
                                 RebuildParticipation* participation)
    : g_(g),
      oracle_(oracle),
      cfg_(cfg),
      participation_(participation != nullptr ? participation
                                              : &flat_participation()) {}

bool FrameworkDriver::exhaustive() const {
  return cfg_.iteration_mode == IterationMode::kUntilEmpty &&
         stats_.truncated_loops == 0;
}

void FrameworkDriver::extend_active_path(StructureForest& forest) {
  if (cfg_.stage_split) {
    // Algorithm 5: stages s = 0 .. l_max; stage s handles s-feasible arcs
    // (Definition 5.7), i.e. type-3 arcs whose overtaker sits at level s.
    const int lmax = cfg_.ell_max();
    for (int s = 0; s <= lmax; ++s) run_stage(forest, s);
  } else {
    // [FMU22]-style ablation: one loop over all type-3 arcs, no stage split.
    run_stage(forest, -1);
  }
  // Per Remark 2 the trailing Contract-and-Augment of Algorithm 5 is skipped;
  // the phase engine invokes contract_and_augment right after this call.
}

void FrameworkDriver::run_stage(StructureForest& forest, int stage) {
  ++stats_.stage_loops;
  const std::int64_t iteration_bound =
      cfg_.scheduled_iterations(oracle_.approx_factor());
  const Matching& m = forest.matching();

  std::int64_t iterations = 0;
  for (;;) {
    // Build the bipartite stage graph H'_s (Definition 5.8): left nodes are
    // working vertices of live structures at level `stage` that are neither
    // on hold nor already extended this pass-bundle; right nodes are
    // inner/unvisited matched vertices x with label(x) > level + 1.
    std::unordered_map<StructureId, std::int32_t> left_index;
    std::unordered_map<Vertex, std::int32_t> right_index;
    std::vector<std::pair<Vertex, Vertex>> witness;  // (w, x) per H-edge
    std::vector<int> edge_level;                     // overtaker level per H-edge
    OracleGraph h;
    std::vector<std::pair<std::int32_t, std::int32_t>> raw_edges;

    // Parallel discovery: each (participant, structure) slot scans the
    // working blossom's vertices whose rows the participant owns into a
    // private pos-tagged buffer (const reads only). Tiny forests run inline —
    // the pool round-trip would cost more than the scan, and the merged
    // output is the same either way.
    const auto ns = static_cast<std::int64_t>(forest.num_structures());
    const int np = participation_->participants();
    const bool partitioned = np > 1;
    const std::int64_t nslots = ns * np;
    const int discovery_threads =
        discovery_thread_gate(nslots, g_.num_edges(), cfg_.threads);
    std::vector<std::vector<SweepArc>> slots(static_cast<std::size_t>(nslots));
    std::vector<int> slot_level(static_cast<std::size_t>(nslots), 0);
    parallel_for_threads(discovery_threads, nslots, [&](std::int64_t idx) {
      const auto sid = static_cast<StructureId>(idx / np);
      const int shard = static_cast<int>(idx % np);
      const StructureInfo& si = forest.structure(sid);
      if (si.removed || si.on_hold || si.extended || si.working == kNoBlossom)
        return;
      const int level = forest.outer_level(si.working);
      if (stage >= 0 && level != stage) return;
      slot_level[static_cast<std::size_t>(idx)] = level;
      std::vector<SweepArc>& arcs = slots[static_cast<std::size_t>(idx)];
      std::int32_t pos = 0;
      for (Vertex w : forest.blossom_vertices(si.working)) {
        const std::int32_t wp = pos++;
        if (partitioned && participation_->owner(w) != shard) continue;
        for (Vertex x : g_.neighbors(w)) {
          if (forest.is_removed(x) || m.mate(x) == kNoVertex) continue;
          if (m.mate(w) == x) continue;  // g must be unmatched
          if (!forest.is_unvisited(x) && !forest.is_inner(x)) continue;
          if (forest.label(x) <= level + 1) continue;
          arcs.push_back({wp, w, x, kNoStructure});
        }
      }
    });

    // Serial coordinator merge in structure-id order, participant buffers
    // spliced per structure by scan position (the participation policy's
    // ordering obligation): identical index assignment to the serial scan
    // (left ids in sid order, right ids in first-encounter order).
    std::vector<SweepArc> merged;
    std::int64_t gathered = 0;
    for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
      const auto base = static_cast<std::size_t>(sid) * static_cast<std::size_t>(np);
      merged.clear();
      participation_->merge(
          std::span<const std::vector<SweepArc>>(&slots[base],
                                                 static_cast<std::size_t>(np)),
          merged);
      if (merged.empty()) continue;
      gathered += static_cast<std::int64_t>(merged.size());
      const int level = slot_level[base];
      const auto li = static_cast<std::int32_t>(left_index.size());
      left_index.emplace(sid, li);
      for (const SweepArc& a : merged) {
        const auto rit =
            right_index.emplace(a.x, static_cast<std::int32_t>(right_index.size()))
                .first;
        raw_edges.emplace_back(li, rit->second);
        witness.emplace_back(a.w, a.x);
        edge_level.push_back(level);
      }
    }
    participation_->note_rebuild_gather(
        gathered * static_cast<std::int64_t>(sizeof(SweepArc)));
    if (raw_edges.empty()) break;

    // Deduplicate (left, right) pairs, keeping the first witness.
    std::unordered_map<std::int64_t, std::size_t> seen;
    h.n = static_cast<std::int32_t>(left_index.size() + right_index.size());
    std::vector<std::pair<Vertex, Vertex>> edge_witness;
    std::vector<int> edge_lvl;
    const auto offset = static_cast<std::int32_t>(left_index.size());
    for (std::size_t i = 0; i < raw_edges.size(); ++i) {
      const std::int64_t key =
          static_cast<std::int64_t>(raw_edges[i].first) * (h.n + 1) +
          raw_edges[i].second;
      if (!seen.emplace(key, i).second) continue;
      h.edges.emplace_back(raw_edges[i].first,
                           offset + raw_edges[i].second);
      edge_witness.push_back(witness[i]);
      edge_lvl.push_back(edge_level[i]);
    }

    const OracleMatching found = oracle_.find_matching(h);
    ++stats_.stage_iterations;
    ++iterations;
    if (observer_)
      observer_({stage, h.n, static_cast<std::int64_t>(h.edges.size()),
                 static_cast<std::int64_t>(found.size())});

    // Map matched H-edges back to witness arcs and perform Overtake on each
    // (Lemma B.1 guarantees they stay s-feasible as we go; can_overtake
    // re-validates defensively).
    std::unordered_map<std::int64_t, std::size_t> edge_of;
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
      const std::int64_t key =
          static_cast<std::int64_t>(h.edges[i].first) * (h.n + 1) +
          h.edges[i].second;
      edge_of.emplace(key, i);
    }
    std::int64_t applied = 0;
    for (const auto& [a, b] : found) {
      const std::int32_t l = std::min(a, b);
      const std::int32_t r = std::max(a, b);
      const auto it =
          edge_of.find(static_cast<std::int64_t>(l) * (h.n + 1) + r);
      if (it == edge_of.end()) continue;  // oracle returned a non-edge
      const auto [w, x] = edge_witness[it->second];
      const int k = edge_lvl[it->second] + 1;
      if (forest.can_overtake(w, x, k)) {
        forest.overtake(w, x, k);
        ++applied;
      }
    }
    if (found.empty() || applied == 0) {
      if (!h.edges.empty()) ++stats_.truncated_loops;
      break;
    }
    if (cfg_.iteration_mode == IterationMode::kPaperBound &&
        iterations >= iteration_bound) {
      ++stats_.truncated_loops;
      break;
    }
  }
}

void FrameworkDriver::run_local_contractions(StructureForest& forest) {
  // Step 1 of Contract-and-Augment: exhaust type-1 arcs. Only arcs incident
  // to a working vertex qualify (Definition 5.2), so it suffices to rescan
  // the (growing) working blossom after each contraction.
  for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
    bool changed = true;
    while (changed) {
      changed = false;
      const StructureInfo& si = forest.structure(sid);
      if (si.removed || si.working == kNoBlossom) break;
      for (Vertex w : forest.blossom_vertices(si.working)) {
        for (Vertex x : g_.neighbors(w)) {
          if (forest.can_contract(w, x)) {
            forest.contract(w, x);
            changed = true;
            break;
          }
        }
        if (changed) break;
      }
    }
  }
}

void FrameworkDriver::run_augment_loop(StructureForest& forest) {
  // Step 2 of Contract-and-Augment (Algorithm 4): iterate A_matching on the
  // structure graph H' (Definition 5.4) and Augment along each matched pair.
  const std::int64_t iteration_bound =
      cfg_.scheduled_iterations(oracle_.approx_factor());
  std::int64_t iterations = 0;
  for (;;) {
    std::unordered_map<StructureId, std::int32_t> index;
    std::unordered_map<std::int64_t, std::pair<Vertex, Vertex>> pair_witness;

    // Parallel discovery of inter-structure outer/outer arcs, one private
    // pos-tagged slot per (participant, structure) — each participant scans
    // the members whose rows it owns (const reads only); tiny forests run
    // inline.
    const auto ns = static_cast<std::int64_t>(forest.num_structures());
    const int np = participation_->participants();
    const bool partitioned = np > 1;
    const std::int64_t nslots = ns * np;
    const int discovery_threads =
        discovery_thread_gate(nslots, g_.num_edges(), cfg_.threads);
    std::vector<std::vector<SweepArc>> slots(static_cast<std::size_t>(nslots));
    parallel_for_threads(discovery_threads, nslots, [&](std::int64_t idx) {
      const auto sid = static_cast<StructureId>(idx / np);
      const int shard = static_cast<int>(idx % np);
      const StructureInfo& si = forest.structure(sid);
      if (si.removed) return;
      std::vector<SweepArc>& arcs = slots[static_cast<std::size_t>(idx)];
      std::int32_t pos = 0;
      for (Vertex w : si.members) {
        const std::int32_t wp = pos++;
        if (partitioned && participation_->owner(w) != shard) continue;
        if (!forest.is_outer(w)) continue;
        for (Vertex x : g_.neighbors(w)) {
          if (forest.is_removed(x)) continue;
          const StructureId sx = forest.structure_of(x);
          if (sx == kNoStructure || sx == sid || !forest.is_outer(x)) continue;
          arcs.push_back({wp, w, x, sx});
        }
      }
    });

    // Serial coordinator merge in structure-id order (buffers spliced per
    // structure by member position): index assignment and witness selection
    // (first arc per structure pair wins) match the serial scan.
    std::vector<SweepArc> merged;
    std::int64_t gathered = 0;
    for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
      const auto base = static_cast<std::size_t>(sid) * static_cast<std::size_t>(np);
      merged.clear();
      participation_->merge(
          std::span<const std::vector<SweepArc>>(&slots[base],
                                                 static_cast<std::size_t>(np)),
          merged);
      gathered += static_cast<std::int64_t>(merged.size());
      for (const SweepArc& a : merged) {
        const auto ia = index.emplace(sid, static_cast<std::int32_t>(index.size()))
                            .first->second;
        const auto ib =
            index.emplace(a.sx, static_cast<std::int32_t>(index.size()))
                .first->second;
        const std::int64_t key =
            static_cast<std::int64_t>(std::min(ia, ib)) * (1LL << 31) +
            std::max(ia, ib);
        pair_witness.emplace(key, std::make_pair(a.w, a.x));
      }
    }
    participation_->note_rebuild_gather(
        gathered * static_cast<std::int64_t>(sizeof(SweepArc)));
    if (pair_witness.empty()) break;

    OracleGraph h;
    h.n = static_cast<std::int32_t>(index.size());
    // pair_witness is a hash map; emitting its entries in iteration order
    // would feed the (order-sensitive) oracle a stdlib-dependent edge
    // sequence. Collect the keys and sort, so the oracle input is a pure
    // function of the structure graph.
    std::vector<std::int64_t> keys;
    keys.reserve(pair_witness.size());
    for (const auto& [key, wx] : pair_witness) {
      (void)wx;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::int64_t key : keys)
      h.edges.emplace_back(static_cast<std::int32_t>(key >> 31),
                           static_cast<std::int32_t>(key & ((1LL << 31) - 1)));
    const OracleMatching found = oracle_.find_matching(h);
    ++stats_.ca_iterations;
    ++iterations;
    if (observer_)
      observer_({-1, h.n, static_cast<std::int64_t>(h.edges.size()),
                 static_cast<std::int64_t>(found.size())});

    std::int64_t applied = 0;
    for (const auto& [a, b] : found) {
      const std::int64_t key =
          static_cast<std::int64_t>(std::min(a, b)) * (1LL << 31) + std::max(a, b);
      const auto it = pair_witness.find(key);
      if (it == pair_witness.end()) continue;
      const auto [w, x] = it->second;
      if (forest.can_augment(w, x)) {
        forest.augment(w, x);
        ++applied;
      }
    }
    if (found.empty() || applied == 0) {
      if (!h.edges.empty()) ++stats_.truncated_loops;
      break;
    }
    if (cfg_.iteration_mode == IterationMode::kPaperBound &&
        iterations >= iteration_bound) {
      ++stats_.truncated_loops;
      break;
    }
  }
}

void FrameworkDriver::contract_and_augment(StructureForest& forest) {
  run_local_contractions(forest);
  run_augment_loop(forest);
}

Matching framework_initial_matching(const Graph& g, MatchingOracle& oracle,
                                    const CoreConfig& cfg) {
  Matching m(g.num_vertices());
  const auto bound = static_cast<std::int64_t>(2.0 * oracle.approx_factor()) + 1;
  const std::span<const Edge> edges = g.edges();
  // Chunked parallel filter of the free-free subgraph; chunk buffers merge in
  // chunk order, so the edge sequence equals the serial scan for any chunk
  // count (the chunk count itself never changes the output).
  const int filter_threads = gated_threads(static_cast<std::int64_t>(edges.size()),
                                           kParallelEdgeFilterMin, cfg.threads);
  const std::int64_t nchunks =
      ThreadPool::resolve_threads(filter_threads) > 1
          ? static_cast<std::int64_t>(ThreadPool::resolve_threads(cfg.threads)) * 4
          : 1;
  for (std::int64_t i = 0;; ++i) {
    OracleGraph h;
    h.n = g.num_vertices();
    if (nchunks > 1) {
      std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> chunks(
          static_cast<std::size_t>(nchunks));
      const auto total = static_cast<std::int64_t>(edges.size());
      // filter_threads, not cfg.threads: nchunks > 1 already implies the gate
      // passed, but the fan-out must route through the gated count so the
      // size-gate discipline is uniform (and machine-checkable).
      parallel_for_threads(filter_threads, nchunks, [&](std::int64_t c) {
        const std::int64_t lo = total * c / nchunks;
        const std::int64_t hi = total * (c + 1) / nchunks;
        auto& out = chunks[static_cast<std::size_t>(c)];
        for (std::int64_t e = lo; e < hi; ++e) {
          const Edge& edge = edges[static_cast<std::size_t>(e)];
          if (m.is_free(edge.u) && m.is_free(edge.v))
            out.emplace_back(edge.u, edge.v);
        }
      });
      for (const auto& chunk : chunks)
        h.edges.insert(h.edges.end(), chunk.begin(), chunk.end());
    } else {
      for (const Edge& e : edges)
        if (m.is_free(e.u) && m.is_free(e.v)) h.edges.emplace_back(e.u, e.v);
    }
    if (h.edges.empty()) break;
    const OracleMatching found = oracle.find_matching(h);
    if (found.empty()) break;
    for (const auto& [u, v] : found)
      if (m.is_free(u) && m.is_free(v)) m.add(u, v);
    if (cfg.iteration_mode == IterationMode::kPaperBound && i + 1 >= bound) break;
  }
  return m;
}

BoostResult boost_matching(const Graph& g, MatchingOracle& oracle,
                           const CoreConfig& cfg) {
  const std::int64_t calls_before = oracle.calls();
  BoostResult result{framework_initial_matching(g, oracle, cfg), {}, {}, 0, 0};
  result.initial_oracle_calls = oracle.calls() - calls_before;

  FrameworkDriver driver(g, oracle, cfg);
  PhaseEngine engine(g, cfg);
  result.outcome = engine.run(result.matching, driver);
  result.stats = driver.stats();
  result.total_oracle_calls = oracle.calls() - calls_before;
  return result;
}

EnsembleResult boost_matching_ensemble(const Graph& g,
                                       const OracleFactory& make_oracle,
                                       const CoreConfig& cfg, int repetitions) {
  BMF_REQUIRE(repetitions >= 1, "boost_matching_ensemble: need >= 1 repetition");
  BMF_REQUIRE(make_oracle != nullptr, "boost_matching_ensemble: null factory");

  // Split per-repetition seeds serially up front; the fan-out below must not
  // touch shared randomness.
  Rng seeder(cfg.seed);
  std::vector<std::uint64_t> seeds(static_cast<std::size_t>(repetitions));
  for (auto& s : seeds) s = seeder.next();

  std::vector<BoostResult> slots(static_cast<std::size_t>(repetitions));
  // Each repetition is a full boost run — worth a pool thread whenever there
  // are at least two; slots are per-repetition, so the fan-out is
  // output-invariant.
  const int ensemble_threads =
      gated_threads(static_cast<std::int64_t>(repetitions), 2, cfg.threads);
  parallel_for_threads(ensemble_threads, repetitions, [&](std::int64_t r) {
    CoreConfig local = cfg;
    local.seed = seeds[static_cast<std::size_t>(r)];
    local.threads = 1;  // repetitions already occupy the pool; don't nest
    const std::unique_ptr<MatchingOracle> oracle = make_oracle(local.seed);
    slots[static_cast<std::size_t>(r)] = boost_matching(g, *oracle, local);
  });

  EnsembleResult result;
  result.sizes.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    const std::int64_t size = slots[static_cast<std::size_t>(r)].matching.size();
    result.sizes.push_back(size);
    if (result.best_repetition < 0 ||
        size > result.sizes[static_cast<std::size_t>(result.best_repetition)])
      result.best_repetition = r;
  }
  result.best = std::move(slots[static_cast<std::size_t>(result.best_repetition)]);
  return result;
}

}  // namespace bmf
