#pragma once

/// The structure forest of [MMSS25] (Section 4): one structure
/// S_alpha = (G_alpha, Omega_alpha, w'_alpha) per free vertex, with the three
/// basic operations Augment / Contract / Overtake (Section 4.5) and
/// Backtrack-Stuck-Structures (Section 4.8).
///
/// The forest lives for one phase (Alg-Phase): `init_phase` builds a
/// single-vertex structure per free vertex; operations grow, merge and remove
/// structures; recorded augmenting paths are applied to the matching by the
/// phase engine after the phase ends (Algorithm 1 line 6). The matching is
/// read-only during a phase.

#include <cstdint>
#include <vector>

#include "core/blossoms.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

struct StructureInfo {
  Vertex alpha = kNoVertex;       ///< the free root vertex
  BlossomId root = kNoBlossom;    ///< Omega(alpha)
  BlossomId working = kNoBlossom; ///< w'_alpha; kNoBlossom means inactive
  bool on_hold = false;
  bool modified = false;
  bool extended = false;
  bool removed = false;
  std::int64_t size = 0;          ///< number of G-vertices
  std::vector<Vertex> members;
};

/// Operation counters, used both for instrumentation and for pass-bundle
/// quiescence detection (a bundle that performs zero operations proves all
/// remaining bundles of the phase are no-ops).
struct OpCounts {
  std::int64_t overtake_unvisited = 0;  ///< Overtake case 1
  std::int64_t overtake_same = 0;       ///< Overtake case 2.1
  std::int64_t overtake_steal = 0;      ///< Overtake case 2.2 (subtree theft)
  std::int64_t contracts = 0;
  std::int64_t augments = 0;
  std::int64_t backtracks = 0;

  [[nodiscard]] std::int64_t total() const {
    return overtake_unvisited + overtake_same + overtake_steal + contracts +
           augments + backtracks;
  }
};

class StructureForest {
 public:
  /// Binds to a graph and the phase-constant matching. Neither is owned; both
  /// must outlive the forest.
  StructureForest(const Graph& g, const Matching& m, const CoreConfig& cfg);

  /// Starts a phase: one structure per free vertex, all labels l_max + 1,
  /// nothing removed (Algorithm 2 lines 1-3).
  void init_phase();

  /// Pass-bundle prologue (Algorithm 2 lines 6-9): recompute on-hold from the
  /// hold limit, clear modified/extended, reset the per-bundle op counter.
  void begin_pass_bundle(std::int64_t hold_limit);

  // ---- basic operations -------------------------------------------------

  /// Structural preconditions of Overtake(g=(u,v), a=(v,mate v), k)
  /// (Section 4.5.3 (P1)-(P3)). Context gating (on-hold / extended) is also
  /// enforced here since Overtake only ever runs inside Extend-Active-Path.
  [[nodiscard]] bool can_overtake(Vertex u, Vertex v, int k) const;
  void overtake(Vertex u, Vertex v, int k);

  /// Structural preconditions of Contract(g=(u,v)) (Section 4.5.2): Omega(u)
  /// is the working vertex of a structure that also contains the outer vertex
  /// Omega(v) != Omega(u). Callers add context gating where required.
  [[nodiscard]] bool can_contract(Vertex u, Vertex v) const;
  void contract(Vertex u, Vertex v);

  /// Structural preconditions of Augment(g=(u,v)) (Section 4.5.1): Omega(u)
  /// and Omega(v) are outer vertices of two different live structures.
  [[nodiscard]] bool can_augment(Vertex u, Vertex v) const;
  void augment(Vertex u, Vertex v);

  /// Backtrack-Stuck-Structures (Section 4.8).
  void backtrack_stuck();

  // ---- vertex/blossom classification ------------------------------------

  [[nodiscard]] BlossomId omega(Vertex v) const { return arena_.omega(v); }
  [[nodiscard]] bool is_removed(Vertex v) const {
    return removed_[static_cast<std::size_t>(v)] != 0;
  }
  [[nodiscard]] StructureId structure_of(Vertex v) const {
    return is_removed(v) ? kNoStructure : vert_struct_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool is_unvisited(Vertex v) const {
    return !is_removed(v) && vert_struct_[static_cast<std::size_t>(v)] == kNoStructure;
  }
  /// v lies in a live structure and its root blossom is outer.
  [[nodiscard]] bool is_outer(Vertex v) const;
  /// v lies in a live structure and its root blossom is inner (hence trivial).
  [[nodiscard]] bool is_inner(Vertex v) const;

  /// Label of the matched arc (v, mate(v)); 0 for free vertices.
  [[nodiscard]] int label(Vertex v) const {
    return lab_[static_cast<std::size_t>(v)];
  }

  /// ell(u') of an outer root blossom: 0 at the structure root, otherwise the
  /// label of the matched arc entering it from its tree parent. This is
  /// distance(u) of Algorithm 3 and the stage index s of Definition 5.8.
  [[nodiscard]] int outer_level(BlossomId b) const;

  // ---- structures --------------------------------------------------------

  [[nodiscard]] StructureId num_structures() const {
    return static_cast<StructureId>(structures_.size());
  }
  [[nodiscard]] const StructureInfo& structure(StructureId s) const {
    return structures_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const BlossomArena& arena() const { return arena_; }
  [[nodiscard]] const Matching& matching() const { return m_; }
  [[nodiscard]] const Graph& graph() const { return g_; }
  [[nodiscard]] std::vector<Vertex> blossom_vertices(BlossomId b) const {
    return arena_.vertices(b);
  }

  /// The root-to-working path of root blossoms (the active path, Def 4.2),
  /// or empty if the structure is inactive.
  [[nodiscard]] std::vector<BlossomId> active_path(StructureId s) const;

  /// True if anc is an ancestor of b in its structure's alternating tree.
  [[nodiscard]] bool is_tree_ancestor(BlossomId anc, BlossomId b) const;

  // ---- phase results and accounting --------------------------------------

  [[nodiscard]] const std::vector<std::vector<Vertex>>& recorded_paths() const {
    return paths_;
  }
  [[nodiscard]] const OpCounts& totals() const { return totals_; }
  [[nodiscard]] std::int64_t ops_this_bundle() const { return bundle_ops_; }
  [[nodiscard]] bool hold_seen() const { return hold_seen_; }

  /// Heavyweight structural invariant checks (gated by cfg.check_invariants
  /// at call sites; safe to call any time between operations).
  void check_invariants() const;

 private:
  void mark_extended(StructureId s);
  void mark_modified(StructureId s);
  void detach_from_parent(BlossomId b);
  void move_subtree(BlossomId sub_root, StructureId from, StructureId to);
  /// G-vertex path from u back to the structure's free root (u first).
  [[nodiscard]] std::vector<Vertex> path_to_root(Vertex u) const;

  const Graph& g_;
  const Matching& m_;
  const CoreConfig& cfg_;
  int lmax_;

  BlossomArena arena_;
  std::vector<StructureInfo> structures_;
  std::vector<StructureId> vert_struct_;
  std::vector<int> lab_;
  std::vector<std::uint8_t> removed_;
  std::vector<std::vector<Vertex>> paths_;

  OpCounts totals_;
  std::int64_t bundle_ops_ = 0;
  bool hold_seen_ = false;
};

}  // namespace bmf
