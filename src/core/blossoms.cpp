#include "core/blossoms.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bmf {

void BlossomArena::reset(Vertex n) {
  n_ = n;
  nodes_.assign(static_cast<std::size_t>(n), BlossomNode{});
  for (Vertex v = 0; v < n; ++v) {
    BlossomNode& b = nodes_[static_cast<std::size_t>(v)];
    b.vert = v;
    b.base = v;
  }
}

BlossomId BlossomArena::omega(Vertex v) const {
  BMF_ASSERT(v >= 0 && v < n_);
  BlossomId b = trivial(v);
  while (node(b).parent != kNoBlossom) b = node(b).parent;
  return b;
}

BlossomId BlossomArena::root_of(BlossomId b) const {
  while (node(b).parent != kNoBlossom) b = node(b).parent;
  return b;
}

BlossomId BlossomArena::make_composite(std::vector<BlossomId> cycle,
                                       std::vector<Edge> cycle_edges) {
  BMF_ASSERT(cycle.size() >= 3 && cycle.size() % 2 == 1);
  BMF_ASSERT(cycle.size() == cycle_edges.size());
  const auto id = static_cast<BlossomId>(nodes_.size());
  BlossomNode nb;
  nb.base = node(cycle.front()).base;
  nb.cycle = std::move(cycle);
  nb.cycle_edges = std::move(cycle_edges);
  for (BlossomId child : nb.cycle) {
    BMF_ASSERT(node(child).parent == kNoBlossom);
    node(child).parent = id;
  }
  nodes_.push_back(std::move(nb));
  return id;
}

void BlossomArena::collect_vertices(BlossomId b, std::vector<Vertex>& out) const {
  const BlossomNode& nb = node(b);
  if (nb.is_trivial()) {
    out.push_back(nb.vert);
    return;
  }
  for (BlossomId child : nb.cycle) collect_vertices(child, out);
}

std::vector<Vertex> BlossomArena::vertices(BlossomId b) const {
  std::vector<Vertex> out;
  collect_vertices(b, out);
  return out;
}

std::int64_t BlossomArena::vertex_count(BlossomId b) const {
  const BlossomNode& nb = node(b);
  if (nb.is_trivial()) return 1;
  std::int64_t total = 0;
  for (BlossomId child : nb.cycle) total += vertex_count(child);
  return total;
}

std::size_t BlossomArena::child_index_containing(BlossomId b, Vertex v) const {
  // Walk up from v's trivial blossom until the parent is b itself.
  BlossomId cur = trivial(v);
  while (node(cur).parent != b) {
    cur = node(cur).parent;
    BMF_ASSERT_MSG(cur != kNoBlossom, "vertex not contained in blossom");
  }
  const auto& cycle = node(b).cycle;
  const auto it = std::find(cycle.begin(), cycle.end(), cur);
  BMF_ASSERT(it != cycle.end());
  return static_cast<std::size_t>(it - cycle.begin());
}

std::vector<Vertex> BlossomArena::even_path(BlossomId b, Vertex target) const {
  const BlossomNode& nb = node(b);
  if (nb.is_trivial()) {
    BMF_ASSERT(nb.vert == target);
    return {target};
  }
  const std::size_t k1 = nb.cycle.size();  // k + 1 children, k1 odd
  const std::size_t i = child_index_containing(b, target);
  if (i == 0) return even_path(nb.cycle[0], target);

  // Traversal through an intermediate child from entry vertex x to exit
  // vertex y; exactly one of them is the child's base (the matched cycle
  // edge attaches at the base).
  auto through = [&](BlossomId child, Vertex x, Vertex y, std::vector<Vertex>& out) {
    const Vertex cb = node(child).base;
    BMF_ASSERT_MSG(x == cb || y == cb, "cycle edge not anchored at child base");
    std::vector<Vertex> seg;
    if (x == cb) {
      seg = even_path(child, y);
    } else {
      seg = even_path(child, x);
      std::reverse(seg.begin(), seg.end());
    }
    out.insert(out.end(), seg.begin(), seg.end());
  };

  std::vector<Vertex> out;
  if (i % 2 == 0) {
    // Forward: children 0, 1, ..., i via edges e_0 .. e_{i-1} (i edges; i even
    // keeps the total path length even). Edge e_j = {a in cycle[j], b in
    // cycle[j+1]}.
    auto exit_of = [&](std::size_t j) { return nb.cycle_edges[j].u; };
    auto entry_of = [&](std::size_t j) { return nb.cycle_edges[j].v; };
    // A_0: from base(b) to the e_0 endpoint inside A_0.
    {
      std::vector<Vertex> seg = even_path(nb.cycle[0], exit_of(0));
      out.insert(out.end(), seg.begin(), seg.end());
    }
    for (std::size_t j = 1; j < i; ++j)
      through(nb.cycle[j], entry_of(j - 1), exit_of(j), out);
    // Target child entered at its base via the matched edge e_{i-1}.
    BMF_ASSERT(entry_of(i - 1) == node(nb.cycle[i]).base);
    std::vector<Vertex> seg = even_path(nb.cycle[i], target);
    out.insert(out.end(), seg.begin(), seg.end());
  } else {
    // Backward: children 0, k, k-1, ..., i via edges e_k, e_{k-1}, ..., e_i
    // (k+1-i edges; even because k is even and i odd). Traversing e_j from
    // cycle[j+1] down to cycle[j]: leave at e_j.v, arrive at e_j.u.
    const std::size_t k = k1 - 1;
    {
      // A_0: from base(b) to the e_k endpoint inside A_0 (e_k = {a in A_k, b in A_0}).
      std::vector<Vertex> seg = even_path(nb.cycle[0], nb.cycle_edges[k].v);
      out.insert(out.end(), seg.begin(), seg.end());
    }
    for (std::size_t j = k; j > i; --j)
      through(nb.cycle[j], nb.cycle_edges[j].u, nb.cycle_edges[j - 1].v, out);
    // Target child entered at its base via the matched edge e_i.
    BMF_ASSERT(nb.cycle_edges[i].u == node(nb.cycle[i]).base);
    std::vector<Vertex> seg = even_path(nb.cycle[i], target);
    out.insert(out.end(), seg.begin(), seg.end());
  }
  BMF_ASSERT(out.front() == nb.base && out.back() == target);
  BMF_ASSERT(out.size() % 2 == 1);  // even number of edges
  return out;
}

int BlossomArena::depth(Vertex v) const {
  int d = 0;
  BlossomId b = trivial(v);
  while (node(b).parent != kNoBlossom) {
    b = node(b).parent;
    ++d;
  }
  return d;
}

}  // namespace bmf
