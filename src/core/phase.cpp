#include "core/phase.hpp"

#include "util/assert.hpp"

namespace bmf {
namespace {

void accumulate(OpCounts& into, const OpCounts& from) {
  into.overtake_unvisited += from.overtake_unvisited;
  into.overtake_same += from.overtake_same;
  into.overtake_steal += from.overtake_steal;
  into.contracts += from.contracts;
  into.augments += from.augments;
  into.backtracks += from.backtracks;
}

}  // namespace

BoostOutcome PhaseEngine::run(Matching& m, PassBundleDriver& driver) const {
  BMF_REQUIRE(m.num_vertices() == g_.num_vertices(),
              "PhaseEngine::run: matching size mismatch");
  BoostOutcome out;
  for (double h = CoreConfig::first_scale();; h /= 2.0) {
    ++out.scales;
    const std::int64_t hold_limit = cfg_.hold_limit(h);
    const std::int64_t bundle_cap = cfg_.pass_bundle_cap(h);
    const std::int64_t phase_cap = cfg_.phase_cap(h);
    std::int64_t idle_phases = 0;

    for (std::int64_t phase = 0; phase < phase_cap; ++phase) {
      StructureForest forest(g_, m, cfg_);
      forest.init_phase();
      driver.begin_phase(forest);

      bool quiesced = false;
      for (std::int64_t tau = 0; tau < bundle_cap; ++tau) {
        ++out.pass_bundles;
        forest.begin_pass_bundle(hold_limit);
        driver.extend_active_path(forest);
        driver.contract_and_augment(forest);
        forest.backtrack_stuck();
        if (cfg_.check_invariants) forest.check_invariants();
        if (forest.ops_this_bundle() == 0) {
          quiesced = true;
          break;
        }
      }
      ++out.phases;
      accumulate(out.ops, forest.totals());

      // Algorithm 1 lines 5-6: restore removed vertices (implicit — the next
      // phase rebuilds the forest) and augment along the recorded disjoint
      // paths.
      const auto& paths = forest.recorded_paths();
      for (const auto& p : paths) m.augment(p);
      out.augmenting_paths += static_cast<std::int64_t>(paths.size());

      if (paths.empty()) {
        if (!forest.hold_seen() && quiesced && driver.exhaustive()) {
          out.certified = true;
          return out;
        }
        if (++idle_phases >= cfg_.idle_phase_limit) break;
      } else {
        idle_phases = 0;
      }
    }
    if (h <= cfg_.last_scale()) break;
  }
  return out;
}

}  // namespace bmf
