#include "core/oracle.hpp"

#include <numeric>

#include "matching/blossom_exact.hpp"

namespace bmf {

OracleMatching greedy_oracle_matching(const OracleGraph& h) {
  std::vector<std::int32_t> mate(static_cast<std::size_t>(h.n), -1);
  OracleMatching out;
  for (const auto& [u, v] : h.edges) {
    if (u == v) continue;
    if (mate[static_cast<std::size_t>(u)] == -1 &&
        mate[static_cast<std::size_t>(v)] == -1) {
      mate[static_cast<std::size_t>(u)] = v;
      mate[static_cast<std::size_t>(v)] = u;
      out.emplace_back(u, v);
    }
  }
  return out;
}

OracleMatching GreedyMatchingOracle::find_impl(const OracleGraph& h) {
  return greedy_oracle_matching(h);
}

OracleMatching RandomGreedyMatchingOracle::find_impl(const OracleGraph& h) {
  std::vector<std::size_t> order(h.edges.size());
  std::iota(order.begin(), order.end(), 0);
  rng_.shuffle(order);
  std::vector<std::int32_t> mate(static_cast<std::size_t>(h.n), -1);
  OracleMatching out;
  for (std::size_t i : order) {
    const auto& [u, v] = h.edges[i];
    if (u == v) continue;
    if (mate[static_cast<std::size_t>(u)] == -1 &&
        mate[static_cast<std::size_t>(v)] == -1) {
      mate[static_cast<std::size_t>(u)] = v;
      mate[static_cast<std::size_t>(v)] = u;
      out.emplace_back(u, v);
    }
  }
  return out;
}

OracleMatching ExactMatchingOracle::find_impl(const OracleGraph& h) {
  GraphBuilder b(h.n);
  for (const auto& [u, v] : h.edges) b.add_edge(u, v);
  const Graph g = b.build();
  const Matching m = blossom_maximum_matching(g);
  OracleMatching out;
  for (const Edge& e : m.edge_list()) out.emplace_back(e.u, e.v);
  return out;
}

}  // namespace bmf
