#include "core/oracle.hpp"

#include <numeric>
#include <utility>

#include "matching/blossom_exact.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

OracleGraph to_oracle_graph(const Graph& g) {
  OracleGraph h;
  h.n = g.num_vertices();
  for (const Edge& e : g.edges()) h.edges.emplace_back(e.u, e.v);
  return h;
}

OracleMatching greedy_oracle_matching(const OracleGraph& h) {
  std::vector<std::int32_t> mate(static_cast<std::size_t>(h.n), -1);
  OracleMatching out;
  for (const auto& [u, v] : h.edges) {
    if (u == v) continue;
    if (mate[static_cast<std::size_t>(u)] == -1 &&
        mate[static_cast<std::size_t>(v)] == -1) {
      mate[static_cast<std::size_t>(u)] = v;
      mate[static_cast<std::size_t>(v)] = u;
      out.emplace_back(u, v);
    }
  }
  return out;
}

OracleMatching GreedyMatchingOracle::find_impl(const OracleGraph& h) {
  return greedy_oracle_matching(h);
}

namespace {

/// Minimum shuffle-and-scan work (edges x samples) before best-of-k sampling
/// fans out; below it the pool round-trip dominates the sampling itself.
constexpr std::int64_t kParallelSampleMinWork = 4096;

/// Greedy maximal matching over the edge permutation drawn from `rng`.
OracleMatching random_greedy_sample(const OracleGraph& h, Rng& rng) {
  std::vector<std::size_t> order(h.edges.size());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  std::vector<std::int32_t> mate(static_cast<std::size_t>(h.n), -1);
  OracleMatching out;
  for (std::size_t i : order) {
    const auto& [u, v] = h.edges[i];
    if (u == v) continue;
    if (mate[static_cast<std::size_t>(u)] == -1 &&
        mate[static_cast<std::size_t>(v)] == -1) {
      mate[static_cast<std::size_t>(u)] = v;
      mate[static_cast<std::size_t>(v)] = u;
      out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace

OracleMatching RandomGreedyMatchingOracle::find_impl(const OracleGraph& h) {
  return random_greedy_sample(h, rng_);
}

BestOfKRandomGreedyOracle::BestOfKRandomGreedyOracle(std::uint64_t seed,
                                                     int samples, int threads)
    : rng_(seed), samples_(samples), threads_(threads) {
  BMF_REQUIRE(samples >= 1, "BestOfKRandomGreedyOracle: need >= 1 sample");
}

OracleMatching BestOfKRandomGreedyOracle::find_impl(const OracleGraph& h) {
  // Per-sample streams are split serially from the oracle's stream, so the
  // oracle's own stream advances identically regardless of fan-out.
  std::vector<Rng> sample_rng;
  sample_rng.reserve(static_cast<std::size_t>(samples_));
  for (int s = 0; s < samples_; ++s) sample_rng.push_back(rng_.split());

  std::vector<OracleMatching> slots(static_cast<std::size_t>(samples_));
  // Output-invariant gate: the per-sample rngs above were split serially, so
  // serial and parallel sampling see identical streams.
  const int sample_threads = gated_threads(
      static_cast<std::int64_t>(h.edges.size()) * samples_,
      kParallelSampleMinWork, threads_);
  parallel_for_threads(sample_threads, samples_, [&](std::int64_t s) {
    slots[static_cast<std::size_t>(s)] =
        random_greedy_sample(h, sample_rng[static_cast<std::size_t>(s)]);
  });

  std::size_t best = 0;
  for (std::size_t s = 1; s < slots.size(); ++s)
    if (slots[s].size() > slots[best].size()) best = s;
  return std::move(slots[best]);
}

OracleMatching ExactMatchingOracle::find_impl(const OracleGraph& h) {
  GraphBuilder b(h.n);
  for (const auto& [u, v] : h.edges) b.add_edge(u, v);
  const Graph g = b.build();
  const Matching m = blossom_maximum_matching(g);
  OracleMatching out;
  for (const Edge& e : m.edge_list()) out.emplace_back(e.u, e.v);
  return out;
}

}  // namespace bmf
