#pragma once

/// Laminar blossom family with alternating-tree bookkeeping (Section 3.2).
///
/// A blossom is either trivial (a single vertex; ids [0, n) coincide with
/// vertex ids) or composite: an odd cycle of child blossoms A_0..A_k joined
/// by cycle edges e_0..e_k where e_i connects A_i to A_{i+1 mod k+1} and the
/// odd-indexed edges are matched (Definition 3.4); the base of the composite
/// is the base of A_0.
///
/// Root blossoms additionally carry the alternating-tree fields of the
/// structure they belong to (tree parent/children, the G-edge to the parent,
/// the inner/outer flag and the owning structure id). `even_path` implements
/// Lemma 3.5: the even-length alternating path inside E_B from base(B) to any
/// vertex of B.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace bmf {

using BlossomId = std::int32_t;
using StructureId = std::int32_t;
inline constexpr BlossomId kNoBlossom = -1;
inline constexpr StructureId kNoStructure = -1;

struct BlossomNode {
  // --- laminar-family fields ---
  Vertex vert = kNoVertex;            ///< the vertex, for trivial blossoms
  BlossomId parent = kNoBlossom;      ///< enclosing blossom
  Vertex base = kNoVertex;            ///< the vertex left unmatched inside E_B
  std::vector<BlossomId> cycle;       ///< composite: odd cycle of children
  /// cycle_edges[j] = {a in cycle[j], b in cycle[j+1 mod]}
  std::vector<Edge> cycle_edges;

  // --- alternating-tree fields (meaningful for root blossoms only) ---
  BlossomId tree_parent = kNoBlossom;
  std::vector<BlossomId> tree_children;
  /// G-edge connecting this root blossom to its tree parent:
  /// pe_u lies in the parent blossom, pe_v in this one. For outer blossoms the
  /// edge is matched (pe_v == base); for inner ones it is unmatched.
  Vertex pe_u = kNoVertex, pe_v = kNoVertex;
  StructureId structure = kNoStructure;
  bool outer = false;

  [[nodiscard]] bool is_trivial() const { return vert != kNoVertex; }
};

class BlossomArena {
 public:
  /// Re-initializes to n trivial blossoms (called at the start of each phase).
  void reset(Vertex n);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] BlossomId num_blossoms() const {
    return static_cast<BlossomId>(nodes_.size());
  }

  [[nodiscard]] const BlossomNode& node(BlossomId b) const {
    return nodes_[static_cast<std::size_t>(b)];
  }
  [[nodiscard]] BlossomNode& node(BlossomId b) {
    return nodes_[static_cast<std::size_t>(b)];
  }

  /// The trivial blossom of vertex v (== v).
  [[nodiscard]] static BlossomId trivial(Vertex v) { return v; }

  /// The root blossom containing v (Omega(v) of the paper).
  [[nodiscard]] BlossomId omega(Vertex v) const;

  /// The root blossom enclosing b (b itself if it is a root).
  [[nodiscard]] BlossomId root_of(BlossomId b) const;

  [[nodiscard]] Vertex base(BlossomId b) const { return node(b).base; }

  /// Creates a composite blossom from an odd cycle of current root blossoms.
  /// Sets the children's laminar parent and the new blossom's base; tree
  /// fields are left for the caller to wire.
  BlossomId make_composite(std::vector<BlossomId> cycle,
                           std::vector<Edge> cycle_edges);

  /// Appends all G-vertices contained in b to out.
  void collect_vertices(BlossomId b, std::vector<Vertex>& out) const;
  [[nodiscard]] std::vector<Vertex> vertices(BlossomId b) const;
  [[nodiscard]] std::int64_t vertex_count(BlossomId b) const;

  /// Lemma 3.5: even-length alternating path (inside E_B) from base(b) to
  /// target, returned as the inclusive vertex sequence base .. target.
  [[nodiscard]] std::vector<Vertex> even_path(BlossomId b, Vertex target) const;

  /// Nesting depth of the laminar family above v's trivial blossom.
  [[nodiscard]] int depth(Vertex v) const;

 private:
  /// Index i of the cycle child of b that contains v.
  [[nodiscard]] std::size_t child_index_containing(BlossomId b, Vertex v) const;

  Vertex n_ = 0;
  std::vector<BlossomNode> nodes_;
};

}  // namespace bmf
