#pragma once

/// The Theta(1)-approximate matching oracle `A_matching` (Definition 5.1).
///
/// The boosting framework never looks inside the oracle; it only counts
/// invocations — the quantity Table 1 of the paper is about. Oracles receive
/// small derived graphs (H' of Definition 5.4, H'_s of Definition 5.8) as
/// plain edge lists over compact vertex ids.

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"

namespace bmf {

/// A derived graph handed to the oracle: `n` vertices, simple edge list.
struct OracleGraph {
  std::int32_t n = 0;
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
};

/// The whole input graph as an oracle instance (tests and benches hand full
/// graphs to A_matching implementations directly).
[[nodiscard]] OracleGraph to_oracle_graph(const Graph& g);

using OracleMatching = std::vector<std::pair<std::int32_t, std::int32_t>>;

class MatchingOracle {
 public:
  virtual ~MatchingOracle() = default;

  /// Returns a c-approximate maximum matching of h (c = approx_factor()).
  [[nodiscard]] OracleMatching find_matching(const OracleGraph& h) {
    ++calls_;
    vertices_ += h.n;
    edges_ += static_cast<std::int64_t>(h.edges.size());
    return find_impl(h);
  }

  [[nodiscard]] virtual double approx_factor() const = 0;

  [[nodiscard]] std::int64_t calls() const { return calls_; }
  [[nodiscard]] std::int64_t total_vertices() const { return vertices_; }
  [[nodiscard]] std::int64_t total_edges() const { return edges_; }
  void reset_counters() { calls_ = vertices_ = edges_ = 0; }

 protected:
  virtual OracleMatching find_impl(const OracleGraph& h) = 0;

 private:
  std::int64_t calls_ = 0;
  std::int64_t vertices_ = 0;
  std::int64_t edges_ = 0;
};

/// Greedy maximal matching in edge order; c = 2.
class GreedyMatchingOracle final : public MatchingOracle {
 public:
  [[nodiscard]] double approx_factor() const override { return 2.0; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override;
};

/// Greedy maximal matching over a random edge permutation; c = 2.
class RandomGreedyMatchingOracle final : public MatchingOracle {
 public:
  explicit RandomGreedyMatchingOracle(std::uint64_t seed) : rng_(seed) {}
  [[nodiscard]] double approx_factor() const override { return 2.0; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override;

 private:
  Rng rng_;
};

/// Best of k independent random-greedy samples; still c = 2 in the worst
/// case, but empirically much closer to maximum already for small k. The k
/// samples are independent repetitions with per-sample Rng streams split
/// from the oracle's seed, fanned out across the thread pool; the largest
/// sample wins, ties breaking to the lowest sample index, so the answer is
/// bit-identical at any thread count.
class BestOfKRandomGreedyOracle final : public MatchingOracle {
 public:
  /// threads: 0 = hardware concurrency, 1 = serial.
  BestOfKRandomGreedyOracle(std::uint64_t seed, int samples, int threads = 0);
  [[nodiscard]] double approx_factor() const override { return 2.0; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override;

 private:
  Rng rng_;
  int samples_;
  int threads_;
};

/// Exact maximum matching (Edmonds); c = 1. Used in ablations and tests.
class ExactMatchingOracle final : public MatchingOracle {
 public:
  [[nodiscard]] double approx_factor() const override { return 1.0; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override;
};

/// Greedy maximal matching as a free function over an OracleGraph.
[[nodiscard]] OracleMatching greedy_oracle_matching(const OracleGraph& h);

}  // namespace bmf
