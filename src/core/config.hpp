#pragma once

/// Configuration shared by the phase engine and the framework simulations.
///
/// The paper states its schedules with worst-case constants (144/(h*eps)
/// phases of 72/(h*eps) pass-bundles per scale, 22*c*ln(1/eps) oracle
/// iterations per stage). The engine implements the exact control structure
/// but lets the iteration schedule be adaptive:
///
///  * kUntilEmpty runs oracle iterations until the oracle finds an empty
///    matching. This removes "contaminated" arcs entirely (Section 5.4 notes
///    contamination is an analysis device only, and the dynamic
///    implementation does not mark it).
///  * kPaperBound runs the fixed 22*c*ln(1/eps) iterations of Algorithms 4/5.
///
/// Phases terminate early when a pass-bundle performs no operation (every
/// remaining bundle would be a no-op, so skipping them is an exact
/// simulation). A run finishes with a certificate when a phase completes
/// quiescently with no augmentation found, no structure ever on hold and no
/// truncated oracle loop: by Theorem B.4 the graph then has no augmenting
/// path of length <= l_max = 3/eps, which implies a (1+eps)-approximation.

#include <cmath>
#include <cstdint>

#include "util/assert.hpp"

namespace bmf {

enum class IterationMode {
  kUntilEmpty,  ///< iterate oracle calls until it returns an empty matching
  kPaperBound,  ///< run the paper's fixed 22*c*ln(1/eps) iterations
};

struct CoreConfig {
  /// Target approximation slack; the result is a (1+eps)-approximate MCM.
  double eps = 0.25;

  IterationMode iteration_mode = IterationMode::kUntilEmpty;

  /// Stop a scale after this many consecutive phases with zero augmentations.
  int idle_phase_limit = 2;

  /// Hard caps; 0 means "use the paper's scheduled value".
  std::int64_t max_phases_per_scale = 64;
  std::int64_t max_pass_bundles = 0;

  /// Run heavyweight structural invariant checks after every operation batch.
  bool check_invariants = false;

  /// Simulate Algorithm 5 without the label-stage split (the [FMU22]-style
  /// single derived graph over all type-3 arcs). Used by baselines/ablation.
  bool stage_split = true;

  std::uint64_t seed = 1;

  /// Thread-pool fan-out for the parallel loops that take their thread count
  /// from this config: independent boosting repetitions, oracle sampling,
  /// simulator rounds, and the FrameworkDriver's per-structure H'/H'_s
  /// discovery (the inner loop of every boost and of every Theorem 6.2
  /// rebuild). 0 = std::thread::hardware_concurrency(), 1 = serial. Every
  /// parallel path follows the deterministic-merge discipline of
  /// util/thread_pool.hpp, so for a fixed `seed` the results are
  /// bit-identical at any thread count.
  int threads = 0;

  /// --- derived quantities (Section 4) ---

  [[nodiscard]] int ell_max() const {
    BMF_REQUIRE(eps > 0.0 && eps <= 1.0, "CoreConfig: eps must be in (0, 1]");
    return std::max(1, static_cast<int>(std::ceil(3.0 / eps)));
  }

  /// Coarsest scale.
  [[nodiscard]] static double first_scale() { return 0.5; }

  /// Finest scale: eps^2 / 64, but never below 1/2^30 for sanity.
  [[nodiscard]] double last_scale() const {
    return std::max(eps * eps / 64.0, 1.0 / (1 << 30));
  }

  /// Structure-size threshold for marking "on hold" at scale h.
  [[nodiscard]] std::int64_t hold_limit(double h) const {
    return static_cast<std::int64_t>(std::ceil(6.0 / h)) + 1;
  }

  /// Paper-scheduled pass-bundles per phase at scale h.
  [[nodiscard]] std::int64_t scheduled_pass_bundles(double h) const {
    return static_cast<std::int64_t>(std::ceil(72.0 / (h * eps)));
  }

  /// Paper-scheduled phases per scale at scale h.
  [[nodiscard]] std::int64_t scheduled_phases(double h) const {
    return static_cast<std::int64_t>(std::ceil(144.0 / (h * eps)));
  }

  /// Paper-scheduled oracle iterations per simulation loop (Algorithms 4, 5)
  /// for a c-approximate oracle.
  [[nodiscard]] std::int64_t scheduled_iterations(double c) const {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::ceil(22.0 * c * std::log(1.0 / eps))));
  }

  [[nodiscard]] std::int64_t pass_bundle_cap(double h) const {
    const std::int64_t scheduled = scheduled_pass_bundles(h);
    return max_pass_bundles > 0 ? std::min(max_pass_bundles, scheduled) : scheduled;
  }

  [[nodiscard]] std::int64_t phase_cap(double h) const {
    const std::int64_t scheduled = scheduled_phases(h);
    return max_phases_per_scale > 0 ? std::min(max_phases_per_scale, scheduled)
                                    : scheduled;
  }
};

}  // namespace bmf
