#include "core/structures.hpp"

#include <algorithm>
#include <deque>

#include "util/assert.hpp"

namespace bmf {

StructureForest::StructureForest(const Graph& g, const Matching& m,
                                 const CoreConfig& cfg)
    : g_(g), m_(m), cfg_(cfg), lmax_(cfg.ell_max()) {
  BMF_REQUIRE(m.num_vertices() == g.num_vertices(),
              "StructureForest: matching/graph size mismatch");
}

void StructureForest::init_phase() {
  const Vertex n = g_.num_vertices();
  arena_.reset(n);
  structures_.clear();
  paths_.clear();
  vert_struct_.assign(static_cast<std::size_t>(n), kNoStructure);
  removed_.assign(static_cast<std::size_t>(n), 0);
  lab_.assign(static_cast<std::size_t>(n), 0);
  totals_ = OpCounts{};
  bundle_ops_ = 0;
  hold_seen_ = false;

  for (Vertex v = 0; v < n; ++v)
    if (!m_.is_free(v)) lab_[static_cast<std::size_t>(v)] = lmax_ + 1;

  for (Vertex v = 0; v < n; ++v) {
    if (!m_.is_free(v)) continue;
    const auto sid = static_cast<StructureId>(structures_.size());
    StructureInfo si;
    si.alpha = v;
    si.root = BlossomArena::trivial(v);
    si.working = si.root;
    si.size = 1;
    si.members = {v};
    structures_.push_back(std::move(si));
    BlossomNode& nb = arena_.node(BlossomArena::trivial(v));
    nb.structure = sid;
    nb.outer = true;
    vert_struct_[static_cast<std::size_t>(v)] = sid;
  }
}

void StructureForest::begin_pass_bundle(std::int64_t hold_limit) {
  for (StructureInfo& s : structures_) {
    if (s.removed) continue;
    s.on_hold = s.size >= hold_limit;
    if (s.on_hold) hold_seen_ = true;
    s.modified = false;
    s.extended = false;
  }
  bundle_ops_ = 0;
}

void StructureForest::mark_extended(StructureId s) {
  structures_[static_cast<std::size_t>(s)].extended = true;
  structures_[static_cast<std::size_t>(s)].modified = true;
}

void StructureForest::mark_modified(StructureId s) {
  structures_[static_cast<std::size_t>(s)].modified = true;
}

bool StructureForest::is_outer(Vertex v) const {
  if (structure_of(v) == kNoStructure) return false;
  return arena_.node(arena_.omega(v)).outer;
}

bool StructureForest::is_inner(Vertex v) const {
  if (structure_of(v) == kNoStructure) return false;
  return !arena_.node(arena_.omega(v)).outer;
}

int StructureForest::outer_level(BlossomId b) const {
  const BlossomNode& nb = arena_.node(b);
  BMF_ASSERT(nb.outer && nb.structure != kNoStructure);
  if (nb.tree_parent == kNoBlossom) return 0;
  // The matched arc entering b from its parent is (pe_u, base); its label is
  // stored at its tail pe_u.
  return lab_[static_cast<std::size_t>(nb.pe_u)];
}

std::vector<BlossomId> StructureForest::active_path(StructureId s) const {
  const StructureInfo& si = structures_[static_cast<std::size_t>(s)];
  std::vector<BlossomId> path;
  if (si.removed || si.working == kNoBlossom) return path;
  for (BlossomId b = si.working; b != kNoBlossom; b = arena_.node(b).tree_parent)
    path.push_back(b);
  std::reverse(path.begin(), path.end());
  BMF_ASSERT(path.front() == si.root);
  return path;
}

bool StructureForest::is_tree_ancestor(BlossomId anc, BlossomId b) const {
  for (BlossomId cur = b; cur != kNoBlossom; cur = arena_.node(cur).tree_parent)
    if (cur == anc) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Overtake (Section 4.5.3)
// ---------------------------------------------------------------------------

bool StructureForest::can_overtake(Vertex u, Vertex v, int k) const {
  if (u == v || is_removed(u) || is_removed(v)) return false;
  const StructureId su = structure_of(u);
  if (su == kNoStructure) return false;
  const StructureInfo& a = structures_[static_cast<std::size_t>(su)];
  const BlossomId bu = arena_.omega(u);
  // (P1) Omega(u) is the working vertex; context gating: Overtake only runs
  // inside Extend-Active-Path, which skips on-hold and already-extended
  // structures (Section 4.6 prose).
  if (a.working != bu || a.on_hold || a.extended) return false;
  // g must be an unmatched arc and a = (v, mate(v)) must exist and be
  // non-blossom (v a trivial root, checked below).
  if (m_.mate(u) == v) return false;
  const Vertex t = m_.mate(v);
  if (t == kNoVertex) return false;
  // (P3)
  if (k >= lab_[static_cast<std::size_t>(v)] || k < 1) return false;
  // (P2) Omega(v) is unvisited or an inner vertex.
  const StructureId sv = structure_of(v);
  if (sv == kNoStructure) return !is_removed(t);
  const BlossomId bv = arena_.omega(v);
  if (arena_.node(bv).outer) return false;
  BMF_ASSERT_MSG(bv == BlossomArena::trivial(v), "inner root blossom not trivial");
  // (P2) within the same structure, Omega(v) must not be an ancestor of
  // Omega(u); label monotonicity along the active path makes this redundant
  // for stage-built arcs, but the check keeps the operation safe for any
  // caller.
  if (sv == su && is_tree_ancestor(bv, bu)) return false;
  return true;
}

void StructureForest::overtake(Vertex u, Vertex v, int k) {
  BMF_ASSERT(can_overtake(u, v, k));
  const StructureId su = structure_of(u);
  StructureInfo& a = structures_[static_cast<std::size_t>(su)];
  const BlossomId bu = arena_.omega(u);
  const Vertex t = m_.mate(v);
  const StructureId sv = structure_of(v);

  if (sv == kNoStructure) {
    // Case 1: the matched arc (v, t) is unvisited. Both v and t join S_alpha
    // as fresh trivial blossoms; v becomes inner, t outer and the new working
    // vertex.
    const BlossomId bv = BlossomArena::trivial(v);
    const BlossomId bt = BlossomArena::trivial(t);
    BlossomNode& nv = arena_.node(bv);
    BlossomNode& nt = arena_.node(bt);
    nv.tree_parent = bu;
    nv.pe_u = u;
    nv.pe_v = v;
    nv.structure = su;
    nv.outer = false;
    nv.tree_children = {bt};
    nt.tree_parent = bv;
    nt.pe_u = v;
    nt.pe_v = t;
    nt.structure = su;
    nt.outer = true;
    nt.tree_children.clear();
    arena_.node(bu).tree_children.push_back(bv);
    vert_struct_[static_cast<std::size_t>(v)] = su;
    vert_struct_[static_cast<std::size_t>(t)] = su;
    a.members.push_back(v);
    a.members.push_back(t);
    a.size += 2;
    lab_[static_cast<std::size_t>(v)] = k;
    a.working = bt;
    mark_extended(su);
    ++totals_.overtake_unvisited;
    ++bundle_ops_;
    return;
  }

  const BlossomId bv = BlossomArena::trivial(v);
  BlossomNode& nv = arena_.node(bv);
  BMF_ASSERT(nv.tree_children.size() == 1);
  const BlossomId tprime = nv.tree_children.front();

  if (sv == su) {
    // Case 2.1: re-assign the parent of v' as u' within the same structure.
    detach_from_parent(bv);
    nv.tree_parent = bu;
    nv.pe_u = u;
    nv.pe_v = v;
    arena_.node(bu).tree_children.push_back(bv);
    lab_[static_cast<std::size_t>(v)] = k;
    a.working = tprime;
    mark_extended(su);
    ++totals_.overtake_same;
    ++bundle_ops_;
    return;
  }

  // Case 2.2: steal the subtree rooted at v' from S_beta. Following the
  // Section 4.5 preamble and Lemma B.1, the overtaker S_alpha is marked
  // extended and the victim S_beta modified only (the Case 2.2 sentence in
  // the paper swaps them; the rest of the paper relies on this reading).
  StructureInfo& b = structures_[static_cast<std::size_t>(sv)];
  const bool working_moved =
      b.working != kNoBlossom && is_tree_ancestor(bv, b.working);
  const BlossomId old_parent = nv.tree_parent;
  BMF_ASSERT(old_parent != kNoBlossom && arena_.node(old_parent).outer);
  detach_from_parent(bv);
  move_subtree(bv, sv, su);
  nv.tree_parent = bu;
  nv.pe_u = u;
  nv.pe_v = v;
  arena_.node(bu).tree_children.push_back(bv);
  lab_[static_cast<std::size_t>(v)] = k;
  if (working_moved) {
    // Step 5: the victim's working vertex travels with the subtree.
    a.working = b.working;
    b.working = old_parent;
  } else {
    a.working = tprime;
  }
  mark_extended(su);
  mark_modified(sv);
  ++totals_.overtake_steal;
  ++bundle_ops_;
}

void StructureForest::detach_from_parent(BlossomId b) {
  BlossomNode& nb = arena_.node(b);
  if (nb.tree_parent == kNoBlossom) return;
  auto& siblings = arena_.node(nb.tree_parent).tree_children;
  const auto it = std::find(siblings.begin(), siblings.end(), b);
  BMF_ASSERT(it != siblings.end());
  siblings.erase(it);
  nb.tree_parent = kNoBlossom;
}

void StructureForest::move_subtree(BlossomId sub_root, StructureId from,
                                   StructureId to) {
  StructureInfo& src = structures_[static_cast<std::size_t>(from)];
  StructureInfo& dst = structures_[static_cast<std::size_t>(to)];
  std::int64_t moved = 0;
  std::deque<BlossomId> queue{sub_root};
  std::vector<Vertex> verts;
  while (!queue.empty()) {
    const BlossomId b = queue.front();
    queue.pop_front();
    arena_.node(b).structure = to;
    verts.clear();
    arena_.collect_vertices(b, verts);
    for (Vertex w : verts) {
      vert_struct_[static_cast<std::size_t>(w)] = to;
      dst.members.push_back(w);
      ++moved;
    }
    for (BlossomId c : arena_.node(b).tree_children) queue.push_back(c);
  }
  std::erase_if(src.members, [&](Vertex w) {
    return vert_struct_[static_cast<std::size_t>(w)] != from;
  });
  src.size -= moved;
  dst.size += moved;
  BMF_ASSERT(src.size == static_cast<std::int64_t>(src.members.size()));
}

// ---------------------------------------------------------------------------
// Contract (Section 4.5.2)
// ---------------------------------------------------------------------------

bool StructureForest::can_contract(Vertex u, Vertex v) const {
  if (u == v || is_removed(u) || is_removed(v)) return false;
  const StructureId su = structure_of(u);
  if (su == kNoStructure || structure_of(v) != su) return false;
  const StructureInfo& a = structures_[static_cast<std::size_t>(su)];
  const BlossomId bu = arena_.omega(u);
  if (a.working != bu) return false;
  const BlossomId bv = arena_.omega(v);
  if (bv == bu || !arena_.node(bv).outer) return false;
  if (m_.mate(u) == v) return false;
  return true;
}

void StructureForest::contract(Vertex u, Vertex v) {
  BMF_ASSERT(can_contract(u, v));
  const StructureId su = structure_of(u);
  StructureInfo& a = structures_[static_cast<std::size_t>(su)];
  const BlossomId bu = arena_.omega(u);
  const BlossomId bv = arena_.omega(v);

  // Find the tree LCA of bu and bv (Lemma 3.7: T' + {g'} has a unique
  // blossom, the tree cycle closed by g').
  std::vector<BlossomId> anc_u;
  for (BlossomId b = bu; b != kNoBlossom; b = arena_.node(b).tree_parent)
    anc_u.push_back(b);
  auto on_u_path = [&](BlossomId b) {
    return std::find(anc_u.begin(), anc_u.end(), b) != anc_u.end();
  };
  BlossomId lca = kNoBlossom;
  std::vector<BlossomId> v_side;  // bv, ..., child-of-lca (bottom-up)
  for (BlossomId b = bv; b != kNoBlossom; b = arena_.node(b).tree_parent) {
    if (on_u_path(b)) {
      lca = b;
      break;
    }
    v_side.push_back(b);
  }
  BMF_ASSERT(lca != kNoBlossom);
  std::vector<BlossomId> u_side;  // bu, ..., child-of-lca (bottom-up)
  for (BlossomId b = bu; b != lca; b = arena_.node(b).tree_parent)
    u_side.push_back(b);

  // Assemble the odd cycle A_0 = lca, (lca -> bu), g, (bv -> lca); see
  // Definition 3.4 for the matched/unmatched pattern the edges must follow.
  std::vector<BlossomId> cycle{lca};
  std::vector<Edge> cycle_edges;
  for (auto it = u_side.rbegin(); it != u_side.rend(); ++it) {
    const BlossomNode& nb = arena_.node(*it);
    cycle_edges.push_back({nb.pe_u, nb.pe_v});  // parent-side first
    cycle.push_back(*it);
  }
  cycle_edges.push_back({u, v});  // the contracting arc e_p
  for (BlossomId b : v_side) {
    cycle.push_back(b);
    const BlossomNode& nb = arena_.node(b);
    cycle_edges.push_back({nb.pe_v, nb.pe_u});  // child-side first going up
  }
  BMF_ASSERT(cycle.size() == cycle_edges.size());
  BMF_ASSERT(cycle.size() % 2 == 1 && cycle.size() >= 3);

  // Stash tree linkage of the lca before it stops being a root blossom.
  const BlossomId lca_parent = arena_.node(lca).tree_parent;
  const Vertex lca_pe_u = arena_.node(lca).pe_u;
  const Vertex lca_pe_v = arena_.node(lca).pe_v;

  // Collect hanging tree children of all cycle members (children that are not
  // themselves on the cycle) before rewiring.
  if (lca_parent != kNoBlossom) detach_from_parent(lca);
  const BlossomId nb_id = arena_.make_composite(cycle, std::move(cycle_edges));
  std::vector<BlossomId> hanging;
  for (BlossomId cb : arena_.node(nb_id).cycle) {
    for (BlossomId ch : arena_.node(cb).tree_children)
      if (arena_.node(ch).parent != nb_id) hanging.push_back(ch);
  }

  BlossomNode& bn = arena_.node(nb_id);
  bn.tree_parent = kNoBlossom;
  bn.pe_u = lca_pe_u;
  bn.pe_v = lca_pe_v;
  bn.structure = su;
  bn.outer = true;
  bn.tree_children = hanging;
  for (BlossomId ch : hanging) arena_.node(ch).tree_parent = nb_id;
  if (lca_parent != kNoBlossom) {
    bn.tree_parent = lca_parent;
    arena_.node(lca_parent).tree_children.push_back(nb_id);
  } else {
    BMF_ASSERT(a.root == lca);
    a.root = nb_id;
  }
  // Retire the tree fields of the absorbed cycle members.
  for (BlossomId cb : bn.cycle) {
    BlossomNode& cn = arena_.node(cb);
    cn.tree_parent = kNoBlossom;
    cn.tree_children.clear();
    cn.pe_u = cn.pe_v = kNoVertex;
  }

  // Matched arcs inside E_B drop to label 0 (Section 4.5.2).
  for (Vertex w : arena_.vertices(nb_id)) {
    const Vertex mw = m_.mate(w);
    if (mw != kNoVertex && arena_.omega(mw) == nb_id)
      lab_[static_cast<std::size_t>(w)] = 0;
  }

  a.working = nb_id;
  mark_extended(su);
  ++totals_.contracts;
  ++bundle_ops_;
}

// ---------------------------------------------------------------------------
// Augment (Section 4.5.1)
// ---------------------------------------------------------------------------

bool StructureForest::can_augment(Vertex u, Vertex v) const {
  if (u == v || is_removed(u) || is_removed(v)) return false;
  const StructureId su = structure_of(u);
  const StructureId sv = structure_of(v);
  if (su == kNoStructure || sv == kNoStructure || su == sv) return false;
  if (!is_outer(u) || !is_outer(v)) return false;
  BMF_ASSERT(m_.mate(u) != v);
  return true;
}

std::vector<Vertex> StructureForest::path_to_root(Vertex u) const {
  std::vector<Vertex> out;
  BlossomId b = arena_.omega(u);
  Vertex target = u;
  for (;;) {
    std::vector<Vertex> seg = arena_.even_path(b, target);
    std::reverse(seg.begin(), seg.end());  // target .. base(b)
    out.insert(out.end(), seg.begin(), seg.end());
    const BlossomNode& nb = arena_.node(b);
    if (nb.tree_parent == kNoBlossom) break;  // reached the root; base == alpha
    // Matched parent edge (p, base(b)); p is the inner parent vertex.
    const Vertex p = nb.pe_u;
    BMF_ASSERT(m_.mate(p) == nb.pe_v && nb.pe_v == arena_.base(b));
    out.push_back(p);
    const BlossomNode& inode = arena_.node(nb.tree_parent);
    BMF_ASSERT(inode.is_trivial() && inode.vert == p);
    BMF_ASSERT(inode.tree_parent != kNoBlossom);
    b = inode.tree_parent;
    target = inode.pe_u;  // unmatched edge (target, p) into the grandparent
  }
  return out;
}

void StructureForest::augment(Vertex u, Vertex v) {
  BMF_ASSERT(can_augment(u, v));
  const StructureId su = structure_of(u);
  const StructureId sv = structure_of(v);

  std::vector<Vertex> path = path_to_root(u);    // u .. alpha_a
  std::reverse(path.begin(), path.end());        // alpha_a .. u
  const std::vector<Vertex> tail = path_to_root(v);  // v .. alpha_b
  path.insert(path.end(), tail.begin(), tail.end());
  if (cfg_.check_invariants)
    BMF_ASSERT_MSG(is_augmenting_path(g_, m_, path), "augment produced bad path");
  paths_.push_back(std::move(path));

  for (StructureId s : {su, sv}) {
    StructureInfo& si = structures_[static_cast<std::size_t>(s)];
    for (Vertex w : si.members) removed_[static_cast<std::size_t>(w)] = 1;
    si.removed = true;
    si.working = kNoBlossom;
  }
  ++totals_.augments;
  ++bundle_ops_;
}

// ---------------------------------------------------------------------------
// Backtrack (Section 4.8)
// ---------------------------------------------------------------------------

void StructureForest::backtrack_stuck() {
  for (StructureInfo& s : structures_) {
    if (s.removed || s.on_hold || s.modified || s.working == kNoBlossom) continue;
    if (s.working == s.root) {
      s.working = kNoBlossom;
    } else {
      const BlossomId inner_parent = arena_.node(s.working).tree_parent;
      BMF_ASSERT(inner_parent != kNoBlossom);
      const BlossomId outer_grandparent = arena_.node(inner_parent).tree_parent;
      BMF_ASSERT(outer_grandparent != kNoBlossom);
      s.working = outer_grandparent;
    }
    ++totals_.backtracks;
    ++bundle_ops_;
  }
}

// ---------------------------------------------------------------------------
// Invariant checking
// ---------------------------------------------------------------------------

void StructureForest::check_invariants() const {
  const Vertex n = g_.num_vertices();
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n), 0);

  for (StructureId sid = 0; sid < num_structures(); ++sid) {
    const StructureInfo& s = structures_[static_cast<std::size_t>(sid)];
    if (s.removed) continue;
    BMF_ASSERT(m_.is_free(s.alpha));
    const BlossomNode& root = arena_.node(s.root);
    BMF_ASSERT(root.tree_parent == kNoBlossom);
    BMF_ASSERT(root.outer && root.structure == sid);
    BMF_ASSERT(root.base == s.alpha);

    std::int64_t count = 0;
    std::deque<BlossomId> queue{s.root};
    while (!queue.empty()) {
      const BlossomId b = queue.front();
      queue.pop_front();
      const BlossomNode& nb = arena_.node(b);
      BMF_ASSERT(nb.parent == kNoBlossom);  // must be a root blossom
      BMF_ASSERT(nb.structure == sid);
      for (Vertex w : arena_.vertices(b)) {
        BMF_ASSERT(!is_removed(w));
        BMF_ASSERT(vert_struct_[static_cast<std::size_t>(w)] == sid);
        BMF_ASSERT(!seen[static_cast<std::size_t>(w)]);
        seen[static_cast<std::size_t>(w)] = 1;
        ++count;
      }
      if (nb.outer) {
        // Children of outer blossoms are inner trivial blossoms attached by
        // unmatched edges.
        for (BlossomId c : nb.tree_children) {
          const BlossomNode& cn = arena_.node(c);
          BMF_ASSERT(!cn.outer && cn.is_trivial());
          BMF_ASSERT(cn.pe_v == cn.vert);
          BMF_ASSERT(m_.mate(cn.pe_u) != cn.pe_v);
          BMF_ASSERT(g_.has_edge(cn.pe_u, cn.pe_v));
          queue.push_back(c);
        }
      } else {
        // Inner vertices have exactly one child: the outer blossom based at
        // their mate, attached by the matched edge.
        BMF_ASSERT(nb.tree_children.size() == 1);
        const BlossomId c = nb.tree_children.front();
        const BlossomNode& cn = arena_.node(c);
        BMF_ASSERT(cn.outer);
        BMF_ASSERT(cn.pe_u == nb.vert);
        BMF_ASSERT(cn.pe_v == cn.base);
        BMF_ASSERT(m_.mate(cn.pe_u) == cn.pe_v);
        BMF_ASSERT(g_.has_edge(cn.pe_u, cn.pe_v));
        queue.push_back(c);
      }
    }
    BMF_ASSERT(count == s.size);
    BMF_ASSERT(static_cast<std::int64_t>(s.members.size()) == s.size);

    if (s.working != kNoBlossom) {
      const BlossomNode& wn = arena_.node(s.working);
      BMF_ASSERT(wn.outer && wn.structure == sid && wn.parent == kNoBlossom);
      // Labels strictly increase along the active path (Section 4.1).
      int prev = -1;
      for (BlossomId b : active_path(sid)) {
        if (!arena_.node(b).outer) continue;
        const int level = outer_level(b);
        BMF_ASSERT_MSG(level > prev, "active-path labels not increasing");
        prev = level;
      }
    }
  }

  for (Vertex v = 0; v < n; ++v) {
    const int l = lab_[static_cast<std::size_t>(v)];
    BMF_ASSERT(l >= 0 && l <= lmax_ + 1);
    if (vert_struct_[static_cast<std::size_t>(v)] != kNoStructure &&
        !is_removed(v)) {
      const StructureId sid = vert_struct_[static_cast<std::size_t>(v)];
      BMF_ASSERT(!structures_[static_cast<std::size_t>(sid)].removed);
      BMF_ASSERT(seen[static_cast<std::size_t>(v)]);
    }
  }
}

}  // namespace bmf
