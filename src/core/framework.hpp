#pragma once

/// The boosting framework for a graph oracle (Section 5, Theorem 1.1).
///
/// FrameworkDriver simulates Extend-Active-Path (Algorithm 5: l_max label
/// stages, each a loop of A_matching calls on the bipartite stage graph H'_s
/// of Definition 5.8) and Contract-and-Augment (Algorithm 4: local
/// contraction to kill type-1 arcs, then a loop of A_matching calls on the
/// structure graph H' of Definition 5.4). Per Remark 2, the Contract-and-
/// Augment invocation at the end of Algorithm 5 is skipped; the phase engine
/// runs it once per pass-bundle.
///
/// `boost_matching` is the Theorem 1.1 entry point: it computes a
/// 4-approximate initial matching with O(c) oracle calls (Lemma 5.3) and then
/// runs the phase engine with this driver.
///
/// The driver's derived-graph construction — the dominant per-iteration cost
/// of both simulations — fans out across `cfg.threads` pool workers: every
/// live structure scans its neighborhoods into a private candidate buffer
/// (const reads only; operations are applied after the oracle answers), and
/// buffers merge serially in structure-id order so the H' / H'_s handed to
/// the oracle is bit-identical at any thread count. This is what makes the
/// Theorem 6.2 rebuild inside the dynamic matcher parallel: its exhaustion
/// sweeps run through this driver.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/oracle.hpp"
#include "core/phase.hpp"
#include "core/structures.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

struct FrameworkStats {
  std::int64_t stage_loops = 0;       ///< (stage, pass-bundle) pairs simulated
  std::int64_t stage_iterations = 0;  ///< oracle iterations inside Algorithm 5
  std::int64_t ca_iterations = 0;     ///< oracle iterations inside Algorithm 4
  std::int64_t truncated_loops = 0;   ///< loops cut by the paper's fixed bound
};

/// Observation hook for the Figure-3 benchmark: reports the size of the
/// matching A_matching found in each simulation iteration together with the
/// number of arcs in the derived graph.
struct IterationObservation {
  int stage = -1;  ///< label stage for Algorithm 5; -1 for Algorithm 4
  std::int64_t h_vertices = 0;
  std::int64_t h_edges = 0;
  std::int64_t matched = 0;
};
using IterationObserver = std::function<void(const IterationObservation&)>;

class FrameworkDriver final : public PassBundleDriver {
 public:
  FrameworkDriver(const Graph& g, MatchingOracle& oracle, const CoreConfig& cfg);

  void extend_active_path(StructureForest& forest) override;
  void contract_and_augment(StructureForest& forest) override;
  [[nodiscard]] bool exhaustive() const override;

  [[nodiscard]] const FrameworkStats& stats() const { return stats_; }
  void set_observer(IterationObserver obs) { observer_ = std::move(obs); }

 private:
  /// One stage of Algorithm 5 (or the unsplit [FMU22]-style variant when
  /// cfg.stage_split is false and stage < 0).
  void run_stage(StructureForest& forest, int stage);
  void run_augment_loop(StructureForest& forest);
  void run_local_contractions(StructureForest& forest);

  const Graph& g_;
  MatchingOracle& oracle_;
  const CoreConfig& cfg_;
  FrameworkStats stats_;
  IterationObserver observer_;
};

/// Lemma 5.3: a Theta(1)-approximate initial matching by repeatedly invoking
/// A_matching on the subgraph induced by currently-free vertices.
[[nodiscard]] Matching framework_initial_matching(const Graph& g,
                                                  MatchingOracle& oracle,
                                                  const CoreConfig& cfg);

struct BoostResult {
  Matching matching;
  BoostOutcome outcome;
  FrameworkStats stats;
  std::int64_t initial_oracle_calls = 0;
  std::int64_t total_oracle_calls = 0;
};

/// Theorem 1.1: a (1+eps)-approximate maximum matching of g using only
/// invocations of the given Theta(1)-approximate oracle (plus the local
/// structure processing the theorem charges to A_process).
[[nodiscard]] BoostResult boost_matching(const Graph& g, MatchingOracle& oracle,
                                         const CoreConfig& cfg);

/// Builds a fresh oracle for one boosting repetition from that repetition's
/// seed. Each repetition gets its own oracle so independent runs never share
/// mutable state (randomness, counters) across threads.
using OracleFactory =
    std::function<std::unique_ptr<MatchingOracle>(std::uint64_t seed)>;

struct EnsembleResult {
  BoostResult best;            ///< the repetition with the largest matching
  int best_repetition = -1;    ///< its index (lowest on ties)
  std::vector<std::int64_t> sizes;  ///< matching size per repetition
};

/// Runs `repetitions` independent boosted runs, each with its own oracle and
/// a per-repetition seed split from cfg.seed, fanned out across cfg.threads
/// pool workers, and keeps the run with the largest matching (ties break to
/// the lowest repetition index). Seeds are drawn serially up front and each
/// repetition writes into its own result slot, so the outcome is
/// bit-identical at any thread count.
[[nodiscard]] EnsembleResult boost_matching_ensemble(const Graph& g,
                                                     const OracleFactory& make_oracle,
                                                     const CoreConfig& cfg,
                                                     int repetitions);

}  // namespace bmf
