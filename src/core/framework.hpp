#pragma once

/// The boosting framework for a graph oracle (Section 5, Theorem 1.1).
///
/// FrameworkDriver simulates Extend-Active-Path (Algorithm 5: l_max label
/// stages, each a loop of A_matching calls on the bipartite stage graph H'_s
/// of Definition 5.8) and Contract-and-Augment (Algorithm 4: local
/// contraction to kill type-1 arcs, then a loop of A_matching calls on the
/// structure graph H' of Definition 5.4). Per Remark 2, the Contract-and-
/// Augment invocation at the end of Algorithm 5 is skipped; the phase engine
/// runs it once per pass-bundle.
///
/// `boost_matching` is the Theorem 1.1 entry point: it computes a
/// 4-approximate initial matching with O(c) oracle calls (Lemma 5.3) and then
/// runs the phase engine with this driver.
///
/// The driver's derived-graph construction — the dominant per-iteration cost
/// of both simulations — fans out across `cfg.threads` pool workers: every
/// live structure scans its neighborhoods into a private candidate buffer
/// (const reads only; operations are applied after the oracle answers), and
/// buffers merge serially in structure-id order so the H' / H'_s handed to
/// the oracle is bit-identical at any thread count. This is what makes the
/// Theorem 6.2 rebuild inside the dynamic matcher parallel: its exhaustion
/// sweeps run through this driver.
///
/// ## Rebuild participation (the storage-layout fan-out surface)
///
/// When the driver runs inside a dynamic rebuild, the graph it scans is a
/// frozen snapshot of a storage layout that may be sharded. The
/// `RebuildParticipation` interface below lets that layout participate in the
/// discovery sweeps as a first-class policy instead of the driver reaching
/// around the store: discovery fans out per (participant x structure), each
/// participant scans only the structure vertices whose rows it owns into a
/// private pos-tagged buffer, and the coordinator splices the buffers per
/// structure through the `merge` hook — in (shard-id, structure-id) slot
/// order, resolved within a structure by scan position. The position tags are
/// load-bearing: a structure's flat vertex scan (blossom order) is *not*
/// ascending by vertex id, so owner-major concatenation would reorder
/// candidates; merging by pos reproduces the flat emission order exactly,
/// keeping matchings, op counts, and truncation decisions bit-identical to
/// the single-participant sweep at every (participants x threads).
/// `FlatRebuildParticipation` is the trivial single-participant case and the
/// default when no participation is supplied.

#include <concepts>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/oracle.hpp"
#include "core/phase.hpp"
#include "core/structures.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// One candidate arc emitted by a participant's share of a discovery sweep.
/// `pos` is the index of the scanning vertex `w` in the structure's flat
/// vertex scan (blossom-vertex order for H'_s stages, member order for the
/// H' augment sweep) — the coordinator's merge key (see the file comment).
struct SweepArc {
  std::int32_t pos = 0;
  Vertex w = kNoVertex;
  Vertex x = kNoVertex;
  StructureId sx = kNoStructure;  ///< peer structure (augment sweeps only)
};

/// How a storage layout takes part in the rebuild's H'/H'_s discovery
/// sweeps. Implementations must satisfy the merge-order determinism
/// obligation: `merge` must splice per-participant buffers (each ascending in
/// pos, with pairwise-disjoint pos sets — every scan position is owned by
/// exactly one participant) into ascending-pos order, reproducing the flat
/// scan's emission order exactly. The default implementation is that
/// canonical cursor merge; overrides exist for accounting, not ordering.
///
/// The `note_*` hooks are the coordinator message ledger (CommStats,
/// replay_core.hpp): `note_rebuild_begin` is invoked once per Theorem 6.2
/// boost with the frozen snapshot it distributes, `note_rebuild_gather` once
/// per discovery sweep iteration with the candidate bytes gathered across
/// the boundary. Single-participant layouts keep both as no-ops.
class RebuildParticipation {
 public:
  virtual ~RebuildParticipation() = default;

  /// Number of participants (>= 1); 1 is the flat single-participant case.
  [[nodiscard]] virtual int participants() const = 0;
  /// Owning participant of vertex v's adjacency row, in [0, participants()).
  [[nodiscard]] virtual int owner(Vertex v) const = 0;
  /// Splices one structure's per-participant candidate buffers into `out` in
  /// flat scan order (ascending pos). See the class comment for the
  /// obligation; the default implementation is the canonical merge.
  virtual void merge(std::span<const std::vector<SweepArc>> per_participant,
                     std::vector<SweepArc>& out) const;
  /// One Theorem 6.2 boost begins: the coordinator distributes the frozen
  /// snapshot's rows to their owners. Default: no accounting.
  virtual void note_rebuild_begin(const Graph& snapshot) { (void)snapshot; }
  /// One discovery sweep iteration gathered `bytes` bytes of candidate
  /// buffers at the coordinator. Default: no accounting.
  virtual void note_rebuild_gather(std::int64_t bytes) { (void)bytes; }
};

/// The trivial single-participant RebuildParticipation: one owner for every
/// row, pass-through merge, no message accounting. Stateless, so one instance
/// may be shared across threads.
class FlatRebuildParticipation final : public RebuildParticipation {
 public:
  [[nodiscard]] int participants() const override { return 1; }
  [[nodiscard]] int owner(Vertex /*v*/) const override { return 0; }
};

/// The compile-time face of the participation contract: a type usable where
/// the rebuild sweeps expect a participation policy. Derivation from
/// `RebuildParticipation` carries the virtual dispatch the driver uses; the
/// requires-clause re-states the load-bearing surface so a policy that
/// shadows (rather than overrides) a member is rejected at the concept, with
/// a readable diagnostic, instead of at an eventual wrong vtable call. The
/// semantic half of the contract — `merge` reproduces flat scan order
/// exactly — stays with the class comment above; concepts check shape only.
template <class P>
concept RebuildParticipationPolicy =
    std::derived_from<P, RebuildParticipation> &&
    requires(const P& p, Vertex v, std::span<const std::vector<SweepArc>> bufs,
             std::vector<SweepArc>& out) {
      { p.participants() } -> std::convertible_to<int>;
      { p.owner(v) } -> std::convertible_to<int>;
      p.merge(bufs, out);
    };

static_assert(RebuildParticipationPolicy<FlatRebuildParticipation>,
              "FlatRebuildParticipation must model RebuildParticipationPolicy");

struct FrameworkStats {
  std::int64_t stage_loops = 0;       ///< (stage, pass-bundle) pairs simulated
  std::int64_t stage_iterations = 0;  ///< oracle iterations inside Algorithm 5
  std::int64_t ca_iterations = 0;     ///< oracle iterations inside Algorithm 4
  std::int64_t truncated_loops = 0;   ///< loops cut by the paper's fixed bound
};

/// Observation hook for the Figure-3 benchmark: reports the size of the
/// matching A_matching found in each simulation iteration together with the
/// number of arcs in the derived graph.
struct IterationObservation {
  int stage = -1;  ///< label stage for Algorithm 5; -1 for Algorithm 4
  std::int64_t h_vertices = 0;
  std::int64_t h_edges = 0;
  std::int64_t matched = 0;
};
using IterationObserver = std::function<void(const IterationObservation&)>;

class FrameworkDriver final : public PassBundleDriver {
 public:
  /// `participation` selects the rebuild-participation policy the discovery
  /// sweeps fan out through; nullptr means the flat single-participant case
  /// (static pipelines, tests). The policy object must outlive the driver.
  FrameworkDriver(const Graph& g, MatchingOracle& oracle, const CoreConfig& cfg,
                  RebuildParticipation* participation = nullptr);

  void extend_active_path(StructureForest& forest) override;
  void contract_and_augment(StructureForest& forest) override;
  [[nodiscard]] bool exhaustive() const override;

  [[nodiscard]] const FrameworkStats& stats() const { return stats_; }
  void set_observer(IterationObserver obs) { observer_ = std::move(obs); }

 private:
  /// One stage of Algorithm 5 (or the unsplit [FMU22]-style variant when
  /// cfg.stage_split is false and stage < 0).
  void run_stage(StructureForest& forest, int stage);
  void run_augment_loop(StructureForest& forest);
  void run_local_contractions(StructureForest& forest);

  const Graph& g_;
  MatchingOracle& oracle_;
  const CoreConfig& cfg_;
  RebuildParticipation* participation_;  ///< never null (flat fallback)
  FrameworkStats stats_;
  IterationObserver observer_;
};

/// Lemma 5.3: a Theta(1)-approximate initial matching by repeatedly invoking
/// A_matching on the subgraph induced by currently-free vertices.
[[nodiscard]] Matching framework_initial_matching(const Graph& g,
                                                  MatchingOracle& oracle,
                                                  const CoreConfig& cfg);

struct BoostResult {
  Matching matching;
  BoostOutcome outcome;
  FrameworkStats stats;
  std::int64_t initial_oracle_calls = 0;
  std::int64_t total_oracle_calls = 0;
};

/// Theorem 1.1: a (1+eps)-approximate maximum matching of g using only
/// invocations of the given Theta(1)-approximate oracle (plus the local
/// structure processing the theorem charges to A_process).
[[nodiscard]] BoostResult boost_matching(const Graph& g, MatchingOracle& oracle,
                                         const CoreConfig& cfg);

/// Builds a fresh oracle for one boosting repetition from that repetition's
/// seed. Each repetition gets its own oracle so independent runs never share
/// mutable state (randomness, counters) across threads.
using OracleFactory =
    std::function<std::unique_ptr<MatchingOracle>(std::uint64_t seed)>;

struct EnsembleResult {
  BoostResult best;            ///< the repetition with the largest matching
  int best_repetition = -1;    ///< its index (lowest on ties)
  std::vector<std::int64_t> sizes;  ///< matching size per repetition
};

/// Runs `repetitions` independent boosted runs, each with its own oracle and
/// a per-repetition seed split from cfg.seed, fanned out across cfg.threads
/// pool workers, and keeps the run with the largest matching (ties break to
/// the lowest repetition index). Seeds are drawn serially up front and each
/// repetition writes into its own result slot, so the outcome is
/// bit-identical at any thread count.
[[nodiscard]] EnsembleResult boost_matching_ensemble(const Graph& g,
                                                     const OracleFactory& make_oracle,
                                                     const CoreConfig& cfg,
                                                     int repetitions);

}  // namespace bmf
