#pragma once

/// The phase engine: Algorithm 1 (scales and phases) and Algorithm 2
/// (Alg-Phase pass-bundle loop), with the two stream-dependent procedures —
/// Extend-Active-Path and Contract-and-Augment — delegated to a pluggable
/// PassBundleDriver. Drivers implement them by stream passes (src/stream),
/// A_matching oracle calls (core/framework.hpp, Section 5) or A_weak vertex
/// sampling (src/dynamic, Section 6).
///
/// Adaptive schedule: a phase ends as soon as a pass-bundle performs no
/// operation (all later bundles of the phase are provably no-ops); a scale
/// ends after `idle_phase_limit` consecutive augmentation-free phases; the
/// whole run ends certified when an augmentation-free phase was quiescent,
/// hold-free and exhaustively simulated (Theorem B.4: no augmenting path of
/// length <= l_max remains, hence M is (1+eps)-approximate).

#include <cstdint>

#include "core/config.hpp"
#include "core/structures.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

class PassBundleDriver {
 public:
  virtual ~PassBundleDriver() = default;

  /// Called once at the start of each phase, before any pass-bundle.
  virtual void begin_phase(StructureForest& forest) { (void)forest; }

  /// Simulates Extend-Active-Path for the current pass-bundle (Alg 2 line 10).
  virtual void extend_active_path(StructureForest& forest) = 0;

  /// Simulates Contract-and-Augment (Alg 2 line 11).
  virtual void contract_and_augment(StructureForest& forest) = 0;

  /// True if the driver's simulation loops ran to exhaustion so far (no
  /// "contaminated" arcs were left behind by truncated oracle loops).
  [[nodiscard]] virtual bool exhaustive() const = 0;
};

struct BoostOutcome {
  std::int64_t scales = 0;
  std::int64_t phases = 0;
  std::int64_t pass_bundles = 0;
  std::int64_t augmenting_paths = 0;
  /// The run ended with a Theorem B.4 certificate: no augmenting path of
  /// length <= 3/eps remains.
  bool certified = false;
  OpCounts ops;
};

class PhaseEngine {
 public:
  PhaseEngine(const Graph& g, const CoreConfig& cfg) : g_(g), cfg_(cfg) {}

  /// Runs the scale/phase schedule, augmenting m in place.
  BoostOutcome run(Matching& m, PassBundleDriver& driver) const;

 private:
  const Graph& g_;
  const CoreConfig& cfg_;
};

}  // namespace bmf
