#pragma once

/// Incremental-only and decremental-only matchers (Section 3.4 names these
/// regimes; the fully dynamic machinery specializes to both).
///
/// IncrementalMatcher: edges only arrive. Between rebuilds a greedy maximal
/// matching absorbs insertions at O(1) each; mu only grows, so the rebuild
/// budget is charged against the measured growth — the [GLS+19]-flavored
/// amortization with the Theorem 6.2 rebuild as the booster.
///
/// DecrementalMatcher: edges only leave. mu only shrinks, so a matching that
/// was (1+eps/2)-approximate remains (1+eps)-approximate until eps*|M|/2
/// matched edges have been deleted; unmatched deletions are free and the
/// maximal floor is maintained by endpoint rescans.

#include <memory>
#include <span>

#include "dynamic/dynamic_matcher.hpp"

namespace bmf {

class IncrementalMatcher {
 public:
  IncrementalMatcher(Vertex n, WeakOracle& oracle, const DynamicMatcherConfig& cfg)
      : inner_(n, oracle, cfg) {}

  void insert(Vertex u, Vertex v) { inner_.insert(u, v); }

  /// Absorbs a batch of insertions; bit-identical to inserting one by one
  /// (DynamicMatcher's batch determinism contract).
  void insert_batch(std::span<const Edge> edges);

  [[nodiscard]] const Matching& matching() const { return inner_.matching(); }
  [[nodiscard]] const DynGraph& graph() const { return inner_.graph(); }
  [[nodiscard]] std::int64_t rebuilds() const { return inner_.rebuilds(); }
  [[nodiscard]] std::int64_t updates() const { return inner_.updates(); }

 private:
  DynamicMatcher inner_;
};

class DecrementalMatcher {
 public:
  /// Starts from a host graph whose edges will only be deleted. The initial
  /// matching is boosted immediately so the deterioration budget starts full.
  DecrementalMatcher(const Graph& initial, WeakOracle& oracle,
                     const DynamicMatcherConfig& cfg);

  void erase(Vertex u, Vertex v);

  /// Deletes a batch of distinct, currently present edges; bit-identical to
  /// erasing one by one in order.
  void erase_batch(std::span<const Edge> edges);

  [[nodiscard]] const Matching& matching() const { return matcher_->matching(); }
  [[nodiscard]] const DynGraph& graph() const { return matcher_->graph(); }
  [[nodiscard]] std::int64_t rebuilds() const { return matcher_->rebuilds(); }
  [[nodiscard]] std::int64_t updates() const {
    return matcher_->updates() - initial_updates_;
  }

 private:
  std::unique_ptr<DynamicMatcher> matcher_;
  std::int64_t initial_updates_ = 0;
};

}  // namespace bmf
