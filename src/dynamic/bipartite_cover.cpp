#include "dynamic/bipartite_cover.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bmf {

Graph build_bipartite_cover(const Graph& g) {
  const Vertex n = g.num_vertices();
  GraphBuilder b(2 * n);
  for (const Edge& e : g.edges()) {
    b.add_edge(e.u, e.v + n);  // (u+, v-)
    b.add_edge(e.v, e.u + n);  // (v+, u-)
  }
  return b.build();
}

std::vector<Edge> cover_matching_to_graph_matching(
    Vertex n, const std::vector<Edge>& cover_matching) {
  // X = the undirected G-edges behind the B-matching, deduplicated (the pairs
  // (u+, v-) and (v+, u-) name the same G-edge). Each vertex appears at most
  // once as a + copy and once as a - copy, so X has maximum degree 2.
  std::vector<std::vector<Vertex>> adj(static_cast<std::size_t>(n));
  auto has = [&](Vertex a, Vertex b) {
    const auto& va = adj[static_cast<std::size_t>(a)];
    return std::find(va.begin(), va.end(), b) != va.end();
  };
  for (const Edge& e : cover_matching) {
    BMF_ASSERT(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n && e.u != e.v);
    if (has(e.u, e.v)) continue;
    adj[static_cast<std::size_t>(e.u)].push_back(e.v);
    adj[static_cast<std::size_t>(e.v)].push_back(e.u);
    BMF_ASSERT(adj[static_cast<std::size_t>(e.u)].size() <= 2);
    BMF_ASSERT(adj[static_cast<std::size_t>(e.v)].size() <= 2);
  }

  // Pick alternate edges along each path (starting from a degree-1 endpoint)
  // and each cycle. This selects >= |X|/3 >= |M_B|/6 disjoint edges.
  std::vector<Edge> out;
  std::vector<std::uint8_t> used(static_cast<std::size_t>(n), 0);
  auto walk = [&](Vertex start) {
    Vertex prev = kNoVertex;
    Vertex cur = start;
    bool take = true;
    while (true) {
      used[static_cast<std::size_t>(cur)] = 1;
      Vertex next = kNoVertex;
      for (Vertex w : adj[static_cast<std::size_t>(cur)])
        if (w != prev && !used[static_cast<std::size_t>(w)]) {
          next = w;
          break;
        }
      if (next == kNoVertex) break;
      if (take) out.push_back({cur, next});
      take = !take;
      prev = cur;
      cur = next;
    }
  };
  for (Vertex v = 0; v < n; ++v)
    if (!used[static_cast<std::size_t>(v)] &&
        adj[static_cast<std::size_t>(v)].size() == 1)
      walk(v);
  for (Vertex v = 0; v < n; ++v)
    if (!used[static_cast<std::size_t>(v)] &&
        !adj[static_cast<std::size_t>(v)].empty())
      walk(v);  // remaining components are cycles
  return out;
}

}  // namespace bmf
