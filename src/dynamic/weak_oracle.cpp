#include "dynamic/weak_oracle.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bmf {

void WeakOracle::on_batch(std::span<const EdgeUpdate> updates,
                          std::span<const std::uint8_t> structural,
                          int /*threads*/) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "WeakOracle::on_batch: flag span size mismatch");
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!structural[i]) continue;
    if (updates[i].insert)
      on_insert(updates[i].u, updates[i].v);
    else
      on_erase(updates[i].u, updates[i].v);
  }
}

MatrixWeakOracle::MatrixWeakOracle(Vertex n) : n_(n), adj_(n, n) {
  BMF_REQUIRE(n >= 0, "MatrixWeakOracle: negative vertex count");
}

void MatrixWeakOracle::on_batch(std::span<const EdgeUpdate> updates,
                                std::span<const std::uint8_t> structural,
                                int threads) {
  for_each_incident_by_vertex(updates, structural, threads,
                              [this](Vertex vertex, Vertex other, bool ins) {
                                adj_.set(vertex, other, ins);
                              });
}

MatrixWeakOracle MatrixWeakOracle::from_graph(const Graph& g) {
  MatrixWeakOracle oracle(g.num_vertices());
  for (const Edge& e : g.edges()) oracle.on_insert(e.u, e.v);
  return oracle;
}

WeakQueryResult MatrixWeakOracle::query_impl(std::span<const Vertex> s,
                                             double delta) {
  BitVec avail(n_);
  for (Vertex v : s) avail.set(v);
  WeakQueryResult out;
  for (Vertex u : s) {
    if (!avail.get(u)) continue;
    // The adjacency diagonal is never set, so the probe cannot return u.
    // Charge exactly the words the early-exiting probe read, not the full
    // row — the row scan stops at the first set word.
    std::int64_t scanned = 0;
    const std::int64_t v = adj_.first_common_in_row(u, avail, &scanned);
    words_touched_ += scanned;
    if (v >= 0) {
      out.matching.push_back({u, static_cast<Vertex>(v)});
      avail.set(u, false);
      avail.set(v, false);
    }
  }
  const double threshold = lambda() * delta * static_cast<double>(n_);
  out.bottom = static_cast<double>(out.matching.size()) < threshold;
  return out;
}

WeakQueryResult MatrixWeakOracle::query_cover_impl(
    std::span<const Vertex> s_plus, std::span<const Vertex> s_minus,
    double delta) {
  BitVec avail(n_);
  for (Vertex v : s_minus) avail.set(v);
  WeakQueryResult out;
  for (Vertex u : s_plus) {
    // u+ may match v- even when u also appears in s_minus (distinct copies);
    // the B-edge (u+, u-) never exists because G has no self-loops, so the
    // masked row probe cannot return u itself. Charge the words actually
    // scanned (the probe early-exits at the first set word).
    std::int64_t scanned = 0;
    const std::int64_t v = adj_.first_common_in_row(u, avail, &scanned);
    words_touched_ += scanned;
    if (v >= 0) {
      out.matching.push_back({u, static_cast<Vertex>(v)});
      avail.set(v, false);
    }
  }
  const double threshold = lambda() * delta * static_cast<double>(n_);
  out.bottom = static_cast<double>(out.matching.size()) < threshold;
  return out;
}

}  // namespace bmf
