#include "dynamic/dynamic_matcher.hpp"

#include <cmath>

#include "util/assert.hpp"

namespace bmf {

DynamicMatcher::DynamicMatcher(Vertex n, WeakOracle& oracle,
                               const DynamicMatcherConfig& cfg)
    : g_(n), oracle_(oracle), cfg_(cfg), m_(n) {
  BMF_REQUIRE(cfg.eps > 0 && cfg.eps <= 1, "DynamicMatcher: eps out of range");
  cfg_.sim.core.eps = cfg.eps / 2.0;
  cfg_.sim.core.seed = cfg.seed;
}

void DynamicMatcher::try_match(Vertex v) {
  if (!m_.is_free(v)) return;
  for (Vertex w : g_.neighbors(v)) {
    if (m_.is_free(w)) {
      m_.add(v, w);
      return;
    }
  }
}

void DynamicMatcher::on_structural_change(Vertex u, Vertex v, bool inserted) {
  if (inserted) {
    if (m_.is_free(u) && m_.is_free(v)) m_.add(u, v);
  } else if (m_.has(u, v)) {
    m_.remove_at(u);
    try_match(u);
    try_match(v);
  }
}

void DynamicMatcher::insert(Vertex u, Vertex v) {
  apply(EdgeUpdate::ins(u, v));
}

void DynamicMatcher::erase(Vertex u, Vertex v) {
  apply(EdgeUpdate::del(u, v));
}

void DynamicMatcher::apply(const EdgeUpdate& update) {
  ++updates_;
  ++since_rebuild_;
  if (!update.empty()) {
    if (update.insert) {
      if (g_.insert(update.u, update.v)) {
        oracle_.on_insert(update.u, update.v);
        on_structural_change(update.u, update.v, true);
      }
    } else {
      if (g_.erase(update.u, update.v)) {
        oracle_.on_erase(update.u, update.v);
        on_structural_change(update.u, update.v, false);
      }
    }
  }
  maybe_rebuild();
}

void DynamicMatcher::maybe_rebuild() {
  const std::int64_t budget =
      cfg_.rebuild_every > 0
          ? cfg_.rebuild_every
          : std::max<std::int64_t>(
                1, static_cast<std::int64_t>(
                       std::floor(cfg_.eps * static_cast<double>(m_.size()) / 4.0)));
  if (since_rebuild_ < budget) return;
  since_rebuild_ = 0;
  ++rebuilds_;
  const Graph snapshot = g_.snapshot();
  WeakBoostResult boosted =
      static_weak_boost(snapshot, m_, oracle_, cfg_.sim);
  m_ = std::move(boosted.matching);
}

Problem1Instance::Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q,
                                   double lambda, double delta, double alpha)
    : g_(n),
      oracle_(oracle),
      q_(q),
      delta_(delta),
      chunk_size_(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(alpha * static_cast<double>(n)))) {
  BMF_REQUIRE(q >= 1, "Problem1Instance: q must be >= 1");
  BMF_REQUIRE(lambda > 0 && lambda <= 1 && delta > 0 && delta < 1 && alpha > 0,
              "Problem1Instance: parameters out of range");
  BMF_REQUIRE(oracle.lambda() >= lambda,
              "Problem1Instance: oracle lambda too weak for this instance");
}

void Problem1Instance::apply_chunk(std::span<const EdgeUpdate> chunk) {
  BMF_REQUIRE(static_cast<std::int64_t>(chunk.size()) == chunk_size_,
              "Problem1Instance: chunk must contain exactly alpha*n updates");
  for (const EdgeUpdate& up : chunk) {
    if (up.empty()) continue;
    if (up.insert) {
      if (g_.insert(up.u, up.v)) oracle_.on_insert(up.u, up.v);
    } else {
      if (g_.erase(up.u, up.v)) oracle_.on_erase(up.u, up.v);
    }
  }
  queries_left_ = q_;
}

WeakQueryResult Problem1Instance::query(std::span<const Vertex> s) {
  BMF_REQUIRE(queries_left_ > 0, "Problem1Instance: query budget exhausted");
  --queries_left_;
  return oracle_.query(s, delta_);
}

}  // namespace bmf
