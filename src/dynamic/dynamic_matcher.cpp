#include "dynamic/dynamic_matcher.hpp"

#include <cmath>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

DynamicMatcher::DynamicMatcher(Vertex n, WeakOracle& oracle,
                               const DynamicMatcherConfig& cfg)
    : g_(n), oracle_(oracle), cfg_(cfg), m_(n), mark_(static_cast<std::size_t>(n), 0) {
  BMF_REQUIRE(cfg.eps > 0 && cfg.eps <= 1, "DynamicMatcher: eps out of range");
  cfg_.sim.core.eps = cfg.eps / 2.0;
  cfg_.sim.core.seed = cfg.seed;
}

void DynamicMatcher::try_match(Vertex v) {
  if (!m_.is_free(v)) return;
  for (Vertex w : g_.neighbors(v)) {
    if (m_.is_free(w)) {
      m_.add(v, w);
      return;
    }
  }
}

void DynamicMatcher::on_structural_change(Vertex u, Vertex v, bool inserted) {
  if (inserted) {
    if (m_.is_free(u) && m_.is_free(v)) m_.add(u, v);
  } else if (m_.has(u, v)) {
    m_.remove_at(u);
    try_match(u);
    try_match(v);
  }
}

void DynamicMatcher::insert(Vertex u, Vertex v) {
  apply(EdgeUpdate::ins(u, v));
}

void DynamicMatcher::erase(Vertex u, Vertex v) {
  apply(EdgeUpdate::del(u, v));
}

void DynamicMatcher::apply(const EdgeUpdate& update) {
  ++updates_;
  ++since_rebuild_;
  if (!update.empty()) {
    if (update.insert) {
      if (g_.insert(update.u, update.v)) {
        oracle_.on_insert(update.u, update.v);
        on_structural_change(update.u, update.v, true);
      }
    } else {
      if (g_.erase(update.u, update.v)) {
        oracle_.on_erase(update.u, update.v);
        on_structural_change(update.u, update.v, false);
      }
    }
  }
  maybe_rebuild();
}

bool DynamicMatcher::is_heavy(const EdgeUpdate& up) const {
  // m_ only ever holds live edges, so a matched pair implies edge presence.
  return !up.empty() && !up.insert && m_.has(up.u, up.v);
}

std::size_t DynamicMatcher::light_prefix_length(std::span<const EdgeUpdate> rest) {
  ++epoch_;
  std::size_t j = 0;
  for (; j < rest.size(); ++j) {
    const EdgeUpdate& c = rest[j];
    if (c.empty()) continue;
    auto& mu = mark_[static_cast<std::size_t>(c.u)];
    auto& mv = mark_[static_cast<std::size_t>(c.v)];
    if (mu == epoch_ || mv == epoch_) break;
    // A matched-edge deletion ends the prefix: its repair reads neighbors'
    // mates, which concurrent prefix members may be writing. The mate test is
    // exact here because earlier prefix members cannot touch c's endpoints.
    if (is_heavy(c)) break;
    mu = epoch_;
    mv = epoch_;
  }
  return j;
}

std::size_t DynamicMatcher::apply_light_prefix(std::span<const EdgeUpdate> prefix,
                                               int threads) {
  const auto len = static_cast<std::int64_t>(prefix.size());
  structural_.assign(prefix.size(), 0);
  match_.assign(prefix.size(), 0);

  // Decisions read only the update's own endpoints (untouched by the rest of
  // the prefix), so concurrent evaluation against the pre-prefix state equals
  // the sequential decisions exactly.
  parallel_for_threads(threads, len, [&](std::int64_t i) {
    const auto k = static_cast<std::size_t>(i);
    const EdgeUpdate& up = prefix[k];
    if (up.empty()) return;
    if (up.insert) {
      if (!g_.has_edge(up.u, up.v)) {
        structural_[k] = 1;
        if (m_.is_free(up.u) && m_.is_free(up.v)) match_[k] = 1;
      }
    } else {
      // Matched deletions never enter a prefix, so a structural deletion here
      // is of an unmatched edge and needs no repair.
      if (g_.has_edge(up.u, up.v)) structural_[k] = 1;
    }
  });

  // Replay the rebuild budget to find where maybe_rebuild() would fire in the
  // sequential loop; truncate the prefix there (inclusive).
  std::size_t cut = prefix.size();
  bool fire = false;
  {
    std::int64_t sz = m_.size();
    std::int64_t since = since_rebuild_;
    for (std::size_t k = 0; k < prefix.size(); ++k) {
      ++since;
      if (match_[k]) ++sz;
      if (since >= rebuild_budget(sz)) {
        cut = k + 1;
        fire = true;
        break;
      }
    }
  }

  const auto committed = prefix.first(cut);
  const auto flags = std::span<const std::uint8_t>(structural_).first(cut);
  g_.apply_structural_disjoint(committed, flags, threads);
  oracle_.on_batch(committed, flags, threads);
  for (std::size_t k = 0; k < cut; ++k) {
    ++updates_;
    ++since_rebuild_;
    if (match_[k]) m_.add(prefix[k].u, prefix[k].v);
  }
  if (fire) {
    since_rebuild_ = 0;
    ++rebuilds_;
    rebuild();
  }
  return cut;
}

void DynamicMatcher::apply_batch(std::span<const EdgeUpdate> batch) {
  for (const EdgeUpdate& up : batch)
    BMF_REQUIRE(up.empty() || (up.u >= 0 && up.u < g_.num_vertices() && up.v >= 0 &&
                               up.v < g_.num_vertices() && up.u != up.v),
                "DynamicMatcher::apply_batch: invalid update");
  const int threads = ThreadPool::resolve_threads(cfg_.threads);
  if (threads <= 1) {
    // The batch engine only buys anything with real concurrency; the serial
    // loop is the reference semantics.
    for (const EdgeUpdate& up : batch) apply(up);
    return;
  }
  std::size_t i = 0;
  while (i < batch.size()) {
    if (is_heavy(batch[i])) {
      // Serial path: the repair rescans both endpoints' neighborhoods.
      apply(batch[i]);
      ++i;
      continue;
    }
    const std::size_t len = light_prefix_length(batch.subspan(i));
    i += apply_light_prefix(batch.subspan(i, len), threads);
  }
}

void DynamicMatcher::rebuild() {
  const Graph snapshot = g_.snapshot();
  WeakBoostResult boosted = static_weak_boost(snapshot, m_, oracle_, cfg_.sim);
  m_ = std::move(boosted.matching);
}

std::int64_t DynamicMatcher::rebuild_budget(std::int64_t sz) const {
  if (cfg_.rebuild_every > 0) return cfg_.rebuild_every;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::floor(cfg_.eps * static_cast<double>(sz) / 4.0)));
}

void DynamicMatcher::maybe_rebuild() {
  if (since_rebuild_ < rebuild_budget(m_.size())) return;
  since_rebuild_ = 0;
  ++rebuilds_;
  rebuild();
}

Problem1Instance::Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q,
                                   double lambda, double delta, double alpha)
    : g_(n),
      oracle_(oracle),
      q_(q),
      delta_(delta),
      chunk_size_(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(alpha * static_cast<double>(n)))) {
  BMF_REQUIRE(q >= 1, "Problem1Instance: q must be >= 1");
  BMF_REQUIRE(lambda > 0 && lambda <= 1 && delta > 0 && delta < 1 && alpha > 0,
              "Problem1Instance: parameters out of range");
  BMF_REQUIRE(oracle.lambda() >= lambda,
              "Problem1Instance: oracle lambda too weak for this instance");
}

void Problem1Instance::apply_chunk(std::span<const EdgeUpdate> chunk, int threads) {
  BMF_REQUIRE(static_cast<std::int64_t>(chunk.size()) == chunk_size_,
              "Problem1Instance: chunk must contain exactly alpha*n updates");
  const int t = ThreadPool::resolve_threads(threads);
  const std::vector<std::uint8_t> flags = g_.resolve_structural(chunk, t);
  g_.apply_structural(chunk, flags, t);
  oracle_.on_batch(chunk, flags, t);
  queries_left_ = q_;
}

WeakQueryResult Problem1Instance::query(std::span<const Vertex> s) {
  BMF_REQUIRE(queries_left_ > 0, "Problem1Instance: query budget exhausted");
  --queries_left_;
  return oracle_.query(s, delta_);
}

}  // namespace bmf
