#include "dynamic/dynamic_matcher.hpp"

#include <cmath>
#include <exception>
#include <thread>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

DynamicMatcher::DynamicMatcher(Vertex n, WeakOracle& oracle,
                               const DynamicMatcherConfig& cfg)
    : g_(n), oracle_(oracle), cfg_(cfg), m_(n), mark_(static_cast<std::size_t>(n), 0) {
  BMF_REQUIRE(cfg.eps > 0 && cfg.eps <= 1, "DynamicMatcher: eps out of range");
  cfg_.sim.core.eps = cfg.eps / 2.0;
  cfg_.sim.core.seed = cfg.seed;
  // The rebuild's internal discovery fans out on the same knob as the batch
  // engine; parallelism never changes results, so forcing it is safe.
  cfg_.sim.core.threads = cfg.threads;
}

void DynamicMatcher::try_match(Vertex v) {
  if (!m_.is_free(v)) return;
  for (Vertex w : g_.neighbors(v)) {
    if (m_.is_free(w)) {
      m_.add(v, w);
      return;
    }
  }
}

void DynamicMatcher::on_structural_change(Vertex u, Vertex v, bool inserted) {
  if (inserted) {
    if (m_.is_free(u) && m_.is_free(v)) m_.add(u, v);
  } else if (m_.has(u, v)) {
    m_.remove_at(u);
    try_match(u);
    try_match(v);
  }
}

void DynamicMatcher::insert(Vertex u, Vertex v) {
  apply(EdgeUpdate::ins(u, v));
}

void DynamicMatcher::erase(Vertex u, Vertex v) {
  apply(EdgeUpdate::del(u, v));
}

void DynamicMatcher::apply(const EdgeUpdate& update) {
  ++updates_;
  ++since_rebuild_;
  if (!update.empty()) {
    if (update.insert) {
      if (g_.insert(update.u, update.v)) {
        oracle_.on_insert(update.u, update.v);
        on_structural_change(update.u, update.v, true);
      }
    } else {
      if (g_.erase(update.u, update.v)) {
        oracle_.on_erase(update.u, update.v);
        on_structural_change(update.u, update.v, false);
      }
    }
  }
  maybe_rebuild();
}

bool DynamicMatcher::is_heavy(const EdgeUpdate& up) const {
  // m_ only ever holds live edges, so a matched pair implies edge presence.
  return !up.empty() && !up.insert && m_.has(up.u, up.v);
}

std::size_t DynamicMatcher::light_prefix_length(std::span<const EdgeUpdate> rest) {
  ++epoch_;
  std::size_t j = 0;
  for (; j < rest.size(); ++j) {
    const EdgeUpdate& c = rest[j];
    if (c.empty()) continue;
    auto& mu = mark_[static_cast<std::size_t>(c.u)];
    auto& mv = mark_[static_cast<std::size_t>(c.v)];
    if (mu == epoch_ || mv == epoch_) break;
    // A matched-edge deletion ends the prefix: its repair reads neighbors'
    // mates, which concurrent prefix members may be writing. The mate test is
    // exact here because earlier prefix members cannot touch c's endpoints.
    if (is_heavy(c)) break;
    mu = epoch_;
    mv = epoch_;
  }
  return j;
}

std::size_t DynamicMatcher::heavy_run_length(std::span<const EdgeUpdate> rest) {
  if (heavy_index_.empty())
    heavy_index_.assign(mark_.size(), 0);
  ++epoch_;
  std::size_t j = 0;
  for (; j < rest.size(); ++j) {
    const EdgeUpdate& c = rest[j];
    if (c.empty() || c.insert) break;
    auto& mu = mark_[static_cast<std::size_t>(c.u)];
    auto& mv = mark_[static_cast<std::size_t>(c.v)];
    if (mu == epoch_ || mv == epoch_) break;
    // Disjointness keeps m_ exact at c's endpoints, so this test equals the
    // sequential at-time heaviness; a light deletion ends the run.
    if (!m_.has(c.u, c.v)) break;
    mu = epoch_;
    mv = epoch_;
    heavy_index_[static_cast<std::size_t>(c.u)] = static_cast<std::int32_t>(j);
    heavy_index_[static_cast<std::size_t>(c.v)] = static_cast<std::int32_t>(j);
  }
  return j;
}

std::size_t DynamicMatcher::apply_heavy_run(std::span<const EdgeUpdate> run,
                                            int threads) {
  // Worst-case budget replay: |M| drops by at most one per deletion and
  // rebuild_budget is nondecreasing in |M|, so while
  // since_rebuild_ + i < rebuild_budget(|M| - i) no rebuild can fire at
  // update i for ANY rematch outcome — exactly where the sequential loop
  // cannot fire either. Truncate the run to that provably rebuild-free bound.
  const std::int64_t sz0 = m_.size();
  std::int64_t safe = 0;
  while (safe < static_cast<std::int64_t>(run.size()) &&
         since_rebuild_ + safe + 1 < rebuild_budget(sz0 - (safe + 1)))
    ++safe;
  if (safe == 0) {
    // The very next deletion may fire a rebuild; take the serial path for it.
    apply(run[0]);
    return 1;
  }
  run = run.first(static_cast<std::size_t>(safe));

  // Every run member deletes a currently matched (hence present) edge, so
  // the whole run is structural: delete batch-parallel, maintain the oracle.
  structural_.assign(run.size(), 1);
  const std::span<const std::uint8_t> flags(structural_.data(), run.size());
  g_.apply_structural_disjoint(run, flags, threads);
  oracle_.on_batch(run, flags, threads);

  // Reservation scan (parallel, read-only): endpoint 2i / 2i+1 collects the
  // ascending list of neighbors that can possibly be free at its commit turn
  // — free before the run, or freed by an earlier deletion of the run.
  // Deleting the run's matched edges does not change any other endpoint's
  // adjacency (endpoints are disjoint), so the post-deletion neighbor scan
  // equals the sequential at-time scan.
  std::vector<std::vector<Vertex>> cand(2 * run.size());
  // Short runs scan inline; the pool round-trip would dominate.
  const int scan_threads =
      gated_threads(static_cast<std::int64_t>(run.size()), 8, threads);
  parallel_for_threads(
      scan_threads, static_cast<std::int64_t>(2 * run.size()), [&](std::int64_t k) {
        const auto i = static_cast<std::size_t>(k / 2);
        const Vertex x = (k % 2 == 0) ? run[i].u : run[i].v;
        auto& out = cand[static_cast<std::size_t>(k)];
        for (Vertex nb : g_.neighbors(x)) {
          const auto nbi = static_cast<std::size_t>(nb);
          if (m_.is_free(nb) ||
              (mark_[nbi] == epoch_ &&
               heavy_index_[nbi] < static_cast<std::int32_t>(i)))
            out.push_back(nb);
        }
      });

  // Serial commit in update order: unmatch the pair, then rematch each freed
  // endpoint with its first still-free reserved neighbor — the sequential
  // minimum-free-neighbor repair, endpoint for endpoint.
  for (std::size_t i = 0; i < run.size(); ++i) {
    m_.remove_at(run[i].u);
    for (const std::size_t k : {2 * i, 2 * i + 1}) {
      const Vertex x = (k % 2 == 0) ? run[i].u : run[i].v;
      if (!m_.is_free(x)) continue;
      for (Vertex nb : cand[k]) {
        if (m_.is_free(nb)) {
          m_.add(x, nb);
          break;
        }
      }
    }
    ++updates_;
    ++since_rebuild_;
  }
  BMF_ASSERT(since_rebuild_ < rebuild_budget(m_.size()));
  return run.size();
}

DynamicMatcher::PrefixOutcome DynamicMatcher::apply_light_prefix(
    std::span<const EdgeUpdate> prefix, int threads) {
  const auto len = static_cast<std::int64_t>(prefix.size());
  structural_.assign(prefix.size(), 0);
  match_.assign(prefix.size(), 0);

  // Decisions read only the update's own endpoints (untouched by the rest of
  // the prefix), so concurrent evaluation against the pre-prefix state equals
  // the sequential decisions exactly. Short prefixes evaluate inline.
  const int decision_threads = gated_threads(len, 32, threads);
  parallel_for_threads(decision_threads, len, [&](std::int64_t i) {
    const auto k = static_cast<std::size_t>(i);
    const EdgeUpdate& up = prefix[k];
    if (up.empty()) return;
    if (up.insert) {
      if (!g_.has_edge(up.u, up.v)) {
        structural_[k] = 1;
        if (m_.is_free(up.u) && m_.is_free(up.v)) match_[k] = 1;
      }
    } else {
      // Matched deletions never enter a prefix, so a structural deletion here
      // is of an unmatched edge and needs no repair.
      if (g_.has_edge(up.u, up.v)) structural_[k] = 1;
    }
  });

  // Replay the rebuild budget to find where maybe_rebuild() would fire in the
  // sequential loop; truncate the prefix there (inclusive).
  std::size_t cut = prefix.size();
  bool fire = false;
  {
    std::int64_t sz = m_.size();
    std::int64_t since = since_rebuild_;
    for (std::size_t k = 0; k < prefix.size(); ++k) {
      ++since;
      if (match_[k]) ++sz;
      if (since >= rebuild_budget(sz)) {
        cut = k + 1;
        fire = true;
        break;
      }
    }
  }

  const auto committed = prefix.first(cut);
  const auto flags = std::span<const std::uint8_t>(structural_).first(cut);
  g_.apply_structural_disjoint(committed, flags, threads);
  oracle_.on_batch(committed, flags, threads);
  for (std::size_t k = 0; k < cut; ++k) {
    ++updates_;
    ++since_rebuild_;
    if (match_[k]) m_.add(prefix[k].u, prefix[k].v);
  }
  return {cut, fire};
}

std::size_t DynamicMatcher::rebuild_overlapped(std::span<const EdgeUpdate> rest,
                                               int threads) {
  // The window that may overlap the rebuild: consecutive insertions/no-ops
  // with pairwise-disjoint endpoints. Deletions stop it (their heaviness
  // depends on the rebuild's output), and the worst-case post-rebuild budget
  // bounds it: boosting never shrinks the matching and the window holds no
  // deletion, so |M| stays >= its arm-time size and the first
  // rebuild_budget(|M|) - 1 updates after the rebuild are provably
  // rebuild-free.
  const std::int64_t cap = rebuild_budget(m_.size()) - 1;
  ++epoch_;
  std::size_t w = 0;
  while (w < rest.size() && static_cast<std::int64_t>(w) < cap) {
    const EdgeUpdate& c = rest[w];
    if (c.empty()) {
      ++w;
      continue;
    }
    if (!c.insert) break;
    auto& mu = mark_[static_cast<std::size_t>(c.u)];
    auto& mv = mark_[static_cast<std::size_t>(c.v)];
    if (mu == epoch_ || mv == epoch_) break;
    mu = epoch_;
    mv = epoch_;
    ++w;
  }
  const auto window = rest.first(w);

  // Launch the rebuild on a dedicated thread (a pool worker would degrade its
  // inner parallel_for fan-out to inline). It reads the immutable snapshot,
  // a copy of the matching, and the oracle — never the live graph.
  const Graph snapshot = g_.snapshot();
  const Matching base = m_;
  Matching rebuilt;
  std::exception_ptr rebuild_error;
  std::thread worker([&] {
    try {
      rebuilt = static_weak_boost(snapshot, base, oracle_, cfg_.sim).matching;
    } catch (...) {
      rebuild_error = std::current_exception();
    }
  });

  // Overlapped work: structural resolution + adjacency mutation only. The
  // matching decisions and oracle maintenance wait for the join below.
  try {
    structural_.assign(window.size(), 0);
    const int window_threads =
        gated_threads(static_cast<std::int64_t>(window.size()), 32, threads);
    parallel_for_threads(
        window_threads, static_cast<std::int64_t>(window.size()),
        [&](std::int64_t k) {
          const EdgeUpdate& up = window[static_cast<std::size_t>(k)];
          if (!up.empty() && !g_.has_edge(up.u, up.v))
            structural_[static_cast<std::size_t>(k)] = 1;
        });
    const std::span<const std::uint8_t> flags(structural_.data(), window.size());
    g_.apply_structural_disjoint(window, flags, threads);
  } catch (...) {
    worker.join();
    throw;
  }
  worker.join();
  if (rebuild_error) std::rethrow_exception(rebuild_error);
  m_ = std::move(rebuilt);

  // Deferred maintenance and commits, serial in update order — the final
  // state equals the sequential rebuild-then-apply loop exactly.
  const std::span<const std::uint8_t> flags(structural_.data(), window.size());
  oracle_.on_batch(window, flags, threads);
  for (std::size_t k = 0; k < window.size(); ++k) {
    ++updates_;
    ++since_rebuild_;
    const EdgeUpdate& up = window[k];
    if (!up.empty() && structural_[k] && m_.is_free(up.u) && m_.is_free(up.v))
      m_.add(up.u, up.v);
  }
  return w;
}

void DynamicMatcher::apply_batch(std::span<const EdgeUpdate> batch) {
  for (const EdgeUpdate& up : batch)
    BMF_REQUIRE(up.empty() || (up.u >= 0 && up.u < g_.num_vertices() && up.v >= 0 &&
                               up.v < g_.num_vertices() && up.u != up.v),
                "DynamicMatcher::apply_batch: invalid update");
  const int threads = ThreadPool::resolve_threads(cfg_.threads);
  if (threads <= 1) {
    // The batch engine only buys anything with real concurrency; the serial
    // loop is the reference semantics.
    for (const EdgeUpdate& up : batch) apply(up);
    return;
  }
  std::size_t i = 0;
  while (i < batch.size()) {
    if (is_heavy(batch[i])) {
      const std::size_t run = heavy_run_length(batch.subspan(i));
      if (run >= 2) {
        i += apply_heavy_run(batch.subspan(i, run), threads);
      } else {
        // An isolated heavy deletion: the reservation machinery buys nothing.
        apply(batch[i]);
        ++i;
      }
      continue;
    }
    const std::size_t len = light_prefix_length(batch.subspan(i));
    const PrefixOutcome got = apply_light_prefix(batch.subspan(i, len), threads);
    i += got.consumed;
    if (got.fired) {
      since_rebuild_ = 0;
      ++rebuilds_;
      if (cfg_.overlap_rebuild) {
        i += rebuild_overlapped(batch.subspan(i), threads);
      } else {
        rebuild();
      }
    }
  }
}

void DynamicMatcher::rebuild() {
  const Graph snapshot = g_.snapshot();
  WeakBoostResult boosted = static_weak_boost(snapshot, m_, oracle_, cfg_.sim);
  m_ = std::move(boosted.matching);
}

std::int64_t DynamicMatcher::rebuild_budget(std::int64_t sz) const {
  if (cfg_.rebuild_every > 0) return cfg_.rebuild_every;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::floor(cfg_.eps * static_cast<double>(sz) / 4.0)));
}

void DynamicMatcher::maybe_rebuild() {
  if (since_rebuild_ < rebuild_budget(m_.size())) return;
  since_rebuild_ = 0;
  ++rebuilds_;
  rebuild();
}

Problem1Instance::Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q,
                                   double lambda, double delta, double alpha)
    : g_(n),
      oracle_(oracle),
      q_(q),
      delta_(delta),
      chunk_size_(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(alpha * static_cast<double>(n)))) {
  BMF_REQUIRE(q >= 1, "Problem1Instance: q must be >= 1");
  BMF_REQUIRE(lambda > 0 && lambda <= 1 && delta > 0 && delta < 1 && alpha > 0,
              "Problem1Instance: parameters out of range");
  BMF_REQUIRE(oracle.lambda() >= lambda,
              "Problem1Instance: oracle lambda too weak for this instance");
}

void Problem1Instance::apply_chunk(std::span<const EdgeUpdate> chunk, int threads) {
  BMF_REQUIRE(static_cast<std::int64_t>(chunk.size()) == chunk_size_,
              "Problem1Instance: chunk must contain exactly alpha*n updates");
  const int t = ThreadPool::resolve_threads(threads);
  const std::vector<std::uint8_t> flags = g_.resolve_structural(chunk, t);
  g_.apply_structural(chunk, flags, t);
  oracle_.on_batch(chunk, flags, t);
  queries_left_ = q_;
}

WeakQueryResult Problem1Instance::query(std::span<const Vertex> s) {
  BMF_REQUIRE(queries_left_ > 0, "Problem1Instance: query budget exhausted");
  --queries_left_;
  return oracle_.query(s, delta_);
}

}  // namespace bmf
