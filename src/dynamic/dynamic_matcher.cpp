#include "dynamic/dynamic_matcher.hpp"

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

DynamicMatcher::DynamicMatcher(Vertex n, WeakOracle& oracle,
                               const DynamicMatcherConfig& cfg)
    : oracle_(oracle), store_(n, oracle), core_(store_, [&] {
        validate_core_config(cfg, /*shards=*/1, "DynamicMatcher");
        return resolve_core_config(cfg);
      }()) {}

Problem1Instance::Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q,
                                   double lambda, double delta, double alpha)
    : g_(n),
      oracle_(oracle),
      q_(q),
      delta_(delta),
      chunk_size_(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(alpha * static_cast<double>(n)))) {
  BMF_REQUIRE(q >= 1, "Problem1Instance: q must be >= 1");
  BMF_REQUIRE(lambda > 0 && lambda <= 1 && delta > 0 && delta < 1 && alpha > 0,
              "Problem1Instance: parameters out of range");
  BMF_REQUIRE(oracle.lambda() >= lambda,
              "Problem1Instance: oracle lambda too weak for this instance");
}

void Problem1Instance::apply_chunk(std::span<const EdgeUpdate> chunk, int threads) {
  BMF_REQUIRE(static_cast<std::int64_t>(chunk.size()) == chunk_size_,
              "Problem1Instance: chunk must contain exactly alpha*n updates");
  const int t = ThreadPool::resolve_threads(threads);
  const std::vector<std::uint8_t> flags = g_.resolve_structural(chunk, t);
  g_.apply_structural(chunk, flags, t);
  oracle_.on_batch(chunk, flags, t);
  queries_left_ = q_;
}

WeakQueryResult Problem1Instance::query(std::span<const Vertex> s) {
  BMF_REQUIRE(queries_left_ > 0, "Problem1Instance: query budget exhausted");
  --queries_left_;
  return oracle_.query(s, delta_);
}

}  // namespace bmf
