#include "dynamic/partial_dynamic.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace bmf {
namespace {

std::vector<EdgeUpdate> to_updates(std::span<const Edge> edges, bool insert) {
  std::vector<EdgeUpdate> ups;
  ups.reserve(edges.size());
  for (const Edge& e : edges)
    ups.push_back(insert ? EdgeUpdate::ins(e.u, e.v) : EdgeUpdate::del(e.u, e.v));
  return ups;
}

}  // namespace

void IncrementalMatcher::insert_batch(std::span<const Edge> edges) {
  inner_.apply_batch(to_updates(edges, /*insert=*/true));
}

DecrementalMatcher::DecrementalMatcher(const Graph& initial, WeakOracle& oracle,
                                       const DynamicMatcherConfig& cfg) {
  matcher_ = std::make_unique<DynamicMatcher>(initial.num_vertices(), oracle, cfg);
  // Load the host graph through the batched update interface so the oracle
  // sees every edge; the matcher's own rebuild schedule boosts along the way
  // and leaves a (1+eps)-approximate matching at handover.
  matcher_->apply_batch(to_updates(initial.edges(), /*insert=*/true));
  initial_updates_ = matcher_->updates();
}

void DecrementalMatcher::erase(Vertex u, Vertex v) {
  BMF_REQUIRE(matcher_->graph().has_edge(u, v),
              "DecrementalMatcher::erase: edge not present");
  matcher_->erase(u, v);
}

void DecrementalMatcher::erase_batch(std::span<const Edge> edges) {
  // Replay presence across the batch so duplicates fail exactly like the
  // second of two one-at-a-time erase() calls would.
  std::unordered_set<std::uint64_t> doomed;
  for (const Edge& e : edges) {
    BMF_REQUIRE(matcher_->graph().has_edge(e.u, e.v),
                "DecrementalMatcher::erase_batch: edge not present");
    const bool fresh = doomed.insert(edge_key(e.u, e.v)).second;
    BMF_REQUIRE(fresh, "DecrementalMatcher::erase_batch: duplicate deletion");
  }
  matcher_->apply_batch(to_updates(edges, /*insert=*/false));
}

}  // namespace bmf
