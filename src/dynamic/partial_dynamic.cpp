#include "dynamic/partial_dynamic.hpp"

#include "util/assert.hpp"

namespace bmf {

DecrementalMatcher::DecrementalMatcher(const Graph& initial, WeakOracle& oracle,
                                       const DynamicMatcherConfig& cfg) {
  matcher_ = std::make_unique<DynamicMatcher>(initial.num_vertices(), oracle, cfg);
  // Load the host graph through the update interface so the oracle sees
  // every edge; the matcher's own rebuild schedule boosts along the way and
  // leaves a (1+eps)-approximate matching at handover.
  for (const Edge& e : initial.edges()) matcher_->insert(e.u, e.v);
  initial_updates_ = matcher_->updates();
}

void DecrementalMatcher::erase(Vertex u, Vertex v) {
  BMF_REQUIRE(matcher_->graph().has_edge(u, v),
              "DecrementalMatcher::erase: edge not present");
  matcher_->erase(u, v);
}

}  // namespace bmf
