#pragma once

/// The shared engine surface over `DynamicReplayCore` facades.
///
/// PR 5 made both dynamic engines thin facades over the one replay core, but
/// each facade still re-declared the whole core accessor surface by hand
/// (`rebuild_positions()`, `overlap_stats()`, ...), and anything generic over
/// engines — the matching service's writer, the differential harness, bench
/// state collectors — had to be templated or carry facade-specific casts.
/// This header fixes both:
///
///  * `ReplayEngine` is the abstract engine surface: every replay-core facade
///    implements it, so a `ReplayEngine&` is all the matching service (and
///    any test) needs — no facade-specific casts, no templates.
///  * `ReplayEngineFacade<Derived, Store>` is the one home of the core/store
///    forwarding (CRTP over the facade's `core_` / `store_` members): the
///    accessors that used to be duplicated per facade are hoisted here, so
///    the surfaces cannot drift apart again. A facade adds only what is
///    genuinely its own — `weak_calls()` reads its concrete oracle, plus any
///    store-specific extras (`graph()`, `partition()`, ...).
///
/// `LiveEngineView` adapts an engine to the `MatchingView` read API
/// (matching_view.hpp): exact answers straight off the live matching, epoch =
/// update count. It reads the writer's mutable state, so unlike service
/// snapshots it must not be used concurrently with updates.

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/replay_core.hpp"
#include "graph/dyn_graph.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"
#include "matching/matching_view.hpp"

namespace bmf {

class LiveEngineView;

/// Abstract surface of a dynamic engine built on `DynamicReplayCore`. All
/// implementations promise the replay determinism contract (replay_core.hpp):
/// for a fixed config, every method below returns bit-identical values across
/// engines, thread counts, shard counts, and batch sizes.
class ReplayEngine {
 public:
  virtual ~ReplayEngine() = default;

  virtual void apply(const EdgeUpdate& update) = 0;
  /// Bit-identical to calling `apply` per element in order; conflict-free
  /// prefixes run in parallel. The whole batch is validated before mutation.
  virtual void apply_batch(std::span<const EdgeUpdate> batch) = 0;

  [[nodiscard]] virtual Vertex num_vertices() const = 0;
  [[nodiscard]] virtual const Matching& matching() const = 0;
  /// The live graph as a static CSR snapshot (== DynGraph::snapshot()).
  [[nodiscard]] virtual Graph snapshot() const = 0;
  /// Immutable matching snapshot for epoch publication (replay_core.hpp).
  [[nodiscard]] virtual MatchingSnapshot export_snapshot(
      std::int64_t epoch) const = 0;

  [[nodiscard]] virtual std::int64_t updates() const = 0;
  [[nodiscard]] virtual std::int64_t rebuilds() const = 0;
  /// A_weak calls issued by the engine's oracle.
  [[nodiscard]] virtual std::int64_t weak_calls() const = 0;
  /// Update positions at which rebuilds fired (golden-trace observability).
  [[nodiscard]] virtual const std::vector<std::int64_t>& rebuild_positions()
      const = 0;
  /// Rebuild-overlap coverage counters (replay_core.hpp).
  [[nodiscard]] virtual const ReplayOverlapStats& overlap_stats() const = 0;
  /// Folded Theorem 6.2 rebuild counters (replay_core.hpp) — bit-identical
  /// across the whole engine grid like every contract counter;
  /// rebuild_stats().weak_calls == weak_calls() exactly.
  [[nodiscard]] virtual const RebuildStats& rebuild_stats() const = 0;
  /// Coordinator message ledger (replay_core.hpp) — all-zero for
  /// single-participant stores; per-cell deterministic and monotone, but NOT
  /// part of the cross-cell bit-identity contract.
  [[nodiscard]] virtual CommStats comm_stats() const = 0;

  void insert(Vertex u, Vertex v) { apply(EdgeUpdate::ins(u, v)); }
  void erase(Vertex u, Vertex v) { apply(EdgeUpdate::del(u, v)); }

  /// MatchingView over the live matching (defined after LiveEngineView).
  [[nodiscard]] LiveEngineView view() const;
};

/// MatchingView adapter over a live engine: exact answers, epoch = update
/// count. Borrows the engine; single-threaded use only (the underlying
/// matching mutates with every update — for concurrent readers use the
/// matching service's snapshots instead).
class LiveEngineView final : public MatchingView {
 public:
  explicit LiveEngineView(const ReplayEngine& engine) : engine_(&engine) {}

  [[nodiscard]] Vertex num_vertices() const override {
    return engine_->num_vertices();
  }
  [[nodiscard]] Vertex mate_of(Vertex v) const override {
    return engine_->matching().mate(v);
  }
  [[nodiscard]] std::int64_t size() const override {
    return engine_->matching().size();
  }
  [[nodiscard]] std::int64_t epoch() const override { return engine_->updates(); }

 private:
  const ReplayEngine* engine_;
};

inline LiveEngineView ReplayEngine::view() const { return LiveEngineView(*this); }

/// CRTP implementation of the `ReplayEngine` surface for a facade holding a
/// `Store store_` and a `DynamicReplayCore<Store> core_` (declare this base a
/// friend). Only `weak_calls()` is left for the facade — it reads the
/// facade's concrete oracle.
template <class Derived, class Store>
class ReplayEngineFacade : public ReplayEngine {
  static_assert(AdjacencyStorePolicy<Store>,
                "ReplayEngineFacade's Store must model "
                "bmf::AdjacencyStorePolicy (src/dynamic/replay_core.hpp)");

 public:
  void apply(const EdgeUpdate& update) final { self().core_.apply(update); }
  void apply_batch(std::span<const EdgeUpdate> batch) final {
    self().core_.apply_batch(batch);
  }

  [[nodiscard]] Vertex num_vertices() const final {
    return self().store_.num_vertices();
  }
  [[nodiscard]] const Matching& matching() const final {
    return self().core_.matching();
  }
  [[nodiscard]] Graph snapshot() const final { return self().store_.snapshot(); }
  [[nodiscard]] MatchingSnapshot export_snapshot(std::int64_t epoch) const final {
    return self().core_.export_snapshot(epoch);
  }

  [[nodiscard]] std::int64_t updates() const final {
    return self().core_.updates();
  }
  [[nodiscard]] std::int64_t rebuilds() const final {
    return self().core_.rebuilds();
  }
  [[nodiscard]] const std::vector<std::int64_t>& rebuild_positions()
      const final {
    return self().core_.rebuild_positions();
  }
  [[nodiscard]] const ReplayOverlapStats& overlap_stats() const final {
    return self().core_.overlap_stats();
  }
  [[nodiscard]] const RebuildStats& rebuild_stats() const final {
    return self().core_.rebuild_stats();
  }
  [[nodiscard]] CommStats comm_stats() const final {
    return self().store_.comm_stats();
  }

 private:
  [[nodiscard]] Derived& self() { return static_cast<Derived&>(*this); }
  [[nodiscard]] const Derived& self() const {
    return static_cast<const Derived&>(*this);
  }
};

}  // namespace bmf
