#pragma once

/// Sharded vertex-partition dynamic matching engine.
///
/// The distributed vertex-partition regime (Robinson & Zhu 2025 applied to
/// Section 7 of the paper; batches as the unit of sharding following
/// Ghaffari & Trygub 2024): the vertex set is partitioned into `k`
/// contiguous shards, and each shard *owns* the per-vertex state of its
/// range —
///
///  * its slice of the flat sorted adjacency (the rows of the owned
///    vertices; an edge {u, v} materializes as two directed copies, one in
///    owner(u)'s slice and one in owner(v)'s), and
///  * the corresponding row range of the A_weak adjacency bit-matrix
///    (ShardedMatrixOracle below).
///
/// The storage layout lives in `ShardedAdjacencyStore`, an AdjacencyStore
/// policy for the shared `DynamicReplayCore` (replay_core.hpp):
/// `ShardedDynamicMatcher` is a thin facade over
/// `DynamicReplayCore<ShardedAdjacencyStore>`, so every decision — prefix
/// cuts, the rebuild-budget replay, heavy-run reservation rematch, rebuild
/// arming and overlap — is literally the same implementation as
/// `DynamicMatcher`'s. The store routes each batch's structural directed
/// copies to their owning shards (the `Problem1Instance::apply_chunk`
/// resolution discipline — chunks shard cleanly), shards apply local
/// adjacency and bit-row mutations in parallel replaying their op lists in
/// (shard-id, update-index) order, while **all matching commits run through
/// the serial coordinator in update order** and the Theorem 6.2 rebuild
/// budget is replayed globally:
///
///   ShardedDynamicMatcher is **bit-identical to DynamicMatcher** —
///   matchings (mate by mate), graph, rebuild counts *and positions*, and
///   A_weak call counts — at every (shards x threads) combination,
///   including shards = 1 and threads = 1.
///
/// That holds because every ingredient reproduces the sequential decision
/// sequence exactly: shard slices store neighbors ascending (so neighbor
/// scans and `snapshot()` equal DynGraph's), the decision machinery is the
/// one shared core, and the sharded oracle answers queries bit-identically
/// to MatrixWeakOracle (below).
///
/// ## Sharded masked row probes (the A_weak serial fraction)
///
/// `MatrixWeakOracle::query_impl` is a serial greedy over S: probe row u
/// against the availability mask, commit, shrink the mask. PR 3 exposed that
/// loop as a visible serial fraction of rebuild time. ShardedMatrixOracle
/// parallelizes it with a speculative scan + serial commit:
///
///  1. every row of S is probed concurrently (shard-local rows, grouped by
///     owning shard) against the *pre-query* availability mask;
///  2. a serial greedy commit walks S in order: a vertex already consumed is
///     skipped, a speculative candidate that is still available commits, a
///     stale candidate (consumed by an earlier commit) re-probes inline
///     against the live mask.
///
/// Availability only shrinks, so a still-available speculative candidate is
/// provably the live mask's first common neighbor too (min over a superset
/// that still contains it) — the commit sequence equals the serial greedy's
/// choice for choice, and answers are bit-identical to MatrixWeakOracle at
/// any shard/thread count. `words_touched()` charges the words the probes
/// actually scan (speculative, inline, and wasted scans alike), so it is
/// deterministic for a given engine but — unlike matchings and call counts —
/// legitimately differs from the serial oracle's count, which never probes
/// speculatively.

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/framework.hpp"
#include "dynamic/replay_core.hpp"
#include "dynamic/replay_engine.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/bit_matrix.hpp"
#include "graph/dyn_graph.hpp"
#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// Contiguous vertex partition into k shards: shard s owns
/// [s * block, min(n, (s+1) * block)) with block = ceil(n / k). The last
/// shard absorbs the remainder, so every vertex has exactly one owner.
class VertexPartition {
 public:
  VertexPartition(Vertex n, int shards);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] int shards() const { return k_; }
  [[nodiscard]] int owner(Vertex v) const {
    return block_ == 0 ? 0
                       : static_cast<int>(
                             std::min<Vertex>(v / block_, static_cast<Vertex>(k_ - 1)));
  }
  [[nodiscard]] Vertex begin(int shard) const {
    return std::min<Vertex>(n_, static_cast<Vertex>(shard) * block_);
  }
  [[nodiscard]] Vertex end(int shard) const {
    return shard == k_ - 1 ? n_
                           : std::min<Vertex>(n_, static_cast<Vertex>(shard + 1) *
                                                      block_);
  }
  [[nodiscard]] Vertex size(int shard) const { return end(shard) - begin(shard); }

 private:
  Vertex n_;
  int k_;
  Vertex block_;
};

/// The vertex-partition RebuildParticipation policy (core/framework.hpp):
/// each shard scans the snapshot rows of the vertices it owns into a private
/// pos-tagged candidate buffer, merged by the coordinator with the canonical
/// ascending-pos splice — so ordering is inherited, and this class only adds
/// the rebuild-side message accounting. `note_rebuild_begin` charges the
/// snapshot distribution (both directed copies of every edge travel to their
/// row owners), `note_rebuild_gather` one coordinator gather round per
/// discovery sweep iteration. At shards = 1 nothing crosses a boundary and
/// both hooks charge nothing, keeping the k = 1 engine's ledger all-zero.
///
/// Thread safety: the counters are written only by the thread running the
/// Theorem 6.2 boost (the rebuild-overlap worker or the caller itself) and
/// read after its join — the words_touched_ single-writer discipline; no lock.
class ShardedRebuildParticipation final : public RebuildParticipation {
 public:
  explicit ShardedRebuildParticipation(const VertexPartition& part)
      : part_(part) {}

  [[nodiscard]] int participants() const override { return part_.shards(); }
  [[nodiscard]] int owner(Vertex v) const override { return part_.owner(v); }

  void note_rebuild_begin(const Graph& snapshot) override {
    if (part_.shards() <= 1) return;
    bytes_ += 2 * snapshot.num_edges() *
              static_cast<std::int64_t>(sizeof(Vertex));
    ++rounds_;
  }
  void note_rebuild_gather(std::int64_t bytes) override {
    if (part_.shards() <= 1) return;
    bytes_ += bytes;
    ++rounds_;
  }

  [[nodiscard]] std::int64_t bytes() const { return bytes_; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }

 private:
  const VertexPartition& part_;
  std::int64_t bytes_ = 0;
  std::int64_t rounds_ = 0;
};

/// One directed copy of a structural update, owned by the shard holding
/// `vertex`'s row.
struct ShardOp {
  Vertex vertex, other;
  bool insert;
};

/// A batch's structural subset routed to its owning shards: per-shard
/// directed op lists, each in update order (so a per-shard serial replay is
/// the (shard-id, update-index)-ordered merge), plus the net edge delta.
/// Routing once serves both the adjacency slices and the oracle row ranges.
struct RoutedOps {
  std::vector<std::vector<ShardOp>> per_shard;
  std::int64_t edge_delta = 0;
  std::int64_t total_ops = 0;
};

[[nodiscard]] RoutedOps route_structural_ops(
    const VertexPartition& part, std::span<const EdgeUpdate> updates,
    std::span<const std::uint8_t> structural);

/// A_weak over shard-owned bit-matrix row ranges; answers bit-identical to
/// MatrixWeakOracle (see the file comment for the speculative-probe scheme).
class ShardedMatrixOracle final : public WeakOracle {
 public:
  ShardedMatrixOracle(Vertex n, int shards, int threads);

  [[nodiscard]] double lambda() const override { return 0.5; }
  void on_insert(Vertex u, Vertex v) override;
  void on_erase(Vertex u, Vertex v) override;
  /// Shard-parallel maintenance: each shard replays the directed copies it
  /// owns serially in batch order; shards own disjoint row ranges, so the
  /// final matrix state equals the serial replay at any thread count.
  void on_batch(std::span<const EdgeUpdate> updates,
                std::span<const std::uint8_t> structural, int threads) override;
  /// on_batch on pre-routed ops (lets callers route a batch once and feed
  /// both the graph slices and the oracle).
  void apply_ops(const RoutedOps& ops, int threads);

  [[nodiscard]] Vertex num_vertices() const { return part_.num_vertices(); }
  [[nodiscard]] const VertexPartition& partition() const { return part_; }
  [[nodiscard]] bool bit(Vertex u, Vertex v) const;

  /// Words of row data scanned by probes (speculative + inline re-probes) —
  /// exact, monotone, and thread-count invariant for a fixed shard count.
  [[nodiscard]] std::int64_t words_touched() const { return words_touched_; }

  /// Rebuild-query gather traffic: each A_weak query's speculative probe
  /// results travel from their owning shards to the serial commit at the
  /// coordinator (one slot per row, one round per query). Zero at shards = 1.
  /// Same single-writer discipline as words_touched_ (the boost thread).
  [[nodiscard]] std::int64_t query_gather_bytes() const {
    return query_gather_bytes_;
  }
  [[nodiscard]] std::int64_t query_gather_rounds() const {
    return query_gather_rounds_;
  }

 protected:
  WeakQueryResult query_impl(std::span<const Vertex> s, double delta) override;
  WeakQueryResult query_cover_impl(std::span<const Vertex> s_plus,
                                   std::span<const Vertex> s_minus,
                                   double delta) override;

 private:
  /// first_common_in_row of u's owned row against mask; adds the words
  /// scanned to *words.
  [[nodiscard]] std::int64_t probe(Vertex u, const BitVec& mask,
                                   std::int64_t* words) const;
  /// The shared speculative-scan + serial-greedy-commit engine behind both
  /// query flavors; `consume_plus` distinguishes G[S] greedy (both endpoints
  /// leave the mask, consumed rows skip) from cover greedy (only the minus
  /// copy leaves the mask, every plus row probes).
  WeakQueryResult greedy(std::span<const Vertex> rows, BitVec& avail,
                         bool consume_plus, double delta);

  VertexPartition part_;
  std::vector<BitMatrix> slices_;  ///< shard s: size(s) x n rows
  int threads_;
  std::int64_t words_touched_ = 0;
  std::int64_t query_gather_bytes_ = 0;
  std::int64_t query_gather_rounds_ = 0;
};

/// The vertex-partition AdjacencyStore policy: per-shard sorted adjacency
/// slices plus the row-sharded oracle. Satisfies the replay_core.hpp store
/// contract; batched entry points route once and feed both state slices.
class ShardedAdjacencyStore {
 public:
  ShardedAdjacencyStore(const VertexPartition& part, ShardedMatrixOracle& oracle);

  [[nodiscard]] Vertex num_vertices() const { return part_.num_vertices(); }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;
  /// Neighbors of v ascending, read from the owning shard's slice —
  /// identical to DynGraph::neighbors on the same update stream.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const { return row(v); }
  /// Assembled across shards in vertex order; equals DynGraph::snapshot().
  [[nodiscard]] Graph snapshot() const;
  [[nodiscard]] WeakOracle& oracle() { return oracle_; }
  /// Routing pays off with real shards even on one thread; the serial apply
  /// loop stays the reference semantics only when both axes are trivial.
  [[nodiscard]] bool use_batch_engine(int threads) const {
    return threads > 1 || part_.shards() > 1;
  }

  bool toggle(const EdgeUpdate& up);

  void apply_structural(std::span<const EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads);
  void apply_adjacency(std::span<const EdgeUpdate> updates,
                       std::span<const std::uint8_t> structural, int threads);
  void flush_oracle(std::span<const EdgeUpdate> updates,
                    std::span<const std::uint8_t> structural, int threads);

  /// The vertex-partition participation policy the core hands to every
  /// Theorem 6.2 boost (replay_core.hpp contract).
  [[nodiscard]] RebuildParticipation& rebuild_participation() {
    return participation_;
  }
  /// Folds the store's boundary traffic — batch routing (charged here),
  /// rebuild snapshot/gather rounds (participation_), and rebuild-query probe
  /// gathers (the oracle) — into one ledger. All-zero at shards = 1.
  [[nodiscard]] CommStats comm_stats() const {
    CommStats out;
    out.batch_bytes = batch_bytes_;
    out.batch_rounds = batch_rounds_;
    out.rebuild_bytes = participation_.bytes() + oracle_.query_gather_bytes();
    out.rebuild_rounds = participation_.rounds() + oracle_.query_gather_rounds();
    return out;
  }

  [[nodiscard]] std::int64_t num_edges() const { return m_edges_; }

 private:
  /// apply_adjacency's routing, kept so a flush_oracle over the *same* spans
  /// (the deferred-oracle overlap path) reuses it instead of routing again.
  /// Keyed on span identity: routing depends only on the partition and the
  /// update list, so a cached entry can never go stale — only miss.
  struct CachedRoute {
    const EdgeUpdate* updates = nullptr;
    const std::uint8_t* flags = nullptr;
    std::size_t count = 0;
    RoutedOps ops;
  };

  [[nodiscard]] std::vector<Vertex>& row(Vertex v);
  [[nodiscard]] const std::vector<Vertex>& row(Vertex v) const;
  void link(Vertex u, Vertex v);    // directed copy into owner(u)'s slice
  void unlink(Vertex u, Vertex v);  // directed copy out of owner(u)'s slice

  /// Applies pre-routed ops to the adjacency slices shard-parallel (each
  /// shard replays its list in update order) and updates m_edges_.
  void apply_graph_ops(const RoutedOps& ops, int threads);

  /// Charges one routing round of `total_ops` directed copies to the batch
  /// ledger; no-op at shards = 1 or for an empty flush (nothing crosses).
  void charge_route(std::int64_t total_ops);

  const VertexPartition& part_;
  /// shard -> local row -> sorted neighbors (the shard's adjacency slice).
  std::vector<std::vector<std::vector<Vertex>>> slices_;
  std::int64_t m_edges_ = 0;
  ShardedMatrixOracle& oracle_;
  ShardedRebuildParticipation participation_;
  CachedRoute pending_oracle_route_;
  /// Batch-side comm ledger (routing traffic). Written only by the update
  /// thread — never by the overlap rebuild worker, which touches only the
  /// distinct rebuild-side fields above; the worker's join publishes both.
  std::int64_t batch_bytes_ = 0;
  std::int64_t batch_rounds_ = 0;
};

static_assert(AdjacencyStorePolicy<ShardedAdjacencyStore>,
              "ShardedAdjacencyStore must model AdjacencyStorePolicy");
static_assert(RebuildParticipationPolicy<ShardedRebuildParticipation>,
              "ShardedRebuildParticipation must model "
              "RebuildParticipationPolicy");

/// The shared replay-core knobs plus the shard count (replay_core.hpp; the
/// flat facade derives from the same struct, so the engines cannot drift).
struct ShardedMatcherConfig : DynamicCoreConfig {
  /// Vertex shards (>= 1; > n is legal, trailing shards own empty ranges).
  /// Results are bit-identical at any setting.
  int shards = 1;
};

/// The whole `ReplayEngine` surface — apply/apply_batch (bit-identical to
/// `DynamicMatcher` on the same stream at any shards x threads),
/// matching/snapshot/export_snapshot, and the counters incl.
/// rebuild_positions()/overlap_stats()/rebuild_stats()/comm_stats() (the
/// comm ledger is live at shards > 1, all-zero at shards = 1) — is inherited
/// from
/// `ReplayEngineFacade` (replay_engine.hpp); only the oracle-reading
/// `weak_calls()` and the partition/store extras live here.
class ShardedDynamicMatcher final
    : public ReplayEngineFacade<ShardedDynamicMatcher, ShardedAdjacencyStore> {
 public:
  ShardedDynamicMatcher(Vertex n, const ShardedMatcherConfig& cfg);

  [[nodiscard]] const VertexPartition& partition() const { return part_; }
  [[nodiscard]] const ShardedMatrixOracle& oracle() const { return oracle_; }

  [[nodiscard]] std::int64_t num_edges() const { return store_.num_edges(); }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const {
    return store_.has_edge(u, v);
  }
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return store_.neighbors(v);
  }

  [[nodiscard]] std::int64_t weak_calls() const override {
    return oracle_.calls();
  }

 private:
  friend class ReplayEngineFacade<ShardedDynamicMatcher, ShardedAdjacencyStore>;

  VertexPartition part_;
  ShardedMatrixOracle oracle_;
  ShardedAdjacencyStore store_;
  DynamicReplayCore<ShardedAdjacencyStore> core_;
};

}  // namespace bmf
