#include "dynamic/replay_core.hpp"

#include <string>

namespace bmf {

void validate_core_config(const DynamicCoreConfig& cfg, int shards,
                          const char* who) {
  const auto fail = [who](const char* what) {
    throw std::invalid_argument(std::string(who) + ": " + what);
  };
  if (!(cfg.eps > 0 && cfg.eps <= 1)) fail("eps out of range (need 0 < eps <= 1)");
  if (cfg.threads < 0) fail("threads must be >= 0 (0 = hardware concurrency)");
  if (cfg.rebuild_every < 0) fail("rebuild_every must be >= 0 (0 = adaptive)");
  if (shards < 1) fail("shards must be >= 1");
}

DynamicCoreConfig resolve_core_config(DynamicCoreConfig cfg) {
  // The rebuild engine runs at eps/2 on the shared seed/threads knobs, so
  // rebuild trajectories line up bit for bit across engines and thread
  // counts (parallelism never changes results, so forcing it is safe).
  cfg.sim.core.eps = cfg.eps / 2.0;
  cfg.sim.core.seed = cfg.seed;
  cfg.sim.core.threads = cfg.threads;
  return cfg;
}

}  // namespace bmf
