#pragma once

/// The bipartite double cover B of G (Definition 6.3) and the Lemma 7.8
/// matching transfer.
///
/// B splits every vertex v into an outer copy v+ and an inner copy v-, with
/// edges (u+, v-) and (v+, u-) for every {u,v} in E(G). The dynamic framework
/// uses B to keep the weak oracle away from inner-inner arcs (Section 2); the
/// OMv reduction of Section 7.4 uses it to turn general-graph queries into
/// bipartite ones. Lemma 7.8: mu(G[S]) <= mu(B[S+ u S-]), and any B-matching
/// transfers back to a G-matching at a factor-6 loss in O(n) time.

#include <vector>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// Materializes B as a 2n-vertex graph: v+ = v, v- = v + n. (The dynamic
/// algorithms never build this explicitly — they answer B-queries through
/// G's adjacency — but tests and benchmarks use it as ground truth.)
[[nodiscard]] Graph build_bipartite_cover(const Graph& g);

/// Lemma 7.8: converts a matching of B — given as pairs (u, v) meaning the
/// B-edge (u+, v-) — into a matching of G of size >= |M_B| / 6. The pairs
/// form a graph of maximum degree 2 on V(G) (each vertex has one + copy and
/// one - copy); picking alternate edges along its paths and cycles yields
/// the result.
[[nodiscard]] std::vector<Edge> cover_matching_to_graph_matching(
    Vertex n, const std::vector<Edge>& cover_matching);

}  // namespace bmf
