#include "dynamic/static_weak.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace bmf {
namespace {

CoreConfig make_fallback_config(const CoreConfig& core) {
  CoreConfig cfg = core;
  cfg.iteration_mode = IterationMode::kUntilEmpty;
  return cfg;
}

}  // namespace

WeakOracleDriver::WeakOracleDriver(const Graph& g, WeakOracle& oracle,
                                   const WeakSimConfig& cfg, std::uint64_t seed,
                                   RebuildParticipation* participation)
    : g_(g),
      oracle_(oracle),
      cfg_(cfg),
      rng_(seed),
      fallback_cfg_(make_fallback_config(cfg.core)),
      fallback_(g, fallback_oracle_, fallback_cfg_, participation) {}

bool WeakOracleDriver::exhaustive() const {
  return cfg_.strict && cfg_.exhaustive_fallback && fallback_.exhaustive();
}

void WeakOracleDriver::begin_phase(StructureForest& forest) {
  // Unvisited matched vertices at phase start: every matched vertex (free
  // vertices root their own structures). Filtered lazily as they get visited.
  unvisited_pool_.clear();
  const Matching& m = forest.matching();
  for (Vertex v = 0; v < g_.num_vertices(); ++v)
    if (m.mate(v) != kNoVertex) unvisited_pool_.push_back(v);
}

void WeakOracleDriver::in_structure_sweep(StructureForest& forest, int stage) {
  // Invariant 6.10: no s-feasible arc connects two vertices of the same
  // structure when the sampled iterations begin.
  for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
    const StructureInfo& si = forest.structure(sid);
    if (si.removed || si.on_hold || si.extended || si.working == kNoBlossom)
      continue;
    if (forest.outer_level(si.working) != stage) continue;
    bool done = false;
    for (Vertex w : forest.blossom_vertices(si.working)) {
      for (Vertex x : g_.neighbors(w)) {
        if (forest.structure_of(x) != sid) continue;
        if (!forest.is_inner(x) || forest.label(x) <= stage + 1) continue;
        if (forest.can_overtake(w, x, stage + 1)) {
          forest.overtake(w, x, stage + 1);
          done = true;  // the structure is extended now
          break;
        }
      }
      if (done) break;
    }
  }
}

void WeakOracleDriver::run_overtake_stage(StructureForest& forest, int stage) {
  in_structure_sweep(forest, stage);

  int stall = 0;
  std::int64_t iterations = 0;
  while (stall < cfg_.sample_patience && iterations < cfg_.max_stage_iterations) {
    // Eligible left-hand structures at this stage (Definition 5.8 via
    // Section 6.6 sampling rules).
    bool any_eligible = false;
    for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
      const StructureInfo& si = forest.structure(sid);
      if (si.removed || si.on_hold || si.extended || si.working == kNoBlossom)
        continue;
      if (forest.outer_level(si.working) == stage) {
        any_eligible = true;
        break;
      }
    }
    if (!any_eligible) break;

    std::vector<Vertex> s_plus, s_minus;
    for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
      const StructureInfo& si = forest.structure(sid);
      if (si.removed) continue;
      const Vertex sample = si.members[static_cast<std::size_t>(
          rng_.next_below(si.members.size()))];
      if (!si.on_hold && !si.extended && si.working != kNoBlossom &&
          forest.outer_level(si.working) == stage && forest.is_outer(sample) &&
          forest.omega(sample) == si.working) {
        s_plus.push_back(sample);
      } else if (forest.is_inner(sample) && forest.label(sample) > stage + 1) {
        s_minus.push_back(sample);
      }
    }
    // Unvisited matched vertices join as singleton regions.
    std::erase_if(unvisited_pool_,
                  [&](Vertex v) { return !forest.is_unvisited(v); });
    for (Vertex v : unvisited_pool_)
      if (forest.label(v) > stage + 1) s_minus.push_back(v);

    if (s_plus.empty() || s_minus.empty()) break;
    const WeakQueryResult res = oracle_.query_cover(s_plus, s_minus, cfg_.delta);
    ++sampled_iterations_;
    ++iterations;
    const bool usable = cfg_.strict || !res.bottom;
    std::int64_t applied = 0;
    if (usable) {
      for (const Edge& e : res.matching) {
        // Re-derive k from the overtaker's current level; can_overtake
        // re-validates everything else.
        if (forest.structure_of(e.u) == kNoStructure) continue;
        const StructureInfo& si =
            forest.structure(forest.structure_of(e.u));
        if (si.working == kNoBlossom || forest.omega(e.u) != si.working) continue;
        const int k = forest.outer_level(si.working) + 1;
        if (forest.can_overtake(e.u, e.v, k)) {
          forest.overtake(e.u, e.v, k);
          ++applied;
        }
      }
    }
    if (applied == 0)
      ++stall;
    else
      stall = 0;
  }
}

void WeakOracleDriver::extend_active_path(StructureForest& forest) {
  const int lmax = cfg_.core.ell_max();
  for (int s = 0; s <= lmax; ++s) run_overtake_stage(forest, s);
  if (cfg_.exhaustive_fallback) fallback_.extend_active_path(forest);
}

void WeakOracleDriver::contract_and_augment(StructureForest& forest) {
  // Step 1 (Section 6.5): exhaust type-1 arcs by scanning in-structure edges;
  // this is O(n * Delta^2) local work, no oracle involved. Reuse the
  // framework's local contraction pass via the fallback driver below when
  // enabled; otherwise run a minimal local pass here.
  for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
    bool changed = true;
    while (changed) {
      changed = false;
      const StructureInfo& si = forest.structure(sid);
      if (si.removed || si.working == kNoBlossom) break;
      for (Vertex w : forest.blossom_vertices(si.working)) {
        for (Vertex x : g_.neighbors(w)) {
          if (forest.can_contract(w, x)) {
            forest.contract(w, x);
            changed = true;
            break;
          }
        }
        if (changed) break;
      }
    }
  }

  // Step 2: sampled Augment iterations — one uniformly random *outer* vertex
  // per structure, A_weak on G[S] (Figure 4).
  int stall = 0;
  std::int64_t iterations = 0;
  std::vector<Vertex> outer_members;
  while (stall < cfg_.sample_patience && iterations < cfg_.max_stage_iterations) {
    std::vector<Vertex> sample_set;
    std::int64_t live = 0;
    for (StructureId sid = 0; sid < forest.num_structures(); ++sid) {
      const StructureInfo& si = forest.structure(sid);
      if (si.removed) continue;
      ++live;
      outer_members.clear();
      for (Vertex w : si.members)
        if (forest.is_outer(w)) outer_members.push_back(w);
      BMF_ASSERT(!outer_members.empty());  // the root is always outer
      sample_set.push_back(outer_members[static_cast<std::size_t>(
          rng_.next_below(outer_members.size()))]);
    }
    if (live < 2) break;
    const WeakQueryResult res = oracle_.query(sample_set, cfg_.delta);
    ++sampled_iterations_;
    ++iterations;
    const bool usable = cfg_.strict || !res.bottom;
    std::int64_t applied = 0;
    if (usable) {
      for (const Edge& e : res.matching) {
        if (forest.can_augment(e.u, e.v)) {
          forest.augment(e.u, e.v);
          ++applied;
        }
      }
    }
    if (applied == 0)
      ++stall;
    else
      stall = 0;
  }

  if (cfg_.exhaustive_fallback) fallback_.contract_and_augment(forest);
}

Matching weak_initial_matching(Vertex n, WeakOracle& oracle,
                               const WeakSimConfig& cfg) {
  Matching m(n);
  for (;;) {
    const std::vector<Vertex> free = m.free_vertices();
    if (free.size() < 2) break;
    const WeakQueryResult res = oracle.query(free, cfg.delta);
    if (res.matching.empty()) break;
    if (!cfg.strict && res.bottom) break;
    for (const Edge& e : res.matching)
      if (m.is_free(e.u) && m.is_free(e.v)) m.add(e.u, e.v);
  }
  return m;
}

WeakBoostResult static_weak_boost(const Graph& g, Matching m, WeakOracle& oracle,
                                  const WeakSimConfig& cfg,
                                  RebuildParticipation* participation) {
  WeakBoostResult result{std::move(m), {}, 0, 0, 0};
  const std::int64_t calls_before = oracle.calls();
  // The boost begins by distributing the frozen snapshot to the layout's
  // participants; the in-structure sweeps and local contractions below stay
  // serial coordinator reads and are deliberately not charged (the exact-cost
  // accounting caveat, docs/replay_core.md).
  if (participation != nullptr) participation->note_rebuild_begin(g);
  WeakOracleDriver driver(g, oracle, cfg, cfg.core.seed, participation);
  PhaseEngine engine(g, cfg.core);
  result.outcome = engine.run(result.matching, driver);
  result.weak_calls = oracle.calls() - calls_before;
  result.sampled_iterations = driver.sampled_iterations();
  return result;
}

WeakBoostResult static_weak_matching(const Graph& g, WeakOracle& oracle,
                                     const WeakSimConfig& cfg) {
  const std::int64_t calls_before = oracle.calls();
  Matching initial = weak_initial_matching(g.num_vertices(), oracle, cfg);
  const std::int64_t initial_calls = oracle.calls() - calls_before;
  WeakBoostResult result =
      static_weak_boost(g, std::move(initial), oracle, cfg);
  result.initial_weak_calls = initial_calls;
  result.weak_calls += initial_calls;
  return result;
}

}  // namespace bmf
