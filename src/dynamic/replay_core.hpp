#pragma once

/// The unified dynamic replay core (Theorem 7.1's update loop, one home).
///
/// PR 2-4 grew two bit-identity-critical copies of the same decision
/// machinery: `DynamicMatcher` (flat single-node `DynGraph` adjacency) and
/// `ShardedDynamicMatcher` (vertex-partitioned shard slices) each carried
/// their own rebuild-budget replay, conflict-free prefix cutting, heavy
/// deletion-run reservation rematch, and rebuild arming. Following the
/// batch-dynamic literature's separation of update-commit discipline from
/// storage layout (Ghaffari & Trygub 2024; Robinson & Zhu 2025),
/// `DynamicReplayCore<Store>` is that discipline extracted once, templated
/// over an **AdjacencyStore policy** that owns the storage layout:
///
///  * `FlatAdjacencyStore` (below) — a `DynGraph` plus an external
///    `WeakOracle`; the single-node engine.
///  * `ShardedAdjacencyStore` (sharded_matcher.hpp) — per-shard adjacency
///    slices plus the row-sharded `ShardedMatrixOracle`.
///
/// The policy contract an AdjacencyStore must satisfy — machine-checked by
/// the `bmf::AdjacencyStorePolicy` concept below (shape) and by the
/// `DynamicReplayCore` static_assert cascade (one named diagnostic per
/// missing member; exercised by tests/compile_fail/):
///
///   Vertex num_vertices() const;
///   bool has_edge(Vertex u, Vertex v) const;          // O(log deg)
///   std::span<const Vertex> neighbors(Vertex) const;  // ascending ids
///   Graph snapshot() const;                           // == DynGraph order
///   WeakOracle& oracle();
///   bool use_batch_engine(int threads) const;
///   bool toggle(const EdgeUpdate&);   // adjacency + oracle; true iff the
///                                     // update changed edge presence
///   // Batched application of a structural subset with pairwise-disjoint
///   // endpoints (flags[i] != 0 selects); `apply_structural` maintains
///   // adjacency and oracle together, the split pair defers the oracle for
///   // the rebuild-overlap path (never touch the oracle while rebuild
///   // queries are in flight):
///   void apply_structural(updates, flags, threads);
///   void apply_adjacency(updates, flags, threads);
///   void flush_oracle(updates, flags, threads);
///   // Rebuild participation (core/framework.hpp): the policy object the
///   // Theorem 6.2 boost's H'/H'_s exhaustion sweeps fan out through —
///   // shard-local candidate sweeps merged by the coordinator in canonical
///   // order. Flat stores return the trivial single-participant policy. The
///   // returned object must outlive the store; the core passes it into
///   // every static_weak_boost call (so the rebuild path drives the store's
///   // policy instead of reaching around it into FrameworkDriver):
///   RebuildParticipation& rebuild_participation();
///   // Coordinator message ledger (CommStats below), folded across the
///   // store's state slices (participation + oracle + batch routing);
///   // all-zero for single-participant layouts:
///   CommStats comm_stats() const;
///
/// Everything else — matching, counters, scratch marks, budget replay, and
/// every decision sequence — lives here, so the two engines cannot drift:
/// the determinism contract (bit-identical matchings, graph, rebuild
/// *positions*, and A_weak call counts versus the sequential `apply` loop at
/// any threads / shards / batch-size setting) is one implementation pinned by
/// one differential harness (tests/test_replay_core.cpp).
///
/// ## Batched updates (the batch determinism contract)
///
/// `apply_batch` cuts the batch into maximal *conflict-free prefixes* (runs
/// of updates with pairwise-disjoint endpoints, none deleting a currently
/// matched edge), evaluates per-update decisions concurrently against the
/// pre-prefix state, replays the rebuild budget serially to truncate the
/// prefix at the exact sequential trigger position, applies structural
/// mutations batch-parallel, and commits matching changes serially in update
/// order. Heavy deletion runs (consecutive matched-edge deletions with
/// disjoint endpoints) take the parallel reservation rematch: a worst-case
/// budget replay bounds the run so no rebuild can fire inside it, each freed
/// endpoint concurrently reserves its ascending possibly-free candidate
/// list, and a serial in-order commit takes the first still-free candidate —
/// exactly the sequential minimum-free-neighbor repair.
///
/// ## Rebuild/update overlap with pre-classified deletion windows
///
/// When a prefix arms a Theorem 6.2 rebuild, the rebuild runs on a dedicated
/// thread against the immutable snapshot and a copy of the matching while
/// the caller applies the next conflict-free window's adjacency mutations.
/// PR 3 stopped that window at the first deletion because a deletion's
/// heaviness (does it hit a matched edge?) depends on the rebuild's output.
/// This core instead **pre-classifies deletions against the pre-rebuild
/// matching**: a deletion predicted light (its edge unmatched before the
/// rebuild) joins the window — its graph mutation is matching-independent —
/// and the classification is validated after the join against the rebuilt
/// matching. Window endpoints are pairwise disjoint and window commits never
/// touch a deletion's endpoints, so "matched at this deletion's sequential
/// turn" equals "matched in the rebuilt matching" exactly; the validation
/// scan is therefore exact. On a misprediction (boosting matched the edge)
/// the core falls back serially: the structural suffix beyond the
/// mispredicted deletion is rewound (disjoint endpoints make inverse ops
/// order-free), the oracle catches up to the sequential point, the validated
/// prefix commits, the deletion takes the sequential heavy repair, and the
/// remaining updates re-enter the batch loop — still bit-identical, pinned
/// by the planted-misprediction tests. `ReplayOverlapStats` counts windows,
/// overlapped deletions, and mispredictions so tests can assert the path is
/// genuinely exercised.

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <exception>
#include <span>
#include <utility>
#include <vector>

#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/dyn_graph.hpp"
#include "matching/matching.hpp"
#include "matching/matching_view.hpp"
#include "util/annotations.hpp"
#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

/// The one config behind every replay-core engine. Facade configs
/// (`DynamicMatcherConfig`, `ShardedMatcherConfig`) derive from this so the
/// knobs cannot drift apart or be forwarded by ad-hoc field copies.
struct DynamicCoreConfig {
  double eps = 0.25;
  WeakSimConfig sim;  ///< rebuild configuration (sim.core.eps is forced to eps/2)
  /// Updates between rebuilds; 0 = adaptive max(1, floor(eps*|M|/4)).
  std::int64_t rebuild_every = 0;
  std::uint64_t seed = 1;
  /// Thread-pool fan-out for `apply_batch` and for the Theorem 6.2 rebuild's
  /// internal H'/H'_s discovery (forced into `sim.core.threads`; 0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical at any setting.
  int threads = 0;
  /// Overlap an armed rebuild (dedicated thread, snapshot + matching copy)
  /// with the next conflict-free window's graph mutations, including
  /// predicted-light deletions. Only active on the batched path with
  /// threads > 1; bit-identical either way.
  bool overlap_rebuild = true;
};

/// Validates the shared knobs (and the shard count, for sharded engines;
/// pass shards = 1 otherwise). Throws std::invalid_argument; `who` prefixes
/// the message. shards > n is legal — trailing shards own empty ranges.
void validate_core_config(const DynamicCoreConfig& cfg, int shards, const char* who);

/// `cfg` with the rebuild simulation forced onto the shared eps/seed/threads
/// knobs, so rebuild trajectories line up bit for bit across engines.
[[nodiscard]] DynamicCoreConfig resolve_core_config(DynamicCoreConfig cfg);

/// Coverage counters for the rebuild-overlap path (test observability; they
/// are deterministic for a fixed stream x config like every other counter).
struct ReplayOverlapStats {
  /// Armed rebuilds that ran on the dedicated overlap thread.
  std::int64_t overlapped_rebuilds = 0;
  /// Non-empty update windows applied while a rebuild was in flight.
  std::int64_t overlap_windows = 0;
  /// Windows whose consumed part contained at least one deletion.
  std::int64_t overlap_windows_with_deletions = 0;
  /// Updates consumed inside overlap windows / deletions among them.
  std::int64_t overlapped_updates = 0;
  std::int64_t overlapped_deletions = 0;
  /// Predicted-light deletions the rebuilt matching proved heavy (each takes
  /// the serial fixup path).
  std::int64_t deletion_mispredictions = 0;
};

/// Coordinator message ledger: bytes and rounds crossing the shard boundary,
/// split between the batch path (routing update ops to shard slices) and the
/// rebuild path (snapshot distribution, discovery-sweep candidate gathers,
/// oracle probe gathers). Stores with a single participant report all zeros —
/// the flat engine and a sharded engine at shards = 1 both have no boundary
/// to cross. The ledger counts the messages the store actually models; serial
/// coordinator reads inside a rebuild (in-structure sweeps, local
/// contractions) are deliberately not charged — the exact-cost accounting
/// caveat (docs/replay_core.md). Counters are deterministic for a fixed
/// stream x config cell and monotone over a run, but are *not* equal across
/// thread counts: the overlap path's window grouping changes which gathers
/// happen where.
struct CommStats {
  std::int64_t batch_bytes = 0;    ///< update ops routed to shard slices
  std::int64_t batch_rounds = 0;   ///< routing rounds (one per batched flush)
  std::int64_t rebuild_bytes = 0;  ///< snapshot + gathers during rebuilds
  std::int64_t rebuild_rounds = 0;
  [[nodiscard]] std::int64_t coord_bytes() const {
    return batch_bytes + rebuild_bytes;
  }
  [[nodiscard]] std::int64_t coord_rounds() const {
    return batch_rounds + rebuild_rounds;
  }
  friend bool operator==(const CommStats&, const CommStats&) = default;
};

/// Theorem 6.2 rebuild counters folded across every boost the core ran
/// (including overlapped ones). Part of the determinism contract:
/// bit-identical across engines, shards, threads, and batch sizes for a fixed
/// stream x config — unlike CommStats, which is per-cell only.
struct RebuildStats {
  std::int64_t rebuilds = 0;
  std::int64_t weak_calls = 0;  ///< == engine weak_calls(): only rebuilds query
  std::int64_t sampled_iterations = 0;
  std::int64_t certified = 0;  ///< boosts that ended with the B.4 certificate
  friend bool operator==(const RebuildStats&, const RebuildStats&) = default;
};

/// Per-member concepts behind `AdjacencyStorePolicy`. Split so the
/// static_asserts inside `DynamicReplayCore` can name the exact member a
/// candidate store is missing (one diagnostic per hole — see
/// tests/compile_fail/, which compiles a store with each member removed and
/// greps for the matching message) instead of surfacing as a wall of
/// unrelated template errors.
namespace store_contract {

template <class S>
concept HasNumVertices = requires(const S& s) {
  { s.num_vertices() } -> std::convertible_to<Vertex>;
};

template <class S>
concept HasHasEdge = requires(const S& s, Vertex u, Vertex v) {
  { s.has_edge(u, v) } -> std::convertible_to<bool>;
};

template <class S>
concept HasNeighbors = requires(const S& s, Vertex v) {
  { s.neighbors(v) } -> std::convertible_to<std::span<const Vertex>>;
};

template <class S>
concept HasSnapshot = requires(const S& s) {
  { s.snapshot() } -> std::same_as<Graph>;
};

template <class S>
concept HasOracle = requires(S& s) {
  { s.oracle() } -> std::convertible_to<WeakOracle&>;
};

template <class S>
concept HasUseBatchEngine = requires(const S& s, int threads) {
  { s.use_batch_engine(threads) } -> std::convertible_to<bool>;
};

template <class S>
concept HasToggle = requires(S& s, const EdgeUpdate& up) {
  { s.toggle(up) } -> std::convertible_to<bool>;
};

template <class S>
concept HasApplyStructural =
    requires(S& s, std::span<const EdgeUpdate> ups,
             std::span<const std::uint8_t> flags, int threads) {
      s.apply_structural(ups, flags, threads);
    };

template <class S>
concept HasApplyAdjacency =
    requires(S& s, std::span<const EdgeUpdate> ups,
             std::span<const std::uint8_t> flags, int threads) {
      s.apply_adjacency(ups, flags, threads);
    };

template <class S>
concept HasFlushOracle =
    requires(S& s, std::span<const EdgeUpdate> ups,
             std::span<const std::uint8_t> flags, int threads) {
      s.flush_oracle(ups, flags, threads);
    };

template <class S>
concept HasRebuildParticipation = requires(S& s) {
  { s.rebuild_participation() } -> std::convertible_to<RebuildParticipation&>;
};

template <class S>
concept HasCommStats = requires(const S& s) {
  { s.comm_stats() } -> std::same_as<CommStats>;
};

}  // namespace store_contract

/// The AdjacencyStore policy contract (file comment above) as a C++20
/// concept: exactly the surface `DynamicReplayCore` drives. The concept
/// checks shape; the semantic obligations (ascending `neighbors`, snapshot
/// order == DynGraph order, `toggle`'s changed-presence return, the
/// deferred-oracle split of the batch trio, participation merge order) stay
/// prose — they are pinned by the differential harness, not the type system.
template <class S>
concept AdjacencyStorePolicy =
    store_contract::HasNumVertices<S> && store_contract::HasHasEdge<S> &&
    store_contract::HasNeighbors<S> && store_contract::HasSnapshot<S> &&
    store_contract::HasOracle<S> && store_contract::HasUseBatchEngine<S> &&
    store_contract::HasToggle<S> && store_contract::HasApplyStructural<S> &&
    store_contract::HasApplyAdjacency<S> && store_contract::HasFlushOracle<S> &&
    store_contract::HasRebuildParticipation<S> && store_contract::HasCommStats<S>;

/// The flat single-node AdjacencyStore policy: a `DynGraph` plus a borrowed
/// `WeakOracle`. `DynamicMatcher` is a facade over
/// `DynamicReplayCore<FlatAdjacencyStore>`.
class FlatAdjacencyStore {
 public:
  FlatAdjacencyStore(Vertex n, WeakOracle& oracle) : g_(n), oracle_(oracle) {}

  [[nodiscard]] Vertex num_vertices() const { return g_.num_vertices(); }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const { return g_.has_edge(u, v); }
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return g_.neighbors(v);
  }
  [[nodiscard]] Graph snapshot() const { return g_.snapshot(); }
  [[nodiscard]] WeakOracle& oracle() { return oracle_; }
  [[nodiscard]] bool use_batch_engine(int threads) const { return threads > 1; }

  bool toggle(const EdgeUpdate& up) {
    if (up.insert) {
      if (!g_.insert(up.u, up.v)) return false;
      oracle_.on_insert(up.u, up.v);
    } else {
      if (!g_.erase(up.u, up.v)) return false;
      oracle_.on_erase(up.u, up.v);
    }
    return true;
  }

  void apply_structural(std::span<const EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads) {
    g_.apply_structural_disjoint(updates, structural, threads);
    oracle_.on_batch(updates, structural, threads);
  }
  void apply_adjacency(std::span<const EdgeUpdate> updates,
                       std::span<const std::uint8_t> structural, int threads) {
    g_.apply_structural_disjoint(updates, structural, threads);
  }
  void flush_oracle(std::span<const EdgeUpdate> updates,
                    std::span<const std::uint8_t> structural, int threads) {
    oracle_.on_batch(updates, structural, threads);
  }

  /// The trivial single-participant policy: every rebuild sweep scans the
  /// whole snapshot at the coordinator, nothing crosses a boundary.
  [[nodiscard]] RebuildParticipation& rebuild_participation() {
    return participation_;
  }
  [[nodiscard]] CommStats comm_stats() const { return {}; }

  [[nodiscard]] const DynGraph& graph() const { return g_; }

 private:
  DynGraph g_;
  WeakOracle& oracle_;
  FlatRebuildParticipation participation_;
};

static_assert(AdjacencyStorePolicy<FlatAdjacencyStore>,
              "FlatAdjacencyStore must model AdjacencyStorePolicy");

/// The shared decision machinery. One instance per engine facade; `Store` is
/// the AdjacencyStore policy (see the file comment for the contract).
///
/// The static_assert cascade fires at instantiation, one named diagnostic
/// per missing contract member, before the member bodies get a chance to
/// spray unrelated errors; the final assert is the whole concept, so a store
/// failing in a way no per-member assert names is still rejected here.
template <class Store>
class DynamicReplayCore {
  static_assert(store_contract::HasNumVertices<Store>,
                "AdjacencyStore contract: missing 'Vertex num_vertices() const'");
  static_assert(store_contract::HasHasEdge<Store>,
                "AdjacencyStore contract: missing "
                "'bool has_edge(Vertex, Vertex) const'");
  static_assert(store_contract::HasNeighbors<Store>,
                "AdjacencyStore contract: missing "
                "'std::span<const Vertex> neighbors(Vertex) const'");
  static_assert(store_contract::HasSnapshot<Store>,
                "AdjacencyStore contract: missing 'Graph snapshot() const'");
  static_assert(store_contract::HasOracle<Store>,
                "AdjacencyStore contract: missing 'WeakOracle& oracle()'");
  static_assert(store_contract::HasUseBatchEngine<Store>,
                "AdjacencyStore contract: missing "
                "'bool use_batch_engine(int) const'");
  static_assert(store_contract::HasToggle<Store>,
                "AdjacencyStore contract: missing "
                "'bool toggle(const EdgeUpdate&)'");
  static_assert(store_contract::HasApplyStructural<Store>,
                "AdjacencyStore contract: missing "
                "'void apply_structural(updates, flags, threads)'");
  static_assert(store_contract::HasApplyAdjacency<Store>,
                "AdjacencyStore contract: missing "
                "'void apply_adjacency(updates, flags, threads)'");
  static_assert(store_contract::HasFlushOracle<Store>,
                "AdjacencyStore contract: missing "
                "'void flush_oracle(updates, flags, threads)'");
  static_assert(store_contract::HasRebuildParticipation<Store>,
                "AdjacencyStore contract: missing "
                "'RebuildParticipation& rebuild_participation()'");
  static_assert(store_contract::HasCommStats<Store>,
                "AdjacencyStore contract: missing 'CommStats comm_stats() const'");
  static_assert(AdjacencyStorePolicy<Store>,
                "Store does not model bmf::AdjacencyStorePolicy "
                "(see src/dynamic/replay_core.hpp)");

 public:
  /// `cfg` must already be resolved (resolve_core_config) and validated.
  DynamicReplayCore(Store& store, const DynamicCoreConfig& cfg)
      : store_(store),
        cfg_(cfg),
        m_(store.num_vertices()),
        mark_(static_cast<std::size_t>(store.num_vertices()), 0) {}

  void apply(const EdgeUpdate& update) {
    ++updates_;
    ++since_rebuild_;
    if (!update.empty()) {
      if (store_.toggle(update))
        on_structural_change(update.u, update.v, update.insert);
    }
    maybe_rebuild();
  }

  void apply_batch(std::span<const EdgeUpdate> batch) {
    const Vertex n = store_.num_vertices();
    for (const EdgeUpdate& up : batch)
      BMF_REQUIRE(up.empty() || (up.u >= 0 && up.u < n && up.v >= 0 && up.v < n &&
                                 up.u != up.v),
                  "DynamicReplayCore::apply_batch: invalid update");
    const int threads = ThreadPool::resolve_threads(cfg_.threads);
    if (!store_.use_batch_engine(threads)) {
      // The batch engine only buys anything with real concurrency (or real
      // shards); the serial loop is the reference semantics.
      for (const EdgeUpdate& up : batch) apply(up);
      return;
    }
    std::size_t i = 0;
    while (i < batch.size()) {
      if (is_heavy(batch[i])) {
        const std::size_t run = heavy_run_length(batch.subspan(i));
        if (run >= 2) {
          i += apply_heavy_run(batch.subspan(i, run), threads);
        } else {
          // An isolated heavy deletion: the reservation machinery buys
          // nothing.
          apply(batch[i]);
          ++i;
        }
        continue;
      }
      const std::size_t len = light_prefix_length(batch.subspan(i));
      const PrefixOutcome got = apply_light_prefix(batch.subspan(i, len), threads);
      i += got.consumed;
      if (got.fired) {
        arm_rebuild();
        if (cfg_.overlap_rebuild && threads > 1) {
          i += rebuild_overlapped(batch.subspan(i), threads);
        } else {
          rebuild();
        }
      }
    }
  }

  [[nodiscard]] const Matching& matching() const { return m_; }

  /// Exports the current matching as an immutable epoch snapshot (compact
  /// mate array + size + the given epoch id + the update count) — the
  /// publication hook behind `MatchingService`. Pure read: exporting never
  /// perturbs the replay state, so engines with and without snapshot export
  /// stay bit-identical (pinned by the differential harness, which exports
  /// after every run and compares mate for mate).
  [[nodiscard]] MatchingSnapshot export_snapshot(std::int64_t epoch) const {
    return MatchingSnapshot::of(m_, epoch, updates_);
  }

  [[nodiscard]] std::int64_t updates() const { return updates_; }
  [[nodiscard]] std::int64_t rebuilds() const { return rebuilds_; }
  /// Update position (the value of `updates()`) at which each rebuild fired —
  /// the golden-trace suites pin these byte for byte.
  [[nodiscard]] const std::vector<std::int64_t>& rebuild_positions() const {
    return rebuild_positions_;
  }
  [[nodiscard]] const ReplayOverlapStats& overlap_stats() const { return stats_; }
  /// Folded Theorem 6.2 counters across every rebuild (bit-identical across
  /// the whole engine grid; rebuild_stats().weak_calls equals the oracle's
  /// total call count because only rebuilds query it).
  [[nodiscard]] const RebuildStats& rebuild_stats() const {
    return rebuild_stats_;
  }

 private:
  struct PrefixOutcome {
    std::size_t consumed = 0;
    bool fired = false;  ///< a rebuild is armed at the truncation point
  };

  void try_match(Vertex v) {
    if (!m_.is_free(v)) return;
    for (Vertex w : store_.neighbors(v)) {
      if (m_.is_free(w)) {
        m_.add(v, w);
        return;
      }
    }
  }

  void on_structural_change(Vertex u, Vertex v, bool inserted) {
    if (inserted) {
      if (m_.is_free(u) && m_.is_free(v)) m_.add(u, v);
    } else if (m_.has(u, v)) {
      m_.remove_at(u);
      try_match(u);
      try_match(v);
    }
  }

  /// Updates allowed between rebuilds at matching size `sz` — the one
  /// formula behind both maybe_rebuild() and the batched budget replays (the
  /// bit-identical contract depends on them agreeing).
  [[nodiscard]] std::int64_t rebuild_budget(std::int64_t sz) const {
    if (cfg_.rebuild_every > 0) return cfg_.rebuild_every;
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::floor(cfg_.eps * static_cast<double>(sz) / 4.0)));
  }

  void arm_rebuild() {
    since_rebuild_ = 0;
    ++rebuilds_;
    rebuild_positions_.push_back(updates_);
  }

  void maybe_rebuild() {
    if (since_rebuild_ < rebuild_budget(m_.size())) return;
    arm_rebuild();
    rebuild();
  }

  void note_rebuild_result(const WeakBoostResult& boosted) {
    ++rebuild_stats_.rebuilds;
    rebuild_stats_.weak_calls += boosted.weak_calls;
    rebuild_stats_.sampled_iterations += boosted.sampled_iterations;
    if (boosted.outcome.certified) ++rebuild_stats_.certified;
  }

  void rebuild() {
    const Graph snapshot = store_.snapshot();
    WeakBoostResult boosted = static_weak_boost(
        snapshot, m_, store_.oracle(), cfg_.sim, &store_.rebuild_participation());
    note_rebuild_result(boosted);
    m_ = std::move(boosted.matching);
  }

  /// True for a structural deletion of a currently matched edge — the one
  /// update kind whose repair reads beyond its own endpoints.
  [[nodiscard]] bool is_heavy(const EdgeUpdate& up) const {
    // m_ only ever holds live edges, so a matched pair implies edge presence.
    return !up.empty() && !up.insert && m_.has(up.u, up.v);
  }

  /// Length of the maximal conflict-free prefix of `rest` (>= 1 unless
  /// empty).
  [[nodiscard]] std::size_t light_prefix_length(std::span<const EdgeUpdate> rest) {
    ++epoch_;
    std::size_t j = 0;
    for (; j < rest.size(); ++j) {
      const EdgeUpdate& c = rest[j];
      if (c.empty()) continue;
      auto& mu = mark_[static_cast<std::size_t>(c.u)];
      auto& mv = mark_[static_cast<std::size_t>(c.v)];
      if (mu == epoch_ || mv == epoch_) break;
      // A matched-edge deletion ends the prefix: its repair reads neighbors'
      // mates, which concurrent prefix members may be writing. The mate test
      // is exact here because earlier prefix members cannot touch c's
      // endpoints.
      if (is_heavy(c)) break;
      mu = epoch_;
      mv = epoch_;
    }
    return j;
  }

  /// Length of the maximal run of consecutive heavy deletions of `rest` with
  /// pairwise-disjoint endpoints (rest[0] must be heavy); records each
  /// endpoint's deletion index in `heavy_index_` under the current epoch.
  [[nodiscard]] std::size_t heavy_run_length(std::span<const EdgeUpdate> rest) {
    if (heavy_index_.empty()) heavy_index_.assign(mark_.size(), 0);
    ++epoch_;
    std::size_t j = 0;
    for (; j < rest.size(); ++j) {
      const EdgeUpdate& c = rest[j];
      if (c.empty() || c.insert) break;
      auto& mu = mark_[static_cast<std::size_t>(c.u)];
      auto& mv = mark_[static_cast<std::size_t>(c.v)];
      if (mu == epoch_ || mv == epoch_) break;
      // Disjointness keeps m_ exact at c's endpoints, so this test equals the
      // sequential at-time heaviness; a light deletion ends the run.
      if (!m_.has(c.u, c.v)) break;
      mu = epoch_;
      mv = epoch_;
      heavy_index_[static_cast<std::size_t>(c.u)] = static_cast<std::int32_t>(j);
      heavy_index_[static_cast<std::size_t>(c.v)] = static_cast<std::int32_t>(j);
    }
    return j;
  }

  /// Parallel reservation rematch over a heavy run (see the file comment);
  /// returns how many deletions were consumed (the run is truncated to the
  /// worst-case rebuild-free bound; 0 forces one serial `apply`).
  std::size_t apply_heavy_run(std::span<const EdgeUpdate> run, int threads) {
    // Worst-case budget replay: |M| drops by at most one per deletion and
    // rebuild_budget is nondecreasing in |M|, so while
    // since_rebuild_ + i < rebuild_budget(|M| - i) no rebuild can fire at
    // update i for ANY rematch outcome — exactly where the sequential loop
    // cannot fire either. Truncate the run to that provably rebuild-free
    // bound.
    const std::int64_t sz0 = m_.size();
    std::int64_t safe = 0;
    while (safe < static_cast<std::int64_t>(run.size()) &&
           since_rebuild_ + safe + 1 < rebuild_budget(sz0 - (safe + 1)))
      ++safe;
    if (safe == 0) {
      // The very next deletion may fire a rebuild; take the serial path.
      apply(run[0]);
      return 1;
    }
    run = run.first(static_cast<std::size_t>(safe));

    // Every run member deletes a currently matched (hence present) edge, so
    // the whole run is structural: delete batch-parallel, maintain the
    // oracle.
    structural_.assign(run.size(), 1);
    const std::span<const std::uint8_t> flags(structural_.data(), run.size());
    store_.apply_structural(run, flags, threads);

    // Reservation scan (parallel, read-only): endpoint 2i / 2i+1 collects the
    // ascending list of neighbors that can possibly be free at its commit
    // turn — free before the run, or freed by an earlier deletion of the run.
    // Deleting the run's matched edges does not change any other endpoint's
    // adjacency (endpoints are disjoint), so the post-deletion neighbor scan
    // equals the sequential at-time scan.
    std::vector<std::vector<Vertex>> cand(2 * run.size());
    // Short runs scan inline; the pool round-trip would dominate.
    const int scan_threads =
        gated_threads(static_cast<std::int64_t>(run.size()), 8, threads);
    parallel_for_threads(
        scan_threads, static_cast<std::int64_t>(2 * run.size()),
        [&](std::int64_t k) {
          const auto i = static_cast<std::size_t>(k / 2);
          const Vertex x = (k % 2 == 0) ? run[i].u : run[i].v;
          auto& out = cand[static_cast<std::size_t>(k)];
          for (Vertex nb : store_.neighbors(x)) {
            const auto nbi = static_cast<std::size_t>(nb);
            if (m_.is_free(nb) ||
                (mark_[nbi] == epoch_ &&
                 heavy_index_[nbi] < static_cast<std::int32_t>(i)))
              out.push_back(nb);
          }
        });

    // Serial commit in update order: unmatch the pair, then rematch each
    // freed endpoint with its first still-free reserved neighbor — the
    // sequential minimum-free-neighbor repair, endpoint for endpoint.
    for (std::size_t i = 0; i < run.size(); ++i) {
      m_.remove_at(run[i].u);
      for (const std::size_t k : {2 * i, 2 * i + 1}) {
        const Vertex x = (k % 2 == 0) ? run[i].u : run[i].v;
        if (!m_.is_free(x)) continue;
        for (Vertex nb : cand[k]) {
          if (m_.is_free(nb)) {
            m_.add(x, nb);
            break;
          }
        }
      }
      ++updates_;
      ++since_rebuild_;
    }
    BMF_ASSERT(since_rebuild_ < rebuild_budget(m_.size()));
    return run.size();
  }

  /// Processes a conflict-free prefix; reports how many updates were
  /// consumed (the prefix is truncated at the first rebuild trigger) and
  /// whether the caller must now arm a rebuild.
  PrefixOutcome apply_light_prefix(std::span<const EdgeUpdate> prefix,
                                   int threads) {
    const auto len = static_cast<std::int64_t>(prefix.size());
    structural_.assign(prefix.size(), 0);
    match_.assign(prefix.size(), 0);

    // Decisions read only the update's own endpoints (untouched by the rest
    // of the prefix), so concurrent evaluation against the pre-prefix state
    // equals the sequential decisions exactly. Short prefixes evaluate
    // inline.
    const int decision_threads = gated_threads(len, 32, threads);
    parallel_for_threads(decision_threads, len, [&](std::int64_t i) {
      const auto k = static_cast<std::size_t>(i);
      const EdgeUpdate& up = prefix[k];
      if (up.empty()) return;
      if (up.insert) {
        if (!store_.has_edge(up.u, up.v)) {
          structural_[k] = 1;
          if (m_.is_free(up.u) && m_.is_free(up.v)) match_[k] = 1;
        }
      } else {
        // Matched deletions never enter a prefix, so a structural deletion
        // here is of an unmatched edge and needs no repair.
        if (store_.has_edge(up.u, up.v)) structural_[k] = 1;
      }
    });

    // Replay the rebuild budget to find where maybe_rebuild() would fire in
    // the sequential loop; truncate the prefix there (inclusive).
    std::size_t cut = prefix.size();
    bool fire = false;
    {
      std::int64_t sz = m_.size();
      std::int64_t since = since_rebuild_;
      for (std::size_t k = 0; k < prefix.size(); ++k) {
        ++since;
        if (match_[k]) ++sz;
        if (since >= rebuild_budget(sz)) {
          cut = k + 1;
          fire = true;
          break;
        }
      }
    }

    const auto committed = prefix.first(cut);
    const auto flags = std::span<const std::uint8_t>(structural_).first(cut);
    store_.apply_structural(committed, flags, threads);
    for (std::size_t k = 0; k < cut; ++k) {
      ++updates_;
      ++since_rebuild_;
      if (match_[k]) m_.add(prefix[k].u, prefix[k].v);
    }
    return {cut, fire};
  }

  /// Runs the armed rebuild on a dedicated thread while overlapping the next
  /// conflict-free window of `rest` — insertions, no-ops, and deletions
  /// pre-classified light against the pre-rebuild matching (see the file
  /// comment); returns how many window updates were consumed. Caller must
  /// have called arm_rebuild().
  std::size_t rebuild_overlapped(std::span<const EdgeUpdate> rest, int threads) {
    // The window is bounded by the worst-case post-rebuild budget: boosting
    // never shrinks the matching and (predictions holding) the window's
    // deletions are light, so |M| stays >= its arm-time size and the first
    // rebuild_budget(|M| at arm) - 1 updates after the rebuild are provably
    // rebuild-free. A predicted-heavy deletion stops the window — its repair
    // depends on the rebuild's output either way.
    const std::int64_t cap = rebuild_budget(m_.size()) - 1;
    ++epoch_;
    std::size_t w = 0;
    while (w < rest.size() && static_cast<std::int64_t>(w) < cap) {
      const EdgeUpdate& c = rest[w];
      if (c.empty()) {
        ++w;
        continue;
      }
      auto& mu = mark_[static_cast<std::size_t>(c.u)];
      auto& mv = mark_[static_cast<std::size_t>(c.v)];
      if (mu == epoch_ || mv == epoch_) break;
      // Disjointness keeps m_ exact at c's endpoints, so this is exactly
      // "matched in the pre-rebuild matching".
      if (!c.insert && m_.has(c.u, c.v)) break;
      mu = epoch_;
      mv = epoch_;
      ++w;
    }
    const auto window = rest.first(w);
    if (window.empty()) {
      // Nothing to overlap (the rebuild fired at the batch's end, or the
      // next update conflicts immediately): the dedicated thread would only
      // add spawn/join latency. Same boost call, bit-identical either way.
      rebuild();
      return 0;
    }

    // Launch the rebuild on a dedicated thread (a pool worker would degrade
    // its inner parallel_for fan-out to inline). It reads the immutable
    // snapshot, a copy of the matching, and the oracle — never the live
    // adjacency.
    const Graph snapshot = store_.snapshot();
    const Matching base = m_;
    // The rebuild's result crosses the thread boundary through an annotated
    // slot: the worker computes outside the lock, stores under it; the caller
    // reads under it strictly after the join. The lock is uncontended — it
    // exists so the handoff discipline is compile-checked rather than implied
    // by the join alone.
    struct OverlapSlot {
      Mutex mu;
      WeakBoostResult rebuilt BMF_GUARDED_BY(mu);
      std::exception_ptr error BMF_GUARDED_BY(mu);
    } slot;
    DedicatedThread worker([&] {
      // The participation/oracle rebuild-side comm counters are touched only
      // by this thread while the boost runs (the caller's window work charges
      // the distinct batch-side fields); the join below publishes them, same
      // as the oracle's words_touched_ precedent.
      WeakBoostResult boosted;
      std::exception_ptr err;
      try {
        // bmf-analyzer: allow(single-writer-ledger) -- join publishes these
        boosted = static_weak_boost(snapshot, base, store_.oracle(), cfg_.sim,
                                    &store_.rebuild_participation());
      } catch (...) {
        err = std::current_exception();
      }
      const MutexLock lock(slot.mu);
      slot.rebuilt = std::move(boosted);
      slot.error = err;
    });
    ++stats_.overlapped_rebuilds;

    // Overlapped work: structural resolution + adjacency mutation only (both
    // matching-independent). Matching decisions and oracle maintenance wait
    // for the join below. If anything here throws, DedicatedThread joins the
    // rebuild on unwind before `snapshot`/`base` leave scope.
    structural_.assign(window.size(), 0);
    const int window_threads =
        gated_threads(static_cast<std::int64_t>(window.size()), 32, threads);
    parallel_for_threads(
        window_threads, static_cast<std::int64_t>(window.size()),
        [&](std::int64_t k) {
          const EdgeUpdate& up = window[static_cast<std::size_t>(k)];
          if (up.empty()) return;
          if (store_.has_edge(up.u, up.v) != up.insert)
            structural_[static_cast<std::size_t>(k)] = 1;
        });
    {
      const std::span<const std::uint8_t> overlap_flags(structural_.data(),
                                                        window.size());
      store_.apply_adjacency(window, overlap_flags, threads);
    }
    worker.join();
    {
      const MutexLock lock(slot.mu);
      if (slot.error) std::rethrow_exception(slot.error);
      note_rebuild_result(slot.rebuilt);
      m_ = std::move(slot.rebuilt.matching);
    }

    // Validate the light classification against the rebuilt matching. Window
    // endpoints are pairwise disjoint and commits never touch a deletion's
    // endpoints, so "matched at this deletion's sequential turn" equals
    // "matched in the rebuilt matching" — the scan is exact.
    std::size_t bad = window.size();
    for (std::size_t k = 0; k < window.size(); ++k) {
      const EdgeUpdate& up = window[k];
      if (!up.empty() && !up.insert && structural_[k] && m_.has(up.u, up.v)) {
        bad = k;
        break;
      }
    }

    const std::span<const std::uint8_t> flags(structural_.data(), window.size());
    const std::size_t consumed = bad == window.size() ? window.size() : bad + 1;
    if (bad == window.size()) {
      // Every classification held: deferred oracle maintenance and serial
      // commits in update order — the final state equals the sequential
      // rebuild-then-apply loop exactly.
      store_.flush_oracle(window, flags, threads);
      commit_overlap_prefix(window);
    } else {
      // Misprediction: the sequential loop would treat window[bad] as a
      // heavy deletion. Rewind the structural suffix beyond it (those
      // updates have not "happened" yet; disjoint endpoints make the
      // inverse ops order-free), catch the oracle up to the sequential
      // point just after window[bad], commit the validated prefix, and take
      // the sequential heavy repair — the adjacency now holds exactly the
      // pre-window state plus structural updates 0..bad, so the repair's
      // neighbor scans equal the sequential at-time scans.
      ++stats_.deletion_mispredictions;
      std::vector<EdgeUpdate> inverse;
      for (std::size_t k = bad + 1; k < window.size(); ++k)
        if (structural_[k])
          inverse.push_back(window[k].insert
                                ? EdgeUpdate::del(window[k].u, window[k].v)
                                : EdgeUpdate::ins(window[k].u, window[k].v));
      const std::vector<std::uint8_t> all(inverse.size(), 1);
      store_.apply_adjacency(inverse, all, threads);
      store_.flush_oracle(window.first(bad + 1), flags.first(bad + 1), threads);
      commit_overlap_prefix(window.first(bad));
      ++updates_;
      ++since_rebuild_;
      m_.remove_at(window[bad].u);
      try_match(window[bad].u);
      try_match(window[bad].v);
      ++stats_.overlapped_updates;
      ++stats_.overlapped_deletions;
      // The heavy repair may have shrunk |M| below the cap's assumption, so
      // the sequential loop's budget check at this position is live again.
      maybe_rebuild();
    }

    if (consumed > 0) {
      ++stats_.overlap_windows;
      bool saw_deletion = false;
      for (std::size_t k = 0; k < consumed; ++k)
        saw_deletion |= !window[k].empty() && !window[k].insert;
      if (saw_deletion) ++stats_.overlap_windows_with_deletions;
    }
    return consumed;
  }

  /// Serial in-order commits for the consumed part of an overlap window:
  /// insertions match two free endpoints, validated-light deletions change
  /// no matching state, every update advances the budget.
  void commit_overlap_prefix(std::span<const EdgeUpdate> window) {
    for (std::size_t k = 0; k < window.size(); ++k) {
      ++updates_;
      ++since_rebuild_;
      ++stats_.overlapped_updates;
      const EdgeUpdate& up = window[k];
      if (up.empty()) continue;
      if (up.insert) {
        if (structural_[k] && m_.is_free(up.u) && m_.is_free(up.v))
          m_.add(up.u, up.v);
      } else {
        ++stats_.overlapped_deletions;
      }
    }
  }

  Store& store_;
  DynamicCoreConfig cfg_;
  Matching m_;
  std::int64_t updates_ = 0;
  std::int64_t since_rebuild_ = 0;
  std::int64_t rebuilds_ = 0;
  std::vector<std::int64_t> rebuild_positions_;
  ReplayOverlapStats stats_;
  RebuildStats rebuild_stats_;

  // Reused apply_batch scratch: endpoint marks (epoch-stamped; 64-bit so the
  // epoch cannot wrap within a process lifetime), per-update decision slots,
  // and per-endpoint heavy-run deletion indices (valid where mark_ carries
  // the current epoch).
  std::vector<std::uint64_t> mark_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint8_t> structural_;
  std::vector<std::uint8_t> match_;
  std::vector<std::int32_t> heavy_index_;
};

}  // namespace bmf
