#include "dynamic/compressed_store.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

namespace {

// Same size gate as DynGraph's batched entry points: a batch smaller than
// this runs serially inline (the pool round-trip would dominate).
constexpr std::int64_t kSmallBatchMin = 32;

void insert_sorted(std::vector<Vertex>& xs, Vertex y) {
  const auto it = std::lower_bound(xs.begin(), xs.end(), y);
  BMF_ASSERT(it == xs.end() || *it != y);
  xs.insert(it, y);
}

void erase_sorted(std::vector<Vertex>& xs, Vertex y) {
  const auto it = std::lower_bound(xs.begin(), xs.end(), y);
  BMF_ASSERT(it != xs.end() && *it == y);
  xs.erase(it);
}

}  // namespace

CompressedAdjacencyStore::CompressedAdjacencyStore(Vertex n, WeakOracle& oracle)
    : n_(n),
      oracle_(oracle),
      offsets_(static_cast<std::size_t>(n) + 1, 0),
      delta_(static_cast<std::size_t>(n)),
      dirty_(static_cast<std::size_t>(n), 0) {
  BMF_REQUIRE(n >= 0, "CompressedAdjacencyStore: negative vertex count");
}

std::span<const Vertex> CompressedAdjacencyStore::csr_row(Vertex v) const {
  const auto begin = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v)]);
  const auto end = static_cast<std::size_t>(offsets_[static_cast<std::size_t>(v) + 1]);
  return {csr_.data() + begin, end - begin};
}

bool CompressedAdjacencyStore::csr_contains(Vertex u, Vertex v) const {
  const std::span<const Vertex> row = csr_row(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::span<const Vertex> CompressedAdjacencyStore::neighbors(Vertex v) const {
  BMF_ASSERT(v >= 0 && v < n_);
  if (dirty_[static_cast<std::size_t>(v)])
    return delta_[static_cast<std::size_t>(v)].merged;
  return csr_row(v);
}

bool CompressedAdjacencyStore::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= n_ || v >= n_ || u == v) return false;
  const std::span<const Vertex> row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

void CompressedAdjacencyStore::materialize(Vertex v) {
  const auto k = static_cast<std::size_t>(v);
  if (dirty_[k]) return;
  const std::span<const Vertex> row = csr_row(v);
  delta_[k].merged.assign(row.begin(), row.end());
  dirty_[k] = 1;
}

void CompressedAdjacencyStore::insert_half(Vertex x, Vertex y) {
  materialize(x);
  DeltaRow& d = delta_[static_cast<std::size_t>(x)];
  insert_sorted(d.merged, y);
  if (csr_contains(x, y))
    erase_sorted(d.dels, y);  // re-insert of a base edge deleted this window
  else
    insert_sorted(d.adds, y);
}

void CompressedAdjacencyStore::erase_half(Vertex x, Vertex y) {
  materialize(x);
  DeltaRow& d = delta_[static_cast<std::size_t>(x)];
  erase_sorted(d.merged, y);
  if (csr_contains(x, y))
    insert_sorted(d.dels, y);
  else
    erase_sorted(d.adds, y);  // erase of an edge added this window
}

void CompressedAdjacencyStore::account_structural(const EdgeUpdate& up) {
  // A structural insert of a base edge shrinks both endpoints' del buffers;
  // a fresh edge grows both add buffers (and symmetrically for erases). The
  // CSR body is symmetric, so one containment probe covers both halves.
  const bool base = csr_contains(up.u, up.v);
  if (up.insert) {
    ++m_;
    ++stats_.delta_inserts;
    delta_entries_ += base ? -2 : 2;
  } else {
    --m_;
    ++stats_.delta_erases;
    delta_entries_ += base ? 2 : -2;
  }
  stats_.peak_delta_entries =
      std::max(stats_.peak_delta_entries, delta_entries_);
}

bool CompressedAdjacencyStore::insert_edge(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "CompressedAdjacencyStore::insert: invalid edge");
  if (has_edge(u, v)) return false;
  account_structural(EdgeUpdate{u, v, true});
  insert_half(u, v);
  insert_half(v, u);
  return true;
}

bool CompressedAdjacencyStore::erase_edge(Vertex u, Vertex v) {
  BMF_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_ && u != v,
              "CompressedAdjacencyStore::erase: invalid edge");
  if (!has_edge(u, v)) return false;
  account_structural(EdgeUpdate{u, v, false});
  erase_half(u, v);
  erase_half(v, u);
  return true;
}

bool CompressedAdjacencyStore::toggle(const EdgeUpdate& up) {
  if (up.insert) {
    if (!insert_edge(up.u, up.v)) return false;
    oracle_.on_insert(up.u, up.v);
  } else {
    if (!erase_edge(up.u, up.v)) return false;
    oracle_.on_erase(up.u, up.v);
  }
  return true;
}

void CompressedAdjacencyStore::apply_adjacency(
    std::span<const EdgeUpdate> updates,
    std::span<const std::uint8_t> structural, int threads) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "CompressedAdjacencyStore::apply_adjacency: flag span size "
              "mismatch");
  // Serial bookkeeping first (edge/delta counters, stats): `csr_contains` is
  // stable during the batch — the body only changes at merge_deltas().
  for (std::size_t i = 0; i < updates.size(); ++i)
    if (structural[i]) account_structural(updates[i]);
  // The structural updates have pairwise-disjoint endpoints (the core's
  // conflict-free prefix cut), so each row's delta state has exactly one
  // writer and the halves parallelize without conflicts; `dirty_` writes hit
  // distinct elements.
  const int pool_threads = gated_threads(
      static_cast<std::int64_t>(updates.size()), kSmallBatchMin, threads);
  parallel_for_threads(pool_threads,
                       static_cast<std::int64_t>(updates.size()),
                       [&](std::int64_t i) {
                         const auto k = static_cast<std::size_t>(i);
                         if (!structural[k]) return;
                         const EdgeUpdate& up = updates[k];
                         if (up.insert) {
                           insert_half(up.u, up.v);
                           insert_half(up.v, up.u);
                         } else {
                           erase_half(up.u, up.v);
                           erase_half(up.v, up.u);
                         }
                       });
}

void CompressedAdjacencyStore::apply_structural(
    std::span<const EdgeUpdate> updates,
    std::span<const std::uint8_t> structural, int threads) {
  apply_adjacency(updates, structural, threads);
  oracle_.on_batch(updates, structural, threads);
}

void CompressedAdjacencyStore::flush_oracle(
    std::span<const EdgeUpdate> updates,
    std::span<const std::uint8_t> structural, int threads) {
  oracle_.on_batch(updates, structural, threads);
}

void CompressedAdjacencyStore::merge_deltas() {
  bool any_dirty = false;
  for (const std::uint8_t d : dirty_)
    if (d != 0) {
      any_dirty = true;
      break;
    }
  if (!any_dirty) return;

  std::vector<std::int64_t> offsets(static_cast<std::size_t>(n_) + 1, 0);
  for (Vertex v = 0; v < n_; ++v)
    offsets[static_cast<std::size_t>(v) + 1] =
        offsets[static_cast<std::size_t>(v)] +
        static_cast<std::int64_t>(neighbors(v).size());
  std::vector<Vertex> csr(static_cast<std::size_t>(offsets.back()));
  for (Vertex v = 0; v < n_; ++v) {
    const std::span<const Vertex> row = neighbors(v);
    std::copy(row.begin(), row.end(),
              csr.begin() + offsets[static_cast<std::size_t>(v)]);
  }
  offsets_ = std::move(offsets);
  csr_ = std::move(csr);

  ++stats_.merges;
  stats_.merged_entries += delta_entries_;
  delta_entries_ = 0;
  for (Vertex v = 0; v < n_; ++v) {
    const auto k = static_cast<std::size_t>(v);
    if (!dirty_[k]) continue;
    delta_[k].adds.clear();
    delta_[k].adds.shrink_to_fit();
    delta_[k].dels.clear();
    delta_[k].dels.shrink_to_fit();
    delta_[k].merged.clear();
    delta_[k].merged.shrink_to_fit();
    dirty_[k] = 0;
  }
  BMF_ASSERT(static_cast<std::int64_t>(csr_.size()) == 2 * m_);
}

Graph CompressedAdjacencyStore::snapshot() const {
  // Rebuild boundary: the core snapshots exactly once per Theorem 6.2
  // rebuild, on the caller thread, before the overlapped boost launches —
  // the one point where folding the delta buffers cannot race the overlap
  // window's apply_adjacency. The fold changes row storage, never row
  // content, so extra snapshots (facade accessors, tests) merely merge
  // early.
  const_cast<CompressedAdjacencyStore*>(this)->merge_deltas();
  GraphBuilder b(n_);
  for (Vertex u = 0; u < n_; ++u)
    for (const Vertex v : csr_row(u))
      if (u < v) b.add_edge(u, v);
  return b.build();
}

std::int64_t CompressedAdjacencyStore::csr_bytes() const {
  return static_cast<std::int64_t>(offsets_.size() * sizeof(std::int64_t) +
                                   csr_.size() * sizeof(Vertex));
}

std::int64_t CompressedAdjacencyStore::delta_bytes() const {
  std::int64_t entries = 0;
  for (const DeltaRow& d : delta_)
    entries += static_cast<std::int64_t>(d.adds.size() + d.dels.size() +
                                         d.merged.size());
  return entries * static_cast<std::int64_t>(sizeof(Vertex));
}

CompressedDynamicMatcher::CompressedDynamicMatcher(
    Vertex n, const CompressedMatcherConfig& cfg)
    : oracle_(n), store_(n, oracle_), core_(store_, [&] {
        validate_core_config(cfg, /*shards=*/1, "CompressedDynamicMatcher");
        return resolve_core_config(cfg);
      }()) {}

}  // namespace bmf
