#pragma once

/// The weak induced-subgraph matching oracle `A_weak` (Definition 6.1).
///
/// Given S subseteq V and delta, the oracle returns either bottom or a
/// matching in G[S] of size >= lambda * delta * n; if mu(G[S]) >= delta * n
/// it must not return bottom. The dynamic framework (Section 6) additionally
/// queries the bipartite double cover B (Definition 6.3) through the same
/// adjacency information: query_cover(S+, S-) finds a matching in
/// B[S+ u S-], whose edges map 1:1 to type-3 candidate arcs of G.
///
/// Implementations always *report* the matching they found plus a `bottom`
/// flag saying whether Definition 6.1 would have answered bottom; callers in
/// "strict" mode may use sub-threshold matchings (a strictly stronger oracle,
/// used to run simulations to exhaustion), while faithful mode discards them.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/bit_matrix.hpp"
#include "graph/dyn_graph.hpp"
#include "graph/graph.hpp"

namespace bmf {

struct WeakQueryResult {
  /// For query(): edges of G[S]. For query_cover(): pairs (u, v) meaning the
  /// B-edge (u+, v-).
  std::vector<Edge> matching;
  /// True if Definition 6.1 would answer bottom (matching below lambda*delta*n).
  bool bottom = false;
};

class WeakOracle {
 public:
  virtual ~WeakOracle() = default;

  /// Definition 6.1 on G[S].
  WeakQueryResult query(std::span<const Vertex> s, double delta) {
    ++calls_;
    return query_impl(s, delta);
  }

  /// Definition 6.1 on B[S+ u S-] (Definition 6.3).
  WeakQueryResult query_cover(std::span<const Vertex> s_plus,
                              std::span<const Vertex> s_minus, double delta) {
    ++calls_;
    return query_cover_impl(s_plus, s_minus, delta);
  }

  [[nodiscard]] virtual double lambda() const = 0;

  /// Dynamic maintenance hooks (Problem 1 updates).
  virtual void on_insert(Vertex u, Vertex v) = 0;
  virtual void on_erase(Vertex u, Vertex v) = 0;

  /// Batched maintenance: applies the structural subset of `updates`
  /// (structural[i] != 0) as resolved by the caller. The default forwards to
  /// on_insert / on_erase one by one in batch order; overrides may
  /// parallelize on `threads` but must leave the oracle in the exact state
  /// the serial replay would — the batched dynamic paths rely on this to stay
  /// bit-identical to one-at-a-time application.
  virtual void on_batch(std::span<const EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads);

  [[nodiscard]] std::int64_t calls() const { return calls_; }
  void reset_calls() { calls_ = 0; }

 protected:
  virtual WeakQueryResult query_impl(std::span<const Vertex> s, double delta) = 0;
  virtual WeakQueryResult query_cover_impl(std::span<const Vertex> s_plus,
                                           std::span<const Vertex> s_minus,
                                           double delta) = 0;

 private:
  std::int64_t calls_ = 0;
};

/// A_weak over a maintained adjacency bit-matrix (the representation the
/// paper assumes in Section 6.1): greedy maximal matching on G[S] by masked
/// row probes, O(|S| * n / 64) per query; lambda = 1/2 deterministically.
class MatrixWeakOracle final : public WeakOracle {
 public:
  explicit MatrixWeakOracle(Vertex n);
  /// Preloaded from a static graph.
  static MatrixWeakOracle from_graph(const Graph& g);

  [[nodiscard]] double lambda() const override { return 0.5; }
  void on_insert(Vertex u, Vertex v) override { adj_.set(u, v), adj_.set(v, u); }
  void on_erase(Vertex u, Vertex v) override {
    adj_.set(u, v, false), adj_.set(v, u, false);
  }
  /// Row-parallel batched maintenance: a vertex's bit flips replay in batch
  /// order within one thread (rows are word-aligned, so distinct rows never
  /// share a word) — final matrix identical to the serial replay.
  void on_batch(std::span<const EdgeUpdate> updates,
                std::span<const std::uint8_t> structural, int threads) override;
  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] const BitMatrix& adjacency() const { return adj_; }

  /// Words of matrix data touched by queries so far (the time proxy).
  /// Exact: every masked row probe charges the 64-bit words it actually read
  /// (the scan early-exits at the first set word), so this equals the words
  /// scanned, not a per-probe worst-case bound.
  [[nodiscard]] std::int64_t words_touched() const { return words_touched_; }

 protected:
  WeakQueryResult query_impl(std::span<const Vertex> s, double delta) override;
  WeakQueryResult query_cover_impl(std::span<const Vertex> s_plus,
                                   std::span<const Vertex> s_minus,
                                   double delta) override;

 private:
  Vertex n_;
  BitMatrix adj_;
  std::int64_t words_touched_ = 0;
};

}  // namespace bmf
