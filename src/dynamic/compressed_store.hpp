#pragma once

/// CSR-compressed AdjacencyStore with per-vertex delta buffers.
///
/// The third backend behind `DynamicReplayCore<Store>` (after Flat and
/// Sharded), built for the memory hierarchy instead of bit-identity plumbing:
/// the adjacency body is one contiguous CSR index (`offsets_` + `csr_`)
/// instead of per-vertex vectors, so rebuild-time scans walk one allocation.
/// Updates between rebuilds land in small per-vertex sorted delta buffers
/// (`adds` disjoint from the CSR row, `dels` a subset of it); the active row
/// of a touched vertex is materialized eagerly as a sorted `merged` vector so
/// `neighbors()` can keep returning one contiguous ascending span, which is
/// what the core's scans (prefix cutting, reservation rematch) require.
///
/// Delta buffers fold back into the CSR body at Theorem 6.2 rebuild
/// boundaries — when the engine is rewriting structures anyway. The fold
/// lives inside `snapshot()`: the core snapshots exactly once per rebuild, on
/// the caller thread, *before* the overlapped boost launches, so the fold
/// never races the overlap window's `apply_adjacency` mutations (the boost
/// worker only ever reads the already-taken snapshot). Folding is observably
/// neutral — it changes row storage, never row content — so facade-level
/// `snapshot()` calls from tests merely merge early.
///
/// The store is bit-identical to Flat/Sharded across the full differential
/// grid (matchings, rebuild positions, A_weak calls, RebuildStats); it shares
/// the flat engine's `MatrixWeakOracle`, so `words_touched` is also exactly
/// the flat family's. Single participant: `comm_stats()` is all-zero.

#include <cstdint>
#include <span>
#include <vector>

#include "core/framework.hpp"
#include "dynamic/replay_core.hpp"
#include "dynamic/replay_engine.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/graph.hpp"

namespace bmf {

/// Monotone observability counters for the delta/merge life cycle.
/// Deterministic per (stream, config): same run, same numbers.
struct CompressedStoreStats {
  std::int64_t merges = 0;          ///< delta folds into the CSR body
  std::int64_t merged_entries = 0;  ///< delta entries consumed by those folds
  std::int64_t delta_inserts = 0;   ///< structural inserts buffered
  std::int64_t delta_erases = 0;    ///< structural erases buffered
  std::int64_t peak_delta_entries = 0;  ///< high-water directed delta size

  friend bool operator==(const CompressedStoreStats&,
                         const CompressedStoreStats&) = default;
};

/// Single-participant rebuild policy for the compressed store. Deliberately
/// NOT where the delta fold happens: under rebuild/update overlap,
/// `note_rebuild_begin` runs on the boost worker concurrently with the
/// caller's window mutations, so the fold sits in `snapshot()` (caller
/// thread, pre-launch) instead. Stateless; safe to share across threads.
class CompressedRebuildParticipation final : public RebuildParticipation {
 public:
  [[nodiscard]] int participants() const override { return 1; }
  [[nodiscard]] int owner(Vertex /*v*/) const override { return 0; }
};

static_assert(
    RebuildParticipationPolicy<CompressedRebuildParticipation>,
    "CompressedRebuildParticipation must model RebuildParticipationPolicy");

class CompressedAdjacencyStore {
 public:
  CompressedAdjacencyStore(Vertex n, WeakOracle& oracle);

  [[nodiscard]] Vertex num_vertices() const { return n_; }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;
  /// Ascending neighbor ids: the CSR slice for clean rows, the materialized
  /// merged row for rows with pending deltas. Invalidated by any mutation of
  /// v's row and by `snapshot()`/`merge_deltas()`.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const;
  /// Folds pending deltas into the CSR body (rebuild boundary — see the file
  /// comment), then freezes it in DynGraph snapshot order (u < v, ascending).
  [[nodiscard]] Graph snapshot() const;
  [[nodiscard]] WeakOracle& oracle() { return oracle_; }
  [[nodiscard]] bool use_batch_engine(int threads) const { return threads > 1; }

  bool toggle(const EdgeUpdate& up);

  void apply_structural(std::span<const EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads);
  void apply_adjacency(std::span<const EdgeUpdate> updates,
                       std::span<const std::uint8_t> structural, int threads);
  void flush_oracle(std::span<const EdgeUpdate> updates,
                    std::span<const std::uint8_t> structural, int threads);

  [[nodiscard]] RebuildParticipation& rebuild_participation() {
    return participation_;
  }
  [[nodiscard]] CommStats comm_stats() const { return {}; }

  // ---- observability beyond the store contract ----------------------------

  [[nodiscard]] std::int64_t num_edges() const { return m_; }
  /// Directed delta entries currently buffered (adds + dels over all rows);
  /// 0 right after a fold.
  [[nodiscard]] std::int64_t delta_entries() const { return delta_entries_; }
  /// Bytes behind the CSR body (offsets + index), by element count.
  [[nodiscard]] std::int64_t csr_bytes() const;
  /// Bytes behind live delta state (buffers + materialized rows).
  [[nodiscard]] std::int64_t delta_bytes() const;
  [[nodiscard]] const CompressedStoreStats& store_stats() const {
    return stats_;
  }

  /// Folds every pending delta into a freshly packed CSR body and clears the
  /// per-vertex buffers. Called by `snapshot()` at rebuild boundaries; public
  /// so tests can pin fold-point equivalence directly.
  void merge_deltas();

 private:
  struct DeltaRow {
    std::vector<Vertex> adds;    // sorted, disjoint from the CSR row
    std::vector<Vertex> dels;    // sorted, subset of the CSR row
    std::vector<Vertex> merged;  // the active row while dirty
  };

  [[nodiscard]] std::span<const Vertex> csr_row(Vertex v) const;
  [[nodiscard]] bool csr_contains(Vertex u, Vertex v) const;
  /// Copies the CSR row into `merged` on first touch and marks the row dirty.
  void materialize(Vertex v);
  /// One directed half of an insert/erase whose presence change is already
  /// established. Touches only row x's state — safe to run in parallel over
  /// updates with pairwise-disjoint endpoints.
  void insert_half(Vertex x, Vertex y);
  void erase_half(Vertex x, Vertex y);
  bool insert_edge(Vertex u, Vertex v);
  bool erase_edge(Vertex u, Vertex v);
  /// Serial bookkeeping shared by toggle and the batch entry points: edge
  /// count, directed delta-entry count, stats. `csr_contains` tells whether
  /// the op re-toggles a base edge (shrinking a buffer) or a delta edge.
  void account_structural(const EdgeUpdate& up);

  Vertex n_ = 0;
  std::int64_t m_ = 0;
  std::int64_t delta_entries_ = 0;
  WeakOracle& oracle_;
  std::vector<std::int64_t> offsets_;  // size n_ + 1
  std::vector<Vertex> csr_;            // size 2m at last fold
  std::vector<DeltaRow> delta_;
  std::vector<std::uint8_t> dirty_;  // element-wise writes are parallel-safe
  CompressedRebuildParticipation participation_;
  CompressedStoreStats stats_;
};

static_assert(AdjacencyStorePolicy<CompressedAdjacencyStore>,
              "CompressedAdjacencyStore must model AdjacencyStorePolicy");

struct CompressedMatcherConfig : DynamicCoreConfig {};

/// ReplayEngine facade over the compressed store — the compressed sibling of
/// `DynamicMatcher` (flat) and `ShardedDynamicMatcher`.
class CompressedDynamicMatcher final
    : public ReplayEngineFacade<CompressedDynamicMatcher,
                                CompressedAdjacencyStore> {
 public:
  CompressedDynamicMatcher(Vertex n, const CompressedMatcherConfig& cfg);

  [[nodiscard]] std::int64_t weak_calls() const override {
    return oracle_.calls();
  }

  [[nodiscard]] std::int64_t num_edges() const { return store_.num_edges(); }
  [[nodiscard]] const CompressedAdjacencyStore& store() const { return store_; }
  [[nodiscard]] const MatrixWeakOracle& matrix_oracle() const {
    return oracle_;
  }

 private:
  friend class ReplayEngineFacade<CompressedDynamicMatcher,
                                  CompressedAdjacencyStore>;

  MatrixWeakOracle oracle_;
  CompressedAdjacencyStore store_;
  DynamicReplayCore<CompressedAdjacencyStore> core_;
};

}  // namespace bmf
