#pragma once

/// Theorem 6.2: a (1+eps)-approximate maximum matching from poly(1/eps)
/// adaptively-chosen A_weak queries (Section 6).
///
/// The simulation replaces the oracle graphs H' / H'_s of Section 5 with
/// vertex sampling: each iteration samples one vertex per structure, queries
/// A_weak on the sampled set (on the double cover B for Overtake stages, on G
/// for Augment), and performs the corresponding operation on every returned
/// matching edge (Sections 6.5-6.6). In-structure s-feasible arcs are
/// exhausted separately before each stage (Invariant 6.10). Unvisited matched
/// vertices participate as singleton regions (their minus copies are always
/// eligible) so that structures can grow by Overtake case 1; this completes
/// the paper's per-structure sampling in the natural way and preserves the
/// 1/Delta^2 preservation bound of Lemma 6.8.
///
/// With `exhaustive_fallback` (default), each pass-bundle ends with a
/// deterministic sweep (the Section 5 simulation backed by an uncounted local
/// greedy oracle) so runs terminate with the Theorem B.4 certificate; switch
/// it off to measure the purely sampled oracle-only behaviour.

#include <cstdint>

#include "core/config.hpp"
#include "core/framework.hpp"
#include "core/phase.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/rng.hpp"

namespace bmf {

struct WeakSimConfig {
  CoreConfig core;
  /// The delta handed to A_weak (Definition 6.1). The paper fixes
  /// delta = eps^107 for the analysis; operationally it only sets the
  /// bottom-threshold lambda*delta*n.
  double delta = 0.0;
  /// Use sub-threshold matchings (a strictly stronger oracle); disables
  /// "contamination" from discarded answers.
  bool strict = true;
  /// Consecutive zero-progress sampled iterations before a stage gives up.
  int sample_patience = 3;
  /// Hard cap on sampled iterations per stage (safety bound).
  std::int64_t max_stage_iterations = 256;
  /// Deterministic exhaustion sweep at the end of each pass-bundle.
  bool exhaustive_fallback = true;
};

class WeakOracleDriver final : public PassBundleDriver {
 public:
  /// `participation` is the storage layout's rebuild-participation policy
  /// (core/framework.hpp), forwarded to the exhaustive-fallback driver so the
  /// H'/H'_s sweeps fan out per shard; nullptr = flat single-participant.
  WeakOracleDriver(const Graph& g, WeakOracle& oracle, const WeakSimConfig& cfg,
                   std::uint64_t seed,
                   RebuildParticipation* participation = nullptr);

  void begin_phase(StructureForest& forest) override;
  void extend_active_path(StructureForest& forest) override;
  void contract_and_augment(StructureForest& forest) override;
  [[nodiscard]] bool exhaustive() const override;

  [[nodiscard]] std::int64_t sampled_iterations() const {
    return sampled_iterations_;
  }

 private:
  void run_overtake_stage(StructureForest& forest, int stage);
  void in_structure_sweep(StructureForest& forest, int stage);

  const Graph& g_;
  WeakOracle& oracle_;
  WeakSimConfig cfg_;
  Rng rng_;
  CoreConfig fallback_cfg_;
  GreedyMatchingOracle fallback_oracle_;  // uncounted; exhaustion sweeps only
  FrameworkDriver fallback_;
  std::int64_t sampled_iterations_ = 0;
  /// Unvisited matched vertices still eligible as minus copies (rebuilt per
  /// phase, filtered lazily per iteration).
  std::vector<Vertex> unvisited_pool_;
};

struct WeakBoostResult {
  Matching matching;
  BoostOutcome outcome;
  std::int64_t weak_calls = 0;
  std::int64_t initial_weak_calls = 0;
  std::int64_t sampled_iterations = 0;
};

/// Lemma 6.7: a Theta(1)-approximate matching from O(1/(delta*lambda))
/// A_weak calls on the shrinking set of unmatched vertices.
[[nodiscard]] Matching weak_initial_matching(Vertex n, WeakOracle& oracle,
                                             const WeakSimConfig& cfg);

/// Theorem 6.2 end-to-end on a static snapshot g.
[[nodiscard]] WeakBoostResult static_weak_matching(const Graph& g,
                                                   WeakOracle& oracle,
                                                   const WeakSimConfig& cfg);

/// Boosts an existing matching in place (used by the dynamic rebuilds, which
/// already hold a maximal matching). `participation` lets a sharded storage
/// layout drive the exhaustion sweeps (core/framework.hpp): the boost charges
/// the snapshot distribution to its ledger and the fallback driver fans
/// H'/H'_s discovery out per participant — bit-identical results either way.
[[nodiscard]] WeakBoostResult static_weak_boost(
    const Graph& g, Matching m, WeakOracle& oracle, const WeakSimConfig& cfg,
    RebuildParticipation* participation = nullptr);

}  // namespace bmf
