#pragma once

/// Fully dynamic (1+eps)-approximate maximum matching (Theorem 7.1).
///
/// The reduction of [BKS23, BG24, AKK25] (Problem 1) schedules chunks of
/// alpha*n updates followed by at most q adaptive A_weak queries; Theorem 7.1
/// replaces the exponential-in-1/eps query budget with the poly(1/eps)
/// Theorem 6.2 rebuild. DynamicMatcher implements that loop:
///
///  * between rebuilds it maintains a *maximal* matching under updates
///    (insertion: match if both endpoints free; deletion of a matched edge:
///    rematch both endpoints by a neighbor scan), so the answer never
///    degrades below 2-approximate;
///  * a matching that was (1+eps/2)-approximate stays (1+eps)-approximate for
///    ~eps*|M|/4 further updates (each update moves mu and |M| by at most 1),
///    so a Theorem 6.2 rebuild is triggered on that schedule — O(1/eps)
///    rebuilds per Theta(n) updates, each costing poly(1/eps) A_weak calls.
///
/// DynamicMatcher is a thin facade: all decision machinery — conflict-free
/// prefix cutting, rebuild-budget replay, the heavy deletion-run reservation
/// rematch, and rebuild/update overlap with pre-classified deletion windows —
/// lives in `DynamicReplayCore` (src/dynamic/replay_core.hpp), instantiated
/// here over the flat single-node `FlatAdjacencyStore` (a `DynGraph` plus the
/// borrowed `WeakOracle`). The sharded vertex-partition engine
/// (sharded_matcher.hpp) instantiates the same core over its shard slices, so
/// the bit-identity-critical replay logic has exactly one home. See
/// replay_core.hpp for the batch determinism contract; it is pinned by the
/// cross-engine differential harness in tests/test_replay_core.cpp and the
/// suites in tests/test_dynamic_batch.cpp.
///
/// Problem1Instance exposes the chunk/query interface verbatim for tests and
/// for composing with other A_weak implementations (e.g. the OMv-backed one);
/// its `apply_chunk` resolves a chunk's structural subset and applies it with
/// per-vertex parallel replay (chunks carry no matching repair, so whole
/// chunks parallelize without prefix cuts).

#include <cstdint>

#include "dynamic/replay_core.hpp"
#include "dynamic/replay_engine.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/dyn_graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// All knobs are the shared replay-core set (replay_core.hpp) — the sharded
/// facade derives from the same struct, so the engines cannot drift.
struct DynamicMatcherConfig : DynamicCoreConfig {};

/// The whole `ReplayEngine` surface — apply/apply_batch (batch determinism
/// contract in replay_core.hpp), matching/snapshot/export_snapshot, and the
/// counters incl. rebuild_positions()/overlap_stats()/rebuild_stats()/
/// comm_stats() (the flat store is single-participant, so its comm ledger is
/// always all-zero) — is inherited from `ReplayEngineFacade`
/// (replay_engine.hpp); only the oracle-reading `weak_calls()` and the
/// flat-store `graph()` accessor live here.
class DynamicMatcher final
    : public ReplayEngineFacade<DynamicMatcher, FlatAdjacencyStore> {
 public:
  /// The oracle must be empty-initialized for n vertices; the matcher feeds
  /// it every update (Problem 1: the graph starts empty).
  DynamicMatcher(Vertex n, WeakOracle& oracle, const DynamicMatcherConfig& cfg);

  [[nodiscard]] const DynGraph& graph() const { return store_.graph(); }
  [[nodiscard]] std::int64_t weak_calls() const override {
    return oracle_.calls();
  }

 private:
  friend class ReplayEngineFacade<DynamicMatcher, FlatAdjacencyStore>;

  WeakOracle& oracle_;
  FlatAdjacencyStore store_;
  DynamicReplayCore<FlatAdjacencyStore> core_;
};

/// Problem 1 (Section 7.2), verbatim: chunks of exactly alpha*n updates, then
/// up to q adaptive queries answered with the Definition 6.1 guarantee.
class Problem1Instance {
 public:
  Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q, double lambda,
                   double delta, double alpha);

  /// Applies one chunk (must contain exactly chunk_size() updates, empty
  /// updates allowed) and re-arms the query budget. The chunk's structural
  /// subset is resolved and applied batch-parallel on `threads`; the final
  /// graph and oracle state equal the one-at-a-time replay at any setting.
  void apply_chunk(std::span<const EdgeUpdate> chunk, int threads = 1);

  /// One adaptive query; throws if the per-chunk budget q is exhausted.
  [[nodiscard]] WeakQueryResult query(std::span<const Vertex> s);

  [[nodiscard]] std::int64_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] std::int64_t queries_left() const { return queries_left_; }
  [[nodiscard]] const DynGraph& graph() const { return g_; }

 private:
  DynGraph g_;
  WeakOracle& oracle_;
  std::int64_t q_;
  double delta_;
  std::int64_t chunk_size_;
  std::int64_t queries_left_ = 0;
};

}  // namespace bmf
