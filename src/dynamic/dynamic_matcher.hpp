#pragma once

/// Fully dynamic (1+eps)-approximate maximum matching (Theorem 7.1).
///
/// The reduction of [BKS23, BG24, AKK25] (Problem 1) schedules chunks of
/// alpha*n updates followed by at most q adaptive A_weak queries; Theorem 7.1
/// replaces the exponential-in-1/eps query budget with the poly(1/eps)
/// Theorem 6.2 rebuild. DynamicMatcher implements that loop:
///
///  * between rebuilds it maintains a *maximal* matching under updates
///    (insertion: match if both endpoints free; deletion of a matched edge:
///    rematch both endpoints by a neighbor scan), so the answer never
///    degrades below 2-approximate;
///  * a matching that was (1+eps/2)-approximate stays (1+eps)-approximate for
///    ~eps*|M|/4 further updates (each update moves mu and |M| by at most 1),
///    so a Theorem 6.2 rebuild is triggered on that schedule — O(1/eps)
///    rebuilds per Theta(n) updates, each costing poly(1/eps) A_weak calls.
///
/// Problem1Instance exposes the chunk/query interface verbatim for tests and
/// for composing with other A_weak implementations (e.g. the OMv-backed one).

#include <cstdint>

#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/dyn_graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

struct EdgeUpdate {
  Vertex u = kNoVertex;
  Vertex v = kNoVertex;
  bool insert = true;
  /// Problem 1 allows "empty updates" that change nothing but count toward
  /// chunk accounting.
  [[nodiscard]] bool empty() const { return u == kNoVertex; }

  static EdgeUpdate ins(Vertex u, Vertex v) { return {u, v, true}; }
  static EdgeUpdate del(Vertex u, Vertex v) { return {u, v, false}; }
  static EdgeUpdate none() { return {}; }
};

struct DynamicMatcherConfig {
  double eps = 0.25;
  WeakSimConfig sim;  ///< rebuild configuration (sim.core.eps is forced to eps/2)
  /// Updates between rebuilds; 0 = adaptive max(1, floor(eps*|M|/4)).
  std::int64_t rebuild_every = 0;
  std::uint64_t seed = 1;
};

class DynamicMatcher {
 public:
  /// The oracle must be empty-initialized for n vertices; the matcher feeds
  /// it every update (Problem 1: the graph starts empty).
  DynamicMatcher(Vertex n, WeakOracle& oracle, const DynamicMatcherConfig& cfg);

  void insert(Vertex u, Vertex v);
  void erase(Vertex u, Vertex v);
  void apply(const EdgeUpdate& update);

  [[nodiscard]] const Matching& matching() const { return m_; }
  [[nodiscard]] const DynGraph& graph() const { return g_; }

  [[nodiscard]] std::int64_t updates() const { return updates_; }
  [[nodiscard]] std::int64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::int64_t weak_calls() const { return oracle_.calls(); }

 private:
  void on_structural_change(Vertex u, Vertex v, bool inserted);
  void maybe_rebuild();
  void try_match(Vertex v);

  DynGraph g_;
  WeakOracle& oracle_;
  DynamicMatcherConfig cfg_;
  Matching m_;
  std::int64_t updates_ = 0;
  std::int64_t since_rebuild_ = 0;
  std::int64_t rebuilds_ = 0;
};

/// Problem 1 (Section 7.2), verbatim: chunks of exactly alpha*n updates, then
/// up to q adaptive queries answered with the Definition 6.1 guarantee.
class Problem1Instance {
 public:
  Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q, double lambda,
                   double delta, double alpha);

  /// Applies one chunk (must contain exactly chunk_size() updates, empty
  /// updates allowed) and re-arms the query budget.
  void apply_chunk(std::span<const EdgeUpdate> chunk);

  /// One adaptive query; throws if the per-chunk budget q is exhausted.
  [[nodiscard]] WeakQueryResult query(std::span<const Vertex> s);

  [[nodiscard]] std::int64_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] std::int64_t queries_left() const { return queries_left_; }
  [[nodiscard]] const DynGraph& graph() const { return g_; }

 private:
  DynGraph g_;
  WeakOracle& oracle_;
  std::int64_t q_;
  double delta_;
  std::int64_t chunk_size_;
  std::int64_t queries_left_ = 0;
};

}  // namespace bmf
