#pragma once

/// Fully dynamic (1+eps)-approximate maximum matching (Theorem 7.1).
///
/// The reduction of [BKS23, BG24, AKK25] (Problem 1) schedules chunks of
/// alpha*n updates followed by at most q adaptive A_weak queries; Theorem 7.1
/// replaces the exponential-in-1/eps query budget with the poly(1/eps)
/// Theorem 6.2 rebuild. DynamicMatcher implements that loop:
///
///  * between rebuilds it maintains a *maximal* matching under updates
///    (insertion: match if both endpoints free; deletion of a matched edge:
///    rematch both endpoints by a neighbor scan), so the answer never
///    degrades below 2-approximate;
///  * a matching that was (1+eps/2)-approximate stays (1+eps)-approximate for
///    ~eps*|M|/4 further updates (each update moves mu and |M| by at most 1),
///    so a Theorem 6.2 rebuild is triggered on that schedule — O(1/eps)
///    rebuilds per Theta(n) updates, each costing poly(1/eps) A_weak calls.
///
/// ## Batched updates and the batch determinism contract
///
/// `apply_batch` consumes a whole span of updates at once and is
/// **bit-identical to the sequential `apply` loop** — same matching (mate by
/// mate), same graph, same oracle state, same `updates()` / `rebuilds()` /
/// `weak_calls()` counters — at any `threads` setting, including 1. It gets
/// its parallelism the way the MPC/CONGEST simulators of PR 1 do (private
/// slots, ordered merge), in the style of the batch-dynamic literature
/// (Ghaffari–Trygub 2024):
///
///  1. the batch is cut into maximal *conflict-free prefixes*: runs of
///     updates with pairwise-disjoint endpoints, none of which deletes a
///     currently matched edge;
///  2. within a prefix, per-update decisions (does this update toggle the
///     edge? does this insertion match two free vertices?) read only the
///     update's own endpoints, which no other prefix member touches — so
///     they are computed concurrently against the pre-prefix state and equal
///     the sequential decisions exactly;
///  3. a serial O(prefix) scan replays the rebuild budget (`since_rebuild`
///     and |M| evolve deterministically from the decisions) and truncates the
///     prefix at the first update whose `maybe_rebuild` would fire, so
///     rebuilds trigger at exactly the sequential update positions — at most
///     one Theorem 6.2 rebuild is performed per prefix, and a batch no larger
///     than the rebuild budget performs at most one rebuild total;
///  4. graph mutations apply concurrently (disjoint adjacency lists), then
///     matching commits and `WeakOracle::on_batch` maintenance run serially
///     in update order, then the rebuild (if armed) runs on a snapshot that
///     contains exactly the updates before the trigger point.
///
/// ## Parallel reservation rematch for heavy deletion runs
///
/// Deletions of currently matched edges ("heavy" updates) repair by
/// rematching both freed endpoints with their minimum free neighbor — the
/// flat sorted adjacency makes `try_match`'s first free neighbor exactly the
/// minimum one. A run of consecutive heavy deletions with pairwise-disjoint
/// endpoints no longer serializes: after a worst-case budget replay bounds
/// the run so no rebuild can fire inside it (|M| drops by at most one per
/// deletion and the budget is nondecreasing in |M|), the run's edges are
/// deleted batch-parallel, and every freed endpoint concurrently *reserves*
/// its ascending list of possibly-free neighbors — vertices free before the
/// run plus endpoints freed by earlier deletions of the run (the only
/// vertices that can be free when its turn comes). A barrier later, a serial
/// commit walks the run in update order and rematches each endpoint with the
/// first still-free reserved neighbor, which is precisely the sequential
/// minimum-free-neighbor choice — mate arrays, counters, and rebuild
/// positions stay bit-identical to the one-at-a-time loop (in the style of
/// Birn et al. 2013's reservation matching and Ghaffari–Trygub 2024's
/// deterministic batch commits).
///
/// ## Rebuild/update overlap
///
/// When a prefix arms a Theorem 6.2 rebuild, the rebuild runs on a dedicated
/// thread against the immutable `DynGraph` snapshot and a copy of the
/// matching, while the caller overlaps the *next* conflict-free window of
/// insertions/no-ops: their structural resolution and adjacency mutations
/// touch only the live graph, which the rebuild never reads. The window is
/// bounded by the post-rebuild worst-case budget (boosting never shrinks the
/// matching, so `rebuild_budget(|M| at arm time) - 1` updates are provably
/// rebuild-free) and stops at the first deletion (whose heaviness depends on
/// the rebuild's output). Matching decisions and `WeakOracle::on_batch`
/// maintenance are deferred until the join, so the oracle is never touched
/// while rebuild queries are in flight. Disable with
/// `DynamicMatcherConfig::overlap_rebuild = false`.
///
/// Every decision is made against deterministic state and merged in batch
/// order, so results do not depend on thread scheduling; and because the flat
/// sorted adjacency of DynGraph pins neighbor-scan order, they do not depend
/// on the platform's hash order either. tests/test_dynamic_batch.cpp pins
/// sequential == batched at 1, 2, and 8 threads on randomized streams.
///
/// Problem1Instance exposes the chunk/query interface verbatim for tests and
/// for composing with other A_weak implementations (e.g. the OMv-backed one);
/// its `apply_chunk` resolves a chunk's structural subset and applies it with
/// per-vertex parallel replay (chunks carry no matching repair, so whole
/// chunks parallelize without prefix cuts).

#include <cstdint>

#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/dyn_graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

struct DynamicMatcherConfig {
  double eps = 0.25;
  WeakSimConfig sim;  ///< rebuild configuration (sim.core.eps is forced to eps/2)
  /// Updates between rebuilds; 0 = adaptive max(1, floor(eps*|M|/4)).
  std::int64_t rebuild_every = 0;
  std::uint64_t seed = 1;
  /// Thread-pool fan-out for `apply_batch` and for the Theorem 6.2 rebuild's
  /// internal H'/H'_s discovery (forced into `sim.core.threads`; 0 = hardware
  /// concurrency, 1 = serial). Results are bit-identical at any setting.
  int threads = 0;
  /// Overlap an armed rebuild (dedicated thread, snapshot + matching copy)
  /// with the next insertion-only window's graph mutations. Only active on
  /// the batched path with threads > 1; bit-identical either way.
  bool overlap_rebuild = true;
};

class DynamicMatcher {
 public:
  /// The oracle must be empty-initialized for n vertices; the matcher feeds
  /// it every update (Problem 1: the graph starts empty).
  DynamicMatcher(Vertex n, WeakOracle& oracle, const DynamicMatcherConfig& cfg);

  void insert(Vertex u, Vertex v);
  void erase(Vertex u, Vertex v);
  void apply(const EdgeUpdate& update);

  /// Applies a whole batch of updates; bit-identical to calling `apply` on
  /// each element in order (see the batch determinism contract above), with
  /// conflict-free prefixes processed in parallel on `cfg.threads`. The whole
  /// batch is validated before any mutation.
  void apply_batch(std::span<const EdgeUpdate> batch);

  [[nodiscard]] const Matching& matching() const { return m_; }
  [[nodiscard]] const DynGraph& graph() const { return g_; }

  [[nodiscard]] std::int64_t updates() const { return updates_; }
  [[nodiscard]] std::int64_t rebuilds() const { return rebuilds_; }
  [[nodiscard]] std::int64_t weak_calls() const { return oracle_.calls(); }

 private:
  void on_structural_change(Vertex u, Vertex v, bool inserted);
  void maybe_rebuild();
  void rebuild();
  void try_match(Vertex v);

  /// Updates allowed between rebuilds at matching size `sz` — the one
  /// formula behind both maybe_rebuild() and the batched budget replay (the
  /// bit-identical contract depends on them agreeing).
  [[nodiscard]] std::int64_t rebuild_budget(std::int64_t sz) const;

  /// True for a structural deletion of a currently matched edge — the one
  /// update kind whose repair reads beyond its own endpoints.
  [[nodiscard]] bool is_heavy(const EdgeUpdate& up) const;

  /// Length of the maximal conflict-free prefix of `rest` (>= 1 unless empty).
  [[nodiscard]] std::size_t light_prefix_length(std::span<const EdgeUpdate> rest);

  struct PrefixOutcome {
    std::size_t consumed = 0;
    bool fired = false;  ///< a rebuild is armed at the truncation point
  };

  /// Processes a conflict-free prefix; reports how many updates were
  /// consumed (the prefix is truncated at the first rebuild trigger) and
  /// whether the caller must now run a rebuild.
  PrefixOutcome apply_light_prefix(std::span<const EdgeUpdate> prefix, int threads);

  /// Length of the maximal run of consecutive heavy deletions of `rest` with
  /// pairwise-disjoint endpoints (rest[0] must be heavy); records each
  /// endpoint's deletion index in `heavy_index_` under the current epoch.
  [[nodiscard]] std::size_t heavy_run_length(std::span<const EdgeUpdate> rest);

  /// Parallel reservation rematch over a heavy run (see the class comment);
  /// returns how many deletions were consumed (the run is truncated to the
  /// worst-case rebuild-free bound; 0 forces one serial `apply`).
  std::size_t apply_heavy_run(std::span<const EdgeUpdate> run, int threads);

  /// Runs the armed rebuild on a dedicated thread while overlapping the next
  /// insertion-only window of `rest`; returns how many window updates were
  /// consumed. Caller must have reset `since_rebuild_` / bumped `rebuilds_`.
  std::size_t rebuild_overlapped(std::span<const EdgeUpdate> rest, int threads);

  DynGraph g_;
  WeakOracle& oracle_;
  DynamicMatcherConfig cfg_;
  Matching m_;
  std::int64_t updates_ = 0;
  std::int64_t since_rebuild_ = 0;
  std::int64_t rebuilds_ = 0;

  // Reused apply_batch scratch: endpoint marks (epoch-stamped; 64-bit so the
  // epoch cannot wrap within a process lifetime), per-update decision slots,
  // and per-endpoint heavy-run deletion indices (valid where mark_ carries
  // the current epoch).
  std::vector<std::uint64_t> mark_;
  std::uint64_t epoch_ = 0;
  std::vector<std::uint8_t> structural_;
  std::vector<std::uint8_t> match_;
  std::vector<std::int32_t> heavy_index_;
};

/// Problem 1 (Section 7.2), verbatim: chunks of exactly alpha*n updates, then
/// up to q adaptive queries answered with the Definition 6.1 guarantee.
class Problem1Instance {
 public:
  Problem1Instance(Vertex n, WeakOracle& oracle, std::int64_t q, double lambda,
                   double delta, double alpha);

  /// Applies one chunk (must contain exactly chunk_size() updates, empty
  /// updates allowed) and re-arms the query budget. The chunk's structural
  /// subset is resolved and applied batch-parallel on `threads`; the final
  /// graph and oracle state equal the one-at-a-time replay at any setting.
  void apply_chunk(std::span<const EdgeUpdate> chunk, int threads = 1);

  /// One adaptive query; throws if the per-chunk budget q is exhausted.
  [[nodiscard]] WeakQueryResult query(std::span<const Vertex> s);

  [[nodiscard]] std::int64_t chunk_size() const { return chunk_size_; }
  [[nodiscard]] std::int64_t queries_left() const { return queries_left_; }
  [[nodiscard]] const DynGraph& graph() const { return g_; }

 private:
  DynGraph g_;
  WeakOracle& oracle_;
  std::int64_t q_;
  double delta_;
  std::int64_t chunk_size_;
  std::int64_t queries_left_ = 0;
};

}  // namespace bmf
