#include "dynamic/sharded_matcher.hpp"

#include <algorithm>
#include <utility>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

// ---------------------------------------------------------- VertexPartition

VertexPartition::VertexPartition(Vertex n, int shards)
    : n_(n),
      k_(shards),
      block_(n == 0 ? 0 : (n + static_cast<Vertex>(shards) - 1) /
                              static_cast<Vertex>(shards)) {
  BMF_REQUIRE(n >= 0, "VertexPartition: negative vertex count");
  BMF_REQUIRE(shards >= 1, "VertexPartition: shards must be >= 1");
}

// ------------------------------------------------------- ShardedMatrixOracle

ShardedMatrixOracle::ShardedMatrixOracle(Vertex n, int shards, int threads)
    : part_(n, shards), threads_(threads) {
  slices_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    slices_.emplace_back(part_.size(s), n);
}

void ShardedMatrixOracle::on_insert(Vertex u, Vertex v) {
  const int su = part_.owner(u), sv = part_.owner(v);
  slices_[static_cast<std::size_t>(su)].set(u - part_.begin(su), v);
  slices_[static_cast<std::size_t>(sv)].set(v - part_.begin(sv), u);
}

void ShardedMatrixOracle::on_erase(Vertex u, Vertex v) {
  const int su = part_.owner(u), sv = part_.owner(v);
  slices_[static_cast<std::size_t>(su)].set(u - part_.begin(su), v, false);
  slices_[static_cast<std::size_t>(sv)].set(v - part_.begin(sv), u, false);
}

bool ShardedMatrixOracle::bit(Vertex u, Vertex v) const {
  const int su = part_.owner(u);
  return slices_[static_cast<std::size_t>(su)].get(u - part_.begin(su), v);
}

RoutedOps route_structural_ops(const VertexPartition& part,
                               std::span<const EdgeUpdate> updates,
                               std::span<const std::uint8_t> structural) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "route_structural_ops: flag span size mismatch");
  // Route both directed copies of every structural update to the shard that
  // owns the row; appending while walking the batch in order leaves each
  // shard's op list sorted by update index, so a per-shard serial replay is
  // exactly the (shard-id, update-index)-ordered merge.
  RoutedOps out;
  out.per_shard.resize(static_cast<std::size_t>(part.shards()));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!structural[i]) continue;
    const EdgeUpdate& up = updates[i];
    out.edge_delta += up.insert ? 1 : -1;
    out.per_shard[static_cast<std::size_t>(part.owner(up.u))].push_back(
        {up.u, up.v, up.insert});
    out.per_shard[static_cast<std::size_t>(part.owner(up.v))].push_back(
        {up.v, up.u, up.insert});
    out.total_ops += 2;
  }
  return out;
}

void ShardedMatrixOracle::on_batch(std::span<const EdgeUpdate> updates,
                                   std::span<const std::uint8_t> structural,
                                   int threads) {
  apply_ops(route_structural_ops(part_, updates, structural), threads);
}

void ShardedMatrixOracle::apply_ops(const RoutedOps& ops, int threads) {
  parallel_for_threads(
      gated_threads(ops.total_ops, 32, threads),
      static_cast<std::int64_t>(ops.per_shard.size()), [&](std::int64_t s) {
        BitMatrix& slice = slices_[static_cast<std::size_t>(s)];
        const Vertex base = part_.begin(static_cast<int>(s));
        for (const ShardOp& op : ops.per_shard[static_cast<std::size_t>(s)])
          slice.set(op.vertex - base, op.other, op.insert);
      });
}

std::int64_t ShardedMatrixOracle::probe(Vertex u, const BitVec& mask,
                                        std::int64_t* words) const {
  const int s = part_.owner(u);
  std::int64_t scanned = 0;
  const std::int64_t col = slices_[static_cast<std::size_t>(s)].first_common_in_row(
      u - part_.begin(s), mask, &scanned);
  *words += scanned;
  return col;
}

WeakQueryResult ShardedMatrixOracle::greedy(std::span<const Vertex> rows,
                                            BitVec& avail, bool consume_plus,
                                            double delta) {
  const auto count = static_cast<std::int64_t>(rows.size());
  // Speculative shard-local candidate scan against the pre-commit mask:
  // every row probes concurrently, results land in per-row slots.
  std::vector<std::int64_t> cand(rows.size(), -1), words(rows.size(), 0);
  parallel_for_threads(gated_threads(count, 16, threads_), count,
                       [&](std::int64_t i) {
                         const auto k = static_cast<std::size_t>(i);
                         cand[k] = probe(rows[k], avail, &words[k]);
                       });
  for (const std::int64_t w : words) words_touched_ += w;
  // The speculative per-row probe results travel from their owning shards to
  // the serial commit below: one candidate slot per row, one gather round per
  // query. (Inline re-probes are coordinator-side reads of already-gathered
  // rows and are not recharged.) Nothing crosses at a single shard.
  if (part_.shards() > 1) {
    query_gather_bytes_ +=
        count * static_cast<std::int64_t>(sizeof(std::int64_t));
    ++query_gather_rounds_;
  }

  // Serial greedy commit in row order. The mask only shrinks, so a
  // speculative candidate that is still available equals the live mask's
  // first common neighbor (its scan prefix is unchanged); a stale candidate
  // re-probes inline, which is verbatim the serial greedy's probe at this
  // row's turn. A -1 stays -1 against any smaller mask.
  WeakQueryResult out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Vertex u = rows[i];
    if (consume_plus && !avail.get(u)) continue;
    std::int64_t c = cand[i];
    if (c >= 0 && !avail.get(c)) c = probe(u, avail, &words_touched_);
    if (c < 0) continue;
    out.matching.push_back({u, static_cast<Vertex>(c)});
    if (consume_plus) avail.set(u, false);
    avail.set(c, false);
  }
  const double threshold =
      lambda() * delta * static_cast<double>(part_.num_vertices());
  out.bottom = static_cast<double>(out.matching.size()) < threshold;
  return out;
}

WeakQueryResult ShardedMatrixOracle::query_impl(std::span<const Vertex> s,
                                                double delta) {
  BitVec avail(part_.num_vertices());
  for (Vertex v : s) avail.set(v);
  // The adjacency diagonal is never set, so a probe cannot return its own
  // row even when that row is in the mask.
  return greedy(s, avail, /*consume_plus=*/true, delta);
}

WeakQueryResult ShardedMatrixOracle::query_cover_impl(
    std::span<const Vertex> s_plus, std::span<const Vertex> s_minus,
    double delta) {
  BitVec avail(part_.num_vertices());
  for (Vertex v : s_minus) avail.set(v);
  return greedy(s_plus, avail, /*consume_plus=*/false, delta);
}

// ----------------------------------------------------- ShardedAdjacencyStore

ShardedAdjacencyStore::ShardedAdjacencyStore(const VertexPartition& part,
                                             ShardedMatrixOracle& oracle)
    : part_(part), slices_(static_cast<std::size_t>(part.shards())),
      oracle_(oracle), participation_(part) {
  for (int s = 0; s < part_.shards(); ++s)
    slices_[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(part_.size(s)));
}

std::vector<Vertex>& ShardedAdjacencyStore::row(Vertex v) {
  const int s = part_.owner(v);
  return slices_[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(v - part_.begin(s))];
}

const std::vector<Vertex>& ShardedAdjacencyStore::row(Vertex v) const {
  const int s = part_.owner(v);
  return slices_[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(v - part_.begin(s))];
}

void ShardedAdjacencyStore::link(Vertex u, Vertex v) {
  auto& a = row(u);
  a.insert(std::lower_bound(a.begin(), a.end(), v), v);
}

void ShardedAdjacencyStore::unlink(Vertex u, Vertex v) {
  auto& a = row(u);
  const auto it = std::lower_bound(a.begin(), a.end(), v);
  BMF_ASSERT(it != a.end() && *it == v);
  a.erase(it);
}

bool ShardedAdjacencyStore::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= part_.num_vertices() || v >= part_.num_vertices() ||
      u == v)
    return false;
  const auto& a = row(u);
  return std::binary_search(a.begin(), a.end(), v);
}

Graph ShardedAdjacencyStore::snapshot() const {
  GraphBuilder b(part_.num_vertices());
  for (Vertex u = 0; u < part_.num_vertices(); ++u)
    for (Vertex v : row(u))
      if (u < v) b.add_edge(u, v);
  return b.build();
}

bool ShardedAdjacencyStore::toggle(const EdgeUpdate& up) {
  const Vertex n = part_.num_vertices();
  BMF_REQUIRE(up.u >= 0 && up.u < n && up.v >= 0 && up.v < n && up.u != up.v,
              "ShardedDynamicMatcher: invalid edge update");
  if (up.insert) {
    if (has_edge(up.u, up.v)) return false;
    link(up.u, up.v);
    link(up.v, up.u);
    ++m_edges_;
    oracle_.on_insert(up.u, up.v);
  } else {
    if (!has_edge(up.u, up.v)) return false;
    unlink(up.u, up.v);
    unlink(up.v, up.u);
    --m_edges_;
    oracle_.on_erase(up.u, up.v);
  }
  // A serial toggle routes the update's two directed copies like a
  // one-element batch would (no-ops that toggle nothing send nothing).
  charge_route(2);
  return true;
}

void ShardedAdjacencyStore::charge_route(std::int64_t total_ops) {
  if (part_.shards() <= 1 || total_ops == 0) return;
  batch_bytes_ += total_ops * static_cast<std::int64_t>(sizeof(ShardOp));
  ++batch_rounds_;
}

void ShardedAdjacencyStore::apply_graph_ops(const RoutedOps& ops, int threads) {
  // Each shard replays the directed copies it owns in update order; shards
  // own disjoint row sets, so the concurrent replay is race-free and equals
  // the serial one.
  parallel_for_threads(
      gated_threads(ops.total_ops, 32, threads),
      static_cast<std::int64_t>(ops.per_shard.size()), [&](std::int64_t s) {
        for (const ShardOp& op : ops.per_shard[static_cast<std::size_t>(s)]) {
          if (op.insert)
            link(op.vertex, op.other);
          else
            unlink(op.vertex, op.other);
        }
      });
  m_edges_ += ops.edge_delta;
}

void ShardedAdjacencyStore::apply_structural(
    std::span<const EdgeUpdate> updates, std::span<const std::uint8_t> structural,
    int threads) {
  // Route once; the op lists feed both the adjacency slices and the oracle
  // row ranges.
  const RoutedOps ops = route_structural_ops(part_, updates, structural);
  charge_route(ops.total_ops);
  apply_graph_ops(ops, threads);
  oracle_.apply_ops(ops, threads);
}

void ShardedAdjacencyStore::apply_adjacency(
    std::span<const EdgeUpdate> updates, std::span<const std::uint8_t> structural,
    int threads) {
  RoutedOps ops = route_structural_ops(part_, updates, structural);
  charge_route(ops.total_ops);
  apply_graph_ops(ops, threads);
  // Keep the routing for the deferred flush_oracle over the same spans (the
  // rebuild-overlap path), so the common window routes once like
  // apply_structural does.
  pending_oracle_route_ = {updates.data(), structural.data(), updates.size(),
                           std::move(ops)};
}

void ShardedAdjacencyStore::flush_oracle(std::span<const EdgeUpdate> updates,
                                         std::span<const std::uint8_t> structural,
                                         int threads) {
  CachedRoute cached = std::exchange(pending_oracle_route_, {});
  if (cached.updates == updates.data() && cached.flags == structural.data() &&
      cached.count == updates.size()) {
    // The routed ops already crossed the boundary with apply_adjacency (which
    // charged them); replaying them into the oracle rows sends nothing new.
    oracle_.apply_ops(cached.ops, threads);
    return;
  }
  // Cache miss (the misprediction-rewind suffix): a genuinely new routing
  // round crosses the boundary.
  const RoutedOps ops = route_structural_ops(part_, updates, structural);
  charge_route(ops.total_ops);
  oracle_.apply_ops(ops, threads);
}

// ----------------------------------------------------- ShardedDynamicMatcher

namespace {

const ShardedMatcherConfig& validated(const ShardedMatcherConfig& cfg) {
  validate_core_config(cfg, cfg.shards, "ShardedDynamicMatcher");
  return cfg;
}

}  // namespace

ShardedDynamicMatcher::ShardedDynamicMatcher(Vertex n,
                                             const ShardedMatcherConfig& cfg)
    : part_(n, validated(cfg).shards),
      oracle_(n, cfg.shards, cfg.threads),
      store_(part_, oracle_),
      core_(store_, resolve_core_config(cfg)) {}

}  // namespace bmf
