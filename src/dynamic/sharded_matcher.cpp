#include "dynamic/sharded_matcher.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"
#include "util/thread_pool.hpp"

namespace bmf {

// ---------------------------------------------------------- VertexPartition

VertexPartition::VertexPartition(Vertex n, int shards)
    : n_(n),
      k_(shards),
      block_(n == 0 ? 0 : (n + static_cast<Vertex>(shards) - 1) /
                              static_cast<Vertex>(shards)) {
  BMF_REQUIRE(n >= 0, "VertexPartition: negative vertex count");
  BMF_REQUIRE(shards >= 1, "VertexPartition: shards must be >= 1");
}

// ------------------------------------------------------- ShardedMatrixOracle

ShardedMatrixOracle::ShardedMatrixOracle(Vertex n, int shards, int threads)
    : part_(n, shards), threads_(threads) {
  slices_.reserve(static_cast<std::size_t>(shards));
  for (int s = 0; s < shards; ++s)
    slices_.emplace_back(part_.size(s), n);
}

void ShardedMatrixOracle::on_insert(Vertex u, Vertex v) {
  const int su = part_.owner(u), sv = part_.owner(v);
  slices_[static_cast<std::size_t>(su)].set(u - part_.begin(su), v);
  slices_[static_cast<std::size_t>(sv)].set(v - part_.begin(sv), u);
}

void ShardedMatrixOracle::on_erase(Vertex u, Vertex v) {
  const int su = part_.owner(u), sv = part_.owner(v);
  slices_[static_cast<std::size_t>(su)].set(u - part_.begin(su), v, false);
  slices_[static_cast<std::size_t>(sv)].set(v - part_.begin(sv), u, false);
}

bool ShardedMatrixOracle::bit(Vertex u, Vertex v) const {
  const int su = part_.owner(u);
  return slices_[static_cast<std::size_t>(su)].get(u - part_.begin(su), v);
}

RoutedOps route_structural_ops(const VertexPartition& part,
                               std::span<const EdgeUpdate> updates,
                               std::span<const std::uint8_t> structural) {
  BMF_REQUIRE(structural.size() == updates.size(),
              "route_structural_ops: flag span size mismatch");
  // Route both directed copies of every structural update to the shard that
  // owns the row; appending while walking the batch in order leaves each
  // shard's op list sorted by update index, so a per-shard serial replay is
  // exactly the (shard-id, update-index)-ordered merge.
  RoutedOps out;
  out.per_shard.resize(static_cast<std::size_t>(part.shards()));
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (!structural[i]) continue;
    const EdgeUpdate& up = updates[i];
    out.edge_delta += up.insert ? 1 : -1;
    out.per_shard[static_cast<std::size_t>(part.owner(up.u))].push_back(
        {up.u, up.v, up.insert});
    out.per_shard[static_cast<std::size_t>(part.owner(up.v))].push_back(
        {up.v, up.u, up.insert});
    out.total_ops += 2;
  }
  return out;
}

void ShardedMatrixOracle::on_batch(std::span<const EdgeUpdate> updates,
                                   std::span<const std::uint8_t> structural,
                                   int threads) {
  apply_ops(route_structural_ops(part_, updates, structural), threads);
}

void ShardedMatrixOracle::apply_ops(const RoutedOps& ops, int threads) {
  parallel_for_threads(
      gated_threads(ops.total_ops, 32, threads),
      static_cast<std::int64_t>(ops.per_shard.size()), [&](std::int64_t s) {
        BitMatrix& slice = slices_[static_cast<std::size_t>(s)];
        const Vertex base = part_.begin(static_cast<int>(s));
        for (const ShardOp& op : ops.per_shard[static_cast<std::size_t>(s)])
          slice.set(op.vertex - base, op.other, op.insert);
      });
}

std::int64_t ShardedMatrixOracle::probe(Vertex u, const BitVec& mask,
                                        std::int64_t* words) const {
  const int s = part_.owner(u);
  std::int64_t scanned = 0;
  const std::int64_t col = slices_[static_cast<std::size_t>(s)].first_common_in_row(
      u - part_.begin(s), mask, &scanned);
  *words += scanned;
  return col;
}

WeakQueryResult ShardedMatrixOracle::greedy(std::span<const Vertex> rows,
                                            BitVec& avail, bool consume_plus,
                                            double delta) {
  const auto count = static_cast<std::int64_t>(rows.size());
  // Speculative shard-local candidate scan against the pre-commit mask:
  // every row probes concurrently, results land in per-row slots.
  std::vector<std::int64_t> cand(rows.size(), -1), words(rows.size(), 0);
  parallel_for_threads(gated_threads(count, 16, threads_), count,
                       [&](std::int64_t i) {
                         const auto k = static_cast<std::size_t>(i);
                         cand[k] = probe(rows[k], avail, &words[k]);
                       });
  for (const std::int64_t w : words) words_touched_ += w;

  // Serial greedy commit in row order. The mask only shrinks, so a
  // speculative candidate that is still available equals the live mask's
  // first common neighbor (its scan prefix is unchanged); a stale candidate
  // re-probes inline, which is verbatim the serial greedy's probe at this
  // row's turn. A -1 stays -1 against any smaller mask.
  WeakQueryResult out;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Vertex u = rows[i];
    if (consume_plus && !avail.get(u)) continue;
    std::int64_t c = cand[i];
    if (c >= 0 && !avail.get(c)) c = probe(u, avail, &words_touched_);
    if (c < 0) continue;
    out.matching.push_back({u, static_cast<Vertex>(c)});
    if (consume_plus) avail.set(u, false);
    avail.set(c, false);
  }
  const double threshold =
      lambda() * delta * static_cast<double>(part_.num_vertices());
  out.bottom = static_cast<double>(out.matching.size()) < threshold;
  return out;
}

WeakQueryResult ShardedMatrixOracle::query_impl(std::span<const Vertex> s,
                                                double delta) {
  BitVec avail(part_.num_vertices());
  for (Vertex v : s) avail.set(v);
  // The adjacency diagonal is never set, so a probe cannot return its own
  // row even when that row is in the mask.
  return greedy(s, avail, /*consume_plus=*/true, delta);
}

WeakQueryResult ShardedMatrixOracle::query_cover_impl(
    std::span<const Vertex> s_plus, std::span<const Vertex> s_minus,
    double delta) {
  BitVec avail(part_.num_vertices());
  for (Vertex v : s_minus) avail.set(v);
  return greedy(s_plus, avail, /*consume_plus=*/false, delta);
}

// ----------------------------------------------------- ShardedDynamicMatcher

ShardedDynamicMatcher::ShardedDynamicMatcher(Vertex n,
                                             const ShardedMatcherConfig& cfg)
    : part_(n, cfg.shards),
      slices_(static_cast<std::size_t>(cfg.shards)),
      oracle_(n, cfg.shards, cfg.threads),
      cfg_(cfg),
      m_(n),
      mark_(static_cast<std::size_t>(n), 0) {
  BMF_REQUIRE(cfg.eps > 0 && cfg.eps <= 1, "ShardedDynamicMatcher: eps out of range");
  BMF_REQUIRE(cfg.shards >= 1, "ShardedDynamicMatcher: shards must be >= 1");
  for (int s = 0; s < cfg.shards; ++s)
    slices_[static_cast<std::size_t>(s)].resize(
        static_cast<std::size_t>(part_.size(s)));
  // Same forcing as DynamicMatcher: the rebuild engine runs at eps/2 on the
  // shared threads knob, so rebuild trajectories line up bit for bit.
  cfg_.sim.core.eps = cfg.eps / 2.0;
  cfg_.sim.core.seed = cfg.seed;
  cfg_.sim.core.threads = cfg.threads;
}

std::vector<Vertex>& ShardedDynamicMatcher::row(Vertex v) {
  const int s = part_.owner(v);
  return slices_[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(v - part_.begin(s))];
}

const std::vector<Vertex>& ShardedDynamicMatcher::row(Vertex v) const {
  const int s = part_.owner(v);
  return slices_[static_cast<std::size_t>(s)]
                [static_cast<std::size_t>(v - part_.begin(s))];
}

void ShardedDynamicMatcher::link(Vertex u, Vertex v) {
  auto& a = row(u);
  a.insert(std::lower_bound(a.begin(), a.end(), v), v);
}

void ShardedDynamicMatcher::unlink(Vertex u, Vertex v) {
  auto& a = row(u);
  const auto it = std::lower_bound(a.begin(), a.end(), v);
  BMF_ASSERT(it != a.end() && *it == v);
  a.erase(it);
}

bool ShardedDynamicMatcher::has_edge(Vertex u, Vertex v) const {
  if (u < 0 || v < 0 || u >= part_.num_vertices() || v >= part_.num_vertices() ||
      u == v)
    return false;
  const auto& a = row(u);
  return std::binary_search(a.begin(), a.end(), v);
}

std::span<const Vertex> ShardedDynamicMatcher::neighbors(Vertex v) const {
  return row(v);
}

Graph ShardedDynamicMatcher::snapshot() const {
  GraphBuilder b(part_.num_vertices());
  for (Vertex u = 0; u < part_.num_vertices(); ++u)
    for (Vertex v : row(u))
      if (u < v) b.add_edge(u, v);
  return b.build();
}

void ShardedDynamicMatcher::apply_graph_ops(const RoutedOps& ops, int threads) {
  // Each shard replays the directed copies it owns in update order; shards
  // own disjoint row sets, so the concurrent replay is race-free and equals
  // the serial one.
  parallel_for_threads(
      gated_threads(ops.total_ops, 32, threads),
      static_cast<std::int64_t>(ops.per_shard.size()), [&](std::int64_t s) {
        for (const ShardOp& op : ops.per_shard[static_cast<std::size_t>(s)]) {
          if (op.insert)
            link(op.vertex, op.other);
          else
            unlink(op.vertex, op.other);
        }
      });
  m_edges_ += ops.edge_delta;
}

void ShardedDynamicMatcher::try_match(Vertex v) {
  if (!m_.is_free(v)) return;
  for (Vertex w : row(v)) {
    if (m_.is_free(w)) {
      m_.add(v, w);
      return;
    }
  }
}

void ShardedDynamicMatcher::on_structural_change(Vertex u, Vertex v,
                                                 bool inserted) {
  if (inserted) {
    if (m_.is_free(u) && m_.is_free(v)) m_.add(u, v);
  } else if (m_.has(u, v)) {
    m_.remove_at(u);
    try_match(u);
    try_match(v);
  }
}

void ShardedDynamicMatcher::insert(Vertex u, Vertex v) {
  apply(EdgeUpdate::ins(u, v));
}

void ShardedDynamicMatcher::erase(Vertex u, Vertex v) {
  apply(EdgeUpdate::del(u, v));
}

void ShardedDynamicMatcher::apply(const EdgeUpdate& update) {
  ++updates_;
  ++since_rebuild_;
  if (!update.empty()) {
    const Vertex n = part_.num_vertices();
    BMF_REQUIRE(update.u >= 0 && update.u < n && update.v >= 0 && update.v < n &&
                    update.u != update.v,
                "ShardedDynamicMatcher: invalid edge update");
    if (update.insert) {
      if (!has_edge(update.u, update.v)) {
        link(update.u, update.v);
        link(update.v, update.u);
        ++m_edges_;
        oracle_.on_insert(update.u, update.v);
        on_structural_change(update.u, update.v, true);
      }
    } else {
      if (has_edge(update.u, update.v)) {
        unlink(update.u, update.v);
        unlink(update.v, update.u);
        --m_edges_;
        oracle_.on_erase(update.u, update.v);
        on_structural_change(update.u, update.v, false);
      }
    }
  }
  maybe_rebuild();
}

bool ShardedDynamicMatcher::is_heavy(const EdgeUpdate& up) const {
  return !up.empty() && !up.insert && m_.has(up.u, up.v);
}

std::size_t ShardedDynamicMatcher::light_prefix_length(
    std::span<const EdgeUpdate> rest) {
  ++epoch_;
  std::size_t j = 0;
  for (; j < rest.size(); ++j) {
    const EdgeUpdate& c = rest[j];
    if (c.empty()) continue;
    auto& mu = mark_[static_cast<std::size_t>(c.u)];
    auto& mv = mark_[static_cast<std::size_t>(c.v)];
    if (mu == epoch_ || mv == epoch_) break;
    if (is_heavy(c)) break;
    mu = epoch_;
    mv = epoch_;
  }
  return j;
}

std::size_t ShardedDynamicMatcher::heavy_run_length(
    std::span<const EdgeUpdate> rest) {
  if (heavy_index_.empty()) heavy_index_.assign(mark_.size(), 0);
  ++epoch_;
  std::size_t j = 0;
  for (; j < rest.size(); ++j) {
    const EdgeUpdate& c = rest[j];
    if (c.empty() || c.insert) break;
    auto& mu = mark_[static_cast<std::size_t>(c.u)];
    auto& mv = mark_[static_cast<std::size_t>(c.v)];
    if (mu == epoch_ || mv == epoch_) break;
    if (!m_.has(c.u, c.v)) break;
    mu = epoch_;
    mv = epoch_;
    heavy_index_[static_cast<std::size_t>(c.u)] = static_cast<std::int32_t>(j);
    heavy_index_[static_cast<std::size_t>(c.v)] = static_cast<std::int32_t>(j);
  }
  return j;
}

std::size_t ShardedDynamicMatcher::apply_heavy_run(std::span<const EdgeUpdate> run,
                                                   int threads) {
  // Worst-case budget replay (see DynamicMatcher::apply_heavy_run): truncate
  // the run so no rebuild can fire inside it for any rematch outcome.
  const std::int64_t sz0 = m_.size();
  std::int64_t safe = 0;
  while (safe < static_cast<std::int64_t>(run.size()) &&
         since_rebuild_ + safe + 1 < rebuild_budget(sz0 - (safe + 1)))
    ++safe;
  if (safe == 0) {
    apply(run[0]);
    return 1;
  }
  run = run.first(static_cast<std::size_t>(safe));

  structural_.assign(run.size(), 1);
  const std::span<const std::uint8_t> flags(structural_.data(), run.size());
  const RoutedOps ops = route_structural_ops(part_, run, flags);
  apply_graph_ops(ops, threads);
  oracle_.apply_ops(ops, threads);

  // Reservation scan (parallel, read-only over shard rows): endpoint 2i/2i+1
  // collects the ascending list of neighbors that can possibly be free at
  // its commit turn — free before the run, or freed by an earlier deletion.
  std::vector<std::vector<Vertex>> cand(2 * run.size());
  const int scan_threads =
      gated_threads(static_cast<std::int64_t>(run.size()), 8, threads);
  parallel_for_threads(
      scan_threads, static_cast<std::int64_t>(2 * run.size()), [&](std::int64_t k) {
        const auto i = static_cast<std::size_t>(k / 2);
        const Vertex x = (k % 2 == 0) ? run[i].u : run[i].v;
        auto& out = cand[static_cast<std::size_t>(k)];
        for (Vertex nb : row(x)) {
          const auto nbi = static_cast<std::size_t>(nb);
          if (m_.is_free(nb) ||
              (mark_[nbi] == epoch_ &&
               heavy_index_[nbi] < static_cast<std::int32_t>(i)))
            out.push_back(nb);
        }
      });

  // Serial coordinator commit in update order: the sequential
  // minimum-free-neighbor repair, endpoint for endpoint.
  for (std::size_t i = 0; i < run.size(); ++i) {
    m_.remove_at(run[i].u);
    for (const std::size_t k : {2 * i, 2 * i + 1}) {
      const Vertex x = (k % 2 == 0) ? run[i].u : run[i].v;
      if (!m_.is_free(x)) continue;
      for (Vertex nb : cand[k]) {
        if (m_.is_free(nb)) {
          m_.add(x, nb);
          break;
        }
      }
    }
    ++updates_;
    ++since_rebuild_;
  }
  BMF_ASSERT(since_rebuild_ < rebuild_budget(m_.size()));
  return run.size();
}

ShardedDynamicMatcher::PrefixOutcome ShardedDynamicMatcher::apply_light_prefix(
    std::span<const EdgeUpdate> prefix, int threads) {
  const auto len = static_cast<std::int64_t>(prefix.size());
  structural_.assign(prefix.size(), 0);
  match_.assign(prefix.size(), 0);

  // Per-update decisions read only the update's own endpoints (disjoint
  // inside a prefix), so concurrent evaluation against the pre-prefix state
  // equals the sequential decisions exactly.
  const int decision_threads = gated_threads(len, 32, threads);
  parallel_for_threads(decision_threads, len, [&](std::int64_t i) {
    const auto k = static_cast<std::size_t>(i);
    const EdgeUpdate& up = prefix[k];
    if (up.empty()) return;
    if (up.insert) {
      if (!has_edge(up.u, up.v)) {
        structural_[k] = 1;
        if (m_.is_free(up.u) && m_.is_free(up.v)) match_[k] = 1;
      }
    } else {
      if (has_edge(up.u, up.v)) structural_[k] = 1;
    }
  });

  // Global rebuild-budget replay: truncate at the first position where the
  // sequential maybe_rebuild() would fire.
  std::size_t cut = prefix.size();
  bool fire = false;
  {
    std::int64_t sz = m_.size();
    std::int64_t since = since_rebuild_;
    for (std::size_t k = 0; k < prefix.size(); ++k) {
      ++since;
      if (match_[k]) ++sz;
      if (since >= rebuild_budget(sz)) {
        cut = k + 1;
        fire = true;
        break;
      }
    }
  }

  const auto committed = prefix.first(cut);
  const auto flags = std::span<const std::uint8_t>(structural_).first(cut);
  const RoutedOps ops = route_structural_ops(part_, committed, flags);
  apply_graph_ops(ops, threads);
  oracle_.apply_ops(ops, threads);
  for (std::size_t k = 0; k < cut; ++k) {
    ++updates_;
    ++since_rebuild_;
    if (match_[k]) m_.add(prefix[k].u, prefix[k].v);
  }
  return {cut, fire};
}

void ShardedDynamicMatcher::apply_batch(std::span<const EdgeUpdate> batch) {
  const Vertex n = part_.num_vertices();
  for (const EdgeUpdate& up : batch)
    BMF_REQUIRE(up.empty() || (up.u >= 0 && up.u < n && up.v >= 0 && up.v < n &&
                               up.u != up.v),
                "ShardedDynamicMatcher::apply_batch: invalid update");
  const int threads = ThreadPool::resolve_threads(cfg_.threads);
  if (threads <= 1 && cfg_.shards <= 1) {
    // Unsharded and serial: the one-at-a-time loop is the reference
    // semantics, and the routing machinery buys nothing.
    for (const EdgeUpdate& up : batch) apply(up);
    return;
  }
  std::size_t i = 0;
  while (i < batch.size()) {
    if (is_heavy(batch[i])) {
      const std::size_t run = heavy_run_length(batch.subspan(i));
      if (run >= 2) {
        i += apply_heavy_run(batch.subspan(i, run), threads);
      } else {
        apply(batch[i]);
        ++i;
      }
      continue;
    }
    const std::size_t len = light_prefix_length(batch.subspan(i));
    const PrefixOutcome got = apply_light_prefix(batch.subspan(i, len), threads);
    i += got.consumed;
    if (got.fired) {
      since_rebuild_ = 0;
      ++rebuilds_;
      rebuild();
    }
  }
}

void ShardedDynamicMatcher::rebuild() {
  const Graph snap = snapshot();
  WeakBoostResult boosted = static_weak_boost(snap, m_, oracle_, cfg_.sim);
  m_ = std::move(boosted.matching);
}

std::int64_t ShardedDynamicMatcher::rebuild_budget(std::int64_t sz) const {
  if (cfg_.rebuild_every > 0) return cfg_.rebuild_every;
  return std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             std::floor(cfg_.eps * static_cast<double>(sz) / 4.0)));
}

void ShardedDynamicMatcher::maybe_rebuild() {
  if (since_rebuild_ < rebuild_budget(m_.size())) return;
  since_rebuild_ = 0;
  ++rebuilds_;
  rebuild();
}

}  // namespace bmf
