#include "stream/edge_stream.hpp"

#include <numeric>

namespace bmf {

EdgeStream::EdgeStream(const Graph& g, bool shuffle_each_pass, std::uint64_t seed)
    : g_(g), shuffle_(shuffle_each_pass), rng_(seed),
      order_(static_cast<std::size_t>(g.num_edges())) {
  std::iota(order_.begin(), order_.end(), 0);
}

void EdgeStream::for_each_pass(const std::function<void(const Edge&)>& fn) {
  if (shuffle_) rng_.shuffle(order_);
  const auto edges = g_.edges();
  for (std::int64_t i : order_) fn(edges[static_cast<std::size_t>(i)]);
  ++passes_;
}

}  // namespace bmf
