#pragma once

/// The semi-streaming (1+eps)-approximate matching algorithm of [MMSS25]
/// (Section 4), implemented directly over pass-counted streams.
///
/// This is the algorithm the oracle framework of Section 5 simulates; having
/// it as a standalone driver gives (a) a reference implementation the
/// framework is differentially tested against, and (b) the pass-count
/// experiment (bench PASS).
///
/// Pass budget per pass-bundle: one pass for Extend-Active-Path (Algorithm 3)
/// and two for Contract-and-Augment (one to record in-structure arcs and run
/// the Contract fixpoint from memory, one to exhaust type-2 Augment arcs;
/// augmentations only remove structures, so a single pass reaches the type-2
/// fixpoint). Memory is tracked in words and stays O(n poly(1/eps)).

#include <cstdint>

#include "core/config.hpp"
#include "core/phase.hpp"
#include "core/structures.hpp"
#include "stream/edge_stream.hpp"

namespace bmf {

class StreamingDriver final : public PassBundleDriver {
 public:
  StreamingDriver(EdgeStream& stream, const CoreConfig& cfg)
      : stream_(stream), cfg_(cfg) {}

  void extend_active_path(StructureForest& forest) override;
  void contract_and_augment(StructureForest& forest) override;
  /// The streaming algorithm is the exact [MMSS25] procedure — no oracle
  /// truncation, hence no contaminated arcs.
  [[nodiscard]] bool exhaustive() const override { return true; }

  [[nodiscard]] std::int64_t peak_memory_words() const { return peak_words_; }

 private:
  void try_arc(StructureForest& forest, Vertex u, Vertex v);

  EdgeStream& stream_;
  const CoreConfig& cfg_;
  std::int64_t peak_words_ = 0;
};

struct StreamingResult {
  Matching matching;
  BoostOutcome outcome;
  std::int64_t passes = 0;
  std::int64_t peak_memory_words = 0;
};

/// Algorithm 1 run end-to-end in the semi-streaming model: one pass for the
/// initial greedy maximal (2-approximate) matching, then the phase schedule.
[[nodiscard]] StreamingResult streaming_matching(EdgeStream& stream, Vertex n,
                                                 const CoreConfig& cfg);

/// Convenience overload streaming the edges of g in stored order.
[[nodiscard]] StreamingResult streaming_matching(const Graph& g,
                                                 const CoreConfig& cfg);

}  // namespace bmf
