#pragma once

/// Pass-counted edge streams (Section 3.4, semi-streaming model).
///
/// The stream can only be read as a whole; each full read is a pass. The
/// algorithm's space is accounted separately (see StreamingMatcher). Edges may
/// be re-ordered between passes to model adversarial arrival order.

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace bmf {

class EdgeStream {
 public:
  /// Streams the edges of g. If `shuffle_each_pass`, the order is re-drawn
  /// uniformly before every pass (the model allows arbitrary order per pass).
  explicit EdgeStream(const Graph& g, bool shuffle_each_pass = false,
                      std::uint64_t seed = 1);

  /// One pass: fn sees every undirected edge exactly once.
  void for_each_pass(const std::function<void(const Edge&)>& fn);

  [[nodiscard]] std::int64_t passes() const { return passes_; }
  [[nodiscard]] std::int64_t num_edges() const {
    return static_cast<std::int64_t>(order_.size());
  }

 private:
  const Graph& g_;
  bool shuffle_;
  Rng rng_;
  std::vector<std::int64_t> order_;
  std::int64_t passes_ = 0;
};

}  // namespace bmf
