#include "stream/streaming_matcher.hpp"

#include <algorithm>
#include <vector>

#include "util/assert.hpp"

namespace bmf {

void StreamingDriver::try_arc(StructureForest& forest, Vertex u, Vertex v) {
  // Algorithm 3 body for the arc g = (u, v).
  if (forest.is_removed(u) || forest.is_removed(v)) return;
  const StructureId su = forest.structure_of(u);
  if (su == kNoStructure) return;
  const StructureInfo& s = forest.structure(su);
  const BlossomId bu = forest.omega(u);
  if (s.working != bu) return;                       // tail must be working
  if (bu == forest.omega(v)) return;                 // blossom arc
  if (forest.matching().mate(u) == v) return;        // matched arc
  // Section 4.6 prose: skip structures marked on hold or extended (an
  // overtaken structure is modified-but-not-extended and may still extend).
  if (s.on_hold || s.extended) return;

  if (forest.is_outer(v)) {
    if (forest.structure_of(v) == su) {
      if (forest.can_contract(u, v)) forest.contract(u, v);
    } else {
      if (forest.can_augment(u, v)) forest.augment(u, v);
    }
    return;
  }
  // Omega(v) is inner or unvisited: candidate Overtake with
  // k = distance(u) + 1 (Algorithm 3 lines 13-17).
  if (forest.matching().mate(v) == kNoVertex) return;
  const int k = forest.outer_level(bu) + 1;
  if (k < forest.label(v) && forest.can_overtake(u, v, k))
    forest.overtake(u, v, k);
}

void StreamingDriver::extend_active_path(StructureForest& forest) {
  stream_.for_each_pass([&](const Edge& e) {
    try_arc(forest, e.u, e.v);
    try_arc(forest, e.v, e.u);
  });
}

void StreamingDriver::contract_and_augment(StructureForest& forest) {
  // Pass 1: record in-structure arcs (both endpoints currently in the same
  // structure). Overtake never runs during Contract-and-Augment, so
  // co-structurality only shrinks during this step and the recorded set is
  // complete for the Contract fixpoint below.
  std::vector<Edge> in_structure;
  stream_.for_each_pass([&](const Edge& e) {
    if (forest.is_removed(e.u) || forest.is_removed(e.v)) return;
    const StructureId su = forest.structure_of(e.u);
    if (su != kNoStructure && su == forest.structure_of(e.v))
      in_structure.push_back(e);
  });
  peak_words_ = std::max(peak_words_,
                         static_cast<std::int64_t>(in_structure.size()) * 2);

  // Step 1: Contract fixpoint from memory (type-1 arcs only exist at working
  // vertices; each contraction can expose new ones, so loop to fixpoint).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Edge& e : in_structure) {
      if (forest.can_contract(e.u, e.v)) {
        forest.contract(e.u, e.v);
        changed = true;
      } else if (forest.can_contract(e.v, e.u)) {
        forest.contract(e.v, e.u);
        changed = true;
      }
    }
  }

  // Pass 2 / Step 2: exhaust type-2 arcs. Augment only removes structures,
  // so processing each arc once reaches the fixpoint.
  stream_.for_each_pass([&](const Edge& e) {
    if (forest.can_augment(e.u, e.v)) forest.augment(e.u, e.v);
  });
}

StreamingResult streaming_matching(EdgeStream& stream, Vertex n,
                                   const CoreConfig& cfg) {
  // Algorithm 1 line 1: a 2-approximate maximal matching in a single pass.
  Matching m(n);
  stream.for_each_pass([&](const Edge& e) {
    if (m.is_free(e.u) && m.is_free(e.v)) m.add(e.u, e.v);
  });

  // The phase engine needs adjacency for the structure-local operations the
  // streaming algorithm keeps in memory (stored matched arcs + structures).
  // Rebuild that static view once; stream passes remain the unit of account.
  GraphBuilder builder(n);
  stream.for_each_pass([&](const Edge& e) { builder.add_edge(e.u, e.v); });
  const Graph g = builder.build();

  StreamingDriver driver(stream, cfg);
  PhaseEngine engine(g, cfg);
  StreamingResult result{std::move(m), {}, 0, 0};
  result.outcome = engine.run(result.matching, driver);
  result.passes = stream.passes();
  result.peak_memory_words = driver.peak_memory_words();
  return result;
}

StreamingResult streaming_matching(const Graph& g, const CoreConfig& cfg) {
  EdgeStream stream(g, /*shuffle_each_pass=*/false, cfg.seed);
  return streaming_matching(stream, g.num_vertices(), cfg);
}

}  // namespace bmf
