#pragma once

/// Augmenting-path diagnostics.
///
/// `bipartite_shortest_augmenting_path_length` computes the exact length of
/// the shortest M-augmenting path of a bipartite graph (alternating BFS).
/// Tests use it to *independently verify* the Theorem B.4 certificate: a
/// certified run guarantees no augmenting path of length <= 3/eps, which this
/// routine can check without trusting the framework's own bookkeeping.

#include <cstdint>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// Length (edge count) of the shortest M-augmenting path, or -1 if none
/// exists (M is maximum). Requires a valid two-coloring `side` of g.
[[nodiscard]] std::int64_t bipartite_shortest_augmenting_path_length(
    const Graph& g, std::span<const std::uint8_t> side, const Matching& m);

/// Counts how many vertex-disjoint augmenting paths a maximum matching needs
/// on top of m (== mu(G) - |M|); exact, any graph. Convenience for tests.
[[nodiscard]] std::int64_t augmenting_deficit(const Graph& g, const Matching& m);

}  // namespace bmf
