#include "matching/blossom_exact.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "util/assert.hpp"

namespace bmf {
namespace {

/// Alternating-forest search with blossom shrinking via base pointers.
class BlossomSolver {
 public:
  explicit BlossomSolver(const Graph& g)
      : g_(g),
        n_(static_cast<std::size_t>(g.num_vertices())),
        mate_(n_, kNoVertex),
        parent_(n_, kNoVertex),
        base_(n_),
        used_(n_, 0),
        in_blossom_(n_, 0) {}

  void seed(const Matching& m) {
    for (Vertex v = 0; v < g_.num_vertices(); ++v)
      mate_[static_cast<std::size_t>(v)] = m.mate(v);
  }

  Matching solve() {
    for (Vertex v = 0; v < g_.num_vertices(); ++v) {
      if (mate_[static_cast<std::size_t>(v)] != kNoVertex) continue;
      const Vertex tail = find_augmenting_path(v);
      if (tail != kNoVertex) flip_path(tail);
    }
    Matching m(g_.num_vertices());
    for (Vertex v = 0; v < g_.num_vertices(); ++v)
      if (mate_[static_cast<std::size_t>(v)] > v)
        m.add(v, mate_[static_cast<std::size_t>(v)]);
    return m;
  }

 private:
  Vertex lca(Vertex a, Vertex b) {
    std::vector<std::uint8_t> seen(n_, 0);
    for (Vertex x = a;;) {
      x = base_[static_cast<std::size_t>(x)];
      seen[static_cast<std::size_t>(x)] = 1;
      if (mate_[static_cast<std::size_t>(x)] == kNoVertex) break;
      x = parent_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(x)])];
    }
    for (Vertex y = b;;) {
      y = base_[static_cast<std::size_t>(y)];
      if (seen[static_cast<std::size_t>(y)]) return y;
      y = parent_[static_cast<std::size_t>(mate_[static_cast<std::size_t>(y)])];
    }
  }

  void mark_path(Vertex v, Vertex b, Vertex child) {
    while (base_[static_cast<std::size_t>(v)] != b) {
      const Vertex mv = mate_[static_cast<std::size_t>(v)];
      in_blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(v)])] = 1;
      in_blossom_[static_cast<std::size_t>(base_[static_cast<std::size_t>(mv)])] = 1;
      parent_[static_cast<std::size_t>(v)] = child;
      child = mv;
      v = parent_[static_cast<std::size_t>(mv)];
    }
  }

  Vertex find_augmenting_path(Vertex root) {
    std::fill(used_.begin(), used_.end(), 0);
    std::fill(parent_.begin(), parent_.end(), kNoVertex);
    std::iota(base_.begin(), base_.end(), 0);
    used_[static_cast<std::size_t>(root)] = 1;
    std::deque<Vertex> queue{root};
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      for (Vertex to : g_.neighbors(v)) {
        if (base_[static_cast<std::size_t>(v)] == base_[static_cast<std::size_t>(to)] ||
            mate_[static_cast<std::size_t>(v)] == to)
          continue;
        if (to == root ||
            (mate_[static_cast<std::size_t>(to)] != kNoVertex &&
             parent_[static_cast<std::size_t>(
                 mate_[static_cast<std::size_t>(to)])] != kNoVertex)) {
          // Odd cycle through the forest: shrink the blossom.
          const Vertex cur_base = lca(v, to);
          std::fill(in_blossom_.begin(), in_blossom_.end(), 0);
          mark_path(v, cur_base, to);
          mark_path(to, cur_base, v);
          for (std::size_t i = 0; i < n_; ++i) {
            if (in_blossom_[static_cast<std::size_t>(base_[i])]) {
              base_[i] = cur_base;
              if (!used_[i]) {
                used_[i] = 1;
                queue.push_back(static_cast<Vertex>(i));
              }
            }
          }
        } else if (parent_[static_cast<std::size_t>(to)] == kNoVertex) {
          parent_[static_cast<std::size_t>(to)] = v;
          if (mate_[static_cast<std::size_t>(to)] == kNoVertex) return to;
          const Vertex next = mate_[static_cast<std::size_t>(to)];
          used_[static_cast<std::size_t>(next)] = 1;
          queue.push_back(next);
        }
      }
    }
    return kNoVertex;
  }

  void flip_path(Vertex v) {
    while (v != kNoVertex) {
      const Vertex pv = parent_[static_cast<std::size_t>(v)];
      const Vertex next = mate_[static_cast<std::size_t>(pv)];
      mate_[static_cast<std::size_t>(v)] = pv;
      mate_[static_cast<std::size_t>(pv)] = v;
      v = next;
    }
  }

  const Graph& g_;
  std::size_t n_;
  std::vector<Vertex> mate_, parent_, base_;
  std::vector<std::uint8_t> used_, in_blossom_;
};

}  // namespace

Matching blossom_maximum_matching(const Graph& g) {
  BlossomSolver solver(g);
  return solver.solve();
}

Matching blossom_maximum_matching(const Graph& g, Matching initial) {
  BMF_REQUIRE(initial.num_vertices() == g.num_vertices(),
              "blossom_maximum_matching: matching size mismatch");
  BlossomSolver solver(g);
  solver.seed(initial);
  return solver.solve();
}

std::int64_t maximum_matching_size(const Graph& g) {
  return blossom_maximum_matching(g).size();
}

}  // namespace bmf
