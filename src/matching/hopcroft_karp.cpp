#include "matching/hopcroft_karp.hpp"

#include <deque>
#include <limits>

#include "util/assert.hpp"

namespace bmf {

std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g) {
  const Vertex n = g.num_vertices();
  std::vector<std::uint8_t> side(static_cast<std::size_t>(n), 2);  // 2 = unseen
  std::deque<Vertex> queue;
  for (Vertex s = 0; s < n; ++s) {
    if (side[static_cast<std::size_t>(s)] != 2) continue;
    side[static_cast<std::size_t>(s)] = 0;
    queue.push_back(s);
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      for (Vertex w : g.neighbors(v)) {
        if (side[static_cast<std::size_t>(w)] == 2) {
          side[static_cast<std::size_t>(w)] =
              static_cast<std::uint8_t>(1 - side[static_cast<std::size_t>(v)]);
          queue.push_back(w);
        } else if (side[static_cast<std::size_t>(w)] ==
                   side[static_cast<std::size_t>(v)]) {
          return std::nullopt;
        }
      }
    }
  }
  return side;
}

namespace {

constexpr std::int32_t kInf = std::numeric_limits<std::int32_t>::max();

struct HkState {
  const Graph& g;
  std::span<const std::uint8_t> side;
  std::vector<Vertex> mate;
  std::vector<std::int32_t> dist;

  bool bfs() {
    std::deque<Vertex> queue;
    bool found_free = false;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (side[static_cast<std::size_t>(v)] != 0) continue;
      if (mate[static_cast<std::size_t>(v)] == kNoVertex) {
        dist[static_cast<std::size_t>(v)] = 0;
        queue.push_back(v);
      } else {
        dist[static_cast<std::size_t>(v)] = kInf;
      }
    }
    while (!queue.empty()) {
      const Vertex v = queue.front();
      queue.pop_front();
      for (Vertex w : g.neighbors(v)) {
        const Vertex next = mate[static_cast<std::size_t>(w)];
        if (next == kNoVertex) {
          found_free = true;
        } else if (dist[static_cast<std::size_t>(next)] == kInf) {
          dist[static_cast<std::size_t>(next)] =
              dist[static_cast<std::size_t>(v)] + 1;
          queue.push_back(next);
        }
      }
    }
    return found_free;
  }

  bool dfs(Vertex v) {
    for (Vertex w : g.neighbors(v)) {
      const Vertex next = mate[static_cast<std::size_t>(w)];
      if (next == kNoVertex ||
          (dist[static_cast<std::size_t>(next)] ==
               dist[static_cast<std::size_t>(v)] + 1 &&
           dfs(next))) {
        mate[static_cast<std::size_t>(v)] = w;
        mate[static_cast<std::size_t>(w)] = v;
        return true;
      }
    }
    dist[static_cast<std::size_t>(v)] = kInf;
    return false;
  }
};

}  // namespace

Matching hopcroft_karp(const Graph& g, std::span<const std::uint8_t> side) {
  BMF_REQUIRE(static_cast<Vertex>(side.size()) == g.num_vertices(),
              "hopcroft_karp: side mask size mismatch");
  HkState st{g, side,
             std::vector<Vertex>(static_cast<std::size_t>(g.num_vertices()), kNoVertex),
             std::vector<std::int32_t>(static_cast<std::size_t>(g.num_vertices()), 0)};
  while (st.bfs()) {
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      if (side[static_cast<std::size_t>(v)] == 0 &&
          st.mate[static_cast<std::size_t>(v)] == kNoVertex)
        st.dfs(v);
  }
  Matching m(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    if (side[static_cast<std::size_t>(v)] == 0 &&
        st.mate[static_cast<std::size_t>(v)] != kNoVertex)
      m.add(v, st.mate[static_cast<std::size_t>(v)]);
  return m;
}

Matching hopcroft_karp(const Graph& g) {
  auto side = bipartition(g);
  BMF_REQUIRE(side.has_value(), "hopcroft_karp: graph is not bipartite");
  return hopcroft_karp(g, *side);
}

}  // namespace bmf
