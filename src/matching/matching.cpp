#include "matching/matching.hpp"

#include <unordered_set>

#include "util/assert.hpp"

namespace bmf {

Matching::Matching(Vertex num_vertices)
    : mate_(static_cast<std::size_t>(num_vertices), kNoVertex) {
  BMF_REQUIRE(num_vertices >= 0, "Matching: negative vertex count");
}

void Matching::add(Vertex u, Vertex v) {
  BMF_ASSERT(u != v);
  BMF_ASSERT(is_free(u) && is_free(v));
  mate_[static_cast<std::size_t>(u)] = v;
  mate_[static_cast<std::size_t>(v)] = u;
  ++size_;
}

void Matching::remove_at(Vertex v) {
  const Vertex u = mate(v);
  if (u == kNoVertex) return;
  mate_[static_cast<std::size_t>(u)] = kNoVertex;
  mate_[static_cast<std::size_t>(v)] = kNoVertex;
  --size_;
}

void Matching::augment(std::span<const Vertex> path) {
  BMF_ASSERT(path.size() >= 2 && path.size() % 2 == 0);
  BMF_ASSERT(is_free(path.front()) && is_free(path.back()));
  // Remove the matched edges (odd positions pair (1,2), (3,4), ...).
  for (std::size_t i = 1; i + 1 < path.size(); i += 2) {
    BMF_ASSERT(mate(path[i]) == path[i + 1]);
    remove_at(path[i]);
  }
  // Add the unmatched edges (positions (0,1), (2,3), ...).
  for (std::size_t i = 0; i < path.size(); i += 2) add(path[i], path[i + 1]);
}

std::vector<Edge> Matching::edge_list() const {
  std::vector<Edge> out;
  out.reserve(static_cast<std::size_t>(size_));
  for (Vertex v = 0; v < num_vertices(); ++v)
    if (mate(v) > v) out.push_back({v, mate(v)});
  return out;
}

std::vector<Vertex> Matching::free_vertices() const {
  std::vector<Vertex> out;
  for (Vertex v = 0; v < num_vertices(); ++v)
    if (is_free(v)) out.push_back(v);
  return out;
}

bool Matching::is_valid_in(const Graph& g) const {
  if (num_vertices() != g.num_vertices()) return false;
  std::int64_t count = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) {
    const Vertex u = mate(v);
    if (u == kNoVertex) continue;
    if (u == v || mate(u) != v) return false;
    if (!g.has_edge(u, v)) return false;
    if (u > v) ++count;
  }
  return count == size_;
}

bool Matching::is_maximal_in(const Graph& g) const {
  for (const Edge& e : g.edges())
    if (is_free(e.u) && is_free(e.v)) return false;
  return true;
}

bool is_augmenting_path(const Graph& g, const Matching& m,
                        std::span<const Vertex> path) {
  if (path.size() < 2 || path.size() % 2 != 0) return false;
  if (!m.is_free(path.front()) || !m.is_free(path.back())) return false;
  std::unordered_set<Vertex> seen;
  for (Vertex v : path)
    if (!seen.insert(v).second) return false;
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if (!g.has_edge(path[i], path[i + 1])) return false;
    const bool should_be_matched = (i % 2 == 1);
    if (m.has(path[i], path[i + 1]) != should_be_matched) return false;
  }
  return true;
}

}  // namespace bmf
