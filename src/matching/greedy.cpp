#include "matching/greedy.hpp"

#include <numeric>

namespace bmf {

Matching greedy_maximal_matching(const Graph& g) {
  Matching m(g.num_vertices());
  for (const Edge& e : g.edges())
    if (m.is_free(e.u) && m.is_free(e.v)) m.add(e.u, e.v);
  return m;
}

Matching random_greedy_matching(const Graph& g, Rng& rng) {
  std::vector<std::int64_t> order(static_cast<std::size_t>(g.num_edges()));
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);
  Matching m(g.num_vertices());
  const auto edges = g.edges();
  for (std::int64_t i : order) {
    const Edge& e = edges[static_cast<std::size_t>(i)];
    if (m.is_free(e.u) && m.is_free(e.v)) m.add(e.u, e.v);
  }
  return m;
}

Matching greedy_maximal_matching_in(const Graph& g,
                                    std::span<const std::uint8_t> allowed) {
  Matching m(g.num_vertices());
  for (const Edge& e : g.edges()) {
    if (!allowed[static_cast<std::size_t>(e.u)] ||
        !allowed[static_cast<std::size_t>(e.v)])
      continue;
    if (m.is_free(e.u) && m.is_free(e.v)) m.add(e.u, e.v);
  }
  return m;
}

}  // namespace bmf
