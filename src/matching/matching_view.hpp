#pragma once

/// The unified read API over matchings: `MatchingView`.
///
/// Every consumer-facing way of *reading* a matching — a live engine's
/// mutable `Matching`, or an immutable published epoch snapshot from the
/// matching service — answers the same three queries: mate-of, is-matched,
/// and matching-size. `MatchingView` is that query surface, plus an `epoch()`
/// version stamp so callers can reason about staleness:
///
///  * live engine views (`LiveEngineView`, replay_engine.hpp) report the
///    engine's update count as the epoch — it advances with every applied
///    update and the answers are exact at read time (single-threaded access
///    only: a live view reads the writer's mutable state);
///  * service snapshots (`MatchingSnapshot` below) carry the committed-batch
///    epoch id assigned at publication — immutable, safe to read from any
///    number of threads, and stale by at most the service's `max_lag` epochs
///    (src/service/matching_service.hpp).
///
/// Callers written against `MatchingView` are snapshot-ready: moving a read
/// path from lock-step engine access to wait-free service reads is a
/// constructor swap, not a rewrite.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

class MatchingView {
 public:
  virtual ~MatchingView() = default;

  [[nodiscard]] virtual Vertex num_vertices() const = 0;
  /// Mate of v, or kNoVertex if v is unmatched.
  [[nodiscard]] virtual Vertex mate_of(Vertex v) const = 0;
  /// Matched pairs in the matching.
  [[nodiscard]] virtual std::int64_t size() const = 0;
  /// Monotone version stamp (update count for live views, committed-batch id
  /// for service snapshots).
  [[nodiscard]] virtual std::int64_t epoch() const = 0;

  [[nodiscard]] bool is_matched(Vertex v) const { return mate_of(v) != kNoVertex; }
};

/// One published epoch: a compact immutable mate array plus the epoch id and
/// the number of updates the engine had applied when it was exported.
/// Instances are shared read-only across reader threads (the service hands
/// them out via shared_ptr), so nothing here is mutable.
class MatchingSnapshot final : public MatchingView {
 public:
  MatchingSnapshot() = default;
  MatchingSnapshot(std::vector<Vertex> mates, std::int64_t size,
                   std::int64_t epoch, std::int64_t updates_applied)
      : mates_(std::move(mates)),
        size_(size),
        epoch_(epoch),
        updates_applied_(updates_applied) {}

  /// Deep-copies a matching into an immutable snapshot (epoch as given;
  /// updates_applied for engines that track it, 0 otherwise).
  static MatchingSnapshot of(const Matching& m, std::int64_t epoch,
                             std::int64_t updates_applied = 0) {
    const auto mates = m.mates();
    return {std::vector<Vertex>(mates.begin(), mates.end()), m.size(), epoch,
            updates_applied};
  }

  [[nodiscard]] Vertex num_vertices() const override {
    return static_cast<Vertex>(mates_.size());
  }
  [[nodiscard]] Vertex mate_of(Vertex v) const override {
    return mates_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] std::int64_t size() const override { return size_; }
  [[nodiscard]] std::int64_t epoch() const override { return epoch_; }

  /// Engine update count at export time — the service stress tests use this
  /// to look up the golden sequential matching this snapshot must equal.
  [[nodiscard]] std::int64_t updates_applied() const { return updates_applied_; }
  [[nodiscard]] std::span<const Vertex> mates() const { return mates_; }

  // Not defaulted: that would require comparing the abstract base subobject.
  friend bool operator==(const MatchingSnapshot& a, const MatchingSnapshot& b) {
    return a.mates_ == b.mates_ && a.size_ == b.size_ && a.epoch_ == b.epoch_ &&
           a.updates_applied_ == b.updates_applied_;
  }

 private:
  std::vector<Vertex> mates_;
  std::int64_t size_ = 0;
  std::int64_t epoch_ = 0;
  std::int64_t updates_applied_ = 0;
};

}  // namespace bmf
