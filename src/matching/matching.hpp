#pragma once

/// Matchings represented as a mate array.
///
/// The paper works with the matching M as a mutable global (Section 3); this
/// class is that object: O(1) matched-tests, O(1) add/remove, and path
/// augmentation. Validity against a host graph is checked by `is_valid_in`.

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace bmf {

class Matching {
 public:
  Matching() = default;
  explicit Matching(Vertex num_vertices);

  [[nodiscard]] Vertex num_vertices() const {
    return static_cast<Vertex>(mate_.size());
  }
  [[nodiscard]] std::int64_t size() const { return size_; }

  /// Mate of v, or kNoVertex if v is free.
  [[nodiscard]] Vertex mate(Vertex v) const {
    return mate_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool is_free(Vertex v) const { return mate(v) == kNoVertex; }
  [[nodiscard]] bool has(Vertex u, Vertex v) const {
    return u != v && mate(u) == v;
  }

  /// The raw mate array (index v -> mate(v) or kNoVertex). Snapshot exports
  /// copy this wholesale, so epoch publication is one O(n) memcpy.
  [[nodiscard]] std::span<const Vertex> mates() const { return mate_; }

  /// Adds {u, v}; both endpoints must currently be free.
  void add(Vertex u, Vertex v);

  /// Removes the matched edge at v (no-op if v is free).
  void remove_at(Vertex v);

  /// Flips matched/unmatched along an augmenting path given as a vertex
  /// sequence v0, v1, ..., v{2k+1} with v0 and v_last free and edges
  /// alternating unmatched/matched/.../unmatched. Increases size() by one.
  void augment(std::span<const Vertex> path);

  /// The matched edges, each once with u < v.
  [[nodiscard]] std::vector<Edge> edge_list() const;

  /// All free vertices in increasing order.
  [[nodiscard]] std::vector<Vertex> free_vertices() const;

  /// True if the mate array is symmetric and every matched edge exists in g.
  [[nodiscard]] bool is_valid_in(const Graph& g) const;

  /// True if no edge of g joins two free vertices (i.e. M is maximal).
  [[nodiscard]] bool is_maximal_in(const Graph& g) const;

 private:
  std::vector<Vertex> mate_;
  std::int64_t size_ = 0;
};

/// True if `path` is an M-augmenting path in g: endpoints free, edges exist,
/// edges alternate starting and ending unmatched, vertices distinct.
[[nodiscard]] bool is_augmenting_path(const Graph& g, const Matching& m,
                                      std::span<const Vertex> path);

}  // namespace bmf
