#pragma once

/// Maximal matchings: deterministic greedy and random-order greedy.
///
/// A maximal matching is a 2-approximate maximum matching — the canonical
/// Theta(1)-approximate oracle `A_matching` (Definition 5.1) the boosting
/// framework consumes.

#include "graph/graph.hpp"
#include "matching/matching.hpp"
#include "util/rng.hpp"

namespace bmf {

/// Greedy maximal matching scanning edges in stored order.
[[nodiscard]] Matching greedy_maximal_matching(const Graph& g);

/// Greedy maximal matching over a uniformly random edge permutation.
[[nodiscard]] Matching random_greedy_matching(const Graph& g, Rng& rng);

/// Greedy maximal matching restricted to edges whose endpoints are both
/// allowed (allowed[v] != 0).
[[nodiscard]] Matching greedy_maximal_matching_in(
    const Graph& g, std::span<const std::uint8_t> allowed);

}  // namespace bmf
