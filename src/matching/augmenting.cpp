#include "matching/augmenting.hpp"

#include <deque>
#include <limits>

#include "matching/blossom_exact.hpp"
#include "util/assert.hpp"

namespace bmf {

std::int64_t bipartite_shortest_augmenting_path_length(
    const Graph& g, std::span<const std::uint8_t> side, const Matching& m) {
  BMF_REQUIRE(static_cast<Vertex>(side.size()) == g.num_vertices(),
              "bipartite_shortest_augmenting_path_length: side size mismatch");
  // Alternating BFS from all free left vertices: even levels are left
  // vertices reached by matched edges (or free roots), odd levels are right
  // vertices reached by unmatched edges. The first free right vertex found
  // closes a shortest augmenting path.
  constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
  std::vector<std::int64_t> dist(static_cast<std::size_t>(g.num_vertices()), kInf);
  std::deque<Vertex> queue;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (side[static_cast<std::size_t>(v)] == 0 && m.is_free(v)) {
      dist[static_cast<std::size_t>(v)] = 0;
      queue.push_back(v);
    }
  }
  std::int64_t best = kInf;
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop_front();
    const std::int64_t d = dist[static_cast<std::size_t>(v)];
    if (d + 1 >= best) continue;
    for (Vertex w : g.neighbors(v)) {
      if (m.mate(v) == w) continue;  // leave along unmatched edges only
      if (m.is_free(w)) {
        best = std::min(best, d + 1);
        continue;
      }
      const Vertex next = m.mate(w);
      if (dist[static_cast<std::size_t>(next)] != kInf) continue;
      dist[static_cast<std::size_t>(next)] = d + 2;
      queue.push_back(next);
    }
  }
  return best == kInf ? -1 : best;
}

std::int64_t augmenting_deficit(const Graph& g, const Matching& m) {
  BMF_REQUIRE(m.is_valid_in(g), "augmenting_deficit: invalid matching");
  return maximum_matching_size(g) - m.size();
}

}  // namespace bmf
