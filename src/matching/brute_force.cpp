#include "matching/brute_force.hpp"

#include <bit>
#include <vector>

#include "util/assert.hpp"

namespace bmf {

std::int64_t brute_force_matching_size(const Graph& g) {
  const Vertex n = g.num_vertices();
  BMF_REQUIRE(n <= 24, "brute_force_matching_size: graph too large");
  std::vector<std::uint32_t> nbr(static_cast<std::size_t>(n), 0);
  for (const Edge& e : g.edges()) {
    nbr[static_cast<std::size_t>(e.u)] |= 1u << e.v;
    nbr[static_cast<std::size_t>(e.v)] |= 1u << e.u;
  }
  const std::size_t full = std::size_t{1} << n;
  std::vector<std::int8_t> best(full, 0);
  for (std::uint32_t mask = 1; mask < full; ++mask) {
    const int v = std::countr_zero(mask);
    const std::uint32_t rest = mask & (mask - 1);  // drop v
    std::int8_t b = best[rest];                    // v stays unmatched
    std::uint32_t cand = nbr[static_cast<std::size_t>(v)] & rest;
    while (cand != 0) {
      const int w = std::countr_zero(cand);
      cand &= cand - 1;
      const std::int8_t with =
          static_cast<std::int8_t>(1 + best[rest & ~(1u << w)]);
      if (with > b) b = with;
    }
    best[mask] = b;
  }
  return best[full - 1];
}

}  // namespace bmf
