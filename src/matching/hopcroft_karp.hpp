#pragma once

/// Hopcroft-Karp exact maximum matching for bipartite graphs.
///
/// Used as ground truth for bipartite instances (including the double cover B
/// of Definition 6.3) and inside tests. O(E * sqrt(V)).

#include <optional>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// A two-coloring of g: side[v] in {0, 1} with every edge crossing sides,
/// or nullopt if g is not bipartite.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> bipartition(const Graph& g);

/// Exact maximum matching of a bipartite graph given its two-coloring.
[[nodiscard]] Matching hopcroft_karp(const Graph& g,
                                     std::span<const std::uint8_t> side);

/// Convenience overload that computes the bipartition itself; throws
/// std::invalid_argument if g is not bipartite.
[[nodiscard]] Matching hopcroft_karp(const Graph& g);

}  // namespace bmf
