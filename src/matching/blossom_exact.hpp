#pragma once

/// Edmonds' blossom algorithm: exact maximum matching in general graphs.
///
/// Classic O(V^3) contraction-free formulation (base pointers + blossom
/// marking). This is the ground-truth mu(G) used by every test and benchmark
/// to validate (1+eps) guarantees; it is also the c = 1 oracle in ablations.

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace bmf {

/// Exact maximum matching of g.
[[nodiscard]] Matching blossom_maximum_matching(const Graph& g);

/// Exact maximum matching starting from (and extending) `initial`.
[[nodiscard]] Matching blossom_maximum_matching(const Graph& g, Matching initial);

/// Exact maximum matching size.
[[nodiscard]] std::int64_t maximum_matching_size(const Graph& g);

}  // namespace bmf
