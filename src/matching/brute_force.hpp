#pragma once

/// Exponential-time exact matching for tiny graphs (n <= 24).
///
/// Differential-testing reference for the blossom and Hopcroft-Karp solvers.

#include "graph/graph.hpp"

namespace bmf {

/// Exact mu(G) by subset dynamic programming. Requires n <= 24.
[[nodiscard]] std::int64_t brute_force_matching_size(const Graph& g);

}  // namespace bmf
