#pragma once

/// `bmf::MatchingService` — a long-lived matching front-end with versioned
/// wait-free snapshot reads (the read-dominated production story over the
/// dynamic engines; see docs/service.md).
///
/// ## Architecture
///
/// Client threads `submit` `EdgeUpdate`s into a bounded MPSC ingest queue
/// (util/bounded_queue.hpp). One writer thread drains the queue, coalescing
/// whatever has arrived (up to `coalesce_max`) into a single batch, and
/// drives `ReplayEngine::apply_batch` — the existing conflict-free prefix
/// cutting in `DynamicReplayCore` is the intra-batch parallelization; the
/// queue is merely the batching boundary. After each committed batch the
/// writer *publishes an epoch*: an immutable `MatchingSnapshot` (compact mate
/// array + size + epoch id, exported by the replay core's snapshot hook)
/// installed by an atomic pointer swap. Reader threads answer `mate_of` /
/// `is_matched` / `size` from their `SnapshotReader` handle's cached snapshot
/// — plain loads off immutable memory, no locks, never blocked by the writer.
///
/// ## Bounded staleness (Petuum SSP discipline)
///
/// `max_lag` bounds how far behind the published epoch any read may be,
/// enforced from both sides exactly as in stale-synchronous-parallel
/// parameter servers — either the reader advances or the writer stalls:
///
///  * **readers refresh**: a read first loads the published epoch counter; if
///    the cached snapshot is more than `max_lag` epochs behind it, the handle
///    re-fetches the latest snapshot before answering. Every answer is
///    therefore served from an epoch >= (published epoch at read time) -
///    `max_lag`.
///  * **writer stalls** (`stall_writer = true`): before *publishing* epoch N,
///    the writer blocks until every registered reader has observed epoch
///    >= N - `max_lag`. A reader that stops reading then stops the writer —
///    the SSP contract — so this mode is for closed loops where readers are
///    known to keep polling; `close()` overrides the stall so shutdown always
///    completes.
///
/// ## Determinism boundary
///
/// This is the first subsystem that is deliberately **not** bit-identical
/// replay: how updates coalesce into batches depends on arrival timing, so
/// epoch boundaries (and therefore rebuild *wall-clock* placement) differ run
/// to run. What stays exact is the underlying engine contract: `apply_batch`
/// is bit-identical to the sequential apply loop regardless of batch
/// boundaries, so the matching after U committed updates equals the
/// sequential engine's matching after the same U updates in submission order
/// — every published snapshot carries `updates_applied()` precisely so tests
/// can pin that (tests/test_service.cpp stress suite).

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "dynamic/replay_engine.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "graph/dyn_graph.hpp"
#include "matching/matching_view.hpp"
#include "util/annotations.hpp"
#include "util/bounded_queue.hpp"

namespace bmf {

class MatchingService;

/// Service knobs extend the sharded engine's config (itself the shared
/// `DynamicCoreConfig`), so one struct configures the whole stack and one
/// validation path (`validate_service_config` -> `validate_core_config`)
/// rejects every bad knob the same way.
struct ServiceConfig : ShardedMatcherConfig {
  /// Bounded-staleness window in epochs (>= 1): reads are never served from
  /// a snapshot more than `max_lag` epochs behind the published epoch.
  std::int64_t max_lag = 1;
  /// Ingest queue capacity (>= 1) — the backpressure bound: `submit` blocks
  /// while the backlog is full, `try_submit` refuses.
  std::int64_t queue_capacity = 4096;
  /// Max updates coalesced into one committed batch / published epoch (>= 1).
  std::int64_t coalesce_max = 1024;
  /// SSP writer-side enforcement: stall publication until every registered
  /// reader is within `max_lag` (see the file comment). Off by default —
  /// reader-side refresh already bounds observed staleness.
  bool stall_writer = false;
};

/// Validates service knobs on top of the shared core path
/// (`validate_core_config` with the shard count). Throws
/// std::invalid_argument; `who` prefixes the message.
void validate_service_config(const ServiceConfig& cfg, const char* who);

/// One epoch's service-side accounting (stats() returns the full history).
struct EpochRecord {
  std::int64_t epoch = 0;
  std::int64_t batch_size = 0;    ///< updates coalesced into this epoch
  std::int64_t queue_depth = 0;   ///< backlog observed at the drain
  double commit_ms = 0.0;         ///< apply_batch + snapshot export + publish
};

/// Aggregated service observability (per-epoch stats + merged reader-side
/// staleness distribution). A consistent copy taken under the stats lock.
struct ServiceStats {
  std::int64_t epochs = 0;             ///< published epochs (excluding epoch 0)
  std::int64_t updates_committed = 0;  ///< updates across all epochs
  std::int64_t rebuilds = 0;           ///< engine rebuilds, as of last publish
  std::int64_t writer_stalls = 0;      ///< publishes that had to SSP-stall
  std::vector<EpochRecord> epoch_log;  ///< one record per epoch, in order
  /// Reads by observed staleness (index = epochs behind at read time, last
  /// bucket = beyond max_lag). The refresh rule makes the last bucket
  /// provably empty; tests assert it.
  std::vector<std::int64_t> staleness_hist;
  std::int64_t reads = 0;  ///< total reads across registered readers
};

/// A per-thread read handle: caches the latest fetched snapshot and answers
/// `MatchingView` queries from it wait-free, refreshing per the SSP rule
/// (file comment). Construct one per reader thread — a handle itself is not
/// thread-safe, but any number of handles read concurrently with the writer.
/// Registration is automatic; the destructor deregisters (and wakes a
/// stalled writer).
class SnapshotReader final : public MatchingView {
 public:
  explicit SnapshotReader(MatchingService& service);
  ~SnapshotReader() override;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  [[nodiscard]] Vertex num_vertices() const override;
  [[nodiscard]] Vertex mate_of(Vertex v) const override;
  [[nodiscard]] std::int64_t size() const override;
  /// Epoch of the snapshot the next answer would be served from (refreshes
  /// first, like any read).
  [[nodiscard]] std::int64_t epoch() const override;

  /// The whole current snapshot (refreshed per the SSP rule) — for callers
  /// that need a consistent multi-vertex view; reads against the returned
  /// object never refresh, so they stay on one epoch.
  [[nodiscard]] std::shared_ptr<const MatchingSnapshot> snapshot() const;

  /// Staleness (epochs behind the published epoch) of the most recent read,
  /// after any refresh — by the SSP rule always in [0, max_lag].
  [[nodiscard]] std::int64_t last_staleness() const { return last_staleness_; }

 private:
  friend class MatchingService;

  /// The read prologue: observe the published epoch, refresh the cache if it
  /// fell more than max_lag behind, record staleness.
  const MatchingSnapshot& refresh() const;

  MatchingService* svc_;
  mutable std::shared_ptr<const MatchingSnapshot> snap_;
  mutable std::int64_t last_observed_ = 0;
  mutable std::int64_t last_staleness_ = 0;
  /// SSP reader clock for the writer-stall mode: last published epoch this
  /// handle has observed. Written under the registry lock in stall mode (so
  /// the stalled writer cannot miss the advance), relaxed otherwise.
  mutable std::atomic<std::int64_t> observed_{0};
  /// Reads by staleness bucket (merged by MatchingService::stats()).
  mutable std::vector<std::atomic<std::int64_t>> staleness_hist_;
  mutable std::atomic<std::int64_t> reads_{0};
};

class MatchingService {
 public:
  /// Owns a `ShardedDynamicMatcher` built from `cfg` (shards/threads/eps/...
  /// all apply). The epoch-0 snapshot (empty matching) publishes immediately;
  /// the writer thread starts accepting submissions.
  MatchingService(Vertex n, const ServiceConfig& cfg);
  /// Serves a caller-owned engine (any `ReplayEngine`; its own config was
  /// validated at engine construction — `cfg`'s inherited core knobs are
  /// ignored here). The engine must not be mutated behind the service's back
  /// while the writer runs.
  MatchingService(ReplayEngine& engine, const ServiceConfig& cfg);
  ~MatchingService();
  MatchingService(const MatchingService&) = delete;
  MatchingService& operator=(const MatchingService&) = delete;

  /// Enqueues one update (any thread); blocks while the queue is full.
  /// Returns false iff the service is closed.
  bool submit(const EdgeUpdate& update) BMF_EXCLUDES(flush_mutex_);
  /// Enqueues a span in order (one queue lock, still coalesced downstream by
  /// arrival); blocks for space. Returns false iff closed part-way.
  bool submit_batch(std::span<const EdgeUpdate> updates)
      BMF_EXCLUDES(flush_mutex_);
  /// Non-blocking submit; returns false if the queue is full or closed (the
  /// open-loop client's drop-and-count path).
  bool try_submit(const EdgeUpdate& update) BMF_EXCLUDES(flush_mutex_);

  /// Blocks until every update submitted before this call has been committed
  /// and its epoch published — or refused (a concurrent submit against a
  /// closing service rolls its count back; flush must not wait for updates
  /// that will never commit). (In stall_writer mode publication can wait on
  /// registered readers — keep them reading, or flush may wait with them.)
  void flush() BMF_EXCLUDES(flush_mutex_);

  /// Stops intake, drains what was accepted, publishes the final epoch, and
  /// joins the writer. Idempotent; called by the destructor. Overrides any
  /// SSP writer stall so shutdown always completes.
  void close() BMF_EXCLUDES(close_mutex_);

  /// The latest published snapshot (epoch 0 exists from construction).
  /// Direct use bypasses SSP accounting — readers should normally go through
  /// a `SnapshotReader`.
  [[nodiscard]] std::shared_ptr<const MatchingSnapshot> latest() const {
    return latest_.load(std::memory_order_acquire);
  }
  /// The highest published epoch id.
  [[nodiscard]] std::int64_t current_epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// True while the writer is blocked in the SSP publication gate (stall
  /// mode only) — observability for monitors and the stall tests, which poll
  /// this to synchronize deterministically instead of sleeping.
  [[nodiscard]] bool writer_stalled() const {
    return writer_stalled_.load(std::memory_order_acquire);
  }

  [[nodiscard]] const ServiceConfig& config() const { return cfg_; }
  /// The served engine — safe only while the writer is quiescent (before any
  /// submit, after flush() with no concurrent submitters, or after close()).
  [[nodiscard]] const ReplayEngine& engine() const { return *engine_; }
  /// Consistent copy of the service counters + merged reader histograms.
  [[nodiscard]] ServiceStats stats() const
      BMF_EXCLUDES(registry_mutex_, stats_mutex_);

 private:
  friend class SnapshotReader;

  /// Shared ctor tail: size the stats histogram, publish epoch 0, start the
  /// writer thread.
  void start();
  void writer_loop();
  /// Minimum SSP reader clock over registered readers; registry lock held.
  [[nodiscard]] std::int64_t min_observed_locked() const
      BMF_REQUIRES(registry_mutex_);
  /// The SSP publication gate's predicate: may epoch `epoch` publish now?
  /// True once every registered reader is within max_lag (or the registry is
  /// empty, or the service is closing — close() lifts the gate).
  [[nodiscard]] bool publish_ready(std::int64_t epoch) const
      BMF_REQUIRES(registry_mutex_);

  ServiceConfig cfg_;
  std::unique_ptr<ShardedDynamicMatcher> owned_engine_;
  ReplayEngine* engine_;

  BoundedQueue<EdgeUpdate> queue_;
  std::atomic<std::shared_ptr<const MatchingSnapshot>> latest_;
  std::atomic<std::int64_t> published_epoch_{0};
  std::atomic<std::int64_t> submitted_{0};
  std::atomic<std::int64_t> committed_{0};
  std::atomic<bool> closing_{false};
  std::atomic<bool> writer_stalled_{false};

  /// flush()'s rendezvous lock: it guards no data of its own — committed_ and
  /// submitted_ are atomics — but bridges the committed_ advance and the
  /// notify so a flusher between its predicate check and its wait cannot miss
  /// the wakeup.
  mutable Mutex flush_mutex_;
  CondVar flush_cv_;

  /// Guards the reader registry and, in stall mode, readers' observed_
  /// advances (so the stalled writer cannot miss a wakeup).
  mutable Mutex registry_mutex_;
  CondVar stall_cv_;
  std::vector<SnapshotReader*> readers_ BMF_GUARDED_BY(registry_mutex_);

  mutable Mutex stats_mutex_;
  /// Writer-side counters (reader fields merged later).
  ServiceStats wstats_ BMF_GUARDED_BY(stats_mutex_);

  /// Serializes concurrent close() calls; writer_ itself is only assigned
  /// before any other thread exists (start(), from the constructors) and
  /// joined under this lock.
  Mutex close_mutex_;
  std::thread writer_;
};

}  // namespace bmf
