#include "service/matching_service.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/timer.hpp"

namespace bmf {

void validate_service_config(const ServiceConfig& cfg, const char* who) {
  validate_core_config(cfg, cfg.shards, who);
  const auto fail = [&](const std::string& what) {
    throw std::invalid_argument(std::string(who) + ": " + what);
  };
  if (cfg.max_lag < 1) fail("max_lag must be >= 1");
  if (cfg.queue_capacity < 1) fail("queue_capacity must be >= 1");
  if (cfg.coalesce_max < 1) fail("coalesce_max must be >= 1");
}

// ------------------------------------------------------------ SnapshotReader

SnapshotReader::SnapshotReader(MatchingService& service)
    : svc_(&service),
      staleness_hist_(static_cast<std::size_t>(service.cfg_.max_lag) + 2) {
  const MutexLock lock(svc_->registry_mutex_);
  svc_->readers_.push_back(this);
}

SnapshotReader::~SnapshotReader() {
  {
    // Lock order everywhere: registry before stats (stats() nests the same
    // way), so folding the departing reader's counters here cannot deadlock.
    const MutexLock registry_lock(svc_->registry_mutex_);
    std::erase(svc_->readers_, this);
    const MutexLock stats_lock(svc_->stats_mutex_);
    // relaxed-ok: reader-owned counter; this is the owning thread's own load
    svc_->wstats_.reads += reads_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < staleness_hist_.size(); ++b)
      // relaxed-ok: same reader-owned histogram, folded by its own thread
      svc_->wstats_.staleness_hist[b] +=
          staleness_hist_[b].load(std::memory_order_relaxed);
  }
  // A departing reader can only raise the minimum observed epoch — wake a
  // stalled writer so it re-evaluates.
  svc_->stall_cv_.notify_all();
}

const MatchingSnapshot& SnapshotReader::refresh() const {
  const std::int64_t e_now =
      svc_->published_epoch_.load(std::memory_order_acquire);
  // SSP refresh rule: re-fetch only once the cache falls behind the window.
  // latest_ is stored before published_epoch_ (both release), so the fetched
  // snapshot's epoch is >= e_now and post-refresh staleness clamps to 0.
  if (!snap_ || e_now - snap_->epoch() > svc_->cfg_.max_lag)
    snap_ = svc_->latest();
  last_staleness_ = std::max<std::int64_t>(0, e_now - snap_->epoch());
  const auto bucket = static_cast<std::size_t>(
      std::min(last_staleness_, svc_->cfg_.max_lag + 1));
  // relaxed-ok: reader-private stat counters; stats() readers tolerate lag
  staleness_hist_[bucket].fetch_add(1, std::memory_order_relaxed);
  reads_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: same as above
  if (e_now != last_observed_) {
    last_observed_ = e_now;
    if (svc_->cfg_.stall_writer) {
      // Advance the SSP clock under the registry lock and wake the writer:
      // an unlocked advance could slip between the stalled writer's predicate
      // check and its wait, losing the wakeup.
      {
        const MutexLock lock(svc_->registry_mutex_);
        // relaxed-ok: registry lock + stall_cv_ order this SSP clock advance
        observed_.store(e_now, std::memory_order_relaxed);
      }
      svc_->stall_cv_.notify_all();
    } else {
      // relaxed-ok: stall gate off — only lag-tolerant stats read this clock
      observed_.store(e_now, std::memory_order_relaxed);
    }
  }
  return *snap_;
}

Vertex SnapshotReader::num_vertices() const { return refresh().num_vertices(); }

Vertex SnapshotReader::mate_of(Vertex v) const { return refresh().mate_of(v); }

std::int64_t SnapshotReader::size() const { return refresh().size(); }

std::int64_t SnapshotReader::epoch() const { return refresh().epoch(); }

std::shared_ptr<const MatchingSnapshot> SnapshotReader::snapshot() const {
  refresh();
  return snap_;
}

// ----------------------------------------------------------- MatchingService

MatchingService::MatchingService(Vertex n, const ServiceConfig& cfg)
    : cfg_(cfg),
      owned_engine_([&] {
        validate_service_config(cfg, "MatchingService");
        return std::make_unique<ShardedDynamicMatcher>(n, cfg);
      }()),
      engine_(owned_engine_.get()),
      queue_(static_cast<std::size_t>(cfg_.queue_capacity)) {
  start();
}

MatchingService::MatchingService(ReplayEngine& engine, const ServiceConfig& cfg)
    : cfg_(cfg), engine_(&engine),
      queue_([&] {
        validate_service_config(cfg, "MatchingService");
        return static_cast<std::size_t>(cfg.queue_capacity);
      }()) {
  start();
}

void MatchingService::start() {
  wstats_.staleness_hist.assign(static_cast<std::size_t>(cfg_.max_lag) + 2, 0);
  // Epoch 0 (the engine's current matching — empty for a fresh engine) is
  // published before the writer exists, so readers always find a snapshot.
  // Release for uniformity with the publication contract below (any thread
  // that can reach latest_ was created after this store, so the constructor's
  // own synchronization already covers it).
  latest_.store(
      std::make_shared<const MatchingSnapshot>(engine_->export_snapshot(0)),
      std::memory_order_release);
  writer_ = std::thread([this] { writer_loop(); });
}

MatchingService::~MatchingService() { close(); }

bool MatchingService::submit(const EdgeUpdate& update) {
  // Count before pushing so a concurrent flush() cannot observe the pushed
  // item as already-committed surplus; roll back if the push was refused.
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (queue_.push(update)) return true;
  submitted_.fetch_sub(1, std::memory_order_acq_rel);
  // The rollback may be what makes a concurrent flush()'s predicate true
  // (committed_ >= submitted_); bridge through flush_mutex_ so the flusher
  // cannot be between its check and its wait when we notify.
  { const MutexLock lock(flush_mutex_); }
  flush_cv_.notify_all();
  return false;
}

bool MatchingService::submit_batch(std::span<const EdgeUpdate> updates) {
  for (const EdgeUpdate& up : updates)
    if (!submit(up)) return false;
  return true;
}

bool MatchingService::try_submit(const EdgeUpdate& update) {
  submitted_.fetch_add(1, std::memory_order_acq_rel);
  if (queue_.try_push(update)) return true;
  submitted_.fetch_sub(1, std::memory_order_acq_rel);
  // Same wakeup obligation as submit()'s refusal path: the annotation pass
  // caught this rollback not notifying, which could leave a concurrent
  // flush() waiting for a count that will never commit.
  { const MutexLock lock(flush_mutex_); }
  flush_cv_.notify_all();
  return false;
}

void MatchingService::flush() {
  // Everything counted at entry must commit — unless it was refused and
  // rolled back. committed_ only grows, and committed_ <= accepted <=
  // submitted_ always holds, so `committed_ >= submitted_` means every update
  // accepted so far (a superset of those accepted before this call) has
  // committed. Without that second disjunct, a submit whose push is refused
  // after we captured `target` would leave target forever unreachable.
  const std::int64_t target = submitted_.load(std::memory_order_acquire);
  const MutexLock lock(flush_mutex_);
  for (;;) {
    const std::int64_t c = committed_.load(std::memory_order_acquire);
    if (c >= target || c >= submitted_.load(std::memory_order_acquire)) return;
    flush_cv_.wait(flush_mutex_);
  }
}

void MatchingService::close() {
  const MutexLock lock(close_mutex_);
  if (!closing_.exchange(true, std::memory_order_acq_rel)) {
    queue_.close();
    stall_cv_.notify_all();  // closing overrides any SSP writer stall
  }
  if (writer_.joinable()) writer_.join();
}

std::int64_t MatchingService::min_observed_locked() const {
  std::int64_t lo = published_epoch_.load(std::memory_order_acquire);
  for (const SnapshotReader* r : readers_)
    // relaxed-ok: staleness-tolerant lower bound; cv wakeups re-evaluate it
    lo = std::min(lo, r->observed_.load(std::memory_order_relaxed));
  return lo;
}

bool MatchingService::publish_ready(std::int64_t epoch) const {
  return closing_.load(std::memory_order_acquire) || readers_.empty() ||
         min_observed_locked() + cfg_.max_lag >= epoch;
}

void MatchingService::writer_loop() {
  std::vector<EdgeUpdate> batch;
  for (;;) {
    std::size_t backlog = 0;
    const std::size_t got = queue_.drain(
        batch, static_cast<std::size_t>(cfg_.coalesce_max), &backlog);
    if (got == 0) break;  // closed and fully drained

    Timer timer;
    engine_->apply_batch(batch);
    // relaxed-ok: the single writer reads its own last epoch store
    const std::int64_t epoch =
        published_epoch_.load(std::memory_order_relaxed) + 1;
    auto snap = std::make_shared<const MatchingSnapshot>(
        engine_->export_snapshot(epoch));

    bool stalled = false;
    if (cfg_.stall_writer) {
      // SSP gate: hold publication of `epoch` until every registered reader
      // has observed at least epoch - max_lag. close() lifts the gate.
      const MutexLock lock(registry_mutex_);
      while (!publish_ready(epoch)) {
        if (!stalled) {
          stalled = true;
          writer_stalled_.store(true, std::memory_order_release);
        }
        stall_cv_.wait(registry_mutex_);
      }
      if (stalled) writer_stalled_.store(false, std::memory_order_release);
    }

    // Publication order matters and the lint holds us to it
    // (tools/determinism_lint.py, rule `publication-order`): the snapshot
    // pointer is release-stored before the epoch counter, so a reader that
    // acquires the new epoch and re-fetches is guaranteed a snapshot at least
    // that new — the SSP refresh rule's "staleness clamps to 0" proof in
    // SnapshotReader::refresh() leans on exactly this pairing.
    // publication-order[1]
    latest_.store(std::move(snap), std::memory_order_release);
    // publication-order[2]
    published_epoch_.store(epoch, std::memory_order_release);

    {
      const MutexLock lock(stats_mutex_);
      wstats_.epochs += 1;
      wstats_.updates_committed += static_cast<std::int64_t>(got);
      wstats_.rebuilds = engine_->rebuilds();
      if (stalled) wstats_.writer_stalls += 1;
      wstats_.epoch_log.push_back({epoch, static_cast<std::int64_t>(got),
                                   static_cast<std::int64_t>(backlog),
                                   timer.millis()});
    }
    committed_.fetch_add(static_cast<std::int64_t>(got),
                         std::memory_order_acq_rel);
    { const MutexLock lock(flush_mutex_); }
    flush_cv_.notify_all();
  }
}

ServiceStats MatchingService::stats() const {
  // Registry before stats — the same nesting SnapshotReader's destructor
  // uses. wstats_ already carries departed readers' counters; live readers
  // are merged on top.
  const MutexLock registry_lock(registry_mutex_);
  ServiceStats out;
  {
    const MutexLock stats_lock(stats_mutex_);
    out = wstats_;
  }
  for (const SnapshotReader* r : readers_) {
    // relaxed-ok: monotone live-reader counters; a stats() snapshot may lag
    out.reads += r->reads_.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < out.staleness_hist.size(); ++b)
      // relaxed-ok: same lag-tolerant histogram read as above
      out.staleness_hist[b] +=
          r->staleness_hist_[b].load(std::memory_order_relaxed);
  }
  return out;
}

}  // namespace bmf
