#pragma once

/// Corollary A.1: (1+eps)-approximate maximum matching in MPC.
///
/// Runs the boosting framework with the cluster-backed A_matching oracle and
/// charges A_process at O(1) rounds per pass-bundle (structures have
/// poly(1/eps) vertices and fit into machine memory, so the clean-up
/// operations — extending alternating paths, contracting blossoms, removing
/// vertices, propagating component information — take O(1) MPC rounds each;
/// see [ASS+18] and Appendix A).

#include "core/framework.hpp"
#include "mpc/mpc_matching.hpp"

namespace bmf::mpc {

struct MpcBoostResult {
  BoostResult boost;
  std::int64_t oracle_rounds = 0;   ///< simulated rounds inside A_matching
  std::int64_t process_rounds = 0;  ///< rounds charged to A_process
  [[nodiscard]] std::int64_t total_rounds() const {
    return oracle_rounds + process_rounds;
  }
};

/// Rounds charged to A_process per pass-bundle (a small constant).
inline constexpr std::int64_t kProcessRoundsPerBundle = 2;

[[nodiscard]] MpcBoostResult mpc_boost_matching(const Graph& g,
                                                const MpcConfig& mpc_cfg,
                                                const CoreConfig& cfg);

}  // namespace bmf::mpc
