#pragma once

/// Distributed maximal matching in the MPC simulator.
///
/// Random-edge-priority greedy: an edge joins the matching when it carries the
/// locally minimal priority at both endpoints among live edges; matched
/// vertices die, and the process repeats. This is the classic O(log m)-round
/// w.h.p. parallel greedy (Blelloch–Fineman–Shun style), a maximal — hence
/// 2-approximate — matching, standing in for [GU19]'s O(sqrt(log n))-round
/// algorithm as the framework's A_matching (the substitution is documented in
/// DESIGN.md; the framework only consumes a Theta(1)-approximation).
///
/// Message pattern per iteration (4 supersteps):
///   1. edge holders -> vertex owners: per-vertex minimum live priority,
///   2. vertex owners -> edge holders: the per-vertex minima,
///   3. edge holders -> vertex owners: "edge e won at both endpoints",
///   4. vertex owners -> edge holders: matched-vertex notifications.

#include <cstdint>

#include "core/oracle.hpp"
#include "mpc/cluster.hpp"
#include "util/rng.hpp"

namespace bmf::mpc {

struct MpcMatchingResult {
  OracleMatching matching;
  std::int64_t rounds = 0;      ///< supersteps consumed by this invocation
  std::int64_t iterations = 0;  ///< priority-peeling iterations
};

/// Runs distributed maximal matching on h, with edges hash-partitioned across
/// the cluster's machines. The cluster's round counter advances accordingly.
[[nodiscard]] MpcMatchingResult mpc_maximal_matching(Cluster& cluster,
                                                     const OracleGraph& h,
                                                     Rng& rng);

/// A_matching backed by the MPC simulator (c = 2). Tracks the cumulative
/// number of simulated MPC rounds across invocations.
class MpcMatchingOracle final : public MatchingOracle {
 public:
  MpcMatchingOracle(const MpcConfig& cfg, std::uint64_t seed)
      : cluster_(cfg), rng_(seed) {}

  [[nodiscard]] double approx_factor() const override { return 2.0; }
  [[nodiscard]] std::int64_t rounds() const { return cluster_.rounds(); }
  [[nodiscard]] Cluster& cluster() { return cluster_; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override {
    return mpc_maximal_matching(cluster_, h, rng_).matching;
  }

 private:
  Cluster cluster_;
  Rng rng_;
};

}  // namespace bmf::mpc
