#include "mpc/mpc_matching.hpp"

#include <limits>
#include <unordered_map>

#include "util/assert.hpp"

namespace bmf::mpc {
namespace {

// Message tags.
enum Tag : std::uint64_t {
  kVertexMin = 1,   // (vertex, priority)
  kMinReply = 2,    // (vertex, priority)
  kEdgeWon = 3,     // (u, v)
  kVertexDead = 4,  // (vertex, _)
};

struct LocalEdge {
  std::int32_t u, v;
  std::uint64_t priority;
  bool live = true;
};

}  // namespace

MpcMatchingResult mpc_maximal_matching(Cluster& cluster, const OracleGraph& h,
                                       Rng& rng) {
  const std::int64_t rounds_before = cluster.rounds();
  const int machines = cluster.machines();

  // Input distribution: edges hash-partitioned by (u, v); each machine also
  // owns the state of vertices hashed to it. This mirrors "vertices and edges
  // of the input graph are distributed across the machines".
  std::vector<std::vector<LocalEdge>> local(static_cast<std::size_t>(machines));
  for (const auto& [u, v] : h.edges) {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(u)) << 32) |
        static_cast<std::uint32_t>(v);
    local[static_cast<std::size_t>(cluster.owner(key))].push_back(
        {u, v, rng.next(), true});
  }
  for (int m = 0; m < machines; ++m)
    cluster.note_resident_words(
        m, static_cast<std::int64_t>(local[static_cast<std::size_t>(m)].size()) * 4);

  // Vertex-owner state: dead flags live on the owner machine of each vertex.
  std::vector<std::unordered_map<std::int32_t, bool>> dead(
      static_cast<std::size_t>(machines));
  auto vowner = [&](std::int32_t v) {
    return cluster.owner(static_cast<std::uint64_t>(v) | (1ULL << 40));
  };

  OracleMatching matched;
  std::int64_t iterations = 0;
  bool progress = true;
  std::int64_t live_total = static_cast<std::int64_t>(h.edges.size());

  while (live_total > 0 && progress) {
    ++iterations;
    progress = false;

    // Superstep 1: per-vertex minimum priority over live edges.
    std::vector<std::unordered_map<std::int32_t, std::uint64_t>> vmin(
        static_cast<std::size_t>(machines));
    cluster.superstep([&](int m, const Cluster::Inbox&, const Cluster::Sender& send) {
      std::unordered_map<std::int32_t, std::uint64_t> partial;
      for (const LocalEdge& e : local[static_cast<std::size_t>(m)]) {
        if (!e.live) continue;
        for (std::int32_t x : {e.u, e.v}) {
          auto [it, fresh] = partial.emplace(x, e.priority);
          if (!fresh && e.priority < it->second) it->second = e.priority;
        }
      }
      for (const auto& [x, p] : partial) {
        send(vowner(x), {kVertexMin,
                         static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)),
                         p});
      }
    });
    cluster.superstep([&](int m, const Cluster::Inbox& inbox, const Cluster::Sender&) {
      for (const Msg& msg : inbox) {
        BMF_ASSERT(msg.tag == kVertexMin);
        const auto x = static_cast<std::int32_t>(msg.a);
        auto [it, fresh] = vmin[static_cast<std::size_t>(m)].emplace(x, msg.b);
        if (!fresh && msg.b < it->second) it->second = msg.b;
      }
    });

    // Superstep 2: owners reply with the per-vertex minima to all machines
    // (clique topology; a machine holding any edge of x needs min(x)).
    std::vector<std::unordered_map<std::int32_t, std::uint64_t>> got_min(
        static_cast<std::size_t>(machines));
    cluster.superstep([&](int m, const Cluster::Inbox&, const Cluster::Sender& send) {
      for (const auto& [x, p] : vmin[static_cast<std::size_t>(m)])
        for (int dest = 0; dest < machines; ++dest)
          send(dest, {kMinReply,
                      static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)), p});
    });
    cluster.superstep([&](int m, const Cluster::Inbox& inbox, const Cluster::Sender&) {
      for (const Msg& msg : inbox)
        got_min[static_cast<std::size_t>(m)].emplace(static_cast<std::int32_t>(msg.a),
                                                     msg.b);
    });

    // Superstep 3: an edge that is the minimum at both endpoints wins; notify
    // the vertex owners so they mark both endpoints dead. Winners accumulate
    // per owner machine and merge in machine order after the barrier, keeping
    // the matched-edge order thread-count-independent.
    std::vector<std::vector<std::pair<std::int32_t, std::int32_t>>> winners_by_machine(
        static_cast<std::size_t>(machines));
    cluster.superstep([&](int m, const Cluster::Inbox&, const Cluster::Sender& send) {
      const auto& mins = got_min[static_cast<std::size_t>(m)];
      for (const LocalEdge& e : local[static_cast<std::size_t>(m)]) {
        if (!e.live) continue;
        const auto iu = mins.find(e.u);
        const auto iv = mins.find(e.v);
        if (iu != mins.end() && iv != mins.end() && iu->second == e.priority &&
            iv->second == e.priority) {
          send(vowner(e.u),
               {kEdgeWon, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u)),
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.v))});
          send(vowner(e.v),
               {kEdgeWon, static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.v)),
                static_cast<std::uint64_t>(static_cast<std::uint32_t>(e.u))});
        }
      }
    });
    cluster.superstep([&](int m, const Cluster::Inbox& inbox,
                          const Cluster::Sender& send) {
      for (const Msg& msg : inbox) {
        const auto x = static_cast<std::int32_t>(msg.a);
        const auto y = static_cast<std::int32_t>(msg.b);
        if (!dead[static_cast<std::size_t>(m)][x]) {
          dead[static_cast<std::size_t>(m)][x] = true;
          if (x < y) winners_by_machine[static_cast<std::size_t>(m)].emplace_back(x, y);
          // Broadcast the death to edge holders.
          for (int dest = 0; dest < machines; ++dest)
            send(dest, {kVertexDead,
                        static_cast<std::uint64_t>(static_cast<std::uint32_t>(x)), 0});
        }
      }
    });

    // Superstep 4: drop edges incident to dead vertices. Per-machine drop
    // counts are reduced after the barrier (machines must not race on the
    // shared live-edge total).
    std::vector<std::int64_t> dropped(static_cast<std::size_t>(machines), 0);
    cluster.superstep([&](int m, const Cluster::Inbox& inbox, const Cluster::Sender&) {
      std::unordered_map<std::int32_t, bool> died;
      for (const Msg& msg : inbox)
        if (msg.tag == kVertexDead) died[static_cast<std::int32_t>(msg.a)] = true;
      for (LocalEdge& e : local[static_cast<std::size_t>(m)]) {
        if (e.live && (died.count(e.u) || died.count(e.v))) {
          e.live = false;
          ++dropped[static_cast<std::size_t>(m)];
        }
      }
    });
    for (int m = 0; m < machines; ++m) {
      live_total -= dropped[static_cast<std::size_t>(m)];
      if (dropped[static_cast<std::size_t>(m)] > 0) progress = true;
    }

    for (int m = 0; m < machines; ++m) {
      for (const auto& w : winners_by_machine[static_cast<std::size_t>(m)]) {
        matched.emplace_back(w.first, w.second);
        progress = true;
      }
    }
  }

  return {std::move(matched), cluster.rounds() - rounds_before, iterations};
}

}  // namespace bmf::mpc
