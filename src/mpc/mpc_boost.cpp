#include "mpc/mpc_boost.hpp"

namespace bmf::mpc {

MpcBoostResult mpc_boost_matching(const Graph& g, const MpcConfig& mpc_cfg,
                                  const CoreConfig& cfg) {
  MpcMatchingOracle oracle(mpc_cfg, cfg.seed);
  MpcBoostResult result;
  result.boost = boost_matching(g, oracle, cfg);
  result.oracle_rounds = oracle.rounds();
  result.process_rounds = kProcessRoundsPerBundle * result.boost.outcome.pass_bundles;
  return result;
}

}  // namespace bmf::mpc
