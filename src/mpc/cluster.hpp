#pragma once

/// A Massively Parallel Computation (MPC) simulator (Section 3.4).
///
/// M machines with S words of local memory each, connected as a clique.
/// Computation proceeds in synchronous rounds: each machine consumes the
/// messages delivered to it, computes locally, and emits messages for the
/// next round. The simulator enforces the model's accounting — per-round
/// send+receive volume per machine and resident memory are measured against
/// S, and violations are counted (they fail tests).
///
/// Messages are fixed-size triples of 64-bit words (tag, a, b); this mirrors
/// the word-RAM convention of MPC algorithms and keeps load accounting exact.
///
/// Machines' local computation runs concurrently on the shared thread pool
/// (MpcConfig::threads). Each machine writes to a private outbox; after a
/// barrier the outboxes are merged into next-round inboxes in machine order,
/// which reproduces the serial delivery schedule exactly — simulation results
/// are bit-identical at any thread count. Step callbacks may freely mutate
/// per-machine state but must not write shared state without their own
/// synchronization.

#include <cstdint>
#include <functional>
#include <vector>

#include "util/assert.hpp"

namespace bmf::mpc {

struct Msg {
  std::uint64_t tag = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
inline constexpr std::int64_t kWordsPerMsg = 3;

struct MpcConfig {
  int machines = 8;
  /// Local memory per machine, in words. 0 disables enforcement.
  std::int64_t memory_words = 0;
  /// Simulation threads for per-machine local computation: 0 = hardware
  /// concurrency, 1 = serial. Results are identical either way.
  int threads = 0;
};

class Cluster {
 public:
  explicit Cluster(const MpcConfig& cfg);

  [[nodiscard]] int machines() const { return cfg_.machines; }
  [[nodiscard]] std::int64_t rounds() const { return rounds_; }
  [[nodiscard]] std::int64_t messages_sent() const { return messages_; }
  [[nodiscard]] std::int64_t max_round_load_words() const { return max_load_; }
  [[nodiscard]] std::int64_t violations() const { return violations_; }

  /// Deterministic owner machine of a key (vertex/edge ids are hashed here).
  [[nodiscard]] int owner(std::uint64_t key) const;

  using Inbox = std::vector<Msg>;
  using Sender = std::function<void(int dest, Msg msg)>;

  /// One synchronous round: `step(machine, inbox, send)` runs on every
  /// machine; messages sent become next round's inboxes.
  void superstep(
      const std::function<void(int machine, const Inbox&, const Sender&)>& step);

  /// Charge rounds for an idealized primitive (e.g. O(1)-round sort) without
  /// simulating it message-by-message.
  void charge_rounds(std::int64_t r) { rounds_ += r; }

  /// Record resident memory usage of a machine for enforcement.
  void note_resident_words(int machine, std::int64_t words);

 private:
  MpcConfig cfg_;
  std::int64_t rounds_ = 0;
  std::int64_t messages_ = 0;
  std::int64_t max_load_ = 0;
  std::int64_t violations_ = 0;
  std::vector<Inbox> inboxes_;
};

}  // namespace bmf::mpc
