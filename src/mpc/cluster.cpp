#include "mpc/cluster.hpp"

#include <utility>

#include "util/thread_pool.hpp"

namespace bmf::mpc {

Cluster::Cluster(const MpcConfig& cfg) : cfg_(cfg) {
  BMF_REQUIRE(cfg.machines >= 1, "Cluster: need at least one machine");
  inboxes_.assign(static_cast<std::size_t>(cfg.machines), {});
}

int Cluster::owner(std::uint64_t key) const {
  // SplitMix64 finalizer as the partitioning hash.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return static_cast<int>(z % static_cast<std::uint64_t>(cfg_.machines));
}

void Cluster::superstep(
    const std::function<void(int machine, const Inbox&, const Sender&)>& step) {
  const int machines = cfg_.machines;

  // Parallel phase: every machine computes against its immutable inbox and
  // buffers sends in a private outbox.
  std::vector<std::vector<std::pair<int, Msg>>> outbox(
      static_cast<std::size_t>(machines));
  parallel_for_threads(cfg_.threads, machines, [&](std::int64_t m) {
    auto& out = outbox[static_cast<std::size_t>(m)];
    const Sender send = [&](int dest, Msg msg) {
      BMF_ASSERT(dest >= 0 && dest < cfg_.machines);
      out.emplace_back(dest, msg);
    };
    step(static_cast<int>(m), inboxes_[static_cast<std::size_t>(m)], send);
  });

  // Barrier passed; merge outboxes in machine order. This is exactly the
  // delivery order a serial sweep over machines produces, so inbox contents
  // (and every downstream result) are independent of the thread count.
  std::vector<Inbox> next(static_cast<std::size_t>(machines));
  std::vector<std::int64_t> sent(static_cast<std::size_t>(machines), 0);
  for (int m = 0; m < machines; ++m) {
    for (const auto& [dest, msg] : outbox[static_cast<std::size_t>(m)]) {
      next[static_cast<std::size_t>(dest)].push_back(msg);
      sent[static_cast<std::size_t>(m)] += kWordsPerMsg;
      ++messages_;
    }
  }
  for (int m = 0; m < machines; ++m) {
    const std::int64_t load =
        sent[static_cast<std::size_t>(m)] +
        static_cast<std::int64_t>(next[static_cast<std::size_t>(m)].size()) *
            kWordsPerMsg;
    max_load_ = std::max(max_load_, load);
    if (cfg_.memory_words > 0 && load > cfg_.memory_words) ++violations_;
  }
  inboxes_ = std::move(next);
  ++rounds_;
}

void Cluster::note_resident_words(int machine, std::int64_t words) {
  (void)machine;
  if (cfg_.memory_words > 0 && words > cfg_.memory_words) ++violations_;
}

}  // namespace bmf::mpc
