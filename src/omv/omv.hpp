#pragma once

/// Dynamic online matrix-vector multiplication (Definitions 7.5 / 7.6).
///
/// Update(i, j, b) sets a matrix entry; Query(v) returns M v over the Boolean
/// semiring. The engine is bit-parallel: O(n/w) per update-row touch and
/// O(n^2/w) per query with w = 64. [Liu24]'s theoretical
/// n^2 / 2^Omega(sqrt(log n)) algorithm is galactic; the bit-engine plays the
/// same role in the Theorem 7.10/7.12 pipeline (a combinatorial speedup
/// behind A_weak) and is exact, i.e. it solves dynamic (1-lambda)-approximate
/// OMv for every lambda >= 0. The substitution is documented as OMV-SUB in
/// DESIGN.md / EXPERIMENTS.md.

#include <cstdint>

#include "graph/bit_matrix.hpp"

namespace bmf {

class DynamicOMv {
 public:
  explicit DynamicOMv(std::int64_t n);

  [[nodiscard]] std::int64_t n() const { return n_; }

  /// Update(i, j, b): set M[i][j] = b.
  void update(std::int64_t i, std::int64_t j, bool b);

  /// Query(v): w = M v over (OR, AND). Exact (lambda = 0).
  void query(const BitVec& v, BitVec& out);

  /// Restricted row probe used by the matching extraction of Lemma 7.9: the
  /// first column j with M[r][j] AND mask[j], or -1. Charged as row work.
  [[nodiscard]] std::int64_t probe_row(std::int64_t r, const BitVec& mask);

  [[nodiscard]] const BitMatrix& matrix() const { return m_; }

  // --- accounting ---
  [[nodiscard]] std::int64_t updates() const { return updates_; }
  [[nodiscard]] std::int64_t queries() const { return queries_; }
  /// Machine words touched by queries/probes — the time proxy reported by the
  /// OMv benchmarks. Exact: queries and probes charge the words their
  /// early-exiting scans actually read, not per-row worst-case bounds.
  [[nodiscard]] std::int64_t words_touched() const { return words_touched_; }

 private:
  std::int64_t n_;
  BitMatrix m_;
  std::int64_t updates_ = 0;
  std::int64_t queries_ = 0;
  std::int64_t words_touched_ = 0;
};

}  // namespace bmf
