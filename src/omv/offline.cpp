#include "omv/offline.hpp"

#include <bit>

#include "util/assert.hpp"

namespace bmf {

OfflineWeakOracle::OfflineWeakOracle(Vertex n)
    : n_(n),
      words_per_row_((static_cast<std::int64_t>(n) + 63) / 64),
      base_(n, n),
      toggles_(static_cast<std::size_t>(n)) {}

bool OfflineWeakOracle::has_edge(Vertex u, Vertex v) const {
  bool val = base_.get(u, v);
  const auto& row = toggles_[static_cast<std::size_t>(u)];
  const auto it = row.find(v >> 6);
  if (it != row.end() && ((it->second >> (v & 63)) & 1ULL)) val = !val;
  return val;
}

void OfflineWeakOracle::toggle_half(Vertex u, Vertex v) {
  auto& row = toggles_[static_cast<std::size_t>(u)];
  auto [it, fresh] = row.emplace(v >> 6, 0);
  it->second ^= 1ULL << (v & 63);
  if (it->second == 0) row.erase(it);
}

void OfflineWeakOracle::set_edge(Vertex u, Vertex v, bool present) {
  if (has_edge(u, v) == present) return;
  toggle_half(u, v);
  toggle_half(v, u);
  ++diff_count_;  // toggles applied since the last rebase
}

void OfflineWeakOracle::rebase() {
  for (Vertex u = 0; u < n_; ++u) {
    auto& row = toggles_[static_cast<std::size_t>(u)];
    // Rebasing patches only the words that carry toggles; charge exactly
    // those (not the whole matrix — untouched rows are never read).
    words_touched_ += static_cast<std::int64_t>(row.size());
    for (const auto& [w, bits] : row) {
      for (int b = 0; b < 64; ++b) {
        if ((bits >> b) & 1ULL) {
          const auto col = static_cast<std::int64_t>(w) * 64 + b;
          base_.set(u, col, !base_.get(u, col));
        }
      }
    }
    row.clear();
  }
  diff_count_ = 0;
  ++rebases_;
}

std::int64_t OfflineWeakOracle::patched_probe(Vertex u, const BitVec& mask) {
  const auto& row = toggles_[static_cast<std::size_t>(u)];
  for (std::int64_t w = 0; w < words_per_row_; ++w) {
    // Effective row word = base XOR per-row toggles (Lemma 7.13 patching).
    std::uint64_t word = base_.row_word(u, w);
    const auto it = row.find(w);
    if (it != row.end()) word ^= it->second;
    word &= mask.word(w);
    ++words_touched_;
    if (word != 0) return w * 64 + std::countr_zero(word);
  }
  return -1;
}

WeakQueryResult OfflineWeakOracle::query_impl(std::span<const Vertex> s,
                                              double delta) {
  BitVec avail(n_);
  for (Vertex v : s) avail.set(v);
  WeakQueryResult out;
  for (Vertex u : s) {
    if (!avail.get(u)) continue;
    const std::int64_t v = patched_probe(u, avail);
    if (v >= 0) {
      out.matching.push_back({u, static_cast<Vertex>(v)});
      avail.set(u, false);
      avail.set(v, false);
    }
  }
  out.bottom = static_cast<double>(out.matching.size()) <
               lambda() * delta * static_cast<double>(n_);
  return out;
}

WeakQueryResult OfflineWeakOracle::query_cover_impl(
    std::span<const Vertex> s_plus, std::span<const Vertex> s_minus,
    double delta) {
  BitVec avail(n_);
  for (Vertex v : s_minus) avail.set(v);
  WeakQueryResult out;
  for (Vertex u : s_plus) {
    const std::int64_t v = patched_probe(u, avail);
    if (v >= 0) {
      out.matching.push_back({u, static_cast<Vertex>(v)});
      avail.set(v, false);
    }
  }
  out.bottom = static_cast<double>(out.matching.size()) <
               lambda() * delta * static_cast<double>(n_);
  return out;
}

OfflineDynamicResult offline_dynamic_matching(Vertex n,
                                              std::span<const EdgeUpdate> updates,
                                              std::int64_t chunk,
                                              std::int64_t t_block,
                                              const WeakSimConfig& sim) {
  BMF_REQUIRE(chunk >= 1 && t_block >= 1, "offline_dynamic_matching: bad blocks");
  OfflineWeakOracle oracle(n);
  DynGraph g(n);
  Matching m(n);
  OfflineDynamicResult result;

  std::int64_t in_chunk = 0;
  std::int64_t chunks_done = 0;
  for (const EdgeUpdate& up : updates) {
    if (!up.empty()) {
      if (up.insert) {
        if (g.insert(up.u, up.v)) {
          oracle.on_insert(up.u, up.v);
          if (m.is_free(up.u) && m.is_free(up.v)) m.add(up.u, up.v);
        }
      } else {
        if (g.erase(up.u, up.v)) {
          oracle.on_erase(up.u, up.v);
          if (m.has(up.u, up.v)) m.remove_at(up.u);
        }
      }
    }
    if (++in_chunk < chunk) continue;
    in_chunk = 0;
    ++chunks_done;
    const Graph snapshot = g.snapshot();
    WeakBoostResult boosted = static_weak_boost(snapshot, m, oracle, sim);
    m = std::move(boosted.matching);
    result.matching_sizes.push_back(m.size());
    if (chunks_done % t_block == 0) oracle.rebase();
  }
  result.weak_calls = oracle.calls();
  result.words_touched = oracle.words_touched();
  result.rebases = oracle.rebases();
  return result;
}

}  // namespace bmf
