#include "omv/omv.hpp"

#include "util/assert.hpp"

namespace bmf {

DynamicOMv::DynamicOMv(std::int64_t n) : n_(n), m_(n, n) {
  BMF_REQUIRE(n >= 0, "DynamicOMv: negative dimension");
}

void DynamicOMv::update(std::int64_t i, std::int64_t j, bool b) {
  m_.set(i, j, b);
  ++updates_;
}

void DynamicOMv::query(const BitVec& v, BitVec& out) {
  // multiply() stops each row at its first set AND-word; charge the words it
  // actually read rather than the n * n/64 worst case.
  std::int64_t scanned = 0;
  m_.multiply(v, out, &scanned);
  ++queries_;
  words_touched_ += scanned;
}

std::int64_t DynamicOMv::probe_row(std::int64_t r, const BitVec& mask) {
  std::int64_t scanned = 0;
  const std::int64_t col = m_.first_common_in_row(r, mask, &scanned);
  words_touched_ += scanned;
  return col;
}

}  // namespace bmf
