#include "omv/omv.hpp"

#include "util/assert.hpp"

namespace bmf {

DynamicOMv::DynamicOMv(std::int64_t n) : n_(n), m_(n, n) {
  BMF_REQUIRE(n >= 0, "DynamicOMv: negative dimension");
}

void DynamicOMv::update(std::int64_t i, std::int64_t j, bool b) {
  m_.set(i, j, b);
  ++updates_;
}

void DynamicOMv::query(const BitVec& v, BitVec& out) {
  m_.multiply(v, out);
  ++queries_;
  words_touched_ += n_ * ((n_ + 63) / 64);
}

std::int64_t DynamicOMv::probe_row(std::int64_t r, const BitVec& mask) {
  words_touched_ += (n_ + 63) / 64;
  return m_.first_common_in_row(r, mask);
}

}  // namespace bmf
