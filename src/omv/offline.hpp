#pragma once

/// Offline dynamic matching support (Section 7.4.3, Lemmas 7.13/7.14 and
/// Theorem 7.15).
///
/// In the offline problem the whole update sequence is known in advance, so
/// versions G_1..G_t within a block share one materialized base matrix and
/// differ from it by at most Gamma toggled edges; queries against version i
/// are answered from base rows patched with the per-version diff — the
/// Lemma 7.13 sharing. OfflineWeakOracle is that machine as an A_weak
/// implementation; offline_dynamic_matching drives Theorem 7.15's blocked
/// schedule: the base is re-materialized every t_block chunks, so per-row
/// patch work stays O(Gamma) while full-matrix rebuilds amortize across the
/// block (the t / D trade of [Liu24], with the bit-parallel engine standing
/// in for the galactic OMv algorithm — substitution OMV-SUB in DESIGN.md).

#include <cstdint>
#include <span>
#include <unordered_map>

#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "graph/bit_matrix.hpp"

namespace bmf {

class OfflineWeakOracle final : public WeakOracle {
 public:
  explicit OfflineWeakOracle(Vertex n);

  [[nodiscard]] double lambda() const override { return 0.5; }
  void on_insert(Vertex u, Vertex v) override { set_edge(u, v, true); }
  void on_erase(Vertex u, Vertex v) override { set_edge(u, v, false); }

  /// Folds all pending toggles into the base matrix (block boundary).
  void rebase();

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const;
  [[nodiscard]] std::int64_t diff_size() const { return diff_count_; }
  /// Exact words read: patched probes count each word they scan (early exit
  /// included) and rebase charges only the toggle-carrying words it patches.
  [[nodiscard]] std::int64_t words_touched() const { return words_touched_; }
  [[nodiscard]] std::int64_t rebases() const { return rebases_; }

 protected:
  WeakQueryResult query_impl(std::span<const Vertex> s, double delta) override;
  WeakQueryResult query_cover_impl(std::span<const Vertex> s_plus,
                                   std::span<const Vertex> s_minus,
                                   double delta) override;

 private:
  void set_edge(Vertex u, Vertex v, bool present);
  void toggle_half(Vertex u, Vertex v);
  /// First column in (base row XOR toggles) AND mask, or -1.
  [[nodiscard]] std::int64_t patched_probe(Vertex u, const BitVec& mask);

  Vertex n_;
  std::int64_t words_per_row_;
  BitMatrix base_;
  /// Per-row toggle words relative to base (word index -> xor mask).
  std::vector<std::unordered_map<std::int64_t, std::uint64_t>> toggles_;
  std::int64_t diff_count_ = 0;
  std::int64_t words_touched_ = 0;
  std::int64_t rebases_ = 0;
};

struct OfflineDynamicResult {
  /// |M| after each chunk of updates.
  std::vector<std::int64_t> matching_sizes;
  std::int64_t weak_calls = 0;
  std::int64_t words_touched = 0;
  std::int64_t rebases = 0;
};

/// Theorem 7.15 driver: processes the known update sequence in chunks of
/// `chunk` updates, boosting with Theorem 6.2 after each chunk; the shared
/// base is re-materialized every `t_block` chunks.
[[nodiscard]] OfflineDynamicResult offline_dynamic_matching(
    Vertex n, std::span<const EdgeUpdate> updates, std::int64_t chunk,
    std::int64_t t_block, const WeakSimConfig& sim);

}  // namespace bmf
