#include "omv/omv_weak.hpp"

#include "util/assert.hpp"

namespace bmf {

OMvWeakOracle::OMvWeakOracle(Vertex n) : n_(n), omv_(n) {}

OMvWeakOracle OMvWeakOracle::from_graph(const Graph& g) {
  OMvWeakOracle oracle(g.num_vertices());
  for (const Edge& e : g.edges()) oracle.on_insert(e.u, e.v);
  return oracle;
}

void OMvWeakOracle::on_insert(Vertex u, Vertex v) {
  omv_.update(u, v, true);
  omv_.update(v, u, true);
}

void OMvWeakOracle::on_erase(Vertex u, Vertex v) {
  omv_.update(u, v, false);
  omv_.update(v, u, false);
}

std::vector<Edge> OMvWeakOracle::cover_maximal(std::span<const Vertex> s_plus,
                                               std::span<const Vertex> s_minus) {
  BitVec avail(n_);
  for (Vertex v : s_minus) avail.set(v);
  std::vector<Edge> out;
  for (Vertex u : s_plus) {
    const std::int64_t v = omv_.probe_row(u, avail);
    if (v >= 0) {
      out.push_back({u, static_cast<Vertex>(v)});
      avail.set(v, false);
    }
  }
  return out;
}

WeakQueryResult OMvWeakOracle::query_impl(std::span<const Vertex> s,
                                          double delta) {
  // Lemma 7.9 extraction on B[S+, S-] followed by the Lemma 7.8 transfer.
  const std::vector<Vertex> copy(s.begin(), s.end());
  const std::vector<Edge> cover = cover_maximal(copy, copy);
  WeakQueryResult out;
  out.matching = cover_matching_to_graph_matching(n_, cover);
  const double threshold = lambda() * delta * static_cast<double>(n_);
  out.bottom = static_cast<double>(out.matching.size()) < threshold;
  return out;
}

WeakQueryResult OMvWeakOracle::query_cover_impl(std::span<const Vertex> s_plus,
                                                std::span<const Vertex> s_minus,
                                                double delta) {
  WeakQueryResult out;
  out.matching = cover_maximal(s_plus, s_minus);
  const double threshold = 0.5 * delta * static_cast<double>(n_);
  out.bottom = static_cast<double>(out.matching.size()) < threshold;
  return out;
}

}  // namespace bmf
