#pragma once

/// A_weak backed by dynamic OMv (Section 7.4.1, Theorem 7.10 direction
/// "OMv algorithm => dynamic matching").
///
/// The oracle maintains the adjacency of the double cover B through a
/// DynamicOMv instance (B's biadjacency equals G's adjacency matrix viewed
/// bipartitely). A query on G[S] finds a maximal matching in B[S+ u S-] by
/// masked row probes — the Lemma 7.9 / Lemma 2.12 extraction, with the probe
/// work charged to the OMv engine — and transfers it to G[S] by Lemma 7.8 at
/// a factor-6 loss, giving lambda = 1/12. Cover queries are served directly.

#include "dynamic/bipartite_cover.hpp"
#include "dynamic/weak_oracle.hpp"
#include "omv/omv.hpp"

namespace bmf {

class OMvWeakOracle final : public WeakOracle {
 public:
  explicit OMvWeakOracle(Vertex n);
  static OMvWeakOracle from_graph(const Graph& g);

  [[nodiscard]] double lambda() const override { return 1.0 / 12.0; }
  void on_insert(Vertex u, Vertex v) override;
  void on_erase(Vertex u, Vertex v) override;

  [[nodiscard]] DynamicOMv& engine() { return omv_; }
  [[nodiscard]] const DynamicOMv& engine() const { return omv_; }

 protected:
  WeakQueryResult query_impl(std::span<const Vertex> s, double delta) override;
  WeakQueryResult query_cover_impl(std::span<const Vertex> s_plus,
                                   std::span<const Vertex> s_minus,
                                   double delta) override;

 private:
  /// Maximal matching in B[S+ u S-] via masked row probes.
  [[nodiscard]] std::vector<Edge> cover_maximal(std::span<const Vertex> s_plus,
                                                std::span<const Vertex> s_minus);

  Vertex n_;
  DynamicOMv omv_;
};

}  // namespace bmf
