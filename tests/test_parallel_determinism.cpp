/// Determinism of the parallel execution engine: for a fixed seed, every
/// simulator and framework entry point must produce bit-identical results at
/// 1, 2, and 8 threads. This is the contract documented in
/// util/thread_pool.hpp (private outboxes + merge in id order after the
/// barrier), and it is what makes the parallel engine a faithful drop-in for
/// the serial round-by-round semantics.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "congest/congest_boost.hpp"
#include "congest/congest_matching.hpp"
#include "congest/network.hpp"
#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "mpc/mpc_boost.hpp"
#include "mpc/mpc_matching.hpp"
#include "util/rng.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

TEST(ParallelDeterminism, MpcMaximalMatchingIdenticalAcrossThreadCounts) {
  Rng grng(42);
  const Graph g = gen_random_graph(300, 1200, grng);
  const OracleGraph h = to_oracle_graph(g);

  std::vector<OracleMatching> results;
  std::vector<std::int64_t> rounds, messages;
  for (int threads : kThreadCounts) {
    mpc::MpcConfig cfg;
    cfg.machines = 8;
    cfg.threads = threads;
    mpc::Cluster cluster(cfg);
    Rng rng(7);
    const mpc::MpcMatchingResult r = mpc::mpc_maximal_matching(cluster, h, rng);
    results.push_back(r.matching);
    rounds.push_back(r.rounds);
    messages.push_back(cluster.messages_sent());
    EXPECT_EQ(cluster.violations(), 0) << "threads=" << threads;
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(rounds[i], rounds[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(messages[i], messages[0]) << "threads=" << kThreadCounts[i];
  }
}

TEST(ParallelDeterminism, MpcBoostIdenticalAcrossThreadCounts) {
  Rng grng(11);
  const Graph g = gen_planted_matching(150, 320, grng);

  std::vector<std::vector<Edge>> matchings;
  std::vector<std::int64_t> calls, total_rounds;
  for (int threads : kThreadCounts) {
    CoreConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 3;
    cfg.threads = threads;
    mpc::MpcConfig mpc_cfg;
    mpc_cfg.machines = 8;
    mpc_cfg.threads = threads;
    const mpc::MpcBoostResult r = mpc::mpc_boost_matching(g, mpc_cfg, cfg);
    matchings.push_back(r.boost.matching.edge_list());
    calls.push_back(r.boost.total_oracle_calls);
    total_rounds.push_back(r.total_rounds());
  }
  for (std::size_t i = 1; i < matchings.size(); ++i) {
    EXPECT_EQ(matchings[i], matchings[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(calls[i], calls[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(total_rounds[i], total_rounds[0]) << "threads=" << kThreadCounts[i];
  }
}

TEST(ParallelDeterminism, CongestMaximalMatchingIdenticalAcrossThreadCounts) {
  Rng grng(23);
  const Graph g = gen_random_graph(200, 700, grng);

  std::vector<OracleMatching> results;
  std::vector<std::int64_t> rounds;
  for (int threads : kThreadCounts) {
    congest::Network net(g, threads);
    Rng rng(99);
    const congest::CongestMatchingResult r =
        congest::congest_maximal_matching(net, rng);
    results.push_back(r.matching);
    rounds.push_back(r.rounds);
    EXPECT_EQ(net.violations(), 0) << "threads=" << threads;
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[i], results[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(rounds[i], rounds[0]) << "threads=" << kThreadCounts[i];
  }
}

TEST(ParallelDeterminism, CongestBoostIdenticalAcrossThreadCounts) {
  Rng grng(31);
  const Graph g = gen_planted_matching(120, 260, grng);

  std::vector<std::vector<Edge>> matchings;
  std::vector<std::int64_t> calls;
  for (int threads : kThreadCounts) {
    CoreConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 5;
    cfg.threads = threads;
    const congest::CongestBoostResult r = congest::congest_boost_matching(g, cfg);
    matchings.push_back(r.boost.matching.edge_list());
    calls.push_back(r.boost.total_oracle_calls);
  }
  for (std::size_t i = 1; i < matchings.size(); ++i) {
    EXPECT_EQ(matchings[i], matchings[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(calls[i], calls[0]) << "threads=" << kThreadCounts[i];
  }
}

TEST(ParallelDeterminism, BoostMatchingWithSamplingOracleIdentical) {
  Rng grng(57);
  const Graph g = gen_augmenting_chains(24, 5);

  std::vector<std::vector<Edge>> matchings;
  std::vector<std::int64_t> stats;
  for (int threads : kThreadCounts) {
    CoreConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 17;
    cfg.threads = threads;
    BestOfKRandomGreedyOracle oracle(cfg.seed, 8, threads);
    const BoostResult r = boost_matching(g, oracle, cfg);
    matchings.push_back(r.matching.edge_list());
    stats.push_back(r.total_oracle_calls);
  }
  for (std::size_t i = 1; i < matchings.size(); ++i) {
    EXPECT_EQ(matchings[i], matchings[0]) << "threads=" << kThreadCounts[i];
    EXPECT_EQ(stats[i], stats[0]) << "threads=" << kThreadCounts[i];
  }
}

TEST(ParallelDeterminism, EnsembleIdenticalAcrossThreadCountsAndPicksBest) {
  Rng grng(71);
  const Graph g = gen_random_graph(90, 260, grng);

  EnsembleResult reference;
  bool have_reference = false;
  for (int threads : kThreadCounts) {
    CoreConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 29;
    cfg.threads = threads;
    const EnsembleResult r = boost_matching_ensemble(
        g,
        [](std::uint64_t seed) {
          return std::make_unique<RandomGreedyMatchingOracle>(seed);
        },
        cfg, 6);
    ASSERT_EQ(r.sizes.size(), 6u);
    ASSERT_GE(r.best_repetition, 0);
    for (std::int64_t size : r.sizes)
      EXPECT_LE(size, r.best.matching.size());
    EXPECT_EQ(r.sizes[static_cast<std::size_t>(r.best_repetition)],
              r.best.matching.size());
    if (!have_reference) {
      reference = r;
      have_reference = true;
    } else {
      EXPECT_EQ(r.sizes, reference.sizes) << "threads=" << threads;
      EXPECT_EQ(r.best_repetition, reference.best_repetition)
          << "threads=" << threads;
      EXPECT_EQ(r.best.matching.edge_list(), reference.best.matching.edge_list())
          << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace bmf
