#include <gtest/gtest.h>

#include "dynamic/weak_oracle.hpp"
#include "omv/omv_weak.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

std::vector<Vertex> random_subset(Vertex n, double p, Rng& rng) {
  std::vector<Vertex> s;
  for (Vertex v = 0; v < n; ++v)
    if (rng.next_bool(p)) s.push_back(v);
  return s;
}

class WeakOracleProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeakOracleProps, QueryIsMaximalInInducedSubgraph) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(60, 240, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  const auto s = random_subset(60, 0.5, rng);
  const WeakQueryResult res = oracle.query(s, 0.0);

  std::vector<std::uint8_t> in_s(60, 0), matched(60, 0);
  for (Vertex v : s) in_s[static_cast<std::size_t>(v)] = 1;
  for (const Edge& e : res.matching) {
    ASSERT_TRUE(in_s[static_cast<std::size_t>(e.u)]);
    ASSERT_TRUE(in_s[static_cast<std::size_t>(e.v)]);
    ASSERT_TRUE(g.has_edge(e.u, e.v));
    ASSERT_FALSE(matched[static_cast<std::size_t>(e.u)]);
    ASSERT_FALSE(matched[static_cast<std::size_t>(e.v)]);
    matched[static_cast<std::size_t>(e.u)] = 1;
    matched[static_cast<std::size_t>(e.v)] = 1;
  }
  // Maximality: no G[S]-edge joins two unmatched S-vertices.
  for (const Edge& e : g.edges()) {
    if (!in_s[static_cast<std::size_t>(e.u)] || !in_s[static_cast<std::size_t>(e.v)])
      continue;
    EXPECT_TRUE(matched[static_cast<std::size_t>(e.u)] ||
                matched[static_cast<std::size_t>(e.v)])
        << "uncovered edge " << e.u << "-" << e.v;
  }
}

TEST_P(WeakOracleProps, CoverQueryIsMaximalBipartite) {
  Rng rng(GetParam() + 40);
  const Graph g = gen_random_graph(50, 200, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  const auto plus = random_subset(50, 0.4, rng);
  const auto minus = random_subset(50, 0.4, rng);
  const WeakQueryResult res = oracle.query_cover(plus, minus, 0.0);

  std::vector<std::uint8_t> used_plus(50, 0), used_minus(50, 0), in_plus(50, 0),
      in_minus(50, 0);
  for (Vertex v : plus) in_plus[static_cast<std::size_t>(v)] = 1;
  for (Vertex v : minus) in_minus[static_cast<std::size_t>(v)] = 1;
  for (const Edge& e : res.matching) {
    ASSERT_TRUE(in_plus[static_cast<std::size_t>(e.u)]);
    ASSERT_TRUE(in_minus[static_cast<std::size_t>(e.v)]);
    ASSERT_TRUE(g.has_edge(e.u, e.v));
    ASSERT_FALSE(used_plus[static_cast<std::size_t>(e.u)]);
    ASSERT_FALSE(used_minus[static_cast<std::size_t>(e.v)]);
    used_plus[static_cast<std::size_t>(e.u)] = 1;
    used_minus[static_cast<std::size_t>(e.v)] = 1;
  }
  // Maximality in B[S+ u S-]: no (u+, v-) with both copies unused.
  for (Vertex u = 0; u < 50; ++u) {
    if (!in_plus[static_cast<std::size_t>(u)] || used_plus[static_cast<std::size_t>(u)])
      continue;
    for (Vertex v : g.neighbors(u)) {
      if (in_minus[static_cast<std::size_t>(v)]) {
        EXPECT_TRUE(used_minus[static_cast<std::size_t>(v)])
            << "uncovered B-edge (" << u << "+, " << v << "-)";
      }
    }
  }
}

TEST_P(WeakOracleProps, MatrixAndOMvOraclesAgreeOnCoverQueries) {
  // Both implement greedy maximal over the same row order, so their cover
  // matchings coincide exactly.
  Rng rng(GetParam() + 80);
  const Graph g = gen_random_graph(40, 160, rng);
  MatrixWeakOracle a = MatrixWeakOracle::from_graph(g);
  OMvWeakOracle b = OMvWeakOracle::from_graph(g);
  const auto plus = random_subset(40, 0.5, rng);
  const auto minus = random_subset(40, 0.5, rng);
  const auto ra = a.query_cover(plus, minus, 0.0);
  const auto rb = b.query_cover(plus, minus, 0.0);
  ASSERT_EQ(ra.matching.size(), rb.matching.size());
  for (std::size_t i = 0; i < ra.matching.size(); ++i) {
    EXPECT_EQ(ra.matching[i].u, rb.matching[i].u);
    EXPECT_EQ(ra.matching[i].v, rb.matching[i].v);
  }
}

TEST(WeakOracleCostAccounting, HandCountedWordsTouchedFixture) {
  // n = 130 -> 3 words per row. Edges: {0,1}, {0,128}, {2,128}.
  MatrixWeakOracle oracle(130);
  oracle.on_insert(0, 1);
  oracle.on_insert(0, 128);
  oracle.on_insert(2, 128);

  // query({0,1,2,3}): u=0 probes against avail {0,1,2,3} and hits bit 1 in
  // word 0 -> 1 word, matches (0,1); u=1 is consumed -> no probe, 0 words;
  // u=2's only neighbor 128 is not in avail {2,3} -> full 3-word miss;
  // u=3 has an empty row -> full 3-word miss. Total: 1 + 0 + 3 + 3 = 7.
  const std::vector<Vertex> s{0, 1, 2, 3};
  const auto res = oracle.query(s, 0.0);
  ASSERT_EQ(res.matching.size(), 1u);
  EXPECT_EQ(res.matching[0].u, 0);
  EXPECT_EQ(res.matching[0].v, 1);
  EXPECT_EQ(oracle.words_touched(), 7);

  // query_cover({0,2}, {1,3}): 0+ hits 1- in word 0 -> 1 word; 2+'s only
  // neighbor 128 is not in {3} -> 3-word miss. Total 4 more.
  const auto cover = oracle.query_cover(std::vector<Vertex>{0, 2},
                                        std::vector<Vertex>{1, 3}, 0.0);
  ASSERT_EQ(cover.matching.size(), 1u);
  EXPECT_EQ(oracle.words_touched(), 11);

  // The pre-fix accounting charged ceil(130/64) = 3 words per probe
  // (3 + 3 + 3 = 9 for the first query): pin that the overcount is gone.
  MatrixWeakOracle recount(130);
  recount.on_insert(0, 1);
  (void)recount.query(s, 0.0);  // u=0: 1 word; u=2, u=3: 3-word misses
  EXPECT_EQ(recount.words_touched(), 7);
}

TEST_P(WeakOracleProps, WordsTouchedGrowsWithQueries) {
  Rng rng(GetParam() + 120);
  const Graph g = gen_random_graph(64, 128, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  const auto s = random_subset(64, 0.5, rng);
  const std::int64_t before = oracle.words_touched();
  (void)oracle.query(s, 0.0);
  const std::int64_t after_one = oracle.words_touched();
  EXPECT_GT(after_one, before);
  (void)oracle.query(s, 0.0);
  EXPECT_GT(oracle.words_touched(), after_one);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeakOracleProps, ::testing::Values(1, 2, 3, 5, 8));

TEST(WeakOracleEdgeCases, EmptySubsetAndSingleton) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}});
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  EXPECT_TRUE(oracle.query(std::vector<Vertex>{}, 0.0).matching.empty());
  EXPECT_TRUE(oracle.query(std::vector<Vertex>{0}, 0.0).matching.empty());
  EXPECT_TRUE(oracle.query_cover(std::vector<Vertex>{0}, std::vector<Vertex>{},
                                 0.0)
                  .matching.empty());
}

TEST(WeakOracleEdgeCases, CoverAllowsBothCopiesOfSameVertex) {
  // S+ = S- = {0, 1} with edge {0,1}: the cover matching can use (0+, 1-)
  // while 1+ can still probe, but 0- is taken; result has exactly one pair
  // per available minus copy.
  const Graph g = make_graph(2, std::vector<Edge>{{0, 1}});
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  const std::vector<Vertex> s{0, 1};
  const auto res = oracle.query_cover(s, s, 0.0);
  EXPECT_EQ(res.matching.size(), 2u);  // (0+,1-) and (1+,0-)
}

}  // namespace
}  // namespace bmf
