#include <gtest/gtest.h>

#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "matching/blossom_exact.hpp"
#include "ors/ors.hpp"

namespace bmf {
namespace {

TEST(Ors, TrivialConstructionVerifies) {
  const OrsGraph ors = ors_trivial(40, 4, 5);
  EXPECT_EQ(ors.t(), 5);
  EXPECT_EQ(ors.r(), 4);
  EXPECT_TRUE(verify_ors(ors));
  const Graph g = ors.graph();
  EXPECT_EQ(g.num_edges(), 20);
}

TEST(Ors, VerifierRejectsNonMatching) {
  OrsGraph bad;
  bad.n = 4;
  bad.matchings = {{{0, 1}, {1, 2}}};  // shares vertex 1
  EXPECT_FALSE(verify_ors(bad));
}

TEST(Ors, VerifierRejectsSizeMismatch) {
  OrsGraph bad;
  bad.n = 8;
  bad.matchings = {{{0, 1}, {2, 3}}, {{4, 5}}};  // r differs
  EXPECT_FALSE(verify_ors(bad));
}

TEST(Ors, VerifierRejectsSuffixViolation) {
  // M_1 = {0-1, 2-3}; a later matching provides the cross edge 1-2, which is
  // an edge of the suffix connecting two M_1-covered vertices.
  OrsGraph bad;
  bad.n = 6;
  bad.matchings = {{{0, 1}, {2, 3}}, {{1, 2}, {4, 5}}};
  EXPECT_FALSE(verify_ors(bad));
}

TEST(Ors, OrderMattersForSuffixInducedness) {
  // The same matchings in the other order are valid: the earlier matching is
  // only constrained by its suffix.
  OrsGraph good;
  good.n = 6;
  good.matchings = {{{1, 2}, {4, 5}}, {{0, 1}, {2, 3}}};
  EXPECT_TRUE(verify_ors(good));
}

class OrsGreedyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrsGreedyTest, GreedyConstructionVerifies) {
  Rng rng(GetParam());
  const OrsGraph ors = ors_greedy_random(60, 6, 10, rng);
  EXPECT_GT(ors.t(), 0);
  EXPECT_TRUE(verify_ors(ors));
  for (const auto& mi : ors.matchings) EXPECT_EQ(mi.size(), 6u);
}

TEST_P(OrsGreedyTest, GreedyBeatsTrivialDensity) {
  // The greedy ordered construction packs more matchings than the trivial
  // disjoint one on the same vertex budget (t_trivial = n/(2r) = 5).
  Rng rng(GetParam());
  const OrsGraph ors = ors_greedy_random(60, 6, 24, rng);
  EXPECT_GT(ors.t(), 5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrsGreedyTest, ::testing::Values(1, 2, 3, 4));

TEST(Ors, UpdateSequenceDrivesDynamicMatcher) {
  Rng rng(9);
  const OrsGraph ors = ors_greedy_random(40, 4, 8, rng);
  ASSERT_TRUE(verify_ors(ors));
  const auto updates = ors_update_sequence(ors);

  MatrixWeakOracle oracle(ors.n);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  DynamicMatcher dm(ors.n, oracle, cfg);
  std::int64_t step = 0;
  for (const EdgeUpdate& up : updates) {
    dm.apply(up);
    if (++step % 16 == 0) {
      const Graph snapshot = dm.graph().snapshot();
      ASSERT_TRUE(dm.matching().is_valid_in(snapshot));
      ASSERT_TRUE(dm.matching().is_maximal_in(snapshot));
    }
  }
  EXPECT_EQ(dm.graph().num_edges(), 0);  // everything deleted at the end
}

}  // namespace
}  // namespace bmf
