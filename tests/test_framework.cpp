#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "matching/blossom_exact.hpp"
#include "matching/greedy.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

void expect_boosted(const Graph& g, double eps, std::uint64_t seed,
                    bool check_invariants = true) {
  CoreConfig cfg;
  cfg.eps = eps;
  cfg.seed = seed;
  cfg.check_invariants = check_invariants;
  GreedyMatchingOracle oracle;
  const BoostResult r = boost_matching(g, oracle, cfg);
  ASSERT_TRUE(r.matching.is_valid_in(g));
  const std::int64_t mu = maximum_matching_size(g);
  EXPECT_GE(static_cast<double>(r.matching.size()) * (1.0 + eps),
            static_cast<double>(mu))
      << "eps=" << eps << " seed=" << seed << " |M|=" << r.matching.size()
      << " mu=" << mu;
}

TEST(Framework, EmptyGraph) {
  const Graph g = make_graph(5, {});
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_EQ(r.matching.size(), 0);
}

TEST(Framework, SingleEdge) {
  const Graph g = make_graph(2, std::vector<Edge>{{0, 1}});
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_EQ(r.matching.size(), 1);
}

TEST(Framework, InitialMatchingIsConstantApprox) {
  Rng rng(3);
  const Graph g = gen_random_graph(200, 800, rng);
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  const Matching m = framework_initial_matching(g, oracle, cfg);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_TRUE(m.is_maximal_in(g));
  // Lemma 5.3: O(c) calls suffice.
  EXPECT_LE(oracle.calls(), 2 * 2 + 1);
  EXPECT_GE(4 * m.size(), maximum_matching_size(g));
}

TEST(Framework, AugmentingChainsAreFullyAugmented) {
  // Greedy can leave one long augmenting path per gadget; the framework must
  // recover all of them.
  const Graph g = gen_augmenting_chains(10, 4);  // paths with 9 edges
  expect_boosted(g, 0.2, 1);
}

TEST(Framework, AdversarialChainsTrapSortedGreedy) {
  // The adversarial labeling makes sorted-order greedy leave exactly one
  // augmenting path of length 2k+1 per gadget...
  for (Vertex k : {1, 2, 3, 5}) {
    const Graph g = gen_adversarial_chains(7, k);
    const Matching greedy = greedy_maximal_matching(g);
    EXPECT_EQ(greedy.size(), 7 * k) << "k=" << k;
    EXPECT_EQ(maximum_matching_size(g), 7 * (k + 1)) << "k=" << k;
  }
  // ...which the framework then recovers in full (certificate implies the
  // exact optimum here since all augmenting paths are shorter than 3/eps).
  const Graph g = gen_adversarial_chains(7, 3);
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.check_invariants = true;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_EQ(r.matching.size(), maximum_matching_size(g));
}

TEST(Framework, OddCyclesNeedContraction) {
  const Graph g = gen_odd_cycles(8, 9);
  expect_boosted(g, 0.25, 1);
}

TEST(Framework, CertifiedRunsAreExact) {
  // A certified run implies no augmenting path of length <= 3/eps; on paths
  // shorter than that, the result must be exactly maximum.
  const Graph g = gen_disjoint_paths(6, 7);
  CoreConfig cfg;
  cfg.eps = 0.2;  // l_max = 15 > path length
  cfg.check_invariants = true;
  GreedyMatchingOracle oracle;
  const BoostResult r = boost_matching(g, oracle, cfg);
  if (r.outcome.certified) {
    EXPECT_EQ(r.matching.size(), maximum_matching_size(g));
  }
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.2,
            static_cast<double>(maximum_matching_size(g)));
}

struct FamilyCase {
  const char* name;
  Graph (*make)(std::uint64_t seed);
};

Graph family_random(std::uint64_t seed) {
  Rng rng(seed);
  return gen_random_graph(120, 360, rng);
}
Graph family_sparse(std::uint64_t seed) {
  Rng rng(seed);
  return gen_random_graph(150, 180, rng);
}
Graph family_bipartite(std::uint64_t seed) {
  Rng rng(seed);
  return gen_random_bipartite(60, 60, 300, rng);
}
Graph family_planted(std::uint64_t seed) {
  Rng rng(seed);
  return gen_planted_matching(100, 150, rng);
}
Graph family_chains(std::uint64_t seed) {
  return gen_augmenting_chains(5 + seed % 5, 3);
}
Graph family_odd_cycles(std::uint64_t seed) {
  return gen_odd_cycles(4 + seed % 4, 5 + 2 * (seed % 3));
}
Graph family_cliques(std::uint64_t seed) { return gen_clique_pair(10 + seed % 7); }
Graph family_regular(std::uint64_t seed) {
  Rng rng(seed);
  return gen_near_regular(100, 4, rng);
}

class FrameworkFamilyTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t, double>> {};

TEST_P(FrameworkFamilyTest, RatioWithinOnePlusEps) {
  static constexpr FamilyCase kFamilies[] = {
      {"random", family_random},     {"sparse", family_sparse},
      {"bipartite", family_bipartite}, {"planted", family_planted},
      {"chains", family_chains},     {"odd_cycles", family_odd_cycles},
      {"cliques", family_cliques},   {"regular", family_regular},
  };
  const auto [family, seed, eps] = GetParam();
  const Graph g = kFamilies[family].make(seed);
  SCOPED_TRACE(kFamilies[family].name);
  expect_boosted(g, eps, seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FrameworkFamilyTest,
    ::testing::Combine(::testing::Range(0, 8), ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0.5, 0.25, 0.125)));

TEST(Framework, PaperBoundModeStillApproximates) {
  Rng rng(11);
  const Graph g = gen_random_graph(100, 300, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.iteration_mode = IterationMode::kPaperBound;
  GreedyMatchingOracle oracle;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_TRUE(r.matching.is_valid_in(g));
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

TEST(Framework, StageSplitOffMatchesGuarantee) {
  Rng rng(13);
  const Graph g = gen_random_graph(100, 250, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.stage_split = false;
  cfg.check_invariants = true;
  GreedyMatchingOracle oracle;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

TEST(Framework, ExactOracleWorksToo) {
  Rng rng(17);
  const Graph g = gen_random_graph(80, 200, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  ExactMatchingOracle oracle;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

TEST(Framework, RandomizedOracleWorks) {
  Rng rng(19);
  const Graph g = gen_random_graph(80, 240, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  RandomGreedyMatchingOracle oracle(99);
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

TEST(Framework, OracleCallCountGrowsSlowlyInEps) {
  // Sanity bound on the measured call count: far below the paper's scheduled
  // worst case and monotone-ish in 1/eps.
  Rng rng(23);
  const Graph g = gen_planted_matching(200, 400, rng);
  std::int64_t calls_half = 0, calls_eighth = 0;
  {
    CoreConfig cfg;
    cfg.eps = 0.5;
    GreedyMatchingOracle oracle;
    (void)boost_matching(g, oracle, cfg);
    calls_half = oracle.calls();
  }
  {
    CoreConfig cfg;
    cfg.eps = 0.125;
    GreedyMatchingOracle oracle;
    (void)boost_matching(g, oracle, cfg);
    calls_eighth = oracle.calls();
  }
  EXPECT_GT(calls_half, 0);
  EXPECT_GT(calls_eighth, 0);
  // The adaptive schedule keeps both modest; this guards regressions that
  // would explode the invocation count.
  EXPECT_LT(calls_eighth, 200000);
}

}  // namespace
}  // namespace bmf
