#include <gtest/gtest.h>

#include "dynamic/bipartite_cover.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "matching/blossom_exact.hpp"
#include "matching/hopcroft_karp.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

TEST(MatrixWeakOracle, FindsMaximalMatchingInInducedSubgraph) {
  const Graph g =
      make_graph(6, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  const std::vector<Vertex> s{0, 1, 3, 4};
  const WeakQueryResult res = oracle.query(s, 0.0);
  // G[S] has edges {0,1} and {3,4}; greedy must find both.
  EXPECT_EQ(res.matching.size(), 2u);
  EXPECT_FALSE(res.bottom);
  for (const Edge& e : res.matching) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    for (Vertex x : {e.u, e.v})
      EXPECT_NE(std::find(s.begin(), s.end(), x), s.end());
  }
}

TEST(MatrixWeakOracle, BottomWhenBelowThreshold) {
  const Graph g = make_graph(10, std::vector<Edge>{{0, 1}});
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  const std::vector<Vertex> s{0, 1, 2, 3};
  // lambda*delta*n = 0.5 * 0.5 * 10 = 2.5 > 1 found.
  EXPECT_TRUE(oracle.query(s, 0.5).bottom);
  EXPECT_FALSE(oracle.query(s, 0.01).bottom);
}

TEST(MatrixWeakOracle, Definition61Contract) {
  // If mu(G[S]) >= delta*n then no bottom: greedy maximal is a 2-approx, so
  // with lambda = 1/2 the threshold is always met in that regime.
  Rng rng(3);
  const Graph g = gen_planted_matching(40, 60, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  std::vector<Vertex> all(40);
  for (Vertex v = 0; v < 40; ++v) all[static_cast<std::size_t>(v)] = v;
  const double delta = 0.5;  // mu = 20 = delta*n
  EXPECT_FALSE(oracle.query(all, delta).bottom);
}

TEST(MatrixWeakOracle, DynamicUpdatesTracked) {
  MatrixWeakOracle oracle(4);
  oracle.on_insert(0, 1);
  EXPECT_EQ(oracle.query(std::vector<Vertex>{0, 1}, 0.0).matching.size(), 1u);
  oracle.on_erase(0, 1);
  EXPECT_TRUE(oracle.query(std::vector<Vertex>{0, 1}, 0.0).matching.empty());
}

TEST(MatrixWeakOracle, CoverQueryAvoidsInnerInnerEdges) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  // Outer copies {0, 2}, inner copies {1, 3}: edges (0+,1-), (2+,1-), (2+,3-).
  const std::vector<Vertex> plus{0, 2}, minus{1, 3};
  const WeakQueryResult res = oracle.query_cover(plus, minus, 0.0);
  EXPECT_EQ(res.matching.size(), 2u);  // (0+,1-) and (2+,3-)
  for (const Edge& e : res.matching) EXPECT_TRUE(g.has_edge(e.u, e.v));
}

TEST(BipartiteCover, CoverGraphStructure) {
  const Graph g = make_graph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  const Graph b = build_bipartite_cover(g);
  EXPECT_EQ(b.num_vertices(), 6);
  EXPECT_EQ(b.num_edges(), 4);  // two B-edges per G-edge
  EXPECT_TRUE(b.has_edge(0, 1 + 3));
  EXPECT_TRUE(b.has_edge(1, 0 + 3));
  EXPECT_FALSE(b.has_edge(0, 2 + 3));
  ASSERT_TRUE(bipartition(b).has_value());
}

TEST(BipartiteCover, CoverMatchingAtLeastGraphMatching) {
  // Lemma 7.8 first part: mu(G) <= mu(B).
  Rng rng(11);
  for (int i = 0; i < 5; ++i) {
    const Graph g = gen_random_graph(24, 60, rng);
    const Graph b = build_bipartite_cover(g);
    EXPECT_GE(hopcroft_karp(b).size(), maximum_matching_size(g));
  }
}

class CoverTransferTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CoverTransferTest, TransferLosesAtMostFactorSix) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(40, 120, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  std::vector<Vertex> all(40);
  for (Vertex v = 0; v < 40; ++v) all[static_cast<std::size_t>(v)] = v;
  const WeakQueryResult cover = oracle.query_cover(all, all, 0.0);
  const std::vector<Edge> transferred =
      cover_matching_to_graph_matching(40, cover.matching);
  // Validity: a matching in G.
  Matching m(40);
  for (const Edge& e : transferred) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    m.add(e.u, e.v);  // add() asserts disjointness
  }
  // Lemma 7.8: size >= |M_B| / 6.
  EXPECT_GE(6 * static_cast<std::int64_t>(transferred.size()),
            static_cast<std::int64_t>(cover.matching.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverTransferTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(WeakInitialMatching, Lemma67CallBound) {
  Rng rng(5);
  const Graph g = gen_random_graph(100, 400, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  WeakSimConfig cfg;
  const Matching m = weak_initial_matching(100, oracle, cfg);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_TRUE(m.is_maximal_in(g));
  // Greedy-maximal A_weak exhausts the free set in one productive call.
  EXPECT_LE(oracle.calls(), 3);
}

void expect_weak_boosted(const Graph& g, double eps, std::uint64_t seed) {
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  WeakSimConfig cfg;
  cfg.core.eps = eps;
  cfg.core.seed = seed;
  const WeakBoostResult r = static_weak_matching(g, oracle, cfg);
  ASSERT_TRUE(r.matching.is_valid_in(g));
  const std::int64_t mu = maximum_matching_size(g);
  EXPECT_GE(static_cast<double>(r.matching.size()) * (1.0 + eps),
            static_cast<double>(mu))
      << "eps=" << eps << " seed=" << seed;
  EXPECT_GT(r.weak_calls, 0);
}

class StaticWeakTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticWeakTest, RandomGraphs) {
  Rng rng(GetParam());
  expect_weak_boosted(gen_random_graph(90, 270, rng), 0.25, GetParam());
}

TEST_P(StaticWeakTest, PlantedMatchings) {
  Rng rng(GetParam() + 50);
  expect_weak_boosted(gen_planted_matching(80, 120, rng), 0.2, GetParam());
}

TEST_P(StaticWeakTest, ChainsAndCycles) {
  expect_weak_boosted(gen_augmenting_chains(5 + GetParam() % 4, 3), 0.25,
                      GetParam());
  expect_weak_boosted(gen_odd_cycles(4, 5 + 2 * (GetParam() % 3)), 0.25,
                      GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticWeakTest, ::testing::Values(1, 2, 3));

TEST(StaticWeak, SampledOnlyModeStaysReasonable) {
  // Without the deterministic fallback the result is still a good
  // approximation w.h.p. (contaminated arcs are rare).
  Rng rng(9);
  const Graph g = gen_planted_matching(60, 90, rng);
  MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
  WeakSimConfig cfg;
  cfg.core.eps = 0.25;
  cfg.exhaustive_fallback = false;
  cfg.sample_patience = 8;
  const WeakBoostResult r = static_weak_matching(g, oracle, cfg);
  EXPECT_TRUE(r.matching.is_valid_in(g));
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.6,
            static_cast<double>(maximum_matching_size(g)));
  EXPECT_GT(r.sampled_iterations, 0);
}

TEST(DynamicMatcher, InsertOnlySequenceStaysApproximate) {
  const Vertex n = 60;
  MatrixWeakOracle oracle(n);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  DynamicMatcher dm(n, oracle, cfg);
  Rng rng(3);
  const auto updates = dyn_random_updates(n, 300, 1.0, rng);
  for (const EdgeUpdate& up : updates) dm.apply(up);
  const Graph snapshot = dm.graph().snapshot();
  EXPECT_TRUE(dm.matching().is_valid_in(snapshot));
  EXPECT_GE(static_cast<double>(dm.matching().size()) * 1.25,
            static_cast<double>(maximum_matching_size(snapshot)));
  EXPECT_GT(dm.rebuilds(), 0);
}

class DynamicMatcherTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(DynamicMatcherTest, MixedUpdatesCheckedPeriodically) {
  const auto [seed, eps] = GetParam();
  const Vertex n = 50;
  MatrixWeakOracle oracle(n);
  DynamicMatcherConfig cfg;
  cfg.eps = eps;
  cfg.seed = seed;
  DynamicMatcher dm(n, oracle, cfg);
  Rng rng(seed);
  const auto updates = dyn_random_updates(n, 400, 0.7, rng);
  std::int64_t step = 0;
  for (const EdgeUpdate& up : updates) {
    dm.apply(up);
    if (++step % 50 == 0) {
      const Graph snapshot = dm.graph().snapshot();
      ASSERT_TRUE(dm.matching().is_valid_in(snapshot));
      const std::int64_t mu = maximum_matching_size(snapshot);
      // Between rebuilds the matching is maximal (2-approx floor) and the
      // rebuild schedule keeps it within (1+eps) right after each rebuild;
      // at check time the drift is bounded by the budget.
      EXPECT_GE(static_cast<double>(dm.matching().size()) * (1.0 + eps) +
                    std::max<double>(1.0, eps * static_cast<double>(mu) / 2.0),
                static_cast<double>(mu));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DynamicMatcherTest,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u),
                                            ::testing::Values(0.5, 0.25)));

TEST(DynamicMatcher, DeleteMatchedEdgesKeepsMaximalFloor) {
  const Vertex n = 30;
  MatrixWeakOracle oracle(n);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.5;
  cfg.rebuild_every = 1000000;  // effectively disable rebuilds
  DynamicMatcher dm(n, oracle, cfg);
  Rng rng(7);
  // Build a random graph, then delete every currently matched edge repeatedly.
  const auto inserts = dyn_random_updates(n, 120, 1.0, rng);
  for (const EdgeUpdate& up : inserts) dm.apply(up);
  for (int round = 0; round < 5; ++round) {
    const auto edges = dm.matching().edge_list();
    for (const Edge& e : edges)
      if (dm.graph().has_edge(e.u, e.v)) dm.erase(e.u, e.v);
    const Graph snapshot = dm.graph().snapshot();
    ASSERT_TRUE(dm.matching().is_valid_in(snapshot));
    ASSERT_TRUE(dm.matching().is_maximal_in(snapshot));
  }
}

TEST(Problem1, ChunkAndQueryDiscipline) {
  const Vertex n = 40;
  MatrixWeakOracle oracle(n);
  Problem1Instance p1(n, oracle, /*q=*/3, /*lambda=*/0.5, /*delta=*/0.01,
                      /*alpha=*/0.25);
  EXPECT_EQ(p1.chunk_size(), 10);
  EXPECT_THROW((void)p1.query(std::vector<Vertex>{0, 1}), std::invalid_argument);

  std::vector<EdgeUpdate> chunk;
  for (Vertex i = 0; i < 10; ++i)
    chunk.push_back(EdgeUpdate::ins(i, i + 10));
  p1.apply_chunk(chunk);
  EXPECT_EQ(p1.queries_left(), 3);
  std::vector<Vertex> s;
  for (Vertex v = 0; v < 20; ++v) s.push_back(v);
  const WeakQueryResult res = p1.query(s);
  EXPECT_EQ(res.matching.size(), 10u);
  (void)p1.query(s);
  (void)p1.query(s);
  EXPECT_THROW((void)p1.query(s), std::invalid_argument);

  // Wrong chunk size is rejected; empty updates are allowed.
  EXPECT_THROW(p1.apply_chunk(std::vector<EdgeUpdate>(3)), std::invalid_argument);
  std::vector<EdgeUpdate> lazy(10, EdgeUpdate::none());
  p1.apply_chunk(lazy);
  EXPECT_EQ(p1.queries_left(), 3);
}

TEST(DynWorkloads, UpdatesAreAlwaysValid) {
  Rng rng(19);
  for (auto updates :
       {dyn_random_updates(20, 300, 0.6, rng), dyn_sliding_window(20, 40, 300, rng),
        dyn_churn_planted(20, 300, rng)}) {
    DynGraph g(20);
    for (const EdgeUpdate& up : updates) {
      if (up.empty()) continue;
      if (up.insert) {
        EXPECT_TRUE(g.insert(up.u, up.v));
      } else {
        EXPECT_TRUE(g.erase(up.u, up.v));
      }
    }
  }
}

TEST(DynWorkloads, SlidingWindowBoundsLiveEdges) {
  Rng rng(23);
  const auto updates = dyn_sliding_window(30, 25, 500, rng);
  DynGraph g(30);
  for (const EdgeUpdate& up : updates) {
    if (up.insert)
      g.insert(up.u, up.v);
    else
      g.erase(up.u, up.v);
    EXPECT_LE(g.num_edges(), 25);
  }
}

}  // namespace
}  // namespace bmf
