#pragma once

/// Shared cross-engine differential checker for the dynamic replay core.
///
/// Every dynamic engine in the repo is a facade over
/// `DynamicReplayCore<Store>` and promises the same determinism contract:
/// bit-identical matchings (mate by mate), graph, rebuild counts *and
/// positions*, and A_weak call counts versus the sequential `apply` loop, at
/// any (threads x batch-size) for `DynamicMatcher::apply_batch` and any
/// (shards x threads x batch-size) for `ShardedDynamicMatcher`. This header
/// is the one checker behind tests/test_replay_core.cpp,
/// tests/test_dynamic_batch.cpp, tests/test_sharded_dynamic.cpp, and
/// tests/test_rebuild_parallel.cpp — the grid loops live here so no suite
/// carries its own copy.
///
/// `words_touched` (the oracle cost proxy) is asserted *within* an engine
/// family: it is exact and invariant across every grid axis for a fixed
/// oracle type, but the sharded oracle's speculative probes legitimately
/// scan more words than the serial `MatrixWeakOracle`, so the two families
/// are never compared to each other.
///
/// The coordinator message ledger (`CommStats`) has a weaker contract still:
/// per-cell deterministic (pinned by a double run of every sharded k > 1
/// cell) and monotone batch over batch (audited inside `run_sharded`), with
/// all-zero ledgers for the flat engine and the k = 1 sharded engine — but
/// *not* equal across thread counts, because the overlap path's window
/// grouping changes which routing rounds happen where. `RebuildStats`, by
/// contrast, is part of the full bit-identity contract and rides inside
/// `RunResult`.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "dynamic/compressed_store.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/thread_pool.hpp"
#include "workloads/dyn_workload.hpp"

namespace bmf::testdiff {

/// Everything the replay-core determinism contract promises to preserve.
struct RunResult {
  std::vector<Vertex> mates;
  std::int64_t matching_size = 0;
  std::int64_t updates = 0;
  std::int64_t rebuilds = 0;
  std::vector<std::int64_t> rebuild_positions;
  std::int64_t weak_calls = 0;
  RebuildStats rebuild_stats;
  std::int64_t num_edges = 0;
  std::vector<Edge> graph_edges;

  friend bool operator==(const RunResult&, const RunResult&) = default;
};

template <class Engine>
RunResult collect_counters(const Engine& dm, Vertex n) {
  RunResult r;
  for (Vertex v = 0; v < n; ++v) r.mates.push_back(dm.matching().mate(v));
  r.matching_size = dm.matching().size();
  r.updates = dm.updates();
  r.rebuilds = dm.rebuilds();
  r.rebuild_positions = dm.rebuild_positions();
  r.weak_calls = dm.weak_calls();
  r.rebuild_stats = dm.rebuild_stats();
  // Oracle queries only ever happen inside Theorem 6.2 rebuilds, so the
  // folded rebuild counters must reconcile exactly with the engine counters
  // at every grid point.
  EXPECT_EQ(r.rebuild_stats.weak_calls, r.weak_calls);
  EXPECT_EQ(r.rebuild_stats.rebuilds, r.rebuilds);
  // The snapshot export hook is part of the contract the service layer
  // builds on: an exported snapshot must reproduce the live matching mate by
  // mate, so pin it at every grid point the differential suites visit.
  const MatchingSnapshot snap = dm.export_snapshot(r.updates);
  EXPECT_EQ(std::vector<Vertex>(snap.mates().begin(), snap.mates().end()),
            r.mates);
  EXPECT_EQ(snap.size(), r.matching_size);
  EXPECT_EQ(snap.epoch(), r.updates);
  return r;
}

inline RunResult collect(const DynamicMatcher& dm) {
  RunResult r = collect_counters(dm, dm.graph().num_vertices());
  r.num_edges = dm.graph().num_edges();
  const Graph s = dm.graph().snapshot();
  r.graph_edges.assign(s.edges().begin(), s.edges().end());
  // The flat store is single-participant: nothing ever crosses a shard
  // boundary, so its ledger is identically zero at every grid point.
  EXPECT_EQ(dm.comm_stats(), CommStats{});
  return r;
}

inline RunResult collect(const ShardedDynamicMatcher& dm) {
  RunResult r = collect_counters(dm, dm.num_vertices());
  r.num_edges = dm.num_edges();
  const Graph s = dm.snapshot();
  r.graph_edges.assign(s.edges().begin(), s.edges().end());
  return r;
}

inline RunResult collect(const CompressedDynamicMatcher& dm) {
  RunResult r = collect_counters(dm, dm.num_vertices());
  r.num_edges = dm.num_edges();
  const Graph s = dm.snapshot();
  r.graph_edges.assign(s.edges().begin(), s.edges().end());
  // Single participant, like the flat store: the ledger is identically zero.
  EXPECT_EQ(dm.comm_stats(), CommStats{});
  // snapshot() folds pending deltas, so by this point the buffers are empty
  // and the CSR body holds exactly the live edge set.
  EXPECT_EQ(dm.store().delta_entries(), 0);
  return r;
}

/// The reference semantics: the one-at-a-time sequential apply loop over the
/// flat engine.
inline RunResult run_sequential(Vertex n, std::span<const EdgeUpdate> ups,
                                const DynamicMatcherConfig& cfg,
                                std::int64_t* words_out = nullptr) {
  MatrixWeakOracle oracle(n);
  DynamicMatcher dm(n, oracle, cfg);
  for (const EdgeUpdate& up : ups) dm.apply(up);
  if (words_out != nullptr) *words_out = oracle.words_touched();
  return collect(dm);
}

/// Batched flat engine at one grid point. Audits words_touched monotonicity
/// batch over batch and reports the final count; `stats_out` (optional)
/// receives the rebuild-overlap coverage counters.
inline RunResult run_flat_batched(Vertex n, std::span<const EdgeUpdate> ups,
                                  DynamicMatcherConfig cfg, int threads,
                                  std::int64_t batch_size,
                                  std::int64_t* words_out = nullptr,
                                  ReplayOverlapStats* stats_out = nullptr) {
  // The size gates are perf-only; disable them so the batched paths fan out
  // on test-sized inputs (the differential suites also run under TSan).
  const ForceParallelSmallWork force;
  cfg.threads = threads;
  MatrixWeakOracle oracle(n);
  DynamicMatcher dm(n, oracle, cfg);
  std::int64_t last_words = 0;
  for (const auto& batch : slice_updates(ups, batch_size)) {
    dm.apply_batch(batch);
    EXPECT_GE(oracle.words_touched(), last_words);
    last_words = oracle.words_touched();
  }
  if (words_out != nullptr) *words_out = oracle.words_touched();
  if (stats_out != nullptr) *stats_out = dm.overlap_stats();
  return collect(dm);
}

/// Sharded engine at one grid point. The shared `DynamicCoreConfig` base is
/// copied wholesale — no ad-hoc field forwarding.
inline RunResult run_sharded(Vertex n, std::span<const EdgeUpdate> ups,
                             const DynamicMatcherConfig& base, int shards,
                             int threads, std::int64_t batch_size,
                             std::int64_t* words_out = nullptr,
                             ReplayOverlapStats* stats_out = nullptr,
                             CommStats* comm_out = nullptr) {
  const ForceParallelSmallWork force;
  ShardedMatcherConfig cfg;
  static_cast<DynamicCoreConfig&>(cfg) = base;
  cfg.shards = shards;
  cfg.threads = threads;
  ShardedDynamicMatcher dm(n, cfg);
  std::int64_t last_words = 0;
  CommStats last_comm;
  for (const auto& batch : slice_updates(ups, batch_size)) {
    dm.apply_batch(batch);
    EXPECT_GE(dm.oracle().words_touched(), last_words);
    last_words = dm.oracle().words_touched();
    // The ledger is an accumulator: every field is monotone batch over batch.
    const CommStats comm = dm.comm_stats();
    EXPECT_GE(comm.batch_bytes, last_comm.batch_bytes);
    EXPECT_GE(comm.batch_rounds, last_comm.batch_rounds);
    EXPECT_GE(comm.rebuild_bytes, last_comm.rebuild_bytes);
    EXPECT_GE(comm.rebuild_rounds, last_comm.rebuild_rounds);
    last_comm = comm;
  }
  if (words_out != nullptr) *words_out = last_words;
  if (stats_out != nullptr) *stats_out = dm.overlap_stats();
  if (comm_out != nullptr) *comm_out = dm.comm_stats();
  return collect(dm);
}

/// Compressed (CSR + delta buffer) engine at one grid point. Shares the flat
/// family's MatrixWeakOracle, so its words_touched joins the flat-family
/// invariance assertion. Audits words monotonicity batch over batch and the
/// delta-buffer invariant that folds only ever happen at rebuild boundaries.
inline RunResult run_compressed(Vertex n, std::span<const EdgeUpdate> ups,
                                const DynamicMatcherConfig& base, int threads,
                                std::int64_t batch_size,
                                std::int64_t* words_out = nullptr,
                                ReplayOverlapStats* stats_out = nullptr) {
  const ForceParallelSmallWork force;
  CompressedMatcherConfig cfg;
  static_cast<DynamicCoreConfig&>(cfg) = base;
  cfg.threads = threads;
  CompressedDynamicMatcher dm(n, cfg);
  std::int64_t last_words = 0;
  std::int64_t last_merges = 0;
  for (const auto& batch : slice_updates(ups, batch_size)) {
    dm.apply_batch(batch);
    EXPECT_GE(dm.matrix_oracle().words_touched(), last_words);
    last_words = dm.matrix_oracle().words_touched();
    // Folds happen at rebuild boundaries only: the merge counter can never
    // outrun the rebuild counter.
    const CompressedStoreStats& ss = dm.store().store_stats();
    EXPECT_GE(ss.merges, last_merges);
    EXPECT_LE(ss.merges, dm.rebuilds());
    last_merges = ss.merges;
  }
  if (words_out != nullptr) *words_out = last_words;
  if (stats_out != nullptr) *stats_out = dm.overlap_stats();
  return collect(dm);
}

/// Grid axes for expect_all_engines_equal. Defaults are the canonical
/// acceptance grid; suites narrow or widen them per scenario.
struct GridOptions {
  std::vector<int> flat_threads = {1, 2, 8};
  std::vector<std::int64_t> flat_batch_sizes = {64};
  /// Also run the flat grid with overlap_rebuild = false (both settings are
  /// bit-identical by contract).
  bool overlap_axis = false;
  std::vector<int> shard_counts = {1, 2, 4};
  std::vector<int> sharded_threads = {1, 2, 8};
  std::vector<std::int64_t> sharded_batch_sizes = {64};
  std::int64_t min_rebuilds = 1;
  /// Skip the sharded half (for suites focused on the flat engine).
  bool run_sharded_grid = true;
  std::vector<int> compressed_threads = {1, 2, 8};
  std::vector<std::int64_t> compressed_batch_sizes = {64};
  /// Skip the compressed (CSR + delta buffer) leg.
  bool run_compressed_grid = true;
};

/// The single loop: sequential reference, then every flat (threads x batch)
/// point, then every sharded (shards x threads x batch) point, asserting the
/// full RunResult (including rebuild positions) agrees everywhere and that
/// words_touched is invariant within each engine family.
inline void expect_all_engines_equal(Vertex n, std::span<const EdgeUpdate> ups,
                                     const DynamicMatcherConfig& cfg,
                                     const GridOptions& opt = {}) {
  std::int64_t flat_words = -1;
  const RunResult want = run_sequential(n, ups, cfg, &flat_words);
  EXPECT_GE(want.rebuilds, opt.min_rebuilds)
      << "stream too small to exercise rebuilds";

  for (const bool overlap : opt.overlap_axis ? std::vector<bool>{true, false}
                                             : std::vector<bool>{true})
    for (const int threads : opt.flat_threads)
      for (const std::int64_t batch_size : opt.flat_batch_sizes) {
        DynamicMatcherConfig fcfg = cfg;
        fcfg.overlap_rebuild = overlap && cfg.overlap_rebuild;
        std::int64_t words = 0;
        const RunResult got =
            run_flat_batched(n, ups, fcfg, threads, batch_size, &words);
        EXPECT_EQ(got, want) << "flat threads=" << threads
                             << " batch=" << batch_size << " overlap=" << overlap;
        // One oracle family, one query schedule: the exact words count is
        // invariant across the whole flat grid including the serial loop.
        EXPECT_EQ(words, flat_words)
            << "flat threads=" << threads << " batch=" << batch_size;
      }

  if (opt.run_compressed_grid)
    for (const int threads : opt.compressed_threads)
      for (const std::int64_t batch_size : opt.compressed_batch_sizes) {
        std::int64_t words = 0;
        const RunResult got =
            run_compressed(n, ups, cfg, threads, batch_size, &words);
        EXPECT_EQ(got, want) << "compressed threads=" << threads
                             << " batch=" << batch_size;
        // The compressed store drives the same MatrixWeakOracle over the
        // same query schedule, so its words count joins the flat family's
        // exact invariance — storage layout must not change probe cost.
        EXPECT_EQ(words, flat_words)
            << "compressed threads=" << threads << " batch=" << batch_size;
      }

  if (!opt.run_sharded_grid) return;
  std::int64_t sharded_words = -1;
  for (const int shards : opt.shard_counts)
    for (const int threads : opt.sharded_threads)
      for (const std::int64_t batch_size : opt.sharded_batch_sizes) {
        std::int64_t words = 0;
        CommStats comm;
        const RunResult got = run_sharded(n, ups, cfg, shards, threads,
                                          batch_size, &words, nullptr, &comm);
        EXPECT_EQ(got, want) << "shards=" << shards << " threads=" << threads
                             << " batch=" << batch_size;
        // The speculative probe schedule is deterministic, so the sharded
        // words count is invariant across its whole grid (but legitimately
        // differs from the flat oracle's).
        if (sharded_words < 0) sharded_words = words;
        EXPECT_EQ(words, sharded_words)
            << "shards=" << shards << " threads=" << threads
            << " batch=" << batch_size;
        if (shards == 1) {
          // No boundary to cross: the one-shard engine's ledger is all-zero,
          // exactly like the flat engine's.
          EXPECT_EQ(comm, CommStats{}) << "threads=" << threads;
        } else {
          // Real shards move real bytes: every rebuild distributes the
          // snapshot and gathers sweep candidates, so the rebuild side alone
          // accounts for at least one round per rebuild.
          EXPECT_GT(comm.coord_bytes(), 0)
              << "shards=" << shards << " threads=" << threads;
          EXPECT_GT(comm.coord_rounds(), 0)
              << "shards=" << shards << " threads=" << threads;
          EXPECT_GE(comm.rebuild_rounds, got.rebuilds)
              << "shards=" << shards << " threads=" << threads;
          // The ledger is NOT bit-identical across cells, but it is
          // deterministic within one: a second run of the same cell must
          // reproduce it field for field (and the whole RunResult with it).
          CommStats comm2;
          const RunResult again = run_sharded(n, ups, cfg, shards, threads,
                                              batch_size, nullptr, nullptr,
                                              &comm2);
          EXPECT_EQ(again, got) << "shards=" << shards << " threads=" << threads;
          EXPECT_EQ(comm2, comm)
              << "comm ledger diverged on identical replay: shards=" << shards
              << " threads=" << threads << " batch=" << batch_size;
        }
      }
}

}  // namespace bmf::testdiff
