/// Unified suite for the shared dynamic replay core (replay_core.hpp):
///
///  * ReplayCoreDifferential — the cross-engine fuzz/differential harness:
///    one composite update stream per seed (every dyn_* workload shape plus
///    the new mixed-churn shape) driven through the sequential apply loop,
///    `DynamicMatcher::apply_batch` at 1/2/8 threads,
///    `CompressedDynamicMatcher` (CSR + delta buffers, compressed_store.hpp)
///    at 1/2/8 threads, and `ShardedDynamicMatcher` at {1,2,4} shards x
///    {1,2,8} threads in a single loop (tests/differential_util.hpp),
///    asserting matchings, rebuild positions, weak-call counts, and
///    within-family words_touched agree at every grid point (the compressed
///    store shares the flat family's MatrixWeakOracle, so it joins the flat
///    words invariance exactly);
///  * ReplayCoreGoldenTrace — byte-exact golden records (seed, stream
///    digest, rebuild positions, final matching hash) for six canonical
///    workloads, so a silent replay-core behavior change fails even if all
///    engines drift together (regenerate with BMF_UPDATE_GOLDEN=1);
///  * ReplayCoreOverlap — property tests for the light/heavy deletion
///    pre-classifier behind rebuild/update overlap: planted mispredictions
///    proving the post-join fixup restores sequential results, and coverage
///    counters showing deletion windows genuinely overlap;
///  * ReplayCoreConfig — death/invariant tests for the shared
///    `DynamicCoreConfig` (0 shards, shards > n, negative threads, ...).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <type_traits>
#include <vector>

#include "differential_util.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/replay_core.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/dyn_workload.hpp"

namespace bmf {
namespace {

using testdiff::GridOptions;
using testdiff::RunResult;

// ---------------------------------------------------------------------------
// Cross-engine differential fuzz over one composite stream per seed.
// ---------------------------------------------------------------------------

/// One stream that visits every workload shape back to back. Segments after
/// the first start from a non-empty graph, so duplicate insertions and
/// absent-edge deletions appear naturally — valid no-op updates that the
/// engines must count identically.
std::vector<EdgeUpdate> composite_stream(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeUpdate> ups;
  const auto append = [&](std::vector<EdgeUpdate> seg) {
    ups.insert(ups.end(), seg.begin(), seg.end());
  };
  append(dyn_random_updates(48, 70, 0.7, rng));
  append(dyn_sliding_window(48, 30, 55, rng));
  append(dyn_churn_planted(48, 55, rng));
  append(dyn_planted_teardown(12, 3, rng));  // vertices [0, 27)
  append(dyn_shard_partitioned(48, 4, 60, 0.6, 0.7, rng));
  append(dyn_mixed_churn(48, 70, rng));
  ups.push_back(EdgeUpdate::none());
  return ups;
}

class ReplayCoreDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayCoreDifferential, CompositeStreamAllEnginesAllGridPoints) {
  const auto ups = composite_stream(GetParam());
  DynamicMatcherConfig cfg;
  cfg.eps = 0.5;
  cfg.seed = GetParam();
  GridOptions opt;
  opt.flat_batch_sizes = {7, 64};
  testdiff::expect_all_engines_equal(48, ups, cfg, opt);
}

TEST_P(ReplayCoreDifferential, MixedChurnFixedCadence) {
  // The new shape on its own, with a fixed rebuild cadence so overlap
  // windows (including deletion windows) recur throughout the stream.
  Rng rng(GetParam() + 40);
  const auto ups = dyn_mixed_churn(40, 320, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = GetParam();
  cfg.rebuild_every = 14;
  GridOptions opt;
  opt.min_rebuilds = 5;
  testdiff::expect_all_engines_equal(40, ups, cfg, opt);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplayCoreDifferential,
                         ::testing::Values(1u, 2u, 3u));

TEST(ReplayCoreStats, RebuildStatsFoldAcrossOverlapAndSerialPaths) {
  // rebuild_stats() folds every boost the core ran — serial rebuilds and
  // overlapped ones alike — and is part of the bit-identity contract, read
  // here through the abstract ReplayEngine surface. The flat engine's comm
  // ledger stays identically zero on every path.
  Rng rng(31);
  const auto ups = dyn_mixed_churn(40, 320, rng);
  RebuildStats want;
  bool first = true;
  for (const bool overlap : {true, false})
    for (const int threads : {1, 8}) {
      const ForceParallelSmallWork force;
      DynamicMatcherConfig cfg;
      cfg.eps = 0.25;
      cfg.seed = 31;
      cfg.rebuild_every = 14;
      cfg.threads = threads;
      cfg.overlap_rebuild = overlap;
      MatrixWeakOracle oracle(40);
      DynamicMatcher dm(40, oracle, cfg);
      for (const auto& batch : slice_updates(ups, 64)) dm.apply_batch(batch);
      const ReplayEngine& engine = dm;
      const RebuildStats got = engine.rebuild_stats();
      EXPECT_EQ(got.rebuilds, engine.rebuilds());
      EXPECT_EQ(got.weak_calls, engine.weak_calls());
      EXPECT_GT(got.rebuilds, 0);
      EXPECT_LE(got.certified, got.rebuilds);
      EXPECT_EQ(engine.comm_stats(), CommStats{})
          << "overlap=" << overlap << " threads=" << threads;
      if (first) {
        want = got;
        first = false;
      }
      EXPECT_EQ(got, want) << "overlap=" << overlap << " threads=" << threads;
    }
}

TEST(ReplayCoreDifferential, MixedChurnStreamIsValid) {
  Rng rng(21);
  const auto ups = dyn_mixed_churn(32, 400, rng);
  ASSERT_EQ(ups.size(), 400u);
  DynGraph g(32);
  std::int64_t inserts = 0, deletions = 0;
  for (const EdgeUpdate& up : ups) {
    if (up.insert) {
      EXPECT_TRUE(g.insert(up.u, up.v));
      ++inserts;
    } else {
      EXPECT_TRUE(g.erase(up.u, up.v));
      ++deletions;
    }
  }
  // All four phases ran: the stream both grows and churns.
  EXPECT_GT(inserts, 100);
  EXPECT_GT(deletions, 100);
}

// ---------------------------------------------------------------------------
// Golden-trace regression: byte-exact records for canonical workloads.
// ---------------------------------------------------------------------------

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t value) {
  for (int b = 0; b < 8; ++b) {
    h ^= (value >> (8 * b)) & 0xffu;
    h *= 1099511628211ull;
  }
  return h;
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;

std::uint64_t stream_digest(std::span<const EdgeUpdate> ups) {
  std::uint64_t h = kFnvOffset;
  for (const EdgeUpdate& up : ups) {
    h = fnv1a(h, static_cast<std::uint64_t>(up.u));
    h = fnv1a(h, static_cast<std::uint64_t>(up.v));
    h = fnv1a(h, up.insert ? 1 : 0);
  }
  return h;
}

std::uint64_t int_list_digest(std::span<const std::int64_t> xs) {
  std::uint64_t h = kFnvOffset;
  for (const std::int64_t x : xs) h = fnv1a(h, static_cast<std::uint64_t>(x));
  return h;
}

std::uint64_t mates_digest(std::span<const Vertex> mates) {
  std::uint64_t h = kFnvOffset;
  for (const Vertex m : mates) h = fnv1a(h, static_cast<std::uint64_t>(m));
  return h;
}

struct GoldenCase {
  const char* name;
  std::uint64_t seed;
  Vertex n;
  double eps;
  std::int64_t rebuild_every;
  std::vector<EdgeUpdate> ups;
};

std::vector<GoldenCase> golden_cases() {
  std::vector<GoldenCase> cases;
  {
    Rng rng(11);
    cases.push_back({"random_mixed", 11, 40, 0.5, 0,
                     dyn_random_updates(40, 300, 0.7, rng)});
  }
  {
    Rng rng(12);
    cases.push_back({"deletion_heavy", 12, 40, 1.0, 0,
                     dyn_random_updates(40, 300, 0.45, rng)});
  }
  {
    Rng rng(13);
    cases.push_back({"sliding_window", 13, 40, 0.5, 0,
                     dyn_sliding_window(40, 50, 250, rng)});
  }
  {
    Rng rng(14);
    cases.push_back(
        {"churn_planted", 14, 40, 0.5, 0, dyn_churn_planted(40, 250, rng)});
  }
  {
    Rng rng(15);
    cases.push_back({"planted_teardown", 15, 2 * 14 + 3, 1.0, 0,
                     dyn_planted_teardown(14, 3, rng)});
  }
  {
    Rng rng(16);
    cases.push_back(
        {"mixed_churn", 16, 48, 0.25, 16, dyn_mixed_churn(48, 300, rng)});
  }
  return cases;
}

std::string trace_line(const GoldenCase& c) {
  DynamicMatcherConfig cfg;
  cfg.eps = c.eps;
  cfg.seed = c.seed;
  cfg.rebuild_every = c.rebuild_every;
  const RunResult r = testdiff::run_sequential(c.n, c.ups, cfg);
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "%s seed=%llu stream=%016llx updates=%lld rebuilds=%lld "
                "positions=%016llx matching=%016llx size=%lld weak_calls=%lld",
                c.name, static_cast<unsigned long long>(c.seed),
                static_cast<unsigned long long>(stream_digest(c.ups)),
                static_cast<long long>(r.updates),
                static_cast<long long>(r.rebuilds),
                static_cast<unsigned long long>(
                    int_list_digest(r.rebuild_positions)),
                static_cast<unsigned long long>(mates_digest(r.mates)),
                static_cast<long long>(r.matching_size),
                static_cast<long long>(r.weak_calls));
  return buf;
}

std::string golden_path() {
  return std::string(BMF_TEST_DATA_DIR) + "/golden/dynamic_traces.txt";
}

TEST(ReplayCoreGoldenTrace, CanonicalWorkloadsMatchRecordedTraces) {
  std::vector<std::string> lines;
  for (const GoldenCase& c : golden_cases()) lines.push_back(trace_line(c));

  // NOLINTNEXTLINE(concurrency-mt-unsafe) -- read-only env probe before any
  // thread exists; regeneration mode is a single-threaded dev invocation.
  if (std::getenv("BMF_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::trunc);
    ASSERT_TRUE(out.is_open()) << "cannot write " << golden_path();
    for (const std::string& line : lines) out << line << "\n";
    GTEST_SKIP() << "golden file regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.is_open())
      << "missing " << golden_path()
      << " — regenerate with BMF_UPDATE_GOLDEN=1 ./bmf_tests "
         "--gtest_filter='*GoldenTrace*'";
  std::vector<std::string> want;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) want.push_back(line);
  ASSERT_EQ(want.size(), lines.size()) << "golden file is stale";
  for (std::size_t i = 0; i < lines.size(); ++i)
    EXPECT_EQ(lines[i], want[i])
        << "golden trace drifted — if the change is intentional, regenerate "
           "with BMF_UPDATE_GOLDEN=1 and justify the diff in the PR";
}

// ---------------------------------------------------------------------------
// Rebuild-overlap deletion classifier: planted scenarios + coverage.
// ---------------------------------------------------------------------------

struct OverlapRun {
  RunResult result;
  ReplayOverlapStats stats;
};

OverlapRun run_flat_overlap(Vertex n, std::span<const EdgeUpdate> ups,
                            const DynamicMatcherConfig& base, int threads,
                            std::int64_t batch_size) {
  OverlapRun out;
  out.result = testdiff::run_flat_batched(n, ups, base, threads, batch_size,
                                          /*words_out=*/nullptr, &out.stats);
  return out;
}

OverlapRun run_sharded_overlap(Vertex n, std::span<const EdgeUpdate> ups,
                               const DynamicMatcherConfig& base, int shards,
                               int threads, std::int64_t batch_size) {
  OverlapRun out;
  out.result = testdiff::run_sharded(n, ups, base, shards, threads, batch_size,
                                     /*words_out=*/nullptr, &out.stats);
  return out;
}

TEST(ReplayCoreOverlap, PlantedMispredictionTakesSerialFixup) {
  // Path 0-1-2-3 with (1,2) greedily matched; the rebuild at update 5 boosts
  // to {(0,1), (2,3)}, flipping (0,1) from unmatched to matched. The next
  // window's del(0,1) is therefore pre-classified light but proves heavy
  // after the join — the fixup must rewind the overlapped ins(4,5), take the
  // sequential heavy repair, and reapply the suffix, bit-identically.
  const Vertex n = 6;
  std::vector<EdgeUpdate> ups{EdgeUpdate::ins(1, 2), EdgeUpdate::ins(0, 1),
                              EdgeUpdate::ins(2, 3), EdgeUpdate::none(),
                              EdgeUpdate::none(),    EdgeUpdate::del(0, 1),
                              EdgeUpdate::ins(4, 5)};
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.rebuild_every = 5;
  const RunResult want = testdiff::run_sequential(n, ups, cfg);
  ASSERT_EQ(want.rebuilds, 1);
  ASSERT_EQ(want.rebuild_positions, (std::vector<std::int64_t>{5}));
  // The sequential semantics this scenario plants: the boosted (0,1) is torn
  // down again and (4,5) matches.
  EXPECT_EQ(want.mates[2], 3);
  EXPECT_EQ(want.mates[4], 5);
  EXPECT_EQ(want.mates[0], kNoVertex);
  EXPECT_EQ(want.mates[1], kNoVertex);

  for (const int threads : {2, 8}) {
    const OverlapRun got =
        run_flat_overlap(n, ups, cfg, threads, static_cast<std::int64_t>(ups.size()));
    EXPECT_EQ(got.result, want) << "threads=" << threads;
    EXPECT_EQ(got.stats.deletion_mispredictions, 1) << "threads=" << threads;
    EXPECT_EQ(got.stats.overlapped_rebuilds, 1);
    EXPECT_EQ(got.stats.overlap_windows_with_deletions, 1);
  }
  // The sharded facade runs the identical core: same fixup, same counters.
  for (const int shards : {2, 4}) {
    const OverlapRun got = run_sharded_overlap(
        n, ups, cfg, shards, 2, static_cast<std::int64_t>(ups.size()));
    EXPECT_EQ(got.result, want) << "shards=" << shards;
    EXPECT_EQ(got.stats.deletion_mispredictions, 1) << "shards=" << shards;
  }
}

TEST(ReplayCoreOverlap, ValidatedLightDeletionOverlapsWithoutFixup) {
  // Same shape plus a (1,3) chord that stays unmatched across the rebuild:
  // its deletion is pre-classified light, the validation confirms it, and
  // the window keeps going past the deletion (the PR 3 engine would have
  // stopped the overlap there).
  const Vertex n = 8;
  std::vector<EdgeUpdate> ups{EdgeUpdate::ins(1, 2), EdgeUpdate::ins(0, 1),
                              EdgeUpdate::ins(2, 3), EdgeUpdate::ins(1, 3),
                              EdgeUpdate::none(),    EdgeUpdate::del(1, 3),
                              EdgeUpdate::ins(4, 5), EdgeUpdate::ins(6, 7)};
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.rebuild_every = 5;
  const RunResult want = testdiff::run_sequential(n, ups, cfg);
  ASSERT_EQ(want.rebuilds, 1);
  EXPECT_EQ(want.matching_size, 4);  // {01, 23, 45, 67}

  for (const int threads : {2, 8}) {
    const OverlapRun got =
        run_flat_overlap(n, ups, cfg, threads, static_cast<std::int64_t>(ups.size()));
    EXPECT_EQ(got.result, want) << "threads=" << threads;
    EXPECT_EQ(got.stats.deletion_mispredictions, 0) << "threads=" << threads;
    EXPECT_EQ(got.stats.overlap_windows_with_deletions, 1);
    EXPECT_EQ(got.stats.overlapped_deletions, 1);
    // The window consumed updates beyond the deletion.
    EXPECT_EQ(got.stats.overlapped_updates, 3);
  }
}

TEST(ReplayCoreOverlap, DeletionWindowsOverlapOnRandomStreams) {
  // The acceptance gate for the ROADMAP follow-up: under ForceParallelSmallWork
  // overlapped windows containing deletions must actually occur on generated
  // streams, with results bit-identical to the sequential loop throughout —
  // on both engine facades.
  Rng rng(77);
  const auto ups = dyn_random_updates(40, 450, 0.85, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = 77;
  cfg.rebuild_every = 16;
  const RunResult want = testdiff::run_sequential(40, ups, cfg);
  ASSERT_GT(want.rebuilds, 10);

  const OverlapRun flat = run_flat_overlap(40, ups, cfg, 8, 64);
  EXPECT_EQ(flat.result, want);
  EXPECT_GT(flat.stats.overlap_windows, 0);
  EXPECT_GT(flat.stats.overlap_windows_with_deletions, 0);
  EXPECT_GT(flat.stats.overlapped_deletions, 0);

  const OverlapRun sharded = run_sharded_overlap(40, ups, cfg, 4, 8, 64);
  EXPECT_EQ(sharded.result, want);
  EXPECT_GT(sharded.stats.overlap_windows_with_deletions, 0);
  EXPECT_EQ(sharded.stats.overlap_windows, flat.stats.overlap_windows);
  EXPECT_EQ(sharded.stats.deletion_mispredictions,
            flat.stats.deletion_mispredictions);
}

TEST(ReplayCoreOverlap, MispredictionFuzzRestoresSequentialResults) {
  // Churn keeps mu near-perfect while the witness moves, so rebuilds
  // regularly re-match edges that were unmatched before them — planted
  // mispredictions at generated positions. Equality at every point is the
  // fixup proof; the counter shows the path genuinely ran.
  std::int64_t total_mispredictions = 0;
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    Rng rng(seed);
    const auto ups = dyn_churn_planted(32, 260, rng);
    DynamicMatcherConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = seed;
    cfg.rebuild_every = 9;
    const RunResult want = testdiff::run_sequential(32, ups, cfg);
    for (const int threads : {2, 8}) {
      const OverlapRun got = run_flat_overlap(32, ups, cfg, threads,
                                              static_cast<std::int64_t>(ups.size()));
      EXPECT_EQ(got.result, want) << "seed=" << seed << " threads=" << threads;
      total_mispredictions += got.stats.deletion_mispredictions;
    }
  }
  EXPECT_GT(total_mispredictions, 0)
      << "streams never exercised the misprediction fixup — retune the fuzz";
}

// ---------------------------------------------------------------------------
// Shared config: one struct, one validation, one death test.
// ---------------------------------------------------------------------------

static_assert(std::is_base_of_v<DynamicCoreConfig, DynamicMatcherConfig> &&
                  std::is_base_of_v<DynamicCoreConfig, ShardedMatcherConfig>,
              "both facades must share the replay-core config");

TEST(ReplayCoreConfig, InvalidKnobsAreRejectedAtConstruction) {
  MatrixWeakOracle oracle(8);
  {
    DynamicMatcherConfig cfg;
    cfg.eps = 0.0;
    EXPECT_THROW(DynamicMatcher(8, oracle, cfg), std::invalid_argument);
    cfg.eps = 1.5;
    EXPECT_THROW(DynamicMatcher(8, oracle, cfg), std::invalid_argument);
  }
  {
    DynamicMatcherConfig cfg;
    cfg.threads = -1;
    EXPECT_THROW(DynamicMatcher(8, oracle, cfg), std::invalid_argument);
  }
  {
    DynamicMatcherConfig cfg;
    cfg.rebuild_every = -5;
    EXPECT_THROW(DynamicMatcher(8, oracle, cfg), std::invalid_argument);
  }
  {
    ShardedMatcherConfig cfg;
    cfg.shards = 0;
    EXPECT_THROW(ShardedDynamicMatcher(8, cfg), std::invalid_argument);
  }
  {
    ShardedMatcherConfig cfg;
    cfg.threads = -2;
    EXPECT_THROW(ShardedDynamicMatcher(8, cfg), std::invalid_argument);
  }
  {
    ShardedMatcherConfig cfg;
    cfg.eps = -0.25;
    EXPECT_THROW(ShardedDynamicMatcher(8, cfg), std::invalid_argument);
  }
}

TEST(ReplayCoreConfig, MoreShardsThanVerticesIsLegalAndBitIdentical) {
  Rng rng(9);
  // Deletion-biased: n = 6 has only 15 possible edges, and the generator
  // spins if the live set saturates.
  const auto ups = dyn_random_updates(6, 120, 0.45, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.5;
  cfg.seed = 9;
  const RunResult want = testdiff::run_sequential(6, ups, cfg);
  for (const int shards : {8, 16}) {
    const RunResult got = testdiff::run_sharded(6, ups, cfg, shards, 2, 32);
    EXPECT_EQ(got, want) << "shards=" << shards;
  }
}

TEST(ReplayCoreConfig, SharedBaseCopiesWholesaleAcrossFacades) {
  // The sharded runner copies the whole DynamicCoreConfig base (no ad-hoc
  // field forwarding); a knob set on the flat config must reach the sharded
  // engine. rebuild_every is observable through rebuild positions.
  Rng rng(31);
  const auto ups = dyn_random_updates(24, 160, 0.8, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = 31;
  cfg.rebuild_every = 13;
  cfg.overlap_rebuild = false;
  const RunResult want = testdiff::run_sequential(24, ups, cfg);
  ASSERT_GT(want.rebuilds, 3);
  for (const std::int64_t p : want.rebuild_positions) EXPECT_EQ(p % 13, 0);
  const RunResult got = testdiff::run_sharded(24, ups, cfg, 3, 2, 40);
  EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------------------
// AdjacencyStore contract sufficiency (replay_core.hpp concepts).
// ---------------------------------------------------------------------------

/// Implements exactly the documented AdjacencyStorePolicy surface and nothing
/// else — no graph() accessor, no facade, no extras. If this store drives the
/// core bit-identically to the flat engine, the written contract is
/// *sufficient*; the compile-fail harness (tests/compile_fail/) proves each
/// member is *necessary*. Together they pin the contract from both sides.
class MinimalStore {
 public:
  MinimalStore(Vertex n, WeakOracle& oracle) : g_(n), oracle_(oracle) {}

  [[nodiscard]] Vertex num_vertices() const { return g_.num_vertices(); }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const { return g_.has_edge(u, v); }
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return g_.neighbors(v);
  }
  [[nodiscard]] Graph snapshot() const { return g_.snapshot(); }
  [[nodiscard]] WeakOracle& oracle() { return oracle_; }
  [[nodiscard]] bool use_batch_engine(int threads) const { return threads > 1; }

  bool toggle(const EdgeUpdate& up) {
    const bool changed = up.insert ? g_.insert(up.u, up.v) : g_.erase(up.u, up.v);
    if (changed) {
      if (up.insert)
        oracle_.on_insert(up.u, up.v);
      else
        oracle_.on_erase(up.u, up.v);
    }
    return changed;
  }

  void apply_structural(std::span<const EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads) {
    g_.apply_structural_disjoint(updates, structural, threads);
    oracle_.on_batch(updates, structural, threads);
  }
  void apply_adjacency(std::span<const EdgeUpdate> updates,
                       std::span<const std::uint8_t> structural, int threads) {
    g_.apply_structural_disjoint(updates, structural, threads);
  }
  void flush_oracle(std::span<const EdgeUpdate> updates,
                    std::span<const std::uint8_t> structural, int threads) {
    oracle_.on_batch(updates, structural, threads);
  }

  [[nodiscard]] RebuildParticipation& rebuild_participation() {
    return participation_;
  }
  [[nodiscard]] CommStats comm_stats() const { return {}; }

 private:
  DynGraph g_;
  WeakOracle& oracle_;
  FlatRebuildParticipation participation_;
};

static_assert(AdjacencyStorePolicy<MinimalStore>,
              "the documented contract surface must satisfy the concept");

TEST(ReplayCoreContract, MinimalStoreIsSufficientAndBitIdentical) {
  constexpr Vertex n = 40;
  Rng rng(77);
  const auto ups = dyn_mixed_churn(n, 320, rng);

  // Reference: the flat facade on the serial apply loop.
  DynamicMatcherConfig ref_cfg;
  ref_cfg.eps = 0.25;
  ref_cfg.seed = 77;
  ref_cfg.rebuild_every = 14;
  ref_cfg.threads = 1;
  MatrixWeakOracle ref_oracle(n);
  DynamicMatcher ref(n, ref_oracle, ref_cfg);
  for (const auto& up : ups) ref.apply(up);
  ASSERT_GT(ref.rebuilds(), 0);

  for (const int threads : {1, 8}) {
    const ForceParallelSmallWork force;
    DynamicCoreConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 77;
    cfg.rebuild_every = 14;
    cfg.threads = threads;
    validate_core_config(cfg, /*shards=*/1, "MinimalStore");
    MatrixWeakOracle oracle(n);
    MinimalStore store(n, oracle);
    DynamicReplayCore<MinimalStore> core(store, resolve_core_config(cfg));
    for (const auto& batch : slice_updates(ups, 64)) core.apply_batch(batch);

    EXPECT_EQ(core.rebuild_positions(), ref.rebuild_positions())
        << "threads=" << threads;
    EXPECT_EQ(core.rebuild_stats(), ref.rebuild_stats()) << "threads=" << threads;
    EXPECT_EQ(core.matching().size(), ref.matching().size());
    for (Vertex v = 0; v < n; ++v)
      EXPECT_EQ(core.matching().mate(v), ref.matching().mate(v))
          << "threads=" << threads << " v=" << v;
  }
}

}  // namespace
}  // namespace bmf
