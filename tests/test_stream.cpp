#include <gtest/gtest.h>

#include "matching/blossom_exact.hpp"
#include "stream/edge_stream.hpp"
#include "stream/streaming_matcher.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

TEST(EdgeStream, CountsPassesAndDeliversAllEdges) {
  Rng rng(1);
  const Graph g = gen_random_graph(30, 60, rng);
  EdgeStream stream(g);
  EXPECT_EQ(stream.passes(), 0);
  std::int64_t seen = 0;
  stream.for_each_pass([&](const Edge&) { ++seen; });
  EXPECT_EQ(seen, g.num_edges());
  EXPECT_EQ(stream.passes(), 1);
  stream.for_each_pass([&](const Edge&) {});
  EXPECT_EQ(stream.passes(), 2);
}

TEST(EdgeStream, ShuffledPassesPermuteOrder) {
  Rng rng(2);
  const Graph g = gen_random_graph(40, 200, rng);
  EdgeStream stream(g, /*shuffle_each_pass=*/true, 7);
  std::vector<Edge> first, second;
  stream.for_each_pass([&](const Edge& e) { first.push_back(e); });
  stream.for_each_pass([&](const Edge& e) { second.push_back(e); });
  EXPECT_NE(first, second);  // astronomically unlikely to coincide
  auto sort_edges = [](std::vector<Edge>& v) {
    std::sort(v.begin(), v.end(), [](const Edge& a, const Edge& b) {
      return a.u != b.u ? a.u < b.u : a.v < b.v;
    });
  };
  sort_edges(first);
  sort_edges(second);
  EXPECT_EQ(first, second);  // same multiset
}

void expect_streaming_ratio(const Graph& g, double eps) {
  CoreConfig cfg;
  cfg.eps = eps;
  cfg.check_invariants = true;
  const StreamingResult r = streaming_matching(g, cfg);
  ASSERT_TRUE(r.matching.is_valid_in(g));
  const std::int64_t mu = maximum_matching_size(g);
  EXPECT_GE(static_cast<double>(r.matching.size()) * (1.0 + eps),
            static_cast<double>(mu));
  EXPECT_GT(r.passes, 0);
}

TEST(StreamingMatcher, ChainsAreAugmented) {
  expect_streaming_ratio(gen_augmenting_chains(8, 3), 0.25);
}

TEST(StreamingMatcher, OddCycles) {
  expect_streaming_ratio(gen_odd_cycles(6, 7), 0.25);
}

class StreamingSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamingSeedTest, RandomGraphsMeetGuarantee) {
  Rng rng(GetParam());
  expect_streaming_ratio(gen_random_graph(100, 300, rng), 0.25);
}

TEST_P(StreamingSeedTest, BipartiteMeetGuarantee) {
  Rng rng(GetParam());
  expect_streaming_ratio(gen_random_bipartite(50, 50, 200, rng), 0.2);
}

TEST_P(StreamingSeedTest, ShuffledStreamSameGuarantee) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(80, 240, rng);
  EdgeStream stream(g, /*shuffle_each_pass=*/true, GetParam());
  CoreConfig cfg;
  cfg.eps = 0.25;
  const StreamingResult r = streaming_matching(stream, g.num_vertices(), cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingSeedTest, ::testing::Values(1, 2, 3, 5, 8));

TEST(StreamingMatcher, PassCountGrowsWithPrecision) {
  Rng rng(4);
  const Graph g = gen_augmenting_chains(6, 5);
  CoreConfig loose, tight;
  loose.eps = 0.5;
  tight.eps = 0.125;
  const auto r_loose = streaming_matching(g, loose);
  const auto r_tight = streaming_matching(g, tight);
  EXPECT_GE(r_tight.passes, r_loose.passes);
  (void)rng;
}

TEST(StreamingMatcher, MemoryStaysBoundedOnSparseGraphs) {
  const Graph g = gen_disjoint_paths(50, 7);
  CoreConfig cfg;
  cfg.eps = 0.25;
  const StreamingResult r = streaming_matching(g, cfg);
  // In-structure arc storage is O(sum |S|^2), far below m here.
  EXPECT_LE(r.peak_memory_words, 4 * g.num_edges());
  EXPECT_EQ(r.matching.size(), maximum_matching_size(g));
}

}  // namespace
}  // namespace bmf
