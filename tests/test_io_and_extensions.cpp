#include <gtest/gtest.h>

#include <sstream>

#include "dynamic/partial_dynamic.hpp"
#include "dynamic/weak_oracle.hpp"
#include "io/graph_io.hpp"
#include "matching/augmenting.hpp"
#include "matching/blossom_exact.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "stream/streaming_matcher.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

// ---------------------------------------------------------------------------
// IO
// ---------------------------------------------------------------------------

TEST(GraphIo, EdgeListRoundtrip) {
  Rng rng(3);
  const Graph g = gen_random_graph(30, 80, rng);
  std::stringstream buf;
  write_edge_list(buf, g);
  const Graph back = read_edge_list(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  for (const Edge& e : g.edges()) EXPECT_TRUE(back.has_edge(e.u, e.v));
}

TEST(GraphIo, EdgeListCommentsAndHeader) {
  std::stringstream in("# a comment\n# vertices 7\n0 1\n2 3\n");
  const Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 7);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphIo, EdgeListMalformedRejected) {
  std::stringstream bad1("0\n");
  EXPECT_THROW((void)read_edge_list(bad1), std::invalid_argument);
  std::stringstream bad2("0 -2\n");
  EXPECT_THROW((void)read_edge_list(bad2), std::invalid_argument);
}

TEST(GraphIo, WeightedEdgeList) {
  std::stringstream in("# vertices 4\n0 1 2.5\n2 3\n");
  const WeightedGraph wg = read_weighted_edge_list(in);
  EXPECT_EQ(wg.n, 4);
  ASSERT_EQ(wg.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(wg.edges[0].w, 2.5);
  EXPECT_DOUBLE_EQ(wg.edges[1].w, 1.0);  // default weight
}

TEST(GraphIo, DimacsRoundtrip) {
  Rng rng(5);
  const Graph g = gen_random_graph(25, 60, rng);
  std::stringstream buf;
  write_dimacs(buf, g);
  const Graph back = read_dimacs(buf);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
}

TEST(GraphIo, DimacsValidation) {
  std::stringstream no_p("e 1 2\n");
  EXPECT_THROW((void)read_dimacs(no_p), std::invalid_argument);
  std::stringstream out_of_range("p edge 3 1\ne 1 9\n");
  EXPECT_THROW((void)read_dimacs(out_of_range), std::invalid_argument);
  std::stringstream count_mismatch("p edge 3 2\ne 1 2\n");
  EXPECT_THROW((void)read_dimacs(count_mismatch), std::invalid_argument);
}

TEST(GraphIo, SelfLoopsRejectedByAllReaders) {
  // One policy across readers: a self-loop is malformed input, not something
  // to silently drop (the unweighted reader used to wave it through).
  std::stringstream plain("0 1\n2 2\n");
  EXPECT_THROW((void)read_edge_list(plain), std::invalid_argument);
  std::stringstream weighted("0 1 2.0\n2 2 1.5\n");
  EXPECT_THROW((void)read_weighted_edge_list(weighted), std::invalid_argument);
  std::stringstream dimacs("p edge 3 1\ne 2 2\n");
  EXPECT_THROW((void)read_dimacs(dimacs), std::invalid_argument);
}

TEST(GraphIo, RepeatedEdgesDeduplicated) {
  std::stringstream plain("0 1\n1 0\n0 1\n1 2\n");
  const Graph g = read_edge_list(plain);
  EXPECT_EQ(g.num_edges(), 2);

  // Weighted: first occurrence wins, in either endpoint order.
  std::stringstream weighted("0 1 2.5\n1 0 9.0\n1 2 4.0\n");
  const WeightedGraph wg = read_weighted_edge_list(weighted);
  ASSERT_EQ(wg.edges.size(), 2u);
  EXPECT_DOUBLE_EQ(wg.edges[0].w, 2.5);
  EXPECT_DOUBLE_EQ(wg.edges[1].w, 4.0);

  // DIMACS deduplicates too; the declared count refers to the edge lines.
  std::stringstream dimacs("p edge 3 3\ne 1 2\ne 2 1\ne 2 3\n");
  const Graph gd = read_dimacs(dimacs);
  EXPECT_EQ(gd.num_edges(), 2);
}

TEST(GraphIo, UndersizedDeclaredHeaderRejected) {
  // Declaring fewer vertices than the ids in use used to silently enlarge
  // the graph; it is now a hard error in both edge-list readers.
  std::stringstream plain("# vertices 3\n0 1\n2 5\n");
  EXPECT_THROW((void)read_edge_list(plain), std::invalid_argument);
  std::stringstream weighted("# vertices 2\n0 4 1.0\n");
  EXPECT_THROW((void)read_weighted_edge_list(weighted), std::invalid_argument);
  // An exactly-sized or oversized header still works.
  std::stringstream exact("# vertices 6\n0 1\n2 5\n");
  EXPECT_EQ(read_edge_list(exact).num_vertices(), 6);
}

// ---------------------------------------------------------------------------
// Augmenting-path diagnostics + independent certificate verification
// ---------------------------------------------------------------------------

TEST(Augmenting, ShortestPathLengthOnKnownInstances) {
  // Path 0-1-2-3, {1,2} matched: unique augmenting path has length 3.
  const Graph p4 = make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const auto side = bipartition(p4);
  ASSERT_TRUE(side.has_value());
  Matching m(4);
  m.add(1, 2);
  EXPECT_EQ(bipartite_shortest_augmenting_path_length(p4, *side, m), 3);
  m.remove_at(1);
  EXPECT_EQ(bipartite_shortest_augmenting_path_length(p4, *side, m), 1);
  // Maximum matching: no augmenting path.
  m = hopcroft_karp(p4);
  EXPECT_EQ(bipartite_shortest_augmenting_path_length(p4, *side, m), -1);
}

TEST(Augmenting, DeficitMatchesExact) {
  Rng rng(7);
  const Graph g = gen_random_graph(40, 120, rng);
  const Matching greedy = greedy_maximal_matching(g);
  EXPECT_EQ(augmenting_deficit(g, greedy),
            maximum_matching_size(g) - greedy.size());
}

class CertificateCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertificateCrossCheck, CertifiedRunsHaveNoShortAugmentingPath) {
  // Independent verification of Theorem B.4: after a certified run on a
  // bipartite graph, the exact shortest augmenting path must be longer than
  // l_max = 3/eps (or absent).
  Rng rng(GetParam());
  const Graph g = gen_random_bipartite(40, 40, 160, rng);
  const auto side = bipartition(g);
  ASSERT_TRUE(side.has_value());
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = GetParam();
  GreedyMatchingOracle oracle;
  const BoostResult r = boost_matching(g, oracle, cfg);
  if (!r.outcome.certified) GTEST_SKIP() << "run ended without certificate";
  const std::int64_t len =
      bipartite_shortest_augmenting_path_length(g, *side, r.matching);
  EXPECT_TRUE(len == -1 || len > cfg.ell_max())
      << "certificate violated: augmenting path of length " << len;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertificateCrossCheck,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CertificateCrossCheck, StreamingCertificateAlsoVerified) {
  Rng rng(11);
  const Graph g = gen_random_bipartite(35, 35, 140, rng);
  const auto side = bipartition(g);
  ASSERT_TRUE(side.has_value());
  CoreConfig cfg;
  cfg.eps = 0.2;
  const StreamingResult r = streaming_matching(g, cfg);
  if (r.outcome.certified) {
    const std::int64_t len =
        bipartite_shortest_augmenting_path_length(g, *side, r.matching);
    EXPECT_TRUE(len == -1 || len > cfg.ell_max());
  }
}

// ---------------------------------------------------------------------------
// Incremental / decremental matchers
// ---------------------------------------------------------------------------

TEST(IncrementalMatcher, InsertOnlyStreamStaysApproximate) {
  const Vertex n = 60;
  MatrixWeakOracle oracle(n);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  IncrementalMatcher inc(n, oracle, cfg);
  Rng rng(3);
  const auto updates = dyn_random_updates(n, 250, 1.0, rng);
  for (const EdgeUpdate& up : updates) inc.insert(up.u, up.v);
  const Graph snapshot = inc.graph().snapshot();
  EXPECT_TRUE(inc.matching().is_valid_in(snapshot));
  EXPECT_GE(static_cast<double>(inc.matching().size()) * 1.25,
            static_cast<double>(maximum_matching_size(snapshot)));
  EXPECT_GT(inc.rebuilds(), 0);
}

TEST(DecrementalMatcher, DeleteOnlyStreamKeepsMaximalFloor) {
  Rng rng(5);
  const Graph g = gen_random_graph(50, 200, rng);
  MatrixWeakOracle oracle(g.num_vertices());
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  DecrementalMatcher dec(g, oracle, cfg);
  EXPECT_EQ(dec.graph().num_edges(), g.num_edges());
  EXPECT_THROW(dec.erase(0, 0), std::invalid_argument);

  std::vector<Edge> edges(g.edges().begin(), g.edges().end());
  Rng order(7);
  order.shuffle(edges);
  std::int64_t step = 0;
  for (const Edge& e : edges) {
    dec.erase(e.u, e.v);
    if (++step % 40 == 0) {
      const Graph snapshot = dec.graph().snapshot();
      ASSERT_TRUE(dec.matching().is_valid_in(snapshot));
      ASSERT_TRUE(dec.matching().is_maximal_in(snapshot));
    }
  }
  EXPECT_EQ(dec.graph().num_edges(), 0);
  EXPECT_EQ(dec.matching().size(), 0);
  EXPECT_EQ(dec.updates(), g.num_edges());
}

}  // namespace
}  // namespace bmf
