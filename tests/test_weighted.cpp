#include <gtest/gtest.h>

#include "matching/blossom_exact.hpp"
#include "weighted/weighted.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

WeightedGraph random_weighted(Vertex n, std::int64_t m, double w_max, Rng& rng) {
  const Graph g = gen_random_graph(n, m, rng);
  WeightedGraph wg;
  wg.n = n;
  for (const Edge& e : g.edges())
    wg.edges.push_back({e.u, e.v, 1.0 + rng.next_double() * (w_max - 1.0)});
  return wg;
}

TEST(Weighted, MatchingWeightSums) {
  WeightedGraph wg{4, {{0, 1, 2.5}, {2, 3, 1.5}}};
  EXPECT_DOUBLE_EQ(matching_weight(wg, wg.edges), 4.0);
}

TEST(Weighted, GreedyIsValidMatching) {
  Rng rng(3);
  const WeightedGraph wg = random_weighted(30, 100, 50, rng);
  const auto m = greedy_weighted_matching(wg);
  std::vector<int> deg(30, 0);
  for (const auto& e : m) {
    ++deg[static_cast<std::size_t>(e.u)];
    ++deg[static_cast<std::size_t>(e.v)];
  }
  for (int d : deg) EXPECT_LE(d, 1);
}

TEST(Weighted, BruteForceOnKnownInstances) {
  // Triangle with weights: best single edge wins over any pair (no pair fits).
  WeightedGraph tri{3, {{0, 1, 5}, {1, 2, 4}, {0, 2, 3}}};
  EXPECT_DOUBLE_EQ(brute_force_weighted_matching(tri), 5.0);
  // Path where the two outer edges beat the heavier middle edge.
  WeightedGraph path{4, {{0, 1, 3}, {1, 2, 4}, {2, 3, 3}}};
  EXPECT_DOUBLE_EQ(brute_force_weighted_matching(path), 6.0);
}

class WeightedPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WeightedPropertyTest, GreedyIsTwoApprox) {
  Rng rng(GetParam());
  const WeightedGraph wg = random_weighted(14, 40, 100, rng);
  const Weight opt = brute_force_weighted_matching(wg);
  const Weight greedy = matching_weight(wg, greedy_weighted_matching(wg));
  EXPECT_GE(2.0 * greedy + 1e-9, opt);
}

TEST_P(WeightedPropertyTest, ScalingPreservesNearOptimality) {
  Rng rng(GetParam() + 100);
  const WeightedGraph wg = random_weighted(14, 36, 1000, rng);
  const double eps = 0.2;
  const ScaledWeights scaled = gp_scale_weights(wg, eps);
  const Weight opt = brute_force_weighted_matching(wg);
  const Weight opt_scaled = brute_force_weighted_matching(scaled.graph);
  // Rounding down powers of (1+eps) and dropping featherweight edges loses
  // at most a (1+eps)(1-eps)^-1-ish factor.
  EXPECT_GE(opt_scaled * (1.0 + eps) + eps * opt + 1e-9, opt);
  EXPECT_GT(scaled.distinct_classes, 0);
}

TEST_P(WeightedPropertyTest, ClassCombinationGuarantee) {
  Rng rng(GetParam() + 200);
  const WeightedGraph wg = random_weighted(14, 36, 100, rng);
  const double eps = 0.25;
  const McmSubroutine exact_mcm = [](const Graph& sub) {
    return blossom_maximum_matching(sub);
  };
  const auto combined = class_combined_weighted_matching(wg, eps, exact_mcm);
  const Weight got = matching_weight(wg, combined);
  const Weight opt = brute_force_weighted_matching(wg);
  // [SVW17]: (2+O(eps)) * alpha with alpha = 1 here. Allow 2.6.
  EXPECT_GE(got * 2.6 + 1e-9, opt) << "got " << got << " opt " << opt;
  // Validity.
  std::vector<int> deg(14, 0);
  for (const auto& e : combined) {
    ++deg[static_cast<std::size_t>(e.u)];
    ++deg[static_cast<std::size_t>(e.v)];
  }
  for (int d : deg) EXPECT_LE(d, 1);
}

TEST_P(WeightedPropertyTest, FullPipelineGuarantee) {
  Rng rng(GetParam() + 300);
  const WeightedGraph wg = random_weighted(16, 48, 200, rng);
  const WeightedBoostResult r = boosted_weighted_matching(wg, 0.25, CoreConfig{});
  const Weight opt = brute_force_weighted_matching(wg);
  EXPECT_GE(r.weight * 3.0 + 1e-9, opt);  // (2+O(eps))(1+eps) with slack
  EXPECT_GT(r.oracle_calls, 0);
  EXPECT_GT(r.classes, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightedPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Weighted, EmptyGraphHandled) {
  WeightedGraph wg{5, {}};
  EXPECT_TRUE(greedy_weighted_matching(wg).empty());
  EXPECT_DOUBLE_EQ(brute_force_weighted_matching(wg), 0.0);
  const auto r = boosted_weighted_matching(wg, 0.25, CoreConfig{});
  EXPECT_TRUE(r.matching.empty());
}

TEST(Weighted, RejectsNonPositiveWeights) {
  WeightedGraph wg{2, {{0, 1, -1.0}}};
  EXPECT_THROW((void)gp_scale_weights(wg, 0.25), std::invalid_argument);
}

}  // namespace
}  // namespace bmf
