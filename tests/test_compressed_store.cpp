// CompressedAdjacencyStore (CSR + per-vertex delta buffers): delta-merge
// property tests against a DynGraph reference, fold-point equivalence, and
// the cross-engine differential grid for the compressed facade.
//
// The bit-identity half (CompressedStoreDifferential) rides the shared
// checker in tests/differential_util.hpp — the same grid every engine
// passes; the property half (CompressedStoreDelta) pins the semantic store
// obligations the concepts cannot: ascending neighbors() at every fold
// state, snapshot() equality across merge points, toggle's changed-presence
// return, and the delta-buffer bookkeeping invariants.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "differential_util.hpp"
#include "dynamic/compressed_store.hpp"
#include "graph/dyn_graph.hpp"
#include "util/rng.hpp"
#include "workloads/dyn_workload.hpp"

namespace bmf {
namespace {

using testdiff::GridOptions;

EdgeUpdate random_toggle(Vertex n, Rng& rng) {
  const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
  auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
  if (v >= u) ++v;
  return rng.next_bool(0.6) ? EdgeUpdate::ins(u, v) : EdgeUpdate::del(u, v);
}

TEST(CompressedStoreDelta, NeighborsAscendingAndEqualToReferenceEveryStep) {
  constexpr Vertex n = 32;
  Rng rng(11);
  MatrixWeakOracle oracle(n);
  CompressedAdjacencyStore store(n, oracle);
  DynGraph ref(n);
  for (int step = 0; step < 600; ++step) {
    const EdgeUpdate up = random_toggle(n, rng);
    const bool ref_changed =
        up.insert ? ref.insert(up.u, up.v) : ref.erase(up.u, up.v);
    EXPECT_EQ(store.toggle(up), ref_changed) << "step=" << step;
    // Periodic folds in the middle of the stream: rows flip between CSR
    // slices and materialized merged rows, and the view must not move.
    if (step % 97 == 0) store.merge_deltas();
    EXPECT_EQ(store.num_edges(), ref.num_edges()) << "step=" << step;
    for (Vertex v = 0; v < n; ++v) {
      const std::span<const Vertex> got = store.neighbors(v);
      const std::span<const Vertex> want = ref.neighbors(v);
      ASSERT_TRUE(std::is_sorted(got.begin(), got.end()))
          << "step=" << step << " v=" << v;
      ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
          << "step=" << step << " v=" << v;
    }
  }
}

TEST(CompressedStoreDelta, SnapshotEqualAcrossMergePoints) {
  constexpr Vertex n = 28;
  Rng rng(23);
  MatrixWeakOracle oracle(n);
  CompressedAdjacencyStore store(n, oracle);
  DynGraph ref(n);
  for (int step = 0; step < 400; ++step) {
    const EdgeUpdate up = random_toggle(n, rng);
    const bool changed =
        up.insert ? ref.insert(up.u, up.v) : ref.erase(up.u, up.v);
    ASSERT_EQ(store.toggle(up), changed);
    if (step % 61 != 0) continue;
    // snapshot() itself folds, so comparing it to the reference pins both
    // the pre-fold row views (they feed the fold) and the fold result.
    const Graph want = ref.snapshot();
    const Graph got = store.snapshot();
    ASSERT_TRUE(std::equal(got.edges().begin(), got.edges().end(),
                           want.edges().begin(), want.edges().end()))
        << "step=" << step;
    EXPECT_EQ(store.delta_entries(), 0) << "step=" << step;
    // After a fold the CSR body is exactly the live edge set.
    EXPECT_EQ(store.csr_bytes(),
              static_cast<std::int64_t>((n + 1) * sizeof(std::int64_t)) +
                  2 * store.num_edges() *
                      static_cast<std::int64_t>(sizeof(Vertex)))
        << "step=" << step;
  }
}

TEST(CompressedStoreDelta, ReinsertAndReEraseWithinOneWindow) {
  constexpr Vertex n = 8;
  MatrixWeakOracle oracle(n);
  CompressedAdjacencyStore store(n, oracle);
  // Base edge {0,1} folded into the CSR body.
  ASSERT_TRUE(store.toggle(EdgeUpdate::ins(0, 1)));
  store.merge_deltas();
  EXPECT_EQ(store.delta_entries(), 0);

  // Delete a base edge: two del entries. Re-insert it: the dels shrink back
  // to zero rather than growing adds.
  ASSERT_TRUE(store.toggle(EdgeUpdate::del(0, 1)));
  EXPECT_EQ(store.delta_entries(), 2);
  ASSERT_TRUE(store.toggle(EdgeUpdate::ins(0, 1)));
  EXPECT_EQ(store.delta_entries(), 0);
  EXPECT_TRUE(store.has_edge(0, 1));

  // Fresh edge this window: two add entries; erasing it empties them.
  ASSERT_TRUE(store.toggle(EdgeUpdate::ins(2, 3)));
  EXPECT_EQ(store.delta_entries(), 2);
  ASSERT_TRUE(store.toggle(EdgeUpdate::del(2, 3)));
  EXPECT_EQ(store.delta_entries(), 0);
  EXPECT_FALSE(store.has_edge(2, 3));

  const CompressedStoreStats& stats = store.store_stats();
  EXPECT_EQ(stats.delta_inserts, 3);
  EXPECT_EQ(stats.delta_erases, 2);
  EXPECT_EQ(stats.peak_delta_entries, 2);
  EXPECT_EQ(stats.merges, 1);
}

TEST(CompressedStoreDelta, ToggleReturnsChangedPresence) {
  constexpr Vertex n = 6;
  MatrixWeakOracle oracle(n);
  CompressedAdjacencyStore store(n, oracle);
  EXPECT_TRUE(store.toggle(EdgeUpdate::ins(0, 1)));
  EXPECT_FALSE(store.toggle(EdgeUpdate::ins(0, 1)));
  EXPECT_FALSE(store.toggle(EdgeUpdate::del(2, 3)));
  EXPECT_TRUE(store.toggle(EdgeUpdate::del(0, 1)));
  EXPECT_FALSE(store.toggle(EdgeUpdate::del(0, 1)));
  EXPECT_THROW((void)store.toggle(EdgeUpdate::ins(0, 0)),
               std::invalid_argument);
  EXPECT_THROW((void)store.toggle(EdgeUpdate::ins(-1, 2)),
               std::invalid_argument);
  EXPECT_FALSE(store.has_edge(0, 0));
  EXPECT_FALSE(store.has_edge(-1, 2));
}

TEST(CompressedStoreDelta, MergeIsIdempotentAndCountsFolds) {
  constexpr Vertex n = 16;
  Rng rng(3);
  MatrixWeakOracle oracle(n);
  CompressedAdjacencyStore store(n, oracle);
  for (int step = 0; step < 60; ++step) (void)store.toggle(random_toggle(n, rng));
  const std::int64_t pending = store.delta_entries();
  store.merge_deltas();
  const std::int64_t merges = store.store_stats().merges;
  EXPECT_EQ(store.store_stats().merged_entries, pending);
  store.merge_deltas();  // nothing dirty: a no-op, not a counted fold
  EXPECT_EQ(store.store_stats().merges, merges);
  EXPECT_EQ(store.delta_bytes(), 0);
}

TEST(CompressedStoreDifferential, MixedChurnFullGridMatchesSequential) {
  constexpr Vertex n = 48;
  Rng rng(404);
  const auto ups = dyn_mixed_churn(n, 900, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.3;
  cfg.seed = 404;
  GridOptions opt;
  opt.run_sharded_grid = false;  // the compressed leg is the suite's subject
  opt.flat_batch_sizes = {7, 64};
  opt.compressed_batch_sizes = {7, 64};
  testdiff::expect_all_engines_equal(n, ups, cfg, opt);
}

TEST(CompressedStoreDifferential, DeletionHeavyStreamWithForcedCadence) {
  constexpr Vertex n = 40;
  Rng rng(1213);
  const auto ups = dyn_churn_planted(n, 700, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = 1213;
  cfg.rebuild_every = 23;  // forced cadence: folds land mid-window often
  GridOptions opt;
  opt.run_sharded_grid = false;
  testdiff::expect_all_engines_equal(n, ups, cfg, opt);
}

TEST(CompressedStoreContract, DirectCoreDriveIsBitIdenticalToFlat) {
  constexpr Vertex n = 40;
  Rng rng(77);
  const auto ups = dyn_mixed_churn(n, 320, rng);

  DynamicMatcherConfig ref_cfg;
  ref_cfg.eps = 0.25;
  ref_cfg.seed = 77;
  ref_cfg.rebuild_every = 14;
  ref_cfg.threads = 1;
  MatrixWeakOracle ref_oracle(n);
  DynamicMatcher ref(n, ref_oracle, ref_cfg);
  for (const auto& up : ups) ref.apply(up);
  ASSERT_GT(ref.rebuilds(), 0);

  for (const int threads : {1, 8}) {
    const ForceParallelSmallWork force;
    DynamicCoreConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 77;
    cfg.rebuild_every = 14;
    cfg.threads = threads;
    validate_core_config(cfg, /*shards=*/1, "CompressedAdjacencyStore");
    MatrixWeakOracle oracle(n);
    CompressedAdjacencyStore store(n, oracle);
    DynamicReplayCore<CompressedAdjacencyStore> core(store,
                                                     resolve_core_config(cfg));
    for (const auto& batch : slice_updates(ups, 64)) core.apply_batch(batch);

    EXPECT_EQ(core.rebuild_positions(), ref.rebuild_positions())
        << "threads=" << threads;
    EXPECT_EQ(core.rebuild_stats(), ref.rebuild_stats())
        << "threads=" << threads;
    // Same MatrixWeakOracle family, same query schedule: exact words parity
    // with the flat reference.
    EXPECT_EQ(oracle.words_touched(), ref_oracle.words_touched())
        << "threads=" << threads;
    EXPECT_EQ(core.matching().size(), ref.matching().size());
    for (Vertex v = 0; v < n; ++v)
      EXPECT_EQ(core.matching().mate(v), ref.matching().mate(v))
          << "threads=" << threads << " v=" << v;
  }
}

}  // namespace
}  // namespace bmf
