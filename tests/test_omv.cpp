#include <gtest/gtest.h>

#include "dynamic/static_weak.hpp"
#include "matching/blossom_exact.hpp"
#include "omv/offline.hpp"
#include "omv/omv.hpp"
#include "omv/omv_weak.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

TEST(DynamicOMv, QueryMatchesNaiveProduct) {
  Rng rng(3);
  const std::int64_t n = 70;
  DynamicOMv omv(n);
  std::vector<std::vector<bool>> ref(static_cast<std::size_t>(n),
                                     std::vector<bool>(static_cast<std::size_t>(n)));
  for (int i = 0; i < 500; ++i) {
    const auto r = static_cast<std::int64_t>(rng.next_below(n));
    const auto c = static_cast<std::int64_t>(rng.next_below(n));
    const bool b = rng.next_bool(0.7);
    omv.update(r, c, b);
    ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = b;
  }
  BitVec v(n), out(n);
  for (int i = 0; i < 20; ++i) v.set(static_cast<std::int64_t>(rng.next_below(n)));
  omv.query(v, out);
  for (std::int64_t r = 0; r < n; ++r) {
    bool expect = false;
    for (std::int64_t c = 0; c < n; ++c)
      expect |= ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] &&
                v.get(c);
    EXPECT_EQ(out.get(r), expect);
  }
  EXPECT_EQ(omv.updates(), 500);
  EXPECT_EQ(omv.queries(), 1);
  EXPECT_GT(omv.words_touched(), 0);
}

TEST(DynamicOMv, WordsTouchedCountsEarlyExitingScansExactly) {
  // n = 130 -> 3 words per row.
  DynamicOMv omv(130);
  omv.update(0, 1, true);
  BitVec mask(130);
  mask.set(1);
  EXPECT_EQ(omv.probe_row(0, mask), 1);  // hit in word 0
  EXPECT_EQ(omv.words_touched(), 1);
  EXPECT_EQ(omv.probe_row(1, mask), -1);  // empty row: full 3-word miss
  EXPECT_EQ(omv.words_touched(), 4);
  // query: row 0 stops at word 0 (1 word), rows 1..129 are empty and scan
  // all 3 words each — not the n * words_per_row worst case.
  BitVec v(130), out(130);
  v.set(1);
  omv.query(v, out);
  EXPECT_EQ(omv.words_touched(), 4 + 1 + 129 * 3);
}

TEST(DynamicOMv, ProbeRowRespectsMask) {
  DynamicOMv omv(100);
  omv.update(5, 80, true);
  omv.update(5, 10, true);
  BitVec mask(100);
  mask.set(80);
  EXPECT_EQ(omv.probe_row(5, mask), 80);
  mask.set(10);
  EXPECT_EQ(omv.probe_row(5, mask), 10);
  EXPECT_EQ(omv.probe_row(6, mask), -1);
}

TEST(OMvWeakOracle, QueryReturnsValidMatchingWithLambdaTwelfth) {
  Rng rng(5);
  const Graph g = gen_planted_matching(48, 96, rng);
  OMvWeakOracle oracle = OMvWeakOracle::from_graph(g);
  std::vector<Vertex> all(48);
  for (Vertex v = 0; v < 48; ++v) all[static_cast<std::size_t>(v)] = v;
  const WeakQueryResult res = oracle.query(all, 0.0);
  Matching m(48);
  for (const Edge& e : res.matching) {
    EXPECT_TRUE(g.has_edge(e.u, e.v));
    m.add(e.u, e.v);
  }
  // lambda = 1/12 against mu(G[S]) = 24.
  EXPECT_GE(12 * m.size(), maximum_matching_size(g));
}

class OMvWeakBoostTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OMvWeakBoostTest, StaticBoostViaOMvOracle) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(70, 210, rng);
  OMvWeakOracle oracle = OMvWeakOracle::from_graph(g);
  WeakSimConfig cfg;
  cfg.core.eps = 0.25;
  cfg.core.seed = GetParam();
  const WeakBoostResult r = static_weak_matching(g, oracle, cfg);
  ASSERT_TRUE(r.matching.is_valid_in(g));
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
  EXPECT_GT(oracle.engine().words_touched(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OMvWeakBoostTest, ::testing::Values(1, 2, 3));

TEST(OfflineWeakOracle, PatchedRowsMatchDirectMaintenance) {
  Rng rng(7);
  const Vertex n = 50;
  OfflineWeakOracle offline(n);
  MatrixWeakOracle online(n);
  const auto updates = dyn_random_updates(n, 400, 0.6, rng);
  std::int64_t step = 0;
  for (const EdgeUpdate& up : updates) {
    if (up.insert) {
      offline.on_insert(up.u, up.v);
      online.on_insert(up.u, up.v);
    } else {
      offline.on_erase(up.u, up.v);
      online.on_erase(up.u, up.v);
    }
    if (++step % 100 == 0) offline.rebase();
    if (step % 37 == 0) {
      std::vector<Vertex> s;
      for (Vertex v = 0; v < n; v += 2) s.push_back(v);
      const auto a = offline.query(s, 0.0);
      const auto b = online.query(s, 0.0);
      // Both are greedy maximal over the same adjacency: identical results.
      EXPECT_EQ(a.matching.size(), b.matching.size());
    }
  }
  EXPECT_GT(offline.rebases(), 0);
}

TEST(OfflineWeakOracle, HasEdgeThroughToggles) {
  OfflineWeakOracle oracle(10);
  EXPECT_FALSE(oracle.has_edge(1, 2));
  oracle.on_insert(1, 2);
  EXPECT_TRUE(oracle.has_edge(1, 2));
  EXPECT_TRUE(oracle.has_edge(2, 1));
  oracle.rebase();
  EXPECT_TRUE(oracle.has_edge(1, 2));
  EXPECT_EQ(oracle.diff_size(), 0);
  oracle.on_erase(1, 2);
  EXPECT_FALSE(oracle.has_edge(1, 2));
  EXPECT_EQ(oracle.diff_size(), 1);
}

TEST(OfflineDynamic, TheoremSevenFifteenPipeline) {
  const Vertex n = 40;
  Rng rng(11);
  const auto updates = dyn_random_updates(n, 240, 0.8, rng);
  WeakSimConfig sim;
  sim.core.eps = 0.25;
  const OfflineDynamicResult result =
      offline_dynamic_matching(n, updates, /*chunk=*/40, /*t_block=*/3, sim);
  ASSERT_EQ(result.matching_sizes.size(), 6u);
  EXPECT_GT(result.weak_calls, 0);
  EXPECT_GT(result.rebases, 0);

  // Replay to validate each post-chunk matching size against exact mu.
  DynGraph g(n);
  std::size_t chunk_idx = 0;
  std::int64_t in_chunk = 0;
  for (const EdgeUpdate& up : updates) {
    if (!up.empty()) {
      if (up.insert)
        g.insert(up.u, up.v);
      else
        g.erase(up.u, up.v);
    }
    if (++in_chunk == 40) {
      in_chunk = 0;
      const std::int64_t mu = maximum_matching_size(g.snapshot());
      EXPECT_GE(static_cast<double>(result.matching_sizes[chunk_idx]) * 1.25,
                static_cast<double>(mu))
          << "chunk " << chunk_idx;
      ++chunk_idx;
    }
  }
}

}  // namespace
}  // namespace bmf
