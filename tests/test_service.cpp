/// MatchingService acceptance suite:
///
///  * ServiceQueue — the bounded MPSC ingest queue's push/drain/close
///    semantics in isolation.
///  * ServiceConfigValidation — ServiceConfig rides the shared
///    validate_core_config path and rejects its own knobs the same way.
///  * ServiceView — the MatchingView read API over live engines and exported
///    snapshots, exercised through the abstract ReplayEngine surface (no
///    facade-specific casts anywhere).
///  * ServiceBasic — end-to-end golden runs: whatever the service coalesces,
///    the published matching equals the sequential engine's.
///  * ServiceMultiReaderStress — concurrent readers against a live writer;
///    every observed snapshot must equal the golden sequential matching at
///    its update count, with staleness <= max_lag. Runs under TSan in CI.
///  * ServiceWriterStall — the SSP writer-side gate: publication provably
///    waits for lagging readers, and close() overrides the stall.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "service/matching_service.hpp"
#include "differential_util.hpp"
#include "util/bounded_queue.hpp"
#include "util/rng.hpp"
#include "workloads/dyn_workload.hpp"

namespace bmf {
namespace {

// ------------------------------------------------------------- ServiceQueue

TEST(ServiceQueue, DrainsInArrivalOrderAndReportsBacklog) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);

  std::vector<int> out;
  std::size_t backlog = 0;
  EXPECT_EQ(q.drain(out, 3, &backlog), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(backlog, 5u);  // depth observed at the drain, not what was taken
  EXPECT_EQ(q.drain(out, 100, &backlog), 2u);
  EXPECT_EQ(out, (std::vector<int>{3, 4}));
  EXPECT_EQ(backlog, 2u);
}

TEST(ServiceQueue, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 100), 2u);
  EXPECT_TRUE(q.try_push(3));
}

TEST(ServiceQueue, CloseServesBacklogThenSignalsShutdown) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(7));
  q.close();
  EXPECT_FALSE(q.push(8));
  EXPECT_FALSE(q.try_push(9));
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 100), 1u);  // accepted items survive close
  EXPECT_EQ(out, std::vector<int>{7});
  EXPECT_EQ(q.drain(out, 100), 0u);  // then 0 forever
  EXPECT_EQ(q.drain(out, 100), 0u);
}

TEST(ServiceQueue, PushBlocksUntilDrainFreesSpace) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks: capacity 1 and slot taken
    pushed.store(true, std::memory_order_release);
  });
  std::vector<int> out, all;
  while (all.size() < 2) {
    (void)q.drain(out, 1);
    all.insert(all.end(), out.begin(), out.end());
  }
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(all, (std::vector<int>{1, 2}));
}

TEST(ServiceQueue, PushAllKeepsOrderAcrossCapacityWaits) {
  BoundedQueue<int> q(2);
  const std::vector<int> items{1, 2, 3, 4, 5};
  std::thread producer([&] { EXPECT_TRUE(q.push_all(items)); });
  std::vector<int> out, all;
  while (all.size() < items.size()) {
    (void)q.drain(out, 2);
    all.insert(all.end(), out.begin(), out.end());
  }
  producer.join();
  EXPECT_EQ(all, items);
}

TEST(ServiceQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  q.close();
  producer.join();
}

TEST(ServiceQueue, PushAllWakesAnAlreadyWaitingConsumer) {
  // Regression guard for the push_all notify rework (the annotation pass
  // moved signalling out of the lock): when the whole batch fits without a
  // capacity wait, the single post-unlock notify is the only wakeup a
  // blocked consumer gets — it must arrive.
  BoundedQueue<int> q(8);
  std::vector<int> out;
  std::thread consumer([&] { EXPECT_EQ(q.drain(out, 8), 3u); });
  // No rendezvous needed: whether the consumer is already parked in the wait
  // or arrives after the push, it must see the batch.
  const std::vector<int> items{1, 2, 3};
  EXPECT_TRUE(q.push_all(items));
  consumer.join();
  EXPECT_EQ(out, items);
}

TEST(ServiceQueue, PushAllMidwayCloseKeepsQueuedItemsConsumable) {
  BoundedQueue<int> q(2);
  const std::vector<int> items{1, 2, 3, 4, 5};
  std::thread producer([&] {
    EXPECT_FALSE(q.push_all(items));  // closed before the batch fits
  });
  std::vector<int> out, all;
  (void)q.drain(out, 1);  // free one slot so the producer makes progress
  all.insert(all.end(), out.begin(), out.end());
  q.close();
  producer.join();
  // Whatever was accepted before the close stays consumable, in order.
  while (q.drain(out, 8) > 0) all.insert(all.end(), out.begin(), out.end());
  ASSERT_LE(all.size(), items.size());
  ASSERT_GE(all.size(), 1u);
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], items[i]);
}

// -------------------------------------------------- ServiceConfigValidation

TEST(ServiceConfigValidation, RejectsServiceKnobs) {
  {
    ServiceConfig cfg;
    cfg.max_lag = 0;
    EXPECT_THROW(MatchingService(8, cfg), std::invalid_argument);
  }
  {
    ServiceConfig cfg;
    cfg.queue_capacity = 0;
    EXPECT_THROW(MatchingService(8, cfg), std::invalid_argument);
  }
  {
    ServiceConfig cfg;
    cfg.coalesce_max = -1;
    EXPECT_THROW(MatchingService(8, cfg), std::invalid_argument);
  }
}

TEST(ServiceConfigValidation, InheritedCoreKnobsGoThroughSharedPath) {
  // The service folds into validate_core_config: core and shard knobs are
  // rejected by the same gate as the engines themselves.
  {
    ServiceConfig cfg;
    cfg.eps = 0.0;
    EXPECT_THROW(MatchingService(8, cfg), std::invalid_argument);
  }
  {
    ServiceConfig cfg;
    cfg.shards = 0;
    EXPECT_THROW(MatchingService(8, cfg), std::invalid_argument);
  }
  {
    ServiceConfig cfg;
    cfg.threads = -1;
    EXPECT_THROW(validate_service_config(cfg, "test"), std::invalid_argument);
  }
}

TEST(ServiceConfigValidation, BorrowedEngineCtorValidatesToo) {
  ShardedMatcherConfig ecfg;
  ShardedDynamicMatcher engine(8, ecfg);
  ServiceConfig cfg;
  cfg.max_lag = 0;
  EXPECT_THROW(MatchingService(engine, cfg), std::invalid_argument);
}

TEST(ServiceConfigValidation, DefaultsAreValid) {
  EXPECT_NO_THROW(validate_service_config(ServiceConfig{}, "test"));
}

// -------------------------------------------------------------- ServiceView

// The whole point of the redesigned surface: generic code sees only the
// abstract engine, never a concrete facade.
testdiff::RunResult drive_via_engine(ReplayEngine& engine,
                                     std::span<const EdgeUpdate> ups) {
  for (const EdgeUpdate& up : ups) engine.apply(up);
  testdiff::RunResult r;
  const LiveEngineView view = engine.view();
  for (Vertex v = 0; v < view.num_vertices(); ++v)
    r.mates.push_back(view.mate_of(v));
  r.matching_size = view.size();
  r.updates = engine.updates();
  r.rebuilds = engine.rebuilds();
  r.rebuild_positions = engine.rebuild_positions();
  r.weak_calls = engine.weak_calls();
  return r;
}

TEST(ServiceView, EngineSurfaceNeedsNoFacadeCasts) {
  const Vertex n = 40;
  Rng rng(3);
  const auto ups = dyn_random_updates(n, 300, 0.7, rng);

  MatrixWeakOracle oracle(n);
  DynamicMatcher flat(n, oracle, DynamicMatcherConfig{});
  ShardedMatcherConfig scfg;
  scfg.shards = 3;
  ShardedDynamicMatcher sharded(n, scfg);

  const testdiff::RunResult a = drive_via_engine(flat, ups);
  const testdiff::RunResult b = drive_via_engine(sharded, ups);
  // weak_calls differ per oracle family; everything the replay contract pins
  // must agree even when driven purely through the abstract surface.
  EXPECT_EQ(a.mates, b.mates);
  EXPECT_EQ(a.matching_size, b.matching_size);
  EXPECT_EQ(a.rebuild_positions, b.rebuild_positions);
  EXPECT_GE(a.rebuilds, 1);
  // overlap_stats is reachable without casts too (serial loop: all zeros).
  EXPECT_EQ(sharded.overlap_stats().overlapped_rebuilds, 0);
}

TEST(ServiceView, LiveViewTracksTheEngine) {
  const Vertex n = 10;
  MatrixWeakOracle oracle(n);
  DynamicMatcher dm(n, oracle, DynamicMatcherConfig{});
  const LiveEngineView view = dm.view();
  EXPECT_EQ(view.size(), 0);
  EXPECT_FALSE(view.is_matched(0));

  dm.insert(0, 1);
  EXPECT_EQ(view.size(), dm.matching().size());
  EXPECT_EQ(view.mate_of(0), dm.matching().mate(0));
  EXPECT_EQ(view.epoch(), dm.updates());
  EXPECT_TRUE(view.is_matched(0) == (dm.matching().mate(0) != kNoVertex));
}

TEST(ServiceView, ExportedSnapshotIsImmutableAndComparable) {
  const Vertex n = 10;
  MatrixWeakOracle oracle(n);
  DynamicMatcher dm(n, oracle, DynamicMatcherConfig{});
  dm.insert(0, 1);
  dm.insert(2, 3);
  const MatchingSnapshot s1 = dm.export_snapshot(dm.updates());
  const MatchingSnapshot s2 = dm.export_snapshot(dm.updates());
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.num_vertices(), n);
  EXPECT_EQ(s1.updates_applied(), 2);

  dm.erase(0, 1);  // the snapshot must not move with the engine
  EXPECT_EQ(s1.size(), 2);
  EXPECT_EQ(s1.mate_of(0), Vertex{1});
  EXPECT_NE(dm.matching().mate(0), Vertex{1});
}

// ------------------------------------------------------------- ServiceBasic

std::uint64_t mates_digest(std::span<const Vertex> mates) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const Vertex v : mates) {
    h ^= static_cast<std::uint64_t>(v) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

/// Golden prefix trajectory: digest + size of the sequential engine's
/// matching after every prefix of the update stream. Because apply_batch is
/// bit-identical to the apply loop at any batch boundaries, a service
/// snapshot with updates_applied() == u must reproduce entry u exactly —
/// however the arrivals coalesced.
struct GoldenTrajectory {
  std::vector<std::uint64_t> digest;
  std::vector<std::int64_t> size;
};

GoldenTrajectory golden_trajectory(Vertex n, std::span<const EdgeUpdate> ups,
                                   const DynamicMatcherConfig& cfg) {
  MatrixWeakOracle oracle(n);
  DynamicMatcher dm(n, oracle, cfg);
  GoldenTrajectory g;
  const auto record = [&] {
    g.digest.push_back(mates_digest(dm.export_snapshot(0).mates()));
    g.size.push_back(dm.matching().size());
  };
  record();
  for (const EdgeUpdate& up : ups) {
    dm.apply(up);
    record();
  }
  return g;
}

TEST(ServiceBasic, EpochZeroIsPublishedBeforeAnySubmit) {
  ServiceConfig cfg;
  MatchingService svc(16, cfg);
  const auto snap = svc.latest();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 0);
  EXPECT_EQ(snap->size(), 0);
  EXPECT_EQ(svc.current_epoch(), 0);

  const SnapshotReader reader(svc);
  EXPECT_EQ(reader.size(), 0);
  EXPECT_FALSE(reader.is_matched(3));
  EXPECT_EQ(reader.last_staleness(), 0);
}

TEST(ServiceBasic, CommittedMatchingEqualsSequentialGolden) {
  const Vertex n = 40;
  Rng rng(11);
  const auto ups = dyn_random_updates(n, 400, 0.7, rng);
  DynamicMatcherConfig gcfg;
  const testdiff::RunResult want = testdiff::run_sequential(n, ups, gcfg);

  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  cfg.coalesce_max = 32;
  MatchingService svc(n, cfg);
  EXPECT_TRUE(svc.submit_batch(ups));
  svc.flush();

  const auto snap = svc.latest();
  EXPECT_EQ(snap->updates_applied(), static_cast<std::int64_t>(ups.size()));
  EXPECT_EQ(std::vector<Vertex>(snap->mates().begin(), snap->mates().end()),
            want.mates);
  EXPECT_EQ(snap->size(), want.matching_size);
  EXPECT_EQ(snap->epoch(), svc.current_epoch());

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.updates_committed, static_cast<std::int64_t>(ups.size()));
  EXPECT_GE(st.epochs, static_cast<std::int64_t>(ups.size()) / 32);
  EXPECT_EQ(st.epochs, static_cast<std::int64_t>(st.epoch_log.size()));
  EXPECT_EQ(st.rebuilds, want.rebuilds);
  std::int64_t logged = 0;
  for (const EpochRecord& e : st.epoch_log) {
    EXPECT_GE(e.batch_size, 1);
    EXPECT_LE(e.batch_size, cfg.coalesce_max);
    EXPECT_GE(e.queue_depth, e.batch_size);
    logged += e.batch_size;
  }
  EXPECT_EQ(logged, st.updates_committed);

  svc.close();
  // After close the engine is quiescent and must agree with the snapshot.
  EXPECT_EQ(svc.engine().matching().size(), want.matching_size);
  EXPECT_EQ(svc.engine().rebuild_positions(), want.rebuild_positions);
}

TEST(ServiceBasic, BorrowedEngineIsServedInPlace) {
  const Vertex n = 30;
  Rng rng(5);
  const auto ups = dyn_random_updates(n, 200, 0.75, rng);
  const testdiff::RunResult want =
      testdiff::run_sequential(n, ups, DynamicMatcherConfig{});

  ShardedMatcherConfig ecfg;
  ecfg.shards = 2;
  ShardedDynamicMatcher engine(n, ecfg);
  {
    ServiceConfig cfg;
    cfg.coalesce_max = 16;
    MatchingService svc(engine, cfg);
    EXPECT_TRUE(svc.submit_batch(ups));
    svc.flush();
    EXPECT_EQ(svc.latest()->size(), want.matching_size);
  }  // destructor closes and joins
  EXPECT_EQ(engine.updates(), static_cast<std::int64_t>(ups.size()));
  const testdiff::RunResult got = testdiff::collect(engine);
  EXPECT_EQ(got.mates, want.mates);
  EXPECT_EQ(got.rebuild_positions, want.rebuild_positions);
}

TEST(ServiceBasic, SubmitFailsAfterCloseAndCloseIsIdempotent) {
  MatchingService svc(8, ServiceConfig{});
  EXPECT_TRUE(svc.submit({0, 1, true}));
  svc.flush();
  svc.close();
  svc.close();
  EXPECT_FALSE(svc.submit({1, 2, true}));
  EXPECT_FALSE(svc.try_submit({1, 2, true}));
  const std::vector<EdgeUpdate> more{{2, 3, true}};
  EXPECT_FALSE(svc.submit_batch(more));
  svc.flush();  // nothing pending; must not hang
  EXPECT_EQ(svc.stats().updates_committed, 1);
}

TEST(ServiceBasic, RefusedConcurrentSubmitsDoNotStrandFlush) {
  // Regression: flush() captures submitted_ as its target; a concurrent
  // submit in its count-then-push window whose push is then refused (queue
  // closed) rolls the counter back, and the old predicate (committed_ >=
  // target alone) could wait for a count that will never commit. The fixed
  // predicate also releases once committed_ catches submitted_, and both
  // refusal paths notify — so flush must always return here no matter how
  // the submits interleave with the captures. A regression shows up as this
  // test hanging into the ctest timeout.
  MatchingService svc(8, ServiceConfig{});
  EXPECT_TRUE(svc.submit({0, 1, true}));
  svc.flush();
  svc.close();

  constexpr int kIters = 200;
  std::thread submitter([&] {
    for (int i = 0; i < kIters; ++i) EXPECT_FALSE(svc.submit({1, 2, true}));
  });
  std::thread trier([&] {
    for (int i = 0; i < kIters; ++i) EXPECT_FALSE(svc.try_submit({2, 3, true}));
  });
  for (int i = 0; i < kIters; ++i) svc.flush();
  submitter.join();
  trier.join();
  svc.flush();
  EXPECT_EQ(svc.stats().updates_committed, 1);
}

// -------------------------------------------------- ServiceMultiReaderStress

// gtest assertions are not thread-safe: readers record violations as strings
// and the main thread asserts after joining.
TEST(ServiceMultiReaderStress, EverySnapshotMatchesGoldenAtItsUpdateCount) {
  const Vertex n = 48;
  Rng rng(17);
  const auto ups = dyn_random_updates(n, 500, 0.7, rng);
  DynamicMatcherConfig gcfg;
  const GoldenTrajectory golden = golden_trajectory(n, ups, gcfg);

  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.threads = 2;
  cfg.max_lag = 3;
  cfg.queue_capacity = 64;
  cfg.coalesce_max = 16;
  MatchingService svc(n, cfg);

  constexpr int kReaders = 4;
  std::atomic<bool> stop{false};
  std::vector<std::vector<std::string>> violations(kReaders);
  std::vector<std::int64_t> reads(kReaders, 0);
  std::vector<std::thread> threads;
  threads.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      SnapshotReader reader(svc);
      auto& errs = violations[static_cast<std::size_t>(t)];
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = reader.snapshot();
        const auto u = static_cast<std::size_t>(snap->updates_applied());
        if (u >= golden.digest.size()) {
          errs.push_back("updates_applied out of range: " + std::to_string(u));
          break;
        }
        if (mates_digest(snap->mates()) != golden.digest[u])
          errs.push_back("mates diverge from golden at u=" + std::to_string(u));
        if (snap->size() != golden.size[u])
          errs.push_back("size diverges from golden at u=" + std::to_string(u));
        if (reader.last_staleness() > cfg.max_lag)
          errs.push_back("staleness " + std::to_string(reader.last_staleness()) +
                         " exceeds max_lag");
        ++reads[static_cast<std::size_t>(t)];
      }
    });
  }

  // Single producer: golden prefixes assume submission order == stream order.
  for (const EdgeUpdate& up : ups) ASSERT_TRUE(svc.submit(up));
  svc.flush();
  stop.store(true, std::memory_order_release);
  for (std::thread& th : threads) th.join();

  for (int t = 0; t < kReaders; ++t) {
    const auto& errs = violations[static_cast<std::size_t>(t)];
    EXPECT_TRUE(errs.empty()) << "reader " << t << ": " << errs.front()
                              << " (+" << errs.size() - 1 << " more)";
    EXPECT_GE(reads[static_cast<std::size_t>(t)], 1);
  }

  const auto fin = svc.latest();
  EXPECT_EQ(fin->updates_applied(), static_cast<std::int64_t>(ups.size()));
  EXPECT_EQ(mates_digest(fin->mates()), golden.digest.back());

  const ServiceStats st = svc.stats();
  EXPECT_EQ(st.updates_committed, static_cast<std::int64_t>(ups.size()));
  ASSERT_EQ(st.staleness_hist.size(), static_cast<std::size_t>(cfg.max_lag) + 2);
  // The refresh rule makes reads beyond max_lag impossible: the overflow
  // bucket is structurally empty.
  EXPECT_EQ(st.staleness_hist.back(), 0);
  std::int64_t histed = 0;
  for (const std::int64_t c : st.staleness_hist) histed += c;
  EXPECT_EQ(histed, st.reads);
  EXPECT_GE(st.reads, kReaders);
}

// ------------------------------------------------------- ServiceWriterStall

TEST(ServiceWriterStall, PublicationWaitsForLaggingReader) {
  ServiceConfig cfg;
  cfg.max_lag = 1;
  cfg.coalesce_max = 1;  // one update per epoch, so the gate is per-update
  cfg.queue_capacity = 1;
  cfg.stall_writer = true;
  MatchingService svc(8, cfg);
  SnapshotReader reader(svc);  // registered, deliberately not reading yet

  // Epoch 1 may publish against observed = 0 (staleness exactly max_lag);
  // epoch 2 must stall until the reader observes >= 1. With no reads yet the
  // writer provably blocks in the gate, so polling writer_stalled() is a
  // deterministic rendezvous — no sleeps.
  EXPECT_TRUE(svc.submit({0, 1, true}));
  EXPECT_TRUE(svc.submit({2, 3, true}));
  EXPECT_TRUE(svc.submit({4, 5, true}));
  while (!svc.writer_stalled()) std::this_thread::yield();
  EXPECT_EQ(svc.current_epoch(), 1);

  // Reading advances the SSP clock and releases the writer epoch by epoch.
  while (svc.current_epoch() < 3) (void)reader.size();
  svc.flush();
  EXPECT_EQ(svc.current_epoch(), 3);
  EXPECT_EQ(svc.stats().updates_committed, 3);
  EXPECT_GE(svc.stats().writer_stalls, 1);
  EXPECT_EQ(reader.size(), 3);
}

TEST(ServiceWriterStall, CloseOverridesTheStall) {
  ServiceConfig cfg;
  cfg.max_lag = 1;
  cfg.coalesce_max = 1;
  cfg.stall_writer = true;
  MatchingService svc(8, cfg);
  SnapshotReader reader(svc);  // never reads: the writer would stall forever

  EXPECT_TRUE(svc.submit({0, 1, true}));
  EXPECT_TRUE(svc.submit({2, 3, true}));
  EXPECT_TRUE(svc.submit({4, 5, true}));
  svc.close();  // must lift the gate, drain everything, and join
  EXPECT_EQ(svc.current_epoch(), 3);
  EXPECT_EQ(svc.latest()->size(), 3);
}

TEST(ServiceWriterStall, DepartingReaderReleasesTheWriter) {
  ServiceConfig cfg;
  cfg.max_lag = 1;
  cfg.coalesce_max = 1;
  cfg.stall_writer = true;
  MatchingService svc(8, cfg);
  {
    SnapshotReader lagging(svc);
    EXPECT_TRUE(svc.submit({0, 1, true}));
    EXPECT_TRUE(svc.submit({2, 3, true}));
    EXPECT_LE(svc.current_epoch(), 1);
  }  // deregistration wakes the stalled writer
  svc.flush();
  EXPECT_EQ(svc.current_epoch(), 2);
}

}  // namespace
}  // namespace bmf
