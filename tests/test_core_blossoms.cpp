#include <gtest/gtest.h>

#include "core/blossoms.hpp"
#include "matching/matching.hpp"

namespace bmf {
namespace {

/// Checks that `path` alternates unmatched/matched/... (starting unmatched)
/// and has an even number of edges — the Lemma 3.5 guarantee.
void expect_even_alternating(const std::vector<Vertex>& path, const Matching& m) {
  ASSERT_EQ(path.size() % 2, 1u) << "odd edge count";
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const bool should_be_matched = (i % 2 == 1);
    EXPECT_EQ(m.has(path[i], path[i + 1]), should_be_matched)
        << "edge " << i << ": " << path[i] << "-" << path[i + 1];
  }
}

TEST(BlossomArena, ResetMakesTrivialBlossoms) {
  BlossomArena arena;
  arena.reset(5);
  EXPECT_EQ(arena.num_blossoms(), 5);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(arena.omega(v), v);
    EXPECT_EQ(arena.base(v), v);
    EXPECT_TRUE(arena.node(v).is_trivial());
    EXPECT_EQ(arena.vertex_count(v), 1);
  }
}

class TriangleBlossom : public ::testing::Test {
 protected:
  void SetUp() override {
    arena.reset(3);
    m = Matching(3);
    m.add(1, 2);
    // Cycle 0-1-2-0; e_0 = {0,1} unmatched, e_1 = {1,2} matched,
    // e_2 = {2,0} unmatched; base = 0.
    b = arena.make_composite({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}});
  }
  BlossomArena arena;
  Matching m;
  BlossomId b = kNoBlossom;
};

TEST_F(TriangleBlossom, OmegaResolvesToComposite) {
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(arena.omega(v), b);
  EXPECT_EQ(arena.base(b), 0);
  EXPECT_EQ(arena.vertex_count(b), 3);
  EXPECT_EQ(arena.depth(0), 1);
}

TEST_F(TriangleBlossom, EvenPathToEachVertex) {
  EXPECT_EQ(arena.even_path(b, 0), (std::vector<Vertex>{0}));
  const auto p1 = arena.even_path(b, 1);
  EXPECT_EQ(p1, (std::vector<Vertex>{0, 2, 1}));
  expect_even_alternating(p1, m);
  const auto p2 = arena.even_path(b, 2);
  EXPECT_EQ(p2, (std::vector<Vertex>{0, 1, 2}));
  expect_even_alternating(p2, m);
}

class NestedBlossom : public ::testing::Test {
 protected:
  void SetUp() override {
    arena.reset(7);
    m = Matching(7);
    m.add(1, 2);
    m.add(3, 4);
    m.add(5, 6);
    inner = arena.make_composite({0, 1, 2}, {{0, 1}, {1, 2}, {2, 0}});
    // 5-cycle of children [inner, 3, 4, 5, 6]:
    // e_0 = {2,3} unmatched, e_1 = {3,4} matched, e_2 = {4,5} unmatched,
    // e_3 = {5,6} matched, e_4 = {6,1} unmatched. Base stays 0.
    outer = arena.make_composite({inner, 3, 4, 5, 6},
                                 {{2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 1}});
  }
  BlossomArena arena;
  Matching m;
  BlossomId inner = kNoBlossom, outer = kNoBlossom;
};

TEST_F(NestedBlossom, OmegaAndCounts) {
  for (Vertex v = 0; v < 7; ++v) EXPECT_EQ(arena.omega(v), outer);
  EXPECT_EQ(arena.base(outer), 0);
  EXPECT_EQ(arena.vertex_count(outer), 7);
  EXPECT_EQ(arena.depth(1), 2);
  EXPECT_EQ(arena.depth(4), 1);
}

TEST_F(NestedBlossom, EvenPathsThroughNesting) {
  for (Vertex target = 0; target < 7; ++target) {
    const auto p = arena.even_path(outer, target);
    ASSERT_FALSE(p.empty());
    EXPECT_EQ(p.front(), 0);
    EXPECT_EQ(p.back(), target);
    expect_even_alternating(p, m);
    // Simplicity: no repeated vertices.
    auto sorted = p;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST_F(NestedBlossom, ForwardAndBackwardDirections) {
  // Forward (even cycle index): target 6 sits in cycle slot 4.
  EXPECT_EQ(arena.even_path(outer, 6), (std::vector<Vertex>{0, 1, 2, 3, 4, 5, 6}));
  // Backward (odd cycle index): target 3 sits in cycle slot 1.
  EXPECT_EQ(arena.even_path(outer, 3), (std::vector<Vertex>{0, 2, 1, 6, 5, 4, 3}));
}

TEST(BlossomArenaDeath, CompositeNeedsOddCycle) {
#ifdef BMF_ASSERTS
  BlossomArena arena;
  arena.reset(4);
  Matching m(4);
  EXPECT_DEATH(arena.make_composite({0, 1}, {{0, 1}, {1, 0}}), "ASSERT");
#else
  GTEST_SKIP() << "assertions disabled";
#endif
}

}  // namespace
}  // namespace bmf
