#include <gtest/gtest.h>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
