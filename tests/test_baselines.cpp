#include <gtest/gtest.h>

#include "baselines/mcgregor.hpp"
#include "matching/blossom_exact.hpp"
#include "matching/greedy.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

TEST(McGregor, ScheduleIsExponentialInOneOverEps) {
  McGregorConfig c2, c4;
  c2.eps = 0.5;   // k = 2 -> (2k)^k = 16
  c4.eps = 0.25;  // k = 4 -> (2k)^k = 4096
  Matching dummy(0);
  const Graph g0 = make_graph(0, {});
  const auto s2 = mcgregor_boost(g0, dummy, c2);
  const auto s4 = mcgregor_boost(g0, dummy, c4);
  EXPECT_EQ(s2.scheduled_repetitions, 16);
  EXPECT_EQ(s4.scheduled_repetitions, 4096);
}

class McGregorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(McGregorTest, BoostsChains) {
  const Graph g = gen_augmenting_chains(8, 2);
  McGregorConfig cfg;
  cfg.eps = 0.34;  // k = 3 covers length-5 augmenting paths
  cfg.seed = GetParam();
  cfg.stall_limit = 64;
  auto [m, stats] = mcgregor_matching(g, cfg);
  EXPECT_TRUE(m.is_valid_in(g));
  const std::int64_t mu = maximum_matching_size(g);
  EXPECT_GE(static_cast<double>(m.size()) * (1.0 + cfg.eps),
            static_cast<double>(mu));
  EXPECT_GT(stats.repetitions, 0);
}

TEST_P(McGregorTest, BoostsRandomGraphs) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(80, 240, rng);
  McGregorConfig cfg;
  cfg.eps = 0.5;
  cfg.seed = GetParam();
  cfg.stall_limit = 32;
  auto [m, stats] = mcgregor_matching(g, cfg);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_GE(static_cast<double>(m.size()) * 1.5,
            static_cast<double>(maximum_matching_size(g)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, McGregorTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(McGregor, AugmentationsImproveOverGreedy) {
  // On the chain gadgets greedy is strictly suboptimal; McGregor must find
  // at least one augmentation.
  const Graph g = gen_disjoint_paths(10, 3);
  Matching m(g.num_vertices());
  // Adversarial greedy: match the middle edge of every path.
  for (Vertex c = 0; c < 10; ++c) m.add(c * 4 + 1, c * 4 + 2);
  McGregorConfig cfg;
  cfg.eps = 0.5;
  cfg.stall_limit = 32;
  const auto stats = mcgregor_boost(g, m, cfg);
  EXPECT_EQ(m.size(), 20);  // all paths augmented to 2 edges
  EXPECT_GE(stats.augmentations, 10);
}

}  // namespace
}  // namespace bmf
