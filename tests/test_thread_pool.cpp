#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace bmf {
namespace {

TEST(ThreadPool, ResolveThreads) {
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(8), 8);
  EXPECT_GE(ThreadPool::resolve_threads(0), 1);
}

TEST(ThreadPool, SizeMatchesConfiguredConcurrency) {
  for (int t : {1, 2, 4, 8}) {
    ThreadPool pool(t);
    EXPECT_EQ(pool.size(), t);
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int t : {1, 2, 8}) {
    ThreadPool pool(t);
    constexpr std::int64_t kN = 10000;
    std::vector<std::atomic<int>> hits(kN);
    pool.parallel_for(kN, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; });
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelForEmptyAndSingleton) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(1, [&](std::int64_t i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  constexpr int kTasks = 64;
  for (int i = 0; i < kTasks; ++i) pool.submit([&] { ++done; });
  for (int spins = 0; spins < 5000 && done.load() < kTasks; ++spins)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, SubmitOnSerialPoolRunsInline) {
  ThreadPool pool(1);
  int done = 0;
  pool.submit([&] { ++done; });
  EXPECT_EQ(done, 1);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::int64_t> total{0};
  pool.parallel_for(8, [&](std::int64_t) {
    pool.parallel_for(8, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::int64_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ParallelForThreadsHelperMatchesSerial) {
  constexpr std::int64_t kN = 4096;
  std::vector<std::int64_t> serial(kN), parallel(kN);
  for (std::int64_t i = 0; i < kN; ++i) serial[static_cast<std::size_t>(i)] = i * i;
  parallel_for_threads(8, kN, [&](std::int64_t i) {
    parallel[static_cast<std::size_t>(i)] = i * i;
  });
  EXPECT_EQ(serial, parallel);
}

TEST(ThreadPool, ParallelReduceIsDeterministicAndOrdered) {
  // Left-to-right combine on a non-commutative operation: a polynomial hash
  // over the index sequence; any reordering changes the value.
  const auto map = [](std::int64_t i) { return static_cast<std::uint64_t>(i + 1); };
  const auto combine = [](std::uint64_t acc, std::uint64_t x) {
    return acc * 31 + x;
  };
  const std::uint64_t expect =
      parallel_reduce_threads(1, 200, std::uint64_t{7}, map, combine);
  for (int t : {2, 8}) {
    EXPECT_EQ(parallel_reduce_threads(t, 200, std::uint64_t{7}, map, combine),
              expect)
        << "threads=" << t;
  }
}

TEST(ThreadPool, SharedPoolsAreCachedPerSize) {
  ThreadPool& a = ThreadPool::shared(3);
  ThreadPool& b = ThreadPool::shared(3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 3);
}

TEST(ThreadPool, DedicatedThreadJoinsOnDestructionAndIsIdempotent) {
  std::atomic<bool> ran{false};
  {
    DedicatedThread t([&] { ran.store(true, std::memory_order_release); });
    t.join();
    t.join();  // second join is a no-op
  }  // destructor would join too
  EXPECT_TRUE(ran.load(std::memory_order_acquire));
}

TEST(ThreadPool, DedicatedThreadJoinsOnUnwind) {
  // The replay core's overlap path relies on this: an exception in the
  // overlapped work must not leak the rebuild thread past its captures.
  std::atomic<bool> ran{false};
  EXPECT_THROW(
      {
        DedicatedThread t([&] { ran.store(true, std::memory_order_release); });
        throw std::runtime_error("overlap failed");
      },
      std::runtime_error);
  EXPECT_TRUE(ran.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace bmf
