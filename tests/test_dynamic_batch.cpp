#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "differential_util.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/partial_dynamic.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/thread_pool.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

using testdiff::RunResult;

/// The flat half of the shared checker (tests/differential_util.hpp): this
/// suite focuses on `DynamicMatcher::apply_batch`; the sharded grid runs in
/// test_sharded_dynamic.cpp and the cross-engine loop in
/// test_replay_core.cpp.
void expect_batched_equals_sequential(Vertex n, const std::vector<EdgeUpdate>& ups,
                                      double eps, std::uint64_t seed) {
  DynamicMatcherConfig cfg;
  cfg.eps = eps;
  cfg.seed = seed;
  testdiff::GridOptions opt;
  opt.flat_batch_sizes = {1, 7, 64, static_cast<std::int64_t>(ups.size())};
  opt.run_sharded_grid = false;
  testdiff::expect_all_engines_equal(n, ups, cfg, opt);
}

class BatchDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchDifferential, RandomMixedStreams) {
  Rng rng(GetParam());
  const auto ups = dyn_random_updates(48, 400, 0.7, rng);
  expect_batched_equals_sequential(48, ups, 0.25, GetParam());
}

TEST_P(BatchDifferential, DeletionHeavyStreams) {
  Rng rng(GetParam() + 100);
  const auto ups = dyn_random_updates(40, 400, 0.45, rng);
  expect_batched_equals_sequential(40, ups, 0.5, GetParam());
}

TEST_P(BatchDifferential, SlidingWindow) {
  Rng rng(GetParam() + 200);
  const auto ups = dyn_sliding_window(40, 60, 350, rng);
  expect_batched_equals_sequential(40, ups, 0.25, GetParam());
}

TEST_P(BatchDifferential, ChurnPlanted) {
  Rng rng(GetParam() + 300);
  const auto ups = dyn_churn_planted(40, 350, rng);
  expect_batched_equals_sequential(40, ups, 0.25, GetParam());
}

TEST_P(BatchDifferential, MatchedTeardownRounds) {
  // Rounds of planted-pair build-up followed by consecutive deletion of every
  // matched pair: the teardowns are maximal heavy runs with disjoint
  // endpoints, driving the parallel reservation rematch (and its truncation
  // at rebuild triggers) rather than the light-prefix path.
  Rng rng(GetParam() + 500);
  const Vertex pairs = 18;
  std::vector<EdgeUpdate> ups;
  std::vector<Vertex> order(static_cast<std::size_t>(pairs));
  for (int round = 0; round < 3; ++round) {
    for (Vertex i = 0; i < pairs; ++i)
      ups.push_back(EdgeUpdate::ins(2 * i, 2 * i + 1));
    // A few cross edges so freed endpoints have rematch candidates.
    for (Vertex i = 0; i + 1 < pairs; i += 3)
      ups.push_back(EdgeUpdate::ins(2 * i + 1, 2 * i + 2));
    // Shuffled teardown of every planted pair, then the cross edges.
    for (Vertex i = 0; i < pairs; ++i) order[static_cast<std::size_t>(i)] = i;
    rng.shuffle(order);
    for (const Vertex j : order) ups.push_back(EdgeUpdate::del(2 * j, 2 * j + 1));
    for (Vertex i = 0; i + 1 < pairs; i += 3)
      ups.push_back(EdgeUpdate::del(2 * i + 1, 2 * i + 2));
  }
  expect_batched_equals_sequential(2 * pairs, ups, 1.0, GetParam());
}

TEST_P(BatchDifferential, HotBurstBatches) {
  // Skewed batches maximize endpoint conflicts inside each batch, driving
  // the prefix-cutting pass rather than the embarrassingly-parallel path.
  Rng rng(GetParam() + 400);
  const auto batches = dyn_batched_bursts(48, 8, 50, 0.65, 0.8, rng);
  std::vector<EdgeUpdate> flat;
  for (const auto& b : batches) flat.insert(flat.end(), b.begin(), b.end());
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = GetParam();
  const RunResult want = testdiff::run_sequential(48, flat, cfg);
  const ForceParallelSmallWork force;
  for (const int threads : {1, 2, 8}) {
    MatrixWeakOracle oracle(48);
    cfg.threads = threads;
    DynamicMatcher dm(48, oracle, cfg);
    for (const auto& b : batches) dm.apply_batch(b);
    EXPECT_EQ(testdiff::collect(dm), want) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchDifferential, ::testing::Values(1u, 2u, 3u));

TEST(BatchDifferential, EmptyUpdatesAndNoOps) {
  // Empty updates, duplicate insertions, deletions of absent edges, and
  // re-insertions all count toward chunk accounting; the batch path must
  // agree on every counter.
  std::vector<EdgeUpdate> ups;
  for (Vertex i = 0; i < 10; ++i) ups.push_back(EdgeUpdate::ins(i, i + 10));
  ups.push_back(EdgeUpdate::none());
  ups.push_back(EdgeUpdate::ins(0, 10));   // duplicate insert (no-op)
  ups.push_back(EdgeUpdate::del(5, 19));   // absent edge (no-op)
  ups.push_back(EdgeUpdate::del(0, 10));   // matched deletion (heavy)
  ups.push_back(EdgeUpdate::none());
  ups.push_back(EdgeUpdate::ins(0, 10));   // re-insert
  ups.push_back(EdgeUpdate::ins(10, 11));  // conflicts with the re-insert
  DynamicMatcherConfig cfg;
  cfg.eps = 0.5;
  const RunResult want = testdiff::run_sequential(20, ups, cfg);
  for (const int threads : {1, 2, 8})
    EXPECT_EQ(testdiff::run_flat_batched(20, ups, cfg, threads, 100), want)
        << "threads=" << threads;
}

TEST(BatchDifferential, InvalidUpdateRejectedBeforeMutation) {
  MatrixWeakOracle oracle(8);
  DynamicMatcherConfig cfg;
  DynamicMatcher dm(8, oracle, cfg);
  std::vector<EdgeUpdate> bad{EdgeUpdate::ins(0, 1), EdgeUpdate::ins(3, 3)};
  EXPECT_THROW(dm.apply_batch(bad), std::invalid_argument);
  // The whole batch is validated up front: nothing was applied.
  EXPECT_EQ(dm.updates(), 0);
  EXPECT_EQ(dm.graph().num_edges(), 0);
}

TEST(Problem1Batch, ChunkThreadCountEquivalence) {
  // Chunks with duplicate edges and insert/erase toggles of the same edge
  // must resolve to the same graph and oracle state at any thread count.
  const Vertex n = 40;
  std::vector<EdgeUpdate> chunk;
  for (Vertex i = 0; i < 8; ++i) chunk.push_back(EdgeUpdate::ins(i, i + 8));
  chunk.push_back(EdgeUpdate::ins(0, 8));   // duplicate
  chunk.push_back(EdgeUpdate::del(0, 8));   // toggle off
  chunk.push_back(EdgeUpdate::none());
  ASSERT_EQ(chunk.size(), 11u);

  std::vector<Graph> snapshots;
  std::vector<std::vector<Edge>> answers;
  const ForceParallelSmallWork force;
  for (const int threads : {1, 2, 8}) {
    MatrixWeakOracle oracle(n);
    Problem1Instance p1(n, oracle, /*q=*/2, /*lambda=*/0.5, /*delta=*/0.01,
                        /*alpha=*/0.275);
    ASSERT_EQ(p1.chunk_size(), 11);
    p1.apply_chunk(chunk, threads);
    snapshots.push_back(p1.graph().snapshot());
    std::vector<Vertex> s;
    for (Vertex v = 0; v < n; ++v) s.push_back(v);
    answers.push_back(p1.query(s).matching);
  }
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    ASSERT_EQ(snapshots[i].num_edges(), snapshots[0].num_edges());
    for (std::int64_t e = 0; e < snapshots[0].num_edges(); ++e)
      EXPECT_EQ(snapshots[i].edges()[static_cast<std::size_t>(e)],
                snapshots[0].edges()[static_cast<std::size_t>(e)]);
    EXPECT_EQ(answers[i], answers[0]);
  }
  EXPECT_FALSE(snapshots[0].has_edge(0, 8));  // the toggle netted out
  EXPECT_EQ(snapshots[0].num_edges(), 7);
}

TEST(PartialDynamicBatch, IncrementalBatchMatchesSerial) {
  Rng rng(5);
  const ForceParallelSmallWork force;
  const Graph g = gen_random_graph(40, 140, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.threads = 4;
  MatrixWeakOracle o1(40), o2(40);
  IncrementalMatcher serial(40, o1, cfg), batched(40, o2, cfg);
  for (const Edge& e : g.edges()) serial.insert(e.u, e.v);
  batched.insert_batch(g.edges());
  EXPECT_EQ(serial.rebuilds(), batched.rebuilds());
  EXPECT_EQ(serial.matching().size(), batched.matching().size());
  for (Vertex v = 0; v < 40; ++v)
    EXPECT_EQ(serial.matching().mate(v), batched.matching().mate(v));
}

TEST(PartialDynamicBatch, DecrementalEraseBatchMatchesSerial) {
  Rng rng(6);
  const ForceParallelSmallWork force;
  const Graph g = gen_random_graph(36, 120, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.threads = 4;
  MatrixWeakOracle o1(36), o2(36);
  DecrementalMatcher serial(g, o1, cfg), batched(g, o2, cfg);
  std::vector<Edge> doomed(g.edges().begin(), g.edges().begin() + 40);
  for (const Edge& e : doomed) serial.erase(e.u, e.v);
  batched.erase_batch(doomed);
  EXPECT_EQ(serial.updates(), batched.updates());
  EXPECT_EQ(serial.rebuilds(), batched.rebuilds());
  for (Vertex v = 0; v < 36; ++v)
    EXPECT_EQ(serial.matching().mate(v), batched.matching().mate(v));
}

TEST(PartialDynamicBatch, EraseBatchRejectsDuplicatesAndAbsentEdges) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {2, 3}});
  DynamicMatcherConfig cfg;
  MatrixWeakOracle oracle(4);
  DecrementalMatcher dec(g, oracle, cfg);
  // A duplicated deletion must fail like the second of two erase() calls.
  EXPECT_THROW(dec.erase_batch(std::vector<Edge>{{0, 1}, {0, 1}}),
               std::invalid_argument);
  EXPECT_THROW(dec.erase_batch(std::vector<Edge>{{0, 2}}), std::invalid_argument);
  dec.erase_batch(std::vector<Edge>{{0, 1}});
  EXPECT_FALSE(dec.graph().has_edge(0, 1));
}

TEST(DynWorkloads, SliceUpdatesRoundtrip) {
  Rng rng(9);
  const auto ups = dyn_random_updates(20, 103, 0.6, rng);
  const auto batches = slice_updates(ups, 10);
  ASSERT_EQ(batches.size(), 11u);
  EXPECT_EQ(batches.back().size(), 3u);
  std::size_t i = 0;
  for (const auto& b : batches)
    for (const EdgeUpdate& up : b) {
      EXPECT_EQ(up.u, ups[i].u);
      EXPECT_EQ(up.v, ups[i].v);
      EXPECT_EQ(up.insert, ups[i].insert);
      ++i;
    }
  EXPECT_EQ(i, ups.size());
}

TEST(DynWorkloads, BatchedBurstsAreValidAndSkewed) {
  Rng rng(11);
  const auto batches = dyn_batched_bursts(64, 6, 40, 0.7, 0.9, rng);
  ASSERT_EQ(batches.size(), 6u);
  DynGraph g(64);
  std::int64_t hot_endpoints = 0, endpoints = 0;
  for (const auto& b : batches) {
    EXPECT_EQ(b.size(), 40u);
    for (const EdgeUpdate& up : b) {
      if (up.insert) {
        EXPECT_TRUE(g.insert(up.u, up.v));
      } else {
        EXPECT_TRUE(g.erase(up.u, up.v));
      }
      endpoints += 2;
      hot_endpoints += (up.u < 4) + (up.v < 4);  // hot set = max(2, 64/16) = 4
    }
  }
  // The 4-vertex hot set saturates fast (only 6 possible edges), so the
  // global fallback draws too — but the hot share must still sit far above
  // the uniform baseline of 4/64 = 6.25% of endpoints.
  EXPECT_GT(hot_endpoints * 5, endpoints);
}

}  // namespace
}  // namespace bmf
