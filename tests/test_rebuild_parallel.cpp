/// Differential suite for the parallel Theorem 6.2 rebuild engine:
///
///  * FrameworkDriver's per-structure H'/H'_s discovery fans out across
///    cfg.threads with private buffers merged in structure-id order, so
///    boost_matching / static_weak_matching must be bit-identical (matching,
///    stats, oracle call counts) at 1, 2, and 8 threads;
///  * DynamicMatcher's heavy-run reservation rematch and overlapped rebuild
///    must keep apply_batch bit-identical to the sequential apply loop on
///    deletion-heavy and adaptive-rebuild schedules at any thread count.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/framework.hpp"
#include "core/oracle.hpp"
#include "differential_util.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

// ---------------------------------------------------------------------------
// Static boost: thread-count identity of the parallel discovery.
// ---------------------------------------------------------------------------

struct BoostFingerprint {
  std::vector<Vertex> mates;
  std::int64_t stage_loops = 0;
  std::int64_t stage_iterations = 0;
  std::int64_t ca_iterations = 0;
  std::int64_t truncated_loops = 0;
  std::int64_t total_oracle_calls = 0;
  std::int64_t augmenting_paths = 0;
  bool certified = false;

  friend bool operator==(const BoostFingerprint&, const BoostFingerprint&) =
      default;
};

BoostFingerprint boost_fingerprint(const Graph& g, int threads,
                                   std::uint64_t seed) {
  // Disable the size gates so discovery fans out even on these small graphs
  // (the gates are perf-only; this suite exists to exercise the parallel
  // paths, under TSan in CI).
  const ForceParallelSmallWork force;
  RandomGreedyMatchingOracle oracle(seed);
  CoreConfig cfg;
  cfg.eps = 0.5;
  cfg.threads = threads;
  const BoostResult r = boost_matching(g, oracle, cfg);
  BoostFingerprint f;
  for (Vertex v = 0; v < g.num_vertices(); ++v) f.mates.push_back(r.matching.mate(v));
  f.stage_loops = r.stats.stage_loops;
  f.stage_iterations = r.stats.stage_iterations;
  f.ca_iterations = r.stats.ca_iterations;
  f.truncated_loops = r.stats.truncated_loops;
  f.total_oracle_calls = r.total_oracle_calls;
  f.augmenting_paths = r.outcome.augmenting_paths;
  f.certified = r.outcome.certified;
  return f;
}

TEST(RebuildParallel, BoostMatchingIdenticalAcrossThreadCounts) {
  Rng rng(41);
  const Graph graphs[] = {gen_random_graph(80, 300, rng),
                          gen_augmenting_chains(6, 3),
                          gen_near_regular(60, 5, rng)};
  for (const Graph& g : graphs) {
    const BoostFingerprint want = boost_fingerprint(g, 1, 7);
    for (const int threads : {2, 8})
      EXPECT_EQ(boost_fingerprint(g, threads, 7), want)
          << "threads=" << threads << " n=" << g.num_vertices();
  }
}

struct WeakFingerprint {
  std::vector<Vertex> mates;
  std::int64_t weak_calls = 0;
  std::int64_t sampled_iterations = 0;
  friend bool operator==(const WeakFingerprint&, const WeakFingerprint&) =
      default;
};

TEST(RebuildParallel, StaticWeakMatchingIdenticalAcrossThreadCounts) {
  Rng rng(43);
  const Graph g = gen_random_graph(70, 240, rng);

  const auto run = [&](int threads) {
    const ForceParallelSmallWork force;
    MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
    WeakSimConfig cfg;
    cfg.core.eps = 0.5;
    cfg.core.seed = 11;
    cfg.core.threads = threads;
    const WeakBoostResult r = static_weak_matching(g, oracle, cfg);
    WeakFingerprint f;
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      f.mates.push_back(r.matching.mate(v));
    f.weak_calls = r.weak_calls;
    f.sampled_iterations = r.sampled_iterations;
    return f;
  };

  const auto want = run(1);
  EXPECT_GT(want.weak_calls, 0);
  for (const int threads : {2, 8})
    EXPECT_EQ(run(threads), want) << "threads=" << threads;
}

// ---------------------------------------------------------------------------
// Rebuild participation: shard-owned discovery sweeps vs the flat sweep.
// ---------------------------------------------------------------------------

/// The Theorem 6.2 boost driven through `ShardedRebuildParticipation`
/// (sharded_matcher.hpp): each shard scans only the snapshot rows it owns and
/// the coordinator splices the pos-tagged buffers — the result must be
/// bit-identical to the flat single-participant sweep at every
/// (participants x threads), with the ledger charged only for real shards.
TEST(RebuildParallelParticipation, StaticBoostIdenticalAcrossParticipants) {
  Rng rng(47);
  const Graph g = gen_random_graph(70, 240, rng);
  const ForceParallelSmallWork force;

  const auto run = [&](RebuildParticipation* participation, int threads) {
    MatrixWeakOracle oracle = MatrixWeakOracle::from_graph(g);
    WeakSimConfig cfg;
    cfg.core.eps = 0.5;
    cfg.core.seed = 11;
    cfg.core.threads = threads;
    const WeakBoostResult r =
        static_weak_boost(g, Matching(g.num_vertices()), oracle, cfg,
                          participation);
    WeakFingerprint f;
    for (Vertex v = 0; v < g.num_vertices(); ++v)
      f.mates.push_back(r.matching.mate(v));
    f.weak_calls = r.weak_calls;
    f.sampled_iterations = r.sampled_iterations;
    return f;
  };

  const WeakFingerprint want = run(nullptr, 1);
  EXPECT_GT(want.weak_calls, 0);
  for (const int shards : {1, 2, 4}) {
    const VertexPartition part(g.num_vertices(), shards);
    for (const int threads : {1, 8}) {
      ShardedRebuildParticipation participation(part);
      EXPECT_EQ(run(&participation, threads), want)
          << "shards=" << shards << " threads=" << threads;
      if (shards == 1) {
        // One participant: nothing crosses, nothing is charged.
        EXPECT_EQ(participation.bytes(), 0);
        EXPECT_EQ(participation.rounds(), 0);
      } else {
        // The boost distributed the snapshot and gathered sweep candidates.
        EXPECT_GT(participation.bytes(), 0)
            << "shards=" << shards << " threads=" << threads;
        EXPECT_GT(participation.rounds(), 0)
            << "shards=" << shards << " threads=" << threads;
        // Deterministic ledger: an identical boost charges identical traffic.
        ShardedRebuildParticipation again(part);
        EXPECT_EQ(run(&again, threads), want);
        EXPECT_EQ(again.bytes(), participation.bytes())
            << "shards=" << shards << " threads=" << threads;
        EXPECT_EQ(again.rounds(), participation.rounds())
            << "shards=" << shards << " threads=" << threads;
      }
    }
  }
}

TEST(RebuildParallelParticipation, FrameworkDriverHonorsParticipation) {
  // The A_matching boost through FrameworkDriver directly (no weak-oracle
  // wrapper): participation fans the H'/H'_s discovery out per shard and the
  // canonical merge must reproduce the flat sweep's derived graphs exactly —
  // pinned by matchings, framework stats, and oracle call counts.
  Rng rng(53);
  const Graph g = gen_random_graph(60, 220, rng);
  const ForceParallelSmallWork force;

  struct Fingerprint {
    std::vector<Vertex> mates;
    FrameworkStats stats;
    std::int64_t oracle_calls = 0;
    bool certified = false;
  };
  const auto run = [&](RebuildParticipation* participation, int threads) {
    RandomGreedyMatchingOracle oracle(7);
    CoreConfig cfg;
    cfg.eps = 0.5;
    cfg.threads = threads;
    FrameworkDriver driver(g, oracle, cfg, participation);
    PhaseEngine engine(g, cfg);
    Matching m(g.num_vertices());
    const BoostOutcome outcome = engine.run(m, driver);
    Fingerprint f;
    for (Vertex v = 0; v < g.num_vertices(); ++v) f.mates.push_back(m.mate(v));
    f.stats = driver.stats();
    f.oracle_calls = oracle.calls();
    f.certified = outcome.certified;
    return f;
  };

  const Fingerprint want = run(nullptr, 1);
  for (const int shards : {2, 4}) {
    const VertexPartition part(g.num_vertices(), shards);
    for (const int threads : {1, 8}) {
      ShardedRebuildParticipation participation(part);
      const Fingerprint got = run(&participation, threads);
      EXPECT_EQ(got.mates, want.mates)
          << "shards=" << shards << " threads=" << threads;
      EXPECT_EQ(got.stats.stage_loops, want.stats.stage_loops);
      EXPECT_EQ(got.stats.stage_iterations, want.stats.stage_iterations);
      EXPECT_EQ(got.stats.ca_iterations, want.stats.ca_iterations);
      EXPECT_EQ(got.stats.truncated_loops, want.stats.truncated_loops);
      EXPECT_EQ(got.oracle_calls, want.oracle_calls);
      EXPECT_EQ(got.certified, want.certified);
    }
  }
}

// ---------------------------------------------------------------------------
// Dynamic: sequential apply loop vs apply_batch with the reservation rematch
// and the overlapped rebuild.
// ---------------------------------------------------------------------------

using testdiff::RunResult;

/// Flat-engine grid with the overlap on/off axis, via the shared checker
/// (tests/differential_util.hpp).
void expect_all_modes_equal(Vertex n, const std::vector<EdgeUpdate>& ups,
                            const DynamicMatcherConfig& cfg,
                            std::int64_t min_rebuilds = 1) {
  testdiff::GridOptions opt;
  opt.flat_batch_sizes = {5, 64, static_cast<std::int64_t>(ups.size())};
  opt.overlap_axis = true;
  opt.run_sharded_grid = false;
  opt.min_rebuilds = min_rebuilds;
  testdiff::expect_all_engines_equal(n, ups, cfg, opt);
}

class RebuildDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RebuildDifferential, PlantedTeardownHeavyRuns) {
  Rng rng(GetParam());
  const Vertex pairs = 24, hubs = 5;
  const Vertex n = 2 * pairs + hubs;
  const auto ups = dyn_planted_teardown(pairs, hubs, rng);
  DynamicMatcherConfig cfg;
  // eps = 1 keeps the adaptive budget ~|M|/4 > 1, so the teardown produces
  // real multi-deletion reservation runs between rebuild triggers (tighter
  // eps collapses the budget to 1 on graphs this small, forcing every heavy
  // deletion down the serial path).
  cfg.eps = 1.0;
  cfg.seed = GetParam();
  expect_all_modes_equal(n, ups, cfg);
}

TEST_P(RebuildDifferential, DeletionHeavyAdaptiveSchedules) {
  Rng rng(GetParam() + 50);
  const auto ups = dyn_random_updates(44, 500, 0.35, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 1.0;
  cfg.seed = GetParam();
  expect_all_modes_equal(44, ups, cfg);
}

TEST_P(RebuildDifferential, InsertHeavyOverlapWindows) {
  // Insert-dominated stream with a tight fixed rebuild cadence: nearly every
  // rebuild is followed by an insertion window, driving the overlap path.
  Rng rng(GetParam() + 150);
  const auto ups = dyn_random_updates(40, 450, 0.95, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = GetParam();
  cfg.rebuild_every = 16;
  expect_all_modes_equal(40, ups, cfg, /*min_rebuilds=*/10);
}

TEST_P(RebuildDifferential, ChurnPlantedRebuildHeavy) {
  Rng rng(GetParam() + 250);
  const auto ups = dyn_churn_planted(40, 400, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = GetParam();
  expect_all_modes_equal(40, ups, cfg);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebuildDifferential,
                         ::testing::Values(1u, 2u, 3u));

TEST(RebuildDifferential, HeavyRunCompetingReservations) {
  // Two matched pairs deleted back to back share one free hub: the first
  // freed endpoint in commit order must win it, at every thread count.
  //   pairs (0,1), (2,3); hub 4 adjacent to 1, 2, 3; vertex 5 adjacent to 3.
  std::vector<EdgeUpdate> ups;
  ups.push_back(EdgeUpdate::ins(0, 1));
  ups.push_back(EdgeUpdate::ins(2, 3));
  ups.push_back(EdgeUpdate::ins(1, 4));
  ups.push_back(EdgeUpdate::ins(2, 4));
  ups.push_back(EdgeUpdate::ins(3, 4));
  ups.push_back(EdgeUpdate::ins(3, 5));
  ups.push_back(EdgeUpdate::del(0, 1));  // heavy: frees 0 and 1; 1 takes hub 4
  ups.push_back(EdgeUpdate::del(2, 3));  // heavy: hub gone, 3 must fall to 5
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.rebuild_every = 1 << 20;  // keep rebuilds out of this micro-scenario
  const RunResult want = testdiff::run_sequential(6, ups, cfg);
  EXPECT_EQ(want.mates[1], 4);
  EXPECT_EQ(want.mates[3], 5);
  EXPECT_EQ(want.mates[0], kNoVertex);
  EXPECT_EQ(want.mates[2], kNoVertex);
  for (const int threads : {1, 2, 8})
    EXPECT_EQ(testdiff::run_flat_batched(6, ups, cfg, threads, 8), want)
        << "threads=" << threads;
}

TEST(RebuildDifferential, HeavyRunTruncatesAtRebuildTrigger) {
  // A fixed budget forces a rebuild in the middle of a would-be heavy run;
  // the run must truncate so the rebuild fires at the exact sequential
  // position (pinned by rebuilds() and the weak-call count).
  Rng rng(99);
  const Vertex pairs = 16, hubs = 3;
  const Vertex n = 2 * pairs + hubs;
  const auto ups = dyn_planted_teardown(pairs, hubs, rng);
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.rebuild_every = 7;
  expect_all_modes_equal(n, ups, cfg, /*min_rebuilds=*/5);
}

}  // namespace
}  // namespace bmf
