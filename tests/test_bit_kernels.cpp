// Scalar-vs-SIMD differential suite for the BitMatrix word-scanning kernels,
// plus the tail-word hygiene and BMF_REQUIRE regressions.
//
// The dispatch contract (src/graph/bit_matrix.hpp): the AVX2 and scalar paths
// return identical values AND identical words_scanned on every input — both
// derive the count from the index of the first non-zero AND word. The
// differential tests therefore run every probe twice, scalar path pinned vs
// whatever active_bit_kernel() selects, at widths crossing the 64-bit word
// and 256-bit vector-block boundaries, and additionally check both against a
// naive bit-by-bit reference so the suite still proves correctness on
// machines where detection picks scalar for both runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/bit_matrix.hpp"
#include "util/rng.hpp"

namespace bmf {
namespace {

// Pins the scalar path for a scope; restores the prior override state on
// exit (NOT a blind clear: under a whole-run BMF_FORCE_SCALAR=1 pin the flag
// must stay set for the tests that follow).
struct ForceScalarGuard {
  ForceScalarGuard() : was_forced_(scalar_bit_kernels_forced()) {
    force_scalar_bit_kernels(true);
  }
  ~ForceScalarGuard() { force_scalar_bit_kernels(was_forced_); }
  ForceScalarGuard(const ForceScalarGuard&) = delete;
  ForceScalarGuard& operator=(const ForceScalarGuard&) = delete;

 private:
  bool was_forced_;
};

// Widths straddling the 64-bit word boundary and the AVX2 4-word block
// boundary (256 bits), plus the block-tail remainders 1..3.
const std::vector<std::int64_t> kWidths = {1,   5,   63,  64,  65,  127, 128,
                                           129, 191, 192, 193, 255, 256, 257,
                                           300, 447, 448, 449, 511, 512, 700};

BitVec random_vec(std::int64_t n, double density, Rng& rng) {
  BitVec v(n);
  for (std::int64_t i = 0; i < n; ++i)
    if (rng.next_bool(density)) v.set(i);
  return v;
}

BitMatrix random_matrix(std::int64_t rows, std::int64_t cols, double density,
                        Rng& rng) {
  BitMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      if (rng.next_bool(density)) m.set(r, c);
  return m;
}

std::int64_t naive_first_common(const BitMatrix& m, std::int64_t r,
                                const BitVec& mask) {
  for (std::int64_t c = 0; c < m.cols(); ++c)
    if (m.get(r, c) && mask.get(c)) return c;
  return -1;
}

std::int64_t naive_intersect_count(const BitMatrix& m, std::int64_t r,
                                   const BitVec& mask) {
  std::int64_t total = 0;
  for (std::int64_t c = 0; c < m.cols(); ++c)
    if (m.get(r, c) && mask.get(c)) ++total;
  return total;
}

TEST(BitKernelDispatch, ForcingScalarIsVisibleAndReversible) {
  const bool was_forced = scalar_bit_kernels_forced();
  const BitKernel initial = active_bit_kernel();
  {
    const ForceScalarGuard guard;
    EXPECT_EQ(active_bit_kernel(), BitKernel::kScalar);
    EXPECT_STREQ(bit_kernel_name(active_bit_kernel()), "scalar");
    EXPECT_TRUE(scalar_bit_kernels_forced());
  }
  // The guard restores the prior override state — including an env-set pin.
  EXPECT_EQ(scalar_bit_kernels_forced(), was_forced);
  EXPECT_EQ(active_bit_kernel(), initial);
  if (was_forced) EXPECT_EQ(initial, BitKernel::kScalar);
}

TEST(BitKernelDifferential, FirstCommonInRowMatchesScalarAndReference) {
  Rng rng(20250809);
  for (const std::int64_t n : kWidths) {
    const BitMatrix m = random_matrix(std::min<std::int64_t>(n, 40), n,
                                      /*density=*/0.03, rng);
    // Sparse, dense, empty, and full masks: hit-early, hit-late, and miss
    // paths all get traffic at every width.
    for (const double density : {0.0, 0.02, 0.5, 1.0}) {
      const BitVec mask = random_vec(n, density, rng);
      for (std::int64_t r = 0; r < m.rows(); ++r) {
        std::int64_t scalar_words = -1;
        std::int64_t active_words = -1;
        std::int64_t scalar_hit = 0;
        {
          const ForceScalarGuard guard;
          scalar_hit = m.first_common_in_row(r, mask, &scalar_words);
        }
        const std::int64_t active_hit =
            m.first_common_in_row(r, mask, &active_words);
        EXPECT_EQ(active_hit, scalar_hit) << "n=" << n << " r=" << r;
        EXPECT_EQ(active_words, scalar_words) << "n=" << n << " r=" << r;
        EXPECT_EQ(scalar_hit, naive_first_common(m, r, mask))
            << "n=" << n << " r=" << r;
        // The documented accounting: hit at word w => w + 1, miss => full row.
        if (scalar_hit >= 0)
          EXPECT_EQ(scalar_words, scalar_hit / 64 + 1);
        else
          EXPECT_EQ(scalar_words, m.words_per_row());
      }
    }
  }
}

TEST(BitKernelDifferential, MultiplyMatchesScalarAndReference) {
  Rng rng(77);
  for (const std::int64_t n : kWidths) {
    const BitMatrix m = random_matrix(n, n, /*density=*/0.02, rng);
    for (const double density : {0.0, 0.05, 0.6}) {
      const BitVec v = random_vec(n, density, rng);
      BitVec out_scalar(n);
      BitVec out_active(n);
      std::int64_t words_scalar = -1;
      std::int64_t words_active = -1;
      {
        const ForceScalarGuard guard;
        m.multiply(v, out_scalar, &words_scalar);
      }
      m.multiply(v, out_active, &words_active);
      EXPECT_EQ(words_active, words_scalar) << "n=" << n;
      for (std::int64_t r = 0; r < n; ++r) {
        EXPECT_EQ(out_active.get(r), out_scalar.get(r)) << "n=" << n << " r=" << r;
        EXPECT_EQ(out_scalar.get(r), naive_first_common(m, r, v) >= 0)
            << "n=" << n << " r=" << r;
      }
      EXPECT_TRUE(out_active.tail_clear());
    }
  }
}

TEST(BitKernelDifferential, MultiplyThreadedMatchesSerial) {
  Rng rng(4242);
  const std::int64_t n = 700;  // > 8 out-words so the gate opens
  const BitMatrix m = random_matrix(n, n, 0.02, rng);
  const BitVec v = random_vec(n, 0.05, rng);
  BitVec out_serial(n);
  BitVec out_pool(n);
  std::int64_t words_serial = -1;
  std::int64_t words_pool = -1;
  m.multiply(v, out_serial, &words_serial, /*threads=*/1);
  m.multiply(v, out_pool, &words_pool, /*threads=*/8);
  EXPECT_EQ(words_pool, words_serial);
  for (std::int64_t r = 0; r < n; ++r)
    EXPECT_EQ(out_pool.get(r), out_serial.get(r)) << "r=" << r;
}

TEST(BitKernelDifferential, RowIntersectCountMatchesScalarAndReference) {
  Rng rng(9);
  for (const std::int64_t n : kWidths) {
    const BitMatrix m = random_matrix(std::min<std::int64_t>(n, 24), n,
                                      /*density=*/0.2, rng);
    for (const double density : {0.0, 0.3, 1.0}) {
      const BitVec mask = random_vec(n, density, rng);
      for (std::int64_t r = 0; r < m.rows(); ++r) {
        std::int64_t scalar_count = -1;
        {
          const ForceScalarGuard guard;
          scalar_count = m.row_intersect_count(r, mask);
        }
        EXPECT_EQ(m.row_intersect_count(r, mask), scalar_count)
            << "n=" << n << " r=" << r;
        EXPECT_EQ(scalar_count, naive_intersect_count(m, r, mask))
            << "n=" << n << " r=" << r;
      }
    }
  }
}

TEST(BitKernelTailWord, SetWordMasksBitsBeyondSize) {
  BitVec v(70);  // tail word holds bits 64..69
  v.set_word(1, ~0ULL);
  EXPECT_TRUE(v.tail_clear());
  EXPECT_EQ(v.popcount(), 6);
  for (std::int64_t i = 64; i < 70; ++i) EXPECT_TRUE(v.get(i));
  v.set_word(0, ~0ULL);  // full words are stored verbatim
  EXPECT_EQ(v.word(0), ~0ULL);
  EXPECT_EQ(v.popcount(), 70);
}

TEST(BitKernelTailWord, WordMultipleSizesHaveNoTailMask) {
  BitVec v(128);
  v.set_word(1, ~0ULL);
  EXPECT_EQ(v.word(1), ~0ULL);
  EXPECT_TRUE(v.tail_clear());
  EXPECT_EQ(v.popcount(), 64);
}

TEST(BitKernelTailWord, KernelsAreExactAtNonWordMultipleSizes) {
  // Sizes != 0 (mod 64): first_set / first_common / popcount near the top
  // bit, where a stray tail bit would surface as a phantom hit.
  for (const std::int64_t n : {65, 70, 127, 129, 193}) {
    BitVec a(n);
    BitVec b(n);
    a.set(n - 1);
    b.set(n - 1);
    EXPECT_EQ(a.first_set(), n - 1) << "n=" << n;
    EXPECT_EQ(a.first_common(b), n - 1) << "n=" << n;
    EXPECT_EQ(a.popcount(), 1) << "n=" << n;
    a.set(n - 1, false);
    EXPECT_EQ(a.first_set(), -1) << "n=" << n;
    EXPECT_EQ(a.first_common(b), -1) << "n=" << n;
  }
}

TEST(BitKernelTailWord, MultiplyOutputTailStaysClear) {
  // rows = 70: the out vector's tail word covers rows 64..69 only; the block
  // writer must not leak bits for the nonexistent rows 70..127.
  Rng rng(5);
  const BitMatrix m = random_matrix(70, 70, /*density=*/1.0, rng);
  const BitVec v = random_vec(70, 1.0, rng);
  BitVec out(70);
  m.multiply(v, out);
  EXPECT_TRUE(out.tail_clear());
  EXPECT_EQ(out.popcount(), 70);
}

TEST(BitKernelRequire, MismatchedSizesThrowInEveryBuild) {
  const BitVec a(64);
  const BitVec b(65);
  EXPECT_THROW((void)a.first_common(b), std::invalid_argument);

  const BitMatrix m(8, 64);
  const BitVec mask(65);
  EXPECT_THROW((void)m.first_common_in_row(0, mask), std::invalid_argument);
  EXPECT_THROW((void)m.row_intersect_count(0, mask), std::invalid_argument);
  BitVec out(8);
  EXPECT_THROW(m.multiply(mask, out), std::invalid_argument);
}

}  // namespace
}  // namespace bmf
