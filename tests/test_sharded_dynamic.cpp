#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "differential_util.hpp"
#include "dynamic/dynamic_matcher.hpp"
#include "dynamic/sharded_matcher.hpp"
#include "dynamic/weak_oracle.hpp"
#include "util/thread_pool.hpp"
#include "workloads/dyn_workload.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

// ------------------------------------------------------------- partition

TEST(ShardedPartition, ContiguousCoverWithRemainderInLastShard) {
  const VertexPartition p(10, 3);  // block = 4: [0,4) [4,8) [8,10)
  EXPECT_EQ(p.shards(), 3);
  EXPECT_EQ(p.begin(0), 0);
  EXPECT_EQ(p.end(0), 4);
  EXPECT_EQ(p.begin(2), 8);
  EXPECT_EQ(p.end(2), 10);
  for (Vertex v = 0; v < 10; ++v) {
    const int s = p.owner(v);
    EXPECT_GE(v, p.begin(s));
    EXPECT_LT(v, p.end(s));
  }
  Vertex covered = 0;
  for (int s = 0; s < p.shards(); ++s) covered += p.size(s);
  EXPECT_EQ(covered, 10);
}

TEST(ShardedPartition, MoreShardsThanVerticesLeavesEmptyTailShards) {
  const VertexPartition p(3, 8);  // block = 1: shards 3..7 are empty
  for (Vertex v = 0; v < 3; ++v) EXPECT_EQ(p.owner(v), v);
  for (int s = 3; s < 8; ++s) EXPECT_EQ(p.size(s), 0);
  const VertexPartition empty(0, 4);
  for (int s = 0; s < 4; ++s) EXPECT_EQ(empty.size(s), 0);
}

// ----------------------------------------------------- oracle equivalence

std::vector<Vertex> random_subset(Vertex n, double p, Rng& rng) {
  std::vector<Vertex> s;
  for (Vertex v = 0; v < n; ++v)
    if (rng.next_bool(p)) s.push_back(v);
  return s;
}

void expect_same_answer(const WeakQueryResult& got, const WeakQueryResult& want) {
  ASSERT_EQ(got.matching.size(), want.matching.size());
  for (std::size_t i = 0; i < got.matching.size(); ++i) {
    EXPECT_EQ(got.matching[i].u, want.matching[i].u);
    EXPECT_EQ(got.matching[i].v, want.matching[i].v);
  }
  EXPECT_EQ(got.bottom, want.bottom);
}

class ShardedOracleProps : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedOracleProps, QueriesMatchMatrixOracleAtEveryShardThreadCombo) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(70, 260, rng);
  MatrixWeakOracle serial = MatrixWeakOracle::from_graph(g);
  const auto s = random_subset(70, 0.5, rng);
  const auto plus = random_subset(70, 0.4, rng);
  const auto minus = random_subset(70, 0.4, rng);
  const auto want_q = serial.query(s, 0.01);
  const auto want_c = serial.query_cover(plus, minus, 0.01);

  const ForceParallelSmallWork force;
  std::int64_t words_reference = -1;
  for (const int shards : {1, 2, 4}) {
    for (const int threads : {1, 2, 8}) {
      ShardedMatrixOracle oracle(70, shards, threads);
      for (const Edge& e : g.edges()) oracle.on_insert(e.u, e.v);
      expect_same_answer(oracle.query(s, 0.01), want_q);
      expect_same_answer(oracle.query_cover(plus, minus, 0.01), want_c);
      EXPECT_EQ(oracle.calls(), serial.calls())
          << "shards=" << shards << " threads=" << threads;
      // words_touched is exact and speculative-scan deterministic: the same
      // probes run at every (shards x threads), so the count is invariant.
      if (words_reference < 0) words_reference = oracle.words_touched();
      EXPECT_EQ(oracle.words_touched(), words_reference)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

TEST_P(ShardedOracleProps, QueriesMatchAfterErasures) {
  Rng rng(GetParam() + 50);
  const Graph g = gen_random_graph(48, 180, rng);
  MatrixWeakOracle serial = MatrixWeakOracle::from_graph(g);
  ShardedMatrixOracle sharded(48, 3, 4);
  for (const Edge& e : g.edges()) sharded.on_insert(e.u, e.v);
  for (std::size_t i = 0; i < g.edges().size(); i += 3) {
    serial.on_erase(g.edges()[i].u, g.edges()[i].v);
    sharded.on_erase(g.edges()[i].u, g.edges()[i].v);
  }
  const ForceParallelSmallWork force;
  const auto s = random_subset(48, 0.6, rng);
  expect_same_answer(sharded.query(s, 0.0), serial.query(s, 0.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedOracleProps, ::testing::Values(1u, 2u, 3u));

// --------------------------------------------- on_batch vs serial replay

/// A randomized update batch whose `structural` flags are exactly the
/// resolve_structural semantics (flag = the update toggles edge presence
/// given earlier batch members), mixing structural and non-structural
/// entries: duplicate inserts, deletes of absent edges, and same-edge
/// toggles within one batch.
struct FlaggedBatch {
  std::vector<EdgeUpdate> updates;
  std::vector<std::uint8_t> structural;
};

FlaggedBatch random_flagged_batch(Vertex n, std::size_t count, Rng& rng) {
  FlaggedBatch b;
  std::unordered_set<std::uint64_t> present;  // evolving presence under replay
  for (std::size_t i = 0; i < count; ++i) {
    const auto u = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n)));
    auto v = static_cast<Vertex>(rng.next_below(static_cast<std::uint64_t>(n - 1)));
    if (v >= u) ++v;
    const bool ins = rng.next_bool(0.6);
    const std::uint64_t key = edge_key(u, v);
    // Structural iff the update toggles presence: insert of an absent edge
    // or delete of a present one (resolve_structural semantics).
    const bool toggles = ins != present.contains(key);
    b.updates.push_back(ins ? EdgeUpdate::ins(u, v) : EdgeUpdate::del(u, v));
    if (toggles) {
      b.structural.push_back(1);
      if (ins)
        present.insert(key);
      else
        present.erase(key);
    } else {
      b.structural.push_back(0);
    }
  }
  return b;
}

class ShardedOnBatch : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedOnBatch, MatrixOracleBatchEqualsSerialInsertEraseLoop) {
  Rng rng(GetParam());
  const Vertex n = 48;
  const FlaggedBatch b = random_flagged_batch(n, 160, rng);

  MatrixWeakOracle want(n);
  for (std::size_t i = 0; i < b.updates.size(); ++i) {
    if (!b.structural[i]) continue;
    if (b.updates[i].insert)
      want.on_insert(b.updates[i].u, b.updates[i].v);
    else
      want.on_erase(b.updates[i].u, b.updates[i].v);
  }

  const ForceParallelSmallWork force;
  for (const int threads : {1, 2, 8}) {
    MatrixWeakOracle got(n);
    got.on_batch(b.updates, b.structural, threads);
    for (Vertex u = 0; u < n; ++u)
      for (Vertex v = 0; v < n; ++v)
        ASSERT_EQ(got.adjacency().get(u, v), want.adjacency().get(u, v))
            << "threads=" << threads << " bit (" << u << ", " << v << ")";
  }
}

TEST_P(ShardedOnBatch, ShardedOracleBatchEqualsSerialInsertEraseLoop) {
  Rng rng(GetParam() + 10);
  const Vertex n = 48;
  const FlaggedBatch b = random_flagged_batch(n, 160, rng);

  MatrixWeakOracle want(n);
  for (std::size_t i = 0; i < b.updates.size(); ++i) {
    if (!b.structural[i]) continue;
    if (b.updates[i].insert)
      want.on_insert(b.updates[i].u, b.updates[i].v);
    else
      want.on_erase(b.updates[i].u, b.updates[i].v);
  }

  const ForceParallelSmallWork force;
  for (const int shards : {1, 2, 4})
    for (const int threads : {1, 2, 8}) {
      ShardedMatrixOracle got(n, shards, threads);
      got.on_batch(b.updates, b.structural, threads);
      for (Vertex u = 0; u < n; ++u)
        for (Vertex v = 0; v < n; ++v)
          ASSERT_EQ(got.bit(u, v), want.adjacency().get(u, v))
              << "shards=" << shards << " threads=" << threads << " bit (" << u
              << ", " << v << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedOnBatch, ::testing::Values(1u, 2u, 3u));

// --------------------------------------------------- matcher differential

using testdiff::RunResult;

/// The sharded half of the shared checker (tests/differential_util.hpp):
/// this suite focuses on the `ShardedDynamicMatcher` grid; the flat grid
/// runs in test_dynamic_batch.cpp and the cross-engine loop in
/// test_replay_core.cpp.
void expect_sharded_equals_reference(Vertex n, const std::vector<EdgeUpdate>& ups,
                                     double eps, std::uint64_t seed,
                                     std::int64_t batch_size) {
  DynamicMatcherConfig cfg;
  cfg.eps = eps;
  cfg.seed = seed;
  testdiff::GridOptions opt;
  opt.flat_threads = {};  // sharded focus; the flat grid has its own suite
  opt.sharded_batch_sizes = {batch_size};
  testdiff::expect_all_engines_equal(n, ups, cfg, opt);
}

class ShardedDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShardedDifferential, PlantedTeardownHeavyRuns) {
  Rng rng(GetParam() + 500);
  const auto ups = dyn_planted_teardown(16, 3, rng);
  expect_sharded_equals_reference(2 * 16 + 3, ups, 1.0, GetParam(), 64);
}

TEST_P(ShardedDifferential, BatchedBurstsHotConflicts) {
  Rng rng(GetParam() + 400);
  const auto batches = dyn_batched_bursts(48, 6, 50, 0.65, 0.8, rng);
  std::vector<EdgeUpdate> flat;
  for (const auto& b : batches) flat.insert(flat.end(), b.begin(), b.end());
  DynamicMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = GetParam();
  const RunResult want = testdiff::run_sequential(48, flat, cfg);
  EXPECT_GT(want.rebuilds, 0);
  for (const int shards : {1, 2, 4})
    for (const int threads : {1, 2, 8})
      EXPECT_EQ(testdiff::run_sharded(48, flat, cfg, shards, threads, 50), want)
          << "shards=" << shards << " threads=" << threads;
}

TEST_P(ShardedDifferential, CrossShardHeavyMix) {
  Rng rng(GetParam() + 600);
  const auto ups = dyn_shard_partitioned(48, 4, 380, 0.7, 0.7, rng);
  expect_sharded_equals_reference(48, ups, 0.25, GetParam(), 64);
}

TEST_P(ShardedDifferential, ShardLocalMix) {
  Rng rng(GetParam() + 700);
  const auto ups = dyn_shard_partitioned(48, 4, 380, 0.05, 0.7, rng);
  expect_sharded_equals_reference(48, ups, 0.25, GetParam(),
                                  static_cast<std::int64_t>(ups.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardedDifferential, ::testing::Values(1u, 2u, 3u));

TEST(ShardedDifferential, SerialApplyPathMatchesReferenceAcrossShardCounts) {
  Rng rng(11);
  const auto ups = dyn_random_updates(40, 300, 0.7, rng);
  DynamicMatcherConfig ref_cfg;
  ref_cfg.eps = 0.25;
  ref_cfg.seed = 11;
  const RunResult want = testdiff::run_sequential(40, ups, ref_cfg);
  for (const int shards : {1, 3, 5}) {
    ShardedMatcherConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 11;
    cfg.shards = shards;
    cfg.threads = 1;
    ShardedDynamicMatcher dm(40, cfg);
    for (const EdgeUpdate& up : ups) dm.apply(up);
    EXPECT_EQ(dm.matching().size(), want.matching_size) << "shards=" << shards;
    EXPECT_EQ(dm.rebuilds(), want.rebuilds) << "shards=" << shards;
    EXPECT_EQ(dm.weak_calls(), want.weak_calls) << "shards=" << shards;
    for (Vertex v = 0; v < 40; ++v)
      EXPECT_EQ(dm.matching().mate(v), want.mates[static_cast<std::size_t>(v)]);
  }
}

TEST(ShardedDifferential, EmptyUpdatesAndNoOps) {
  std::vector<EdgeUpdate> ups;
  for (Vertex i = 0; i < 10; ++i) ups.push_back(EdgeUpdate::ins(i, i + 10));
  ups.push_back(EdgeUpdate::none());
  ups.push_back(EdgeUpdate::ins(0, 10));   // duplicate insert (no-op)
  ups.push_back(EdgeUpdate::del(5, 19));   // absent edge (no-op)
  ups.push_back(EdgeUpdate::del(0, 10));   // matched deletion (heavy)
  ups.push_back(EdgeUpdate::none());
  ups.push_back(EdgeUpdate::ins(0, 10));   // re-insert
  ups.push_back(EdgeUpdate::ins(10, 11));  // conflicts with the re-insert
  DynamicMatcherConfig cfg;
  cfg.eps = 0.5;
  const RunResult want = testdiff::run_sequential(20, ups, cfg);
  for (const int shards : {1, 2, 4})
    for (const int threads : {1, 2, 8})
      EXPECT_EQ(testdiff::run_sharded(20, ups, cfg, shards, threads, 100), want)
          << "shards=" << shards << " threads=" << threads;
}

TEST(ShardedDifferential, InvalidUpdateRejectedBeforeMutation) {
  ShardedMatcherConfig cfg;
  cfg.shards = 2;
  ShardedDynamicMatcher dm(8, cfg);
  std::vector<EdgeUpdate> bad{EdgeUpdate::ins(0, 1), EdgeUpdate::ins(3, 3)};
  EXPECT_THROW(dm.apply_batch(bad), std::invalid_argument);
  EXPECT_EQ(dm.updates(), 0);
  EXPECT_EQ(dm.num_edges(), 0);
}

// ------------------------------------------- rebuild participation + comm

/// The per-shard Theorem 6.2 rebuild-participation fan-out
/// (core/framework.hpp via the replay_core.hpp store contract): shard-owned
/// discovery sweeps merged in canonical order must keep the whole contract
/// bit-identical, and the comm ledger must be per-cell deterministic,
/// monotone, and zero whenever only one participant exists.
TEST(ShardedRebuildParticipation, PlantedTeardownGrid) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed + 900);
    const auto ups = dyn_planted_teardown(16, 3, rng);
    DynamicMatcherConfig cfg;
    cfg.eps = 1.0;
    cfg.seed = seed;
    testdiff::GridOptions opt;
    opt.flat_threads = {};  // sharded focus
    testdiff::expect_all_engines_equal(2 * 16 + 3, ups, cfg, opt);
  }
}

TEST(ShardedRebuildParticipation, RebuildStormGrid) {
  // A tiny fixed rebuild cadence turns the stream into a rebuild storm, so
  // the participation sweeps (not the update path) dominate every cell.
  for (const std::uint64_t seed : {1u, 2u}) {
    Rng rng(seed + 950);
    const auto ups = dyn_mixed_churn(48, 360, rng);
    DynamicMatcherConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = seed;
    cfg.rebuild_every = 8;
    testdiff::GridOptions opt;
    opt.flat_threads = {};
    opt.min_rebuilds = 20;
    testdiff::expect_all_engines_equal(48, ups, cfg, opt);
  }
}

TEST(ShardedRebuildParticipation, CommLedgerMonotoneMidStream) {
  Rng rng(21);
  const auto ups = dyn_shard_partitioned(48, 4, 380, 0.7, 0.7, rng);
  const ForceParallelSmallWork force;
  ShardedMatcherConfig cfg;
  cfg.eps = 0.25;
  cfg.seed = 21;
  cfg.shards = 4;
  cfg.threads = 2;
  ShardedDynamicMatcher dm(48, cfg);
  CommStats last;
  for (const auto& batch : slice_updates(ups, 32)) {
    dm.apply_batch(batch);
    const CommStats comm = dm.comm_stats();
    EXPECT_GE(comm.batch_bytes, last.batch_bytes);
    EXPECT_GE(comm.batch_rounds, last.batch_rounds);
    EXPECT_GE(comm.rebuild_bytes, last.rebuild_bytes);
    EXPECT_GE(comm.rebuild_rounds, last.rebuild_rounds);
    last = comm;
  }
  // Real shards moved real bytes on both sides of the ledger: updates routed
  // ops and every rebuild distributed its snapshot.
  EXPECT_GT(last.batch_bytes, 0);
  EXPECT_GT(last.batch_rounds, 0);
  EXPECT_GT(last.rebuild_bytes, 0);
  EXPECT_GE(last.rebuild_rounds, dm.rebuilds());
  EXPECT_EQ(last.coord_bytes(), last.batch_bytes + last.rebuild_bytes);
  EXPECT_EQ(last.coord_rounds(), last.batch_rounds + last.rebuild_rounds);
}

TEST(ShardedRebuildParticipation, CommLedgerZeroForSingleParticipant) {
  Rng rng(22);
  const auto ups = dyn_random_updates(40, 300, 0.7, rng);
  const ForceParallelSmallWork force;
  for (const int threads : {1, 8}) {
    // Sharded engine at k = 1: one participant, no boundary, zero ledger.
    ShardedMatcherConfig scfg;
    scfg.eps = 0.25;
    scfg.seed = 22;
    scfg.shards = 1;
    scfg.threads = threads;
    ShardedDynamicMatcher sharded(40, scfg);
    for (const auto& batch : slice_updates(ups, 64)) sharded.apply_batch(batch);
    EXPECT_GT(sharded.rebuilds(), 0);
    EXPECT_EQ(sharded.comm_stats(), CommStats{}) << "threads=" << threads;

    // Flat engine: same story through the ReplayEngine surface.
    DynamicMatcherConfig fcfg;
    fcfg.eps = 0.25;
    fcfg.seed = 22;
    fcfg.threads = threads;
    MatrixWeakOracle oracle(40);
    DynamicMatcher flat(40, oracle, fcfg);
    for (const auto& batch : slice_updates(ups, 64)) flat.apply_batch(batch);
    const ReplayEngine& engine = flat;
    EXPECT_EQ(engine.comm_stats(), CommStats{}) << "threads=" << threads;
  }
}

TEST(ShardedRebuildParticipation, RebuildStatsReconcileWithEngineCounters) {
  Rng rng(23);
  const auto ups = dyn_churn_planted(40, 320, rng);
  const ForceParallelSmallWork force;
  RebuildStats want;
  bool first = true;
  for (const int shards : {1, 4}) {
    ShardedMatcherConfig cfg;
    cfg.eps = 0.25;
    cfg.seed = 23;
    cfg.shards = shards;
    cfg.threads = 2;
    ShardedDynamicMatcher dm(40, cfg);
    for (const auto& batch : slice_updates(ups, 64)) dm.apply_batch(batch);
    const RebuildStats got = dm.rebuild_stats();
    EXPECT_EQ(got.rebuilds, dm.rebuilds());
    EXPECT_EQ(got.weak_calls, dm.weak_calls());
    EXPECT_GT(got.rebuilds, 0);
    EXPECT_GE(got.sampled_iterations, 0);
    EXPECT_LE(got.certified, got.rebuilds);
    // Participation changes where sweeps run, never what they compute: the
    // folded rebuild counters are bit-identical across shard counts.
    if (first) {
      want = got;
      first = false;
    }
    EXPECT_EQ(got, want) << "shards=" << shards;
  }
}

TEST(ShardedWorkloads, ShardPartitionedStreamIsValidAndSkewed) {
  Rng rng(13);
  const int shards = 4;
  const Vertex n = 64;  // blocks of 16
  const auto local = dyn_shard_partitioned(n, shards, 400, 0.0, 0.7, rng);
  const auto cross = dyn_shard_partitioned(n, shards, 400, 1.0, 0.7, rng);
  const VertexPartition part(n, shards);
  const auto owner = [&](Vertex v) { return part.owner(v); };
  DynGraph g1(n), g2(n);
  std::int64_t cross_in_local = 0, cross_in_cross = 0, ins1 = 0, ins2 = 0;
  for (const EdgeUpdate& up : local) {
    if (up.insert) {
      EXPECT_TRUE(g1.insert(up.u, up.v));
      ++ins1;
      cross_in_local += owner(up.u) != owner(up.v);
    } else {
      EXPECT_TRUE(g1.erase(up.u, up.v));
    }
  }
  for (const EdgeUpdate& up : cross) {
    if (up.insert) {
      EXPECT_TRUE(g2.insert(up.u, up.v));
      ++ins2;
      cross_in_cross += owner(up.u) != owner(up.v);
    } else {
      EXPECT_TRUE(g2.erase(up.u, up.v));
    }
  }
  // cross_fraction = 0 stays (nearly; saturation fallback aside) intra-shard;
  // cross_fraction = 1 straddles shards on (nearly) every insertion.
  EXPECT_LT(cross_in_local * 10, ins1);
  EXPECT_GT(cross_in_cross * 10, 9 * ins2);
}

TEST(ShardedWorkloads, UnevenPartitionsExcludeUndersizedBlocksFromDraws) {
  // n = 9, shards = 4: ceil split [0,3) [3,6) [6,9) [] — the last block is
  // empty; n = 10 leaves a single-vertex block [9,10) that can host a
  // cross-shard endpoint but no intra-shard edge. Streams must stay valid.
  Rng rng(17);
  for (const Vertex n : {9, 10}) {
    for (const double cross : {0.0, 1.0}) {
      const auto ups = dyn_shard_partitioned(n, 4, 150, cross, 0.7, rng);
      DynGraph g(n);
      for (const EdgeUpdate& up : ups) {
        if (up.insert) {
          EXPECT_TRUE(g.insert(up.u, up.v));
        } else {
          EXPECT_TRUE(g.erase(up.u, up.v));
        }
      }
    }
  }
}

}  // namespace
}  // namespace bmf
