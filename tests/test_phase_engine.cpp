#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "core/phase.hpp"
#include "matching/blossom_exact.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

// ---------------------------------------------------------------------------
// CoreConfig derived quantities (the paper's parameter formulas).
// ---------------------------------------------------------------------------

TEST(CoreConfig, EllMaxIsThreeOverEps) {
  CoreConfig cfg;
  cfg.eps = 0.25;
  EXPECT_EQ(cfg.ell_max(), 12);
  cfg.eps = 0.1;
  EXPECT_EQ(cfg.ell_max(), 30);
  cfg.eps = 1.0;
  EXPECT_EQ(cfg.ell_max(), 3);
}

TEST(CoreConfig, HoldLimitFollowsScale) {
  CoreConfig cfg;
  EXPECT_EQ(cfg.hold_limit(0.5), 13);    // 6/h + 1
  EXPECT_EQ(cfg.hold_limit(0.25), 25);
  EXPECT_EQ(cfg.hold_limit(0.125), 49);  // doubles as h halves
}

TEST(CoreConfig, ScheduledCountsMatchPaperFormulas) {
  CoreConfig cfg;
  cfg.eps = 0.25;
  EXPECT_EQ(cfg.scheduled_pass_bundles(0.5), 576);  // 72/(h*eps)
  EXPECT_EQ(cfg.scheduled_phases(0.5), 1152);       // 144/(h*eps)
  // 22 * c * ln(1/eps) for c = 2, eps = 1/4: ceil(44 * 1.386...) = 61.
  EXPECT_EQ(cfg.scheduled_iterations(2.0), 61);
}

TEST(CoreConfig, LastScaleIsEpsSquaredOver64) {
  CoreConfig cfg;
  cfg.eps = 0.5;
  EXPECT_DOUBLE_EQ(cfg.last_scale(), 0.25 / 64.0);
}

TEST(CoreConfig, CapsBoundScheduledValues) {
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.max_phases_per_scale = 10;
  EXPECT_EQ(cfg.phase_cap(0.5), 10);
  cfg.max_phases_per_scale = 0;  // 0 = paper value
  EXPECT_EQ(cfg.phase_cap(0.5), cfg.scheduled_phases(0.5));
  cfg.max_pass_bundles = 7;
  EXPECT_EQ(cfg.pass_bundle_cap(0.5), 7);
}

TEST(CoreConfig, RejectsBadEps) {
  CoreConfig cfg;
  cfg.eps = 0.0;
  EXPECT_THROW((void)cfg.ell_max(), std::invalid_argument);
  cfg.eps = 1.5;
  EXPECT_THROW((void)cfg.ell_max(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Phase-engine semantics.
// ---------------------------------------------------------------------------

/// A driver that does nothing: every structure backtracks to inactivity, no
/// augmentation is ever found, and (claiming exhaustiveness) the very first
/// quiescent phase certifies.
class InertDriver final : public PassBundleDriver {
 public:
  void extend_active_path(StructureForest&) override {}
  void contract_and_augment(StructureForest&) override {}
  [[nodiscard]] bool exhaustive() const override { return exhaustive_; }
  bool exhaustive_ = true;
};

TEST(PhaseEngine, InertExhaustiveDriverCertifiesImmediately) {
  // With no free vertices the first phase is trivially quiescent.
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {2, 3}});
  Matching m(4);
  m.add(0, 1);
  m.add(2, 3);
  CoreConfig cfg;
  InertDriver driver;
  const BoostOutcome out = PhaseEngine(g, cfg).run(m, driver);
  EXPECT_TRUE(out.certified);
  EXPECT_EQ(out.phases, 1);
  EXPECT_EQ(out.scales, 1);
  EXPECT_EQ(out.augmenting_paths, 0);
}

TEST(PhaseEngine, InertNonExhaustiveDriverRunsIdleSchedule) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {2, 3}});
  Matching m(4);  // empty: two structures per component exist
  CoreConfig cfg;
  cfg.idle_phase_limit = 2;
  InertDriver driver;
  driver.exhaustive_ = false;
  const BoostOutcome out = PhaseEngine(g, cfg).run(m, driver);
  // No certificate available: every scale runs idle_phase_limit phases.
  EXPECT_FALSE(out.certified);
  std::int64_t scales = 1;
  for (double h = CoreConfig::first_scale(); h > cfg.last_scale(); h /= 2) ++scales;
  EXPECT_EQ(out.scales, scales);
  EXPECT_EQ(out.phases, scales * cfg.idle_phase_limit);
}

TEST(PhaseEngine, BacktracksCountTowardQuiescence) {
  // One free vertex with no neighbors: bundle 1 backtracks it to inactive
  // (1 op), bundle 2 is quiescent.
  const Graph g = make_graph(3, std::vector<Edge>{{1, 2}});
  Matching m(3);
  m.add(1, 2);
  CoreConfig cfg;
  InertDriver driver;
  const BoostOutcome out = PhaseEngine(g, cfg).run(m, driver);
  EXPECT_TRUE(out.certified);
  EXPECT_EQ(out.pass_bundles, 2);
  EXPECT_EQ(out.ops.backtracks, 1);
}

TEST(PhaseEngine, RejectsMismatchedMatching) {
  const Graph g = make_graph(3, {});
  Matching m(5);
  CoreConfig cfg;
  InertDriver driver;
  EXPECT_THROW((void)PhaseEngine(g, cfg).run(m, driver), std::invalid_argument);
}

TEST(PhaseEngine, OutcomeAccountingConsistent) {
  Rng rng(5);
  const Graph g = gen_random_graph(100, 300, rng);
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.25;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_GE(r.outcome.pass_bundles, r.outcome.phases);
  EXPECT_GE(r.outcome.phases, r.outcome.scales >= 1 ? 1 : 0);
  EXPECT_EQ(r.outcome.augmenting_paths, r.outcome.ops.augments);
  EXPECT_EQ(r.total_oracle_calls, oracle.calls());
  EXPECT_GE(r.total_oracle_calls, r.initial_oracle_calls);
}

TEST(PhaseEngine, PassBundleCapStopsRunawayPhases) {
  Rng rng(7);
  const Graph g = gen_random_graph(60, 180, rng);
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.5;
  cfg.max_pass_bundles = 1;  // pathological cap: one bundle per phase
  const BoostResult r = boost_matching(g, oracle, cfg);
  // Still valid and still 2-approximate at worst (initial maximal matching
  // only improves), but certification may be impossible.
  EXPECT_TRUE(r.matching.is_valid_in(g));
  EXPECT_GE(2 * r.matching.size(), maximum_matching_size(g));
}

TEST(PhaseEngine, AugmentationsNeverDecreaseMatching) {
  Rng rng(11);
  const Graph g = gen_random_graph(80, 240, rng);
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.25;
  const Matching initial = framework_initial_matching(g, oracle, cfg);
  Matching m = initial;
  FrameworkDriver driver(g, oracle, cfg);
  const BoostOutcome out = PhaseEngine(g, cfg).run(m, driver);
  EXPECT_EQ(m.size(), initial.size() + out.augmenting_paths);
  EXPECT_TRUE(m.is_valid_in(g));
}

// ---------------------------------------------------------------------------
// Oracle accounting.
// ---------------------------------------------------------------------------

TEST(OracleCounters, TrackCallsVerticesEdges) {
  GreedyMatchingOracle oracle;
  OracleGraph h;
  h.n = 4;
  h.edges = {{0, 1}, {2, 3}};
  (void)oracle.find_matching(h);
  (void)oracle.find_matching(h);
  EXPECT_EQ(oracle.calls(), 2);
  EXPECT_EQ(oracle.total_vertices(), 8);
  EXPECT_EQ(oracle.total_edges(), 4);
  oracle.reset_counters();
  EXPECT_EQ(oracle.calls(), 0);
}

TEST(OracleCounters, GreedyOracleMatchingIsMaximal) {
  Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const Graph g = gen_random_graph(40, 100, rng);
    OracleGraph h;
    h.n = g.num_vertices();
    for (const Edge& e : g.edges()) h.edges.emplace_back(e.u, e.v);
    const OracleMatching found = greedy_oracle_matching(h);
    Matching m(h.n);
    for (const auto& [u, v] : found) m.add(u, v);
    EXPECT_TRUE(m.is_maximal_in(g));
  }
}

}  // namespace
}  // namespace bmf
