#include <gtest/gtest.h>

#include <atomic>

#include "matching/blossom_exact.hpp"
#include "mpc/cluster.hpp"
#include "mpc/mpc_boost.hpp"
#include "mpc/mpc_matching.hpp"
#include "workloads/gen.hpp"

namespace bmf::mpc {
namespace {

TEST(Cluster, SuperstepDeliversMessages) {
  Cluster c({4, 0});
  // Round 1: machine 0 sends its id to everyone.
  c.superstep([&](int m, const Cluster::Inbox&, const Cluster::Sender& send) {
    if (m == 0)
      for (int d = 0; d < 4; ++d) send(d, {42, static_cast<std::uint64_t>(m), 0});
  });
  // Round 2: everyone checks the inbox (machines run concurrently, so the
  // shared tally must be atomic).
  std::atomic<int> received{0};
  c.superstep([&](int, const Cluster::Inbox& inbox, const Cluster::Sender&) {
    for (const Msg& msg : inbox) {
      EXPECT_EQ(msg.tag, 42u);
      ++received;
    }
  });
  EXPECT_EQ(received.load(), 4);
  EXPECT_EQ(c.rounds(), 2);
  EXPECT_EQ(c.messages_sent(), 4);
}

TEST(Cluster, MemoryViolationsCounted) {
  Cluster c({2, 6});  // 6 words = 2 messages
  c.superstep([&](int m, const Cluster::Inbox&, const Cluster::Sender& send) {
    if (m == 0)
      for (int i = 0; i < 5; ++i) send(1, {1, 0, 0});
  });
  EXPECT_GT(c.violations(), 0);
}

TEST(Cluster, OwnerIsDeterministicAndInRange) {
  Cluster c({7, 0});
  for (std::uint64_t k = 0; k < 100; ++k) {
    const int o = c.owner(k);
    EXPECT_GE(o, 0);
    EXPECT_LT(o, 7);
    EXPECT_EQ(o, c.owner(k));
  }
}

class MpcMatchingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MpcMatchingTest, ProducesMaximalMatching) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(80, 240, rng);
  Cluster c({6, 0});
  Rng orng(GetParam() + 99);
  const MpcMatchingResult r = mpc_maximal_matching(c, to_oracle_graph(g), orng);

  Matching m(g.num_vertices());
  for (const auto& [u, v] : r.matching) m.add(u, v);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_TRUE(m.is_maximal_in(g));
  EXPECT_GT(r.rounds, 0);
  EXPECT_EQ(c.violations(), 0);
  // O(log m) iterations w.h.p.; allow a generous constant.
  EXPECT_LE(r.iterations, 10 * 8 + 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MpcMatchingTest, ::testing::Values(1, 2, 3, 4, 17));

TEST(MpcMatchingOracle, CountsRoundsAcrossInvocations) {
  Rng rng(5);
  const Graph g = gen_random_graph(40, 100, rng);
  MpcMatchingOracle oracle({4, 0}, 11);
  (void)oracle.find_matching(to_oracle_graph(g));
  const std::int64_t after_one = oracle.rounds();
  EXPECT_GT(after_one, 0);
  (void)oracle.find_matching(to_oracle_graph(g));
  EXPECT_GT(oracle.rounds(), after_one);
  EXPECT_EQ(oracle.calls(), 2);
}

TEST(MpcBoost, MeetsGuaranteeAndAccountsRounds) {
  Rng rng(7);
  const Graph g = gen_planted_matching(120, 240, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  const MpcBoostResult r = mpc_boost_matching(g, {8, 0}, cfg);
  EXPECT_GE(static_cast<double>(r.boost.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
  EXPECT_GT(r.oracle_rounds, 0);
  EXPECT_EQ(r.process_rounds,
            kProcessRoundsPerBundle * r.boost.outcome.pass_bundles);
  EXPECT_EQ(r.total_rounds(), r.oracle_rounds + r.process_rounds);
}

TEST(MpcBoost, ChainsWithBlossoms) {
  const Graph g = gen_odd_cycles(5, 5);
  CoreConfig cfg;
  cfg.eps = 0.25;
  const MpcBoostResult r = mpc_boost_matching(g, {4, 0}, cfg);
  EXPECT_GE(static_cast<double>(r.boost.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

}  // namespace
}  // namespace bmf::mpc
