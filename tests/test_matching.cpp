#include <gtest/gtest.h>

#include "matching/blossom_exact.hpp"
#include "matching/brute_force.hpp"
#include "matching/greedy.hpp"
#include "matching/hopcroft_karp.hpp"
#include "matching/matching.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

TEST(Matching, AddRemoveBookkeeping) {
  Matching m(4);
  m.add(0, 1);
  EXPECT_EQ(m.size(), 1);
  EXPECT_EQ(m.mate(0), 1);
  EXPECT_TRUE(m.has(1, 0));
  m.remove_at(1);
  EXPECT_EQ(m.size(), 0);
  EXPECT_TRUE(m.is_free(0));
}

TEST(Matching, AugmentFlipsAlternation) {
  // Path 0-1-2-3 with {1,2} matched; augmenting along 0,1,2,3 yields 2 edges.
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  Matching m(4);
  m.add(1, 2);
  const std::vector<Vertex> path{0, 1, 2, 3};
  EXPECT_TRUE(is_augmenting_path(g, m, path));
  m.augment(path);
  EXPECT_EQ(m.size(), 2);
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_TRUE(m.has(2, 3));
  EXPECT_TRUE(m.is_valid_in(g));
}

TEST(Matching, AugmentLengthOne) {
  const Graph g = make_graph(2, std::vector<Edge>{{0, 1}});
  Matching m(2);
  const std::vector<Vertex> path{0, 1};
  EXPECT_TRUE(is_augmenting_path(g, m, path));
  m.augment(path);
  EXPECT_EQ(m.size(), 1);
}

TEST(Matching, AugmentingPathRejectsBadPaths) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  Matching m(4);
  m.add(1, 2);
  // endpoint matched:
  EXPECT_FALSE(is_augmenting_path(g, m, std::vector<Vertex>{0, 1}));
  EXPECT_FALSE(is_augmenting_path(g, m, std::vector<Vertex>{0, 2, 1, 3}));  // non-edges
  EXPECT_FALSE(is_augmenting_path(g, m, std::vector<Vertex>{0, 1, 2}));  // odd vertices
}

TEST(Matching, FreeVerticesAndEdgeList) {
  Matching m(5);
  m.add(1, 3);
  EXPECT_EQ(m.free_vertices(), (std::vector<Vertex>{0, 2, 4}));
  const auto edges = m.edge_list();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].u, 1);
  EXPECT_EQ(edges[0].v, 3);
}

class MatchingPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatchingPropertyTest, GreedyIsMaximalAndHalfApprox) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(60, 150, rng);
  const Matching m = greedy_maximal_matching(g);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_TRUE(m.is_maximal_in(g));
  const std::int64_t mu = maximum_matching_size(g);
  EXPECT_GE(2 * m.size(), mu);
}

TEST_P(MatchingPropertyTest, RandomGreedyIsMaximal) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(60, 200, rng);
  Rng rng2(GetParam() + 1000);
  const Matching m = random_greedy_matching(g, rng2);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_TRUE(m.is_maximal_in(g));
}

TEST_P(MatchingPropertyTest, BlossomMatchesBruteForceGeneral) {
  Rng rng(GetParam());
  for (Vertex n = 4; n <= 14; n += 2) {
    const Graph g = gen_random_graph(n, n * 2, rng);
    const Matching m = blossom_maximum_matching(g);
    EXPECT_TRUE(m.is_valid_in(g));
    EXPECT_EQ(m.size(), brute_force_matching_size(g)) << "n=" << n;
  }
}

TEST_P(MatchingPropertyTest, HopcroftKarpMatchesBlossomOnBipartite) {
  Rng rng(GetParam());
  const Graph g = gen_random_bipartite(25, 25, 120, rng);
  const Matching hk = hopcroft_karp(g);
  EXPECT_TRUE(hk.is_valid_in(g));
  EXPECT_EQ(hk.size(), maximum_matching_size(g));
}

TEST_P(MatchingPropertyTest, BlossomSeededFromInitialMatching) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(40, 120, rng);
  const Matching greedy = greedy_maximal_matching(g);
  const Matching m = blossom_maximum_matching(g, greedy);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_EQ(m.size(), maximum_matching_size(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 47));

TEST(BlossomExact, OddCyclesNeedBlossoms) {
  const Graph g = gen_odd_cycles(3, 5);  // mu = 2 per C5
  EXPECT_EQ(maximum_matching_size(g), 6);
}

TEST(BlossomExact, PetersenLikeGadget) {
  // Triangle with pendant: classic blossom case. mu = 2.
  const Graph g =
      make_graph(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
  EXPECT_EQ(maximum_matching_size(g), 2);
}

TEST(BlossomExact, PerfectOnPlanted) {
  Rng rng(5);
  const Graph g = gen_planted_matching(40, 0, rng);
  EXPECT_EQ(maximum_matching_size(g), 20);
}

TEST(BlossomExact, EmptyAndSingleton) {
  const Graph g0 = make_graph(0, {});
  EXPECT_EQ(maximum_matching_size(g0), 0);
  const Graph g1 = make_graph(3, {});
  EXPECT_EQ(maximum_matching_size(g1), 0);
}

TEST(HopcroftKarp, RejectsNonBipartite) {
  const Graph g = gen_odd_cycles(1, 3);
  EXPECT_FALSE(bipartition(g).has_value());
  EXPECT_THROW(hopcroft_karp(g), std::invalid_argument);
}

TEST(HopcroftKarp, PerfectOnEvenCycle) {
  GraphBuilder b(6);
  for (Vertex i = 0; i < 6; ++i) b.add_edge(i, (i + 1) % 6);
  const Graph g = b.build();
  EXPECT_EQ(hopcroft_karp(g).size(), 3);
}

TEST(GreedyIn, RespectsAllowedMask) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {2, 3}});
  const std::vector<std::uint8_t> allowed{1, 1, 0, 1};
  const Matching m = greedy_maximal_matching_in(g, allowed);
  EXPECT_EQ(m.size(), 1);
  EXPECT_TRUE(m.has(0, 1));
  EXPECT_TRUE(m.is_free(2));
}

}  // namespace
}  // namespace bmf
