#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace bmf {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.next_below(17);
    EXPECT_LT(x, 17u);
  }
}

TEST(Rng, NextBelowCoversAllValues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.next_range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SplitIndependent) {
  Rng a(42);
  Rng child = a.split();
  EXPECT_NE(a.next(), child.next());
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 4);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 10.0);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Histogram, BucketsAndQuantiles) {
  Histogram h(2);
  for (int x : {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) h.add(x);
  EXPECT_EQ(h.total(), 10);
  EXPECT_EQ(h.buckets().size(), 5u);
  EXPECT_EQ(h.quantile(0.1), 1);
  EXPECT_EQ(h.quantile(1.0), 9);
}

TEST(LogLogFit, RecoversPowerLawExponent) {
  std::vector<double> x, y;
  for (double v : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v * v);  // exponent 3
  }
  EXPECT_NEAR(fit_loglog_slope(x, y), 3.0, 1e-9);
}

TEST(Table, RendersAlignedRows) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"10", "20", "30"});
  const std::string s = t.render("title");
  EXPECT_NE(s.find("== title =="), std::string::npos);
  EXPECT_NE(s.find("long-header"), std::string::npos);
  EXPECT_NE(s.find("| 10"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
}

}  // namespace
}  // namespace bmf
