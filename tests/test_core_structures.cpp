#include <gtest/gtest.h>

#include "core/structures.hpp"
#include "matching/matching.hpp"

namespace bmf {
namespace {

CoreConfig checked_config(double eps = 0.25) {
  CoreConfig cfg;
  cfg.eps = eps;
  cfg.check_invariants = true;
  return cfg;
}

TEST(StructureForest, InitPhaseBuildsOneStructurePerFreeVertex) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  Matching m(4);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  ASSERT_EQ(f.num_structures(), 2);  // free vertices 0 and 3
  EXPECT_EQ(f.structure(0).alpha, 0);
  EXPECT_EQ(f.structure(1).alpha, 3);
  EXPECT_TRUE(f.is_outer(0));
  EXPECT_TRUE(f.is_unvisited(1));
  EXPECT_EQ(f.label(1), cfg.ell_max() + 1);
  EXPECT_EQ(f.label(0), 0);
  f.check_invariants();
}

TEST(StructureForest, OvertakeCase1AttachesMatchedArc) {
  // 0 (free) - 1 = 2, with {1,2} matched.
  const Graph g = make_graph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  Matching m(3);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);

  ASSERT_TRUE(f.can_overtake(0, 1, 1));
  f.overtake(0, 1, 1);
  f.check_invariants();

  EXPECT_EQ(f.structure(0).size, 3);
  EXPECT_EQ(f.label(1), 1);
  EXPECT_TRUE(f.is_inner(1));
  EXPECT_TRUE(f.is_outer(2));
  EXPECT_EQ(f.structure(0).working, f.omega(2));
  EXPECT_EQ(f.outer_level(f.omega(2)), 1);
  EXPECT_TRUE(f.structure(0).extended);
  EXPECT_TRUE(f.structure(0).modified);
  // A second overtake in the same pass-bundle is blocked (extended).
  EXPECT_FALSE(f.can_overtake(2, 1, 1));
}

TEST(StructureForest, OvertakeRejectsBadInputs) {
  const Graph g = make_graph(5, std::vector<Edge>{{0, 1}, {1, 2}, {3, 4}});
  Matching m(5);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);

  EXPECT_FALSE(f.can_overtake(0, 3, 1));              // 3 is free (structure root)
  EXPECT_FALSE(f.can_overtake(0, 1, cfg.ell_max() + 1));  // label not smaller
  EXPECT_FALSE(f.can_overtake(1, 0, 1));              // tail not a working vertex
  EXPECT_FALSE(f.can_overtake(0, 1, 0));              // labels start at 1
}

TEST(StructureForest, AugmentLengthOnePath) {
  const Graph g = make_graph(2, std::vector<Edge>{{0, 1}});
  Matching m(2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);

  ASSERT_TRUE(f.can_augment(0, 1));
  f.augment(0, 1);
  ASSERT_EQ(f.recorded_paths().size(), 1u);
  EXPECT_EQ(f.recorded_paths()[0], (std::vector<Vertex>{0, 1}));
  EXPECT_TRUE(f.is_removed(0));
  EXPECT_TRUE(f.is_removed(1));
  EXPECT_TRUE(f.structure(0).removed);
  EXPECT_FALSE(f.can_augment(0, 1));  // both gone
}

TEST(StructureForest, AugmentLongPathThroughStructures) {
  // alpha=0 -u- 1 -m- 2 -u- 3 -m- 4 -u- 5=beta
  const Graph g =
      make_graph(6, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  Matching m(6);
  m.add(1, 2);
  m.add(3, 4);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();

  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);
  f.begin_pass_bundle(1000);
  f.overtake(5, 4, 1);  // structure of 5 takes (4,3): arc (5,4), a=(4,3)
  f.check_invariants();

  // Now 2 (outer in S_0) and 3 (outer in S_1) are adjacent.
  ASSERT_TRUE(f.can_augment(2, 3));
  f.augment(2, 3);
  ASSERT_EQ(f.recorded_paths().size(), 1u);
  const auto& p = f.recorded_paths()[0];
  EXPECT_EQ(p, (std::vector<Vertex>{0, 1, 2, 3, 4, 5}));
  EXPECT_TRUE(is_augmenting_path(g, m, p));
}

TEST(StructureForest, ContractBuildsBlossomAndZerosLabels) {
  // Triangle 0-1-2 with {1,2} matched, 0 free; plus tail 1-3, 3 free.
  const Graph g =
      make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {0, 2}, {1, 3}});
  Matching m(4);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();

  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);
  f.begin_pass_bundle(1000);
  // Working vertex is Omega(2); arc (2,0) connects it to the root: type 1.
  ASSERT_TRUE(f.can_contract(2, 0));
  f.contract(2, 0);
  f.check_invariants();

  const BlossomId b = f.omega(0);
  EXPECT_EQ(b, f.omega(1));
  EXPECT_EQ(b, f.omega(2));
  EXPECT_TRUE(f.arena().node(b).outer);
  EXPECT_EQ(f.arena().base(b), 0);
  EXPECT_EQ(f.structure(0).working, b);
  // Matched arcs inside E_B get label 0.
  EXPECT_EQ(f.label(1), 0);
  EXPECT_EQ(f.label(2), 0);
  // All three vertices are now outer: 1 is reachable for an augment from 3.
  ASSERT_TRUE(f.can_augment(1, 3));
  f.augment(1, 3);
  const auto& p = f.recorded_paths()[0];
  EXPECT_TRUE(is_augmenting_path(g, m, p));
  EXPECT_EQ(p.size(), 4u);  // 0,2,1,3 — through the blossom
}

TEST(StructureForest, BacktrackWalksUpAndDeactivates) {
  const Graph g = make_graph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  Matching m(3);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);

  f.begin_pass_bundle(1000);  // resets modified
  f.backtrack_stuck();
  EXPECT_EQ(f.structure(0).working, f.omega(0));  // grandparent = root
  f.begin_pass_bundle(1000);
  f.backtrack_stuck();
  EXPECT_EQ(f.structure(0).working, kNoBlossom);  // root -> inactive
  f.begin_pass_bundle(1000);
  f.backtrack_stuck();  // no-op on inactive structures
  EXPECT_EQ(f.ops_this_bundle(), 0);
}

TEST(StructureForest, BacktrackSkipsModifiedAndOnHold) {
  const Graph g = make_graph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  Matching m(3);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);  // marks modified
  f.backtrack_stuck();  // must skip: modified
  EXPECT_EQ(f.structure(0).working, f.omega(2));

  f.begin_pass_bundle(1);  // size 3 >= 1: on hold
  EXPECT_TRUE(f.structure(0).on_hold);
  EXPECT_TRUE(f.hold_seen());
  f.backtrack_stuck();  // must skip: on hold
  EXPECT_EQ(f.structure(0).working, f.omega(2));
}

TEST(StructureForest, OvertakeCase21ReparentsWithinStructure) {
  // Chain 0 -u- 1 -m- 2 -u- 3 -m- 4 -u- 5 -m- 6 and branch 0 -u- 7 -m- 8,
  // with shortcut {8,5}: after the chain backtracks, the branch steals inner 5.
  const Graph g = make_graph(
      9, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6},
                           {0, 7}, {7, 8}, {8, 5}});
  Matching m(9);
  m.add(1, 2);
  m.add(3, 4);
  m.add(5, 6);
  m.add(7, 8);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();

  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);
  f.begin_pass_bundle(1000);
  f.overtake(2, 3, 2);
  f.begin_pass_bundle(1000);
  f.overtake(4, 5, 3);
  // Backtrack the stuck tip all the way to the root.
  for (int i = 0; i < 3; ++i) {
    f.begin_pass_bundle(1000);
    f.backtrack_stuck();
  }
  ASSERT_EQ(f.structure(0).working, f.omega(0));
  f.begin_pass_bundle(1000);
  f.overtake(0, 7, 1);
  ASSERT_EQ(f.structure(0).working, f.omega(8));

  f.begin_pass_bundle(1000);
  // (8,5): same-structure overtake; 5 is inner with label 3, new label 2.
  ASSERT_TRUE(f.can_overtake(8, 5, 2));
  f.overtake(8, 5, 2);
  f.check_invariants();
  EXPECT_EQ(f.label(5), 2);
  EXPECT_EQ(f.structure(0).working, f.omega(6));
  EXPECT_EQ(f.outer_level(f.omega(6)), 2);
  EXPECT_EQ(f.totals().overtake_same, 1);
  // The active path now runs 0,7,8,5,6.
  const auto path = f.active_path(0);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(f.arena().node(path[1]).vert, 7);
  EXPECT_EQ(f.arena().node(path[3]).vert, 5);
}

TEST(StructureForest, OvertakeCase22StealsSubtreeAndWorkingVertex) {
  // Figure 2 scenario. S_beta (rooted at 10) reaches the matched arc (1,2)
  // through a long route; S_alpha (rooted at 0) steals it with a smaller
  // label, taking the victim's working vertex along.
  const Graph g = make_graph(
      11, std::vector<Edge>{{10, 5}, {5, 6}, {6, 1}, {1, 2}, {0, 1}});
  Matching m(11);
  m.add(5, 6);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  const StructureId s_alpha = f.structure_of(0);
  const StructureId s_beta = f.structure_of(10);

  f.begin_pass_bundle(1000);
  f.overtake(10, 5, 1);
  f.begin_pass_bundle(1000);
  f.overtake(6, 1, 2);
  ASSERT_EQ(f.structure(s_beta).size, 5);
  ASSERT_EQ(f.structure(s_beta).working, f.omega(2));

  f.begin_pass_bundle(1000);
  ASSERT_TRUE(f.can_overtake(0, 1, 1));
  f.overtake(0, 1, 1);
  f.check_invariants();

  EXPECT_EQ(f.totals().overtake_steal, 1);
  EXPECT_EQ(f.structure_of(1), s_alpha);
  EXPECT_EQ(f.structure_of(2), s_alpha);
  EXPECT_EQ(f.structure_of(6), s_beta);
  EXPECT_EQ(f.structure(s_alpha).size, 3);
  EXPECT_EQ(f.structure(s_beta).size, 3);
  EXPECT_EQ(f.label(1), 1);
  // Step 5: the victim's working vertex moved with the subtree, so S_alpha
  // inherits it and S_beta retreats to Omega(p) = Omega(6).
  EXPECT_EQ(f.structure(s_alpha).working, f.omega(2));
  EXPECT_EQ(f.structure(s_beta).working, f.omega(6));
  // Overtaker extended, victim only modified.
  EXPECT_TRUE(f.structure(s_alpha).extended);
  EXPECT_TRUE(f.structure(s_beta).modified);
  EXPECT_FALSE(f.structure(s_beta).extended);
}

TEST(StructureForest, OvertakeCase22VictimWorkingElsewhere) {
  // Variant where the victim's working vertex is NOT under the stolen
  // subtree at steal time (it backtracked above it), so S_alpha's working
  // vertex becomes t' and the victim keeps its own. The overtaker stays
  // level-0 by contracting a triangle blossom, then steals with k = 1.
  const Graph g = make_graph(
      15, std::vector<Edge>{// alpha's triangle + extension + steal edge
                            {0, 11}, {11, 12}, {12, 0}, {12, 13}, {13, 14},
                            {12, 1},
                            // beta's chain
                            {10, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 1}, {1, 2}});
  Matching m(15);
  m.add(11, 12);
  m.add(13, 14);
  m.add(5, 6);
  m.add(7, 8);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  const StructureId s_alpha = f.structure_of(0);
  const StructureId s_beta = f.structure_of(10);

  f.begin_pass_bundle(1000);
  f.overtake(10, 5, 1);
  f.overtake(0, 11, 1);
  f.begin_pass_bundle(1000);
  f.overtake(6, 7, 2);
  ASSERT_TRUE(f.can_contract(12, 0));
  f.contract(12, 0);  // alpha's working is now the root blossom, level 0
  f.begin_pass_bundle(1000);
  f.overtake(8, 1, 3);  // beta reaches (1,2) at label 3
  f.overtake(12, 13, 1);
  f.begin_pass_bundle(1000);
  f.backtrack_stuck();  // beta: Omega(2) -> Omega(8); alpha: Omega(14) -> blossom
  ASSERT_EQ(f.structure(s_beta).working, f.omega(8));
  ASSERT_EQ(f.structure(s_alpha).working, f.omega(0));

  f.begin_pass_bundle(1000);
  ASSERT_TRUE(f.can_overtake(12, 1, 1));
  f.overtake(12, 1, 1);
  f.check_invariants();
  EXPECT_EQ(f.totals().overtake_steal, 1);
  EXPECT_EQ(f.structure_of(1), s_alpha);
  EXPECT_EQ(f.structure_of(2), s_alpha);
  EXPECT_EQ(f.structure(s_alpha).working, f.omega(2));  // t'
  EXPECT_EQ(f.structure(s_beta).working, f.omega(8));   // unchanged
  EXPECT_EQ(f.structure(s_alpha).size, 7);
  EXPECT_EQ(f.structure(s_beta).size, 5);
}

TEST(StructureForest, AncestorOvertakeRejected) {
  const Graph g =
      make_graph(5, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 1}});
  Matching m(5);
  m.add(1, 2);
  m.add(3, 4);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);
  f.begin_pass_bundle(1000);
  f.overtake(2, 3, 2);
  f.begin_pass_bundle(1000);
  // From working Omega(4), arc (4,1) targets inner ancestor 1: forbidden by
  // (P2) regardless of labels.
  EXPECT_FALSE(f.can_overtake(4, 1, 3));
}

TEST(StructureForest, ContractThenPathThroughNestedBlossom) {
  // Odd cycle of length 5: 0-1-2-3-4-0 with {1,2},{3,4} matched, 0 free,
  // and a free pendant 5 attached to 2.
  const Graph g = make_graph(
      6, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {2, 5}});
  Matching m(6);
  m.add(1, 2);
  m.add(3, 4);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();

  f.begin_pass_bundle(1000);
  f.overtake(0, 1, 1);
  f.begin_pass_bundle(1000);
  f.overtake(2, 3, 2);
  f.begin_pass_bundle(1000);
  // Working is Omega(4); arc (4,0) closes the odd cycle.
  ASSERT_TRUE(f.can_contract(4, 0));
  f.contract(4, 0);
  f.check_invariants();
  const BlossomId b = f.omega(0);
  EXPECT_EQ(f.arena().vertex_count(b), 5);
  EXPECT_EQ(f.structure(0).working, b);

  // 2 is now an outer vertex; augment to the free pendant 5.
  ASSERT_TRUE(f.can_augment(2, 5));
  f.augment(2, 5);
  const auto& p = f.recorded_paths()[0];
  EXPECT_TRUE(is_augmenting_path(g, m, p));
  EXPECT_EQ(p.front(), 0);
  EXPECT_EQ(p.back(), 5);
}

TEST(StructureForest, OpsCountersTrackOperations) {
  const Graph g = make_graph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  Matching m(3);
  m.add(1, 2);
  const CoreConfig cfg = checked_config();
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);
  EXPECT_EQ(f.ops_this_bundle(), 0);
  f.overtake(0, 1, 1);
  EXPECT_EQ(f.ops_this_bundle(), 1);
  f.begin_pass_bundle(1000);
  EXPECT_EQ(f.ops_this_bundle(), 0);
  EXPECT_EQ(f.totals().overtake_unvisited, 1);
}

}  // namespace
}  // namespace bmf
