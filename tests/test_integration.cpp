#include <gtest/gtest.h>

#include "core/framework.hpp"
#include "dynamic/static_weak.hpp"
#include "dynamic/weak_oracle.hpp"
#include "matching/blossom_exact.hpp"
#include "matching/greedy.hpp"
#include "stream/streaming_matcher.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

// ---------------------------------------------------------------------------
// Three-way differential: framework vs streaming vs static-weak vs exact.
// ---------------------------------------------------------------------------

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

Graph diff_family(int family, std::uint64_t seed) {
  Rng rng(seed);
  switch (family) {
    case 0: return gen_random_graph(90, 270, rng);
    case 1: return gen_random_bipartite(45, 45, 200, rng);
    case 2: return gen_planted_matching(80, 120, rng);
    case 3: return gen_adversarial_chains(8, 3);
    default: return gen_odd_cycles(5, 7);
  }
}

TEST_P(DifferentialTest, AllPipelinesMeetTheSameGuarantee) {
  const auto [family, seed] = GetParam();
  const Graph g = diff_family(family, seed);
  const std::int64_t mu = maximum_matching_size(g);
  const double eps = 0.25;

  CoreConfig cfg;
  cfg.eps = eps;
  cfg.seed = seed;

  GreedyMatchingOracle oracle;
  const BoostResult fw = boost_matching(g, oracle, cfg);
  const StreamingResult st = streaming_matching(g, cfg);
  MatrixWeakOracle weak = MatrixWeakOracle::from_graph(g);
  WeakSimConfig wcfg;
  wcfg.core = cfg;
  const WeakBoostResult wk = static_weak_matching(g, weak, wcfg);

  for (const std::int64_t size :
       {fw.matching.size(), st.matching.size(), wk.matching.size()}) {
    EXPECT_GE(static_cast<double>(size) * (1.0 + eps), static_cast<double>(mu));
  }
  // Certified runs are exact whenever mu admits no long augmenting paths;
  // on these families a certificate plus the guarantee pins all three
  // within one augmentation of each other.
  if (fw.outcome.certified && st.outcome.certified) {
    EXPECT_EQ(fw.matching.size(), st.matching.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialTest,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1u, 2u, 7u)));

// ---------------------------------------------------------------------------
// Structure-forest fuzzing: random valid operation sequences keep every
// invariant intact and recorded paths valid.
// ---------------------------------------------------------------------------

struct OpCandidate {
  enum Kind { kOvertake, kContract, kAugment } kind;
  Vertex u, v;
  int k;
};

std::vector<OpCandidate> enumerate_ops(const StructureForest& f, const Graph& g) {
  std::vector<OpCandidate> ops;
  for (const Edge& e : g.edges()) {
    for (const auto& [u, v] : {std::pair<Vertex, Vertex>{e.u, e.v},
                               std::pair<Vertex, Vertex>{e.v, e.u}}) {
      if (f.structure_of(u) == kNoStructure || f.is_removed(u) ||
          f.is_removed(v))
        continue;
      const StructureInfo& s = f.structure(f.structure_of(u));
      if (s.working != kNoBlossom && s.working == f.omega(u)) {
        const int k = f.outer_level(s.working) + 1;
        if (f.can_overtake(u, v, k)) ops.push_back({OpCandidate::kOvertake, u, v, k});
        if (f.can_contract(u, v)) ops.push_back({OpCandidate::kContract, u, v, 0});
      }
      if (f.can_augment(u, v)) ops.push_back({OpCandidate::kAugment, u, v, 0});
    }
  }
  return ops;
}

class ForestFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ForestFuzzTest, RandomOperationSequencesKeepInvariants) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(40, 120, rng);
  Matching m = random_greedy_matching(g, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.check_invariants = true;
  StructureForest f(g, m, cfg);
  f.init_phase();
  f.begin_pass_bundle(1000);

  int steps = 0;
  int bundles = 0;
  while (steps < 300 && bundles < 20) {
    const auto ops = enumerate_ops(f, g);
    if (ops.empty()) {
      f.backtrack_stuck();
      if (f.ops_this_bundle() == 0) break;
      f.begin_pass_bundle(1000);
      ++bundles;
      continue;
    }
    const auto& op = ops[static_cast<std::size_t>(rng.next_below(ops.size()))];
    switch (op.kind) {
      case OpCandidate::kOvertake: f.overtake(op.u, op.v, op.k); break;
      case OpCandidate::kContract: f.contract(op.u, op.v); break;
      case OpCandidate::kAugment: f.augment(op.u, op.v); break;
    }
    f.check_invariants();
    ++steps;
    // Occasionally start a new pass-bundle so extended flags reset and the
    // fuzz explores multi-bundle interleavings.
    if (steps % 17 == 0) {
      f.begin_pass_bundle(steps % 34 == 0 ? 5 : 1000);  // sometimes hold
      ++bundles;
    }
  }
  // Every recorded path must be a valid disjoint augmenting path; applying
  // them must grow the matching accordingly.
  const std::int64_t before = m.size();
  for (const auto& p : f.recorded_paths()) {
    ASSERT_TRUE(is_augmenting_path(g, m, p));
    m.augment(p);
  }
  EXPECT_EQ(m.size(),
            before + static_cast<std::int64_t>(f.recorded_paths().size()));
  EXPECT_TRUE(m.is_valid_in(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ForestFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------------------------------------------------------------------------
// Failure injection: lossy-but-in-contract oracles keep the guarantee;
// out-of-contract oracles must not produce a (false) certificate.
// ---------------------------------------------------------------------------

/// Returns only every other edge of a maximal matching (still Theta(1)-approx
/// and non-empty whenever H has an edge).
class LossyOracle final : public MatchingOracle {
 public:
  [[nodiscard]] double approx_factor() const override { return 4.0; }

 protected:
  OracleMatching find_impl(const OracleGraph& h) override {
    OracleMatching full = greedy_oracle_matching(h);
    OracleMatching out;
    for (std::size_t i = 0; i < full.size(); i += 2) out.push_back(full[i]);
    if (out.empty() && !full.empty()) out.push_back(full.front());
    return out;
  }
};

/// Violates Definition 5.1: always answers with the empty matching.
class BrokenEmptyOracle final : public MatchingOracle {
 public:
  [[nodiscard]] double approx_factor() const override { return 2.0; }

 protected:
  OracleMatching find_impl(const OracleGraph&) override { return {}; }
};

TEST(FailureInjection, LossyOracleStillMeetsGuarantee) {
  Rng rng(3);
  const Graph g = gen_random_graph(80, 240, rng);
  LossyOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.25;
  cfg.check_invariants = true;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

TEST(FailureInjection, BrokenOracleNeverFalselyCertifies) {
  Rng rng(5);
  const Graph g = gen_random_graph(60, 180, rng);
  BrokenEmptyOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.25;
  const BoostResult r = boost_matching(g, oracle, cfg);
  // With an empty-answer oracle nothing is matched at all; the framework
  // must notice the contract violation and withhold the certificate.
  EXPECT_EQ(r.matching.size(), 0);
  EXPECT_FALSE(r.outcome.certified);
  EXPECT_GT(r.stats.truncated_loops, 0);
}

TEST(FailureInjection, LossyWeakOracleKeepsDynamicGuarantee) {
  // A_weak that drops half of each answer (still within Definition 6.1 for a
  // smaller lambda).
  class LossyWeak final : public WeakOracle {
   public:
    explicit LossyWeak(Vertex n) : inner_(n) {}
    [[nodiscard]] double lambda() const override { return 0.25; }
    void on_insert(Vertex u, Vertex v) override { inner_.on_insert(u, v); }
    void on_erase(Vertex u, Vertex v) override { inner_.on_erase(u, v); }

   protected:
    WeakQueryResult query_impl(std::span<const Vertex> s, double delta) override {
      WeakQueryResult r = inner_.query(s, delta);
      thin(r);
      return r;
    }
    WeakQueryResult query_cover_impl(std::span<const Vertex> p,
                                     std::span<const Vertex> m,
                                     double delta) override {
      WeakQueryResult r = inner_.query_cover(p, m, delta);
      thin(r);
      return r;
    }

   private:
    static void thin(WeakQueryResult& r) {
      std::vector<Edge> kept;
      for (std::size_t i = 0; i < r.matching.size(); i += 2)
        kept.push_back(r.matching[i]);
      if (kept.empty() && !r.matching.empty()) kept.push_back(r.matching.front());
      r.matching = std::move(kept);
    }
    MatrixWeakOracle inner_;
  };

  Rng rng(7);
  const Graph g = gen_planted_matching(60, 90, rng);
  LossyWeak oracle(g.num_vertices());
  for (const Edge& e : g.edges()) oracle.on_insert(e.u, e.v);
  WeakSimConfig cfg;
  cfg.core.eps = 0.25;
  const WeakBoostResult r = static_weak_matching(g, oracle, cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
}

// ---------------------------------------------------------------------------
// Scale smoke: a larger certified run is exactly optimal on planted input.
// ---------------------------------------------------------------------------

TEST(Integration, LargePlantedRunIsExactWhenCertified) {
  Rng rng(2);
  const Graph g = gen_planted_matching(2000, 6000, rng);
  GreedyMatchingOracle oracle;
  CoreConfig cfg;
  cfg.eps = 0.1;
  const BoostResult r = boost_matching(g, oracle, cfg);
  EXPECT_GE(static_cast<double>(r.matching.size()) * 1.1, 1000.0);
  if (r.outcome.certified) {
    EXPECT_EQ(r.matching.size(), 1000);
  }
}

}  // namespace
}  // namespace bmf
