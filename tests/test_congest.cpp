#include <gtest/gtest.h>

#include "congest/congest_boost.hpp"
#include "congest/congest_matching.hpp"
#include "congest/network.hpp"
#include "matching/blossom_exact.hpp"
#include "workloads/gen.hpp"

namespace bmf::congest {
namespace {

TEST(Network, DeliversAlongEdgesOnly) {
  const Graph g = make_graph(3, std::vector<Edge>{{0, 1}, {1, 2}});
  Network net(g);
  net.round([&](Vertex v, const Network::Inbox&, const Network::Sender& send) {
    if (v == 0) send(1, 99);
  });
  bool got = false;
  net.round([&](Vertex v, const Network::Inbox& inbox, const Network::Sender&) {
    if (v == 1) {
      ASSERT_EQ(inbox.size(), 1u);
      EXPECT_EQ(inbox[0].first, 0);
      EXPECT_EQ(inbox[0].second, 99u);
      got = true;
    } else {
      EXPECT_TRUE(inbox.empty());
    }
  });
  EXPECT_TRUE(got);
  EXPECT_EQ(net.rounds(), 2);
  EXPECT_EQ(net.violations(), 0);
}

TEST(Network, DoubleSendOnEdgeIsViolation) {
  const Graph g = make_graph(2, std::vector<Edge>{{0, 1}});
  Network net(g);
  net.round([&](Vertex v, const Network::Inbox&, const Network::Sender& send) {
    if (v == 0) {
      send(1, 1);
      send(1, 2);
    }
  });
  EXPECT_EQ(net.violations(), 1);
}

TEST(Network, ComponentAggregateMinRoundsScaleWithSize) {
  const Graph g = gen_disjoint_paths(3, 4);  // 3 paths of 5 vertices
  Network net(g);
  std::vector<std::vector<Vertex>> comps;
  for (Vertex c = 0; c < 3; ++c) {
    std::vector<Vertex> comp;
    for (Vertex i = 0; i < 5; ++i) comp.push_back(c * 5 + i);
    comps.push_back(comp);
  }
  std::vector<std::uint64_t> values(static_cast<std::size_t>(g.num_vertices()));
  for (Vertex v = 0; v < g.num_vertices(); ++v)
    values[static_cast<std::size_t>(v)] = 100 + static_cast<std::uint64_t>(v);
  const auto mins = component_aggregate_min(net, comps, values);
  EXPECT_EQ(mins, (std::vector<std::uint64_t>{100, 105, 110}));
  // 2 * depth + 2 with depth = 4 (BFS from the first vertex of a path).
  EXPECT_EQ(net.rounds(), 2 * 4 + 2);
}

class CongestMatchingTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CongestMatchingTest, HandshakesReachMaximality) {
  Rng grng(GetParam());
  const Graph g = gen_random_graph(70, 200, grng);
  Network net(g);
  Rng rng(GetParam() + 5);
  const CongestMatchingResult r = congest_maximal_matching(net, rng);
  Matching m(g.num_vertices());
  for (const auto& [u, v] : r.matching) m.add(u, v);
  EXPECT_TRUE(m.is_valid_in(g));
  EXPECT_TRUE(m.is_maximal_in(g));
  EXPECT_EQ(net.violations(), 0);
  EXPECT_EQ(r.rounds, 3 * r.iterations);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CongestMatchingTest,
                         ::testing::Values(1, 2, 3, 9, 31));

TEST(CongestBoost, MeetsGuaranteeAndChargesProcessRounds) {
  Rng rng(13);
  const Graph g = gen_planted_matching(100, 200, rng);
  CoreConfig cfg;
  cfg.eps = 0.25;
  const CongestBoostResult r = congest_boost_matching(g, cfg);
  EXPECT_GE(static_cast<double>(r.boost.matching.size()) * 1.25,
            static_cast<double>(maximum_matching_size(g)));
  EXPECT_GT(r.oracle_rounds, 0);
  EXPECT_GT(r.process_rounds, 0);
  EXPECT_GE(r.max_structure_size, 1);
  // A_process rounds grow with structure size (poly(1/eps)), not with n.
  EXPECT_LE(r.max_structure_size,
            static_cast<std::int64_t>(g.num_vertices()));
}

TEST(CongestBoost, LongChains) {
  const Graph g = gen_augmenting_chains(6, 4);
  CoreConfig cfg;
  cfg.eps = 0.2;
  const CongestBoostResult r = congest_boost_matching(g, cfg);
  EXPECT_GE(static_cast<double>(r.boost.matching.size()) * 1.2,
            static_cast<double>(maximum_matching_size(g)));
}

}  // namespace
}  // namespace bmf::congest
