// Compile-fail harness for the AdjacencyStore policy contract
// (src/dynamic/replay_core.hpp). `MinimalStore` implements exactly the
// contract surface — each member removable via a -DBMF_OMIT_<MEMBER> flag.
// CMake registers one syntax-only compile per flag and asserts (via
// PASS_REGULAR_EXPRESSION) that the DynamicReplayCore static_assert cascade
// names the missing member; the flagless compile is the positive control
// proving the stub satisfies the whole contract. This file is never linked
// into any target.

#include "dynamic/replay_core.hpp"

namespace {

class MinimalStore {
 public:
  MinimalStore(bmf::Vertex n, bmf::WeakOracle& oracle) : g_(n), oracle_(oracle) {}

#ifndef BMF_OMIT_NUM_VERTICES
  [[nodiscard]] bmf::Vertex num_vertices() const { return g_.num_vertices(); }
#endif
#ifndef BMF_OMIT_HAS_EDGE
  [[nodiscard]] bool has_edge(bmf::Vertex u, bmf::Vertex v) const {
    return g_.has_edge(u, v);
  }
#endif
#ifndef BMF_OMIT_NEIGHBORS
  [[nodiscard]] std::span<const bmf::Vertex> neighbors(bmf::Vertex v) const {
    return g_.neighbors(v);
  }
#endif
#ifndef BMF_OMIT_SNAPSHOT
  [[nodiscard]] bmf::Graph snapshot() const { return g_.snapshot(); }
#endif
#ifndef BMF_OMIT_ORACLE
  [[nodiscard]] bmf::WeakOracle& oracle() { return oracle_; }
#endif
#ifndef BMF_OMIT_USE_BATCH_ENGINE
  [[nodiscard]] bool use_batch_engine(int threads) const { return threads > 1; }
#endif
#ifndef BMF_OMIT_TOGGLE
  bool toggle(const bmf::EdgeUpdate& up) {
    const bool changed = up.insert ? g_.insert(up.u, up.v) : g_.erase(up.u, up.v);
    if (changed) {
      if (up.insert)
        oracle_.on_insert(up.u, up.v);
      else
        oracle_.on_erase(up.u, up.v);
    }
    return changed;
  }
#endif
#ifndef BMF_OMIT_APPLY_STRUCTURAL
  void apply_structural(std::span<const bmf::EdgeUpdate> updates,
                        std::span<const std::uint8_t> structural, int threads) {
    g_.apply_structural_disjoint(updates, structural, threads);
    oracle_.on_batch(updates, structural, threads);
  }
#endif
#ifndef BMF_OMIT_APPLY_ADJACENCY
  void apply_adjacency(std::span<const bmf::EdgeUpdate> updates,
                       std::span<const std::uint8_t> structural, int threads) {
    g_.apply_structural_disjoint(updates, structural, threads);
  }
#endif
#ifndef BMF_OMIT_FLUSH_ORACLE
  void flush_oracle(std::span<const bmf::EdgeUpdate> updates,
                    std::span<const std::uint8_t> structural, int threads) {
    oracle_.on_batch(updates, structural, threads);
  }
#endif
#ifndef BMF_OMIT_REBUILD_PARTICIPATION
  [[nodiscard]] bmf::RebuildParticipation& rebuild_participation() {
    return participation_;
  }
#endif
#ifndef BMF_OMIT_COMM_STATS
  [[nodiscard]] bmf::CommStats comm_stats() const { return {}; }
#endif

 private:
  bmf::DynGraph g_;
  bmf::WeakOracle& oracle_;
  bmf::FlatRebuildParticipation participation_;
};

// Instantiating the core is what arms the static_assert cascade.
void instantiate(MinimalStore& store, const bmf::DynamicCoreConfig& cfg) {
  bmf::DynamicReplayCore<MinimalStore> core(store, cfg);
  core.apply(bmf::EdgeUpdate::ins(0, 1));
}

}  // namespace

// Silence -Wunused-function without running anything: the harness is
// syntax-only.
void* bmf_compile_fail_anchor = reinterpret_cast<void*>(&instantiate);
