#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bit_matrix.hpp"
#include "graph/dyn_graph.hpp"
#include "graph/graph.hpp"
#include "workloads/gen.hpp"

namespace bmf {
namespace {

TEST(Graph, BuildDeduplicatesAndDropsLoops) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // duplicate
  b.add_edge(2, 2);  // loop
  b.add_edge(2, 3);
  const Graph g = b.build();
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_FALSE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(0, 2));
}

TEST(Graph, DegreesAndNeighbors) {
  const Graph g = make_graph(5, std::vector<Edge>{{0, 1}, {0, 2}, {0, 3}, {3, 4}});
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.max_degree(), 3);
  auto nb = g.neighbors(0);
  std::vector<Vertex> v(nb.begin(), nb.end());
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, (std::vector<Vertex>{1, 2, 3}));
}

TEST(Graph, InducedSubgraph) {
  const Graph g = make_graph(4, std::vector<Edge>{{0, 1}, {1, 2}, {2, 3}});
  const std::vector<std::uint8_t> keep{1, 1, 0, 1};
  const Graph sub = induced_subgraph(g, keep);
  EXPECT_EQ(sub.num_edges(), 1);
  EXPECT_TRUE(sub.has_edge(0, 1));
  EXPECT_FALSE(sub.has_edge(2, 3));
}

TEST(Graph, AdjacencySymmetry) {
  Rng rng(17);
  const Graph g = gen_random_graph(50, 200, rng);
  for (const Edge& e : g.edges()) {
    auto nu = g.neighbors(e.u);
    auto nv = g.neighbors(e.v);
    EXPECT_NE(std::find(nu.begin(), nu.end(), e.v), nu.end());
    EXPECT_NE(std::find(nv.begin(), nv.end(), e.u), nv.end());
  }
}

TEST(DynGraph, InsertEraseRoundtrip) {
  DynGraph g(5);
  EXPECT_TRUE(g.insert(0, 1));
  EXPECT_FALSE(g.insert(1, 0));  // duplicate
  EXPECT_EQ(g.num_edges(), 1);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.erase(0, 1));
  EXPECT_FALSE(g.erase(0, 1));
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(DynGraph, SnapshotMatchesState) {
  DynGraph g(6);
  g.insert(0, 1);
  g.insert(2, 3);
  g.insert(4, 5);
  g.erase(2, 3);
  const Graph s = g.snapshot();
  EXPECT_EQ(s.num_edges(), 2);
  EXPECT_TRUE(s.has_edge(0, 1));
  EXPECT_FALSE(s.has_edge(2, 3));
}

TEST(DynGraph, NeighborsAreSortedAscending) {
  DynGraph g(8);
  for (Vertex v : {5, 2, 7, 1, 6}) g.insert(3, v);
  g.erase(3, 6);
  const auto nb = g.neighbors(3);
  const std::vector<Vertex> want{1, 2, 5, 7};
  ASSERT_EQ(nb.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(nb[i], want[i]);
}

TEST(DynGraph, SnapshotOrderIsInsertionOrderIndependent) {
  // Pin the determinism fix: the same edge set inserted in any order (here a
  // seeded shuffle) must snapshot to the exact same edge sequence — sorted
  // lexicographically with u < v — so seeded downstream runs reproduce across
  // platforms and standard libraries.
  Rng rng(17);
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 12; ++u)
    for (Vertex v = u + 1; v < 12; ++v)
      if (rng.next_bool(0.4)) edges.push_back({u, v});
  ASSERT_GT(edges.size(), 10u);

  std::vector<Edge> shuffled = edges;
  rng.shuffle(shuffled);
  ASSERT_NE(shuffled, edges);  // the shuffle actually moved something

  DynGraph g(12);
  for (const Edge& e : shuffled) g.insert(e.u, e.v);
  const Graph s = g.snapshot();
  ASSERT_EQ(s.num_edges(), static_cast<std::int64_t>(edges.size()));
  for (std::size_t i = 0; i < edges.size(); ++i) {
    EXPECT_EQ(s.edges()[i].u, edges[i].u) << "position " << i;
    EXPECT_EQ(s.edges()[i].v, edges[i].v) << "position " << i;
  }
}

TEST(DynGraph, BatchResolveAndApplyMatchesSerialReplay) {
  // resolve_structural + apply_structural over a batch with duplicates and
  // same-edge toggles must equal the one-at-a-time replay, at any threads.
  std::vector<EdgeUpdate> batch{
      EdgeUpdate::ins(0, 1), EdgeUpdate::ins(1, 0),  // duplicate
      EdgeUpdate::del(0, 1), EdgeUpdate::ins(0, 1),  // toggle off and on
      EdgeUpdate::ins(2, 3), EdgeUpdate::del(4, 5),  // absent deletion
      EdgeUpdate::none(),    EdgeUpdate::ins(1, 2)};
  DynGraph serial(6);
  for (const EdgeUpdate& up : batch) {
    if (up.empty()) continue;
    if (up.insert)
      serial.insert(up.u, up.v);
    else
      serial.erase(up.u, up.v);
  }
  for (const int threads : {1, 4}) {
    DynGraph g(6);
    const auto flags = g.resolve_structural(batch, threads);
    g.apply_structural(batch, flags, threads);
    EXPECT_EQ(g.num_edges(), serial.num_edges());
    for (Vertex u = 0; u < 6; ++u)
      for (Vertex v = 0; v < 6; ++v)
        EXPECT_EQ(g.has_edge(u, v), serial.has_edge(u, v))
            << u << "," << v << " threads=" << threads;
  }
}

TEST(BitVec, SetGetPopcount) {
  BitVec v(130);
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.get(64));
  EXPECT_FALSE(v.get(63));
  EXPECT_EQ(v.popcount(), 3);
  EXPECT_EQ(v.first_set(), 0);
  v.set(0, false);
  EXPECT_EQ(v.first_set(), 64);
}

TEST(BitVec, FirstCommon) {
  BitVec a(100), b(100);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(99);
  EXPECT_EQ(a.first_common(b), 70);
  b.set(70, false);
  EXPECT_EQ(a.first_common(b), -1);
}

TEST(BitMatrix, MultiplyMatchesNaive) {
  Rng rng(23);
  const std::int64_t n = 90;
  BitMatrix m(n, n);
  std::vector<std::vector<bool>> ref(n, std::vector<bool>(n, false));
  for (int i = 0; i < 400; ++i) {
    const auto r = static_cast<std::int64_t>(rng.next_below(n));
    const auto c = static_cast<std::int64_t>(rng.next_below(n));
    m.set(r, c);
    ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] = true;
  }
  BitVec v(n), out(n);
  for (int i = 0; i < 30; ++i) v.set(static_cast<std::int64_t>(rng.next_below(n)));
  m.multiply(v, out);
  for (std::int64_t r = 0; r < n; ++r) {
    bool expect = false;
    for (std::int64_t c = 0; c < n; ++c)
      expect |=
          ref[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] && v.get(c);
    EXPECT_EQ(out.get(r), expect) << "row " << r;
  }
}

TEST(BitMatrix, RowQueries) {
  BitMatrix m(4, 200);
  m.set(2, 150);
  m.set(2, 7);
  BitVec mask(200);
  mask.set(150);
  EXPECT_EQ(m.first_common_in_row(2, mask), 150);
  EXPECT_EQ(m.row_intersect_count(2, mask), 1);
  mask.set(7);
  EXPECT_EQ(m.first_common_in_row(2, mask), 7);
  EXPECT_EQ(m.row_intersect_count(2, mask), 2);
  EXPECT_EQ(m.first_common_in_row(0, mask), -1);
}

TEST(BitMatrix, CountedRowProbeReportsWordsActuallyScanned) {
  // 200 columns = 4 words per row. The probe early-exits at the first set
  // AND-word, so the reported scan count is position-dependent, not the
  // whole row.
  BitMatrix m(4, 200);
  m.set(2, 150);  // word 2
  m.set(2, 7);    // word 0
  BitVec mask(200);
  mask.set(150);
  std::int64_t words = 0;
  EXPECT_EQ(m.first_common_in_row(2, mask, &words), 150);
  EXPECT_EQ(words, 3);  // words 0, 1 empty; hit in word 2
  mask.set(7);
  EXPECT_EQ(m.first_common_in_row(2, mask, &words), 7);
  EXPECT_EQ(words, 1);  // hit in word 0
  EXPECT_EQ(m.first_common_in_row(0, mask, &words), -1);
  EXPECT_EQ(words, 4);  // full-row miss scans every word
}

TEST(BitMatrix, CountedMultiplyReportsPerRowEarlyExit) {
  // 130 columns = 3 words per row, 3 rows. Row 0 hits in its first word
  // (1 word), row 1 hits only in word 2 (3 words), row 2 misses (3 words).
  BitMatrix m(3, 130);
  m.set(0, 1);
  m.set(1, 129);
  BitVec v(130), out(3);
  v.set(1);
  v.set(129);
  std::int64_t words = 0;
  m.multiply(v, out, &words);
  EXPECT_TRUE(out.get(0));
  EXPECT_TRUE(out.get(1));
  EXPECT_FALSE(out.get(2));
  EXPECT_EQ(words, 1 + 3 + 3);
}

TEST(BitMatrix, FromGraphSymmetric) {
  const Graph g = make_graph(5, std::vector<Edge>{{0, 4}, {1, 2}});
  const BitMatrix m = BitMatrix::from_graph(g);
  EXPECT_TRUE(m.get(0, 4));
  EXPECT_TRUE(m.get(4, 0));
  EXPECT_TRUE(m.get(2, 1));
  EXPECT_FALSE(m.get(0, 1));
}

class GeneratorTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorTest, RandomGraphHasRequestedEdges) {
  Rng rng(GetParam());
  const Graph g = gen_random_graph(40, 100, rng);
  EXPECT_EQ(g.num_vertices(), 40);
  EXPECT_EQ(g.num_edges(), 100);
}

TEST_P(GeneratorTest, BipartiteIsBipartite) {
  Rng rng(GetParam());
  const Graph g = gen_random_bipartite(20, 25, 80, rng);
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, 20);
    EXPECT_GE(e.v, 20);
  }
}

TEST_P(GeneratorTest, PlantedMatchingHasPerfectMatching) {
  Rng rng(GetParam());
  const Graph g = gen_planted_matching(30, 40, rng);
  EXPECT_EQ(g.num_vertices(), 30);
  EXPECT_GE(g.num_edges(), 15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorTest, ::testing::Values(1, 2, 3, 7, 99));

TEST(Generators, DisjointPathsShape) {
  const Graph g = gen_disjoint_paths(3, 4);
  EXPECT_EQ(g.num_vertices(), 15);
  EXPECT_EQ(g.num_edges(), 12);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Generators, OddCyclesShape) {
  const Graph g = gen_odd_cycles(2, 5);
  EXPECT_EQ(g.num_vertices(), 10);
  EXPECT_EQ(g.num_edges(), 10);
  EXPECT_EQ(g.max_degree(), 2);
}

TEST(Generators, CliquePairShape) {
  const Graph g = gen_clique_pair(4);
  EXPECT_EQ(g.num_vertices(), 8);
  // Two K4s (6 edges each) plus the cross matching (4 edges).
  EXPECT_EQ(g.num_edges(), 16);
}

}  // namespace
}  // namespace bmf
