"""unordered-order-taint: hash-order dataflow to committed-state sinks.

Replaces the determinism lint's window heuristic with real (if structural)
dataflow. A *source* introduces the label ``hash-order`` on a variable:

  * range-for over a ``std::unordered_{map,set}`` (containers pushed into
    inside the loop body inherit the label — that is how hash order
    escapes the loop);
  * ``u.begin()`` of an unordered container feeding a constructor or
    algorithm;
  * sorting by ``std::hash`` (the sorted order *is* hash order);
  * sorting a ``std::vector<T*>`` by raw pointer value (address order is
    allocation order, not input order).

Labels propagate through assignments, container pushes, and one level of
helper calls (summaries: which labels a helper's return carries, and which
parameters the helper feeds into a sink unsorted). A *canonicalizer*
clears labels: ``std::sort``/``stable_sort``/``ranges::sort`` with a
deterministic key, or a call to a manifest-listed canonicalizing method
(the pos-tagged ``RebuildParticipation::merge``). A finding fires when a
``hash-order`` value reaches a *sink*: Matching mutation (``add`` /
``remove_at`` / ``augment``), an oracle query (``find_matching``,
``query*``, ``static_weak_boost``), a rebuild/replay entry point, or a
golden digest.

Scope: src/core, src/dynamic, src/graph (helper summaries are built from
every analyzed file so cross-file helpers still resolve).
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field

import source_model as sm

TAINT_DIRS = {"core", "dynamic", "graph"}
HASH_ORDER = "hash-order"

RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
SORT_CALL_RE = re.compile(r"\b(?:std::)?(?:ranges::)?(?:stable_)?sort\s*\(")
PUSH_RE = re.compile(
    rf"\b({sm.IDENT})(?:\s*(?:\.|->)\s*{sm.IDENT})*?\s*(?:\.|->)\s*"
    rf"(?:push_back|emplace_back|emplace|insert|push)\s*\("
)
INDEX_ASSIGN_RE = re.compile(rf"\b({sm.IDENT})\s*\[[^\]]*\]\s*(?<![=!<>])=(?!=)")
ASSIGN_RE = re.compile(rf"\b({sm.IDENT})\s*(?<![=!<>+\-*/&|^])=(?!=)\s*(.+)$")
BEGIN_RE = re.compile(rf"\b({sm.IDENT})\s*\.\s*c?begin\s*\(\s*\)")
CALL_RE = re.compile(rf"\b({sm.IDENT})\s*\(")
IDENT_RE = re.compile(rf"\b({sm.IDENT})\b")

# (pattern, sink kind). Each fires only when a hash-order value appears in
# the call's arguments, so a clean tree pays nothing for the breadth here.
SINK_RES: tuple[tuple[re.Pattern[str], str], ...] = (
    (
        re.compile(rf"\b{sm.IDENT}\s*(?:\.|->)\s*(add|remove_at|augment)\s*\("),
        "Matching mutation",
    ),
    (
        re.compile(
            r"\b(find_matching|query_cover|static_weak_boost)\s*\("
        ),
        "oracle query",
    ),
    (re.compile(r"(?:\.|->)\s*(query)\s*\("), "oracle query"),
    (re.compile(rf"\b(\w*rebuild\w*)\s*\("), "rebuild/replay entry"),
    (re.compile(rf"\b(\w*digest\w*)\s*\("), "golden digest"),
)

NOT_HELPERS = sm.NON_FUNCTION_KEYWORDS | {
    "sort",
    "stable_sort",
    "push_back",
    "emplace_back",
    "emplace",
    "insert",
    "push",
    "begin",
    "end",
    "cbegin",
    "cend",
    "size",
    "empty",
    "find",
    "count",
    "reserve",
    "clear",
    "resize",
}


@dataclass
class HelperSummary:
    name: str
    returns_labels: set[str] = field(default_factory=set)
    # param name -> sink kind it reaches uncanonicalized inside the helper.
    param_sinks: dict[str, str] = field(default_factory=dict)

    def interesting(self) -> bool:
        return bool(self.returns_labels or self.param_sinks)


def _split_range_for(paren_text: str) -> tuple[str, str] | None:
    """('decl', 'iterable') for a range-for's paren text, None for a classic
    for (top-level ';') or no loop colon."""
    depth = 0
    for i, c in enumerate(paren_text):
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        elif depth == 0:
            if c == ";":
                return None
            if (
                c == ":"
                and (i == 0 or paren_text[i - 1] != ":")
                and (i + 1 >= len(paren_text) or paren_text[i + 1] != ":")
            ):
                return paren_text[:i], paren_text[i + 1 :]
    return None


def _loop_var_names(decl: str) -> list[str]:
    binding = re.search(r"\[([^\]]*)\]", decl)
    if binding:
        return [
            n.strip()
            for n in binding.group(1).split(",")
            if n.strip() and n.strip() != "_"
        ]
    m = re.search(rf"({sm.IDENT})\s*$", decl)
    return [m.group(1)] if m else []


def _base_ident(expr: str) -> str | None:
    m = re.search(rf"({sm.IDENT})", expr.strip().lstrip("*&("))
    return m.group(1) if m else None


def _labels_in(expr: str, taint: dict[str, set[str]]) -> set[str]:
    labels: set[str] = set()
    for m in IDENT_RE.finditer(expr):
        labels |= taint.get(m.group(1), set())
    return labels


def _region_end(sf: sm.SourceFile, for_open: int) -> int:
    """Offset of the end of a for statement's body (brace-matched, or the
    next ';' for a braceless body)."""
    _args, close = sm.call_argument_text(sf.text, for_open)
    i, n = close, len(sf.text)
    while i < n and sf.text[i] in " \t\n":
        i += 1
    if i < n and sf.text[i] == "{":
        depth = 0
        while i < n:
            if sf.text[i] == "{":
                depth += 1
            elif sf.text[i] == "}":
                depth -= 1
                if depth == 0:
                    return i
            i += 1
        return n
    while i < n and sf.text[i] != ";":
        i += 1
    return i


def ast_unordered_lines(path: str, repo_src: str) -> set[int] | None:
    """AST-confirmed 1-based lines of range-fors over unordered containers
    (libclang refinement; None when the bindings are unavailable)."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        tu = cindex.Index.create().parse(
            path, args=["-std=c++20", "-I", repo_src]
        )
    except cindex.TranslationUnitLoadError:
        return None
    hits: set[int] = set()

    def visit(node):
        if node.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
            for child in node.get_children():
                spelling = child.type.spelling
                if "unordered_map" in spelling or "unordered_set" in spelling:
                    if node.location.file and node.location.file.name == path:
                        hits.add(node.location.line)
                break
        for child in node.get_children():
            visit(child)

    visit(tu.cursor)
    return hits


def _analyze_function(
    sf: sm.SourceFile,
    fn: sm.FunctionDef,
    summaries: dict[str, HelperSummary] | None,
    canonical_methods: set[str],
    ast_lines: set[int] | None,
    findings: list[sm.Finding] | None,
) -> HelperSummary:
    """Single forward pass over a function body. With ``summaries`` (second
    pass) hash-order labels reaching sinks are reported into ``findings``;
    without (first pass) the returned HelperSummary records what a caller
    needs to know."""
    summary = HelperSummary(fn.name)
    taint: dict[str, set[str]] = {p: {f"param:{p}"} for p in fn.params}
    # (region_end_offset, labels) for active tainted range-for bodies.
    regions: list[tuple[int, set[str]]] = []
    reported: set[tuple[int, str]] = set()

    first = sf.line_of(fn.body_start) - 1  # 0-based
    last = sf.line_of(fn.body_end) - 1

    def region_labels(off: int) -> set[str]:
        labels: set[str] = set()
        for end, lbls in regions:
            if off <= end:
                labels |= lbls
        return labels

    def sink_hit(idx: int, kind: str, name: str, labels: set[str]) -> None:
        if HASH_ORDER in labels:
            if findings is not None and (idx, name) not in reported:
                reported.add((idx, name))
                sm.report(
                    findings,
                    sf,
                    idx,
                    "unordered-order-taint",
                    f"hash-ordered value reaches {kind} '{name}' without "
                    "canonicalization; sort (or pos-tagged-merge) the "
                    "collected values first",
                )
        for lbl in labels:
            if lbl.startswith("param:"):
                summary.param_sinks.setdefault(lbl[len("param:") :], kind)

    for idx in range(first, last + 1):
        line = sf.lines[idx]
        line_off = sf.line_starts[idx]

        # -- range-for sources ------------------------------------------------
        for m in RANGE_FOR_RE.finditer(line):
            open_off = line_off + m.end() - 1
            paren_text, _close = sm.call_argument_text(sf.text, open_off)
            split = _split_range_for(paren_text)
            if split is None:
                continue
            decl, iterable = split
            base = _base_ident(iterable)
            labels: set[str] = set()
            if base is not None:
                if base in sf.unordered_vars:
                    labels.add(HASH_ORDER)
                labels |= taint.get(base, set())
            if ast_lines is not None and (idx + 1) in ast_lines:
                labels.add(HASH_ORDER)
            # Strong update: the loop vars are fresh declarations, so a
            # clean iterable *clears* any stale taint from an earlier
            # same-named binding (the collect-then-sort second loop).
            for var in _loop_var_names(decl):
                if labels:
                    taint[var] = set(labels)
                else:
                    taint.pop(var, None)
            if labels:
                regions.append((_region_end(sf, open_off), set(labels)))

        # -- sorts: canonicalizer or source -----------------------------------
        for m in SORT_CALL_RE.finditer(line):
            open_off = line_off + m.end() - 1
            arg_text, _close = sm.call_argument_text(sf.text, open_off)
            args = sm.split_arguments(arg_text)
            if not args:
                continue
            base = _base_ident(args[0])
            if base is None:
                continue
            if "std::hash" in arg_text:
                taint[base] = set(taint.get(base, set())) | {HASH_ORDER}
                continue
            comparator = args[2] if len(args) >= 3 else ""
            if base in sf.ptr_vector_vars:
                # Sorting pointers canonicalizes only when the comparator
                # looks through them (member access) — bare `a < b` is
                # address order.
                if comparator and ("->" in comparator or "." in comparator):
                    taint.pop(base, None)
                else:
                    taint[base] = set(taint.get(base, set())) | {HASH_ORDER}
                continue
            taint.pop(base, None)

        # -- canonicalizing method calls (manifest: e.g. merge) ---------------
        am = ASSIGN_RE.search(line)
        for method in canonical_methods:
            if re.search(rf"(?:\.|->)\s*{method}\s*\(", line) and am:
                taint.pop(am.group(1), None)
                am = None
                break

        in_region = region_labels(line_off)

        # -- plain assignment: strong update (a clean RHS clears taint) -------
        if am is not None:
            rhs_labels = _labels_in(am.group(2), taint) | in_region
            if rhs_labels:
                taint[am.group(1)] = set(rhs_labels)
            else:
                taint.pop(am.group(1), None)

        # -- pushes: inherit region labels + argument labels ------------------
        for m in PUSH_RE.finditer(line):
            open_off = line_off + line[m.start() :].index("(") + m.start()
            arg_text, _close = sm.call_argument_text(sf.text, open_off)
            labels = set(in_region) | _labels_in(arg_text, taint)
            if labels:
                target = m.group(1)
                taint[target] = set(taint.get(target, set())) | labels
        for m in INDEX_ASSIGN_RE.finditer(line):
            labels = set(in_region) | _labels_in(
                line[m.end() :], taint
            )
            if labels:
                target = m.group(1)
                taint[target] = set(taint.get(target, set())) | labels

        # -- unordered begin() feeding a constructor/algorithm ----------------
        for m in BEGIN_RE.finditer(line):
            if m.group(1) in sf.unordered_vars:
                if am is not None:
                    target = am.group(1)
                    taint[target] = set(taint.get(target, set())) | {
                        HASH_ORDER
                    }
                else:
                    dm = re.search(
                        rf"({sm.IDENT})\s*[({{]\s*{m.group(1)}\s*\.\s*c?begin",
                        line,
                    )
                    if dm:
                        taint[dm.group(1)] = set(
                            taint.get(dm.group(1), set())
                        ) | {HASH_ORDER}

        # -- helper calls (one level) -----------------------------------------
        if summaries is not None:
            for m in CALL_RE.finditer(line):
                name = m.group(1)
                helper = summaries.get(name)
                if helper is None or name in NOT_HELPERS:
                    continue
                open_off = line_off + m.end() - 1
                arg_text, _close = sm.call_argument_text(sf.text, open_off)
                args = sm.split_arguments(arg_text)
                for pname, kind in helper.param_sinks.items():
                    for arg in args:
                        if HASH_ORDER in _labels_in(arg, taint):
                            sink_hit(
                                idx,
                                f"{kind} (inside helper '{name}')",
                                name,
                                {HASH_ORDER},
                            )
                            break
                if helper.returns_labels and am is not None:
                    mapped: set[str] = set()
                    for lbl in helper.returns_labels:
                        if lbl == HASH_ORDER:
                            mapped.add(HASH_ORDER)
                        elif lbl.startswith("param:"):
                            pname = lbl[len("param:") :]
                            try:
                                pos = helper_param_pos(helper, pname)
                            except ValueError:
                                pos = None
                            if pos is not None and pos < len(args):
                                mapped |= _labels_in(args[pos], taint)
                    if mapped:
                        target = am.group(1)
                        taint[target] = set(taint.get(target, set())) | mapped

        # -- sinks ------------------------------------------------------------
        for pattern, kind in SINK_RES:
            for m in pattern.finditer(line):
                open_at = line.index("(", m.end() - 1)
                open_off = line_off + open_at
                arg_text, _close = sm.call_argument_text(sf.text, open_off)
                labels = _labels_in(arg_text, taint)
                if labels:
                    sink_hit(idx, kind, m.group(1), labels)

        # -- returns feed the summary -----------------------------------------
        rm = re.search(r"\breturn\b(.*)$", line)
        if rm:
            summary.returns_labels |= _labels_in(rm.group(1), taint)

    return summary


# Helper-summary params are recorded by name; callers need positions. The
# first pass stores names only, so positions resolve through the defining
# FunctionDef — kept in a registry keyed by helper name.
_PARAM_ORDER: dict[str, list[str]] = {}


def helper_param_pos(helper: HelperSummary, pname: str) -> int | None:
    order = _PARAM_ORDER.get(helper.name, [])
    if pname in order:
        return order.index(pname)
    raise ValueError(pname)


def check(
    files: list[sm.SourceFile],
    use_libclang: str = "auto",
    canonical_methods: set[str] | None = None,
    taint_all: bool = False,
) -> list[sm.Finding]:
    canon = canonical_methods or {"merge"}
    repo_src = os.path.join(
        os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
        "src",
    )

    ast_by_file: dict[str, set[int] | None] = {}
    if use_libclang != "no":
        for sf in files:
            ast_by_file[sf.path] = ast_unordered_lines(sf.path, repo_src)
        if use_libclang == "require" and any(
            v is None for v in ast_by_file.values()
        ):
            raise RuntimeError("libclang requested but not importable")

    # Pass 1: helper summaries from every file (no cross-function info).
    summaries: dict[str, HelperSummary] = {}
    for sf in files:
        for fn in sf.functions:
            s = _analyze_function(
                sf, fn, None, canon, ast_by_file.get(sf.path), None
            )
            if s.interesting() and fn.name not in NOT_HELPERS:
                _PARAM_ORDER[fn.name] = fn.params
                prev = summaries.get(fn.name)
                if prev is None:
                    summaries[fn.name] = s
                else:  # same-name helpers: conservative union
                    prev.returns_labels |= s.returns_labels
                    prev.param_sinks.update(s.param_sinks)

    # Pass 2: report hash-order flows in the scoped subsystems.
    findings: list[sm.Finding] = []
    for sf in files:
        if not taint_all and sf.subsystem not in TAINT_DIRS:
            continue
        for fn in sf.functions:
            _analyze_function(
                sf, fn, summaries, canon, ast_by_file.get(sf.path), findings
            )
    return findings
