"""Rules shared between tools/determinism_lint.py and tools/analyzer.

The publication-order rule used to live inline in the determinism lint;
it now has exactly one implementation here. Both tools call
``check_publication_order`` and wrap the returned (line, message) pairs
in their own finding types (each applies its own suppression syntax).

The rule guards the PR 7 proof obligation in
``src/service/matching_service.cpp``: the writer must release-store the
snapshot pointer (``latest_``) *before* release-storing the epoch counter
(``published_epoch_``) — a reader that observes epoch >= e is then
guaranteed to observe snapshot e via the acquire load. The code marks the
pair with ``publication-order[1]`` / ``publication-order[2]`` comments;
the rule checks the markers exist, appear in order, and each sits
immediately above the matching release store.
"""

from __future__ import annotations

RULE_NAME = "publication-order"


def check_publication_order(
    raw_lines: list[str], lines: list[str]
) -> list[tuple[int, str]]:
    """Returns (0-based line index, message) pairs for a service-subsystem
    file. ``raw_lines`` carry the comments (the markers live there);
    ``lines`` are the comment/string-stripped twin used to match the actual
    stores."""
    if not any("published_epoch_.store" in line for line in lines):
        return []
    findings: list[tuple[int, str]] = []
    marker1 = marker2 = None
    for idx, raw in enumerate(raw_lines):
        if "publication-order[1]" in raw:
            marker1 = idx
        if "publication-order[2]" in raw:
            marker2 = idx
    if marker1 is None or marker2 is None:
        findings.append(
            (
                0,
                "file release-stores published_epoch_ but lacks the "
                "publication-order[1]/[2] proof markers (see "
                "docs/static_analysis.md)",
            )
        )
    elif marker1 >= marker2:
        findings.append(
            (
                marker2,
                "publication-order[2] (epoch store) precedes "
                "publication-order[1] (snapshot store): the snapshot must "
                "be release-stored first",
            )
        )
    else:
        for marker, idx, want in (
            ("publication-order[1]", marker1, "latest_"),
            ("publication-order[2]", marker2, "published_epoch_"),
        ):
            stmt = "\n".join(lines[idx + 1 : idx + 3])
            if (
                f"{want}.store" not in stmt
                or "std::memory_order_release" not in stmt
            ):
                findings.append(
                    (
                        idx,
                        f"{marker} must be immediately followed by "
                        f"{want}.store(..., std::memory_order_release)",
                    )
                )
    return findings
