#!/usr/bin/env python3
"""Fixture + real-tree tests for tools/analyzer (wired into ctest).

Mirrors tools/test_determinism_lint.py: every known-bad fixture under
fixtures/bad/ must produce at least one finding of the rule named by its
expectations entry; every good twin must come back completely clean; a
fixture on disk the expectations table does not mention is itself a
failure. On top of that the suite checks the analyzer against reality:

  * the full src/ tree is clean under all rules and the default manifest;
  * the lock rule is not vacuous — it must *observe* the three manifest
    edges in src/ (a scan that sees nothing would trivially pass);
  * the planted-violation regression: reverting the PR 7 pair_witness
    collect-then-sort in a scratch copy of framework.cpp must trip
    unordered-order-taint.
"""

import json
import os
import shutil
import sys
import tempfile
import unittest

ANALYZER_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, ANALYZER_DIR)

import bmf_analyzer  # noqa: E402
import rules_locks  # noqa: E402
import source_model as sm  # noqa: E402

FIXTURES = os.path.join(ANALYZER_DIR, "fixtures")
REPO = os.path.dirname(os.path.dirname(ANALYZER_DIR))

# fixture path relative to fixtures/bad -> set of rules it must trip.
BAD_EXPECTATIONS = {
    "src/core/taint_direct.cpp": {"unordered-order-taint"},
    "src/core/taint_helper.cpp": {"unordered-order-taint"},
    "src/dynamic/taint_ptr_sort.cpp": {"unordered-order-taint"},
    "src/dynamic/ledger_in_lambda.cpp": {"single-writer-ledger"},
    "src/service/lock_undeclared.cpp": {"lock-order"},
    "src/service/publication_pairing.cpp": {"publication-order"},
    "src/service/relaxed_unmarked.cpp": {"relaxed-audit"},
    "src/util/lock_cycle.cpp": {"lock-order"},
}


def fixture_manifest() -> dict:
    with open(
        os.path.join(FIXTURES, "lock_order_manifest.json"), encoding="utf-8"
    ) as f:
        return json.load(f)


def default_manifest() -> dict:
    with open(bmf_analyzer.default_manifest_path(), encoding="utf-8") as f:
        return json.load(f)


def analyze(paths, manifest, **kwargs):
    return bmf_analyzer.analyze(
        paths, manifest, set(sm.RULES), use_libclang="auto", **kwargs
    )


def fixture_files(kind):
    root = os.path.join(FIXTURES, kind)
    out = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith(sm.CPP_EXTENSIONS):
                out.append(os.path.relpath(os.path.join(dirpath, name), root))
    return sorted(out)


class BadFixtures(unittest.TestCase):
    def test_every_bad_fixture_is_expected(self):
        self.assertEqual(fixture_files("bad"), sorted(BAD_EXPECTATIONS))

    def test_bad_fixtures_fail_with_the_expected_rule(self):
        manifest = fixture_manifest()
        for rel, want_rules in BAD_EXPECTATIONS.items():
            with self.subTest(fixture=rel):
                findings = analyze(
                    [os.path.join(FIXTURES, "bad", rel)], manifest
                )
                got_rules = {f.rule for f in findings}
                self.assertTrue(
                    want_rules <= got_rules,
                    f"{rel}: wanted {sorted(want_rules)}, got "
                    f"{sorted(got_rules)} from "
                    f"{[f.render() for f in findings]}",
                )

    def test_lock_cycle_names_the_cycle(self):
        findings = analyze(
            [os.path.join(FIXTURES, "bad", "src/util/lock_cycle.cpp")],
            fixture_manifest(),
        )
        cycles = [f for f in findings if "cycle" in f.message]
        self.assertEqual(1, len(cycles), [f.render() for f in findings])
        self.assertIn("CyclePool::a_ -> CyclePool::b_", cycles[0].message)

    def test_ledger_catches_helper_one_level_down(self):
        findings = analyze(
            [os.path.join(FIXTURES, "bad", "src/dynamic/ledger_in_lambda.cpp")],
            fixture_manifest(),
        )
        self.assertTrue(
            any("charge_round" in f.message for f in findings),
            [f.render() for f in findings],
        )


class GoodFixtures(unittest.TestCase):
    def test_good_fixtures_are_clean(self):
        manifest = fixture_manifest()
        for rel in fixture_files("good"):
            with self.subTest(fixture=rel):
                findings = analyze(
                    [os.path.join(FIXTURES, "good", rel)], manifest
                )
                self.assertEqual(
                    [],
                    [f.render() for f in findings],
                    f"{rel} should analyze clean",
                )

    def test_good_and_bad_twins_pair_up(self):
        self.assertEqual(fixture_files("bad"), fixture_files("good"))


class SuppressionPolicy(unittest.TestCase):
    def test_allow_without_reason_is_rejected(self):
        self.assertIsNone(
            sm.ALLOW_RE.search("// bmf-analyzer: allow(lock-order)")
        )

    def test_allow_with_reason_names_one_rule(self):
        m = sm.ALLOW_RE.search(
            "// bmf-analyzer: allow(relaxed-audit) -- justified elsewhere"
        )
        self.assertIsNotNone(m)
        self.assertEqual("relaxed-audit", m.group(1))


class RealTree(unittest.TestCase):
    def test_src_is_clean_under_all_rules(self):
        findings = analyze([os.path.join(REPO, "src")], default_manifest())
        self.assertEqual([], [f.render() for f in findings])

    def test_lock_rule_observes_the_manifest_edges(self):
        # Guards against a vacuously-green lock rule: the three reviewed
        # nestings must actually be seen by the scan.
        files = [
            sm.parse_file(p)
            for p in sm.collect_files([os.path.join(REPO, "src")])
        ]
        reg = rules_locks._Registry(files)
        for sf in files:
            for fn in sf.functions:
                ids = {
                    reg.resolve_mutex(sf, fn, m.group(1))
                    for m in rules_locks.ACQUIRE_RE.finditer(sf.body(fn))
                }
                if ids:
                    reg.direct_acqs[id(fn)] = ids
        observed = set()
        for sf in files:
            for fn in sf.functions:
                _acqs, edges = rules_locks._scan_function(reg, sf, fn)
                observed |= {(e.src, e.dst) for e in edges}
        for edge in default_manifest()["allowed_edges"]:
            self.assertIn(tuple(edge), observed)

    def test_relaxed_sites_in_src_are_all_justified(self):
        # Every memory_order_relaxed in src/ carries a relaxed-ok reason —
        # the audit half of the rule, asserted directly.
        findings = analyze([os.path.join(REPO, "src")], default_manifest())
        self.assertEqual(
            [], [f.render() for f in findings if f.rule == "relaxed-audit"]
        )


class PlantedViolation(unittest.TestCase):
    """Reverting the PR 7 hash-order fix must be caught (acceptance
    criterion: the analyzer guards the fixes, not just the fixtures)."""

    FIXED = """\
    std::vector<std::int64_t> keys;
    keys.reserve(pair_witness.size());
    for (const auto& [key, wx] : pair_witness) {
      (void)wx;
      keys.push_back(key);
    }
    std::sort(keys.begin(), keys.end());
    for (const std::int64_t key : keys)
      h.edges.emplace_back(static_cast<std::int32_t>(key >> 31),
                           static_cast<std::int32_t>(key & ((1LL << 31) - 1)));
"""
    REVERTED = """\
    for (const auto& [key, wx] : pair_witness) {
      (void)wx;
      h.edges.emplace_back(static_cast<std::int32_t>(key >> 31),
                           static_cast<std::int32_t>(key & ((1LL << 31) - 1)));
    }
"""

    def test_reverting_pair_witness_sort_is_caught(self):
        src = os.path.join(REPO, "src", "core", "framework.cpp")
        with open(src, encoding="utf-8") as f:
            text = f.read()
        self.assertIn(
            self.FIXED, text,
            "framework.cpp's collect-then-sort changed shape; update the "
            "planted-violation template alongside it",
        )
        scratch = tempfile.mkdtemp(prefix="bmf_analyzer_planted_")
        try:
            planted_dir = os.path.join(scratch, "src", "core")
            os.makedirs(planted_dir)
            planted = os.path.join(planted_dir, "framework.cpp")
            with open(planted, "w", encoding="utf-8") as f:
                f.write(text.replace(self.FIXED, self.REVERTED))
            findings = analyze([planted], default_manifest())
            self.assertTrue(
                any(f.rule == "unordered-order-taint" for f in findings),
                [f.render() for f in findings],
            )
        finally:
            shutil.rmtree(scratch)

    def test_unsorting_is_caught_even_via_the_collect_vector(self):
        # Weaker revert: keep the collect loop but drop only the sort line.
        src = os.path.join(REPO, "src", "core", "framework.cpp")
        with open(src, encoding="utf-8") as f:
            text = f.read()
        no_sort = text.replace("    std::sort(keys.begin(), keys.end());\n", "")
        self.assertNotEqual(no_sort, text)
        scratch = tempfile.mkdtemp(prefix="bmf_analyzer_planted_")
        try:
            planted_dir = os.path.join(scratch, "src", "core")
            os.makedirs(planted_dir)
            planted = os.path.join(planted_dir, "framework.cpp")
            with open(planted, "w", encoding="utf-8") as f:
                f.write(no_sort)
            findings = analyze([planted], default_manifest())
            self.assertTrue(
                any(f.rule == "unordered-order-taint" for f in findings),
                [f.render() for f in findings],
            )
        finally:
            shutil.rmtree(scratch)


if __name__ == "__main__":
    unittest.main()
