"""lock-order: the global bmf::Mutex acquisition graph must stay acyclic
and every nesting must be declared.

The annotated mutex layer (ThreadPool, BoundedQueue, MatchingService,
the replay core's OverlapSlot) acquires exclusively through the
``bmf::MutexLock`` RAII guard, which makes acquisition *sites* and their
block-scoped lifetimes recoverable structurally:

  * every ``MutexLock l(expr)`` is an acquisition of the mutex named by
    ``expr``'s final member component, resolved to a class-qualified id
    (``ThreadPool::Worker::mutex``) via the tree-wide Mutex declaration
    registry;
  * a guard holds from its declaration to the end of its enclosing block
    (tracked by brace depth), so an acquisition while another guard is
    live records the edge ``held -> new``;
  * one level of interprocedural flow: a call made while holding adds
    edges to the callee's own direct acquisitions (callees resolve by
    receiver type when the receiver is a known member/local, by class
    for unqualified self-calls, and are skipped when ambiguous — a
    missed edge beats a fabricated deadlock).

Failures: any cycle in the observed graph, and any observed edge absent
from the checked-in whitelist (``lock_order_manifest.json`` →
``allowed_edges``). The manifest itself is also checked for cycles so the
whitelist cannot quietly bless a deadlock.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import source_model as sm

ACQUIRE_RE = re.compile(
    rf"\bMutexLock\s+{sm.IDENT}\s*[({{]\s*([\w.\->]+?)\s*[,)}}]"
)
CALL_RE = re.compile(
    rf"(?:\b({sm.IDENT})\s*(?:\.|->)\s*)?\b({sm.IDENT})\s*\("
)
VAR_TYPE_RE = re.compile(
    rf"\b([A-Z]\w*)\s*(?:<[^;=(){{}}]*>)?\s+(?:&\s*)?({sm.IDENT})\s*[;{{(=]"
)

NOT_CALLEES = sm.NON_FUNCTION_KEYWORDS | {
    "MutexLock",
    "BMF_REQUIRES",
    "BMF_ACQUIRE",
    "BMF_RELEASE",
    "BMF_GUARDED_BY",
    "wait",
    "notify_one",
    "notify_all",
}


@dataclass
class Acquisition:
    off: int  # offset into the file's stripped text
    depth: int  # brace depth inside the function body at the guard
    mutex_id: str


@dataclass
class Edge:
    src: str
    dst: str
    path: str
    line: int
    note: str


def _final_component(expr: str) -> str:
    return re.split(r"\.|->", expr)[-1].strip()


def _receiver_of(expr: str) -> str | None:
    parts = re.split(r"\.|->", expr)
    if len(parts) >= 2:
        m = re.search(rf"({sm.IDENT})\s*$", parts[-2])
        return m.group(1) if m else None
    return None


class _Registry:
    """Tree-wide name tables the per-function scan resolves against."""

    def __init__(self, files: list[sm.SourceFile]):
        self.mutexes: dict[str, set[str]] = {}
        self.var_types: dict[str, str] = {}
        self.functions: dict[str, list[tuple[str | None, sm.SourceFile, sm.FunctionDef]]] = {}
        for sf in files:
            for name, quals in sf.mutex_decls.items():
                self.mutexes.setdefault(name, set()).update(quals)
            for m in VAR_TYPE_RE.finditer(sf.text):
                cls, var = m.group(1), m.group(2)
                if cls in ("Mutex", "MutexLock", "CondVar"):
                    continue
                self.var_types.setdefault(var, cls)
            for fn in sf.functions:
                self.functions.setdefault(fn.name, []).append((fn.cls, sf, fn))
        # filled by check(): function qualname -> directly acquired mutex ids
        self.direct_acqs: dict[int, set[str]] = {}

    def resolve_mutex(self, sf: sm.SourceFile, fn: sm.FunctionDef, expr: str) -> str:
        name = _final_component(expr)
        recv = _receiver_of(expr)
        if recv is not None:
            recv_cls = self.var_types.get(recv)
            if recv_cls is not None:
                for qual in self.mutexes.get(name, set()):
                    if qual.split("::")[-2:] == [recv_cls, name] or (
                        len(qual.split("::")) >= 2
                        and qual.split("::")[-2].endswith(recv_cls)
                    ):
                        return qual
        quals = self.mutexes.get(name, set())
        if len(quals) == 1:
            return next(iter(quals))
        if fn.cls is not None:
            for qual in quals:
                if qual.startswith(fn.cls + "::") or f"::{fn.cls}::" in qual:
                    return qual
        local = f"<local:{fn.qualname}>::{name}"
        if local in quals:
            return local
        return name  # ambiguous — stable, unqualified

    def resolve_callee(
        self, caller: sm.FunctionDef, recv: str | None, name: str
    ) -> sm.FunctionDef | None:
        candidates = self.functions.get(name, [])
        acquiring = [
            (cls, sf, fn)
            for cls, sf, fn in candidates
            if self.direct_acqs.get(id(fn))
        ]
        if not acquiring:
            return None
        if recv is not None:
            recv_cls = self.var_types.get(recv)
            if recv_cls is not None:
                typed = [
                    fn
                    for cls, _sf, fn in acquiring
                    if cls is not None
                    and (cls == recv_cls or cls.endswith("::" + recv_cls))
                ]
                if len(typed) == 1:
                    return typed[0]
            return None  # method call on an unresolvable receiver — skip
        same_cls = [
            fn for cls, _sf, fn in acquiring if cls is not None and cls == caller.cls
        ]
        if len(same_cls) == 1:
            return same_cls[0]
        if len(acquiring) == 1:
            return acquiring[0][2]
        return None


def _scan_function(
    reg: _Registry, sf: sm.SourceFile, fn: sm.FunctionDef
) -> tuple[list[Acquisition], list[Edge]]:
    body = sf.body(fn)
    base = fn.body_start + 1
    acq_at: dict[int, str] = {}
    for m in ACQUIRE_RE.finditer(body):
        acq_at[m.start()] = reg.resolve_mutex(sf, fn, m.group(1))
    call_at: dict[int, tuple[str | None, str]] = {}
    for m in CALL_RE.finditer(body):
        if m.group(2) not in NOT_CALLEES and m.start() not in acq_at:
            call_at[m.start()] = (m.group(1), m.group(2))

    acquisitions: list[Acquisition] = []
    edges: list[Edge] = []
    holds: list[Acquisition] = []
    depth = 0
    for i, c in enumerate(body):
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            holds = [h for h in holds if h.depth <= depth]
        if i in acq_at:
            acq = Acquisition(base + i, depth, acq_at[i])
            line = sf.line_of(acq.off)
            for held in holds:
                edges.append(
                    Edge(
                        held.mutex_id,
                        acq.mutex_id,
                        sf.path,
                        line,
                        f"in {fn.qualname}",
                    )
                )
            acquisitions.append(acq)
            holds.append(acq)
        elif i in call_at and holds:
            recv, name = call_at[i]
            callee = reg.resolve_callee(fn, recv, name)
            if callee is not None:
                line = sf.line_of(base + i)
                for dst in sorted(reg.direct_acqs.get(id(callee), set())):
                    for held in holds:
                        edges.append(
                            Edge(
                                held.mutex_id,
                                dst,
                                sf.path,
                                line,
                                f"in {fn.qualname} via call to "
                                f"{callee.qualname}",
                            )
                        )
    return acquisitions, edges


def _find_cycle(edges: set[tuple[str, str]]) -> list[str] | None:
    graph: dict[str, set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
        graph.setdefault(dst, set())
    state: dict[str, int] = {}  # 0 unvisited / 1 in-stack / 2 done
    stack: list[str] = []

    def dfs(node: str) -> list[str] | None:
        state[node] = 1
        stack.append(node)
        for nxt in sorted(graph.get(node, set())):
            if state.get(nxt, 0) == 1:
                return stack[stack.index(nxt) :] + [nxt]
            if state.get(nxt, 0) == 0:
                cycle = dfs(nxt)
                if cycle is not None:
                    return cycle
        stack.pop()
        state[node] = 2
        return None

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            cycle = dfs(node)
            if cycle is not None:
                return cycle
    return None


def check(
    files: list[sm.SourceFile], manifest: dict
) -> list[sm.Finding]:
    reg = _Registry(files)
    # Pass 1: every function's direct acquisitions (callee summaries).
    per_fn: dict[int, tuple[sm.SourceFile, sm.FunctionDef]] = {}
    for sf in files:
        for fn in sf.functions:
            body = sf.body(fn)
            ids = {
                reg.resolve_mutex(sf, fn, m.group(1))
                for m in ACQUIRE_RE.finditer(body)
            }
            if ids:
                reg.direct_acqs[id(fn)] = ids
            per_fn[id(fn)] = (sf, fn)

    # Pass 2: block-scoped holds -> observed edges.
    edges: list[Edge] = []
    for sf in files:
        for fn in sf.functions:
            _acqs, fn_edges = _scan_function(reg, sf, fn)
            edges.extend(fn_edges)

    findings: list[sm.Finding] = []
    allowed = {
        (src, dst) for src, dst in manifest.get("allowed_edges", [])
    }

    manifest_cycle = _find_cycle(set(allowed))
    if manifest_cycle is not None:
        findings.append(
            sm.Finding(
                "lock_order_manifest.json",
                1,
                "lock-order",
                "the allowed_edges whitelist itself contains a cycle: "
                + " -> ".join(manifest_cycle),
            )
        )

    observed: dict[tuple[str, str], Edge] = {}
    for e in edges:
        observed.setdefault((e.src, e.dst), e)

    cycle = _find_cycle(set(observed))
    if cycle is not None:
        witnesses = "; ".join(
            f"{observed[(a, b)].path}:{observed[(a, b)].line} "
            f"({observed[(a, b)].note})"
            for a, b in zip(cycle, cycle[1:])
            if (a, b) in observed
        )
        first = next(
            observed[(a, b)]
            for a, b in zip(cycle, cycle[1:])
            if (a, b) in observed
        )
        findings.append(
            sm.Finding(
                first.path,
                first.line,
                "lock-order",
                "lock acquisition cycle: "
                + " -> ".join(cycle)
                + f" [{witnesses}]",
            )
        )

    for (src, dst), e in sorted(observed.items()):
        if (src, dst) not in allowed:
            sf = next((f for f in files if f.path == e.path), None)
            idx = e.line - 1
            if sf is not None and sm.allowed(sf.raw_lines, idx, "lock-order"):
                continue
            findings.append(
                sm.Finding(
                    e.path,
                    e.line,
                    "lock-order",
                    f"undeclared lock nesting {src} -> {dst} ({e.note}); "
                    "declare it in tools/analyzer/lock_order_manifest.json "
                    "after reviewing the global order",
                )
            )
    return findings
