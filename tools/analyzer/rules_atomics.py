"""relaxed-audit + publication-order: every relaxed atomic access is
justified, and the service's snapshot/epoch release pairing stays proven.

``memory_order_relaxed`` is correct in this codebase only for monotonic
counters and stop flags whose readers tolerate staleness — and each such
site must say so, with an adjacent comment:

    x_.fetch_add(1, std::memory_order_relaxed);  // relaxed-ok: stat counter

(or the marker on the line above). A relaxed access without a
``relaxed-ok:`` reason is a finding: either the order is wrong, or the
justification is missing and the next reader cannot tell which.

The publication-order half delegates to the single shared implementation
(shared_rules.check_publication_order) also used by the determinism lint:
release stores to ``latest_`` / ``published_epoch_`` must keep the PR 7
pairing proven by the publication-order[1]/[2] markers.
"""

from __future__ import annotations

import re

import shared_rules
import source_model as sm

RELAXED_RE = re.compile(r"\bmemory_order_relaxed\b")
RELAXED_OK_RE = re.compile(r"//\s*relaxed-ok:\s*(\S.*)$")

SERVICE_DIRS = {"service"}


def _has_marker(sf: sm.SourceFile, idx: int) -> bool:
    """Marker on the flagged line, anywhere earlier in the same (possibly
    multi-line) statement, or on the line just above the statement head."""
    if idx < len(sf.raw_lines) and RELAXED_OK_RE.search(sf.raw_lines[idx]):
        return True
    i = idx - 1
    for _ in range(6):
        if i < 0:
            break
        if RELAXED_OK_RE.search(sf.raw_lines[i]):
            return True
        stripped = sf.lines[i].strip() if i < len(sf.lines) else ""
        if not stripped or stripped.endswith((";", "{", "}")):
            break  # i ended the previous statement — it was the line above
        i -= 1
    return False


def check(files: list[sm.SourceFile]) -> list[sm.Finding]:
    findings: list[sm.Finding] = []
    for sf in files:
        for idx, line in enumerate(sf.lines):
            if RELAXED_RE.search(line) and not _has_marker(sf, idx):
                sm.report(
                    findings,
                    sf,
                    idx,
                    "relaxed-audit",
                    "memory_order_relaxed without an adjacent "
                    "'// relaxed-ok: <reason>' marker; justify the relaxed "
                    "order or strengthen it",
                )
        if sf.subsystem in SERVICE_DIRS:
            for idx, message in shared_rules.check_publication_order(
                sf.raw_lines, sf.lines
            ):
                sm.report(findings, sf, idx, "publication-order", message)
    return findings
