#!/usr/bin/env python3
"""bmf-analyzer CLI — whole-tree determinism/concurrency analysis.

Runs the four program-level rules (see package docstring / the rule
modules) over a set of C++ files and prints findings in the familiar
``path:line: [rule] message`` shape.

Usage:
    python3 tools/analyzer/bmf_analyzer.py               # analyzes <repo>/src
    python3 tools/analyzer/bmf_analyzer.py path...       # given files/dirs
    python3 tools/analyzer/bmf_analyzer.py --rules lock-order,relaxed-audit
    python3 tools/analyzer/bmf_analyzer.py --taint-all tests/  # nightly mode

Exit status 0 = clean, 1 = findings, 2 = usage/configuration error.

The lock-order whitelist and the ledger field list live in
``lock_order_manifest.json`` next to this script (``--manifest`` to
override — the fixture suite points it at a fixture-local manifest).
Suppression: ``// bmf-analyzer: allow(<rule>) -- <reason>`` on the
flagged line or the line above; unknown rule names in suppressions are
themselves rejected by the determinism lint's stale-suppression check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules_atomics  # noqa: E402
import rules_ledger  # noqa: E402
import rules_locks  # noqa: E402
import rules_taint  # noqa: E402
import source_model as sm  # noqa: E402


def repo_root() -> str:
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )


def default_manifest_path() -> str:
    return os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "lock_order_manifest.json"
    )


def analyze(
    paths: list[str],
    manifest: dict,
    rules: set[str],
    use_libclang: str = "auto",
    taint_all: bool = False,
) -> list[sm.Finding]:
    try:
        file_paths = sm.collect_files(paths)
    except FileNotFoundError as e:
        print(f"bmf_analyzer: no such path: {e}", file=sys.stderr)
        sys.exit(2)
    files = [sm.parse_file(p) for p in file_paths]
    findings: list[sm.Finding] = []
    if "unordered-order-taint" in rules:
        findings.extend(
            rules_taint.check(
                files,
                use_libclang=use_libclang,
                canonical_methods=set(
                    manifest.get("canonical_methods", ["merge"])
                ),
                taint_all=taint_all,
            )
        )
    if "lock-order" in rules:
        findings.extend(rules_locks.check(files, manifest))
    if "relaxed-audit" in rules or "publication-order" in rules:
        atomics = rules_atomics.check(files)
        findings.extend(
            f
            for f in atomics
            if f.rule in rules
        )
    if "single-writer-ledger" in rules:
        findings.extend(rules_ledger.check(files, manifest))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        description="bmf program-level determinism analyzer "
        "(see module docstring)"
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: <repo>/src)",
    )
    parser.add_argument(
        "--manifest",
        default=default_manifest_path(),
        help="lock-order/ledger manifest JSON "
        "(default: tools/analyzer/lock_order_manifest.json)",
    )
    parser.add_argument(
        "--rules",
        default=",".join(sm.RULES),
        help="comma-separated rule subset to run (default: all)",
    )
    parser.add_argument(
        "--use-libclang",
        choices=("auto", "no", "require"),
        default="auto",
        help="confirm taint sources against the clang AST when the python "
        "bindings are importable (default: auto; the structural frontend "
        "is canonical)",
    )
    parser.add_argument(
        "--taint-all",
        action="store_true",
        help="run the taint rule outside src/core|dynamic|graph too "
        "(nightly sweep over tests/)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule names and exit"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in sm.RULES:
            print(rule)
        return 0
    rules = {r.strip() for r in args.rules.split(",") if r.strip()}
    unknown = rules - set(sm.RULES)
    if unknown:
        print(
            f"bmf_analyzer: unknown rule(s): {', '.join(sorted(unknown))}",
            file=sys.stderr,
        )
        return 2
    try:
        with open(args.manifest, encoding="utf-8") as f:
            manifest = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bmf_analyzer: cannot read manifest: {e}", file=sys.stderr)
        return 2
    paths = args.paths or [os.path.join(repo_root(), "src")]
    try:
        findings = analyze(
            paths, manifest, rules, args.use_libclang, args.taint_all
        )
    except RuntimeError as e:  # --use-libclang require without bindings
        print(f"bmf_analyzer: {e}", file=sys.stderr)
        return 2
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"bmf_analyzer: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
