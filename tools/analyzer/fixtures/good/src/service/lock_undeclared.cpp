// Analyzer fixture (known-good): the declared twin of
// bad/src/service/lock_undeclared.cpp. Same consistent nesting, but the
// edge DeclaredQueue::close_gate_ -> DeclaredQueue::drain_gate_ is listed
// in the fixture manifest's allowed_edges. Fixtures are analyzer inputs,
// not build inputs.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};

class DeclaredQueue {
 public:
  void close() {
    MutexLock hold(close_gate_);
    drain();  // close_gate_ -> drain_gate_: declared in the manifest
  }
  void drain() { MutexLock hold(drain_gate_); }

 private:
  Mutex close_gate_;
  Mutex drain_gate_;
};
