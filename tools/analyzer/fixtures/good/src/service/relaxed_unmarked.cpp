// Analyzer fixture (known-good): the justified twin of
// bad/src/service/relaxed_unmarked.cpp — every relaxed access carries its
// reason. Fixtures are analyzer inputs, not build inputs.
#include <atomic>
#include <cstdint>

class Counter {
 public:
  void bump() {
    // relaxed-ok: monotone stat counter; readers tolerate staleness
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t read() const {
    return hits_.load(std::memory_order_relaxed);  // relaxed-ok: stat read
  }

 private:
  std::atomic<std::int64_t> hits_{0};
};
