// Analyzer fixture (known-good): the deterministic-key twin of
// bad/src/dynamic/taint_ptr_sort.cpp. Pointers are ordered by the stable
// id they point at, strings by value — both pure functions of the input.
// Fixtures are analyzer inputs, not build inputs.
#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

struct Node {
  std::int64_t id;
};
struct Matching {
  void add(std::int64_t u, std::int64_t v);
};

void commit_by_id(Matching& m, std::vector<Node*> frontier) {
  std::sort(frontier.begin(), frontier.end(),
            [](const Node* a, const Node* b) { return a->id < b->id; });
  m.add(frontier[0]->id, frontier[1]->id);  // canonical: id order
}

void commit_by_value(Matching& m, std::vector<std::string> labels) {
  std::sort(labels.begin(), labels.end());
  m.add(static_cast<std::int64_t>(labels[0].size()),
        static_cast<std::int64_t>(labels[1].size()));  // canonical
}
