// Analyzer fixture (known-good): the coordinator-fold twin of
// bad/src/dynamic/ledger_in_lambda.cpp. Workers accumulate into private
// per-thread slots; the coordinator folds the slots into the ledger after
// the join — PR 8's discipline. Fixtures are analyzer inputs, not build
// inputs.
#include <cstdint>
#include <functional>
#include <vector>

void parallel_for_threads(int threads, std::int64_t n,
                          const std::function<void(std::int64_t)>& fn);

class ShardRouter {
 public:
  void route(std::int64_t ops, int threads) {
    std::vector<std::int64_t> slots(static_cast<std::size_t>(ops), 0);
    parallel_for_threads(threads, ops, [&](std::int64_t i) {
      slots[static_cast<std::size_t>(i)] += 16;  // private slot per item
    });
    for (const std::int64_t s : slots) batch_bytes_ += s;  // coordinator fold
    batch_rounds_ += 1;
  }

 private:
  std::int64_t batch_bytes_ = 0;
  std::int64_t batch_rounds_ = 0;
};
