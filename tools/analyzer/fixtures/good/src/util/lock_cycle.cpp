// Analyzer fixture (known-good): the consistent-order twin of
// bad/src/util/lock_cycle.cpp. Both paths nest b_ under a_ and the edge is
// declared in the fixture manifest. Fixtures are analyzer inputs, not
// build inputs.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};

class OrderedPool {
 public:
  void forward() {
    MutexLock hold_a(a_);
    MutexLock hold_b(b_);  // a_ -> b_, declared
  }
  void also_forward() {
    MutexLock hold_a(a_);
    MutexLock hold_b(b_);  // same order everywhere
  }

 private:
  Mutex a_;
  Mutex b_;
};
