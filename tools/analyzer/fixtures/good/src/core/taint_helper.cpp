// Analyzer fixture (known-good): the canonicalized twin of
// bad/src/core/taint_helper.cpp. The caller sorts the helper's result
// before committing, which clears the hash-order taint. Fixtures are
// analyzer inputs, not build inputs.
#include <algorithm>
#include <cstdint>
#include <unordered_set>
#include <vector>

struct Matching {
  void add(std::int64_t u, std::int64_t v);
};

std::vector<std::int64_t> gather_dirty(
    const std::unordered_set<std::int64_t>& dirty) {
  std::vector<std::int64_t> out;
  for (const std::int64_t v : dirty) out.push_back(v);
  return out;  // hash order — callers must canonicalize
}

void commit_dirty(Matching& m, const std::unordered_set<std::int64_t>& dirty) {
  std::vector<std::int64_t> order = gather_dirty(dirty);
  std::sort(order.begin(), order.end());
  m.add(order[0], order[1]);  // canonical: sorted id order
}
