// Analyzer fixture (known-good): the collect-then-sort twin of
// bad/src/core/taint_direct.cpp. Keys are sorted before they reach the
// oracle, so no hash order survives. Fixtures are analyzer inputs, not
// build inputs.
#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

struct OracleGraph {
  std::vector<std::int64_t> edges;
};
struct Oracle {
  int find_matching(const OracleGraph& g);
};

int commit_pairs(Oracle& oracle,
                 const std::unordered_map<std::int64_t, int>& pair_witness) {
  std::vector<std::int64_t> keys;
  keys.reserve(pair_witness.size());
  for (const auto& [key, wx] : pair_witness) {
    (void)wx;
    keys.push_back(key);
  }
  std::sort(keys.begin(), keys.end());
  OracleGraph h;
  for (const std::int64_t key : keys) h.edges.push_back(key);
  return oracle.find_matching(h);  // canonical: sorted id order
}
