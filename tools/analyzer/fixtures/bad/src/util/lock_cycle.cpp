// Analyzer fixture (known-bad): lock-order cycle. One path nests b_ under
// a_, the other nests a_ under b_ — a textbook ABBA deadlock the global
// acquisition graph must reject. Fixtures are analyzer inputs, not build
// inputs (Mutex/MutexLock mirror src/util/annotations.hpp).
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};

class CyclePool {
 public:
  void forward() {
    MutexLock hold_a(a_);
    MutexLock hold_b(b_);  // a_ -> b_
  }
  void backward() {
    MutexLock hold_b(b_);
    MutexLock hold_a(a_);  // b_ -> a_: closes the cycle
  }

 private:
  Mutex a_;
  Mutex b_;
};
