// Analyzer fixture (known-bad): lock-order, undeclared nesting. The
// acquisition order is consistent (no cycle) but the edge is absent from
// the manifest whitelist — new nestings must be reviewed and declared.
// Also exercises the one-level interprocedural edge: the nesting happens
// via a callee that takes its own lock. Fixtures are analyzer inputs, not
// build inputs.
struct Mutex {};
struct MutexLock {
  explicit MutexLock(Mutex& m);
};

class UndeclaredQueue {
 public:
  void close() {
    MutexLock hold(close_gate_);
    drain();  // acquires drain_gate_ while close_gate_ is held
  }
  void drain() { MutexLock hold(drain_gate_); }

 private:
  Mutex close_gate_;
  Mutex drain_gate_;
};
