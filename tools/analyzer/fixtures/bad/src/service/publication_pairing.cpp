// Analyzer fixture (known-bad): publication-order. The epoch counter is
// release-stored before the snapshot pointer — a reader observing the new
// epoch could still fetch the old snapshot, breaking the SSP refresh
// proof. The markers reflect the (wrong) order. Fixtures are analyzer
// inputs, not build inputs.
#include <atomic>
#include <cstdint>
#include <memory>

struct Snapshot {
  std::int64_t epoch;
};

class Publisher {
 public:
  void publish(std::shared_ptr<const Snapshot> snap, std::int64_t epoch) {
    // publication-order[2]
    published_epoch_.store(epoch, std::memory_order_release);
    // publication-order[1]
    latest_.store(std::move(snap), std::memory_order_release);
  }

 private:
  std::atomic<std::shared_ptr<const Snapshot>> latest_;
  std::atomic<std::int64_t> published_epoch_{0};
};
