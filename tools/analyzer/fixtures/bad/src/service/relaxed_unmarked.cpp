// Analyzer fixture (known-bad): relaxed-audit. Relaxed atomic accesses
// with no adjacent `// relaxed-ok: <reason>` justification. Fixtures are
// analyzer inputs, not build inputs.
#include <atomic>
#include <cstdint>

class Counter {
 public:
  void bump() { hits_.fetch_add(1, std::memory_order_relaxed); }
  std::int64_t read() const {
    return hits_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> hits_{0};
};
