// Analyzer fixture (known-bad): unordered-order-taint via non-canonical
// sorts. Sorting pointers by address and sorting by std::hash both produce
// run-dependent orders; each feeds a committed-state sink here. Fixtures
// are analyzer inputs, not build inputs.
#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

struct Node {
  std::int64_t id;
};
struct Matching {
  void add(std::int64_t u, std::int64_t v);
};

void commit_by_address(Matching& m, std::vector<Node*> frontier) {
  std::sort(frontier.begin(), frontier.end());  // address order!
  m.add(frontier[0]->id, frontier[1]->id);  // BAD: allocation-order commit
}

void commit_by_hash(Matching& m, std::vector<std::string> labels) {
  std::sort(labels.begin(), labels.end(),
            [](const std::string& a, const std::string& b) {
              return std::hash<std::string>{}(a) < std::hash<std::string>{}(b);
            });
  m.add(static_cast<std::int64_t>(labels[0].size()),
        static_cast<std::int64_t>(labels[1].size()));  // BAD: hash order
}
