// Analyzer fixture (known-bad): single-writer-ledger. A CommStats counter
// is mutated inside a parallel_for_threads lambda — once directly, once
// through a helper — so the count depends on thread interleaving (or races
// outright). Fixtures are analyzer inputs, not build inputs.
#include <cstdint>
#include <functional>

void parallel_for_threads(int threads, std::int64_t n,
                          const std::function<void(std::int64_t)>& fn);

class ShardRouter {
 public:
  void route(std::int64_t ops, int threads) {
    parallel_for_threads(threads, ops, [&](std::int64_t i) {
      batch_bytes_ += 16;  // BAD: worker mutates the coordinator ledger
      charge_round(i);
    });
  }

 private:
  void charge_round(std::int64_t) { batch_rounds_ += 1; }

  std::int64_t batch_bytes_ = 0;
  std::int64_t batch_rounds_ = 0;
};
