// Analyzer fixture (known-bad): unordered-order-taint, direct flow.
// Edges collected from a hash map in iteration order feed the oracle
// without canonicalization. Fixtures are analyzer inputs, not build inputs.
#include <cstdint>
#include <unordered_map>
#include <vector>

struct OracleGraph {
  std::vector<std::int64_t> edges;
};
struct Oracle {
  int find_matching(const OracleGraph& g);
};

int commit_pairs(Oracle& oracle,
                 const std::unordered_map<std::int64_t, int>& pair_witness) {
  OracleGraph h;
  for (const auto& [key, wx] : pair_witness) {
    (void)wx;
    h.edges.push_back(key);  // hash order escapes into h
  }
  return oracle.find_matching(h);  // BAD: uncanonicalized hash order
}
