// Analyzer fixture (known-bad): unordered-order-taint, one helper level.
// The helper returns keys in hash-iteration order; the caller commits them
// to the matching without sorting. Fixtures are analyzer inputs, not build
// inputs.
#include <cstdint>
#include <unordered_set>
#include <vector>

struct Matching {
  void add(std::int64_t u, std::int64_t v);
};

std::vector<std::int64_t> gather_dirty(
    const std::unordered_set<std::int64_t>& dirty) {
  std::vector<std::int64_t> out;
  for (const std::int64_t v : dirty) out.push_back(v);
  return out;  // hash order escapes through the return value
}

void commit_dirty(Matching& m, const std::unordered_set<std::int64_t>& dirty) {
  std::vector<std::int64_t> order = gather_dirty(dirty);
  m.add(order[0], order[1]);  // BAD: helper-laundered hash order
}
