"""Structural C++ source model shared by every bmf-analyzer rule.

The analyzer needs more than per-line regexes (function extents, class
membership, balanced-paren call arguments, block-scoped lock lifetimes)
but must stay runnable on a stdlib-only box. This module builds a small
"micro-AST" per translation unit from the comment/string-stripped text:

  * scope scan — a single pass over the stripped text tracking ``{}`` and
    classifying each opening brace as namespace / class / function / block,
    which yields every function definition's body extent, its (possibly
    class-qualified) name, and its parameter names;
  * declaration harvest — unordered-container variables (locals *and*
    members), pointer-element vectors, and ``Mutex`` declarations resolved
    to their owning class (``ThreadPool::Worker::mutex``-style ids);
  * call utilities — balanced extraction of a call's full argument text
    and its top-level comma split.

When the libclang Python bindings are importable the taint rule
cross-checks its unordered-iteration sources against the real AST; this
module stays the canonical (always-available) frontend, mirroring the
determinism lint's ``--use-libclang`` contract.
"""

from __future__ import annotations

import bisect
import os
import re
from dataclasses import dataclass, field

CPP_EXTENSIONS = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h")
IDENT = r"[A-Za-z_]\w*"

# Suppression (sparingly, reason mandatory), on the flagged line or the line
# above — the analyzer's twin of the determinism lint's allow syntax.
ALLOW_RE = re.compile(r"//\s*bmf-analyzer:\s*allow\(([a-z-]+)\)\s*--\s*(\S.*)$")

RULES = (
    "unordered-order-taint",
    "lock-order",
    "relaxed-audit",
    "publication-order",
    "single-writer-ledger",
)


@dataclass
class Finding:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def allowed(raw_lines: list[str], line_idx: int, rule: str) -> bool:
    """True if the 0-based line or the one above carries a matching
    bmf-analyzer allow comment (non-empty reason enforced by the regex)."""
    for idx in (line_idx, line_idx - 1):
        if 0 <= idx < len(raw_lines):
            m = ALLOW_RE.search(raw_lines[idx])
            if m and m.group(1) == rule:
                return True
    return False


def report(
    findings: list[Finding], sf: "SourceFile", idx: int, rule: str, message: str
) -> None:
    """Appends a finding at 0-based line ``idx`` unless suppressed."""
    if not allowed(sf.raw_lines, idx, rule):
        findings.append(Finding(sf.path, idx + 1, rule, message))

# Heads that can never introduce a function body even though they carry
# parentheses.
NON_FUNCTION_KEYWORDS = {
    "if",
    "for",
    "while",
    "switch",
    "catch",
    "return",
    "do",
    "else",
    "new",
    "delete",
    "throw",
    "sizeof",
    "case",
    "static_assert",
    "alignas",
    "decltype",
    "noexcept",
    "requires",
    "assert",
}

CLASS_HEAD_RE = re.compile(
    rf"\b(?:class|struct|union)\s+(?:BMF_\w+(?:\([^)]*\))?\s+)?({IDENT})"
    rf"(?:\s*(?:final)?\s*(?::[^;{{]*)?)?$"
)
ENUM_HEAD_RE = re.compile(r"\benum\b")
NAMESPACE_HEAD_RE = re.compile(rf"\bnamespace(?:\s+{IDENT}(?:::{IDENT})*)?\s*$")
QUALIFIED_NAME_RE = re.compile(rf"((?:{IDENT}::)*~?{IDENT})\s*$")

UNORDERED_DECL_RE = re.compile(
    rf"std::unordered_(?:map|set|multimap|multiset)\s*<[^;]*?>\s*(?:&\s*)?"
    rf"({IDENT})\s*[;({{=,)]"
)
PTR_VECTOR_DECL_RE = re.compile(
    rf"std::vector\s*<[^;<>]*\*\s*>\s*(?:&\s*)?({IDENT})\s*[;({{=,)]"
)
MUTEX_DECL_RE = re.compile(rf"\b(?:mutable\s+)?Mutex\s+({IDENT})\s*(?:;|{{}})")


def strip_comments_and_strings(text: str) -> str:
    """Removes comments and string/char literal bodies, preserving newline
    structure (the stripped text has exactly the raw text's line count, so
    offsets into it map to correct line numbers)."""
    out: list[str] = []
    i, n = 0, len(text)
    state = "code"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append("'")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            if c == "\n":
                out.append("\n")
            i += 1
        else:  # string or char
            quote = '"' if state == "string" else "'"
            if c == "\\":
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated — resync so one bad literal
                state = "code"  # cannot eat the rest of the file
                out.append("\n")
            i += 1
    return "".join(out)


def subsystem_of(path: str) -> str | None:
    """The path component after the last `src` component, or None."""
    parts = os.path.normpath(path).split(os.sep)
    for i in range(len(parts) - 2, -1, -1):
        if parts[i] == "src":
            return parts[i + 1]
    return None


@dataclass
class FunctionDef:
    name: str  # unqualified
    qualname: str  # Class::name when resolvable
    cls: str | None  # enclosing (or signature-qualified) class
    params: list[str]
    head: str  # signature text up to the opening brace
    body_start: int  # offset of '{' in the stripped text
    body_end: int  # offset of the matching '}' (exclusive of brace)
    start_line: int  # 1-based


@dataclass
class ClassSpan:
    qualname: str
    open_off: int
    close_off: int


@dataclass
class SourceFile:
    path: str
    raw_text: str
    text: str  # stripped
    raw_lines: list[str] = field(default_factory=list)
    lines: list[str] = field(default_factory=list)
    subsystem: str | None = None
    functions: list[FunctionDef] = field(default_factory=list)
    class_spans: list[ClassSpan] = field(default_factory=list)
    line_starts: list[int] = field(default_factory=list)
    unordered_vars: set[str] = field(default_factory=set)
    ptr_vector_vars: set[str] = field(default_factory=set)
    mutex_decls: dict[str, set[str]] = field(default_factory=dict)

    def line_of(self, off: int) -> int:
        """1-based line number of an offset into the stripped text."""
        return bisect.bisect_right(self.line_starts, off)

    def enclosing_class(self, off: int) -> str | None:
        best: ClassSpan | None = None
        for span in self.class_spans:
            if span.open_off <= off <= span.close_off:
                if best is None or span.open_off > best.open_off:
                    best = span
        return best.qualname if best else None

    def function_at(self, off: int) -> FunctionDef | None:
        for fn in self.functions:
            if fn.body_start <= off <= fn.body_end:
                return fn
        return None

    def body(self, fn: FunctionDef) -> str:
        return self.text[fn.body_start + 1 : fn.body_end]


def _first_toplevel_paren(head: str) -> int:
    depth_angle = 0
    for i, c in enumerate(head):
        if c == "<":
            depth_angle += 1
        elif c == ">":
            depth_angle = max(0, depth_angle - 1)
        elif c == "(" and depth_angle == 0:
            return i
    return -1


def split_arguments(arg_text: str) -> list[str]:
    """Splits a call's argument text at top-level commas."""
    args: list[str] = []
    depth = 0
    cur: list[str] = []
    for c in arg_text:
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
        if c == "," and depth == 0:
            args.append("".join(cur).strip())
            cur = []
        else:
            cur.append(c)
    tail = "".join(cur).strip()
    if tail:
        args.append(tail)
    return args


def call_argument_text(text: str, open_off: int) -> tuple[str, int]:
    """Balanced argument text of the call whose '(' sits at ``open_off``,
    plus the offset one past the closing ')'. Unterminated calls (broken
    input) consume to end of text."""
    depth = 0
    i = open_off
    n = len(text)
    while i < n:
        c = text[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth -= 1
            if depth == 0:
                return text[open_off + 1 : i], i + 1
        i += 1
    return text[open_off + 1 :], n


def _parse_params(head: str) -> list[str]:
    open_at = _first_toplevel_paren(head)
    if open_at < 0:
        return []
    arg_text, _end = call_argument_text(head, open_at)
    names: list[str] = []
    for param in split_arguments(arg_text):
        param = re.sub(r"=[^,]*$", "", param).strip()
        m = re.search(rf"({IDENT})\s*(?:\[\s*\])?$", param)
        if m and m.group(1) not in ("const", "void", "int", "auto"):
            names.append(m.group(1))
    return names


def _classify_head(
    head: str, inside_function: bool
) -> tuple[str, str | None, list[str]]:
    """Returns (kind, name, params) where kind is one of namespace / class /
    enum / function / block."""
    head = head.strip()
    if not head:
        return "block", None, []
    if ENUM_HEAD_RE.search(head):
        return "enum", None, []
    cm = CLASS_HEAD_RE.search(head)
    if cm:
        # The $-anchored pattern only matches when the class name (plus an
        # optional base clause / `final`) ends the head, which rules out
        # functions *returning* a class type ("struct Foo make() {").
        return "class", cm.group(1), []
    if NAMESPACE_HEAD_RE.search(head):
        return "namespace", None, []
    if inside_function:
        return "block", None, []
    open_at = _first_toplevel_paren(head)
    if open_at < 0:
        return "block", None, []
    before = head[:open_at].rstrip()
    if before.endswith("="):
        return "block", None, []
    nm = QUALIFIED_NAME_RE.search(before)
    if not nm:
        return "block", None, []
    name = nm.group(1)
    last = name.rsplit("::", 1)[-1].lstrip("~")
    if last in NON_FUNCTION_KEYWORDS:
        return "block", None, []
    return "function", name, _parse_params(head)


def parse_file(path: str, text: str | None = None) -> SourceFile:
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    stripped = strip_comments_and_strings(text)
    sf = SourceFile(path=path, raw_text=text, text=stripped)
    sf.raw_lines = text.split("\n")
    sf.lines = stripped.split("\n")
    sf.subsystem = subsystem_of(path)
    off = 0
    for line in sf.lines:
        sf.line_starts.append(off)
        off += len(line) + 1

    # ---- scope scan --------------------------------------------------------
    stack: list[tuple[str, object]] = []  # (kind, meta)
    chunk_start = 0
    i, n = 0, len(stripped)
    while i < n:
        c = stripped[i]
        if c == "{":
            head = stripped[chunk_start:i]
            inside_fn = any(k == "function" for k, _meta in stack)
            kind, name, params = _classify_head(head, inside_fn)
            if kind == "function":
                cls = name.rsplit("::", 1)[0] if "::" in name else None
                fn = FunctionDef(
                    name=name.rsplit("::", 1)[-1],
                    qualname=name,
                    cls=cls,
                    params=params,
                    head=head.strip(),
                    body_start=i,
                    body_end=n,
                    start_line=sf.line_of(i),
                )
                stack.append((kind, fn))
            elif kind == "class":
                stack.append((kind, ClassSpan(name or "?", i, n)))
            else:
                stack.append((kind, None))
            chunk_start = i + 1
        elif c == "}":
            if stack:
                kind, meta = stack.pop()
                if kind == "function":
                    assert isinstance(meta, FunctionDef)
                    meta.body_end = i
                    if meta.cls is None:
                        # class_spans registers on pop, so the enclosing class
                        # is still on the live stack — resolve from there.
                        for k2, m2 in reversed(stack):
                            if k2 == "class" and isinstance(m2, ClassSpan):
                                meta.cls = m2.qualname
                                meta.qualname = f"{m2.qualname}::{meta.name}"
                                break
                    sf.functions.append(meta)
                elif kind == "class":
                    assert isinstance(meta, ClassSpan)
                    meta.close_off = i
                    prefix = [
                        m2.qualname
                        for k2, m2 in stack
                        if k2 == "class" and isinstance(m2, ClassSpan)
                    ]
                    meta.qualname = "::".join(prefix + [meta.qualname])
                    sf.class_spans.append(meta)
            chunk_start = i + 1
        elif c == ";":
            chunk_start = i + 1
        i += 1
    sf.functions.sort(key=lambda fn: fn.body_start)

    # ---- declaration harvest ----------------------------------------------
    for m in UNORDERED_DECL_RE.finditer(stripped):
        sf.unordered_vars.add(m.group(1))
    for m in PTR_VECTOR_DECL_RE.finditer(stripped):
        sf.ptr_vector_vars.add(m.group(1))
    for m in MUTEX_DECL_RE.finditer(stripped):
        name = m.group(1)
        cls = sf.enclosing_class(m.start())
        fn = sf.function_at(m.start())
        if cls is not None:
            qual = f"{cls}::{name}"
        elif fn is not None:
            qual = f"<local:{fn.qualname}>::{name}"
        else:
            qual = name
        sf.mutex_decls.setdefault(name, set()).add(qual)
    return sf


def collect_files(paths: list[str]) -> list[str]:
    files: list[str] = []
    for p in paths:
        if os.path.isdir(p):
            for dirpath, _dirnames, filenames in os.walk(p):
                for name in sorted(filenames):
                    if name.endswith(CPP_EXTENSIONS):
                        files.append(os.path.join(dirpath, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            raise FileNotFoundError(p)
    return sorted(set(files))
